open Locald_graph
open Locald_local

type ('a, 'c) verifier = {
  nv_name : string;
  nv_radius : int;
  nv_decide : ('a * 'c) View.t -> bool;
}

type ('a, 'c) prover = 'a Labelled.t -> 'c array

type ('a, 'c) t = {
  verifier : ('a, 'c) verifier;
  prover : ('a, 'c) prover;
}

let make ~name ~radius nv_decide ~prover =
  { verifier = { nv_name = name; nv_radius = radius; nv_decide }; prover }

let certified lg certificates =
  Labelled.init (Labelled.graph lg) (fun v ->
      (Labelled.label lg v, certificates.(v)))

let accepts_with verifier lg ~certificates =
  let ob =
    Algorithm.make_oblivious ~name:verifier.nv_name ~radius:verifier.nv_radius
      verifier.nv_decide
  in
  Verdict.of_outputs (Runner.run_oblivious ob (certified lg certificates))

let accepts_proved scheme lg =
  accepts_with scheme.verifier lg ~certificates:(scheme.prover lg)

(* Exhaustive refutation through the decide-once memo. A tuple of
   certificates reaches node [v] only through its restriction to [v]'s
   ball, so over all |C|^n tuples node [v] sees just |C|^(ball size)
   distinct decorated balls — keyed by (node, candidate-index
   restriction) and decided once each. A tuple is rejected as soon as
   one node says no, which cannot change the boolean (running the full
   verdict computes all node outputs, but [Verdict.rejects] only asks
   whether one is false). *)
let refuted ~candidates verifier lg =
  let n = Labelled.order lg in
  let cands = Array.of_list candidates in
  let m = Array.length cands in
  let base =
    Array.init n (fun v ->
        View.extract_mapped lg ~center:v ~radius:verifier.nv_radius)
  in
  let memo =
    match Locald_runtime.Memo.default_mode () with
    | Locald_runtime.Memo.Off -> None
    | Exact_ids | Order_type ->
        (* Certificate indices are not identifiers: order-type
           canonicalisation does not apply, so any memoisation is by
           exact index restriction. *)
        Some (Locald_runtime.Memo.create_node_ids ())
  in
  let node_accepts v (idx : int array) =
    let view, back = base.(v) in
    let key = Array.map (fun u -> idx.(u)) back in
    let compute () =
      verifier.nv_decide
        (View.mapi_labels (fun i x -> (x, cands.(key.(i)))) view)
    in
    match memo with
    | None -> compute ()
    | Some tbl -> Locald_runtime.Memo.find_or_compute tbl (v, key) compute
  in
  let tuple_rejected idx =
    let rec go v = v < n && ((not (node_accepts v idx)) || go (v + 1)) in
    go 0
  in
  (* Candidate-index tuples, in the same order as [assignments]. *)
  let rec index_tuples k () =
    if k = 0 then Seq.Cons ([], Seq.empty)
    else
      Seq.concat_map
        (fun rest -> Seq.init m (fun c -> c :: rest))
        (index_tuples (k - 1))
        ()
  in
  Seq.for_all (fun idx -> tuple_rejected (Array.of_list idx)) (index_tuples n)

let refuted_sampled ~rng ~trials ~candidates verifier lg =
  let n = Labelled.order lg in
  let pool = Array.of_list candidates in
  let rec go k =
    if k >= trials then true
    else
      let certificates =
        Array.init n (fun _ -> pool.(Random.State.int rng (Array.length pool)))
      in
      Verdict.rejects (accepts_with verifier lg ~certificates) && go (k + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Stock schemes                                                       *)
(* ------------------------------------------------------------------ *)

(* Proper 2-colouring as certificate: exists iff bipartite. The
   prover 2-colours by BFS per component (garbage on odd components —
   the verifier rejects there, as it must). *)
let bipartite_prover lg =
  let g = Labelled.graph lg in
  let n = Graph.order g in
  let colour = Array.make n (-1) in
  for v = 0 to n - 1 do
    if colour.(v) < 0 then begin
      colour.(v) <- 0;
      let queue = Queue.create () in
      Queue.add v queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Array.iter
          (fun w ->
            if colour.(w) < 0 then begin
              colour.(w) <- 1 - colour.(u);
              Queue.add w queue
            end)
          (Graph.neighbours g u)
      done
    end
  done;
  colour

let bipartite_verify (view : (unit * int) View.t) =
  let _, c = View.center_label view in
  (c = 0 || c = 1)
  && Array.for_all
       (fun u -> snd view.View.labels.(u) <> c)
       (Graph.neighbours view.View.graph view.View.center)

let bipartite_scheme =
  make ~name:"bipartite-certificate" ~radius:1 bipartite_verify
    ~prover:bipartite_prover

let even_cycle_scheme =
  make ~name:"even-cycle-certificate" ~radius:1
    (fun view ->
      Graph.degree view.View.graph view.View.center = 2 && bipartite_verify view)
    ~prover:bipartite_prover
