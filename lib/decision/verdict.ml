type t =
  | Accept
  | Reject of int list

let of_outputs outputs =
  let nos = ref [] in
  Array.iteri (fun v yes -> if not yes then nos := v :: !nos) outputs;
  match List.rev !nos with [] -> Accept | nos -> Reject nos

let accepts = function Accept -> true | Reject _ -> false
let rejects t = not (accepts t)

let pp ppf = function
  | Accept -> Format.fprintf ppf "accept"
  | Reject nos ->
      Format.fprintf ppf "reject@%a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Format.pp_print_int)
        (match nos with _ :: _ :: _ :: _ -> [ List.hd nos ] | l -> l)

module Outcome = struct
  type t = Accept | Reject | Unknown

  let of_bool b = if b then Accept else Reject

  let to_string = function
    | Accept -> "accept"
    | Reject -> "reject"
    | Unknown -> "unknown"

  let pp ppf o = Format.pp_print_string ppf (to_string o)
end

type degraded = {
  verdict : t;
  unknowns : int list;
}

let of_outcomes outcomes =
  let nos = ref [] and unknowns = ref [] in
  Array.iteri
    (fun v (o : Outcome.t) ->
      match o with
      | Outcome.Accept -> ()
      | Outcome.Reject -> nos := v :: !nos
      | Outcome.Unknown -> unknowns := v :: !unknowns)
    outcomes;
  {
    verdict = (match List.rev !nos with [] -> Accept | nos -> Reject nos);
    unknowns = List.rev !unknowns;
  }

let decisive d = d.unknowns = []
let degraded d = not (decisive d)

let pp_degraded ppf d =
  if decisive d then pp ppf d.verdict
  else
    Format.fprintf ppf "%a (degraded: %d unknown)" pp d.verdict
      (List.length d.unknowns)
