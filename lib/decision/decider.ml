open Locald_local
open Locald_runtime

let decide ?backend alg lg ~ids =
  Verdict.of_outputs (Runner.run ?backend alg lg ~ids)

let decide_oblivious ob lg = Verdict.of_outputs (Runner.run_oblivious ob lg)

type evaluation = {
  instance : string;
  n : int;
  expected : bool;
  assignments : int;
  correct : int;
  wrong : int;
  failure : (Ids.t * Verdict.t) option;
}

(* Assignments per parallel batch: big enough to amortise the pool's
   dispatch, small enough that the failure witness is found without
   deciding the whole id space. *)
let tally_chunk = 512

let tally ?prep ?backend ~expected ~instance ~n assignments_seq alg lg =
  (* The ball structure is id-independent: extract every view once and
     only re-decorate per assignment (see Runner.prepare). The decide
     itself is memoised per (node, ball restriction) under the session's
     memo mode — transparent for the pure deciders this module is
     specified for. *)
  let prep =
    match prep with
    | Some p -> p
    | None -> Runner.prepare ~memo:(Memo.default_mode ()) ?backend alg lg
  in
  Telemetry.span "decider.tally" @@ fun () ->
  let verdict_of ids = Verdict.of_outputs (Runner.run_prepared prep ~ids) in
  let correct = ref 0 and wrong = ref 0 and failure = ref None and total = ref 0 in
  let rec drain seq =
    (* Force up to [tally_chunk] assignments sequentially — the
       sampling / enumeration order must not depend on --jobs — then
       decide the batch in parallel. *)
    let buf = ref [] and len = ref 0 and rest = ref seq in
    let continue = ref true in
    while !continue && !len < tally_chunk do
      match !rest () with
      | Seq.Nil -> continue := false
      | Seq.Cons (ids, tl) ->
          buf := ids :: !buf;
          incr len;
          rest := tl
    done;
    let chunk = Array.of_list (List.rev !buf) in
    if Array.length chunk > 0 then begin
      let verdicts = Pool.map verdict_of chunk in
      Array.iteri
        (fun i verdict ->
          incr total;
          if Verdict.accepts verdict = expected then incr correct
          else begin
            incr wrong;
            if !failure = None then failure := Some (chunk.(i), verdict)
          end)
        verdicts;
      drain !rest
    end
  in
  drain assignments_seq;
  {
    instance;
    n;
    expected;
    assignments = !total;
    correct = !correct;
    wrong = !wrong;
    failure = !failure;
  }

let evaluate ?backend ~rng ~regime ~assignments alg ~expected ~instance lg =
  Telemetry.span "decider.evaluate" @@ fun () ->
  let n = Locald_graph.Labelled.order lg in
  let seq =
    Seq.init assignments (fun _ -> Ids.sample rng regime ~n)
  in
  tally ?backend ~expected ~instance ~n seq alg lg

(* Exhaustive evaluation through the ball-local quotient. By the
   locality correspondence a node's output under an assignment depends
   only on the restriction to its ball, so scanning each node's
   [perm ~bound ~k:(ball size)] injective restrictions decides the
   all-accept question over all [perm ~bound ~k:n] assignments:

     every assignment accepted  <=>  every node accepts every
                                     restriction of its ball

   (left-to-right because every restriction extends to a global
   assignment when [bound >= n] — enforced by [enumerate_injections] —
   and right-to-left trivially). When the scan certifies all-accept,
   the tallies follow by arithmetic and are byte-identical to the naive
   loop's; any rejection instead falls back transparently to the naive
   loop, whose memo table the scan has already partly warmed. *)
let evaluate_exhaustive ?(quotient = true) ?backend ?memo ?memo_capacity
    ~bound alg ~expected ~instance lg =
  Telemetry.span "decider.evaluate_exhaustive" @@ fun () ->
  let n = Locald_graph.Labelled.order lg in
  let memo =
    match memo with Some m -> m | None -> Memo.default_mode ()
  in
  let prep = Runner.prepare ~memo ?memo_capacity ?backend alg lg in
  let naive () =
    tally ~prep ~expected ~instance ~n
      (Ids.enumerate_injections ~n ~bound)
      alg lg
  in
  if (not quotient) || n = 0 then naive ()
  else begin
    let all_accept = ref true in
    let v = ref 0 in
    while !all_accept && !v < n do
      let k = Array.length (Runner.ball_of prep !v) in
      (* Read-adaptive scan: each distinct behaviour of the decide on
         this ball is computed once; restrictions that agree on the id
         slots the decide actually reads are trie lookups. *)
      let scan = Runner.restriction_scanner prep !v in
      let scanned = ref 0 in
      all_accept :=
        Orbit.for_all_injections ~bound ~k (fun r ->
            incr scanned;
            scan r);
      Orbit.add_scanned !scanned;
      incr v
    done;
    if not !all_accept then naive ()
    else begin
      let assignments = Orbit.perm ~bound ~k:n in
      if expected then
        {
          instance;
          n;
          expected;
          assignments;
          correct = assignments;
          wrong = 0;
          failure = None;
        }
      else
        (* Every assignment is wrong; the witness the naive loop would
           report is the first enumerated assignment, re-decided
           concretely (a memo hit) so the stored verdict is the real
           run's. *)
        let failure =
          match Ids.enumerate_injections ~n ~bound () with
          | Seq.Nil -> None
          | Seq.Cons (first, _) ->
              Some (first, Verdict.of_outputs (Runner.run_prepared prep ~ids:first))
        in
        {
          instance;
          n;
          expected;
          assignments;
          correct = 0;
          wrong = assignments;
          failure;
        }
    end
  end

(* Range-restricted exhaustive evaluation, for the sharded runs: the
   assignments of lexicographic ranks [lo, hi) only, with the failure
   witness carrying its global rank so per-shard firsts merge into the
   global first by a minimum. Always the naive enumeration — the
   quotient scan decides the whole space at once and cannot be
   restricted to a rank interval — but through the same prepared
   views and decide-once memo, so decides repeat across chunks at memo
   cost. *)
type range_evaluation = {
  rv_lo : int;
  rv_hi : int;
  rv_correct : int;
  rv_wrong : int;
  rv_failure : (int * Ids.t * Verdict.t) option;
}

let evaluate_exhaustive_range ?prep ?backend ?memo ?memo_capacity ~bound ~lo
    ~hi alg ~expected lg =
  Telemetry.span "decider.evaluate_range" @@ fun () ->
  let n = Locald_graph.Labelled.order lg in
  let total = Orbit.perm ~bound ~k:n in
  if lo < 0 || hi < lo || hi > total then
    invalid_arg
      (Printf.sprintf
         "Decider.evaluate_exhaustive_range: range [%d,%d) outside [0,%d]" lo
         hi total);
  let prep =
    match prep with
    | Some p -> p
    | None ->
        let memo =
          match memo with Some m -> m | None -> Memo.default_mode ()
        in
        Runner.prepare ~memo ?memo_capacity ?backend alg lg
  in
  let verdict_of ids = Verdict.of_outputs (Runner.run_prepared prep ~ids) in
  let correct = ref 0 and wrong = ref 0 and failure = ref None in
  let rest = ref (Ids.enumerate_injections_from ~n ~bound ~start:lo) in
  let next_rank = ref lo in
  while !next_rank < hi do
    (* Same batching discipline as [tally]: force the chunk
       sequentially, decide it in parallel, so results are identical
       at any job count. *)
    let want = min tally_chunk (hi - !next_rank) in
    let buf = ref [] and got = ref 0 in
    while !got < want do
      match !rest () with
      | Seq.Nil -> assert false (* hi <= total bounds the stream *)
      | Seq.Cons (ids, tl) ->
          buf := ids :: !buf;
          incr got;
          rest := tl
    done;
    let chunk = Array.of_list (List.rev !buf) in
    let verdicts = Pool.map verdict_of chunk in
    Array.iteri
      (fun i verdict ->
        if Verdict.accepts verdict = expected then incr correct
        else begin
          incr wrong;
          if !failure = None then
            failure := Some (!next_rank + i, chunk.(i), verdict)
        end)
      verdicts;
    next_rank := !next_rank + want
  done;
  {
    rv_lo = lo;
    rv_hi = hi;
    rv_correct = !correct;
    rv_wrong = !wrong;
    rv_failure = !failure;
  }

let all_correct e = e.wrong = 0 && e.assignments > 0

(* ------------------------------------------------------------------ *)
(* Fault-injected decision                                             *)
(* ------------------------------------------------------------------ *)

let outcome_of_node = function
  | Fault_runner.Decided b -> Verdict.Outcome.of_bool b
  | Fault_runner.Unknown _ -> Verdict.Outcome.Unknown

let decide_faulty ~plan ?cost alg lg ~ids =
  let outcomes, stats = Fault_runner.run ~plan ?cost alg lg ~ids in
  (Verdict.of_outcomes (Array.map outcome_of_node outcomes), stats)

type fault_evaluation = {
  f_instance : string;
  f_n : int;
  f_expected : bool;
  f_runs : int;
  f_correct : int;
  f_wrong : int;
  f_degraded : int;
  f_unknown_nodes : int;
  f_dropped : int;
  f_crashed : int;
}

let evaluate_faulty ~rng ~regime ~runs ~plan ?cost alg ~expected ~instance lg =
  let n = Locald_graph.Labelled.order lg in
  let correct = ref 0
  and wrong = ref 0
  and degraded = ref 0
  and unknown_nodes = ref 0
  and dropped = ref 0
  and crashed = ref 0 in
  for k = 0 to runs - 1 do
    (* Each run gets a distinct (but reproducible) fault trace and a
       fresh identifier assignment. *)
    let plan_k = { plan with Faults.seed = plan.Faults.seed + k } in
    let ids = Ids.sample rng regime ~n in
    let d, stats = decide_faulty ~plan:plan_k ?cost alg lg ~ids in
    unknown_nodes := !unknown_nodes + List.length d.Verdict.unknowns;
    dropped := !dropped + stats.Fault_runner.dropped;
    crashed := !crashed + stats.Fault_runner.crashed;
    if Verdict.decisive d then
      if Verdict.accepts d.Verdict.verdict = expected then incr correct
      else incr wrong
    else incr degraded
  done;
  {
    f_instance = instance;
    f_n = n;
    f_expected = expected;
    f_runs = runs;
    f_correct = !correct;
    f_wrong = !wrong;
    f_degraded = !degraded;
    f_unknown_nodes = !unknown_nodes;
    f_dropped = !dropped;
    f_crashed = !crashed;
  }

let pp_fault_evaluation ppf e =
  Format.fprintf ppf
    "%-28s n=%-5d expect=%-4s %d/%d correct, %d wrong, %d degraded (%d unknown nodes)"
    e.f_instance e.f_n
    (if e.f_expected then "yes" else "no")
    e.f_correct e.f_runs e.f_wrong e.f_degraded e.f_unknown_nodes

let pp_evaluation ppf e =
  Format.fprintf ppf "%-28s n=%-6d expect=%-6s %d/%d assignments correct%s"
    e.instance e.n
    (if e.expected then "yes" else "no")
    e.correct e.assignments
    (if e.wrong = 0 then "" else Printf.sprintf "  (%d WRONG)" e.wrong)
