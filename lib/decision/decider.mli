(** Running local algorithms as deciders, and evaluating their
    correctness over identifier assignments.

    A local algorithm [A] decides a property [P] when, for {e every}
    valid identifier assignment, it accepts every yes-instance and
    rejects every no-instance. Correctness is therefore quantified
    over assignments: [evaluate] samples (or exhausts) assignments
    valid under a regime and tallies the verdicts.

    [evaluate] and [evaluate_exhaustive] decide batches of assignments
    on the {!Locald_runtime.Pool}; the algorithm's [decide] function
    must therefore be safe to call from several domains at once (pure
    functions and per-call local state are fine). Assignments are
    sampled / enumerated sequentially before each batch, and views are
    pre-extracted once per instance ({!Locald_local.Runner.prepare}),
    so results — including the [failure] witness, which is the first
    wrong assignment in stream order — are identical at any job
    count, and at any simulator backend (the [?backend] of each entry
    point, defaulting to the ambient {!Locald_local.Backend.default};
    the fault-injected entry points below always use the engine their
    plan semantics are defined over). *)

open Locald_graph
open Locald_local

val decide :
  ?backend:Backend.t ->
  ('a, bool) Algorithm.t -> 'a Labelled.t -> ids:Ids.t -> Verdict.t
(** One assignment. [backend] (default {!Backend.default}) selects the
    simulator — verdicts are backend-independent by the cross-backend
    pin. *)

val decide_oblivious : ('a, bool) Algorithm.oblivious -> 'a Labelled.t -> Verdict.t

type evaluation = {
  instance : string;
  n : int;
  expected : bool;       (** is the instance in the property? *)
  assignments : int;     (** assignments tried *)
  correct : int;
  wrong : int;
  failure : (Ids.t * Verdict.t) option;  (** an assignment that went wrong *)
}

val evaluate :
  ?backend:Backend.t ->
  rng:Random.State.t ->
  regime:Ids.regime ->
  assignments:int ->
  ('a, bool) Algorithm.t ->
  expected:bool ->
  instance:string ->
  'a Labelled.t ->
  evaluation
(** Random assignments drawn from the regime. *)

val evaluate_exhaustive :
  ?quotient:bool ->
  ?backend:Backend.t ->
  ?memo:Locald_runtime.Memo.mode ->
  ?memo_capacity:int ->
  bound:int ->
  ('a, bool) Algorithm.t ->
  expected:bool ->
  instance:string ->
  'a Labelled.t ->
  evaluation
(** Every injective assignment into [0 .. bound-1] (small instances
    only). With [quotient] (the default) the all-accept question is
    first decided on the ball-local assignment quotient — per node,
    every injective restriction of its ball
    ({!Locald_runtime.Orbit.injections}) — which is exhaustive over
    far fewer decides; the tallies then follow by counting arithmetic.
    Whenever any node rejects any restriction, evaluation falls back
    transparently to the naive assignment loop (with the decide-once
    memo already warm), so the result — counts, and the first-failure
    witness — is byte-identical to [quotient:false] in every case.
    [memo] / [memo_capacity] configure the implicit preparation's
    decide-once table explicitly (default:
    {!Locald_runtime.Memo.default_mode}, unbounded) — the per-request
    form long-lived services use instead of mutating the session
    default. All memo configurations are digest-transparent. *)

type range_evaluation = {
  rv_lo : int;
  rv_hi : int;
  rv_correct : int;
  rv_wrong : int;
  rv_failure : (int * Ids.t * Verdict.t) option;
      (** first wrong assignment in the range, with its {e global}
          lexicographic rank *)
}

val evaluate_exhaustive_range :
  ?prep:('a, bool) Runner.prepared ->
  ?backend:Backend.t ->
  ?memo:Locald_runtime.Memo.mode ->
  ?memo_capacity:int ->
  bound:int ->
  lo:int ->
  hi:int ->
  ('a, bool) Algorithm.t ->
  expected:bool ->
  'a Labelled.t ->
  range_evaluation
(** The assignments of lexicographic ranks [\[lo, hi)] of
    {!Locald_local.Ids.enumerate_injections}'s order only — the
    range-restricted entry point the sharded exhaustive runs
    partition on. Any family of ranges that tiles [\[0, total)] sums
    (counts) and minimises (failure rank) to exactly
    [evaluate_exhaustive]'s answer. Pass [prep] to share one
    prepared-view/memo structure across many ranges within a process;
    without it, [memo] / [memo_capacity] configure the implicit
    preparation as in {!evaluate_exhaustive}.
    @raise Invalid_argument on a range outside [\[0, total\]]. *)

val all_correct : evaluation -> bool

val pp_evaluation : Format.formatter -> evaluation -> unit

(** {1 Fault-injected decision}

    The same decision semantics under a {!Faults.plan}: nodes that
    cannot answer soundly contribute [Unknown], and a run with any
    unknown is tallied as {e degraded} — neither correct nor wrong —
    so fault-induced failures are never mistaken for separations. *)

val decide_faulty :
  plan:Faults.plan ->
  ?cost:('a Locald_graph.View.t -> int) ->
  ('a, bool) Algorithm.t ->
  'a Locald_graph.Labelled.t ->
  ids:Ids.t ->
  Verdict.degraded * Fault_runner.stats

type fault_evaluation = {
  f_instance : string;
  f_n : int;
  f_expected : bool;
  f_runs : int;
  f_correct : int;       (** decisive runs matching the expectation *)
  f_wrong : int;         (** decisive runs contradicting it *)
  f_degraded : int;      (** runs with at least one [Unknown] node *)
  f_unknown_nodes : int; (** total unknown nodes across runs *)
  f_dropped : int;       (** total messages lost across runs *)
  f_crashed : int;       (** total crash-stopped nodes across runs *)
}

val evaluate_faulty :
  rng:Random.State.t ->
  regime:Ids.regime ->
  runs:int ->
  plan:Faults.plan ->
  ?cost:('a Locald_graph.View.t -> int) ->
  ('a, bool) Algorithm.t ->
  expected:bool ->
  instance:string ->
  'a Locald_graph.Labelled.t ->
  fault_evaluation
(** Repeated faulted runs: run [k] uses fault seed [plan.seed + k] and
    a fresh identifier assignment sampled from the regime, so the whole
    evaluation is reproducible from [rng] and [plan.seed]. *)

val pp_fault_evaluation : Format.formatter -> fault_evaluation -> unit
