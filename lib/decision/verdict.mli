(** Acceptance semantics of local decision (Section 1.2): a run accepts
    when {e every} node outputs yes, and rejects when {e at least one}
    node outputs no. *)

type t =
  | Accept
  | Reject of int list  (** the nodes that said no (non-empty, sorted) *)

val of_outputs : bool array -> t
val accepts : t -> bool
val rejects : t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Three-valued outcomes (fault-injected runs)}

    Under a fault plan a node may be unable to answer soundly (it
    crashed, its view stayed incomplete, its fuel ran out); it then
    emits [Unknown] instead of a boolean. The aggregate keeps the
    Section 1.2 semantics on the decided nodes and carries the unknown
    set alongside, so a degraded run is reported as degraded — never
    as a spurious separation. *)

module Outcome : sig
  type t = Accept | Reject | Unknown

  val of_bool : bool -> t
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
end

type degraded = {
  verdict : t;
      (** the verdict over the {e decided} nodes only. A [Reject] is
          sound regardless of unknowns (some node really said no); an
          [Accept] with unknowns is weak evidence only. *)
  unknowns : int list;  (** nodes that answered [Unknown] (sorted) *)
}

val of_outcomes : Outcome.t array -> degraded

val decisive : degraded -> bool
(** No node answered [Unknown]: the verdict has full force. *)

val degraded : degraded -> bool

val pp_degraded : Format.formatter -> degraded -> unit
