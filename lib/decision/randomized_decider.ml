open Locald_graph
open Locald_local

type estimate = {
  instance : string;
  n : int;
  expected : bool;
  runs : int;
  accepted : int;
}

let accept_rate e = float_of_int e.accepted /. float_of_int (max 1 e.runs)

let success_rate e =
  if e.expected then accept_rate e else 1.0 -. accept_rate e

let estimate ~rng ~runs ~oblivious alg ~ids ~expected ~instance lg =
  (* Ball structure is run-independent: extract once, redecorate per
     run (Randomized.run_prepared draws the same coin streams as
     Randomized.run, so the estimate is unchanged). *)
  let prep = Randomized.prepare alg lg in
  let accepted = ref 0 in
  for _ = 1 to runs do
    let outputs = Randomized.run_prepared ~rng ~oblivious prep ~ids in
    if Verdict.accepts (Verdict.of_outputs outputs) then incr accepted
  done;
  { instance; n = Labelled.order lg; expected; runs; accepted = !accepted }

let pp ppf e =
  Format.fprintf ppf "%-28s n=%-6d expect=%-4s accept-rate=%.3f success=%.3f"
    e.instance e.n
    (if e.expected then "yes" else "no")
    (accept_rate e) (success_rate e)
