open Locald_graph
open Locald_local

type ('a, 'c) scheme = {
  pls_name : string;
  pls_radius : int;
  prover : 'a Labelled.t -> ids:Ids.t -> 'c array;
  verify : ('a * 'c) View.t -> bool;
}

let certified lg certificates =
  Labelled.init (Labelled.graph lg) (fun v ->
      (Labelled.label lg v, certificates.(v)))

let accepts_with scheme lg ~ids ~certificates =
  let alg =
    Algorithm.make ~name:scheme.pls_name ~radius:scheme.pls_radius scheme.verify
  in
  Verdict.of_outputs (Runner.run alg (certified lg certificates) ~ids)

let accepts_proved scheme lg ~ids =
  accepts_with scheme lg ~ids ~certificates:(scheme.prover lg ~ids)

let refuted_sampled ~rng ~trials ~gen_certificate scheme lg ~ids =
  let n = Labelled.order lg in
  let rec go k =
    if k >= trials then true
    else
      let certificates = Array.init n (fun _ -> gen_certificate rng) in
      Verdict.rejects (accepts_with scheme lg ~ids ~certificates) && go (k + 1)
  in
  go 0

let proof_bits size certificates =
  Array.fold_left (fun acc c -> max acc (size c)) 0 certificates

(* ------------------------------------------------------------------ *)
(* Unique leader                                                       *)
(* ------------------------------------------------------------------ *)

type leader_cert = {
  root_id : int;
  level : int;
  parent_id : int;
}

let bits_of_int x = if x <= 0 then 1 else 1 + (Float.to_int (Float.log2 (float_of_int x)))

let leader_cert_bits c =
  bits_of_int c.root_id + bits_of_int c.level + bits_of_int c.parent_id

let leader_prover lg ~ids =
  let g = Labelled.graph lg in
  let n = Graph.order g in
  (* Root the tree at the (hopefully unique) leader; on malformed
     instances any certificates will do — the verifier rejects. *)
  let leader =
    let rec find v = if v >= n then 0 else if Labelled.label lg v then v else find (v + 1) in
    find 0
  in
  if n = 0 then [||]
  else if not (Graph.is_connected g) then
    Array.make n { root_id = 0; level = 0; parent_id = 0 }
  else begin
    let tree = Spanning_tree.bfs g ~root:leader in
    Array.init n (fun v ->
        {
          root_id = Ids.assign ids leader;
          level = Spanning_tree.dist tree v;
          parent_id = Ids.assign ids (Spanning_tree.parent tree v);
        })
  end

let leader_verify (view : (bool * leader_cert) View.t) =
  let c = view.View.center in
  let ids = match View.ids view with Some ids -> ids | None -> [||] in
  let is_leader, cert = view.View.labels.(c) in
  let nbrs = Graph.neighbours view.View.graph c in
  (* Everyone in sight agrees on the leader's identifier. *)
  Array.for_all
    (fun u ->
      let _, cu = view.View.labels.(u) in
      cu.root_id = cert.root_id)
    nbrs
  (* Leadership <=> level 0 <=> carrying the root id. *)
  && is_leader = (cert.level = 0)
  && (cert.level = 0) = (ids.(c) = cert.root_id)
  &&
  if cert.level = 0 then cert.parent_id = ids.(c)
  else
    (* The parent is a visible neighbour, one level up. *)
    cert.level > 0
    && Array.exists
         (fun u ->
           let _, cu = view.View.labels.(u) in
           ids.(u) = cert.parent_id && cu.level = cert.level - 1)
         nbrs

let unique_leader =
  {
    pls_name = "unique-leader-pls";
    pls_radius = 1;
    prover = leader_prover;
    verify = leader_verify;
  }
