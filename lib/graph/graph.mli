(** Immutable simple undirected graphs on vertices [0 .. n-1].

    This is the basic substrate for the whole library: the LOCAL-model
    simulator, the paper's constructions (layered trees, execution-table
    grids, pyramids) and the view/isomorphism machinery are all built on
    top of this module. *)

type t
(** A simple undirected graph. Vertices are integers [0 .. n-1]; no
    self-loops, no parallel edges. The representation is immutable. *)

exception Invalid_graph of string
(** Raised by constructors on malformed input (self-loop, out-of-range
    endpoint, ...). *)

(** {1 Construction} *)

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds the graph on [n] vertices with the given
    edge list. Duplicate edges (in either orientation) are merged.
    @raise Invalid_graph on self-loops or out-of-range endpoints. *)

val of_adjacency : int array array -> t
(** [of_adjacency adj] builds a graph from an adjacency-list array.
    The input is normalised (sorted, deduplicated) and symmetrised.
    @raise Invalid_graph on self-loops or out-of-range endpoints. *)

val empty : int -> t
(** [empty n] is the edgeless graph on [n] vertices. *)

val of_sorted_adjacency_unchecked : int array array -> t
(** Adopt an adjacency array that is {e already} a valid normalised
    representation: every per-vertex array sorted strictly increasing,
    symmetric, loop-free, all endpoints in range. No checks, no copies —
    the arrays are owned by the result. This is the fast-path
    constructor for {!Arena}; general callers should use
    {!of_adjacency}, which normalises. *)

(** {1 Basic accessors} *)

val order : t -> int
(** Number of vertices. *)

val size : t -> int
(** Number of edges. *)

val neighbours : t -> int -> int array
(** [neighbours g v] is the sorted array of neighbours of [v]. The
    returned array must not be mutated. *)

val degree : t -> int -> int

val max_degree : t -> int

val mem_edge : t -> int -> int -> bool
(** [mem_edge g u v] tests adjacency in O(log degree). *)

val edges : t -> (int * int) list
(** All edges as pairs [(u, v)] with [u < v], lexicographically sorted. *)

val fold_vertices : (int -> 'a -> 'a) -> t -> 'a -> 'a

val iter_vertices : (int -> unit) -> t -> unit

val vertices : t -> int list

(** {1 Distances and balls} *)

val bfs_distances : t -> int -> int array
(** [bfs_distances g v] maps each vertex to its hop distance from [v];
    unreachable vertices get [max_int]. *)

val dist : t -> int -> int -> int
(** Hop distance, [max_int] if disconnected. *)

val ball : t -> int -> int -> int array
(** [ball g v t] is the sorted array of vertices within distance [t] of
    [v] (the set B(v,t) of the paper). *)

val eccentricity : t -> int -> int
(** Maximum finite distance from the given vertex.
    @raise Invalid_graph if the graph is disconnected. *)

val diameter : t -> int
(** @raise Invalid_graph if the graph is disconnected or empty. *)

val is_connected : t -> bool
(** The empty graph counts as connected. *)

val components : t -> int array list
(** Connected components as sorted vertex arrays. *)

(** {1 Transformations} *)

val induced : t -> int array -> t * int array
(** [induced g vs] is the subgraph induced on the vertex set [vs]
    (which must be duplicate-free). Returns [(h, back)] where vertex
    [i] of [h] corresponds to vertex [back.(i)] of [g]; [back] is
    sorted so the mapping is canonical. *)

val disjoint_union : t -> t -> t
(** [disjoint_union g h] places [h] after [g]: vertex [v] of [h]
    becomes [order g + v]. *)

val add_edges : t -> (int * int) list -> t
(** Add edges between existing vertices. *)

val add_vertices : t -> int -> t
(** [add_vertices g k] appends [k] isolated vertices. *)

val relabel : t -> int array -> t
(** [relabel g perm] renames vertex [v] to [perm.(v)]; [perm] must be a
    permutation of [0 .. n-1]. The result is isomorphic to [g]. *)

(** {1 Predicates} *)

val equal : t -> t -> bool
(** Structural equality of the concrete representations (same vertex
    numbering); use {!Iso} for isomorphism. *)

val is_cycle : t -> bool
(** Is the graph a single cycle on >= 3 vertices? *)

val is_path_graph : t -> bool
(** Is the graph a simple path (n >= 1)? *)

val is_regular : t -> int -> bool

val pp : Format.formatter -> t -> unit
