type t = {
  a_n : int;
  a_m : int;
  offsets : int array;  (* length n+1; offsets.(n) = 2m *)
  adj : int array;      (* length 2m; slice per vertex, sorted *)
}

let invalid fmt = Format.kasprintf (fun s -> raise (Graph.Invalid_graph s)) fmt

let order t = t.a_n
let size t = t.a_m

let of_graph g =
  let n = Graph.order g in
  let offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    offsets.(v + 1) <- offsets.(v) + Graph.degree g v
  done;
  let adj = Array.make offsets.(n) 0 in
  for v = 0 to n - 1 do
    let nbrs = Graph.neighbours g v in
    Array.blit nbrs 0 adj offsets.(v) (Array.length nbrs)
  done;
  { a_n = n; a_m = Graph.size g; offsets; adj }

let to_graph t =
  Graph.of_sorted_adjacency_unchecked
    (Array.init t.a_n (fun v ->
         let off = t.offsets.(v) in
         Array.sub t.adj off (t.offsets.(v + 1) - off)))

let degree t v =
  if v < 0 || v >= t.a_n then invalid "vertex %d out of range [0,%d)" v t.a_n;
  t.offsets.(v + 1) - t.offsets.(v)

let slice t v =
  if v < 0 || v >= t.a_n then invalid "vertex %d out of range [0,%d)" v t.a_n;
  let off = t.offsets.(v) in
  (t.adj, off, t.offsets.(v + 1) - off)

let neighbours_iter t v f =
  if v < 0 || v >= t.a_n then invalid "vertex %d out of range [0,%d)" v t.a_n;
  for i = t.offsets.(v) to t.offsets.(v + 1) - 1 do
    f (Array.unsafe_get t.adj i)
  done

(* ------------------------------------------------------------------ *)
(* Per-domain graph -> arena cache                                     *)
(* ------------------------------------------------------------------ *)

(* Every driver has the same shape — one big instance, one extraction
   per centre — so the flattening cost is amortised by remembering the
   last few (graph, arena) pairs per domain. Keys compare by physical
   identity: a Graph.t is immutable, so [==] is both sound and free.
   Slots are weak so the cache never extends a graph's lifetime. *)

let cache_slots = 8

type cache = { pairs : (Graph.t * t) Weak.t; mutable next : int }

let cache_key =
  Domain.DLS.new_key (fun () ->
      { pairs = Weak.create cache_slots; next = 0 })

let of_graph_cached g =
  let c = Domain.DLS.get cache_key in
  let rec find i =
    if i >= cache_slots then None
    else
      match Weak.get c.pairs i with
      | Some (g', a) when g' == g -> Some a
      | _ -> find (i + 1)
  in
  match find 0 with
  | Some a -> a
  | None ->
      let a = of_graph g in
      Weak.set c.pairs c.next (Some (g, a));
      c.next <- (c.next + 1) mod cache_slots;
      a

(* ------------------------------------------------------------------ *)
(* Fused ball extraction                                               *)
(* ------------------------------------------------------------------ *)

(* Bit-packed visited set: one bit per vertex. The invariant between
   calls is all-zero; extract_ball clears exactly the bits it set, so
   there is no O(n) wipe on the hot path. *)

let[@inline] bit_test b v =
  Char.code (Bytes.unsafe_get b (v lsr 3)) land (1 lsl (v land 7)) <> 0

let[@inline] bit_set b v =
  let i = v lsr 3 in
  Bytes.unsafe_set b i
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b i) lor (1 lsl (v land 7))))

let[@inline] bit_clear b v =
  let i = v lsr 3 in
  Bytes.unsafe_set b i
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get b i) land lnot (1 lsl (v land 7))))

type scratch = {
  mutable visited : Bytes.t;  (* bitset, all-zero between calls *)
  mutable dist : int array;   (* BFS depth, valid only for visited *)
  mutable queue : int array;  (* BFS queue / member list *)
  mutable rank : int array;   (* old vertex -> new index, members only *)
  mutable cap : int;          (* vertex capacity of the above *)
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      { visited = Bytes.empty; dist = [||]; queue = [||]; rank = [||]; cap = 0 })

(* Reuse accounting, read by the [view.scratch_reuses] telemetry gauge
   and the reuse-pinning test. Cumulative across all domains since
   program start; callers diff snapshots to scope a run. *)
let reuses = Atomic.make 0
let allocs = Atomic.make 0
let scratch_reuses () = Atomic.get reuses
let scratch_allocs () = Atomic.get allocs

let scratch_for n =
  let s = Domain.DLS.get scratch_key in
  if s.cap >= n then Atomic.incr reuses
  else begin
    Atomic.incr allocs;
    s.visited <- Bytes.make ((n + 7) lsr 3) '\000';
    s.dist <- Array.make n 0;
    s.queue <- Array.make n 0;
    s.rank <- Array.make n 0;
    s.cap <- n
  end;
  s

let int_compare (a : int) b = if a < b then -1 else if a > b then 1 else 0

(* Index of the lowest set bit of a non-zero byte. *)
let lowest_bit =
  Array.init 256 (fun x ->
      let rec go i = if x = 0 || x land (1 lsl i) <> 0 then i else go (i + 1) in
      go 0)

let extract_ball t ~center ~radius =
  if radius < 0 then invalid "view: negative radius %d" radius;
  if center < 0 || center >= t.a_n then
    invalid "vertex %d out of range [0,%d)" center t.a_n;
  let s = scratch_for t.a_n in
  let visited = s.visited and dist = s.dist and queue = s.queue in
  let offsets = t.offsets and flat = t.adj in
  (* BFS, truncated at [radius]. *)
  bit_set visited center;
  Array.unsafe_set dist center 0;
  Array.unsafe_set queue 0 center;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let u = Array.unsafe_get queue !head in
    incr head;
    let du = Array.unsafe_get dist u in
    if du < radius then begin
      let stop = Array.unsafe_get offsets (u + 1) in
      for i = Array.unsafe_get offsets u to stop - 1 do
        let w = Array.unsafe_get flat i in
        if not (bit_test visited w) then begin
          bit_set visited w;
          Array.unsafe_set dist w (du + 1);
          Array.unsafe_set queue !tail w;
          incr tail
        end
      done
    end
  done;
  let k = !tail in
  (* Sorted member list. Dense balls read the bitset back in index
     order (ascending for free); sparse balls in huge graphs sort the
     queue instead — the bitset scan would be O(n/8) regardless of the
     ball size. *)
  let back = Array.make k 0 in
  if t.a_n lsr 3 <= 4 * k then begin
    let idx = ref 0 in
    let nbytes = (t.a_n + 7) lsr 3 in
    for b = 0 to nbytes - 1 do
      let byte = Char.code (Bytes.unsafe_get visited b) in
      if byte <> 0 then begin
        let base = b lsl 3 in
        let rest = ref byte in
        while !rest <> 0 do
          let r = !rest in
          Array.unsafe_set back !idx (base + Array.unsafe_get lowest_bit r);
          incr idx;
          rest := r land (r - 1)
        done
      end
    done
  end
  else begin
    Array.blit queue 0 back 0 k;
    Array.sort int_compare back
  end;
  (* Old vertex -> new index. Membership is the still-set visited bit;
     ranks are only written (and only read) for members. *)
  let rank = s.rank in
  for i = 0 to k - 1 do
    Array.unsafe_set rank (Array.unsafe_get back i) i
  done;
  (* Induced adjacency in the new numbering, one pass per slice:
     mapped ranks stream through a scratch buffer ([dist] is dead
     after the BFS) and are copied out at exact size. [back] is sorted
     and CSR slices are sorted, so the ranks come out sorted for
     free. *)
  let tmp = dist in
  let sub_adj = Array.make k [||] in
  for i = 0 to k - 1 do
    let v = Array.unsafe_get back i in
    let stop = Array.unsafe_get offsets (v + 1) in
    let cnt = ref 0 in
    for j = Array.unsafe_get offsets v to stop - 1 do
      let w = Array.unsafe_get flat j in
      if bit_test visited w then begin
        Array.unsafe_set tmp !cnt (Array.unsafe_get rank w);
        incr cnt
      end
    done;
    Array.unsafe_set sub_adj i (Array.sub tmp 0 !cnt)
  done;
  (* Restore the all-zero invariant: clear exactly the bits we set. *)
  for i = 0 to k - 1 do
    bit_clear visited (Array.unsafe_get back i)
  done;
  (Graph.of_sorted_adjacency_unchecked sub_adj, back, Array.unsafe_get rank center)
