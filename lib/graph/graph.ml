exception Invalid_graph of string

type t = {
  n : int;
  adj : int array array;
  m : int;
}

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid_graph s)) fmt

let check_endpoint n v =
  if v < 0 || v >= n then invalid "vertex %d out of range [0,%d)" v n

let int_compare (a : int) b = if a < b then -1 else if a > b then 1 else 0

let normalise_adj n adj =
  let sets = Array.make n [] in
  Array.iteri
    (fun u nbrs ->
      Array.iter
        (fun v ->
          check_endpoint n v;
          if u = v then invalid "self-loop at vertex %d" u;
          sets.(u) <- v :: sets.(u);
          sets.(v) <- u :: sets.(v))
        nbrs)
    adj;
  (* Int-specialised comparison: the polymorphic [compare] walks the
     runtime representation on every call, which shows up on graph
     construction for the large gadget instances. *)
  let dedup l = List.sort_uniq int_compare l in
  Array.map (fun l -> Array.of_list (dedup l)) sets

let of_adjacency adj =
  let n = Array.length adj in
  let adj = normalise_adj n adj in
  let m = Array.fold_left (fun acc a -> acc + Array.length a) 0 adj / 2 in
  { n; adj; m }

let of_edges ~n edges =
  if n < 0 then invalid "negative vertex count %d" n;
  let sets = Array.make n [] in
  List.iter
    (fun (u, v) ->
      check_endpoint n u;
      check_endpoint n v;
      if u = v then invalid "self-loop at vertex %d" u;
      sets.(u) <- v :: sets.(u);
      sets.(v) <- u :: sets.(v))
    edges;
  let adj = Array.map (fun l -> Array.of_list (List.sort_uniq int_compare l)) sets in
  let m = Array.fold_left (fun acc a -> acc + Array.length a) 0 adj / 2 in
  { n; adj; m }

let empty n =
  if n < 0 then invalid "negative vertex count %d" n;
  { n; adj = Array.make n [||]; m = 0 }

(* Adoption constructor for {!Arena}: the caller guarantees the
   adjacency is already a valid normalised representation (per-vertex
   arrays sorted, deduplicated, symmetric, loop-free, in-range), so no
   checks and no copies are performed. Keeping it total on malformed
   input would cost exactly the normalisation pass the arena exists to
   avoid. *)
let of_sorted_adjacency_unchecked adj =
  let n = Array.length adj in
  let m = Array.fold_left (fun acc a -> acc + Array.length a) 0 adj / 2 in
  { n; adj; m }

let order g = g.n
let size g = g.m

let neighbours g v =
  check_endpoint g.n v;
  g.adj.(v)

let degree g v = Array.length (neighbours g v)

let max_degree g = Array.fold_left (fun acc a -> max acc (Array.length a)) 0 g.adj

(* Binary search in the sorted neighbour array. *)
let mem_edge g u v =
  check_endpoint g.n u;
  check_endpoint g.n v;
  let a = g.adj.(u) in
  let rec search lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = v then true
      else if a.(mid) < v then search (mid + 1) hi
      else search lo mid
  in
  search 0 (Array.length a)

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    let nbrs = g.adj.(u) in
    for i = Array.length nbrs - 1 downto 0 do
      let v = nbrs.(i) in
      if u < v then acc := (u, v) :: !acc
    done
  done;
  !acc

let fold_vertices f g init =
  let rec go v acc = if v >= g.n then acc else go (v + 1) (f v acc) in
  go 0 init

let iter_vertices f g =
  for v = 0 to g.n - 1 do
    f v
  done

let vertices g = List.init g.n Fun.id

(* Forward declaration of the per-domain BFS scratch defined below; the
   full-graph BFS only borrows its queue array. *)

let bfs_distances_with queue g src =
  let dist = Array.make g.n max_int in
  dist.(src) <- 0;
  queue.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    let du = dist.(u) + 1 in
    Array.iter
      (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- du;
          queue.(!tail) <- v;
          incr tail
        end)
      g.adj.(u)
  done;
  dist

(* Truncated BFS: only the ball is explored, so extracting small views
   from very large graphs (e.g. deep layered trees) stays cheap. The
   visited set is a per-domain generation-stamped array — no clearing
   between calls and no hashing on the hot path — so each call costs
   O(ball edges + |ball| log |ball|) with zero table churn. *)
type bfs_scratch = {
  mutable stamp : int array;
  mutable bdist : int array;
  mutable bqueue : int array;
  mutable gen : int;
}

let bfs_scratch_key =
  Domain.DLS.new_key (fun () ->
      { stamp = [||]; bdist = [||]; bqueue = [||]; gen = 0 })

let bfs_scratch n =
  let s = Domain.DLS.get bfs_scratch_key in
  if Array.length s.stamp < n then begin
    s.stamp <- Array.make n 0;
    s.bdist <- Array.make n 0;
    s.bqueue <- Array.make n 0;
    s.gen <- 0
  end;
  s.gen <- s.gen + 1;
  s

let bfs_distances g src =
  check_endpoint g.n src;
  bfs_distances_with (bfs_scratch g.n).bqueue g src

let dist g u v = (bfs_distances g u).(v)

let ball g v t =
  check_endpoint g.n v;
  let s = bfs_scratch g.n in
  let gen = s.gen and stamp = s.stamp and dist = s.bdist and queue = s.bqueue in
  stamp.(v) <- gen;
  dist.(v) <- 0;
  queue.(0) <- v;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    let du = dist.(u) in
    if du < t then
      Array.iter
        (fun w ->
          if stamp.(w) <> gen then begin
            stamp.(w) <- gen;
            dist.(w) <- du + 1;
            queue.(!tail) <- w;
            incr tail
          end)
        g.adj.(u)
  done;
  let members = Array.sub queue 0 !tail in
  Array.sort int_compare members;
  members

let eccentricity g v =
  let d = bfs_distances g v in
  Array.fold_left
    (fun acc x ->
      if x = max_int then invalid "eccentricity of a disconnected graph"
      else max acc x)
    0 d

let is_connected g =
  if g.n = 0 then true
  else
    let d = bfs_distances g 0 in
    Array.for_all (fun x -> x < max_int) d

let diameter g =
  if g.n = 0 then invalid "diameter of the empty graph";
  fold_vertices (fun v acc -> max acc (eccentricity g v)) g 0

let components g =
  let seen = Array.make g.n false in
  let comps = ref [] in
  for v = 0 to g.n - 1 do
    if not seen.(v) then begin
      let d = bfs_distances g v in
      let comp = ref [] in
      for u = g.n - 1 downto 0 do
        if d.(u) < max_int then begin
          seen.(u) <- true;
          comp := u :: !comp
        end
      done;
      comps := Array.of_list !comp :: !comps
    end
  done;
  List.rev !comps

let induced g vs =
  let back = Array.copy vs in
  let k = Array.length back in
  (* The common caller passes a ball, which is already sorted: detect
     that with one scan and skip the sort. *)
  let presorted = ref true in
  for i = 1 to k - 1 do
    if back.(i - 1) >= back.(i) then presorted := false
  done;
  if not !presorted then Array.sort int_compare back;
  for i = 1 to k - 1 do
    if back.(i) = back.(i - 1) then invalid "induced: duplicate vertex %d" back.(i)
  done;
  Array.iter (check_endpoint g.n) back;
  (* Vertex-to-rank lookup through a generation-stamped per-domain map:
     O(1) per neighbour with no hashing, no clearing between calls.
     Because [back] is sorted and the source adjacency lists are sorted,
     the mapped neighbour ranks come out already sorted — no per-vertex
     sort either. *)
  let s = bfs_scratch g.n in
  let gen = s.gen and rstamp = s.stamp and rmap = s.bdist in
  Array.iteri
    (fun i v ->
      rstamp.(v) <- gen;
      rmap.(v) <- i)
    back;
  let rank u = if rstamp.(u) = gen then rmap.(u) else -1 in
  let adj =
    Array.map
      (fun v ->
        let nbrs = g.adj.(v) in
        let deg = Array.length nbrs in
        let cnt = ref 0 in
        for i = 0 to deg - 1 do
          if rank nbrs.(i) >= 0 then incr cnt
        done;
        let out = Array.make !cnt 0 in
        let j = ref 0 in
        for i = 0 to deg - 1 do
          let r = rank nbrs.(i) in
          if r >= 0 then begin
            out.(!j) <- r;
            incr j
          end
        done;
        out)
      back
  in
  let m = Array.fold_left (fun acc a -> acc + Array.length a) 0 adj / 2 in
  ({ n = k; adj; m }, back)

let disjoint_union g h =
  let shift = g.n in
  let adj =
    Array.append (Array.map Array.copy g.adj)
      (Array.map (Array.map (fun v -> v + shift)) h.adj)
  in
  { n = g.n + h.n; adj; m = g.m + h.m }

let add_edges g new_edges =
  of_edges ~n:g.n (new_edges @ edges g)

let add_vertices g k =
  if k < 0 then invalid "add_vertices: negative count %d" k;
  { n = g.n + k; adj = Array.append g.adj (Array.make k [||]); m = g.m }

let relabel g perm =
  if Array.length perm <> g.n then invalid "relabel: permutation length mismatch";
  let seen = Array.make g.n false in
  Array.iter
    (fun v ->
      check_endpoint g.n v;
      if seen.(v) then invalid "relabel: not a permutation (duplicate %d)" v;
      seen.(v) <- true)
    perm;
  of_edges ~n:g.n (List.map (fun (u, v) -> (perm.(u), perm.(v))) (edges g))

let equal g h = g.n = h.n && g.adj = h.adj

let is_regular g d = fold_vertices (fun v acc -> acc && degree g v = d) g true

let is_cycle g = g.n >= 3 && g.m = g.n && is_regular g 2 && is_connected g

let is_path_graph g =
  g.n >= 1 && g.m = g.n - 1 && is_connected g && max_degree g <= 2

let pp ppf g =
  Format.fprintf ppf "@[<hov 2>graph(n=%d, m=%d:" g.n g.m;
  List.iter (fun (u, v) -> Format.fprintf ppf "@ %d-%d" u v) (edges g);
  Format.fprintf ppf ")@]"
