(** Rooted local views: the structure [(G, x, Id) |> B(v, t)] that a
    node [v] sees after [t] communication rounds in the LOCAL model.

    A view is an induced ball, re-indexed to [0 .. k-1], with a
    distinguished centre, the node labels, and optionally the node
    identifiers. Id-oblivious algorithms receive views with
    [ids = None]. *)

type 'a t = private {
  center : int;           (** index of the view's root *)
  radius : int;           (** the horizon [t] it was extracted at *)
  graph : Graph.t;        (** induced ball, re-indexed *)
  labels : 'a array;      (** local inputs *)
  ids : int array option; (** identifiers, or [None] when oblivious *)
}

val extract : ?ids:int array -> 'a Labelled.t -> center:int -> radius:int -> 'a t
(** [extract ?ids lg ~center ~radius] is the view of node [center] in
    [lg] at horizon [radius]. When [ids] is given it must assign a
    distinct identifier to every node of [lg]; for efficiency only the
    restriction to the ball is re-validated here (global injectivity
    is the identifier layer's invariant).
    @raise Graph.Invalid_graph on a malformed id assignment. *)

val extract_mapped :
  ?ids:int array -> 'a Labelled.t -> center:int -> radius:int -> 'a t * int array
(** Like {!extract}, but also returns the (sorted) array mapping
    view-local indices back to the original node numbers — what a
    caller needs to re-attach a fresh id assignment to a pre-extracted
    view without re-extracting the ball. *)

val extraction_count : unit -> int
(** Total ball extractions performed so far (all domains). Used by
    tests to pin that hoisted decision paths do per-assignment work
    that does not scale with view extraction. *)

val of_parts :
  ?ids:int array -> center:int -> radius:int -> 'a Labelled.t -> 'a t
(** Wrap an already-extracted ball (used by generators that enumerate
    syntactically possible views, e.g. the neighbourhood generator [B]
    of Section 3). [center] must lie in the graph and every node must
    be within [radius] of it. *)

val strip_ids : 'a t -> 'a t
(** Forget the identifiers: what an Id-oblivious algorithm sees. *)

val order : 'a t -> int

val center_label : 'a t -> 'a

val center_id : 'a t -> int
(** @raise Not_found if the view carries no ids. *)

val dist_from_center : 'a t -> int array
(** Distance of each view node from the centre. *)

val map_labels : ('a -> 'b) -> 'a t -> 'b t

val reassign_ids : 'a t -> int array -> 'a t
(** Replace the id assignment (must be injective over the view). *)

val equal_repr : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
(** Equality of concrete representations; use {!Iso.views_isomorphic}
    for equality up to isomorphism. *)

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
