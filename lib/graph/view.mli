(** Rooted local views: the structure [(G, x, Id) |> B(v, t)] that a
    node [v] sees after [t] communication rounds in the LOCAL model.

    A view is an induced ball, re-indexed to [0 .. k-1], with a
    distinguished centre, the node labels, and optionally the node
    identifiers. Id-oblivious algorithms receive views with
    [ids = None].

    {b Access monitoring.} The accessor functions of this module
    ([center_id], [id], [ids], [label], [neighbours], ...) are the
    sanctioned way for a local algorithm to read its view, and they are
    instrumented: when a {!monitor} is installed (see
    [Locald_analysis.Trace]) every read is reported together with the
    accessed node, its distance from the centre, and — for identifier
    reads — the {e provenance} of the identifier array (whether it
    came from the run's input assignment or was synthesised locally,
    e.g. by the simulation [A*] re-assigning ids before re-deciding).
    Reads through the raw record fields bypass the monitor; the
    [locald lint] rule [naked-ids-access] therefore bans [.ids] field
    access outside [lib/graph] and [lib/analysis], making identifier
    reads exhaustively mediated. *)

type 'a t = private {
  center : int;           (** index of the view's root *)
  radius : int;           (** the horizon [t] it was extracted at *)
  graph : Graph.t;        (** induced ball, re-indexed *)
  labels : 'a array;      (** local inputs *)
  ids : int array option; (** identifiers, or [None] when oblivious *)
}

exception No_ids of string
(** Raised when an identifier accessor is applied to a view that
    carries no identifiers ([ids = None]) — i.e. an algorithm that is
    not Id-oblivious was run in the Id-oblivious model. The payload
    names the accessor and, when the caller supplied it (see
    {!Locald_local.Runner}), the offending algorithm. *)

(** {1 Access monitoring} *)

(** One observed read of the view, as reported to the installed
    monitor. [depth] is the node's distance from the view's centre;
    whole-view reads (e.g. {!order}) carry [node = None] and
    [depth = 0] and do not count towards per-node depth statistics. *)
type access =
  | Id_read of { node : int; depth : int; id : int; input : bool }
      (** a single identifier was read; [input] is true when the id
          array has input provenance (per the monitor's classifier) *)
  | Ids_read of { input : bool }
      (** the whole identifier array was read at once *)
  | Label_read of { node : int; depth : int }
  | Structure_read of { node : int option; depth : int }

type monitor = {
  input_ids : int array -> bool;
      (** provenance classifier: does this (physical) id array carry
          the run's input assignment? Synthetic arrays — built by
          {!reassign_ids} callers such as the simulation [A*] — should
          classify as [false]. *)
  emit : access -> unit;
}

val with_monitor : monitor -> (unit -> 'r) -> 'r
(** Install the monitor for the calling domain for the duration of the
    thunk (exception-safe, restores any previously installed monitor).
    Monitors are domain-local: parallel certification installs one per
    work item and they do not interfere. *)

val monitored : unit -> bool
(** Is a monitor installed on the calling domain? *)

(** {1 Construction} *)

val extract : ?ids:int array -> 'a Labelled.t -> center:int -> radius:int -> 'a t
(** [extract ?ids lg ~center ~radius] is the view of node [center] in
    [lg] at horizon [radius]. When [ids] is given it must assign a
    distinct identifier to every node of [lg]; for efficiency only the
    restriction to the ball is re-validated here (global injectivity
    is the identifier layer's invariant).
    @raise Graph.Invalid_graph on a malformed id assignment. *)

val extract_mapped :
  ?ids:int array -> 'a Labelled.t -> center:int -> radius:int -> 'a t * int array
(** Like {!extract}, but also returns the (sorted) array mapping
    view-local indices back to the original node numbers — what a
    caller needs to re-attach a fresh id assignment to a pre-extracted
    view without re-extracting the ball. *)

val extraction_count : unit -> int
(** Total ball extractions performed so far (all domains). Used by
    tests to pin that hoisted decision paths do per-assignment work
    that does not scale with view extraction. *)

val of_parts :
  ?ids:int array -> center:int -> radius:int -> 'a Labelled.t -> 'a t
(** Wrap an already-extracted ball (used by generators that enumerate
    syntactically possible views, e.g. the neighbourhood generator [B]
    of Section 3). [center] must lie in the graph and every node must
    be within [radius] of it. *)

val strip_ids : 'a t -> 'a t
(** Forget the identifiers: what an Id-oblivious algorithm sees. *)

(** {1 Instrumented accessors} *)

val order : 'a t -> int
(** Number of nodes of the ball (a whole-view structure read). *)

val center_label : 'a t -> 'a

val center_id : 'a t -> int
(** @raise No_ids if the view carries no ids. *)

val id : 'a t -> int -> int
(** [id view v] is the identifier of view node [v].
    @raise No_ids if the view carries no ids.
    @raise Invalid_argument if [v] is out of range. *)

val ids : 'a t -> int array option
(** The whole identifier array (recorded as a bulk id read when
    present). The returned array must not be mutated. *)

val has_ids : 'a t -> bool
(** Does the view carry identifiers? Observing {e presence} reveals
    nothing about the assignment, so no id read is recorded. *)

val label : 'a t -> int -> 'a
(** [label view v] is the input label of view node [v]. *)

val neighbours : 'a t -> int -> int array
(** [neighbours view v] are the ball-local neighbours of [v] (a
    structure read at [v]'s depth). The array must not be mutated. *)

val degree : 'a t -> int -> int

val dist_from_center : 'a t -> int array
(** Distance of each view node from the centre (a whole-view structure
    read). *)

(** {1 Transformations} *)

val map_labels : ('a -> 'b) -> 'a t -> 'b t

val mapi_labels : (int -> 'a -> 'b) -> 'a t -> 'b t
(** Like {!map_labels} with the view-local node index — e.g. folding a
    per-node decoration array into the labels before canonicalising a
    decorated view. *)

val reassign_ids : 'a t -> int array -> 'a t
(** Replace the id assignment (must be injective over the view). The
    new array is whatever the caller supplies; a monitor's
    [input_ids] classifier decides its provenance. *)

val equal_repr : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
(** Equality of concrete representations; use {!Iso.views_isomorphic}
    for equality up to isomorphism. *)

val fingerprint : ('a -> int) -> 'a t -> int
(** [fingerprint hash_label view] is a structural digest of the {e
    decorated} view: centre, radius, adjacency, labels (through
    [hash_label]) and the identifier decoration when present. It is the
    hash companion of {!equal_repr} — [equal_repr eq a b] implies equal
    fingerprints whenever [eq x y] implies [hash_label x = hash_label y]
    — and is what memo tables keyed by concrete decorated views should
    hash with. It is {e not} an isomorphism invariant, and computing it
    does not register any access with an installed monitor. *)

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
