(* Isomorphism by 1-WL colour refinement followed by backtracking.

   The refinement assigns canonical colour numbers: at each round the
   (old colour, sorted neighbour colours) keys are sorted and numbered
   in key order, so two isomorphic coloured graphs end with the same
   colour multiset. The backtracking search then only matches vertices
   of equal final colour, maintaining both the forward and the inverse
   partial map so that edges *and* non-edges are preserved at every
   extension step. *)

type key = int * int list

let round_keys g colors =
  Array.mapi
    (fun v c ->
      let nbr = Array.map (fun u -> colors.(u)) (Graph.neighbours g v) in
      Array.sort compare nbr;
      ((c, Array.to_list nbr) : key))
    colors

let canonical_renumber (keyss : key array list) : int array list =
  let all = List.concat_map Array.to_list keyss in
  let distinct = List.sort_uniq compare all in
  let tbl = Hashtbl.create (2 * List.length distinct) in
  List.iteri (fun i k -> Hashtbl.replace tbl k i) distinct;
  List.map (Array.map (fun k -> Hashtbl.find tbl k)) keyss

let count_distinct colors =
  let module S = Set.Make (Int) in
  S.cardinal (Array.fold_left (fun s c -> S.add c s) S.empty colors)

(* Jointly refine the colourings of several graphs until the total
   number of distinct colours stabilises — but at most a fixed number
   of rounds: refinement is only a pruning / bucketing aid (the
   backtracking search is what decides isomorphism exactly), and on
   large graphs that split one colour class per round, running to the
   fixpoint costs Theta(n) rounds of Theta(n) allocation. A fixed
   round count keeps the colouring canonical (both sides always
   perform the same rounds). *)
let max_refinement_rounds = 6

let refine_joint (pairs : (Graph.t * int array) list) : int array list =
  let graphs = List.map fst pairs in
  let rec go rounds colorss =
    if rounds >= max_refinement_rounds then colorss
    else
      let keyss = List.map2 round_keys graphs colorss in
      let colorss' = canonical_renumber keyss in
      let total cs = List.fold_left (fun acc c -> acc + count_distinct c) 0 cs in
      if total colorss' = total colorss then colorss' else go (rounds + 1) colorss'
  in
  (* Renumber the initial colours canonically as well, so arbitrary
     initial colour values (e.g. hashes) become comparable. *)
  let init =
    canonical_renumber (List.map (fun (_, c) -> Array.map (fun x -> (x, [])) c) pairs)
  in
  go 0 init

let refine_colors g colors =
  match refine_joint [ (g, colors) ] with
  | [ c ] -> c
  | _ -> assert false

let sorted_copy a =
  let b = Array.copy a in
  Array.sort compare b;
  b

(* Backtracking extension of a partial isomorphism. [anchor] optionally
   pre-maps one vertex (the view centre). *)
let search g h colors_g colors_h anchor =
  let n = Graph.order g in
  if Graph.order h <> n || Graph.size g <> Graph.size h then None
  else if sorted_copy colors_g <> sorted_copy colors_h then None
  else begin
    let fwd = Array.make n (-1) in
    let inv = Array.make n (-1) in
    (* Most-constrained-first vertex order: small colour class, then
       high degree. *)
    let class_size = Hashtbl.create 16 in
    Array.iter
      (fun c ->
        Hashtbl.replace class_size c (1 + Option.value ~default:0 (Hashtbl.find_opt class_size c)))
      colors_g;
    let order = Array.init n Fun.id in
    Array.sort
      (fun u v ->
        match compare (Hashtbl.find class_size colors_g.(u)) (Hashtbl.find class_size colors_g.(v)) with
        | 0 -> compare (Graph.degree g v) (Graph.degree g u)
        | c -> c)
      order;
    let consistent u v =
      colors_g.(u) = colors_h.(v)
      && Graph.degree g u = Graph.degree h v
      && Array.for_all
           (fun w -> fwd.(w) = -1 || Graph.mem_edge h fwd.(w) v)
           (Graph.neighbours g u)
      && Array.for_all
           (fun y -> inv.(y) = -1 || Graph.mem_edge g inv.(y) u)
           (Graph.neighbours h v)
    in
    let rec assign i =
      if i >= n then true
      else
        let u = order.(i) in
        if fwd.(u) >= 0 then assign (i + 1)
        else
          let rec try_candidates v =
            if v >= n then false
            else if inv.(v) = -1 && consistent u v then begin
              fwd.(u) <- v;
              inv.(v) <- u;
              if assign (i + 1) then true
              else begin
                fwd.(u) <- -1;
                inv.(v) <- -1;
                try_candidates (v + 1)
              end
            end
            else try_candidates (v + 1)
          in
          try_candidates 0
    in
    let anchored =
      match anchor with
      | None -> true
      | Some (u, v) ->
          if consistent u v then begin
            fwd.(u) <- v;
            inv.(v) <- u;
            true
          end
          else false
    in
    if anchored && assign 0 then Some fwd else None
  end

let joint_colors_of_labels eq labels_g labels_h =
  (* Group the labels of both graphs by [eq]; the colour of a label is
     the index of its first occurrence in the concatenated list. *)
  let all = Array.append labels_g labels_h in
  let reps = ref [] in
  let color_of x =
    let rec find i = function
      | [] ->
          reps := !reps @ [ x ];
          i
      | y :: rest -> if eq x y then i else find (i + 1) rest
    in
    find 0 !reps
  in
  let colors = Array.map color_of all in
  let ng = Array.length labels_g in
  (Array.sub colors 0 ng, Array.sub colors ng (Array.length labels_h))

let find_isomorphism_colored g h cg ch anchor =
  match refine_joint [ (g, cg); (h, ch) ] with
  | [ cg'; ch' ] -> search g h cg' ch' anchor
  | _ -> assert false

let find_graph_isomorphism g h =
  let cg = Array.make (Graph.order g) 0 in
  let ch = Array.make (Graph.order h) 0 in
  find_isomorphism_colored g h cg ch None

let graphs_isomorphic g h = Option.is_some (find_graph_isomorphism g h)

let labelled_isomorphic eq a b =
  let cg, ch = joint_colors_of_labels eq (Labelled.labels a) (Labelled.labels b) in
  Option.is_some
    (find_isomorphism_colored (Labelled.graph a) (Labelled.graph b) cg ch None)

let views_isomorphic eq (a : 'a View.t) (b : 'a View.t) =
  let cg, ch = joint_colors_of_labels eq a.View.labels b.View.labels in
  Option.is_some
    (find_isomorphism_colored a.View.graph b.View.graph cg ch
       (Some (a.View.center, b.View.center)))

let view_signature hash (v : 'a View.t) =
  let d = View.dist_from_center v in
  (* Combine the label hash with the distance from the centre so the
     rooting participates in the refinement. *)
  let init = Array.mapi (fun i x -> Hashtbl.hash (hash x, d.(i))) v.View.labels in
  let final = refine_colors v.View.graph init in
  let multiset = sorted_copy final in
  Hashtbl.hash (final.(v.View.center), Array.to_list multiset, Graph.size v.View.graph)

(* The order type of an injective id restriction: ids.(i) is replaced
   by its rank in the sorted order, so [|5;1;9|] and [|7;2;8|] share
   the order type [|1;0;2|]. Two restrictions with the same order type
   are indistinguishable to an order-invariant algorithm (the
   order-invariance reductions of Naor–Stockmeyer and of
   Fraigniaud–Halldorsson–Korman). *)
let order_type ids =
  let n = Array.length ids in
  let idx = Array.init n Fun.id in
  Array.sort (fun i j -> compare ids.(i) ids.(j)) idx;
  let ranks = Array.make n 0 in
  Array.iteri (fun r i -> ranks.(i) <- r) idx;
  ranks

let views_isomorphic_decorated eq (a : 'a View.t) da (b : 'a View.t) db =
  let paired v deco = Array.mapi (fun i x -> (x, deco.(i))) v.View.labels in
  let eq' (x, dx) (y, dy) = eq x y && (dx : int) = dy in
  let cg, ch = joint_colors_of_labels eq' (paired a da) (paired b db) in
  Option.is_some
    (find_isomorphism_colored a.View.graph b.View.graph cg ch
       (Some (a.View.center, b.View.center)))

let decorated_signature hash (v : 'a View.t) deco =
  let d = View.dist_from_center v in
  (* Like {!view_signature}, with the per-node decoration folded into
     the initial colours: isomorphic decorated views (an isomorphism
     preserving labels AND decoration values) get equal signatures. *)
  let init =
    Array.mapi (fun i x -> Hashtbl.hash (hash x, d.(i), deco.(i))) v.View.labels
  in
  let final = refine_colors v.View.graph init in
  let multiset = sorted_copy final in
  Hashtbl.hash
    (final.(v.View.center), Array.to_list multiset, Graph.size v.View.graph, 1)
