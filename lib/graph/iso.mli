(** Graph, labelled-graph and rooted-view isomorphism.

    The separation proofs of the paper rest on local indistinguishability:
    every [t]-view of a no-instance already occurs (up to isomorphism of
    rooted labelled views) in some yes-instance. This module provides the
    exact isomorphism tests used by those experiments, plus a cheap
    canonical signature for bucketing views before the exact test. *)

val graphs_isomorphic : Graph.t -> Graph.t -> bool

val find_graph_isomorphism : Graph.t -> Graph.t -> int array option
(** [find_graph_isomorphism g h] returns a bijection [p] with
    [p.(u) = image of u] such that [u ~ v] in [g] iff [p u ~ p v] in
    [h], if one exists. *)

val labelled_isomorphic :
  ('a -> 'a -> bool) -> 'a Labelled.t -> 'a Labelled.t -> bool
(** Isomorphism that must preserve node labels (up to the given label
    equality). This is the paper's notion of labelled-graph
    isomorphism invariance. *)

val views_isomorphic : ('a -> 'a -> bool) -> 'a View.t -> 'a View.t -> bool
(** Rooted isomorphism: centre maps to centre and labels are preserved.
    Identifiers are deliberately ignored — two views are isomorphic
    exactly when an Id-oblivious algorithm cannot tell them apart. *)

val view_signature : ('a -> int) -> 'a View.t -> int
(** [view_signature hash v] is invariant under rooted labelled
    isomorphism (given that [hash] respects the label equality used in
    {!views_isomorphic}): isomorphic views get equal signatures. Used
    to bucket views; collisions are resolved by the exact test. *)

val order_type : int array -> int array
(** [order_type ids] replaces each identifier by its rank in the sorted
    order of the (injective) array: [[|5;1;9|]] and [[|7;2;8|]] share
    the order type [[|1;0;2|]]. Two id restrictions with equal order
    type are indistinguishable to an {e order-invariant} algorithm —
    the canonicalisation behind the memo's [Order_type] mode. *)

val views_isomorphic_decorated :
  ('a -> 'a -> bool) -> 'a View.t -> int array -> 'a View.t -> int array -> bool
(** [views_isomorphic_decorated eq a da b db] is rooted isomorphism
    that must preserve labels {e and} the per-node integer decorations
    [da]/[db] (e.g. id order types): the exact equivalence underlying
    decorated canonical keys. *)

val decorated_signature : ('a -> int) -> 'a View.t -> int array -> int
(** [decorated_signature hash v deco] extends {!view_signature} with a
    per-node integer decoration folded into the refinement's initial
    colours; invariant under {!views_isomorphic_decorated}. *)

val refine_colors : Graph.t -> int array -> int array
(** One-graph 1-WL colour refinement to a fixpoint, with canonical
    colour numbering: the output colours of isomorphic coloured graphs
    are equal as multisets. Exposed for tests. *)
