type 'a t = {
  center : int;
  radius : int;
  graph : Graph.t;
  labels : 'a array;
  ids : int array option;
}

let invalid fmt = Format.kasprintf (fun s -> raise (Graph.Invalid_graph s)) fmt

let check_ids n = function
  | None -> ()
  | Some ids ->
      if Array.length ids <> n then
        invalid "view: %d ids for %d nodes" (Array.length ids) n;
      let tbl = Hashtbl.create (2 * n) in
      Array.iter
        (fun id ->
          if id < 0 then invalid "view: negative identifier %d" id;
          if Hashtbl.mem tbl id then invalid "view: duplicate identifier %d" id;
          Hashtbl.replace tbl id ())
        ids

(* Ball extractions performed so far, across all domains. The hoisted
   decider paths (Runner.prepare) are specified by "per-assignment work
   does not extract views", and the counter is what lets a test pin
   that. *)
let extractions = Atomic.make 0

let extraction_count () = Atomic.get extractions

let extract_mapped ?ids lg ~center ~radius =
  if radius < 0 then invalid "view: negative radius %d" radius;
  (match ids with
  | Some ids when Array.length ids <> Labelled.order lg ->
      invalid "view: %d ids for %d nodes" (Array.length ids) (Labelled.order lg)
  | Some _ | None -> ());
  Atomic.incr extractions;
  let ball = Graph.ball (Labelled.graph lg) center radius in
  let sub, back = Labelled.induced lg ball in
  (* [back] is sorted, so locate the centre's new index by search. *)
  let new_center = ref (-1) in
  Array.iteri (fun i v -> if v = center then new_center := i) back;
  assert (!new_center >= 0);
  let ids = Option.map (fun ids -> Array.map (fun v -> ids.(v)) back) ids in
  (* Injectivity is validated on the restriction only: global
     injectivity is the input assignment's own invariant (enforced by
     Ids.of_array), and an O(n) check here would make whole-graph runs
     quadratic. *)
  check_ids (Labelled.order sub) ids;
  ( {
      center = !new_center;
      radius;
      graph = Labelled.graph sub;
      labels = Labelled.labels sub;
      ids;
    },
    back )

let extract ?ids lg ~center ~radius = fst (extract_mapped ?ids lg ~center ~radius)

let of_parts ?ids ~center ~radius lg =
  let g = Labelled.graph lg in
  if center < 0 || center >= Graph.order g then
    invalid "view: centre %d out of range" center;
  check_ids (Graph.order g) ids;
  let d = Graph.bfs_distances g center in
  Array.iter
    (fun x ->
      if x > radius then invalid "view: node beyond the stated radius %d" radius)
    d;
  { center; radius; graph = g; labels = Labelled.labels lg; ids }

let strip_ids view = { view with ids = None }
let order view = Graph.order view.graph
let center_label view = view.labels.(view.center)

let center_id view =
  match view.ids with
  | None -> raise Not_found
  | Some ids -> ids.(view.center)

let dist_from_center view = Graph.bfs_distances view.graph view.center

let map_labels f view = { view with labels = Array.map f view.labels }

let reassign_ids view ids =
  check_ids (order view) (Some ids);
  { view with ids = Some ids }

let equal_repr eq a b =
  a.center = b.center && a.radius = b.radius
  && Graph.equal a.graph b.graph
  && Array.for_all2 eq a.labels b.labels
  && a.ids = b.ids

let pp pp_label ppf view =
  Format.fprintf ppf "@[<v 2>view(centre=%d, radius=%d) %a" view.center
    view.radius Graph.pp view.graph;
  Array.iteri
    (fun v x ->
      Format.fprintf ppf "@ x(%d)=%a%t" v pp_label x (fun ppf ->
          match view.ids with
          | Some ids -> Format.fprintf ppf " id=%d" ids.(v)
          | None -> ()))
    view.labels;
  Format.fprintf ppf "@]"
