type 'a t = {
  center : int;
  radius : int;
  graph : Graph.t;
  labels : 'a array;
  ids : int array option;
}

exception No_ids of string

let invalid fmt = Format.kasprintf (fun s -> raise (Graph.Invalid_graph s)) fmt

let check_ids n = function
  | None -> ()
  | Some ids ->
      if Array.length ids <> n then
        invalid "view: %d ids for %d nodes" (Array.length ids) n;
      Array.iter
        (fun id -> if id < 0 then invalid "view: negative identifier %d" id)
        ids;
      (* Injectivity by sort + adjacent comparison: views are small and
         this check sits on the per-assignment hot path, so avoid the
         hashing and allocation of a table. Restrictions of monotone
         assignments arrive already strictly increasing — detect that
         with one scan and skip the sort (injectivity is then free). *)
      let increasing = ref true in
      for i = 1 to n - 1 do
        if ids.(i - 1) >= ids.(i) then increasing := false
      done;
      if not !increasing then begin
        let sorted = Array.copy ids in
        Array.sort
          (fun (a : int) b -> if a < b then -1 else if a > b then 1 else 0)
          sorted;
        for i = 1 to n - 1 do
          if sorted.(i) = sorted.(i - 1) then
            invalid "view: duplicate identifier %d" sorted.(i)
        done
      end

(* ------------------------------------------------------------------ *)
(* Access monitoring                                                   *)
(* ------------------------------------------------------------------ *)

type access =
  | Id_read of { node : int; depth : int; id : int; input : bool }
  | Ids_read of { input : bool }
  | Label_read of { node : int; depth : int }
  | Structure_read of { node : int option; depth : int }

type monitor = {
  input_ids : int array -> bool;
  emit : access -> unit;
}

(* The installed monitor plus a one-slot distance memo: access events
   need the accessed node's distance from the centre, and the common
   case is a burst of reads against one view (and its strip/reassign
   derivatives, which share the graph and centre physically). *)
type installed = {
  mon : monitor;
  mutable memo_graph : Graph.t option;
  mutable memo_center : int;
  mutable memo_dist : int array;
}

let monitor_slot : installed option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let monitored () = !(Domain.DLS.get monitor_slot) <> None

let with_monitor mon f =
  let slot = Domain.DLS.get monitor_slot in
  let previous = !slot in
  slot :=
    Some { mon; memo_graph = None; memo_center = -1; memo_dist = [||] };
  Fun.protect ~finally:(fun () -> slot := previous) f

let depth_of inst view v =
  if v = view.center then 0
  else
  let fresh =
    match inst.memo_graph with
    | Some g -> not (g == view.graph && inst.memo_center = view.center)
    | None -> true
  in
  if fresh then begin
    inst.memo_graph <- Some view.graph;
    inst.memo_center <- view.center;
    inst.memo_dist <- Graph.bfs_distances view.graph view.center
  end;
  inst.memo_dist.(v)

let[@inline] note view make =
  match !(Domain.DLS.get monitor_slot) with
  | None -> ()
  | Some inst -> inst.mon.emit (make inst view)

let note_id view v ids =
  note view (fun inst view ->
      Id_read
        {
          node = v;
          depth = depth_of inst view v;
          id = ids.(v);
          input = inst.mon.input_ids ids;
        })

let note_ids _view ids =
  note _view (fun inst _ -> Ids_read { input = inst.mon.input_ids ids })

let note_label view v =
  note view (fun inst view -> Label_read { node = v; depth = depth_of inst view v })

let note_structure view v =
  note view (fun inst view ->
      match v with
      | None -> Structure_read { node = None; depth = 0 }
      | Some v -> Structure_read { node = Some v; depth = depth_of inst view v })

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(* Ball extractions performed so far, across all domains. The hoisted
   decider paths (Runner.prepare) are specified by "per-assignment work
   does not extract views", and the counter is what lets a test pin
   that. *)
let extractions = Atomic.make 0

let extraction_count () = Atomic.get extractions

let extract_mapped ?ids lg ~center ~radius =
  if radius < 0 then invalid "view: negative radius %d" radius;
  (match ids with
  | Some ids when Array.length ids <> Labelled.order lg ->
      invalid "view: %d ids for %d nodes" (Array.length ids) (Labelled.order lg)
  | Some _ | None -> ());
  Atomic.incr extractions;
  (* One fused pass over the CSR arena: truncated BFS with a bitset
     frontier, then the induced adjacency in the new numbering —
     representation-identical to the historical Graph.ball +
     Labelled.induced pipeline (sorted [back], sorted per-node
     adjacency), but without the per-assignment array churn. The arena
     itself is flattened once per instance and per domain. *)
  let arena = Arena.of_graph_cached (Labelled.graph lg) in
  let sub, back, new_center = Arena.extract_ball arena ~center ~radius in
  assert (new_center < Array.length back && back.(new_center) = center);
  let all_labels = Labelled.labels lg in
  let labels = Array.map (fun v -> Array.unsafe_get all_labels v) back in
  let ids = Option.map (fun ids -> Array.map (fun v -> ids.(v)) back) ids in
  (* Injectivity is validated on the restriction only: global
     injectivity is the input assignment's own invariant (enforced by
     Ids.of_array), and an O(n) check here would make whole-graph runs
     quadratic. *)
  check_ids (Graph.order sub) ids;
  ({ center = new_center; radius; graph = sub; labels; ids }, back)

let extract ?ids lg ~center ~radius = fst (extract_mapped ?ids lg ~center ~radius)

let of_parts ?ids ~center ~radius lg =
  let g = Labelled.graph lg in
  if center < 0 || center >= Graph.order g then
    invalid "view: centre %d out of range" center;
  check_ids (Graph.order g) ids;
  let d = Graph.bfs_distances g center in
  Array.iter
    (fun x ->
      if x > radius then invalid "view: node beyond the stated radius %d" radius)
    d;
  { center; radius; graph = g; labels = Labelled.labels lg; ids }

let strip_ids view = { view with ids = None }

(* ------------------------------------------------------------------ *)
(* Instrumented accessors                                              *)
(* ------------------------------------------------------------------ *)

let order view =
  note_structure view None;
  Graph.order view.graph

let center_label view =
  note_label view view.center;
  view.labels.(view.center)

let center_id view =
  match view.ids with
  | None -> raise (No_ids "View.center_id: the view carries no identifiers")
  | Some ids ->
      note_id view view.center ids;
      ids.(view.center)

let id view v =
  if v < 0 || v >= Graph.order view.graph then
    invalid_arg (Printf.sprintf "View.id: node %d out of range" v);
  match view.ids with
  | None -> raise (No_ids "View.id: the view carries no identifiers")
  | Some ids ->
      note_id view v ids;
      ids.(v)

let ids view =
  (match view.ids with Some a -> note_ids view a | None -> ());
  view.ids

let has_ids view = view.ids <> None

let label view v =
  if v < 0 || v >= Graph.order view.graph then
    invalid_arg (Printf.sprintf "View.label: node %d out of range" v);
  note_label view v;
  view.labels.(v)

let neighbours view v =
  note_structure view (Some v);
  Graph.neighbours view.graph v

let degree view v =
  note_structure view (Some v);
  Graph.degree view.graph v

let dist_from_center view =
  note_structure view None;
  Graph.bfs_distances view.graph view.center

(* ------------------------------------------------------------------ *)
(* Transformations                                                     *)
(* ------------------------------------------------------------------ *)

let map_labels f view = { view with labels = Array.map f view.labels }

let mapi_labels f view =
  { view with labels = Array.init (Array.length view.labels) (fun i -> f i view.labels.(i)) }

let reassign_ids view ids =
  check_ids (Graph.order view.graph) (Some ids);
  { view with ids = Some ids }

(* Structural digest of the decorated view — centre, radius, adjacency,
   labels (through the caller's label hash) and the id decoration when
   present. This is deliberately NOT an isomorphism invariant: it is the
   hash side of {!equal_repr}, for memo tables keyed by concrete
   decorated views. Reads go through the raw fields (we are the module
   that owns them), so computing a fingerprint never registers as an
   algorithm access. *)
let fingerprint hash_label view =
  let h = ref 0x9e3779b9 in
  let mix x = h := ((!h * 131) + x) land max_int in
  mix view.center;
  mix view.radius;
  let g = view.graph in
  mix (Graph.order g);
  for v = 0 to Graph.order g - 1 do
    let nbrs = Graph.neighbours g v in
    mix (Array.length nbrs);
    Array.iter mix nbrs
  done;
  Array.iter (fun l -> mix (hash_label l)) view.labels;
  (match view.ids with
  | None -> mix 0
  | Some ids ->
      mix 1;
      Array.iter mix ids);
  !h

let equal_repr eq a b =
  a.center = b.center && a.radius = b.radius
  && Graph.equal a.graph b.graph
  && Array.for_all2 eq a.labels b.labels
  && a.ids = b.ids

let pp pp_label ppf view =
  Format.fprintf ppf "@[<v 2>view(centre=%d, radius=%d) %a" view.center
    view.radius Graph.pp view.graph;
  Array.iteri
    (fun v x ->
      Format.fprintf ppf "@ x(%d)=%a%t" v pp_label x (fun ppf ->
          match view.ids with
          | Some ids -> Format.fprintf ppf " id=%d" ids.(v)
          | None -> ()))
    view.labels;
  Format.fprintf ppf "@]"
