(** Compact CSR (compressed sparse row) graph arena.

    A {!Graph.t} stores one heap-allocated neighbour array per vertex.
    That layout is convenient for construction but hostile to the
    per-assignment hot path: ball extraction walks millions of small
    arrays through a double indirection, and the generation-stamped
    visited set costs a machine word per vertex of cache footprint.

    The arena flattens the whole graph into two int arrays — [adj]
    holding every adjacency list back to back, and [offsets] holding
    the slice bounds, so the neighbours of [v] are
    [adj.(offsets.(v)) .. adj.(offsets.(v+1) - 1)] (sorted strictly
    increasing, vertex ids implicit). On top of it sits a fused,
    allocation-lean ball extractor with a [Bytes]-backed bitset
    frontier and a per-domain scratch buffer that is reused across
    extractions (see {!scratch_reuses}).

    The arena is a {e view} of an immutable graph, never an owner:
    converting back with {!to_graph} reproduces the original
    representation exactly. *)

type t
(** An immutable CSR snapshot of a {!Graph.t}. *)

(** {1 Conversion} *)

val of_graph : Graph.t -> t
(** Flatten a graph into CSR form. O(n + m). *)

val of_graph_cached : Graph.t -> t
(** Like {!of_graph}, but consults a small per-domain cache keyed by
    physical identity of the input graph, so repeated extractions from
    the same instance (the common shape of every driver: one graph,
    [n] centres) flatten it only once per domain. The cache holds weak
    references — it never keeps a graph alive. *)

val to_graph : t -> Graph.t
(** Rebuild the per-vertex representation. [to_graph (of_graph g)] is
    {!Graph.equal} to [g] (and byte-identical under [Marshal]). *)

(** {1 Accessors} *)

val order : t -> int
(** Number of vertices. *)

val size : t -> int
(** Number of edges. *)

val degree : t -> int -> int

val slice : t -> int -> int array * int * int
(** [slice t v] is [(adj, off, len)]: the neighbours of [v] are
    [adj.(off) .. adj.(off + len - 1)], sorted strictly increasing.
    The returned array is the arena's own storage — do not mutate. *)

val neighbours_iter : t -> int -> (int -> unit) -> unit
(** [neighbours_iter t v f] applies [f] to each neighbour of [v] in
    increasing order, without allocating. *)

(** {1 Ball extraction} *)

val extract_ball : t -> center:int -> radius:int -> Graph.t * int array * int
(** [extract_ball t ~center ~radius] is [(sub, back, new_center)]: the
    subgraph induced on the radius-[radius] ball around [center],
    exactly as {!Graph.ball} followed by {!Graph.induced} would produce
    it — [back] sorted, per-vertex adjacency sorted — plus the centre's
    index in the new numbering. The BFS frontier is a bit-packed
    [Bytes] visited set and all working storage comes from a per-domain
    scratch buffer, so the only allocations are the returned arrays.
    @raise Graph.Invalid_graph if [center] is out of range or [radius]
    is negative. *)

(** {1 Scratch telemetry} *)

val scratch_reuses : unit -> int
(** Number of {!extract_ball} calls (across all domains, since program
    start) that were served by an already-allocated scratch buffer. *)

val scratch_allocs : unit -> int
(** Number of {!extract_ball} calls that had to grow (or first
    allocate) their domain's scratch buffer. *)
