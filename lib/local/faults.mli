(** Deterministic, seed-driven fault plans for the LOCAL gossip
    simulator.

    The paper's [(not C)] regime allows arbitrary (even non-total)
    node behaviour, and its randomised [(p, q)]-deciders tolerate
    bounded error; this module supplies the adversary those results
    are measured against: per-round message loss and duplication,
    crash-stop node failures, and per-node fuel budgets for the decide
    step. A plan is {e pure data} — every fault coin is a hash of
    [(seed, kind, round, src, dst)] — so a fixed seed reproduces the
    same faulted trace byte-for-byte, independent of evaluation
    order. *)

type plan = {
  seed : int;                (** fault-coin seed *)
  drop : float;              (** per-message loss probability, in [0, 1] *)
  duplicate : float;         (** per-message duplicate-delivery probability *)
  crashes : (int * int) list;
      (** crash-stop failures [(node, round)]: from the start of
          [round] (1-based) the node neither sends nor computes *)
  fuel : int option;         (** per-node budget for the decide step
                                 (measured by the runner's cost model);
                                 [None] = unmetered *)
  retries : int;             (** extra re-gossip rounds appended after
                                 the horizon's [radius + 1], to recover
                                 knowledge lost to drops *)
}

val empty : plan
(** No faults, no retries: the plan under which {!Fault_runner.run} is
    output-identical to [Runner.run_message_passing]. *)

val make :
  ?seed:int ->
  ?drop:float ->
  ?duplicate:float ->
  ?crashes:(int * int) list ->
  ?fuel:int ->
  ?retries:int ->
  unit ->
  plan
(** Validated construction; every field defaults to its {!empty} value.
    @raise Invalid_argument on probabilities outside [0, 1], negative
    retries or fuel, or crash rounds below 1. *)

val validate : plan -> plan
(** Re-check a hand-built record. @raise Invalid_argument as {!make}. *)

val is_empty : plan -> bool
(** No faults configured ([retries] alone does not count: extra
    fault-free gossip rounds cannot change any node's extracted view). *)

val crash_round : plan -> int -> int option
(** [crash_round p v] is the earliest round at which [v] crashes. *)

val drops : plan -> round:int -> src:int -> dst:int -> bool
(** Does the round-[round] message [src -> dst] get lost? Pure in all
    arguments. *)

val duplicates : plan -> round:int -> src:int -> dst:int -> bool
(** Is the round-[round] message [src -> dst] delivered twice?
    (Idempotent merges make this invisible to outputs — it is metered
    in the bandwidth stats.) *)

val pp : Format.formatter -> plan -> unit
