(** Three-valued per-node outcomes, shared by every degraded engine.

    A node that cannot answer soundly answers [Unknown] with a reason
    instead of raising — the graceful-degradation contract introduced
    with {!Fault_runner} and reused verbatim by the asynchronous
    backend ({!Async_runner}), so that cross-engine tests can compare
    outcome arrays directly. [Fault_runner] re-exports these
    constructors; existing callers keep compiling unchanged. *)

type reason = Crashed | Incomplete_view | Fuel_exhausted | Decide_failed

type 'o t = Decided of 'o | Unknown of reason

val decided : 'o t -> bool

val reason_name : reason -> string

val pp :
  (Format.formatter -> 'o -> unit) -> Format.formatter -> 'o t -> unit
