open Locald_graph

type witness = {
  node : int;
  ids_a : Ids.t;
  ids_b : Ids.t;
}

let differing_node outputs_a outputs_b =
  let n = Array.length outputs_a in
  let rec go v =
    if v >= n then None
    else if outputs_a.(v) <> outputs_b.(v) then Some v
    else go (v + 1)
  in
  go 0

let find_variance_sampled ~rng ~trials ~regime alg lg =
  let n = Labelled.order lg in
  let reference_ids = Ids.sample rng regime ~n in
  let reference = Runner.run alg lg ~ids:reference_ids in
  let rec go k =
    if k >= trials then None
    else
      let ids = Ids.sample rng regime ~n in
      let outputs = Runner.run alg lg ~ids in
      match differing_node reference outputs with
      | Some node -> Some { node; ids_a = reference_ids; ids_b = ids }
      | None -> go (k + 1)
  in
  go 0

let find_variance_exhaustive ?(quotient = false) ~bound alg lg =
  let n = Labelled.order lg in
  let prep = Runner.prepare ~memo:(Locald_runtime.Memo.default_mode ()) alg lg in
  (* The naive loop: every assignment against the first, views
     extracted once and decides memoised — the witness (first differing
     node of the first differing assignment, in enumeration order) is
     identical to the historical per-assignment [Runner.run] loop. *)
  let naive () =
    let all = Ids.enumerate_injections ~n ~bound in
    match all () with
    | Seq.Nil -> None
    | Seq.Cons (first, rest) ->
        let reference = Runner.run_prepared prep ~ids:first in
        let rec scan seq =
          match seq () with
          | Seq.Nil -> None
          | Seq.Cons (ids, rest) -> (
              let outputs = Runner.run_prepared prep ~ids in
              match differing_node reference outputs with
              | Some node -> Some { node; ids_a = first; ids_b = ids }
              | None -> scan rest)
        in
        scan rest
  in
  if not quotient then naive ()
  else begin
    (* Same precondition (and exception) as the assignment enumeration. *)
    ignore (Ids.enumerate_injections ~n ~bound : Ids.t Seq.t);
    (* Ball-local quotient: node [v]'s output varies under global
       reassignment iff it varies across the injective restrictions of
       its own ball — every restriction extends to a global assignment
       ([Locald_runtime.Orbit.extend], sound because [bound >= n]), and a global
       assignment only reaches [v] through its restriction. A per-node
       disagreement is reconstructed to two concrete assignments and
       re-checked on a real run before being reported. *)
    let rec over_nodes v =
      if v >= n then None
      else begin
        let back = Runner.ball_of prep v in
        let k = Array.length back in
        let scan = Runner.restriction_scanner prep v in
        let first = ref true in
        let reference = ref None in
        let differing = ref None in
        let scanned = ref 0 in
        let uniform =
          Locald_runtime.Orbit.for_all_injections ~bound ~k (fun r ->
              incr scanned;
              let o = scan r in
              if !first then begin
                first := false;
                reference := Some o;
                true
              end
              else if o = Option.get !reference then true
              else begin
                differing := Some (Array.copy r);
                false
              end)
        in
        Locald_runtime.Orbit.add_scanned !scanned;
        if uniform then over_nodes (v + 1)
        else begin
          (* The lexicographically first restriction is [0..k-1]. *)
          let r0 = Array.init k Fun.id in
          let r = Option.get !differing in
          let ids_a = Ids.of_array (Locald_runtime.Orbit.extend ~n ~bound ~back r0) in
          let ids_b = Ids.of_array (Locald_runtime.Orbit.extend ~n ~bound ~back r) in
          let out_a = Runner.run_prepared prep ~ids:ids_a in
          let out_b = Runner.run_prepared prep ~ids:ids_b in
          if out_a.(v) <> out_b.(v) then Some { node = v; ids_a; ids_b }
          else
            (* A decide that is not a pure function of its view can
               disagree with itself across runs; the quotient's premise
               fails, so answer naively. *)
            naive ()
        end
      end
    in
    over_nodes 0
  end
