(** Checking Id-obliviousness empirically.

    An algorithm is Id-oblivious when its node outputs are invariant
    under every reassignment of identifiers. For small instances this
    can be checked exhaustively over a bounded identifier window; in
    general it is sampled. A single witness of variance proves an
    algorithm is *not* oblivious (that is the content of Theorem 1:
    some properties force the outputs to depend on the assignment). *)

open Locald_graph

type witness = {
  node : int;
  ids_a : Ids.t;
  ids_b : Ids.t;
}
(** A node whose output differs under two assignments. *)

val find_variance_sampled :
  rng:Random.State.t ->
  trials:int ->
  regime:Ids.regime ->
  ('a, 'o) Algorithm.t ->
  'a Labelled.t ->
  witness option
(** Sample assignment pairs valid under the regime and look for an
    output that changes. [None] means no variance was observed (the
    algorithm behaved obliviously on this instance). *)

val find_variance_exhaustive :
  ?quotient:bool ->
  bound:int ->
  ('a, 'o) Algorithm.t ->
  'a Labelled.t ->
  witness option
(** Compare the outputs under {e every} injective assignment into
    [0 .. bound-1] against the first one. Exponential; use only on
    small instances.

    [quotient:true] scans, per node, the injective restrictions of that
    node's ball instead of whole assignments
    ({!Locald_runtime.Orbit.injections}) — exhaustive over far fewer
    decides, and it finds a witness iff the naive scan does (every
    restriction extends to a global assignment). The reconstructed
    witness pair is concretely re-run before being reported, but it is
    generally a {e different} pair than the naive scan's first
    disagreement, which is why the quotient is opt-in
    (default [false]). *)
