(** Gossip knowledge: the (id -> label) bindings and id-keyed edges a
    node accumulates while running the full-information message-passing
    engine. Shared by the fault-free {!Runner} and the fault-injecting
    {!Fault_runner}, so that the two engines reconstruct views through
    the very same code path (the empty-plan identity rests on this).

    The knowledge sets are label-closed by construction: an edge is
    only ever learned from a snapshot (or alongside the sender's own
    binding), so both endpoints of every known edge carry a known
    label. {!reconstruct} relies on this invariant. *)

open Locald_graph

type 'a t

val create : unit -> 'a t
(** Empty knowledge. Callers seed it with the owner's own binding. *)

val copy : 'a t -> 'a t
(** An independent snapshot (used for synchronous-round semantics). *)

val add_node : 'a t -> int -> 'a -> unit
val add_edge : 'a t -> int -> int -> unit
(** Edges are stored undirected (canonically ordered endpoints). *)

val mem_node : 'a t -> int -> bool
val mem_edge : 'a t -> int -> int -> bool

val node_count : 'a t -> int
val edge_count : 'a t -> int

val items : 'a t -> int
(** [node_count + edge_count]: the payload size of shipping the whole
    knowledge set over a link. *)

val merge : into:'a t -> 'a t -> int
(** Merge a received snapshot, returning the number of bindings that
    were genuinely new to the receiver (the {e net} payload). *)

val reconstruct : 'a t -> center_id:int -> radius:int -> 'a View.t
(** Rebuild the known graph (nodes indexed by sorted id) and extract
    the centre's radius-[radius] view from it — the decision step of
    the gossip engines.
    @raise Not_found if [center_id] is unknown. *)

val contains_ball :
  'a t -> 'a Labelled.t -> ids:int array -> center:int -> radius:int -> bool
(** Ground-truth completeness test: does the knowledge contain every
    node of the true radius-[radius] ball around [center] in [lg], and
    every true edge among those ball nodes? When it does, the
    reconstructed view provably equals the fault-free one (the known
    graph is a subgraph of the truth, so no foreign node can enter the
    ball and no distance can shrink). *)
