open Locald_graph

(* Replace the ids of a view by their ranks 0 .. k-1. *)
let normalise_ranks (view : 'a View.t) =
  match View.ids view with
  | None -> view
  | Some ids ->
      let sorted = Array.copy ids in
      Array.sort compare sorted;
      let rank_of = Hashtbl.create (2 * Array.length ids) in
      Array.iteri (fun r id -> Hashtbl.replace rank_of id r) sorted;
      View.reassign_ids view (Array.map (fun id -> Hashtbl.find rank_of id) ids)

let order_invariant ~name ~radius decide =
  Algorithm.make ~name ~radius (fun view -> decide (normalise_ranks view))

(* A random strictly monotone re-embedding of an assignment: compose
   with a sorted set of fresh values. *)
let monotone_reembedding rng ids =
  let a = Ids.to_array ids in
  let n = Array.length a in
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let fresh = Array.make n 0 in
  let v = ref (Random.State.int rng 5) in
  for i = 0 to n - 1 do
    fresh.(i) <- !v;
    v := !v + 1 + Random.State.int rng 7
  done;
  let image = Hashtbl.create (2 * n) in
  Array.iteri (fun i id -> Hashtbl.replace image id fresh.(i)) sorted;
  Ids.of_array (Array.map (fun id -> Hashtbl.find image id) a)

let find_order_variance ~rng ~trials alg lg =
  let n = Labelled.order lg in
  let rec go k =
    if k >= trials then None
    else
      let ids_a = Ids.shuffled rng n in
      let ids_b = monotone_reembedding rng ids_a in
      let out_a = Runner.run alg lg ~ids:ids_a in
      let out_b = Runner.run alg lg ~ids:ids_b in
      let rec diff v =
        if v >= n then None else if out_a.(v) <> out_b.(v) then Some v else diff (v + 1)
      in
      match diff 0 with
      | Some node -> Some { Oblivious.node; ids_a; ids_b }
      | None -> go (k + 1)
  in
  go 0

type 'a po_edge = {
  port : int;
  remote_port : int;
  outward : bool;
  remote_label : 'a;
}

type 'a po_view = {
  center_label : 'a;
  incident : 'a po_edge list;
}

type ('a, 'o) po_algorithm = {
  po_name : string;
  po_decide : 'a po_view -> 'o;
}

let run_po alg lg ~oriented =
  let g = Labelled.graph lg in
  let invalid fmt = Format.kasprintf (fun s -> raise (Graph.Invalid_graph s)) fmt in
  let dir = Hashtbl.create 32 in
  List.iter
    (fun (u, v) ->
      if not (Graph.mem_edge g u v) then invalid "orientation of a non-edge %d-%d" u v;
      if Hashtbl.mem dir (u, v) || Hashtbl.mem dir (v, u) then
        invalid "edge %d-%d oriented twice" u v;
      Hashtbl.replace dir (u, v) ())
    oriented;
  if Hashtbl.length dir <> Graph.size g then invalid "orientation misses some edges";
  let port_of u v =
    let nbrs = Graph.neighbours g u in
    let rec find i = if nbrs.(i) = v then i else find (i + 1) in
    find 0
  in
  Array.init (Labelled.order lg) (fun v ->
      let incident =
        Graph.neighbours g v
        |> Array.to_list
        |> List.mapi (fun port u ->
               {
                 port;
                 remote_port = port_of u v;
                 outward = Hashtbl.mem dir (v, u);
                 remote_label = Labelled.label lg u;
               })
      in
      alg.po_decide { center_label = Labelled.label lg v; incident })
