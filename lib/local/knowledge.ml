open Locald_graph

type 'a t = {
  nodes : (int, 'a) Hashtbl.t;
  edges : (int * int, unit) Hashtbl.t;
}

let create () = { nodes = Hashtbl.create 16; edges = Hashtbl.create 16 }

let copy k = { nodes = Hashtbl.copy k.nodes; edges = Hashtbl.copy k.edges }

let edge_key a b = if a < b then (a, b) else (b, a)

let add_node k id label = Hashtbl.replace k.nodes id label

let add_edge k a b = Hashtbl.replace k.edges (edge_key a b) ()

let mem_node k id = Hashtbl.mem k.nodes id

let mem_edge k a b = Hashtbl.mem k.edges (edge_key a b)

let node_count k = Hashtbl.length k.nodes

let edge_count k = Hashtbl.length k.edges

let items k = node_count k + edge_count k

let merge ~into src =
  let fresh = ref 0 in
  Hashtbl.iter
    (fun id label ->
      if not (Hashtbl.mem into.nodes id) then incr fresh;
      Hashtbl.replace into.nodes id label)
    src.nodes;
  Hashtbl.iter
    (fun e () ->
      if not (Hashtbl.mem into.edges e) then incr fresh;
      Hashtbl.replace into.edges e ())
    src.edges;
  !fresh

let reconstruct k ~center_id ~radius =
  (* Rebuild the known graph, indexing known ids canonically. *)
  let known_ids =
    Hashtbl.fold (fun i _ acc -> i :: acc) k.nodes []
    |> List.sort compare |> Array.of_list
  in
  let index_of = Hashtbl.create (2 * Array.length known_ids) in
  Array.iteri (fun i x -> Hashtbl.replace index_of x i) known_ids;
  let edges =
    Hashtbl.fold
      (fun (a, b) () acc ->
        (Hashtbl.find index_of a, Hashtbl.find index_of b) :: acc)
      k.edges []
  in
  let known_graph = Graph.of_edges ~n:(Array.length known_ids) edges in
  let labels = Array.map (fun i -> Hashtbl.find k.nodes i) known_ids in
  let known_lg = Labelled.make known_graph labels in
  let center = Hashtbl.find index_of center_id in
  View.extract ~ids:known_ids known_lg ~center ~radius

let contains_ball k lg ~ids ~center ~radius =
  let g = Labelled.graph lg in
  let ball = Graph.ball g center radius in
  let in_ball = Array.make (Graph.order g) false in
  Array.iter (fun v -> in_ball.(v) <- true) ball;
  Array.for_all
    (fun u ->
      mem_node k ids.(u)
      && Array.for_all
           (fun w -> (not in_ball.(w)) || mem_edge k ids.(u) ids.(w))
           (Graph.neighbours g u))
    ball
