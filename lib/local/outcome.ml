type reason = Crashed | Incomplete_view | Fuel_exhausted | Decide_failed

type 'o t = Decided of 'o | Unknown of reason

let decided = function Decided _ -> true | Unknown _ -> false

let reason_name = function
  | Crashed -> "crashed"
  | Incomplete_view -> "incomplete-view"
  | Fuel_exhausted -> "fuel-exhausted"
  | Decide_failed -> "decide-failed"

let pp pp_o ppf = function
  | Decided o -> pp_o ppf o
  | Unknown r -> Format.fprintf ppf "unknown(%s)" (reason_name r)
