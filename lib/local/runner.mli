(** Execution engines for local algorithms.

    Two engines are provided and must agree (this is tested): the
    direct engine extracts each node's radius-[t] view from the global
    input, while the message-passing engine actually simulates [t]
    synchronous rounds of full-information gossip in the LOCAL model
    and lets each node reconstruct its view from what it heard. The
    equivalence is the textbook "local horizon = round count"
    correspondence of Section 1.2. *)

open Locald_graph

val check_size : 'a Labelled.t -> Ids.t -> unit
(** Shared precondition of every engine (also used by {!Fault_runner}).
    @raise Ids.Invalid_ids if the assignment's size differs from the
    graph order. *)

val run :
  ?backend:Backend.t ->
  ('a, 'o) Algorithm.t -> 'a Labelled.t -> ids:Ids.t -> 'o array
(** Direct view-evaluation engine. [backend] (default
    {!Backend.default}) selects the simulator: [Sync] extracts views
    directly, [Async] runs the message-passing protocol of
    {!Async_runner} — same outputs, pinned by the cross-backend
    battery.
    @raise Ids.Invalid_ids if the assignment has the wrong size.
    @raise View.No_ids (here and in the other engines), prefixed with
    the algorithm's name, if the decide function applies an identifier
    accessor to an id-free view. *)

type ('a, 'o) prepared
(** A labelled graph with every node's radius-[t] ball pre-extracted
    (id-free). The ball structure is independent of the identifier
    assignment, so quantifying over assignments only needs to
    re-decorate the cached views — {!run_prepared} performs no ball
    extraction at all. *)

val prepare :
  ?memo:Locald_runtime.Memo.mode ->
  ?memo_capacity:int ->
  ?backend:Backend.t ->
  ('a, 'o) Algorithm.t -> 'a Labelled.t -> ('a, 'o) prepared
(** Extract all views once ([Labelled.order lg] extractions —
    [backend] (default {!Backend.default}) chooses whether they come
    from direct extraction or from an asynchronous protocol run under
    identity identifiers; the resulting (view, ball map) pairs are
    representation-identical either way).

    [memo] (default [Off]) attaches a decide-once table: every decide
    through this preparation is keyed by (node, ball id-restriction)
    and computed at most once per distinct key. For pure decide
    functions this is observationally transparent — byte-identical
    outputs at any [--jobs], with the memo on or off; deciders that are
    {e not} pure functions of their view (e.g. per-node randomness)
    must keep the default. [Memo.Order_type] additionally collapses
    keys to the restriction's rank pattern, which is only sound for
    order-invariant deciders — opt in knowingly.

    [memo_capacity] bounds the attached table's live entries
    ({!Locald_runtime.Memo.create}'s [capacity]); eviction recomputes
    dropped keys and never changes outputs. Long-lived preparations —
    the serve daemon's cross-request engines — always pass a bound;
    one-shot runs default to unbounded. *)

val prepared_size : ('a, 'o) prepared -> int
(** Order of the underlying graph. *)

val sync_scratch_gauges : unit -> unit
(** Flush the arena's cumulative scratch-pool counters
    ({!Locald_graph.Arena.scratch_reuses}/[scratch_allocs]) into the
    current telemetry run as the [view.scratch_reuses] /
    [view.scratch_allocs] gauges. Called by the batch-extraction sites
    ({!prepare}, [Randomized.prepare]) so each run's gauges report that
    run's reuse; deltas land in whichever run is current at flush
    time. *)

val ball_of : ('a, 'o) prepared -> int -> int array
(** The sorted array mapping node [v]'s view-local indices back to
    global node numbers (so its length is [v]'s ball size). Must not be
    mutated. *)

val decide_restricted :
  ?memoise:bool -> ('a, 'o) prepared -> int -> int array -> 'o
(** [decide_restricted prep v r] decides node [v] under the
    ball-restricted id assignment [r] ([r.(i)] is the id of view-local
    node [i] — the restriction of a global assignment along
    {!ball_of}). This is the decide-once memoisation point; under
    [Exact_ids] memoisation [r] must be freshly allocated (it is
    retained as a table key) and injective. [memoise:false] bypasses
    the table for this call — what the exact-mode quotient scans use,
    since a scan visits every distinct restriction exactly once (the
    table could only add overhead there) and can then feed the decide a
    reused scratch array ({!Locald_runtime.Orbit.for_all_injections}). *)

val restriction_scanner : ('a, 'o) prepared -> int -> int array -> 'o
(** [restriction_scanner prep v] is a stateful decide function for
    scanning node [v] over many ball restrictions (same calling
    convention as {!decide_restricted}; the restriction array may be a
    reused scratch buffer). It caches decide outputs in a read-adaptive
    decision trie: each real decide runs under an access monitor that
    records which id slots it read, and any later restriction agreeing
    on exactly those slots reuses the output without deciding at all —
    for a decide that reads, say, only the centre id, an entire
    [perm bound k] scan costs [bound] real decides. Requires a pure
    decide (the decide-once contract); bulk id reads or replay
    inconsistencies degrade transparently to direct decides. The
    returned closure is single-domain state for one sequential scan —
    do not share it across domains; under an installed monitor it
    degrades to direct decides so traces stay faithful. Cache traffic
    is reported to the {!Locald_runtime.Memo} process-wide
    counters. *)

val run_prepared : ('a, 'o) prepared -> ids:Ids.t -> 'o array
(** Exactly [run alg lg ~ids], but with the per-assignment view
    extraction hoisted out (and decides routed through the memo when
    one was requested at {!prepare}).
    @raise Ids.Invalid_ids if the assignment has the wrong size. *)

val run_oblivious : ('a, 'o) Algorithm.oblivious -> 'a Labelled.t -> 'o array
(** Id-oblivious algorithms need no identifier assignment at all. *)

val run_message_passing :
  ('a, 'o) Algorithm.t -> 'a Labelled.t -> ids:Ids.t -> 'o array
(** Round-based gossip engine: in each of [radius + 1] rounds every
    node sends everything it knows to its neighbours; afterwards each
    node reconstructs the induced ball around itself and decides. *)

type stats = {
  rounds : int;         (** synchronous rounds executed ([radius + 1]) *)
  messages : int;       (** directed node-to-neighbour sends *)
  payload_items : int;  (** gross bandwidth: (id, label) and edge
                            entries shipped, counting the sender's
                            {e entire} snapshot on every edge every
                            round (bindings the receiver already knows
                            included) *)
  new_items : int;      (** net bandwidth: shipped entries that were
                            genuinely new to their receiver — the
                            meaningful congestion number; always
                            [<= payload_items] *)
}

val run_message_passing_stats :
  ('a, 'o) Algorithm.t -> 'a Labelled.t -> ids:Ids.t -> 'o array * stats
(** The gossip engine with communication accounting. *)
