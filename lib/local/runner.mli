(** Execution engines for local algorithms.

    Two engines are provided and must agree (this is tested): the
    direct engine extracts each node's radius-[t] view from the global
    input, while the message-passing engine actually simulates [t]
    synchronous rounds of full-information gossip in the LOCAL model
    and lets each node reconstruct its view from what it heard. The
    equivalence is the textbook "local horizon = round count"
    correspondence of Section 1.2. *)

open Locald_graph

val check_size : 'a Labelled.t -> Ids.t -> unit
(** Shared precondition of every engine (also used by {!Fault_runner}).
    @raise Ids.Invalid_ids if the assignment's size differs from the
    graph order. *)

val run :
  ('a, 'o) Algorithm.t -> 'a Labelled.t -> ids:Ids.t -> 'o array
(** Direct view-evaluation engine.
    @raise Ids.Invalid_ids if the assignment has the wrong size.
    @raise View.No_ids (here and in the other engines), prefixed with
    the algorithm's name, if the decide function applies an identifier
    accessor to an id-free view. *)

type ('a, 'o) prepared
(** A labelled graph with every node's radius-[t] ball pre-extracted
    (id-free). The ball structure is independent of the identifier
    assignment, so quantifying over assignments only needs to
    re-decorate the cached views — {!run_prepared} performs no ball
    extraction at all. *)

val prepare : ('a, 'o) Algorithm.t -> 'a Labelled.t -> ('a, 'o) prepared
(** Extract all views once ([Labelled.order lg] extractions). *)

val prepared_size : ('a, 'o) prepared -> int
(** Order of the underlying graph. *)

val run_prepared : ('a, 'o) prepared -> ids:Ids.t -> 'o array
(** Exactly [run alg lg ~ids], but with the per-assignment view
    extraction hoisted out.
    @raise Ids.Invalid_ids if the assignment has the wrong size. *)

val run_oblivious : ('a, 'o) Algorithm.oblivious -> 'a Labelled.t -> 'o array
(** Id-oblivious algorithms need no identifier assignment at all. *)

val run_message_passing :
  ('a, 'o) Algorithm.t -> 'a Labelled.t -> ids:Ids.t -> 'o array
(** Round-based gossip engine: in each of [radius + 1] rounds every
    node sends everything it knows to its neighbours; afterwards each
    node reconstructs the induced ball around itself and decides. *)

type stats = {
  rounds : int;         (** synchronous rounds executed ([radius + 1]) *)
  messages : int;       (** directed node-to-neighbour sends *)
  payload_items : int;  (** gross bandwidth: (id, label) and edge
                            entries shipped, counting the sender's
                            {e entire} snapshot on every edge every
                            round (bindings the receiver already knows
                            included) *)
  new_items : int;      (** net bandwidth: shipped entries that were
                            genuinely new to their receiver — the
                            meaningful congestion number; always
                            [<= payload_items] *)
}

val run_message_passing_stats :
  ('a, 'o) Algorithm.t -> 'a Labelled.t -> ids:Ids.t -> 'o array * stats
(** The gossip engine with communication accounting. *)
