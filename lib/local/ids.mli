(** Identifier assignments [Id : V -> N] and the bounded-identifier
    regimes of assumption (B).

    An assignment is a one-to-one map from the nodes [0 .. n-1] to
    distinct non-negative integers. Under regime [(B)] with bound
    function [f], every valid input satisfies [Id(v) < f(n)] — the
    whole Section 2 separation rests on the fact that identifiers
    thereby leak information about [n]. *)

type t
(** An injective identifier assignment. *)

exception Invalid_ids of string

val of_array : int array -> t
(** @raise Invalid_ids if entries are negative or not distinct. *)

val to_array : t -> int array
val assign : t -> int -> int
val size : t -> int
val max_id : t -> int

val sequential : int -> t
(** [0, 1, ..., n-1]. *)

val shuffled : Random.State.t -> int -> t
(** A uniformly random permutation of [0 .. n-1]. *)

val random_below : Random.State.t -> bound:int -> int -> t
(** [n] distinct identifiers drawn uniformly from [0 .. bound-1].
    @raise Invalid_ids if [bound < n]. *)

val offset : t -> int -> t
(** Shift every identifier by a non-negative constant — the easy way
    to make "adversarially large" assignments under [(not B)]. *)

val enumerate_injections : n:int -> bound:int -> t Seq.t
(** All [bound! / (bound-n)!] injective assignments of [n] nodes into
    [0 .. bound-1], for exhaustive small-instance experiments. *)

val injection_at : n:int -> bound:int -> int -> t
(** The assignment at a given rank of {!enumerate_injections}'s
    lexicographic order, computed by direct index arithmetic
    ({!Locald_runtime.Orbit.unrank}) — no enumeration. Sharded
    exhaustive runs address the id space through these ranks.
    @raise Invalid_ids if the rank is outside [0, bound!/(bound-n)!)
    or [bound < n]. *)

val enumerate_injections_from : n:int -> bound:int -> start:int -> t Seq.t
(** The suffix of {!enumerate_injections} beginning at rank [start]
    (so [~start:0] is the whole stream, in the same order). Any rank
    range [lo, hi) enumerates independently of every other range —
    the stable chunk enumeration the shard layer partitions on.
    @raise Invalid_ids on an out-of-range [start]. *)

(** {1 Bounded-identifier regimes} *)

type regime =
  | Unbounded
  | Bounded of { name : string; f : int -> int }
      (** Valid assignments satisfy [Id(v) < f n]; [f] must satisfy
          [f n >= n] and be monotone for the constructions to make
          sense (checked by {!respects}). *)

val respects : regime -> n:int -> t -> bool
(** Does the assignment satisfy the regime for an [n]-node graph? *)

val sample : Random.State.t -> regime -> n:int -> t
(** A random assignment valid under the regime: under [Bounded f],
    identifiers are drawn below [f n]; under [Unbounded], below a
    loose default window with a random offset. *)

val f_identity : regime
(** [f n = n]: identifiers are exactly a permutation-like packing. *)

val f_linear_plus : int -> regime
(** [f n = n + k]. *)

val f_square : regime
(** [f n = n^2 + 1]. *)

val f_oracle : seed:int -> regime
(** A strictly monotone bound function with no exploitable algebraic
    structure (a seeded pseudo-random monotone staircase) — the
    executable stand-in for an uncomputable [f] under [(B, not C)];
    see DESIGN.md, substitutions. *)

val pp : Format.formatter -> t -> unit
