open Locald_graph
module Tel = Locald_runtime.Telemetry

type config = { sched_seed : int; fifo : bool }

let default_config = { sched_seed = 0; fifo = false }

type drop_reason = Plan_drop | Sender_crashed | Receiver_crashed

type event =
  | Send of { uid : int; src : int; dst : int }
  | Deliver of { uid : int; src : int; dst : int; duplicate : bool }
  | Drop of { uid : int; src : int; dst : int; reason : drop_reason }
  | Crash of { node : int; activation : int }

let drop_reason_name = function
  | Plan_drop -> "plan"
  | Sender_crashed -> "sender-crashed"
  | Receiver_crashed -> "receiver-crashed"

let pp_event ppf = function
  | Send { uid; src; dst } -> Format.fprintf ppf "send#%d %d->%d" uid src dst
  | Deliver { uid; src; dst; duplicate } ->
      Format.fprintf ppf "deliver#%d %d->%d%s" uid src dst
        (if duplicate then " (dup)" else "")
  | Drop { uid; src; dst; reason } ->
      Format.fprintf ppf "drop#%d %d->%d (%s)" uid src dst
        (drop_reason_name reason)
  | Crash { node; activation } ->
      Format.fprintf ppf "crash node %d at activation %d" node activation

type stats = {
  activations : int;
  sends : int;
  deliveries : int;
  dropped : int;
  duplicated : int;
  dead_letters : int;
  purged : int;
  reorders : int;
  max_queue : int;
  payload_items : int;
  new_items : int;
}

let default_cost view = View.order view

(* Duplicated from [Runner] (which sits above us in the module order:
   Runner dispatches on [Backend], Backend names our [config]). *)
let check_size lg ids =
  if Ids.size ids <> Labelled.order lg then
    raise
      (Ids.Invalid_ids
         (Printf.sprintf "%d ids for a %d-node graph" (Ids.size ids)
            (Labelled.order lg)))

let named_decide (alg : ('a, 'o) Algorithm.t) view =
  try alg.Algorithm.decide view
  with View.No_ids msg ->
    raise (View.No_ids (alg.Algorithm.name ^ ": " ^ msg))

(* splitmix64 avalanche: message priorities are a pure hash of
   (scheduler seed, message uid), so the adversary's choices are a
   function of the seed alone — replayable, and uncorrelated with the
   order the protocol happened to enqueue things. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let priority ~seed ~uid =
  mix64 (Int64.add (mix64 (Int64.of_int seed)) (Int64.of_int uid))

(* Item budgets already decremented for the hop: a message carries
   items at the budget they arrive with. *)
type 'a msg = {
  uid : int;
  src : int;
  dst : int;
  link_seq : int;
  prio : int64;
  binds : (int * 'a * int) array;
  links : (int * int * int) array;
  mutable processed : bool;
  mutable purged : bool;
}

(* Binary min-heap on (priority, uid). Purged messages stay in the
   heap (lazy deletion): they are skipped when popped. *)
module Heap = struct
  type 'a t = { mutable arr : 'a msg option array; mutable len : int }

  let create () = { arr = Array.make 8 None; len = 0 }

  let less a b =
    let c = Int64.compare a.prio b.prio in
    c < 0 || (c = 0 && a.uid < b.uid)

  let get h i = match h.arr.(i) with Some m -> m | None -> assert false

  let push h m =
    if h.len = Array.length h.arr then begin
      let bigger = Array.make (2 * h.len) None in
      Array.blit h.arr 0 bigger 0 h.len;
      h.arr <- bigger
    end;
    h.arr.(h.len) <- Some m;
    let i = ref h.len in
    h.len <- h.len + 1;
    while
      !i > 0
      &&
      let parent = (!i - 1) / 2 in
      less (get h !i) (get h parent)
    do
      let parent = (!i - 1) / 2 in
      let tmp = h.arr.(parent) in
      h.arr.(parent) <- h.arr.(!i);
      h.arr.(!i) <- tmp;
      i := parent
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = get h 0 in
      h.len <- h.len - 1;
      h.arr.(0) <- h.arr.(h.len);
      h.arr.(h.len) <- None;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && less (get h l) (get h !smallest) then smallest := l;
        if r < h.len && less (get h r) (get h !smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.arr.(!smallest) in
          h.arr.(!smallest) <- h.arr.(!i);
          h.arr.(!i) <- tmp;
          i := !smallest
        end
      done;
      Some top
    end
end

(* Per-node protocol state: the (id -> label) bindings and id-keyed
   edges of Knowledge, each annotated with its current hop budget, plus
   the budget at which each item was last broadcast (so a batch only
   re-ships items whose reach genuinely grew). *)
type 'a node_state = {
  own_id : int;
  bind : (int, 'a) Hashtbl.t;
  bind_budget : (int, int) Hashtbl.t;
  bind_sent : (int, int) Hashtbl.t;
  link_budget : (int * int, int) Hashtbl.t;
  link_sent : (int * int, int) Hashtbl.t;
  mutable dirty_binds : int list;
  mutable dirty_links : (int * int) list;
  mutable dirty : bool;
}

let edge_key a b = if a < b then (a, b) else (b, a)

let sent_of tbl key =
  match Hashtbl.find_opt tbl key with Some b -> b | None -> min_int

let c_deliveries = Tel.Counter.make "async.deliveries"
let c_reorders = Tel.Counter.make "async.reorders"
let c_sends = Tel.Counter.make "async.sends"
let c_dead_letters = Tel.Counter.make "async.dead_letters"
let g_max_queue = Tel.Gauge.make "async.max_queue"

(* The whole engine is deterministic in (graph, ids, plan, config):
   scheduler choices hash the seed, fault coins hash the plan seed with
   the per-link sequence number, and all per-node iteration below is
   over freshly built tables whose operation sequence is itself
   deterministic. *)
let run_engine ~config ~plan ~budget ?sink lg ~id =
  let g = Labelled.graph lg in
  let n = Graph.order g in
  let seed = config.sched_seed in
  let emit e = match sink with None -> () | Some f -> f e in
  let st =
    Array.init n (fun v ->
        {
          own_id = id.(v);
          bind = Hashtbl.create 16;
          bind_budget = Hashtbl.create 16;
          bind_sent = Hashtbl.create 16;
          link_budget = Hashtbl.create 16;
          link_sent = Hashtbl.create 16;
          dirty_binds = [];
          dirty_links = [];
          dirty = false;
        })
  in
  let crash_at = Array.init n (fun v -> Faults.crash_round plan v) in
  let crashed = Array.make n false in
  let act_count = Array.make n 0 in
  let activations = ref 0
  and sends = ref 0
  and deliveries = ref 0
  and dropped = ref 0
  and duplicated = ref 0
  and dead_letters = ref 0
  and purged_c = ref 0
  and reorders = ref 0
  and payload_items = ref 0
  and new_items = ref 0 in
  let pending = ref 0 and max_queue = ref 0 in
  let next_uid = ref 0 in
  let link_seq : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let heap = Heap.create () in
  let fifo_q : (int * int, 'a msg Queue.t) Hashtbl.t = Hashtbl.create 64 in
  let order_q : 'a msg Queue.t = Queue.create () in
  let outbox = Array.make n [] in
  let enqueue m =
    outbox.(m.src) <- m :: outbox.(m.src);
    Queue.push m order_q;
    if config.fifo then begin
      let q =
        match Hashtbl.find_opt fifo_q (m.src, m.dst) with
        | Some q -> q
        | None ->
            let q = Queue.create () in
            Hashtbl.replace fifo_q (m.src, m.dst) q;
            q
      in
      (* Only a link's oldest message competes in the heap; the rest
         wait their turn in the link queue. *)
      let was_empty = Queue.is_empty q in
      Queue.push m q;
      if was_empty then Heap.push heap m
    end
    else Heap.push heap m;
    incr sends;
    incr pending;
    if !pending > !max_queue then max_queue := !pending;
    emit (Send { uid = m.uid; src = m.src; dst = m.dst })
  in
  (* One send batch from [u] to every neighbour: the dirty items whose
     forwardable budget grew since they were last shipped, plus the
     label-closure escorts — [u]'s own binding in every message, and
     both endpoint bindings of every shipped edge. *)
  let send_batch u =
    let s = st.(u) in
    let bind_out : (int, int) Hashtbl.t = Hashtbl.create 8 in
    let consider_bind i =
      let b = Hashtbl.find s.bind_budget i in
      if b >= 1 && b > sent_of s.bind_sent i then Hashtbl.replace bind_out i b
    in
    let escort_bind i =
      if not (Hashtbl.mem bind_out i) then
        Hashtbl.replace bind_out i (Hashtbl.find s.bind_budget i)
    in
    let links_out = ref [] in
    List.iter
      (fun key ->
        let b = Hashtbl.find s.link_budget key in
        if b >= 1 && b > sent_of s.link_sent key then begin
          Hashtbl.replace s.link_sent key b;
          links_out := (key, b) :: !links_out
        end)
      s.dirty_links;
    List.iter consider_bind s.dirty_binds;
    escort_bind s.own_id;
    List.iter
      (fun ((a, b), _) ->
        escort_bind a;
        escort_bind b)
      !links_out;
    let binds =
      Hashtbl.fold (fun i b acc -> (i, b) :: acc) bind_out []
      |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
      |> List.map (fun (i, b) ->
             if b > sent_of s.bind_sent i then Hashtbl.replace s.bind_sent i b;
             (i, Hashtbl.find s.bind i, b - 1))
      |> Array.of_list
    in
    let links =
      List.sort
        (fun (((a1, b1) : int * int), _) ((a2, b2), _) ->
          if a1 <> a2 then compare a1 a2 else compare b1 b2)
        !links_out
      |> List.map (fun ((a, b), bud) -> (a, b, bud - 1))
      |> Array.of_list
    in
    s.dirty_binds <- [];
    s.dirty_links <- [];
    s.dirty <- false;
    Array.iter
      (fun w ->
        let uid = !next_uid in
        incr next_uid;
        let seq =
          (match Hashtbl.find_opt link_seq (u, w) with
          | Some k -> k
          | None -> 0)
          + 1
        in
        Hashtbl.replace link_seq (u, w) seq;
        enqueue
          {
            uid;
            src = u;
            dst = w;
            link_seq = seq;
            prio = priority ~seed ~uid;
            binds;
            links;
            processed = false;
            purged = false;
          })
      (Graph.neighbours g u)
  in
  (* A send opportunity: the crash plan fires here — [r - 1] completed
     batches, then the node dies mid-flight at its [r]-th. *)
  let try_activate u =
    if not crashed.(u) then begin
      let next = act_count.(u) + 1 in
      match crash_at.(u) with
      | Some r when next >= r ->
          crashed.(u) <- true;
          List.iter
            (fun m ->
              if not (m.processed || m.purged) then begin
                m.purged <- true;
                incr purged_c
              end)
            outbox.(u);
          emit (Crash { node = u; activation = next })
      | Some _ | None ->
          act_count.(u) <- next;
          incr activations;
          send_batch u
    end
  in
  let note_bind s i b =
    if b >= 1 && b > sent_of s.bind_sent i then begin
      s.dirty_binds <- i :: s.dirty_binds;
      s.dirty <- true
    end
  in
  let note_link s key b =
    if b >= 1 && b > sent_of s.link_sent key then begin
      s.dirty_links <- key :: s.dirty_links;
      s.dirty <- true
    end
  in
  (* Max-merge on budgets; bindings before edges, so the label-closure
     invariant of Knowledge holds at every point in time. Only
     first-sight counts as a new item (budget raises are not). *)
  let merge_msg v m =
    let s = st.(v) in
    Array.iter
      (fun (i, lab, b) ->
        match Hashtbl.find_opt s.bind_budget i with
        | None ->
            Hashtbl.replace s.bind i lab;
            Hashtbl.replace s.bind_budget i b;
            incr new_items;
            note_bind s i b
        | Some old when b > old ->
            Hashtbl.replace s.bind_budget i b;
            note_bind s i b
        | Some _ -> ())
      m.binds;
    Array.iter
      (fun (a, b, bud) ->
        let key = edge_key a b in
        match Hashtbl.find_opt s.link_budget key with
        | None ->
            Hashtbl.replace s.link_budget key bud;
            incr new_items;
            note_link s key bud
        | Some old when bud > old ->
            Hashtbl.replace s.link_budget key bud;
            note_link s key bud
        | Some _ -> ())
      m.links
  in
  (* First delivery over a link teaches the receiver the link itself,
     at fresh budget — the "t ± 1" rim-edge round of the synchronous
     engine, in asynchronous form. The sender's binding arrived in the
     same message (label closure), so the edge is never unbound. *)
  let discover_link v u =
    let s = st.(v) in
    let key = edge_key id.(v) id.(u) in
    match Hashtbl.find_opt s.link_budget key with
    | Some old when old >= budget -> ()
    | Some _ | None ->
        Hashtbl.replace s.link_budget key budget;
        note_link s key budget
  in
  let deliver m =
    m.processed <- true;
    if config.fifo then begin
      let q = Hashtbl.find fifo_q (m.src, m.dst) in
      (match Queue.pop q with
      | m' -> assert (m' == m)
      | exception Queue.Empty -> assert false);
      match Queue.peek_opt q with
      | Some next -> Heap.push heap next
      | None -> ()
    end;
    decr pending;
    if m.purged then
      emit (Drop { uid = m.uid; src = m.src; dst = m.dst; reason = Sender_crashed })
    else if crashed.(m.dst) then begin
      incr dead_letters;
      emit
        (Drop { uid = m.uid; src = m.src; dst = m.dst; reason = Receiver_crashed })
    end
    else if Faults.drops plan ~round:m.link_seq ~src:m.src ~dst:m.dst then begin
      incr dropped;
      emit (Drop { uid = m.uid; src = m.src; dst = m.dst; reason = Plan_drop });
      if Tel.active () then
        Tel.event "fault.drop"
          Tel.Json.
            [ ("seq", Int m.link_seq); ("src", Int m.src); ("dst", Int m.dst) ]
    end
    else begin
      let dup = Faults.duplicates plan ~round:m.link_seq ~src:m.src ~dst:m.dst in
      if dup then begin
        incr duplicated;
        if Tel.active () then
          Tel.event "fault.duplicate"
            Tel.Json.
              [ ("seq", Int m.link_seq); ("src", Int m.src); ("dst", Int m.dst) ]
      end;
      let copies = if dup then 2 else 1 in
      for _ = 1 to copies do
        incr deliveries;
        payload_items :=
          !payload_items + Array.length m.binds + Array.length m.links;
        merge_msg m.dst m
      done;
      discover_link m.dst m.src;
      (* A delivery reorders iff some older message is still pending:
         pop settled messages off the uid-ordered queue, then compare
         against the oldest survivor. *)
      let rec drain () =
        match Queue.peek_opt order_q with
        | Some front when front.processed || front.purged ->
            ignore (Queue.pop order_q);
            drain ()
        | _ -> ()
      in
      drain ();
      (match Queue.peek_opt order_q with
      | Some front when front.uid < m.uid -> incr reorders
      | _ -> ());
      emit
        (Deliver { uid = m.uid; src = m.src; dst = m.dst; duplicate = dup });
      if st.(m.dst).dirty then try_activate m.dst
    end
  in
  (* Wake-up: everyone seeds and broadcasts its own binding before any
     delivery happens — the asynchronous round 1. *)
  for v = 0 to n - 1 do
    let s = st.(v) in
    Hashtbl.replace s.bind id.(v) (Labelled.label lg v);
    Hashtbl.replace s.bind_budget id.(v) budget;
    try_activate v
  done;
  let continue = ref true in
  while !continue do
    match Heap.pop heap with
    | None -> continue := false
    | Some m -> Tel.span "sched.step" (fun () -> deliver m)
  done;
  Tel.Counter.add c_sends !sends;
  Tel.Counter.add c_deliveries !deliveries;
  Tel.Counter.add c_reorders !reorders;
  Tel.Counter.add c_dead_letters !dead_letters;
  Tel.Gauge.max_to g_max_queue (float_of_int !max_queue);
  ( st,
    crashed,
    {
      activations = !activations;
      sends = !sends;
      deliveries = !deliveries;
      dropped = !dropped;
      duplicated = !duplicated;
      dead_letters = !dead_letters;
      purged = !purged_c;
      reorders = !reorders;
      max_queue = !max_queue;
      payload_items = !payload_items;
      new_items = !new_items;
    } )

let knowledge_of s =
  let k = Knowledge.create () in
  Hashtbl.iter (fun i lab -> Knowledge.add_node k i lab) s.bind;
  Hashtbl.iter (fun (a, b) _ -> Knowledge.add_edge k a b) s.link_budget;
  k

let run_stats ?(config = default_config) alg lg ~ids =
  check_size lg ids;
  Tel.span "async.run" @@ fun () ->
  let id = Ids.to_array ids in
  let radius = alg.Algorithm.radius in
  let st, _, stats =
    run_engine ~config ~plan:Faults.empty ~budget:radius lg ~id
  in
  let outputs =
    Array.init (Array.length id) (fun v ->
        let k = knowledge_of st.(v) in
        (* Fault-free flooding provably assembles every ball; failing
           here is an engine bug, not a degradation. *)
        if not (Knowledge.contains_ball k lg ~ids:id ~center:v ~radius) then
          invalid_arg "Async_runner: incomplete ball on a fault-free run";
        named_decide alg (Knowledge.reconstruct k ~center_id:id.(v) ~radius))
  in
  (outputs, stats)

let run ?config alg lg ~ids = fst (run_stats ?config alg lg ~ids)

let assemble_views ?(config = default_config) ~radius lg =
  Tel.span "async.assemble" @@ fun () ->
  let n = Labelled.order lg in
  let id = Array.init n Fun.id in
  let st, _, _ = run_engine ~config ~plan:Faults.empty ~budget:radius lg ~id in
  Array.init n (fun v ->
      let k = knowledge_of st.(v) in
      if not (Knowledge.contains_ball k lg ~ids:id ~center:v ~radius) then
        invalid_arg "Async_runner: incomplete ball on a fault-free run";
      (* Identity ids sort like global indices, so the reconstruction
         is representation-identical to [View.extract_mapped] — its id
         decoration is the ball-to-global map itself. *)
      let view = Knowledge.reconstruct k ~center_id:v ~radius in
      match View.ids view with
      | Some back -> (View.strip_ids view, back)
      | None -> assert false)

let run_degraded ~config ~plan ?(cost = default_cost) ?sink alg lg ~ids =
  ignore (Faults.validate plan);
  check_size lg ids;
  Tel.span "async.run" @@ fun () ->
  let id = Ids.to_array ids in
  let radius = alg.Algorithm.radius in
  let budget = radius + plan.Faults.retries in
  let st, _, stats = run_engine ~config ~plan ~budget ?sink lg ~id in
  (* Same plan arithmetic as the synchronous engine: a crash within
     its round horizon counts, whether or not the event-driven run
     still had a send opportunity left for it. *)
  let rounds = radius + 1 + plan.Faults.retries in
  let outcomes =
    Array.init (Array.length id) (fun v ->
        match Faults.crash_round plan v with
        | Some r when r <= rounds ->
            if Tel.active () then
              Tel.event "fault.crash" Tel.Json.[ ("node", Int v); ("round", Int r) ];
            Outcome.Unknown Outcome.Crashed
        | Some _ | None -> (
            let k = knowledge_of st.(v) in
            if not (Knowledge.contains_ball k lg ~ids:id ~center:v ~radius)
            then Outcome.Unknown Outcome.Incomplete_view
            else
              let view = Knowledge.reconstruct k ~center_id:id.(v) ~radius in
              let burn = cost view in
              match plan.Faults.fuel with
              | Some fuel when burn > fuel -> Outcome.Unknown Outcome.Fuel_exhausted
              | Some _ | None -> (
                  try Outcome.Decided (alg.Algorithm.decide view)
                  with _ -> Outcome.Unknown Outcome.Decide_failed)))
  in
  (outcomes, stats)

let run_outcomes ?(config = default_config) ~plan ?cost alg lg ~ids =
  run_degraded ~config ~plan ?cost alg lg ~ids

let run_trace ?(config = default_config) ~plan ?cost alg lg ~ids =
  let events = ref [] in
  let sink e = events := e :: !events in
  let outcomes, stats = run_degraded ~config ~plan ?cost ~sink alg lg ~ids in
  (outcomes, stats, List.rev !events)
