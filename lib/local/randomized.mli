(** Randomised local algorithms (Section 3.3).

    Every node holds an unbounded stream of private random bits; an
    Id-oblivious randomised algorithm is a function of the
    identifier-free view and its own coin stream. The [(p,q)]-decider
    semantics is evaluated by Monte-Carlo estimation in
    {!Locald_decision}. *)

open Locald_graph

type ('a, 'o) t = {
  name : string;
  radius : int;
  decide : Random.State.t -> 'a View.t -> 'o;
      (** The state is the node's private coin stream. *)
}

val make :
  name:string -> radius:int -> (Random.State.t -> 'a View.t -> 'o) -> ('a, 'o) t

val run :
  rng:Random.State.t -> oblivious:bool -> ('a, 'o) t ->
  'a Labelled.t -> ids:Ids.t option -> 'o array
(** One execution: each node gets an independent coin stream derived
    from [rng]. With [oblivious], views are stripped of identifiers
    ([ids] may then be [None]). *)

type ('a, 'o) prepared
(** A labelled graph with every node's ball pre-extracted (id-free),
    mirroring {!Locald_local.Runner.prepare} for randomised
    algorithms. *)

val prepare : ('a, 'o) t -> 'a Labelled.t -> ('a, 'o) prepared

val run_prepared :
  rng:Random.State.t -> oblivious:bool -> ('a, 'o) prepared ->
  ids:Ids.t option -> 'o array
(** Exactly {!run} — same per-node coin streams for the same [rng] —
    with the per-run view extraction hoisted out. Randomised decides
    are deliberately {e not} routed through the decide-once memo: the
    output is a function of (view, coin stream), not of the decorated
    view alone, so memoisation would be unsound. *)

val geometric : Random.State.t -> int
(** Number of tosses until the first head (at least 1): the [l_v] of
    Corollary 1's decider. *)

val four_pow_capped : cap:int -> int -> int
(** [4^l], saturating at [cap] — the [n_v := 4^l_v] fuel with an
    explicit overflow guard. *)
