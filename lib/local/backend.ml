type t = Sync | Async of Async_runner.config

let to_string = function Sync -> "sync" | Async _ -> "async"

let of_string ?(config = Async_runner.default_config) s =
  match String.trim (String.lowercase_ascii s) with
  | "sync" -> Some Sync
  | "async" -> Some (Async config)
  | _ -> None

let truthy s =
  match String.trim (String.lowercase_ascii s) with
  | "1" | "true" | "yes" | "on" -> true
  | _ -> false

let env_config () =
  let sched_seed =
    match Sys.getenv_opt "LOCALD_SCHED_SEED" with
    | Some s -> ( try int_of_string (String.trim s) with _ -> 0)
    | None -> 0
  in
  let fifo =
    match Sys.getenv_opt "LOCALD_SCHED_FIFO" with
    | Some s -> truthy s
    | None -> false
  in
  { Async_runner.sched_seed; fifo }

(* The session default: LOCALD_BACKEND (with LOCALD_SCHED_SEED and
   LOCALD_SCHED_FIFO refining the async config), then the synchronous
   engine. Same idiom as Memo's LOCALD_MEMO default. *)
let initial () =
  match Sys.getenv_opt "LOCALD_BACKEND" with
  | Some s -> (
      match of_string ~config:(env_config ()) s with
      | Some b -> b
      | None -> Sync)
  | None -> Sync

let default_backend = ref (initial ())

let default () = !default_backend

let set_default b = default_backend := b

let with_default b f =
  let saved = !default_backend in
  default_backend := b;
  Fun.protect ~finally:(fun () -> default_backend := saved) f

let pp ppf b =
  match b with
  | Sync -> Format.pp_print_string ppf "sync"
  | Async { Async_runner.sched_seed; fifo } ->
      Format.fprintf ppf "async(seed=%d%s)" sched_seed
        (if fifo then ",fifo" else "")
