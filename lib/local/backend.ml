type t = Sync | Async of Async_runner.config

let to_string = function Sync -> "sync" | Async _ -> "async"

let of_string ?(config = Async_runner.default_config) s =
  match String.trim (String.lowercase_ascii s) with
  | "sync" -> Some Sync
  | "async" -> Some (Async config)
  | _ -> None

let truthy s =
  match String.trim (String.lowercase_ascii s) with
  | "1" | "true" | "yes" | "on" -> true
  | _ -> false

let falsy s =
  match String.trim (String.lowercase_ascii s) with
  | "0" | "false" | "no" | "off" -> true
  | _ -> false

let env_config () =
  let sched_seed =
    match Sys.getenv_opt "LOCALD_SCHED_SEED" with
    | Some s -> ( try int_of_string (String.trim s) with _ -> 0)
    | None -> 0
  in
  let fifo =
    match Sys.getenv_opt "LOCALD_SCHED_FIFO" with
    | Some s -> truthy s
    | None -> false
  in
  { Async_runner.sched_seed; fifo }

(* What [env_config]/[initial] would silently coerce: a typo'd backend
   falls back to [Sync], a typo'd seed to [0], a typo'd fifo flag to
   [false]. For a one-shot run that only misreports what was measured;
   for the serve daemon it corrupts pinned digests, so the problems are
   surfaced — warned at module init here, rejected outright by serve.
   The empty string counts as unset. *)
let env_problems () =
  let set name =
    match Sys.getenv_opt name with
    | Some s when String.trim s <> "" -> Some s
    | _ -> None
  in
  List.concat
    [
      (match set "LOCALD_BACKEND" with
      | Some s when of_string s = None ->
          [
            Printf.sprintf "invalid LOCALD_BACKEND=%S (expected sync | async)"
              s;
          ]
      | _ -> []);
      (match set "LOCALD_SCHED_SEED" with
      | Some s when int_of_string_opt (String.trim s) = None ->
          [
            Printf.sprintf "invalid LOCALD_SCHED_SEED=%S (expected an integer)"
              s;
          ]
      | _ -> []);
      (match set "LOCALD_SCHED_FIFO" with
      | Some s when (not (truthy s)) && not (falsy s) ->
          [
            Printf.sprintf
              "invalid LOCALD_SCHED_FIFO=%S (expected 1/true/yes/on or \
               0/false/no/off)"
              s;
          ]
      | _ -> []);
    ]

(* The session default: LOCALD_BACKEND (with LOCALD_SCHED_SEED and
   LOCALD_SCHED_FIFO refining the async config), then the synchronous
   engine. Same idiom as Memo's LOCALD_MEMO default. *)
let initial () =
  List.iter
    (fun p -> Printf.eprintf "locald: warning: %s\n%!" p)
    (env_problems ());
  match Sys.getenv_opt "LOCALD_BACKEND" with
  | Some s -> (
      match of_string ~config:(env_config ()) s with
      | Some b -> b
      | None -> Sync)
  | None -> Sync

(* An [Atomic.t], not a [ref]: the serve daemon's event loop reads the
   session default while pool domains may still be running work that
   reads it too; per-request backends are threaded explicitly through
   [Sweeps.w_eval] and never mutate this. *)
let default_backend = Atomic.make (initial ())

let default () = Atomic.get default_backend

let set_default b = Atomic.set default_backend b

let with_default b f =
  let saved = Atomic.get default_backend in
  Atomic.set default_backend b;
  Fun.protect ~finally:(fun () -> Atomic.set default_backend saved) f

let pp ppf b =
  match b with
  | Sync -> Format.pp_print_string ppf "sync"
  | Async { Async_runner.sched_seed; fifo } ->
      Format.fprintf ppf "async(seed=%d%s)" sched_seed
        (if fifo then ",fifo" else "")
