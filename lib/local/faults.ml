type plan = {
  seed : int;
  drop : float;
  duplicate : float;
  crashes : (int * int) list;
  fuel : int option;
  retries : int;
}

let empty =
  { seed = 0; drop = 0.0; duplicate = 0.0; crashes = []; fuel = None; retries = 0 }

let validate p =
  if not (p.drop >= 0.0 && p.drop <= 1.0) then
    invalid_arg "Faults.make: drop probability outside [0, 1]";
  if not (p.duplicate >= 0.0 && p.duplicate <= 1.0) then
    invalid_arg "Faults.make: duplication probability outside [0, 1]";
  if p.retries < 0 then invalid_arg "Faults.make: negative retries";
  (match p.fuel with
  | Some f when f < 0 -> invalid_arg "Faults.make: negative fuel"
  | Some _ | None -> ());
  List.iter
    (fun (v, r) ->
      if v < 0 then invalid_arg "Faults.make: negative crash node";
      if r < 1 then invalid_arg "Faults.make: crash round must be >= 1")
    p.crashes;
  p

let make ?(seed = 0) ?(drop = 0.0) ?(duplicate = 0.0) ?(crashes = []) ?fuel
    ?(retries = 0) () =
  validate { seed; drop; duplicate; crashes; fuel; retries }

let is_empty p =
  p.drop = 0.0 && p.duplicate = 0.0 && p.crashes = [] && p.fuel = None

let crash_round p v =
  List.fold_left
    (fun acc (u, r) ->
      if u <> v then acc
      else match acc with None -> Some r | Some r' -> Some (min r r'))
    None p.crashes

(* Fault coins are a pure function of (seed, kind, round, src, dst),
   via a splitmix64-style avalanche: two identically-seeded runs see
   identical faults regardless of evaluation order, and changing any
   coordinate decorrelates the coin. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

let combine h x =
  mix64 (Int64.add (Int64.mul h 0x100000001b3L) (Int64.of_int x))

let two_pow_53 = 9007199254740992.0

let coin p ~kind ~round ~src ~dst =
  let h =
    List.fold_left combine (mix64 (Int64.of_int (p.seed + 0x5eed)))
      [ kind; round; src; dst ]
  in
  Int64.to_float (Int64.shift_right_logical h 11) /. two_pow_53

let drops p ~round ~src ~dst = coin p ~kind:1 ~round ~src ~dst < p.drop

let duplicates p ~round ~src ~dst = coin p ~kind:2 ~round ~src ~dst < p.duplicate

let pp ppf p =
  Format.fprintf ppf
    "seed=%d drop=%.3f dup=%.3f crashes=[%a] fuel=%s retries=%d" p.seed p.drop
    p.duplicate
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";")
       (fun ppf (v, r) -> Format.fprintf ppf "%d@%d" v r))
    p.crashes
    (match p.fuel with None -> "-" | Some f -> string_of_int f)
    p.retries
