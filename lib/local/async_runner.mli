(** Asynchronous message-passing backend: real typed messages under a
    deterministic adversarial scheduler.

    The synchronous engines ({!Runner}, {!Fault_runner}) simulate the
    LOCAL model by lock-step rounds. This backend drops the round
    structure entirely: every node runs an event-driven {e
    budget-annotated flooding} protocol, and a seeded adversary picks
    which in-flight message is delivered next. The paper's deciders
    are constant-horizon functions of the radius-[t] view, so their
    verdicts must not depend on message timing — and with this engine
    that claim is executable: on every instance, under every scheduler
    seed, in FIFO and non-FIFO mode, the decided outputs (and the
    views assembled for {!Runner.prepare}) are byte-identical to the
    synchronous ones. [test/test_async.ml] pins this.

    {2 Protocol}

    Knowledge items are identifier bindings [(id, label)] and
    id-keyed edges, exactly as in {!Knowledge}; each copy of an item
    carries a {e hop budget}. A node's own binding starts at budget
    [B = radius + retries]; an item received at budget [b] is
    forwarded at [b - 1] and travels no further once its budget is
    exhausted, so flooding reaches exactly the [B]-hop horizon of the
    synchronous engine. On the {e first} delivery over a link the
    receiver also learns the incident edge at a fresh budget [B] — the
    asynchronous analogue of the extra gossip round the synchronous
    engine runs beyond the horizon (the "t ± 1" correspondence), which
    is what teaches a node the rim edges between its distance-[t]
    neighbours. Every message is label-closed: it carries the sender's
    own binding and both endpoint bindings of every edge it ships, so
    {!Knowledge.reconstruct} never sees an edge with an unbound
    endpoint. A node sends one batch to all neighbours when it first
    wakes up, and again whenever a delivery strictly improved an item
    it can still forward; budgets are bounded and improvements strict,
    so quiescence is guaranteed and, fault-free, every node provably
    assembles its complete radius-[t] ball.

    {2 Scheduler}

    Every sent message gets a static priority — a splitmix64 hash of
    [(sched_seed, uid)] — and the adversary always delivers the
    pending message with the smallest priority. Non-FIFO mode permutes
    {e all} in-flight messages; FIFO mode keeps each directed link's
    messages in send order and lets the adversary interleave only
    across links. Both are pure functions of the seed: the same seed
    replays the identical delivery trace, different seeds explore
    genuinely different interleavings.

    {2 Faults}

    {!Faults} plans are interpreted at delivery time: drop and
    duplicate coins are flipped per delivery attempt, keyed by the
    message's per-link sequence number (the asynchronous stand-in for
    the round number, so a fixed plan is reproducible independent of
    scheduler order). [crashes = (node, r)] means the node completes
    [r - 1] send batches and crashes at its [r]-th send opportunity:
    its pending messages are withdrawn mid-flight and it neither
    sends, merges nor decides from then on. Messages addressed to a
    crashed node are dead-lettered. For the three-valued outcome a
    node counts as crashed under the same plan arithmetic as the
    synchronous engine ([r <= radius + 1 + retries]), so crash
    degradation aggregates identically across backends. [retries] buys
    extra flooding budget — knowledge can detour around lossy links —
    mirroring the synchronous engine's extra re-gossip rounds. *)

open Locald_graph

type config = {
  sched_seed : int;  (** adversary seed: drives every delivery choice *)
  fifo : bool;  (** preserve per-directed-link send order *)
}

val default_config : config
(** [{ sched_seed = 0; fifo = false }]. *)

(** {1 Observable execution trace} *)

type drop_reason =
  | Plan_drop  (** lost to the fault plan's drop coin *)
  | Sender_crashed  (** withdrawn mid-flight when its sender crashed *)
  | Receiver_crashed  (** dead-lettered at a crashed receiver *)

type event =
  | Send of { uid : int; src : int; dst : int }
  | Deliver of { uid : int; src : int; dst : int; duplicate : bool }
  | Drop of { uid : int; src : int; dst : int; reason : drop_reason }
  | Crash of { node : int; activation : int }
      (** The node crashed at what would have been its
          [activation]-th send batch. *)

val pp_event : Format.formatter -> event -> unit

type stats = {
  activations : int;  (** send batches performed (one per waking node) *)
  sends : int;  (** messages enqueued *)
  deliveries : int;  (** messages merged by their receiver
                         (duplicate copies counted) *)
  dropped : int;  (** deliveries lost to the plan *)
  duplicated : int;  (** messages delivered twice *)
  dead_letters : int;  (** messages addressed to a crashed node *)
  purged : int;  (** in-flight messages withdrawn by a sender crash *)
  reorders : int;  (** deliveries that overtook an older pending
                       message — how adversarial the schedule was *)
  max_queue : int;  (** peak number of in-flight messages *)
  payload_items : int;  (** gross items shipped over deliveries *)
  new_items : int;  (** items genuinely new to their receiver *)
}

(** {1 Fault-free engine}

    These are the backend behind [Runner.run ~backend] and
    [Runner.prepare ~backend]: same decided outputs, same assembled
    views, any seed. *)

val run :
  ?config:config -> ('a, 'o) Algorithm.t -> 'a Labelled.t -> ids:Ids.t -> 'o array
(** Run the flooding protocol to quiescence, then let every node
    reconstruct its radius-[t] view from what it heard and decide.
    Outputs equal [Runner.run] on every input (cross-backend pinned).
    @raise Ids.Invalid_ids on an assignment-size mismatch.
    @raise View.No_ids (prefixed with the algorithm's name) if the
    decide reads ids off an id-free view. *)

val run_stats :
  ?config:config ->
  ('a, 'o) Algorithm.t ->
  'a Labelled.t ->
  ids:Ids.t ->
  'o array * stats
(** {!run} with the messaging accounting. *)

val assemble_views :
  ?config:config -> radius:int -> 'a Labelled.t -> ('a View.t * int array) array
(** Assemble every node's id-free radius-[radius] view plus its
    sorted ball-to-global index map by actually running the protocol
    under identity identifiers — representation-identical to
    [View.extract_mapped] on every node (what makes [Runner.prepare
    ~backend:async] byte-compatible with the synchronous prepare, memo
    keys included). Performs exactly one view extraction per node. *)

(** {1 Faulted engine} *)

val default_cost : 'a View.t -> int
(** Same decide-cost model as {!Fault_runner.default_cost}: one fuel
    unit per node of the reconstructed view. *)

val run_outcomes :
  ?config:config ->
  plan:Faults.plan ->
  ?cost:('a View.t -> int) ->
  ('a, 'o) Algorithm.t ->
  'a Labelled.t ->
  ids:Ids.t ->
  'o Outcome.t array * stats
(** The degraded engine: same three-valued contract as
    {!Fault_runner.run} — crashed nodes answer [Unknown Crashed]
    (under the synchronous plan arithmetic, see above), incomplete
    balls [Unknown Incomplete_view] rather than deciding on a
    counterfeit view, fuel exhaustion and raising decides degrade to
    [Unknown]. Every [Decided] output equals the fault-free output.
    @raise Ids.Invalid_ids on an assignment-size mismatch.
    @raise Invalid_argument on an invalid plan. *)

val run_trace :
  ?config:config ->
  plan:Faults.plan ->
  ?cost:('a View.t -> int) ->
  ('a, 'o) Algorithm.t ->
  'a Labelled.t ->
  ids:Ids.t ->
  'o Outcome.t array * stats * event list
(** {!run_outcomes} that also records the full scheduler trace, in
    execution order — what the replay-determinism and crash-isolation
    properties are stated over. *)
