open Locald_graph

type reason = Outcome.reason =
  | Crashed
  | Incomplete_view
  | Fuel_exhausted
  | Decide_failed

type 'o outcome = 'o Outcome.t = Decided of 'o | Unknown of reason

let decided = Outcome.decided

let reason_name = Outcome.reason_name

let pp_outcome = Outcome.pp

type stats = {
  rounds : int;
  messages : int;
  delivered : int;
  dropped : int;
  duplicated : int;
  payload_items : int;
  new_items : int;
  crashed : int;
  incomplete : int;
  fuel_exhausted : int;
}

let degraded_nodes s = s.crashed + s.incomplete + s.fuel_exhausted

let default_cost view = View.order view

(* The synchronous gossip loop of [Runner.run_message_passing_general]
   replayed under a fault plan. Structure per round: snapshot all
   knowledge, then for every live receiver and live neighbour, flip
   the plan's coins for that directed link. Lost messages transfer
   nothing — in particular the receiver does not even learn the
   sender's identifier, so the incident edge is not recorded either.
   Crashed nodes stop sending from their crash round on (their last
   pre-crash snapshot is never re-offered) and their own knowledge
   freezes. *)
let run ~plan ?(cost = default_cost) alg lg ~ids =
  ignore (Faults.validate plan);
  Runner.check_size lg ids;
  let module Tel = Locald_runtime.Telemetry in
  Tel.span "faults.run" @@ fun () ->
  let g = Labelled.graph lg in
  let n = Graph.order g in
  let id = Ids.to_array ids in
  let crash_at = Array.init n (fun v -> Faults.crash_round plan v) in
  let messages = ref 0
  and delivered = ref 0
  and dropped = ref 0
  and duplicated = ref 0
  and payload_items = ref 0
  and new_items = ref 0 in
  let state =
    Array.init n (fun v ->
        let k = Knowledge.create () in
        Knowledge.add_node k id.(v) (Labelled.label lg v);
        k)
  in
  let rounds = alg.Algorithm.radius + 1 + plan.Faults.retries in
  for round = 1 to rounds do
    let snapshot = Array.map Knowledge.copy state in
    let alive v =
      match crash_at.(v) with None -> true | Some r -> round < r
    in
    for v = 0 to n - 1 do
      if alive v then
        Array.iter
          (fun u ->
            if alive u then begin
              incr messages;
              if Faults.drops plan ~round ~src:u ~dst:v then begin
                incr dropped;
                (* One trace record per injected fault: which link, when. *)
                if Tel.active () then
                  Tel.event "fault.drop"
                    Tel.Json.
                      [ ("round", Int round); ("src", Int u); ("dst", Int v) ]
              end
              else begin
                let copies =
                  if Faults.duplicates plan ~round ~src:u ~dst:v then begin
                    incr duplicated;
                    if Tel.active () then
                      Tel.event "fault.duplicate"
                        Tel.Json.
                          [ ("round", Int round); ("src", Int u); ("dst", Int v) ];
                    2
                  end
                  else 1
                in
                for _ = 1 to copies do
                  incr delivered;
                  payload_items := !payload_items + Knowledge.items snapshot.(u);
                  new_items :=
                    !new_items + Knowledge.merge ~into:state.(v) snapshot.(u)
                done;
                Knowledge.add_edge state.(v) id.(v) id.(u)
              end
            end)
          (Graph.neighbours g v)
    done
  done;
  let crashed = ref 0 and incomplete = ref 0 and fuel_exhausted = ref 0 in
  let outputs =
    Array.init n (fun v ->
        match crash_at.(v) with
        | Some r when r <= rounds ->
            incr crashed;
            if Tel.active () then
              Tel.event "fault.crash" Tel.Json.[ ("node", Int v); ("round", Int r) ];
            Unknown Crashed
        | Some _ | None ->
            if
              not
                (Knowledge.contains_ball state.(v) lg ~ids:id ~center:v
                   ~radius:alg.Algorithm.radius)
            then begin
              incr incomplete;
              Unknown Incomplete_view
            end
            else
              let view =
                Knowledge.reconstruct state.(v) ~center_id:id.(v)
                  ~radius:alg.Algorithm.radius
              in
              let burn = cost view in
              (match plan.Faults.fuel with
              | Some fuel when burn > fuel ->
                  incr fuel_exhausted;
                  Unknown Fuel_exhausted
              | Some _ | None -> (
                  (* (not C) allows arbitrary node behaviour: a decide
                     step that raises degrades to Unknown instead of
                     killing the run. *)
                  try Decided (alg.Algorithm.decide view)
                  with _ -> Unknown Decide_failed)))
  in
  ( outputs,
    {
      rounds;
      messages = !messages;
      delivered = !delivered;
      dropped = !dropped;
      duplicated = !duplicated;
      payload_items = !payload_items;
      new_items = !new_items;
      crashed = !crashed;
      incomplete = !incomplete;
      fuel_exhausted = !fuel_exhausted;
    } )

let run_outputs ~plan ?cost alg lg ~ids = fst (run ~plan ?cost alg lg ~ids)
