(** Simulator backend selection.

    Every engine entry point that has both a synchronous and an
    asynchronous implementation ({!Runner.run}, {!Runner.prepare}, and
    everything layered on them) dispatches on a value of this type.
    The two backends are pinned byte-identical on fault-free inputs
    (see {!Async_runner} and [test/test_async.ml]), so flipping the
    backend — per call, per session, or via the environment — must
    never change a digest.

    The ambient default is read once from the environment
    ([LOCALD_BACKEND=sync|async], with [LOCALD_SCHED_SEED] and
    [LOCALD_SCHED_FIFO=1] refining the async scheduler config) and can
    be overridden programmatically — the [--backend] flag of
    [bin/locald] does exactly that. *)

type t = Sync | Async of Async_runner.config

val to_string : t -> string
(** ["sync"] or ["async"] (the config is not serialised). *)

val of_string : ?config:Async_runner.config -> string -> t option
(** Case- and whitespace-insensitive; [config] (default
    {!Async_runner.default_config}) fills in the scheduler config when
    the string selects the async backend. *)

val default : unit -> t
(** The ambient backend: the last {!set_default}, initially from the
    environment, else [Sync]. Stored in an [Atomic.t], so reads are
    safe across domains — but long-lived services must thread
    per-request backends explicitly (the [?backend] parameters
    downstream) instead of mutating the ambient default. *)

val set_default : t -> unit

val with_default : t -> (unit -> 'a) -> 'a
(** Run a thunk under a temporary ambient backend, restoring the
    previous one even on exceptions — what the cross-backend test
    battery uses. Process-global: not for concurrent per-request
    configuration. *)

val env_problems : unit -> string list
(** Human-readable complaints about the backend environment: an
    unrecognised [LOCALD_BACKEND], a non-integer [LOCALD_SCHED_SEED],
    or an unrecognised [LOCALD_SCHED_FIFO] (the empty string counts as
    unset). Module initialisation warns about these on stderr once and
    then falls back to [Sync]/[0]/[false]; the serve daemon refuses to
    start instead, because a silently coerced backend corrupts pinned
    digests. *)

val pp : Format.formatter -> t -> unit
