open Locald_graph
open Locald_runtime

type ('a, 'o) t = {
  name : string;
  radius : int;
  decide : Random.State.t -> 'a View.t -> 'o;
}

let make ~name ~radius decide =
  if radius < 0 then invalid_arg "Randomized.make: negative radius";
  { name; radius; decide }

let run ~rng ~oblivious t lg ~ids =
  let n = Labelled.order lg in
  let ids =
    match ids with
    | Some ids -> Some (Ids.to_array ids)
    | None ->
        if oblivious then None
        else invalid_arg "Randomized.run: non-oblivious run needs ids"
  in
  (* Coin streams are split per node {e before} the parallel fan-out,
     in ascending node order, so the bits drawn from [rng] — and hence
     every node's stream — are independent of [--jobs]. *)
  let seeds = Pool.split_seeds rng n in
  Pool.map
    (fun v ->
      let node_rng = Random.State.make [| seeds.(v); v |] in
      let view = View.extract ?ids lg ~center:v ~radius:t.radius in
      let view = if oblivious then View.strip_ids view else view in
      t.decide node_rng view)
    (Pool.init_in_order n Fun.id)

type ('a, 'o) prepared = {
  rp_alg : ('a, 'o) t;
  rp_views : ('a View.t * int array) array;
      (* per node: its id-free ball and the view-local-to-global map *)
}

let prepare t lg =
  let prep =
    {
      rp_alg = t;
      rp_views =
        Array.init (Labelled.order lg) (fun v ->
            View.extract_mapped lg ~center:v ~radius:t.radius);
    }
  in
  Runner.sync_scratch_gauges ();
  prep

(* Identical to [run] — same seed split, same per-node streams — with
   the ball extraction hoisted into [prepare]. Decides are NOT
   memoisable here: the output depends on the private coin stream, not
   only on the decorated view, so the decide-once contract does not
   apply. What IS memoisable is any deterministic function {e of} the
   draw inside a decider — the draw must still be consumed per node,
   but its consequence (e.g. "does fuel level l find a bad halt") can
   answer from a decide-once cache, reported through [Memo.note_*]
   (see [Gmr_deciders.Fast.corollary1]). *)
let run_prepared ~rng ~oblivious prep ~ids =
  let n = Array.length prep.rp_views in
  let ids =
    match ids with
    | Some ids -> Some (Ids.to_array ids)
    | None ->
        if oblivious then None
        else invalid_arg "Randomized.run: non-oblivious run needs ids"
  in
  let seeds = Pool.split_seeds rng n in
  Pool.map
    (fun v ->
      let node_rng = Random.State.make [| seeds.(v); v |] in
      let view, back = prep.rp_views.(v) in
      let view =
        match ids with
        | Some ids when not oblivious ->
            View.reassign_ids view (Array.map (fun u -> ids.(u)) back)
        | _ -> view
      in
      prep.rp_alg.decide node_rng view)
    (Pool.init_in_order n Fun.id)

let geometric rng =
  let rec go l = if Random.State.bool rng then l else go (l + 1) in
  go 1

let four_pow_capped ~cap l =
  let rec go acc k =
    if k = 0 then acc else if acc > cap / 4 then cap else go (4 * acc) (k - 1)
  in
  go 1 l
