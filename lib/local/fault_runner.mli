(** The gossip engine under a {!Faults.plan}: message loss and
    duplication, crash-stop failures, bounded re-gossip, and fuel
    budgets — with graceful degradation instead of exceptions.

    Two invariants are enforced by the test suite:
    - {b empty-plan identity}: under {!Faults.empty} the outputs are
      identical to [Runner.run_message_passing] (both engines share
      {!Knowledge} and reconstruct views through the same code), and
    - {b seeded determinism}: a fixed plan reproduces the same faulted
      outputs and stats byte-for-byte, run after run.

    A node that cannot answer soundly answers {!Unknown} rather than
    raising: it crashed, its accumulated knowledge misses part of its
    true radius-[t] ball (so deciding would read a counterfeit view),
    its decide budget is exhausted, or its decide step itself raised.
    Consequently every [Decided] output equals the output the
    fault-free engine would have produced for that node. *)

open Locald_graph

type reason = Outcome.reason =
  | Crashed
  | Incomplete_view
  | Fuel_exhausted
  | Decide_failed
(** Re-export of {!Outcome.reason}: the type lives in its own module so
    the asynchronous engine ({!Async_runner}) can share it without
    depending on this one. *)

type 'o outcome = 'o Outcome.t = Decided of 'o | Unknown of reason

val decided : 'o outcome -> bool
val reason_name : reason -> string

val pp_outcome :
  (Format.formatter -> 'o -> unit) -> Format.formatter -> 'o outcome -> unit

type stats = {
  rounds : int;          (** [radius + 1 + retries] *)
  messages : int;        (** attempted sends between live endpoints *)
  delivered : int;       (** snapshots actually merged (incl. duplicates) *)
  dropped : int;         (** messages lost to the plan *)
  duplicated : int;      (** messages delivered twice *)
  payload_items : int;   (** gross items over delivered snapshots *)
  new_items : int;       (** net items (new to their receiver) *)
  crashed : int;         (** nodes that crash-stopped before the end *)
  incomplete : int;      (** live nodes whose ball stayed incomplete *)
  fuel_exhausted : int;  (** live, complete nodes out of decide fuel *)
}

val degraded_nodes : stats -> int
(** [crashed + incomplete + fuel_exhausted]: how many nodes answered
    {!Unknown}. *)

val default_cost : 'a View.t -> int
(** The default decide-cost model: the order of the reconstructed view
    (a node pays one fuel unit per node it must process). *)

val run :
  plan:Faults.plan ->
  ?cost:('a View.t -> int) ->
  ('a, 'o) Algorithm.t ->
  'a Labelled.t ->
  ids:Ids.t ->
  'o outcome array * stats
(** Run the faulted gossip engine. [cost] overrides {!default_cost}
    for plans with a fuel budget.
    @raise Ids.Invalid_ids on an assignment-size mismatch.
    @raise Invalid_argument on an invalid plan. *)

val run_outputs :
  plan:Faults.plan ->
  ?cost:('a View.t -> int) ->
  ('a, 'o) Algorithm.t ->
  'a Labelled.t ->
  ids:Ids.t ->
  'o outcome array
(** {!run} without the stats. *)
