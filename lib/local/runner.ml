open Locald_graph

let check_size lg ids =
  if Ids.size ids <> Labelled.order lg then
    raise
      (Ids.Invalid_ids
         (Printf.sprintf "%d ids for a %d-node graph" (Ids.size ids)
            (Labelled.order lg)))

(* Attribute a [View.No_ids] escape to the algorithm that raised it:
   the accessor alone cannot know which algorithm was running. *)
let named_decide (alg : ('a, 'o) Algorithm.t) view =
  try alg.Algorithm.decide view
  with View.No_ids msg ->
    raise (View.No_ids (alg.Algorithm.name ^ ": " ^ msg))

let run ?backend alg lg ~ids =
  match
    match backend with Some b -> b | None -> Backend.default ()
  with
  | Backend.Async config -> Async_runner.run ~config alg lg ~ids
  | Backend.Sync ->
      check_size lg ids;
      let ids = Ids.to_array ids in
      Array.init (Labelled.order lg) (fun v ->
          named_decide alg (View.extract ~ids lg ~center:v ~radius:alg.radius))

(* Pre-extracted balls for the id-quantifying deciders: the ball
   structure of node [v] does not depend on the id assignment, only the
   id decoration does, so extracting once and re-decorating per
   assignment turns the per-assignment cost from O(ball extraction)
   into O(view order). *)

type ('a, 'o) prepared = {
  p_alg : ('a, 'o) Algorithm.t;
  p_order : int;
  p_views : ('a View.t * int array) array;
  p_mode : Locald_runtime.Memo.mode;
  p_memo : (int * int array, 'o) Locald_runtime.Memo.t option;
}

(* Each call is one ball-restricted decide — the unit both the naive
   tally and the quotient scans are billed in. *)
let c_decides = Locald_runtime.Telemetry.Counter.make "runner.decides"

(* Scratch-pool effectiveness, bridged from the arena's cumulative
   process-wide counters into the current telemetry run: after the
   first extraction on a worker, every further ball should reuse that
   worker's BFS scratch rather than reallocate. The bridge runs once
   per batch-extraction site (not per ball), so the run-lock cost of
   the gauges stays off the hot path. *)
let g_scratch_reuses = Locald_runtime.Telemetry.Gauge.make "view.scratch_reuses"
let g_scratch_allocs = Locald_runtime.Telemetry.Gauge.make "view.scratch_allocs"

let last_scratch_reuses = Atomic.make 0
let last_scratch_allocs = Atomic.make 0

let sync_scratch_gauges () =
  let cur = Arena.scratch_reuses () in
  let delta = cur - Atomic.exchange last_scratch_reuses cur in
  Locald_runtime.Telemetry.Gauge.add g_scratch_reuses (float_of_int delta);
  let cur = Arena.scratch_allocs () in
  let delta = cur - Atomic.exchange last_scratch_allocs cur in
  Locald_runtime.Telemetry.Gauge.add g_scratch_allocs (float_of_int delta)

let prepare ?(memo = Locald_runtime.Memo.Off) ?memo_capacity ?backend alg lg =
  Locald_runtime.Telemetry.span "runner.prepare" @@ fun () ->
  Fun.protect ~finally:sync_scratch_gauges @@ fun () ->
  {
    p_alg = alg;
    p_order = Labelled.order lg;
    p_views =
      (* Both backends produce representation-identical (view, back)
         pairs (pinned by test_async), so everything downstream —
         re-decoration, memo keys, quotient scans — is agnostic. *)
      (match
         match backend with Some b -> b | None -> Backend.default ()
       with
      | Backend.Sync ->
          Array.init (Labelled.order lg) (fun v ->
              View.extract_mapped lg ~center:v ~radius:alg.Algorithm.radius)
      | Backend.Async config ->
          Async_runner.assemble_views ~config ~radius:alg.Algorithm.radius lg);
    p_mode = memo;
    p_memo =
      (match memo with
      | Locald_runtime.Memo.Off -> None
      | Exact_ids | Order_type ->
          Some (Locald_runtime.Memo.create_node_ids ?capacity:memo_capacity ()));
  }

let prepared_size prep = prep.p_order

let ball_of prep v = snd prep.p_views.(v)

(* Decide node [v] under the ball-restricted assignment [r] (view-local
   order: [r.(i)] decorates view node [i]). This is the memoisation
   point: by the locality correspondence the output is a function of
   (node, restriction), so under [Exact_ids] that pair is the key;
   under [Order_type] the restriction is first collapsed to its rank
   pattern — sound only for order-invariant deciders, which is why the
   mode is opt-in at [prepare]. [r] must be fresh (the table keeps it as
   the stored key). *)
let decide_restricted ?(memoise = true) prep v r =
  Locald_runtime.Telemetry.Counter.incr c_decides;
  let view, _ = prep.p_views.(v) in
  let compute () = named_decide prep.p_alg (View.reassign_ids view r) in
  match prep.p_memo with
  | Some tbl when memoise ->
      let key_ids =
        match prep.p_mode with
        | Locald_runtime.Memo.Order_type -> Iso.order_type r
        | Off | Exact_ids -> r
      in
      Locald_runtime.Memo.find_or_compute tbl (v, key_ids) compute
  | Some _ | None -> compute ()

(* Read-adaptive decide cache for the quotient scans.

   A pure decide's control flow on a fixed ball can depend on the id
   decoration only through the id values it actually reads — and the
   access monitor (the obliviousness certifier's instrument) tells us
   exactly which slots those are. So: run the decide once under a
   recording monitor, and for every later restriction that agrees with
   a recorded execution on all the slots that execution read, reuse its
   output without running anything. The cache is a decision trie:
   each internal node branches on one view-local id slot (the next slot
   the decide read), each leaf stores an output. Agreement is checked
   slot by slot, so adaptive reads (which id a decide looks at next
   depending on what it saw) are handled exactly.

   For deciders that read few ids — e.g. a structural verifier
   conjoined with one centre-id comparison — this collapses a scan of
   [perm bound k] restrictions to a handful of real decides plus a
   trie walk per restriction.

   Soundness needs decides to be pure functions of their view (the
   same contract as the decide-once memo; an impure decide can
   disagree with its own cached behaviour). Two defensive degradations:
   a bulk [View.ids] read (the whole array at once) or an inconsistent
   replay (impurity surfacing as a read-sequence mismatch) marks the
   scanner opaque — every later restriction is decided directly. A
   scanner is single-domain state for one sequential scan; it must not
   be shared across domains, and it is not created while an outer
   monitor is installed (tracing would observe the cache, not the
   decide). *)
type 'o trie =
  | Leaf of 'o
  | Branch of { slot : int; children : (int, 'o trie) Hashtbl.t }

let restriction_scanner prep v =
  let view, back = prep.p_views.(v) in
  let k = Array.length back in
  let plain r = named_decide prep.p_alg (View.reassign_ids view r) in
  let root : 'o trie option ref = ref None in
  let opaque = ref (View.monitored ()) in
  let seen = Array.make (max k 1) false in
  let decide_traced r =
    let reads = ref [] in
    Array.fill seen 0 k false;
    let bulk = ref false in
    let mon =
      {
        View.input_ids = (fun _ -> false);
        emit =
          (function
          | View.Id_read { node; _ } ->
              if node < k && not seen.(node) then begin
                seen.(node) <- true;
                reads := node :: !reads
              end
          | View.Ids_read _ -> bulk := true
          | View.Label_read _ | View.Structure_read _ -> ());
      }
    in
    let out = View.with_monitor mon (fun () -> plain r) in
    (out, List.rev !reads, !bulk)
  in
  let rec build o (r : int array) = function
    | [] -> Leaf o
    | s :: rest ->
        let children = Hashtbl.create 8 in
        Hashtbl.replace children r.(s) (build o r rest);
        Branch { slot = s; children }
  in
  let rec walk t (r : int array) =
    match t with
    | Leaf o -> Some o
    | Branch b -> (
        match Hashtbl.find_opt b.children r.(b.slot) with
        | Some child -> walk child r
        | None -> None)
  in
  (* Merge a freshly traced execution into the trie. By purity the new
     execution reads the same slots as any recorded one until a read
     value differs, so the paths coincide down to the insertion point;
     anything else is impurity and degrades to direct decides. *)
  let rec graft t o (r : int array) reads =
    match (t, reads) with
    | Leaf _, _ | Branch _, [] -> opaque := true
    | Branch b, s :: rest ->
        if s <> b.slot then opaque := true
        else (
          match Hashtbl.find_opt b.children r.(s) with
          | Some child -> graft child o r rest
          | None -> Hashtbl.replace b.children r.(s) (build o r rest))
  in
  fun r ->
    Locald_runtime.Telemetry.Counter.incr c_decides;
    if !opaque then plain r
    else
      let cached = match !root with None -> None | Some t -> walk t r in
      match cached with
      | Some o ->
          Locald_runtime.Memo.note_hit ();
          o
      | None ->
          Locald_runtime.Memo.note_miss ();
          let o, reads, bulk = decide_traced r in
          if bulk then opaque := true
          else begin
            Locald_runtime.Memo.note_distinct ();
            match !root with
            | None -> root := Some (build o r reads)
            | Some t -> graft t o r reads
          end;
          o

let run_prepared prep ~ids =
  if Ids.size ids <> prep.p_order then
    raise
      (Ids.Invalid_ids
         (Printf.sprintf "%d ids for a %d-node graph" (Ids.size ids)
            prep.p_order));
  let ids = Ids.to_array ids in
  Locald_runtime.Telemetry.span "runner.run_prepared" @@ fun () ->
  Array.mapi
    (fun v (_, back) ->
      decide_restricted prep v (Array.map (fun u -> ids.(u)) back))
    prep.p_views

let run_oblivious ob lg =
  Array.init (Labelled.order lg) (fun v ->
      ob.Algorithm.ob_decide
        (View.extract lg ~center:v ~radius:ob.Algorithm.ob_radius))

(* Gossip knowledge (see Knowledge): every node accumulates
   (id -> label) bindings and id-keyed edges. One extra round is run
   beyond the horizon so that edges between two exactly-distance-t
   nodes are also learned — the "t +- 1" correspondence of
   Section 1.2. *)

type stats = {
  rounds : int;
  messages : int;
  payload_items : int;
  new_items : int;
}

let run_message_passing_general alg lg ~ids =
  check_size lg ids;
  let g = Labelled.graph lg in
  let n = Graph.order g in
  let id = Ids.to_array ids in
  let messages = ref 0 and payload_items = ref 0 and new_items = ref 0 in
  let state =
    Array.init n (fun v ->
        let k = Knowledge.create () in
        Knowledge.add_node k id.(v) (Labelled.label lg v);
        k)
  in
  let rounds = alg.Algorithm.radius + 1 in
  for _round = 1 to rounds do
    (* Synchronous round: everyone reads the previous snapshots. *)
    let snapshot = Array.map Knowledge.copy state in
    for v = 0 to n - 1 do
      Array.iter
        (fun u ->
          incr messages;
          payload_items := !payload_items + Knowledge.items snapshot.(u);
          new_items := !new_items + Knowledge.merge ~into:state.(v) snapshot.(u);
          Knowledge.add_edge state.(v) id.(v) id.(u))
        (Graph.neighbours g v)
    done
  done;
  let outputs =
    Array.init n (fun v ->
        let view =
          Knowledge.reconstruct state.(v) ~center_id:id.(v)
            ~radius:alg.Algorithm.radius
        in
        named_decide alg view)
  in
  ( outputs,
    {
      rounds;
      messages = !messages;
      payload_items = !payload_items;
      new_items = !new_items;
    } )

let run_message_passing alg lg ~ids = fst (run_message_passing_general alg lg ~ids)

let run_message_passing_stats = run_message_passing_general
