open Locald_graph

let check_size lg ids =
  if Ids.size ids <> Labelled.order lg then
    raise
      (Ids.Invalid_ids
         (Printf.sprintf "%d ids for a %d-node graph" (Ids.size ids)
            (Labelled.order lg)))

(* Attribute a [View.No_ids] escape to the algorithm that raised it:
   the accessor alone cannot know which algorithm was running. *)
let named_decide (alg : ('a, 'o) Algorithm.t) view =
  try alg.Algorithm.decide view
  with View.No_ids msg ->
    raise (View.No_ids (alg.Algorithm.name ^ ": " ^ msg))

let run alg lg ~ids =
  check_size lg ids;
  let ids = Ids.to_array ids in
  Array.init (Labelled.order lg) (fun v ->
      named_decide alg (View.extract ~ids lg ~center:v ~radius:alg.radius))

(* Pre-extracted balls for the id-quantifying deciders: the ball
   structure of node [v] does not depend on the id assignment, only the
   id decoration does, so extracting once and re-decorating per
   assignment turns the per-assignment cost from O(ball extraction)
   into O(view order). *)

type ('a, 'o) prepared = {
  p_alg : ('a, 'o) Algorithm.t;
  p_order : int;
  p_views : ('a View.t * int array) array;
}

let prepare alg lg =
  {
    p_alg = alg;
    p_order = Labelled.order lg;
    p_views =
      Array.init (Labelled.order lg) (fun v ->
          View.extract_mapped lg ~center:v ~radius:alg.Algorithm.radius);
  }

let prepared_size prep = prep.p_order

let run_prepared prep ~ids =
  if Ids.size ids <> prep.p_order then
    raise
      (Ids.Invalid_ids
         (Printf.sprintf "%d ids for a %d-node graph" (Ids.size ids)
            prep.p_order));
  let ids = Ids.to_array ids in
  Array.map
    (fun (view, back) ->
      named_decide prep.p_alg
        (View.reassign_ids view (Array.map (fun u -> ids.(u)) back)))
    prep.p_views

let run_oblivious ob lg =
  Array.init (Labelled.order lg) (fun v ->
      ob.Algorithm.ob_decide
        (View.extract lg ~center:v ~radius:ob.Algorithm.ob_radius))

(* Gossip knowledge (see Knowledge): every node accumulates
   (id -> label) bindings and id-keyed edges. One extra round is run
   beyond the horizon so that edges between two exactly-distance-t
   nodes are also learned — the "t +- 1" correspondence of
   Section 1.2. *)

type stats = {
  rounds : int;
  messages : int;
  payload_items : int;
  new_items : int;
}

let run_message_passing_general alg lg ~ids =
  check_size lg ids;
  let g = Labelled.graph lg in
  let n = Graph.order g in
  let id = Ids.to_array ids in
  let messages = ref 0 and payload_items = ref 0 and new_items = ref 0 in
  let state =
    Array.init n (fun v ->
        let k = Knowledge.create () in
        Knowledge.add_node k id.(v) (Labelled.label lg v);
        k)
  in
  let rounds = alg.Algorithm.radius + 1 in
  for _round = 1 to rounds do
    (* Synchronous round: everyone reads the previous snapshots. *)
    let snapshot = Array.map Knowledge.copy state in
    for v = 0 to n - 1 do
      Array.iter
        (fun u ->
          incr messages;
          payload_items := !payload_items + Knowledge.items snapshot.(u);
          new_items := !new_items + Knowledge.merge ~into:state.(v) snapshot.(u);
          Knowledge.add_edge state.(v) id.(v) id.(u))
        (Graph.neighbours g v)
    done
  done;
  let outputs =
    Array.init n (fun v ->
        let view =
          Knowledge.reconstruct state.(v) ~center_id:id.(v)
            ~radius:alg.Algorithm.radius
        in
        named_decide alg view)
  in
  ( outputs,
    {
      rounds;
      messages = !messages;
      payload_items = !payload_items;
      new_items = !new_items;
    } )

let run_message_passing alg lg ~ids = fst (run_message_passing_general alg lg ~ids)

let run_message_passing_stats = run_message_passing_general
