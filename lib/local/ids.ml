type t = int array

exception Invalid_ids of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid_ids s)) fmt

let of_array a =
  let tbl = Hashtbl.create (2 * Array.length a) in
  Array.iter
    (fun id ->
      if id < 0 then invalid "negative identifier %d" id;
      if Hashtbl.mem tbl id then invalid "duplicate identifier %d" id;
      Hashtbl.replace tbl id ())
    a;
  Array.copy a

let to_array t = Array.copy t
let assign t v = t.(v)
let size t = Array.length t
let max_id t = Array.fold_left max (-1) t

let sequential n = Array.init n Fun.id

let fisher_yates rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let shuffled rng n = fisher_yates rng (Array.init n Fun.id)

let random_below rng ~bound n =
  if bound < n then invalid "cannot draw %d distinct ids below %d" n bound;
  (* Reservoir-free selection: a random injection via partial shuffle
     of a sparse map (bound can be large). *)
  let chosen = Hashtbl.create (2 * n) in
  let result = Array.make n 0 in
  let rec draw i =
    if i >= n then ()
    else begin
      let candidate = Random.State.int rng bound in
      if Hashtbl.mem chosen candidate then draw i
      else begin
        Hashtbl.replace chosen candidate ();
        result.(i) <- candidate;
        draw (i + 1)
      end
    end
  in
  draw 0;
  result

let offset t k =
  if k < 0 then invalid "negative offset %d" k;
  Array.map (fun id -> id + k) t

let enumerate_injections ~n ~bound =
  if bound < n then invalid "cannot inject %d nodes into %d ids" n bound;
  (* Depth-first enumeration of injections as a lazy sequence. *)
  let rec extend prefix used k () =
    if k = n then Seq.Cons (Array.of_list (List.rev prefix), Seq.empty)
    else
      let rec candidates id () =
        if id >= bound then Seq.Nil
        else if List.mem id used then candidates (id + 1) ()
        else
          Seq.append
            (extend (id :: prefix) (id :: used) (k + 1))
            (candidates (id + 1))
            ()
      in
      candidates 0 ()
  in
  extend [] [] 0

(* Rank-addressed access to the same lexicographic stream, for the
   sharded exhaustive runs: a chunk [lo, hi) of ranks enumerates
   independently of every other chunk, and [injection_at] recovers the
   concrete assignment behind a recorded failure rank. Delegates to the
   runtime's falling-factorial unranking so restriction streams and
   assignment streams keep agreeing on what "rank" means. *)
let injection_at ~n ~bound rank =
  if bound < n then invalid "cannot inject %d nodes into %d ids" n bound;
  match Locald_runtime.Orbit.unrank ~bound ~k:n rank with
  | a -> a
  | exception Invalid_argument msg -> invalid "%s" msg

let enumerate_injections_from ~n ~bound ~start =
  if bound < n then invalid "cannot inject %d nodes into %d ids" n bound;
  match Locald_runtime.Orbit.injections_from ~bound ~k:n ~start with
  | s -> (s : t Seq.t)
  | exception Invalid_argument msg -> invalid "%s" msg

type regime =
  | Unbounded
  | Bounded of { name : string; f : int -> int }

let respects regime ~n t =
  Array.length t = n
  &&
  match regime with
  | Unbounded -> true
  | Bounded { f; _ } -> Array.for_all (fun id -> id < f n) t

let sample rng regime ~n =
  match regime with
  | Bounded { f; _ } -> random_below rng ~bound:(max n (f n)) n
  | Unbounded ->
      let base = Random.State.int rng 1024 in
      offset (random_below rng ~bound:(4 * max 1 n) n) base

let f_identity = Bounded { name = "f(n)=n"; f = Fun.id }
let f_linear_plus k = Bounded { name = Printf.sprintf "f(n)=n+%d" k; f = (fun n -> n + k) }
let f_square = Bounded { name = "f(n)=n^2+1"; f = (fun n -> (n * n) + 1) }

(* A monotone staircase whose jumps come from a seeded hash: monotone
   and >= n (as (B) needs) but with no algebraic structure an
   algorithm could invert other than by oracle access. The growth is
   kept close to n so that the Section 2 construction (whose large
   instance has about 2^f(..) nodes for binary trees) stays buildable. *)
let f_oracle ~seed =
  let cache = Hashtbl.create 64 in
  let rec extra n =
    if n <= 0 then 0
    else
      match Hashtbl.find_opt cache n with
      | Some v -> v
      | None ->
          let v = extra (n - 1) + (Hashtbl.hash (seed, n) land 1) in
          Hashtbl.replace cache n v;
          v
  in
  Bounded { name = Printf.sprintf "f=oracle#%d" seed; f = (fun n -> n + extra n) }

let pp ppf t =
  Format.fprintf ppf "@[<hov 2>ids[";
  Array.iteri
    (fun v id -> Format.fprintf ppf "%s%d:%d" (if v > 0 then ", " else "") v id)
    t;
  Format.fprintf ppf "]@]"
