(* Request semantics of the locald decision service: the bridge from
   [Proto] messages to the Sweeps workload registry, the certify
   registry and the telemetry surface.

   The centrepiece is the engine cache. An {e engine} is one
   [Sweeps.w_eval] closure — an instance's prepared views plus its
   decide-once memo table — keyed by (workload, backend config, memo
   mode). Engines persist across requests, so a repeated workload hits
   the warm memo table: the cross-request cache the long-lived daemon
   exists for. The cache is LRU-bounded ([max_engines]) and every
   engine's memo table is size-bounded ([memo_capacity] through
   [Runner.prepare]), so a daemon fed a stream of distinct configs
   stays at a bounded footprint. Eviction at either level is
   digest-transparent — a rebuilt engine recomputes what the dropped
   one knew.

   Per-request configuration is {e threaded}, never ambient: the
   daemon's startup defaults are captured once at [create], and a
   request's backend/memo/jobs override them for that request only by
   flowing through [w_eval]'s explicit parameters. Nothing here calls
   [Backend.set_default] / [Memo.set_default_mode] — the concurrency
   bug this PR fixes was exactly those process-global mutations leaking
   one request's config into another. *)

open Locald_runtime
module Backend = Locald_local.Backend
module Async_runner = Locald_local.Async_runner
module Json = Telemetry.Json

let c_engine_builds = Telemetry.Counter.make "serve.engine_builds"
let c_engine_evictions = Telemetry.Counter.make "serve.engine_evictions"
let g_engines = Telemetry.Gauge.make "serve.engines"

type engine = {
  e_eval : lo:int -> hi:int -> Shard.chunk_result;
  mutable e_used : int;  (* LRU stamp: the service clock at last use *)
}

type t = {
  sv_backend : Backend.t;  (* startup default for config-less requests *)
  sv_memo : Memo.mode;
  sv_memo_capacity : int;
  sv_max_engines : int;
  sv_engines : (string, engine) Hashtbl.t;
  mutable sv_tick : int;
  mutable sv_jobs : int;   (* last pool width applied *)
}

let default_max_engines = 8
let default_memo_capacity = 1 lsl 16

let create ?(max_engines = default_max_engines)
    ?(memo_capacity = default_memo_capacity) () =
  {
    sv_backend = Backend.default ();
    sv_memo = Memo.default_mode ();
    sv_memo_capacity = memo_capacity;
    sv_max_engines = max 1 max_engines;
    sv_engines = Hashtbl.create 16;
    sv_tick = 0;
    sv_jobs = Pool.default_jobs ();
  }

let env_problems () = Backend.env_problems () @ Memo.env_problems ()

(* ------------------------------------------------------------------ *)
(* Per-request configuration                                           *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

(* Mirrors the CLI's [apply_backend]: an explicit seed or fifo flag
   implies the async backend; naming "sync" alongside them is a
   contradiction and is rejected rather than silently dropped. *)
let resolve_backend t (c : Proto.config) =
  let async () =
    Backend.Async
      {
        Async_runner.sched_seed = Option.value c.c_sched_seed ~default:0;
        fifo = Option.value c.c_fifo ~default:false;
      }
  in
  match c.c_backend with
  | None ->
      if c.c_sched_seed = None && c.c_fifo = None then Ok t.sv_backend
      else Ok (async ())
  | Some "sync" ->
      if c.c_sched_seed <> None || c.c_fifo <> None then
        Error "sched_seed/fifo apply to the async backend only"
      else Ok Backend.Sync
  | Some "async" -> Ok (async ())
  | Some other ->
      Error (Printf.sprintf "unknown backend %S (expected sync | async)" other)

let resolve_memo t (c : Proto.config) =
  match c.c_memo with
  | None -> Ok t.sv_memo
  | Some s -> (
      match Memo.mode_of_string s with
      | Some m -> Ok m
      | None ->
          Error
            (Printf.sprintf "unknown memo mode %S (expected off | exact | order)"
               s))

(* Per-request pool width. Resizing the shared pool is safe between
   requests (the loop executes them sequentially) and digest-neutral
   (every engine entry point is deterministic at any width); skipping
   the no-op case avoids tearing the domain pool down per request. *)
let apply_jobs t (c : Proto.config) =
  match c.c_jobs with
  | None -> Ok ()
  | Some j when j < 1 || j > 64 -> Error "jobs must be within [1, 64]"
  | Some j ->
      if j <> t.sv_jobs then begin
        Pool.set_default_jobs j;
        t.sv_jobs <- j
      end;
      Ok ()

let backend_key = function
  | Backend.Sync -> "sync"
  | Backend.Async { Async_runner.sched_seed; fifo } ->
      Printf.sprintf "async:%d:%b" sched_seed fifo

(* ------------------------------------------------------------------ *)
(* The engine cache                                                    *)
(* ------------------------------------------------------------------ *)

let engine_for t (w : Sweeps.workload) backend memo =
  let key =
    Printf.sprintf "%s#%s#%s" w.Sweeps.w_name (backend_key backend)
      (Memo.mode_to_string memo)
  in
  t.sv_tick <- t.sv_tick + 1;
  match Hashtbl.find_opt t.sv_engines key with
  | Some e ->
      e.e_used <- t.sv_tick;
      e
  | None ->
      if Hashtbl.length t.sv_engines >= t.sv_max_engines then begin
        (* Evict the least-recently-used engine. The fold order over
           the table is irrelevant: the minimum stamp is order-free. *)
        let victim =
          Hashtbl.fold
            (fun k e acc ->
              match acc with
              | Some (_, e') when e'.e_used <= e.e_used -> acc
              | _ -> Some (k, e))
            t.sv_engines None
        in
        match victim with
        | Some (k, _) ->
            Hashtbl.remove t.sv_engines k;
            Telemetry.Counter.incr c_engine_evictions
        | None -> ()
      end;
      let e =
        {
          e_eval =
            w.Sweeps.w_eval ~backend ~memo ~memo_capacity:t.sv_memo_capacity
              ();
          e_used = t.sv_tick;
        }
      in
      Hashtbl.replace t.sv_engines key e;
      Telemetry.Counter.incr c_engine_builds;
      Telemetry.Gauge.set g_engines (float_of_int (Hashtbl.length t.sv_engines));
      e

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)
(* ------------------------------------------------------------------ *)

let digest_of x = Digest.to_hex (Digest.string (Marshal.to_string x []))

let handle_decide t (req : Proto.request) =
  let name = Option.value req.Proto.r_workload ~default:Sweeps.default_name in
  let* w =
    match Sweeps.find name with
    | Some w -> Ok w
    | None ->
        Error
          (Printf.sprintf "unknown workload %S (known: %s)" name
             (String.concat ", " Sweeps.names))
  in
  let* backend = resolve_backend t req.Proto.r_config in
  let* memo = resolve_memo t req.Proto.r_config in
  let* () = apply_jobs t req.Proto.r_config in
  let geom = w.Sweeps.w_geometry () in
  let total = geom.Sweeps.g_total in
  let lo = Option.value req.Proto.r_lo ~default:0 in
  let hi = Option.value req.Proto.r_hi ~default:total in
  let* () =
    if lo < 0 || hi < lo || hi > total then
      Error (Printf.sprintf "range [%d,%d) outside [0,%d]" lo hi total)
    else Ok ()
  in
  let engine = engine_for t w backend memo in
  let r = engine.e_eval ~lo ~hi in
  (* No wall times, no cache statistics in the result: responses must
     be byte-comparable across runs and against one-shot CLI digests.
     Stats live behind the metrics op. *)
  Ok
    (Json.Obj
       [
         ("workload", Json.String w.Sweeps.w_name);
         ("n", Json.Int geom.Sweeps.g_n);
         ("lo", Json.Int lo);
         ("hi", Json.Int hi);
         ("assignments", Json.Int (hi - lo));
         ("correct", Json.Int r.Shard.r_correct);
         ("wrong", Json.Int r.Shard.r_wrong);
         ( "first_failure",
           match r.Shard.r_fail with
           | Some rank -> Json.Int rank
           | None -> Json.Null );
         ( "digest",
           Json.String
             (Shard.result_digest ~correct:r.Shard.r_correct
                ~wrong:r.Shard.r_wrong ~assignments:(hi - lo)) );
       ])

let handle_certify () =
  let rows = Certify.run () in
  let row_json r =
    Json.Obj
      [
        ("name", Json.String r.Certify.c_name);
        ("cell", Json.String r.Certify.c_cell);
        ("claim", Json.String (Certify.claim_name r.Certify.c_claim));
        ( "verdict",
          Json.String
            (Locald_analysis.Analysis.verdict_name
               r.Certify.c_report.Locald_analysis.Analysis.rep_verdict) );
        ("ok", Json.Bool r.Certify.c_ok);
      ]
  in
  let summary r =
    ( r.Certify.c_name,
      Locald_analysis.Analysis.verdict_name
        r.Certify.c_report.Locald_analysis.Analysis.rep_verdict,
      r.Certify.c_ok )
  in
  Ok
    (Json.Obj
       [
         ("rows", Json.List (List.map row_json rows));
         ("all_ok", Json.Bool (Certify.all_ok rows));
         ("digest", Json.String (digest_of (List.map summary rows)));
       ])

(* ------------------------------------------------------------------ *)
(* The dispatcher                                                      *)
(* ------------------------------------------------------------------ *)

let handlers t =
  let on_request json =
    match Proto.request_of_json json with
    | Error msg ->
        Serve.Reply (Proto.error_response ?id:(Proto.request_id json) msg)
    | Ok req -> (
        let id = req.Proto.r_id in
        let op = req.Proto.r_op in
        let reply = function
          | Ok result -> Serve.Reply (Proto.response ~id ~op result)
          | Error msg -> Serve.Reply (Proto.error_response ~id msg)
        in
        match op with
        | Proto.Ping ->
            Serve.Reply
              (Proto.response ~id ~op (Json.Obj [ ("pong", Json.Bool true) ]))
        | Proto.Metrics -> Serve.Reply (Proto.response ~id ~op (Telemetry.metrics_json ()))
        | Proto.Shutdown ->
            Serve.Final
              (Proto.response ~id ~op
                 (Json.Obj [ ("draining", Json.Bool true) ]))
        | Proto.Decide -> (
            match handle_decide t req with
            | r -> reply r
            | exception e ->
                Serve.Reply (Proto.error_response ~id (Printexc.to_string e)))
        | Proto.Certify -> (
            match handle_certify () with
            | r -> reply r
            | exception e ->
                Serve.Reply (Proto.error_response ~id (Printexc.to_string e))))
  in
  {
    Serve.on_request;
    on_busy =
      (fun ~inflight json ->
        Proto.busy_response ?id:(Proto.request_id json) ~inflight ());
    on_malformed =
      (fun msg -> Proto.error_response ("malformed frame: " ^ msg));
  }
