open Locald_graph
open Locald_turing
open Locald_local
open Locald_decision
module Ti = Tree_instances

let default_seed = 0x10ca1d

let rng ?(seed = default_seed) () = Random.State.make [| seed |]

(* ------------------------------------------------------------------ *)
(* T1: the results table                                               *)
(* ------------------------------------------------------------------ *)

type cell_result = {
  cell : string;
  relation : string;
  evidence : (string * bool) list;
}

(* (B, C) and (B, notC): the Section 2 construction separates, for any
   bound function — computable or oracle. *)
let cell_bc ?seed ~regime ~quick ~name () =
  let p2 = { Ti.regime; arity = 2; r = (if quick then 1 else 2) } in
  let rng = rng ?seed () in
  let verifier = Tree_deciders.pprime_verifier p2 in
  let decider = Tree_deciders.p_decider p2 in
  let tr = Ti.big_tree p2 in
  let apexes = Ti.apexes p2 in
  let some_apex = List.nth apexes (List.length apexes / 2) in
  let smalls_sample =
    (* The apex count is exponential in R(r); a stride sample keeps the
       experiment linear while still touching every level. *)
    let stride = max 1 (List.length apexes / if quick then 8 else 64) in
    List.filteri (fun i _ -> i mod stride = 0) apexes
    |> List.map (fun apex -> Ti.small_instance p2 ~apex)
  in
  let assignments = if quick then 10 else 40 in
  let eval expected lg =
    Decider.all_correct
      (Decider.evaluate ~rng ~regime ~assignments decider ~expected ~instance:"" lg)
  in
  let coverage_params = { Ti.regime; arity = 1; r = (if quick then 4 else 6) } in
  let cov = Tree_deciders.coverage coverage_params ~t:1 in
  let rr = Ti.depth p2 in
  let big_budget =
    Tree_deciders.budgeted_a_star p2 ~budget:(2 * rr) ~trials:(if quick then 32 else 64)
  in
  let small_budget =
    Tree_deciders.budgeted_a_star p2 ~budget:rr ~trials:(if quick then 32 else 64)
  in
  {
    cell = name;
    relation = "LD* <> LD";
    evidence =
      [
        ("pigeonhole R(r) valid", Bound.pigeonhole_holds ~regime ~arity:2 ~r:p2.Ti.r);
        ( "P' in LD*: verifier accepts small and large",
          Verdict.accepts (Decider.decide_oblivious verifier tr)
          && List.for_all
               (fun h -> Verdict.accepts (Decider.decide_oblivious verifier h))
               smalls_sample );
        ( "P' in LD*: verifier rejects counterfeits",
          (* Only genuine counterfeits count: [pivot_on_interior]
             degenerates to a valid instance when the cone has no
             interior (e.g. r = 1). *)
          [
            Ti.cone_without_pivot p2 ~apex:some_apex;
            Ti.two_pivots p2 ~apex:some_apex;
            Ti.pivot_on_interior p2 ~apex:(0, 1);
            Ti.truncated_tree p2 ~keep_depth:(rr - 1);
          ]
          |> List.filter (fun lg -> Ti.classify p2 lg = Ti.Neither)
          |> List.for_all (fun lg ->
                 Verdict.rejects (Decider.decide_oblivious verifier lg)) );
        ( "P in LD: decider correct on all sampled assignments",
          eval false tr && List.for_all (eval true) smalls_sample );
        ( "P not in LD*: every t-view of T_r occurs in H_r",
          cov.Tree_deciders.covered = cov.Tree_deciders.total_views );
        ( "A* with large budget rejects a small instance",
          match big_budget with
          | Tree_deciders.Rejects_small _ -> true
          | Tree_deciders.Accepts_large | Tree_deciders.No_failure_found -> false );
        ( "A* with small budget accepts T_r",
          match small_budget with
          | Tree_deciders.Accepts_large -> true
          | Tree_deciders.Rejects_small _ | Tree_deciders.No_failure_found -> false );
      ];
  }

(* (notB, C): the Section 3 construction separates. *)
let cell_nbc ?seed ~quick () =
  let r = 1 in
  let rng = rng ?seed () in
  let steps = if quick then 2 else 3 in
  let config =
    { (Gmr.default_config ~r) with
      Gmr.fragment_cap = (if quick then 60 else 200) }
  in
  let m_yes = Zoo.two_faced ~steps ~real:0 ~fake:1 in
  let m_no = Zoo.two_faced ~steps ~real:1 ~fake:0 in
  let build m =
    match Gmr.build ~config ~r m with Ok t -> t | Error _ -> assert false
  in
  let g_yes = build m_yes and g_no = build m_no in
  let fast_yes = Gmr_deciders.Fast.prepare g_yes.Gmr.lg in
  let fast_no = Gmr_deciders.Fast.prepare g_no.Gmr.lg in
  let assignments = if quick then 5 else 20 in
  let eval expected fast (t : Gmr.t) =
    let ok = ref true in
    for _ = 1 to assignments do
      let ids = Ids.sample rng Ids.Unbounded ~n:(Gmr.order t) in
      let verdict = Gmr_deciders.Fast.ld fast ~ids in
      if Verdict.accepts verdict <> expected then ok := false
    done;
    !ok
  in
  {
    cell = "(notB, C)";
    relation = "LD* <> LD";
    evidence =
      [
        ("local rules pass on G(M0,r)", Array.for_all Fun.id (Gmr_check.structure_array g_yes.Gmr.lg));
        ("local rules pass on G(M1,r)", Array.for_all Fun.id (Gmr_check.structure_array g_no.Gmr.lg));
        ("P in LD: decider accepts G(M0,r)", eval true fast_yes g_yes);
        ("P in LD: decider rejects G(M1,r)", eval false fast_no g_no);
        ( "obfuscation: halt-scanning candidate rejects the yes-instance",
          Verdict.rejects (Gmr_deciders.Fast.scan_candidate fast_yes) );
        ( "fuel-bounded candidate accepts the no-instance",
          Verdict.accepts
            (Gmr_deciders.Fast.fuel_candidate fast_no ~fuel:(steps - 1)) );
        ( "generator B halts on a diverging machine",
          Gmr.generator_views ~config ~dedupe:false ~r
            ~side_exp:(if quick then 3 else 4)
            Zoo.diverge_bounce
          <> [] );
      ];
  }

(* (notB, notC): the Id-oblivious simulation works. The witness
   decider blames the minimum-identifier endpoint of a violated edge
   in a 2-colouring — genuinely Id-dependent node outputs, removable
   by A*. *)
let two_colouring_blaming_decider () =
  Algorithm.make ~name:"2col-min-id-blames" ~radius:1 (fun view ->
      let g = view.View.graph in
      let c = view.View.center in
      let colour v = view.View.labels.(v) in
      let violating_with u = colour u = colour c in
      let violators =
        Array.to_list (Graph.neighbours g c) |> List.filter violating_with
      in
      match violators with
      | [] -> true
      | us ->
          (* Yes unless this node carries the smaller identifier of
             some violated edge. Identifier reads go through the
             instrumented accessor so the certifier can witness them. *)
          not (List.exists (fun u -> View.id view c < View.id view u) us))

let cell_nbnc ?seed ~quick () =
  let rng = rng ?seed () in
  let alg = two_colouring_blaming_decider () in
  let property = Property.proper_colouring ~k:2 in
  let budget = Simulation.Exhaustive 5 in
  let simulated = Simulation.a_star ~budget alg in
  let instances =
    let path_coloured n ok =
      let colours =
        Array.init n (fun v -> if ok then v mod 2 else if v = n - 1 then (v + 1) mod 2 else v mod 2)
      in
      Labelled.make (Gen.path n) colours
    in
    let sizes = if quick then [ 4; 5 ] else [ 4; 5; 7; 8 ] in
    List.concat_map (fun n -> [ path_coloured n true; path_coloured n false ]) sizes
  in
  let decides_correctly lg =
    Verdict.accepts (Decider.decide_oblivious simulated lg)
    = property.Property.mem lg
  in
  let id_dependence =
    List.exists
      (fun lg ->
        (not (property.Property.mem lg))
        && Option.is_some
             (Oblivious.find_variance_sampled ~rng ~trials:60
                ~regime:Ids.Unbounded alg lg))
      instances
  in
  let base_correct =
    List.for_all
      (fun lg ->
        let e =
          Decider.evaluate ~rng ~regime:Ids.Unbounded
            ~assignments:(if quick then 8 else 25)
            alg
            ~expected:(property.Property.mem lg)
            ~instance:"" lg
        in
        Decider.all_correct e)
      instances
  in
  {
    cell = "(notB, notC)";
    relation = "LD* = LD";
    evidence =
      [
        ("witness decider is correct but not Id-oblivious", base_correct && id_dependence);
        ( "A* decides the same property obliviously",
          List.for_all decides_correctly instances );
      ];
  }

let table1 ?(quick = false) ?seed () =
  [
    cell_bc ?seed ~regime:(Ids.f_linear_plus 1) ~quick ~name:"(B, C)" ();
    cell_bc ?seed ~regime:(Ids.f_oracle ~seed:7) ~quick ~name:"(B, notC)" ();
    cell_nbc ?seed ~quick ();
    cell_nbnc ?seed ~quick ();
  ]

(* ------------------------------------------------------------------ *)
(* F1: Figure 1                                                        *)
(* ------------------------------------------------------------------ *)

type fig1_row = {
  arity : int;
  r : int;
  t : int;
  depth : int;
  tree_nodes : int;
  small_instances : int;
  covered : int;
  total : int;
  expected_full : bool;
}

let fig1_row ~regime ~arity ~r ~t =
  let p = { Ti.regime; arity; r } in
  let d = Ti.depth p in
  let cov = Tree_deciders.coverage p ~t in
  {
    arity;
    r;
    t;
    depth = d;
    tree_nodes = Bound.tree_size ~arity ~depth:d;
    small_instances = List.length (Ti.apexes p);
    covered = cov.Tree_deciders.covered;
    total = cov.Tree_deciders.total_views;
    expected_full = t = 0 || r >= 2 * t;
  }

let fig1 ?(quick = false) () =
  let regime = Ids.f_linear_plus 1 in
  let arity2 = if quick then [ (2, 1, 0) ] else [ (2, 0, 0); (2, 1, 0); (2, 2, 0) ] in
  let arity1 =
    if quick then [ (1, 4, 1); (1, 1, 1) ]
    else [ (1, 2, 1); (1, 4, 1); (1, 6, 1); (1, 4, 2); (1, 6, 2); (1, 8, 2);
           (1, 1, 1); (1, 3, 2) ]
  in
  List.map
    (fun (arity, r, t) -> fig1_row ~regime ~arity ~r ~t)
    (arity2 @ arity1)

(* ------------------------------------------------------------------ *)
(* F2: Figure 2                                                        *)
(* ------------------------------------------------------------------ *)

type fig2_row = {
  machine : string;
  steps : int;
  output : int;
  table_side : int;
  fragments : int;
  fake_windows : int;
  nodes : int;
  edges : int;
  rules_ok : bool;
}

let fig2_machines ~quick =
  if quick then [ Zoo.two_faced ~steps:2 ~real:0 ~fake:1 ]
  else
    [
      Zoo.walk ~steps:2 ~output:0;
      Zoo.two_faced ~steps:3 ~real:0 ~fake:1;
      Zoo.two_faced ~steps:3 ~real:1 ~fake:0;
      Zoo.zigzag ~half:2 ~output:0;
      Zoo.sweeper ~width:4 ~sweeps:3 ~output:1;
      Zoo.binary_counter ~bits:2;
    ]

let fig2 ?(quick = false) () =
  fig2_machines ~quick
  |> List.filter_map (fun m ->
         match Gmr.build ~r:1 m with
         | Error _ -> None
         | Ok t ->
             let fake_windows =
               List.length
                 (List.filter
                    (fun f ->
                      Array.exists
                        (Array.exists (fun (c : Cell.t) ->
                             match c.Cell.head with
                             | Cell.Halted o -> o <> t.Gmr.output
                             | Cell.Head _ | Cell.No_head -> false))
                        f.Fragment.cells)
                    t.Gmr.fragments)
             in
             Some
               {
                 machine = m.Machine.name;
                 steps = t.Gmr.steps;
                 output = t.Gmr.output;
                 table_side = t.Gmr.table_side;
                 fragments = List.length t.Gmr.fragments;
                 fake_windows;
                 nodes = Gmr.order t;
                 edges = Gmr.size t;
                 rules_ok = Gmr_check.structure_ok t;
               })

(* ------------------------------------------------------------------ *)
(* F3: Figure 3                                                        *)
(* ------------------------------------------------------------------ *)

type fig3_row = {
  h : int;
  side : int;
  nodes : int;
  pyramid_overhead : float;
  grid_diameter : int;
  pyramid_diameter : int;
  genuine_ok : bool;
  torus_rejected : bool;
}

let classify_pyramid ~h v =
  let c = Quadtree.coord_of_index ~h v in
  let l = Quadtree.label_of_coord c in
  if c.Quadtree.z = 0 then Quadtree.Bottom (l.Quadtree.m6x, l.Quadtree.m6y)
  else Quadtree.Upper l

let quadtree_ok ~h lg =
  let g = Labelled.graph lg in
  let classify = classify_pyramid ~h in
  let rec go v =
    if v >= Labelled.order lg then true
    else Quadtree.inspect ~classify g v = [] && go (v + 1)
  in
  go 0

let torus_counterfeit ~h =
  (* A torus wearing grid labels, without any pyramid: the nodes have
     no parents, which the rules catch immediately. *)
  let side = Quadtree.side ~h in
  let g = Gen.torus side side in
  Labelled.init g (fun v ->
      Quadtree.label_of_coord
        { Quadtree.x = v mod side; y = v / side; z = 0 })

let torus_rejected ~h =
  let lg = torus_counterfeit ~h in
  let g = Labelled.graph lg in
  let classify v =
    let l = Labelled.label lg v in
    Quadtree.Bottom (l.Quadtree.m6x, l.Quadtree.m6y)
  in
  let some_violation = ref false in
  for v = 0 to Labelled.order lg - 1 do
    if Quadtree.inspect ~classify g v <> [] then some_violation := true
  done;
  !some_violation

let fig3 ?(quick = false) () =
  let hs = if quick then [ 1; 2 ] else [ 1; 2; 3; 4; 5 ] in
  List.map
    (fun h ->
      let side = Quadtree.side ~h in
      let lg = Quadtree.labelled ~h () in
      let g = Labelled.graph lg in
      {
        h;
        side;
        nodes = Graph.order g;
        pyramid_overhead = float_of_int (Graph.order g) /. float_of_int (side * side);
        grid_diameter = 2 * (side - 1);
        pyramid_diameter = Graph.diameter g;
        genuine_ok = quadtree_ok ~h lg;
        torus_rejected = (if side >= 3 then torus_rejected ~h else true);
      })
    hs

(* ------------------------------------------------------------------ *)
(* C1: Corollary 1                                                     *)
(* ------------------------------------------------------------------ *)

type corollary1_row = {
  machine : string;
  n : int;
  expected : bool;
  runs : int;
  success : float;
  theory_bound : float;
}

let corollary1 ?(quick = false) ?seed () =
  let rng = rng ?seed () in
  let machines =
    if quick then [ (Zoo.two_faced ~steps:2 ~real:1 ~fake:0, false) ]
    else
      [
        (Zoo.two_faced ~steps:2 ~real:0 ~fake:1, true);
        (Zoo.two_faced ~steps:2 ~real:1 ~fake:0, false);
        (Zoo.walk ~steps:5 ~output:1, false);
        (Zoo.zigzag ~half:3 ~output:1, false);
      ]
  in
  let runs = if quick then 10 else 100 in
  List.filter_map
    (fun (m, expected) ->
      match Gmr.build ~r:1 m with
      | Error _ -> None
      | Ok t ->
          let fast = Gmr_deciders.Fast.prepare t.Gmr.lg in
          (* Monte-Carlo runs are independent: each gets its own coin
             stream, seeded sequentially before the fan-out so the
             estimate is identical at any job count. *)
          let run_seeds = Locald_runtime.Pool.split_seeds rng runs in
          let outcomes =
            Locald_runtime.Pool.map
              (fun s ->
                let run_rng = Random.State.make [| s |] in
                Verdict.accepts (Gmr_deciders.Fast.corollary1 fast run_rng)
                = expected)
              run_seeds
          in
          let successes =
            Array.fold_left (fun acc ok -> if ok then acc + 1 else acc) 0 outcomes
          in
          let n = Gmr.order t in
          let theory_bound =
            if expected then 1.0
            else 1.0 -. ((1.0 -. (1.0 /. sqrt (float_of_int n))) ** float_of_int n)
          in
          Some
            {
              machine = m.Machine.name;
              n;
              expected;
              runs;
              success = float_of_int successes /. float_of_int runs;
              theory_bound;
            })
    machines

(* ------------------------------------------------------------------ *)
(* P3: generator coverage                                              *)
(* ------------------------------------------------------------------ *)

type p3_row = {
  machine : string;
  halts_in_window : bool;
  g_classes : int;
  b_classes : int;
  g_covered_by_b : int;
  b_covered_by_g : int;
}

let p3 ?(quick = false) () =
  let r = 1 in
  let config =
    { (Gmr.default_config ~r) with Gmr.fragment_cap = (if quick then 30 else 60) }
  in
  let side_exp = 3 in
  let machines =
    if quick then [ Zoo.two_faced ~steps:2 ~real:0 ~fake:1 ]
    else
      [
        Zoo.two_faced ~steps:2 ~real:0 ~fake:1;
        Zoo.two_faced ~steps:2 ~real:1 ~fake:0;
        Zoo.walk ~steps:3 ~output:0;
        Zoo.zigzag ~half:2 ~output:1;
      ]
  in
  List.filter_map
    (fun m ->
      match Gmr.build ~config ~r m with
      | Error _ -> None
      | Ok t ->
          let halts_in_window = t.Gmr.table_side <= 1 lsl side_exp in
          let g_views = Gmr.all_views t in
          let b_views = Gmr.generator_views ~config ~r ~side_exp m in
          let _, g_covered_by_b, _ = Gmr.views_covered g_views ~by:b_views in
          let _, b_covered_by_g, _ = Gmr.views_covered b_views ~by:g_views in
          Some
            {
              machine = m.Machine.name;
              halts_in_window;
              g_classes = List.length g_views;
              b_classes = List.length b_views;
              g_covered_by_b;
              b_covered_by_g;
            })
    machines

(* ------------------------------------------------------------------ *)
(* D: the fuel diagonalisation                                         *)
(* ------------------------------------------------------------------ *)

type diagonal_row = {
  fuel : int;
  fooling_machine : string;
  fooled : bool;
  honest_on_fast : bool;
}

let fuel_diagonal ?(quick = false) () =
  let r = 1 in
  let config =
    { (Gmr.default_config ~r) with
      Gmr.fragment_cap = (if quick then 30 else 60);
      fuel = 256;
    }
  in
  let fuels = if quick then [ 2; 4 ] else [ 1; 2; 4; 8; 16 ] in
  List.filter_map
    (fun fuel ->
      (* The fooling machine halts with output 1 just beyond the
         candidate's fuel; the honest check uses a machine well within
         the fuel. *)
      let slow = Zoo.two_faced ~steps:(fuel + 1) ~real:1 ~fake:0 in
      let fast = Zoo.two_faced ~steps:(fuel - 1) ~real:1 ~fake:0 in
      match (Gmr.build ~config ~r slow, Gmr.build ~config ~r fast) with
      | Ok g_slow, Ok g_fast ->
          let fast_slow = Gmr_deciders.Fast.prepare g_slow.Gmr.lg in
          let fast_fast = Gmr_deciders.Fast.prepare g_fast.Gmr.lg in
          Some
            {
              fuel;
              fooling_machine = slow.Machine.name;
              fooled =
                Verdict.accepts
                  (Gmr_deciders.Fast.fuel_candidate fast_slow ~fuel);
              honest_on_fast =
                Verdict.rejects
                  (Gmr_deciders.Fast.fuel_candidate fast_fast ~fuel);
            }
      | _, _ -> None)
    fuels

(* ------------------------------------------------------------------ *)
(* K: the constructive side (Section 1.3 context)                      *)
(* ------------------------------------------------------------------ *)

type construction_row = {
  task : string;
  n : int;
  ok : bool;        (** output validates *)
  rounds : int;     (** rounds used (CV iterations for Cole-Vishkin) *)
  messages : int;   (** directed sends, where metered (0 otherwise) *)
}

let construction ?(quick = false) ?seed () =
  let rng = rng ?seed () in
  let sizes = if quick then [ 16; 64 ] else [ 16; 64; 256; 1024 ] in
  let cv_rows =
    List.map
      (fun n ->
        let ids = Locald_local.Ids.shuffled rng n in
        let cols, _, stable = Locald_local.Symmetry.run_on_cycle ~n ~ids () in
        {
          task = "Cole-Vishkin 3-colouring (cycle)";
          n;
          ok = Locald_local.Symmetry.is_proper_colouring (Gen.cycle n) cols ~k:3;
          rounds = stable;
          messages = 0;
        })
      sizes
  in
  let luby_rows =
    List.map
      (fun n ->
        let g = Gen.random_connected rng ~n ~p:(8.0 /. float_of_int n) in
        let ids = Locald_local.Ids.shuffled rng n in
        let labels, outcome =
          Locald_local.Symmetry.run_luby ~seed:(n + 1) ~max_rounds:200 g ~ids
        in
        let lg = Labelled.make g labels in
        {
          task = "Luby MIS (random graph)";
          n;
          ok =
            outcome.Locald_local.Protocol.all_halted
            && (Lcl.property Lcl.maximal_independent_set).Property.mem lg;
          rounds = outcome.Locald_local.Protocol.rounds_used;
          messages = 0;
        })
      sizes
  in
  let gossip_rows =
    List.map
      (fun side ->
        let g = Gen.grid side side in
        let n = Graph.order g in
        let lg = Labelled.init g (fun v -> v mod 4) in
        let ids = Locald_local.Ids.shuffled rng n in
        let alg =
          Locald_local.Algorithm.make ~name:"fingerprint" ~radius:2 (fun view ->
              Iso.view_signature Hashtbl.hash view)
        in
        let _, stats = Locald_local.Runner.run_message_passing_stats alg lg ~ids in
        {
          task = "full-information gossip (grid, t=2)";
          n;
          ok = true;
          rounds = stats.Locald_local.Runner.rounds;
          messages = stats.Locald_local.Runner.messages;
        })
      (if quick then [ 4; 6 ] else [ 4; 8; 12 ])
  in
  cv_rows @ luby_rows @ gossip_rows

(* ------------------------------------------------------------------ *)
(* OI: order-invariant algorithms also fail under (B)                  *)
(* ------------------------------------------------------------------ *)

type oi_row = { check : string; ok : bool }

(* Identifiers help the Section 2 decider only through their
   magnitude. The OI model (Section 1.3) erases magnitude and keeps
   relative order — and with it the separation collapses back to the
   Id-oblivious situation: within a view, ranks are always
   0..k-1-shaped, so the coverage obstruction applies verbatim. *)
let order_invariance ?(quick = false) ?seed () =
  let rng = rng ?seed () in
  let regime = Ids.f_linear_plus 1 in
  let p = { Ti.regime; arity = 2; r = (if quick then 1 else 1) } in
  let decider = Tree_deciders.p_decider p in
  let tr = Ti.big_tree p in
  (* 1. The LD decider is not order-invariant: monotone re-embeddings
     flip outputs on T_r (the threshold reads magnitude). *)
  let not_oi =
    Option.is_some
      (Locald_local.Models.find_order_variance ~rng ~trials:80 decider tr)
  in
  (* 2. The rank-normalised (OI) version of the same decider accepts
     T_r — wrongly — because ranks within a view are tiny. *)
  let oi_candidate =
    Locald_local.Models.order_invariant ~name:"P-decider-by-rank" ~radius:1
      decider.Locald_local.Algorithm.decide
  in
  let ids = Ids.sample rng regime ~n:(Labelled.order tr) in
  let accepts_tr =
    Verdict.accepts (Decider.decide decider tr ~ids) = false
    && Verdict.accepts (Decider.decide oi_candidate tr ~ids)
  in
  (* ... while still accepting the small instances (so it is not just
     broken). *)
  let ok_on_small =
    let h = Ti.small_instance p ~apex:(0, 1) in
    let ids = Ids.sample rng regime ~n:(Labelled.order h) in
    Verdict.accepts (Decider.decide oi_candidate h ~ids)
  in
  [
    { check = "LD decider reads magnitude (not order-invariant)"; ok = not_oi };
    {
      check = "rank-normalised decider accepts small instances";
      ok = ok_on_small;
    };
    {
      check = "rank-normalised decider wrongly accepts T_r (OI separation)";
      ok = accepts_tr;
    };
  ]

(* ------------------------------------------------------------------ *)
(* H: hereditariness of the witness properties                         *)
(* ------------------------------------------------------------------ *)

type hereditary_row = {
  property_name : string;
  instance : string;
  hereditary_looking : bool;  (** no violating induced subgraph found *)
  expected_hereditary : bool;
}

let hereditary ?(quick = false) ?seed () =
  let rng = rng ?seed () in
  let samples = if quick then 40 else 150 in
  let regime = Ids.f_linear_plus 1 in
  let p2 = { Ti.regime; arity = 2; r = 1 } in
  let tree_p = Property.make ~name:"P (Section 2 witness)" (Ti.in_p p2) in
  let gmr_config =
    { (Gmr.default_config ~r:1) with Gmr.fragment_cap = 25 }
  in
  let gmr_property = Gmr_deciders.property ~r:1 ~config:gmr_config in
  let gmr_instance =
    match Gmr.build ~config:gmr_config ~r:1 (Zoo.two_faced ~steps:2 ~real:0 ~fake:1) with
    | Ok t -> t.Gmr.lg
    | Error _ -> assert false
  in
  let check name instance expected p lg =
    {
      property_name = name;
      instance;
      hereditary_looking =
        Hereditary.connected_induced_counterexample ~rng ~samples p lg = None;
      expected_hereditary = expected;
    }
  in
  [
    check "proper-3-colouring" "coloured C9" true
      (Property.proper_colouring ~k:3)
      (Labelled.init (Gen.cycle 9) (fun v -> v mod 3));
    check "proper-3-colouring" "coloured 4x3 grid" true
      (Property.proper_colouring ~k:3)
      (Labelled.init (Gen.grid 4 3) (fun v -> ((v mod 4) + (v / 4)) mod 2));
    check "maximal-independent-set" "alternating P7" false
      Property.maximal_independent_set
      (Labelled.init (Gen.path 7) (fun v -> v mod 2));
    check "P (Section 2 witness)" "H+ at (0,1)" false tree_p
      (Ti.small_instance p2 ~apex:(0, 1));
    check "P (Section 3 witness)" "G(twofaced2, 1)" false
      gmr_property gmr_instance;
  ]

(* ------------------------------------------------------------------ *)
(* W2 / W3: the warm-up promise problems                               *)
(* ------------------------------------------------------------------ *)

type warmup_row = {
  problem : string;
  setting : string;
  check : string;
  ok : bool;
}

let cycle_warmup ?seed ~regime ~name ~quick () =
  let rng = rng ?seed () in
  let rs = if quick then [ 4 ] else [ 4; 8; 16 ] in
  List.concat_map
    (fun r ->
      let decider = Cycle_promise.ld_decider ~regime in
      let yes = Cycle_promise.yes_instance ~r in
      let no = Cycle_promise.no_instance ~regime ~r in
      let assignments = if quick then 15 else 60 in
      let eval expected lg =
        Decider.all_correct
          (Decider.evaluate ~rng ~regime ~assignments decider ~expected
             ~instance:"" lg)
      in
      [
        {
          problem = "W2 cycle promise";
          setting = Printf.sprintf "%s r=%d" name r;
          check = "LD decider correct on both instances";
          ok = eval true yes && eval false no;
        };
        {
          problem = "W2 cycle promise";
          setting = Printf.sprintf "%s r=%d" name r;
          check = "views mutually covered at t=1 (oblivious blind spot)";
          ok = Cycle_promise.views_mutually_covered ~regime ~r ~t:1;
        };
      ])
    rs

let tm_warmup ?seed ~quick () =
  let rng = rng ?seed () in
  let fuel = 32 in
  let decider = Tm_promise.ld_decider () in
  let machines =
    if quick then [ (Zoo.walk ~steps:4 ~output:0, false) ]
    else
      [
        (Zoo.diverge_right, true);
        (Zoo.diverge_bounce, true);
        (Zoo.walk ~steps:4 ~output:0, false);
        (Zoo.binary_counter ~bits:2, false);
      ]
  in
  let rows =
    List.map
      (fun (m, expected) ->
        let s =
          match Exec.run ~fuel:1024 m with
          | Exec.Halted { steps; _ } -> steps
          | Exec.Out_of_fuel _ | Exec.Crashed _ -> 0
        in
        let n = max 3 (s + 1) in
        let lg = Tm_promise.instance ~machine:m ~n in
        let e =
          Decider.evaluate ~rng ~regime:Ids.Unbounded
            ~assignments:(if quick then 10 else 30)
            decider ~expected ~instance:"" lg
        in
        {
          problem = "W3 TM promise";
          setting = m.Machine.name;
          check = "LD decider correct on all sampled assignments";
          ok = Decider.all_correct e;
        })
      machines
  in
  let fooled =
    let m = Tm_promise.fooling_machine ~fuel in
    let s =
      match Exec.run ~fuel:(4 * fuel) m with
      | Exec.Halted { steps; _ } -> steps
      | Exec.Out_of_fuel _ | Exec.Crashed _ -> assert false
    in
    let lg = Tm_promise.instance ~machine:m ~n:(s + 1) in
    let candidate = Tm_promise.oblivious_candidate ~fuel in
    {
      problem = "W3 TM promise";
      setting = Printf.sprintf "fuel-%d candidate vs %s" fuel m.Machine.name;
      check = "oblivious candidate accepts a halting (no-)instance";
      ok = Verdict.accepts (Decider.decide_oblivious candidate lg);
    }
  in
  rows @ [ fooled ]

let warmups ?(quick = false) ?seed () =
  cycle_warmup ?seed ~regime:(Ids.f_linear_plus 1) ~name:"f=n+1" ~quick ()
  @ (if quick then []
     else cycle_warmup ?seed ~regime:Ids.f_square ~name:"f=n^2+1" ~quick ())
  @ tm_warmup ?seed ~quick ()

(* ------------------------------------------------------------------ *)
(* FT: fault injection and graceful degradation                        *)
(* ------------------------------------------------------------------ *)

type fault_row = {
  f_scenario : string;
  f_plan : Faults.plan;
  f_eval : Decider.fault_evaluation;
}

(* Deterministic crash placement: [count] crash-stop failures spread
   across the node range, alternating between rounds 1 and 2. *)
let crash_plan ~count ~n plan =
  if count = 0 then plan
  else
    let stride = max 1 (n / (count + 1)) in
    {
      plan with
      Faults.crashes =
        List.init count (fun i -> ((i + 1) * stride mod n, 1 + (i mod 2)));
    }

let faults ?(quick = false) ?(seed = default_seed) ?drop ?crashes ?fuel
    ?retries ?runs () =
  let rng = rng ~seed () in
  let regime = Ids.f_linear_plus 1 in
  let runs = match runs with Some r -> r | None -> if quick then 4 else 10 in
  let p2 = { Ti.regime; arity = 2; r = 1 } in
  let tr = Ti.big_tree p2 in
  let apexes = Ti.apexes p2 in
  let small =
    Ti.small_instance p2 ~apex:(List.nth apexes (List.length apexes / 2))
  in
  let tree_decider = Tree_deciders.p_decider p2 in
  let gmr_config =
    { (Gmr.default_config ~r:1) with
      Gmr.fragment_cap = (if quick then 25 else 30) }
  in
  let build m =
    match Gmr.build ~config:gmr_config ~r:1 m with
    | Ok t -> t.Gmr.lg
    | Error _ -> assert false
  in
  let c1_yes = build (Zoo.two_faced ~steps:2 ~real:0 ~fake:1) in
  let c1_no = build (Zoo.two_faced ~steps:2 ~real:1 ~fake:0) in
  (* The Corollary 1 decider is randomised; under the fault runner its
     per-node coins are drawn from the experiment rng at decide time
     (evaluation order is fixed, so runs stay reproducible). *)
  let corollary1_frozen =
    let rd = Gmr_deciders.corollary1_decider () in
    Algorithm.make ~name:"Gmr-corollary1" ~radius:rd.Randomized.radius
      (fun view ->
        let node_rng = Random.State.make [| Random.State.bits rng |] in
        rd.Randomized.decide node_rng (View.strip_ids view))
  in
  let crash_count = Option.value crashes ~default:0 in
  let scenario ?(crash = crash_count) ?(fuel_b = fuel) name alg expected
      instance lg d k =
    let n = Labelled.order lg in
    let plan =
      crash_plan ~count:crash ~n
        (Faults.make ~seed ~drop:d ?fuel:fuel_b ~retries:k ())
    in
    {
      f_scenario = name;
      f_plan = plan;
      f_eval =
        Decider.evaluate_faulty ~rng ~regime ~runs ~plan alg ~expected
          ~instance lg;
    }
  in
  let drops =
    match drop with
    | Some d -> [ d ]
    | None -> if quick then [ 0.0; 0.2 ] else [ 0.0; 0.1; 0.3 ]
  in
  let retries_list =
    match retries with
    | Some k -> [ k ]
    | None -> if quick then [ 1 ] else [ 0; 2 ]
  in
  (* The G(M,1) instances are an order of magnitude larger than the
     trees, so the randomised decider sweeps the drops axis only, at a
     single retry budget. *)
  let c1_retries = match retries with Some k -> k | None -> 1 in
  let tree_grid =
    List.concat_map
      (fun d ->
        List.concat_map
          (fun k ->
            [
              scenario "tree P-decider" tree_decider false "T_r" tr d k;
              scenario "tree P-decider" tree_decider true "H+" small d k;
            ])
          retries_list)
      drops
  in
  let c1_grid =
    List.concat_map
      (fun d ->
        [
          scenario "corollary1 (rand)" corollary1_frozen true "G(M0,1)" c1_yes
            d c1_retries;
          scenario "corollary1 (rand)" corollary1_frozen false "G(M1,1)" c1_no
            d c1_retries;
        ])
      drops
  in
  let grid = tree_grid @ c1_grid in
  let sweeping =
    drop = None && crashes = None && fuel = None && retries = None
  in
  let extras =
    if not sweeping then []
    else
      [
        (* the crash-stop and fuel-budget axes, at a fixed drop rate *)
        scenario ~crash:1 "tree P-decider" tree_decider true "H+ (1 crash)"
          small 0.05 1;
        scenario ~crash:2 "tree P-decider" tree_decider false "T_r (2 crashes)"
          tr 0.05 1;
        scenario ~fuel_b:(Some 2) "tree P-decider" tree_decider true
          "H+ (fuel 2)" small 0.0 0;
      ]
  in
  grid @ extras
