(** Experiment drivers regenerating the paper's results table and
    figures. Each driver returns printable records; the [locald] CLI
    and the benchmark harness render them. [quick] shrinks parameter
    sets for use in tests.

    See DESIGN.md (experiment index) for the mapping to the paper. *)

open Locald_local

(** {1 T1 — the Section 1.1 results table} *)

type cell_result = {
  cell : string;        (** e.g. "(B, C)" *)
  relation : string;    (** "LD* <> LD" or "LD* = LD" *)
  evidence : (string * bool) list;
      (** named checks; all must hold for the cell's claim *)
}

val table1 : ?quick:bool -> ?seed:int -> unit -> cell_result list
(** [seed] (here and below) reseeds the experiment's random state —
    threaded from the CLI's global [--seed] option; defaults to the
    historical constant. *)

val cell_bc :
  ?seed:int -> regime:Ids.regime -> quick:bool -> name:string -> unit ->
  cell_result
(** The two (B, -) separations, parametric in the bound function — pass a
    computable regime for (B, C) and the oracle regime for (B, notC). *)

val cell_nbc : ?seed:int -> quick:bool -> unit -> cell_result
(** The (notB, C) separation via the Section 3 construction. *)

val cell_nbnc : ?seed:int -> quick:bool -> unit -> cell_result
(** The (notB, notC) equality via the Id-oblivious simulation [A*]. *)

val two_colouring_blaming_decider : unit -> (int, bool) Algorithm.t
(** The (notB, notC) witness decider: on a violated 2-colouring edge,
    the endpoint carrying the {e smaller identifier} takes the blame —
    genuinely Id-dependent node outputs (the certifier exhibits the id
    read), removable by the simulation [A*]. Exposed for the
    certification registry. *)

(** {1 F1 — Figure 1 (layered trees and view coverage)} *)

type fig1_row = {
  arity : int;
  r : int;
  t : int;
  depth : int;           (** [R(r)] *)
  tree_nodes : int;      (** order of [T_r] *)
  small_instances : int; (** |H_r| *)
  covered : int;
  total : int;
  expected_full : bool;  (** does the theory predict full coverage? *)
}

val fig1 : ?quick:bool -> unit -> fig1_row list

(** {1 F2 — Figure 2 (the G(M,r) construction)} *)

type fig2_row = {
  machine : string;
  steps : int;
  output : int;
  table_side : int;
  fragments : int;
  fake_windows : int;   (** glued fragments showing a non-[output] halt *)
  nodes : int;
  edges : int;
  rules_ok : bool;      (** local rules pass everywhere *)
}

val fig2 : ?quick:bool -> unit -> fig2_row list

(** {1 F3 — Figure 3 (the pyramid)} *)

type fig3_row = {
  h : int;
  side : int;
  nodes : int;
  pyramid_overhead : float;  (** nodes / side^2 *)
  grid_diameter : int;
  pyramid_diameter : int;
  genuine_ok : bool;         (** quadtree rules pass on the pyramid *)
  torus_rejected : bool;     (** a torus counterfeit violates them *)
}

val fig3 : ?quick:bool -> unit -> fig3_row list

(** {1 C1 — Corollary 1 (randomised Id-oblivious decider)} *)

type corollary1_row = {
  machine : string;
  n : int;
  expected : bool;
  runs : int;
  success : float;
  theory_bound : float;
      (** [1 - (1 - 1/sqrt n)^n], the paper's lower bound on the
          rejection probability for no-instances (1.0 for
          yes-instances) *)
}

val corollary1 : ?quick:bool -> ?seed:int -> unit -> corollary1_row list

(** {1 P3 — the neighbourhood generator's coverage (property (P3))} *)

type p3_row = {
  machine : string;
  halts_in_window : bool;
  g_classes : int;       (** distinct view classes of [G(M,r)] *)
  b_classes : int;       (** distinct view classes output by [B(M,r)] *)
  g_covered_by_b : int;  (** how many G-classes occur in B *)
  b_covered_by_g : int;
}

val p3 : ?quick:bool -> unit -> p3_row list
(** For machines halting inside the generator's window, [B(N,r)] must
    equal the view set of [G(N,r)] — measured here in both
    directions. *)

(** {1 D — the fuel diagonalisation (why no Id-oblivious candidate works)} *)

type diagonal_row = {
  fuel : int;              (** the candidate's simulation budget *)
  fooling_machine : string;
  fooled : bool;
      (** the candidate accepts the no-instance [G(M,r)] of a machine
          halting with output 1 just beyond its fuel *)
  honest_on_fast : bool;
      (** ... while being correct on machines within its fuel *)
}

val fuel_diagonal : ?quick:bool -> unit -> diagonal_row list

(** {1 K — the constructive side (Section 1.3 context)} *)

type construction_row = {
  task : string;
  n : int;
  ok : bool;
  rounds : int;
  messages : int;
}

val construction : ?quick:bool -> ?seed:int -> unit -> construction_row list
(** Identifiers/coins as symmetry breakers: Cole-Vishkin iteration
    counts stay log*-flat as n grows, Luby's MIS terminates in few
    rounds, and the gossip engine's message count is metered. *)

(** {1 OI — order-invariant algorithms (the Section 1.3 middle model)} *)

type oi_row = { check : string; ok : bool }

val order_invariance : ?quick:bool -> ?seed:int -> unit -> oi_row list
(** Identifiers help the Section 2 decider only through magnitude:
    the decider is demonstrably not order-invariant, and its
    rank-normalised OI version wrongly accepts [T_r] — so the
    separation also splits OI from LD under (B). *)

(** {1 H — hereditariness (the Related-Work contrast)} *)

type hereditary_row = {
  property_name : string;
  instance : string;
  hereditary_looking : bool;
  expected_hereditary : bool;
}

val hereditary : ?quick:bool -> ?seed:int -> unit -> hereditary_row list
(** [LD* = LD] was known for hereditary languages; the witness
    properties of both separations are demonstrably non-hereditary,
    and the stock hereditary property shows the test's other side. *)

(** {1 W2 / W3 — the warm-up promise problems} *)

type warmup_row = {
  problem : string;
  setting : string;
  check : string;
  ok : bool;
}

val warmups : ?quick:bool -> ?seed:int -> unit -> warmup_row list

(** {1 FT — fault injection (robustness of the deciders)}

    How do the paper's deciders degrade when the LOCAL model itself
    misbehaves? Each row replays a decider under a seeded
    {!Locald_local.Faults.plan} — message drops, duplicate deliveries,
    crash-stop failures, decide-fuel budgets, bounded re-gossip — and
    tallies decisive-correct / decisive-wrong / degraded runs. Subjects:
    the Section 2 tree decider on the Figure 1 instances and the
    Corollary 1 randomised decider on small [G(M,1)] instances. *)

type fault_row = {
  f_scenario : string;                   (** decider under test *)
  f_plan : Faults.plan;                  (** the injected faults *)
  f_eval : Locald_decision.Decider.fault_evaluation;
}

val faults :
  ?quick:bool ->
  ?seed:int ->
  ?drop:float ->
  ?crashes:int ->
  ?fuel:int ->
  ?retries:int ->
  ?runs:int ->
  unit ->
  fault_row list
(** With no overrides, sweeps a default grid of drop rates and retry
    budgets plus crash and fuel axes; [drop]/[crashes]/[fuel]/[retries]
    pin the respective axis to a single CLI-chosen value. *)
