(** The registry of shardable exhaustive workloads.

    A sweep workload is an exhaustive evaluation whose search space is
    addressed by lexicographic assignment rank
    ({!Locald_local.Ids.injection_at}), so it can be partitioned by
    {!Locald_runtime.Shard} across OS processes and merged exactly.
    The registry names the workloads the [locald shard] / [merge] /
    [sweep] subcommands (and the CI kill-resume smoke test) operate
    on; ["exhaustive-decider"] is the same instance, decider and
    expectation as the BENCH_quick.json workload of that name, so a
    merged sweep digest is directly comparable against the committed
    bench pin. *)

type geometry = {
  g_n : int;      (** nodes of the instance *)
  g_bound : int;  (** ids are drawn from [0 .. g_bound - 1] *)
  g_total : int;  (** injective assignments = perm (g_bound, g_n) *)
}

type workload = {
  w_name : string;
  w_description : string;
  w_expected : bool;  (** is the instance in the property? *)
  w_chunk : int;      (** default checkpoint chunk size, in ranks *)
  w_geometry : unit -> geometry;
  w_eval :
    ?backend:Locald_local.Backend.t ->
    ?memo:Locald_runtime.Memo.mode ->
    ?memo_capacity:int ->
    unit ->
    lo:int -> hi:int -> Locald_runtime.Shard.chunk_result;
      (** [w_eval ()] builds the instance, prepared views and
          decide-once memo once; the returned closure evaluates rank
          ranges against them. Single-process state: build one per
          shard process (or one per serve-daemon engine, shared across
          requests — the memo table is the cross-request cache, so
          long-lived holders should pass [memo_capacity]).

          The optional config is {e per-request}: it overrides first
          the workload's construction-time backend and then the
          ambient session defaults, without reading or mutating the
          process-global [Backend.default] / [Memo.default_mode] when
          given. Workloads without a backend/memo axis (the
          seed-ranked curve, the certify sweep) accept and ignore it;
          every configuration is digest-transparent. *)
  w_unsharded :
    ?backend:Locald_local.Backend.t ->
    ?memo:Locald_runtime.Memo.mode ->
    unit ->
    Locald_decision.Decider.evaluation;
      (** The reference unsharded run ([evaluate_exhaustive], quotient
          and all) the merged result must reproduce, under the same
          per-request configuration rules as [w_eval]. *)
}

val all : workload list

val names : string list

val find : string -> workload option

val default_name : string
(** ["exhaustive-decider"]. *)

val digest : Locald_decision.Decider.evaluation -> string
(** The pinned digest of an evaluation:
    {!Locald_runtime.Shard.result_digest} over its counts — equal to
    the bench's [digest_of (correct, wrong, assignments)]. *)
