(* Shardable exhaustive workloads: name -> (instance, decider,
   expectation, rank geometry), bridging the decision layer's
   range-restricted evaluator to the runtime's shard/checkpoint
   machinery.

   The contract a workload must honour: its rank space is the
   lexicographic injection order, its eval is a pure function of the
   rank range (so chunks recompute identically on retry/resume), and
   tiling [0, total) over eval reproduces exactly the unsharded
   [evaluate_exhaustive] counts and first-failure rank. *)

open Locald_graph
open Locald_local
open Locald_runtime
open Locald_decision

type geometry = { g_n : int; g_bound : int; g_total : int }

type workload = {
  w_name : string;
  w_description : string;
  w_expected : bool;
  w_chunk : int;
  w_geometry : unit -> geometry;
  w_eval :
    ?backend:Backend.t ->
    ?memo:Memo.mode ->
    ?memo_capacity:int ->
    unit ->
    lo:int -> hi:int -> Shard.chunk_result;
  w_unsharded :
    ?backend:Backend.t -> ?memo:Memo.mode -> unit -> Decider.evaluation;
}

let regime = Ids.f_linear_plus 1

(* A tree-instance workload: [p_decider params] quantified over every
   injective assignment of the instance's nodes into [0 .. n-1]. The
   instance is built lazily (the registry itself must stay cheap to
   construct) and shared between geometry, eval and the reference
   run. *)
let tree_workload ?backend ~name ~description ~arity ~r ~apex ~expected ~chunk
    () =
  let params = { Tree_instances.regime; arity; r } in
  let lg = lazy (Tree_instances.small_instance params ~apex) in
  let alg = Tree_deciders.p_decider params in
  let geometry () =
    let lg = Lazy.force lg in
    let n = Labelled.order lg in
    { g_n = n; g_bound = n; g_total = Orbit.perm ~bound:n ~k:n }
  in
  (* Per-request configuration: an explicit [?backend] / [?memo]
     overrides the workload's construction-time backend and then the
     ambient session defaults — the serve daemon always passes them, so
     its requests never read (let alone mutate) the process-global
     defaults. The CLI paths pass nothing and behave as before. *)
  let eval ?backend:req_backend ?memo ?memo_capacity () =
    let lg = Lazy.force lg in
    let n = Labelled.order lg in
    let backend =
      match req_backend with Some _ -> req_backend | None -> backend
    in
    let memo =
      match memo with Some m -> m | None -> Memo.default_mode ()
    in
    let prep = Runner.prepare ~memo ?memo_capacity ?backend alg lg in
    fun ~lo ~hi ->
      let rv =
        Decider.evaluate_exhaustive_range ~prep ~bound:n ~lo ~hi alg ~expected
          lg
      in
      {
        Shard.r_correct = rv.Decider.rv_correct;
        r_wrong = rv.Decider.rv_wrong;
        r_fail = Option.map (fun (rank, _, _) -> rank) rv.Decider.rv_failure;
      }
  in
  let unsharded ?backend:req_backend ?memo () =
    let lg = Lazy.force lg in
    let n = Labelled.order lg in
    let backend =
      match req_backend with Some _ -> req_backend | None -> backend
    in
    Decider.evaluate_exhaustive ?backend ?memo ~bound:n alg ~expected
      ~instance:name lg
  in
  {
    w_name = name;
    w_description = description;
    w_expected = expected;
    w_chunk = chunk;
    w_geometry = geometry;
    w_eval = eval;
    w_unsharded = unsharded;
  }

(* A Monte-Carlo curve workload: ranks are coin seeds, not id
   assignments. Rank [k] runs the Corollary 1 randomised decider with
   the seeded stream [Random.State.make [| k |]] on a fixed instance;
   correct means the verdict matched the instance's membership. On a
   no-instance the wrong count over [0 .. total) is the decider's
   (deterministic) empirical one-sided error, and the first
   wrongly-accepting seed is the workload's first-failure rank — so
   merge/resume consistency is exercised on a workload whose failures
   are real, not seeded corruption. *)
(* Same fragment cap as the bench's G(M,1) instance: keeps the
   construction a few hundred nodes, so the reference unsharded runs
   the digest-pin tests perform stay fast. *)
let gmr_config = { (Gmr.default_config ~r:1) with Gmr.fragment_cap = 100 }

let corollary1_workload ~name ~description ~machine ~expected ~total ~chunk ()
    =
  let built =
    lazy
      (match Gmr.build ~config:gmr_config ~r:1 machine with
      | Ok t -> t
      | Error _ ->
          invalid_arg ("sweeps: unbuildable G(M,1) for workload " ^ name))
  in
  let geometry () =
    let t = Lazy.force built in
    (* The "bound" of a seed-ranked workload is its seed space. *)
    { g_n = Gmr.order t; g_bound = total; g_total = total }
  in
  let verdict_at fast k =
    Verdict.accepts (Gmr_deciders.Fast.corollary1 fast (Random.State.make [| k |]))
  in
  (* Seed-ranked: there is no backend or memo axis (the randomised
     decider neither extracts runner views nor memoises), so the
     per-request configuration is accepted and inert — the same
     workload name answers identically whatever config a serve request
     attaches. *)
  let eval ?backend:_ ?memo:_ ?memo_capacity:_ () =
    let t = Lazy.force built in
    let fast = Gmr_deciders.Fast.prepare t.Gmr.lg in
    fun ~lo ~hi ->
      let correct = ref 0 and wrong = ref 0 and fail = ref None in
      for k = lo to hi - 1 do
        if verdict_at fast k = expected then incr correct
        else begin
          incr wrong;
          if !fail = None then fail := Some k
        end
      done;
      { Shard.r_correct = !correct; r_wrong = !wrong; r_fail = !fail }
  in
  let unsharded ?backend:_ ?memo:_ () =
    let t = Lazy.force built in
    let fast = Gmr_deciders.Fast.prepare t.Gmr.lg in
    let correct = ref 0 and wrong = ref 0 in
    for k = 0 to total - 1 do
      if verdict_at fast k = expected then incr correct else incr wrong
    done;
    {
      Decider.instance = name;
      n = Gmr.order t;
      expected;
      assignments = total;
      correct = !correct;
      wrong = !wrong;
      failure = None;
    }
  in
  {
    w_name = name;
    w_description = description;
    w_expected = expected;
    w_chunk = chunk;
    w_geometry = geometry;
    w_eval = eval;
    w_unsharded = unsharded;
  }

(* A provenance-certification sweep: ranks are the nodes of a
   yes-instance G(M,1), and rank [v] traces the Theorem 2 LD decider
   on node [v]'s view under the access monitor (sequential assignment
   [0 .. n-1], as in {!Locald_analysis.certify}). Correct means the
   node accepted {e and} the trace witnessed an input-identifier read
   — the decider's declared Id-dependence, certified node by node. *)
let certify_gmr_workload ~name ~description ~machine ~chunk () =
  let built =
    lazy
      (match Gmr.build ~config:gmr_config ~r:1 machine with
      | Ok t -> t
      | Error _ ->
          invalid_arg ("sweeps: unbuildable G(M,1) for workload " ^ name))
  in
  let geometry () =
    let t = Lazy.force built in
    let n = Gmr.order t in
    { g_n = n; g_bound = n; g_total = n }
  in
  let node_ok lg ids ~radius decide v =
    let view = View.extract ~ids lg ~center:v ~radius in
    let input = match View.ids view with Some a -> a | None -> [||] in
    let out, tr =
      Locald_analysis.Trace.run ~input_ids:(fun a -> a == input) decide view
    in
    out && Locald_analysis.Trace.reads_input_ids tr
  in
  (* Node-ranked provenance traces under the access monitor: direct
     [View.extract], no backend or memo axis — per-request
     configuration is accepted and inert, as for the curve workload. *)
  let eval ?backend:_ ?memo:_ ?memo_capacity:_ () =
    let t = Lazy.force built in
    let lg = t.Gmr.lg in
    let n = Gmr.order t in
    let ids = Array.init n (fun i -> i) in
    let alg = Gmr_deciders.ld_decider () in
    fun ~lo ~hi ->
      let correct = ref 0 and wrong = ref 0 and fail = ref None in
      for v = lo to hi - 1 do
        if node_ok lg ids ~radius:alg.Algorithm.radius alg.Algorithm.decide v
        then incr correct
        else begin
          incr wrong;
          if !fail = None then fail := Some v
        end
      done;
      { Shard.r_correct = !correct; r_wrong = !wrong; r_fail = !fail }
  in
  let unsharded ?backend:_ ?memo:_ () =
    let t = Lazy.force built in
    let lg = t.Gmr.lg in
    let n = Gmr.order t in
    let ids = Array.init n (fun i -> i) in
    let alg = Gmr_deciders.ld_decider () in
    let correct = ref 0 and wrong = ref 0 in
    for v = 0 to n - 1 do
      if node_ok lg ids ~radius:alg.Algorithm.radius alg.Algorithm.decide v
      then incr correct
      else incr wrong
    done;
    {
      Decider.instance = name;
      n;
      expected = true;
      assignments = n;
      correct = !correct;
      wrong = !wrong;
      failure = None;
    }
  in
  {
    w_name = name;
    w_description = description;
    w_expected = true;
    w_chunk = chunk;
    w_geometry = geometry;
    w_eval = eval;
    w_unsharded = unsharded;
  }

let all =
  [
    (* The bench workload of the same name: H+ (arity 2, r = 2, apex
       (0,1)) under the P decider, expected accepted — 8 nodes,
       40320 assignments. Its merged digest pins against
       BENCH_quick.json's exhaustive-decider entry. *)
    tree_workload ~name:"exhaustive-decider"
      ~description:
        "P decider over every assignment of H+ (arity 2, r = 2) — the \
         BENCH_quick workload"
      ~arity:2 ~r:2 ~apex:(0, 1) ~expected:true ~chunk:512 ();
    (* A second size for quick sharded smoke runs: the linear (arity
       1) cone, small enough that every shard finishes in
       milliseconds. *)
    tree_workload ~name:"exhaustive-decider-a1"
      ~description:
        "P decider over every assignment of the arity-1, r = 4 cone"
      ~arity:1 ~r:4 ~apex:(0, 1) ~expected:true ~chunk:64 ();
    (* The same instance and rank space as exhaustive-decider, but the
       views come from the asynchronous message-passing backend — the
       merged digest must still equal the committed BENCH_quick pin
       (the backends are byte-identical), which the sweep smoke in CI
       asserts. *)
    tree_workload ~backend:(Backend.Async Async_runner.default_config)
      ~name:"async-exhaustive"
      ~description:
        "exhaustive-decider with views assembled by the async \
         message-passing backend — pinned to the same digest"
      ~arity:2 ~r:2 ~apex:(0, 1) ~expected:true ~chunk:512 ();
    (* ROADMAP item 4 remainder: sweeps beyond exhaustive-decider. The
       Corollary 1 curve shards the seed space of the randomised
       decider on a no-instance (wrong = its one-sided error); the
       certify sweep shards per-node provenance certification of the
       Theorem 2 decider on a yes-instance. Both digests are pinned in
       test_shard.ml. *)
    corollary1_workload ~name:"corollary1-curve"
      ~description:
        "Corollary 1 randomised decider over 2048 seeded coin streams \
         on the no-instance G(two-faced real 1 fake 0, 1) — ranks are \
         seeds; wrong counts the one-sided error"
      ~machine:(Locald_turing.Zoo.two_faced ~steps:2 ~real:1 ~fake:0)
      ~expected:false ~total:2048 ~chunk:128 ();
    certify_gmr_workload ~name:"certify-gmr"
      ~description:
        "Theorem 2 LD decider traced per node of the yes-instance \
         G(two-faced real 0 fake 1, 1) — correct = accepted and \
         witnessed an input-identifier read"
      ~machine:(Locald_turing.Zoo.two_faced ~steps:2 ~real:0 ~fake:1)
      ~chunk:64 ();
  ]

let names = List.map (fun w -> w.w_name) all

let find name = List.find_opt (fun w -> w.w_name = name) all

let default_name = "exhaustive-decider"

let digest (e : Decider.evaluation) =
  Shard.result_digest ~correct:e.Decider.correct ~wrong:e.Decider.wrong
    ~assignments:e.Decider.assignments
