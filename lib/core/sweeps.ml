(* Shardable exhaustive workloads: name -> (instance, decider,
   expectation, rank geometry), bridging the decision layer's
   range-restricted evaluator to the runtime's shard/checkpoint
   machinery.

   The contract a workload must honour: its rank space is the
   lexicographic injection order, its eval is a pure function of the
   rank range (so chunks recompute identically on retry/resume), and
   tiling [0, total) over eval reproduces exactly the unsharded
   [evaluate_exhaustive] counts and first-failure rank. *)

open Locald_graph
open Locald_local
open Locald_runtime
open Locald_decision

type geometry = { g_n : int; g_bound : int; g_total : int }

type workload = {
  w_name : string;
  w_description : string;
  w_expected : bool;
  w_chunk : int;
  w_geometry : unit -> geometry;
  w_eval : unit -> lo:int -> hi:int -> Shard.chunk_result;
  w_unsharded : unit -> Decider.evaluation;
}

let regime = Ids.f_linear_plus 1

(* A tree-instance workload: [p_decider params] quantified over every
   injective assignment of the instance's nodes into [0 .. n-1]. The
   instance is built lazily (the registry itself must stay cheap to
   construct) and shared between geometry, eval and the reference
   run. *)
let tree_workload ?backend ~name ~description ~arity ~r ~apex ~expected ~chunk
    () =
  let params = { Tree_instances.regime; arity; r } in
  let lg = lazy (Tree_instances.small_instance params ~apex) in
  let alg = Tree_deciders.p_decider params in
  let geometry () =
    let lg = Lazy.force lg in
    let n = Labelled.order lg in
    { g_n = n; g_bound = n; g_total = Orbit.perm ~bound:n ~k:n }
  in
  let eval () =
    let lg = Lazy.force lg in
    let n = Labelled.order lg in
    let prep = Runner.prepare ~memo:(Memo.default_mode ()) ?backend alg lg in
    fun ~lo ~hi ->
      let rv =
        Decider.evaluate_exhaustive_range ~prep ~bound:n ~lo ~hi alg ~expected
          lg
      in
      {
        Shard.r_correct = rv.Decider.rv_correct;
        r_wrong = rv.Decider.rv_wrong;
        r_fail = Option.map (fun (rank, _, _) -> rank) rv.Decider.rv_failure;
      }
  in
  let unsharded () =
    let lg = Lazy.force lg in
    let n = Labelled.order lg in
    Decider.evaluate_exhaustive ?backend ~bound:n alg ~expected ~instance:name
      lg
  in
  {
    w_name = name;
    w_description = description;
    w_expected = expected;
    w_chunk = chunk;
    w_geometry = geometry;
    w_eval = eval;
    w_unsharded = unsharded;
  }

let all =
  [
    (* The bench workload of the same name: H+ (arity 2, r = 2, apex
       (0,1)) under the P decider, expected accepted — 8 nodes,
       40320 assignments. Its merged digest pins against
       BENCH_quick.json's exhaustive-decider entry. *)
    tree_workload ~name:"exhaustive-decider"
      ~description:
        "P decider over every assignment of H+ (arity 2, r = 2) — the \
         BENCH_quick workload"
      ~arity:2 ~r:2 ~apex:(0, 1) ~expected:true ~chunk:512 ();
    (* A second size for quick sharded smoke runs: the linear (arity
       1) cone, small enough that every shard finishes in
       milliseconds. *)
    tree_workload ~name:"exhaustive-decider-a1"
      ~description:
        "P decider over every assignment of the arity-1, r = 4 cone"
      ~arity:1 ~r:4 ~apex:(0, 1) ~expected:true ~chunk:64 ();
    (* The same instance and rank space as exhaustive-decider, but the
       views come from the asynchronous message-passing backend — the
       merged digest must still equal the committed BENCH_quick pin
       (the backends are byte-identical), which the sweep smoke in CI
       asserts. *)
    tree_workload ~backend:(Backend.Async Async_runner.default_config)
      ~name:"async-exhaustive"
      ~description:
        "exhaustive-decider with views assembled by the async \
         message-passing backend — pinned to the same digest"
      ~arity:2 ~r:2 ~apex:(0, 1) ~expected:true ~chunk:512 ();
  ]

let names = List.map (fun w -> w.w_name) all

let find name = List.find_opt (fun w -> w.w_name = name) all

let default_name = "exhaustive-decider"

let digest (e : Decider.evaluation) =
  Shard.result_digest ~correct:e.Decider.correct ~wrong:e.Decider.wrong
    ~assignments:e.Decider.assignments
