open Locald_graph
open Locald_local
open Locald_decision
open Locald_runtime
module Lt = Layered_tree
module Ti = Tree_instances

let rec power base e = if e = 0 then 1 else base * power base (e - 1)

(* The label of a view node, as the layered-tree inspector wants it. *)
let tree_label_of (view : Ti.label View.t) v =
  match view.View.labels.(v) with
  | Ti.Tree l -> Some l
  | Ti.Pivot _ -> None

let pivot_rule (p : Ti.params) (view : Ti.label View.t) r =
  r = p.Ti.r
  &&
  let d = Bound.big_r ~regime:p.Ti.regime ~arity:p.Ti.arity ~r in
  let nbrs = Graph.neighbours view.View.graph view.View.center in
  let coords =
    Array.to_list nbrs
    |> List.map (fun u ->
           match view.View.labels.(u) with
           | Ti.Tree l when l.Lt.r = r -> Some l
           | Ti.Tree _ | Ti.Pivot _ -> None)
  in
  List.for_all Option.is_some coords
  &&
  let coords = List.filter_map Fun.id coords |> List.sort compare in
  match coords with
  | [] -> false
  | first :: _ ->
      (* Try every cone level the first border node could sit on. *)
      let candidates =
        List.filter_map
          (fun k ->
            let y0 = first.Lt.y - k in
            if y0 < 0 || y0 + r > d then None
            else Some (first.Lt.x / power p.Ti.arity k, y0))
          (List.init (r + 1) Fun.id)
      in
      List.exists
        (fun apex -> Ti.border_coords { p with Ti.r } ~apex = coords)
        candidates

let tree_rule (p : Ti.params) (view : Ti.label View.t) (l : Lt.label) =
  l.Lt.r = p.Ti.r
  &&
  let d = Bound.big_r ~regime:p.Ti.regime ~arity:p.Ti.arity ~r:l.Lt.r in
  match
    Lt.inspect ~arity:p.Ti.arity ~depth:d ~label_of:(tree_label_of view)
      view.View.graph view.View.center
  with
  | None -> false
  | Some c -> (
      c.Lt.label_ok
      && c.Lt.unexpected_tree = []
      &&
      match c.Lt.foreign with
      | [] -> c.Lt.missing = []
      | [ pv ] -> (
          (* A border node: adjacent to exactly one pivot (same r). *)
          c.Lt.missing <> []
          &&
          match view.View.labels.(pv) with
          | Ti.Pivot r' -> r' = l.Lt.r
          | Ti.Tree _ -> false)
      | _ :: _ :: _ -> false)

let pprime_verifier p =
  Algorithm.make_oblivious ~name:"P'-verifier" ~radius:1 (fun view ->
      match View.center_label view with
      | Ti.Pivot r -> pivot_rule p view r
      | Ti.Tree l -> tree_rule p view l)

let p_decider p =
  let structure = pprime_verifier p in
  Algorithm.make ~name:"P-decider" ~radius:1 (fun view ->
      let r =
        match View.center_label view with Ti.Pivot r -> r | Ti.Tree l -> l.Lt.r
      in
      let rr = Bound.big_r ~regime:p.Ti.regime ~arity:p.Ti.arity ~r in
      structure.Algorithm.ob_decide (View.strip_ids view) && View.center_id view < rr)

type coverage = {
  t : int;
  total_views : int;
  covered : int;
  uncovered_node : int option;
}

let coverage p ~t =
  let tr = Ti.big_tree p in
  let d = Ti.depth p in
  let arity = p.Ti.arity in
  let n = Labelled.order tr in
  let canon = Canon.create ~equal:( = ) () in
  (* Extract and canonically key every view of T_r in parallel, then
     deduplicate sequentially in ascending node order — the class
     representatives (and hence the uncovered witness) are the same at
     any job count. The canonical fingerprint equals the historical
     [Iso.view_signature] bucketing, and within a bucket [equivalent]
     decides exactly what the backtracking iso test decided. *)
  let keyed =
    Pool.map
      (fun v -> (View.extract tr ~center:v ~radius:t, v))
      (Pool.init_in_order n Fun.id)
  in
  let keys = Pool.map (fun (view, _) -> Canon.key canon view) keyed in
  let classes : (int, (Ti.label Canon.key * int) list ref) Hashtbl.t =
    Hashtbl.create 256
  in
  Array.iteri
    (fun i (_, v) ->
      let key = keys.(i) in
      let s = Canon.fingerprint key in
      let bucket =
        match Hashtbl.find_opt classes s with
        | Some b -> b
        | None ->
            let b = ref [] in
            Hashtbl.replace classes s b;
            b
      in
      if not (List.exists (fun (k, _) -> Canon.equivalent canon key k) !bucket)
      then bucket := (key, v) :: !bucket)
    keyed;
  let representatives = Hashtbl.fold (fun _ b acc -> !b @ acc) classes [] in
  (* Decide-once cache of the small instances and the big-index ->
     cone-index maps, shared across the parallel coverage checks below.
     Each representative retries up to [r + 1] cone levels and distinct
     representatives overlap heavily in the apexes they propose, so the
     lookups repeat — a {!Memo} table both dedupes the construction and
     reports the reuse into the run-scoped memo tallies (the bench
     hits / orbit-class columns). Construction is idempotent, so a
     racing duplicate compute is benign (first store wins). *)
  let cache =
    Memo.create ~hash:Memo.structural_hash ~equal:Memo.structural_equal ()
  in
  let small_at apex =
    Memo.find_or_compute cache apex (fun () ->
        let inst = Ti.small_instance p ~apex in
        let members = Lt.cone ~arity ~apex ~r:p.Ti.r in
        let local = Hashtbl.create (2 * Array.length members) in
        (* [Labelled.induced] sorts members, so sorted order is the
           cone-local index order. *)
        let sorted = Array.copy members in
        Array.sort (fun (a : int) b -> compare a b) sorted;
        Array.iteri (fun i v -> Hashtbl.replace local v i) sorted;
        (inst, local))
  in
  let coord_of v =
    let rec find_level y =
      if Lt.level_offset ~arity (y + 1) > v then y else find_level (y + 1)
    in
    let y = find_level 0 in
    (v - Lt.level_offset ~arity y, y)
  in
  let node_covered (key, v) =
    let x, y = coord_of v in
    List.exists
      (fun k ->
        let y0 = y - k in
        y0 >= 0
        && y0 + p.Ti.r <= d
        &&
        let apex = (x / power arity k, y0) in
        let inst, local = small_at apex in
        match Hashtbl.find_opt local v with
        | None -> false
        | Some i ->
            let candidate = View.extract inst ~center:i ~radius:t in
            Canon.equivalent canon key (Canon.key canon candidate))
      (List.init (p.Ti.r + 1) Fun.id)
  in
  let flags = Pool.map node_covered (Array.of_list representatives) in
  let reps = Array.of_list representatives in
  let covered = ref 0 and uncovered = ref None in
  Array.iteri
    (fun i ok ->
      if ok then incr covered
      else if !uncovered = None then uncovered := Some (snd reps.(i)))
    flags;
  {
    t;
    total_views = Array.length reps;
    covered = !covered;
    uncovered_node = !uncovered;
  }

type budget_failure =
  | Rejects_small of (int * int)
  | Accepts_large
  | No_failure_found

let budgeted_a_star p ~budget ~trials =
  let alg = p_decider p in
  let simulated =
    Simulation.a_star
      ~budget:(Simulation.Sampled { bound = budget; trials; seed = 0x5eed })
      alg
  in
  (* Scan a bounded sample of apexes — one wrongly rejected small
     instance is all the experiment needs, and the apex count is
     exponential in R(r). *)
  let apexes = Ti.apexes p in
  let stride = max 1 (List.length apexes / 64) in
  let sampled = List.filteri (fun i _ -> i mod stride = 0) apexes in
  (* All sampled apexes are decided in parallel but the witness is the
     first rejection in sample order, as the sequential scan found. *)
  let rejected =
    Pool.map
      (fun apex ->
        Verdict.rejects
          (Decider.decide_oblivious simulated (Ti.small_instance p ~apex)))
      (Array.of_list sampled)
  in
  let sampled = Array.of_list sampled in
  let wrongly_rejected_small =
    let rec first i =
      if i >= Array.length rejected then None
      else if rejected.(i) then Some sampled.(i)
      else first (i + 1)
    in
    first 0
  in
  match wrongly_rejected_small with
  | Some apex -> Rejects_small apex
  | None ->
      if Verdict.accepts (Decider.decide_oblivious simulated (Ti.big_tree p)) then
        Accepts_large
      else No_failure_found
