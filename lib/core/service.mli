(** Request semantics of the locald decision service.

    Interprets {!Locald_runtime.Proto} requests against the
    {!Sweeps} workload registry (decide), the {!Certify} registry
    (certify) and the telemetry surface (metrics), producing the
    {!Locald_runtime.Serve.handlers} the daemon's loop runs.

    {b Engine cache.} Each distinct (workload, backend config, memo
    mode) builds one {e engine} — the workload's [w_eval] closure:
    prepared views plus a decide-once memo table bounded by
    [memo_capacity]. Engines persist across requests in an LRU cache
    of at most [max_engines], so repeated workloads hit warm memo
    tables (the [memo.hits] counter visibly grows across requests —
    the point of the daemon). Both eviction levels are
    digest-transparent.

    {b Per-request config, never ambient.} The daemon's defaults are
    captured once at {!create}; a request's [backend] / [sched_seed] /
    [fifo] / [memo] / [jobs] override them for that request only, by
    explicit threading. This module never touches
    [Backend.set_default] or [Memo.set_default_mode]. Unknown backend
    or memo names, and out-of-range ranks or job counts, are rejected
    with an error response — never coerced.

    {b Determinism.} Decide results carry counts and the
    {!Locald_runtime.Shard.result_digest} only — no wall times, no
    cache stats — so a full-range response is byte-comparable against
    the committed BENCH pins and against any one-shot CLI run of the
    same workload. *)

type t

val default_max_engines : int
(** 8. *)

val default_memo_capacity : int
(** 65536 entries per engine. *)

val create : ?max_engines:int -> ?memo_capacity:int -> unit -> t
(** Capture the session defaults (backend, memo mode, pool width) and
    start with an empty engine cache. *)

val env_problems : unit -> string list
(** The union of {!Locald_local.Backend.env_problems} and
    {!Locald_runtime.Memo.env_problems} — what [locald serve] refuses
    to start on (a silently coerced config would corrupt pinned
    digests). *)

val handlers : t -> Locald_runtime.Serve.handlers
(** The dispatcher: decide / certify / metrics / ping answer with
    [ok] responses, shutdown answers and begins the drain, unknown or
    ill-typed requests answer with error responses. Handler exceptions
    are caught and returned as error responses — a request can fail,
    the daemon cannot. *)
