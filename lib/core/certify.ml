open Locald_graph
open Locald_turing
open Locald_local
open Locald_decision
open Locald_analysis

type claim = Claims_oblivious | Claims_id_dependent

type subject =
  | Subject : {
      s_cell : string;
      s_claim : claim;
      s_alg : ('a, bool) Algorithm.t;
      s_instances : (string * 'a Labelled.t) list;
      s_confirm : Analysis.confirm_method option;
      s_confirm_on : (string * 'a Labelled.t) option;
    }
      -> subject

type row = {
  c_name : string;
  c_radius : int;
  c_cell : string;
  c_claim : claim;
  c_report : Analysis.report;
  c_ok : bool;
}

let claim_name = function
  | Claims_oblivious -> "oblivious"
  | Claims_id_dependent -> "id-dependent"

(* ------------------------------------------------------------------ *)
(* Confirm instances                                                   *)
(*                                                                     *)
(* [Oblivious.find_variance_exhaustive] enumerates injective           *)
(* assignments lexicographically with the LAST node varying fastest    *)
(* and compares everything against the first (the identity-like)       *)
(* assignment. The instances below are arranged so that the node whose *)
(* output flips sits at the last position and the flip threshold lies  *)
(* in the fast-varying value range — variance then surfaces within the *)
(* first handful of assignments instead of deep inside a factorial     *)
(* search space.                                                       *)
(* ------------------------------------------------------------------ *)

(* The radius-[radius] ball around [center], as a standalone instance,
   renumbered so the ball's centre is the LAST node. Distances within
   the ball do not exceed [radius], so the centre's view in the ball
   instance equals its view in [lg] (up to renumbering) — a
   structure-passing centre stays structure-passing. *)
let ball_instance lg ~center ~radius =
  let ball = Graph.ball (Labelled.graph lg) center radius in
  let sub, back = Labelled.induced lg ball in
  let c = ref (-1) in
  Array.iteri (fun i v -> if v = center then c := i) back;
  assert (!c >= 0);
  let n = Labelled.order sub in
  let perm = Array.make n 0 in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if v <> !c then begin
      perm.(v) <- !next;
      incr next
    end
  done;
  perm.(!c) <- n - 1;
  Labelled.relabel_nodes sub perm

(* The LD-decider confirm instance: the ball of a structure-passing
   node of [G(M, 1)] for a two-faced machine halting with output 1.
   The centre's output is [not (fuel > steps)] with [fuel = Id v], so
   it flips when its identifier crosses the machine's halting step
   count [s]. With the centre last, the first assignment gives it the
   ball's largest identifier [n-1]; searching with [bound = s + 2]
   then reaches the flipping value [s + 1] at the last position after
   only [s - n + 3] assignments. Tuning [s >= n - 1] keeps that a
   handful; the loop below adjusts the machine until it is. *)
let ld_confirm_instance () =
  let rec search param tries =
    if tries = 0 then
      failwith "Certify: could not tune the LD-decider confirm instance"
    else
      let machine = Zoo.two_faced ~steps:param ~real:1 ~fake:0 in
      let config =
        { (Gmr.default_config ~r:1) with Gmr.fragment_cap = 24 }
      in
      match Gmr.build ~config ~r:1 machine with
      | Error _ ->
          failwith "Certify: the confirm machine did not halt in the fuel"
      | Ok t ->
          let lg = t.Gmr.lg in
          let s = t.Gmr.steps in
          let structure = Gmr_check.structure_array lg in
          let best = ref None in
          Array.iteri
            (fun v ok ->
              if ok then begin
                let size = Array.length (Graph.ball (Labelled.graph lg) v 2) in
                match !best with
                | Some (_, b) when b <= size -> ()
                | Some _ | None -> best := Some (v, size)
              end)
            structure;
          (match !best with
          | None -> failwith "Certify: no structure-passing node in G(M,1)"
          | Some (center, n_ball) ->
              if s >= n_ball - 1 then
                (ball_instance lg ~center ~radius:2, s)
              else search (param + (n_ball - 1 - s)) (tries - 1))
  in
  search 6 5

(* ------------------------------------------------------------------ *)
(* The registry                                                        *)
(* ------------------------------------------------------------------ *)

let tree_params =
  { Tree_instances.regime = Ids.f_linear_plus 1; arity = 1; r = 2 }

let a_star_budget = Simulation.Exhaustive 5

(* Certify the simulation WITHOUT [of_oblivious]'s id strip: [A*]
   receives id-carrying views, and its certificate rests on provenance
   (every id it reads is one it reassigned itself), not on the ids
   having been hidden from it. *)
let unstripped (ob : ('a, bool) Algorithm.oblivious) =
  Algorithm.make ~name:ob.Algorithm.ob_name ~radius:ob.Algorithm.ob_radius
    ob.Algorithm.ob_decide

let tree_subjects () =
  let p = tree_params in
  let big = Tree_instances.big_tree p in
  let small =
    Tree_instances.small_instance p ~apex:(List.hd (Tree_instances.apexes p))
  in
  let n_big = Labelled.order big in
  let instances = [ ("H+", small); ("T_r", big) ] in
  [
    Subject
      {
        s_cell = "(B, C)";
        s_claim = Claims_oblivious;
        s_alg = Algorithm.of_oblivious (Tree_deciders.pprime_verifier p);
        s_instances = instances;
        s_confirm = None;
        s_confirm_on = None;
      };
    (* [P-decider] accepts iff the structure rules pass AND the centre's
       identifier is below R(r). On [T_r] every node passes the
       structure rules, so the threshold test runs everywhere: the very
       first view yields the id-read witness, and swapping the last two
       identifiers of the sequential assignment already flips the
       largest-id node's output — variance at the second assignment. *)
    Subject
      {
        s_cell = "(B, C)";
        s_claim = Claims_id_dependent;
        s_alg = Tree_deciders.p_decider p;
        s_instances = [ ("T_r", big) ];
        s_confirm = Some (Analysis.Confirm_exhaustive n_big);
        s_confirm_on = None;
      };
    Subject
      {
        s_cell = "(B, C)";
        s_claim = Claims_oblivious;
        s_alg =
          unstripped
            (Simulation.a_star ~budget:a_star_budget (Tree_deciders.p_decider p));
        s_instances = instances;
        s_confirm = None;
        s_confirm_on = None;
      };
  ]

let gmr_subjects () =
  let machine = Zoo.two_faced ~steps:2 ~real:0 ~fake:1 in
  (* A reduced fragment collection keeps the instance a few hundred
     nodes: certification traces every node's view twice, and the full
     400-fragment default takes minutes where this takes seconds. The
     obfuscation property is preserved (fake-halt fragments are glued
     in regardless of the cap). *)
  let config = { (Gmr.default_config ~r:1) with Gmr.fragment_cap = 24 } in
  let t =
    match Gmr.build ~config ~r:1 machine with
    | Ok t -> t
    | Error _ -> failwith "Certify: the registry machine did not halt"
  in
  let instances = [ ("G(M,1)", t.Gmr.lg) ] in
  let confirm_lg, confirm_steps = ld_confirm_instance () in
  [
    Subject
      {
        s_cell = "(notB, C)";
        s_claim = Claims_oblivious;
        s_alg = Algorithm.of_oblivious (Gmr_deciders.structure_verifier ());
        s_instances = instances;
        s_confirm = None;
        s_confirm_on = None;
      };
    Subject
      {
        s_cell = "(notB, C)";
        s_claim = Claims_oblivious;
        s_alg = Algorithm.of_oblivious (Gmr_deciders.candidate_fuel ~fuel:4);
        s_instances = instances;
        s_confirm = None;
        s_confirm_on = None;
      };
    Subject
      {
        s_cell = "(notB, C)";
        s_claim = Claims_oblivious;
        s_alg = Algorithm.of_oblivious (Gmr_deciders.candidate_scan ());
        s_instances = instances;
        s_confirm = None;
        s_confirm_on = None;
      };
    Subject
      {
        s_cell = "(notB, C)";
        s_claim = Claims_id_dependent;
        s_alg = Gmr_deciders.ld_decider ();
        s_instances = instances;
        s_confirm = Some (Analysis.Confirm_exhaustive (confirm_steps + 2));
        s_confirm_on = Some ("ball(G(M',1))", confirm_lg);
      };
  ]

let nbnc_subjects () =
  (* The (notB, notC) witness pair from the experiments: a decider
     whose blame assignment genuinely depends on the identifiers, and
     its Id-oblivious simulation. The bad path's violated edge is
     (n-2, n-1), so the blame flips as soon as the last two identifiers
     swap — again variance at the second assignment. *)
  let n = 4 in
  let path ok =
    Labelled.make (Gen.path n)
      (Array.init n (fun v ->
           if ok || v < n - 1 then v mod 2 else (v + 1) mod 2))
  in
  let good = path true and bad = path false in
  let alg = Experiments.two_colouring_blaming_decider () in
  [
    Subject
      {
        s_cell = "(notB, notC)";
        s_claim = Claims_id_dependent;
        s_alg = alg;
        s_instances = [ ("2col-ok", good); ("2col-bad", bad) ];
        s_confirm = Some (Analysis.Confirm_exhaustive n);
        s_confirm_on = Some ("2col-bad", bad);
      };
    Subject
      {
        s_cell = "(notB, notC)";
        s_claim = Claims_oblivious;
        s_alg = unstripped (Simulation.a_star ~budget:a_star_budget alg);
        s_instances = [ ("2col-ok", good); ("2col-bad", bad) ];
        s_confirm = None;
        s_confirm_on = None;
      };
  ]

let subjects ?(quick = false) () =
  if quick then
    let trees = tree_subjects () and nbnc = nbnc_subjects () in
    [ List.hd trees; List.nth trees 1; List.nth nbnc 1 ]
  else tree_subjects () @ gmr_subjects () @ nbnc_subjects ()

let certify_subject ?pool ?plan
    (Subject { s_cell; s_claim; s_alg; s_instances; s_confirm; s_confirm_on }) =
  let report =
    Analysis.certify ?pool ?plan ?confirm:s_confirm ?confirm_on:s_confirm_on
      s_alg ~instances:s_instances
  in
  let ok =
    match s_claim with
    | Claims_oblivious -> Analysis.certified report
    | Claims_id_dependent ->
        Analysis.id_dependent report && Analysis.confirmed report <> Some false
  in
  {
    c_name = report.Analysis.rep_algorithm;
    c_radius = report.Analysis.rep_radius;
    c_cell = s_cell;
    c_claim = s_claim;
    c_report = report;
    c_ok = ok;
  }

let run ?quick ?pool () =
  List.map (certify_subject ?pool) (subjects ?quick ())

let all_ok rows = List.for_all (fun r -> r.c_ok) rows
