(* Plain-text rendering of the experiment records; shared by the
   [locald] CLI and the benchmark harness. *)

let print_rule () = print_endline (String.make 78 '-')

let print_table1 rows =
  print_rule ();
  print_endline "T1: Do unique node identifiers help in local decision?";
  print_endline "    (Section 1.1 results table, regenerated)";
  print_rule ();
  List.iter
    (fun (c : Experiments.cell_result) ->
      let all = List.for_all snd c.evidence in
      Printf.printf "%-14s %-12s %s\n" c.cell c.relation
        (if all then "DEMONSTRATED" else "FAILED");
      List.iter
        (fun (name, ok) ->
          Printf.printf "    [%s] %s\n" (if ok then "ok" else "FAIL") name)
        c.evidence)
    rows;
  print_rule ();
  Printf.printf "           |  (C)          (notC)\n";
  let rel cell =
    match List.find_opt (fun c -> c.Experiments.cell = cell) rows with
    | Some c when List.for_all snd c.Experiments.evidence ->
        c.Experiments.relation
    | Some _ -> "??"
    | None -> "--"
  in
  Printf.printf "      (B)  |  %-11s %-11s\n" (rel "(B, C)") (rel "(B, notC)");
  Printf.printf "   (notB)  |  %-11s %-11s\n" (rel "(notB, C)") (rel "(notB, notC)");
  print_rule ()

let print_fig1 rows =
  print_rule ();
  print_endline
    "F1: Figure 1 — layered trees T_r, small instances H_r, view coverage";
  print_rule ();
  Printf.printf "%5s %3s %3s %6s %10s %8s %12s %s\n" "arity" "r" "t" "R(r)"
    "|T_r|" "|H_r|" "coverage" "prediction";
  List.iter
    (fun (x : Experiments.fig1_row) ->
      Printf.printf "%5d %3d %3d %6d %10d %8d %6d/%-6d %s\n" x.arity x.r x.t
        x.depth x.tree_nodes x.small_instances x.covered x.total
        (if x.expected_full then
           if x.covered = x.total then "full (as predicted: r >= 2t)"
           else "EXPECTED FULL BUT NOT"
         else if x.covered < x.total then "gaps (as predicted: r < 2t)"
         else "UNEXPECTEDLY FULL"))
    rows;
  print_rule ()

let print_fig2 rows =
  print_rule ();
  print_endline "F2: Figure 2 — the construction G(M, r) (r = 1)";
  print_rule ();
  Printf.printf "%-16s %5s %6s %6s %9s %9s %8s %9s %s\n" "machine" "steps"
    "output" "table" "fragments" "fake-wins" "nodes" "edges" "rules";
  List.iter
    (fun (x : Experiments.fig2_row) ->
      Printf.printf "%-16s %5d %6d %4dx%-3d %9d %9d %8d %9d %s\n" x.machine
        x.steps x.output x.table_side x.table_side x.fragments x.fake_windows
        x.nodes x.edges
        (if x.rules_ok then "pass" else "FAIL"))
    rows;
  print_rule ()

let print_fig3 rows =
  print_rule ();
  print_endline "F3: Figure 3 — the pyramid T^ (layered quadtree)";
  print_rule ();
  Printf.printf "%3s %6s %8s %10s %10s %10s %8s %8s\n" "h" "side" "nodes"
    "overhead" "grid-diam" "pyr-diam" "genuine" "torus";
  List.iter
    (fun (x : Experiments.fig3_row) ->
      Printf.printf "%3d %6d %8d %10.3f %10d %10d %8s %8s\n" x.h x.side x.nodes
        x.pyramid_overhead x.grid_diameter x.pyramid_diameter
        (if x.genuine_ok then "pass" else "FAIL")
        (if x.torus_rejected then "reject" else "MISSED"))
    rows;
  print_rule ()

let print_corollary1 rows =
  print_rule ();
  print_endline
    "C1: Corollary 1 — randomised Id-oblivious (1, 1-o(1))-decider for P";
  print_rule ();
  Printf.printf "%-16s %8s %8s %6s %10s %14s\n" "machine" "n" "expect" "runs"
    "success" "paper bound";
  List.iter
    (fun (x : Experiments.corollary1_row) ->
      Printf.printf "%-16s %8d %8s %6d %10.3f %14.4f\n" x.machine x.n
        (if x.expected then "yes" else "no")
        x.runs x.success x.theory_bound)
    rows;
  print_rule ()

let print_warmups rows =
  print_rule ();
  print_endline "W2/W3: the warm-up promise problems (Sections 2 and 3)";
  print_rule ();
  List.iter
    (fun (x : Experiments.warmup_row) ->
      Printf.printf "[%s] %-18s %-22s %s\n"
        (if x.ok then "ok" else "FAIL")
        x.problem x.setting x.check)
    rows;
  print_rule ()


let print_p3 rows =
  print_rule ();
  print_endline
    "P3: neighbourhood generator B(N,r) vs the true views of G(N,r)";
  print_rule ();
  Printf.printf "%-16s %8s %10s %10s %14s %14s\n" "machine" "halts<=w"
    "G classes" "B classes" "G covered" "B covered";
  List.iter
    (fun (x : Experiments.p3_row) ->
      Printf.printf "%-16s %8s %10d %10d %9d/%-6d %9d/%-6d\n" x.machine
        (if x.halts_in_window then "yes" else "no")
        x.g_classes x.b_classes x.g_covered_by_b x.g_classes x.b_covered_by_g
        x.b_classes)
    rows;
  print_rule ()

let print_fuel_diagonal rows =
  print_rule ();
  print_endline
    "D: fuel diagonalisation - every fuel-bounded Id-oblivious candidate fails";
  print_rule ();
  Printf.printf "%5s %-18s %28s %24s\n" "fuel" "fooling machine"
    "accepts its no-instance" "correct within fuel";
  List.iter
    (fun (x : Experiments.diagonal_row) ->
      Printf.printf "%5d %-18s %28s %24s\n" x.fuel x.fooling_machine
        (if x.fooled then "yes (fooled)" else "NO")
        (if x.honest_on_fast then "yes" else "NO"))
    rows;
  print_rule ()

let print_hereditary rows =
  print_rule ();
  print_endline
    "H: hereditariness - the separations live outside the hereditary class";
  print_rule ();
  Printf.printf "%-26s %-22s %12s %10s\n" "property" "yes-instance" "closed?" "verdict";
  List.iter
    (fun (x : Experiments.hereditary_row) ->
      Printf.printf "%-26s %-22s %12s %10s\n" x.property_name x.instance
        (if x.hereditary_looking then "no violation" else "violated")
        (if x.hereditary_looking = x.expected_hereditary then "as expected"
         else "UNEXPECTED"))
    rows;
  print_rule ()

let print_oi rows =
  print_rule ();
  print_endline "OI: order-invariant algorithms also lose under (B)";
  print_rule ();
  List.iter
    (fun (x : Experiments.oi_row) ->
      Printf.printf "[%s] %s\n" (if x.ok then "ok" else "FAIL") x.check)
    rows;
  print_rule ()

let print_construction rows =
  print_rule ();
  print_endline
    "K: construction tasks - identifiers as symmetry breakers (Section 1.3)";
  print_rule ();
  Printf.printf "%-38s %8s %6s %10s %12s\n" "task" "n" "ok" "rounds" "messages";
  List.iter
    (fun (x : Experiments.construction_row) ->
      Printf.printf "%-38s %8d %6s %10d %12s\n" x.task x.n
        (if x.ok then "yes" else "NO")
        x.rounds
        (if x.messages = 0 then "-" else string_of_int x.messages))
    rows;
  print_rule ()

let print_faults rows =
  print_rule ();
  print_endline
    "FT: fault injection - decider accuracy under drops, crashes, fuel budgets";
  print_rule ();
  Printf.printf "%-18s %-16s %5s %4s %5s %4s %5s %8s %6s %9s %8s %8s\n"
    "decider" "instance" "drop" "crs" "fuel" "ret" "runs" "correct" "wrong"
    "degraded" "unknown" "dropped";
  List.iter
    (fun (x : Experiments.fault_row) ->
      let e = x.Experiments.f_eval in
      let p = x.Experiments.f_plan in
      Printf.printf "%-18s %-16s %5.2f %4d %5s %4d %5d %8d %6d %9d %8d %8d\n"
        x.Experiments.f_scenario
        e.Locald_decision.Decider.f_instance p.Locald_local.Faults.drop
        (List.length p.Locald_local.Faults.crashes)
        (match p.Locald_local.Faults.fuel with
        | None -> "-"
        | Some f -> string_of_int f)
        p.Locald_local.Faults.retries e.Locald_decision.Decider.f_runs
        e.Locald_decision.Decider.f_correct e.Locald_decision.Decider.f_wrong
        e.Locald_decision.Decider.f_degraded
        e.Locald_decision.Decider.f_unknown_nodes
        e.Locald_decision.Decider.f_dropped)
    rows;
  print_rule ()

(* ------------------------------------------------------------------ *)
(* Obliviousness certification                                         *)
(* ------------------------------------------------------------------ *)

let print_certify rows =
  let open Locald_analysis in
  print_rule ();
  print_endline "CERT: who reads the input identifiers, and where";
  print_endline
    "      (access-trace provenance certification of the bundled deciders)";
  print_rule ();
  List.iter
    (fun (r : Certify.row) ->
      Printf.printf "%-13s %-26s r=%d  %-20s %s\n" r.Certify.c_cell
        r.Certify.c_name r.Certify.c_radius
        (Analysis.verdict_name r.Certify.c_report.Analysis.rep_verdict)
        (if r.Certify.c_ok then "[ok]"
         else
           Printf.sprintf "[MISMATCH: declared %s]"
             (Certify.claim_name r.Certify.c_claim));
      let rep = r.Certify.c_report in
      Printf.printf "    views %d/%d%s  events %d  max depth %d\n"
        rep.Analysis.rep_views rep.Analysis.rep_total
        (if rep.Analysis.rep_degraded > 0 then
           Printf.sprintf " (%d degraded)" rep.Analysis.rep_degraded
         else "")
        rep.Analysis.rep_events rep.Analysis.rep_max_depth;
      (match rep.Analysis.rep_verdict with
      | Analysis.Id_dependent w ->
          (* [Printf] writes straight to stdout while [Format.printf]
             buffers until exit; going through [asprintf] keeps the
             witness line in place. *)
          Printf.printf "    witness: %s node %d - %s\n" w.Analysis.w_instance
            w.Analysis.w_node
            (Format.asprintf "%a" Trace.pp_access w.Analysis.w_access);
          Option.iter
            (fun (c : Analysis.confirmation) ->
              match c.Analysis.cf_variance with
              | Some (v : Locald_local.Oblivious.witness) ->
                  Printf.printf
                    "    confirmed: output variance on %s at node %d (%s)\n"
                    c.Analysis.cf_instance v.Locald_local.Oblivious.node
                    c.Analysis.cf_method
              | None ->
                  Printf.printf "    NOT confirmed: no variance on %s (%s)\n"
                    c.Analysis.cf_instance c.Analysis.cf_method)
            w.Analysis.w_confirmation
      | Analysis.Inconclusive { why; _ } ->
          Printf.printf "    inconclusive: %s\n" why
      | Analysis.Certified_oblivious -> ());
      List.iter
        (fun f ->
          Printf.printf "    flag: %s\n"
            (Format.asprintf "%a" Analysis.pp_flag f))
        rep.Analysis.rep_flags)
    rows;
  print_rule ();
  (* The Table 1 grid, verdict-shaped: how many deciders of each cell
     certified oblivious vs produced an id-read witness. *)
  let cell_summary cell =
    let mine = List.filter (fun r -> r.Certify.c_cell = cell) rows in
    if mine = [] then "-"
    else
      let count p = List.length (List.filter p mine) in
      let obliv =
        count (fun r -> Analysis.certified r.Certify.c_report)
      and dep = count (fun r -> Analysis.id_dependent r.Certify.c_report)
      and bad = count (fun r -> not r.Certify.c_ok) in
      Printf.sprintf "%d oblivious, %d id-dep%s" obliv dep
        (if bad > 0 then Printf.sprintf ", %d MISMATCH" bad else "")
  in
  Printf.printf "           |  %-24s %-24s\n" "(C)" "(notC)";
  Printf.printf "(B)        |  %-24s %-24s\n"
    (cell_summary "(B, C)")
    (cell_summary "(B, notC)");
  Printf.printf "(notB)     |  %-24s %-24s\n"
    (cell_summary "(notB, C)")
    (cell_summary "(notB, notC)");
  print_rule ();
  if Certify.all_ok rows then
    print_endline "every decider certifies as declared"
  else print_endline "MISMATCH: some decider does not certify as declared"

(* ------------------------------------------------------------------ *)
(* Wall-clock timings                                                  *)
(* ------------------------------------------------------------------ *)

type timing = {
  t_experiment : string;
  t_wall : float;          (* seconds *)
  t_jobs : int;
  t_speedup : float option; (* wall at jobs=1 / wall, when both measured *)
}

let print_timings rows =
  print_rule ();
  print_endline "Wall-clock per experiment";
  print_rule ();
  Printf.printf "%-24s %10s %6s %9s\n" "experiment" "wall(s)" "jobs" "speedup";
  List.iter
    (fun t ->
      Printf.printf "%-24s %10.3f %6d %9s\n" t.t_experiment t.t_wall t.t_jobs
        (match t.t_speedup with
        | None -> "-"
        | Some s -> Printf.sprintf "%.2fx" s))
    rows;
  print_rule ()
