open Locald_graph
open Locald_turing
open Locald_local
open Locald_decision
open Locald_runtime

let simulation_cap = 100_000

let structure_verifier () =
  Algorithm.make_oblivious ~name:"Gmr-structure" ~radius:2 (fun view ->
      Gmr_check.violations_view view = [])

let halts_with_nonzero machine ~fuel =
  match Exec.run ~fuel machine with
  | Exec.Halted { output; _ } -> output <> 0
  | Exec.Out_of_fuel _ | Exec.Crashed _ -> false

let ld_decider () =
  let structure = structure_verifier () in
  (* Decide-once on the simulation outcome. The verdict of a bounded
     TM run is a pure function of [(machine, fuel)] and [Exec.run]
     never touches the view, so memoising it is trace-safe: the
     certifier's nondeterminism double-run reads the view identically
     and answers the simulation from the table on the second pass.
     The coins-free key also never coarsens across id decorations —
     the fuel IS the centre id. *)
  let sim =
    Memo.create ~hash:Memo.structural_hash ~equal:Memo.structural_equal ()
  in
  Algorithm.make ~name:"Gmr-LD-decider" ~radius:2 (fun (view : Gmr.label View.t) ->
      let machine = (View.center_label view).Gmr.machine in
      let fuel = min (View.center_id view) simulation_cap in
      structure.Algorithm.ob_decide (View.strip_ids view)
      && not
           (Memo.find_or_compute sim (machine, fuel) (fun () ->
                halts_with_nonzero machine ~fuel)))

let candidate_fuel ~fuel =
  let structure = structure_verifier () in
  Algorithm.make_oblivious
    ~name:(Printf.sprintf "Gmr-candidate-fuel%d" fuel)
    ~radius:2
    (fun (view : Gmr.label View.t) ->
      let machine = (View.center_label view).Gmr.machine in
      structure.Algorithm.ob_decide view && not (halts_with_nonzero machine ~fuel))

let candidate_scan () =
  let structure = structure_verifier () in
  Algorithm.make_oblivious ~name:"Gmr-candidate-scan" ~radius:2 (fun view ->
      let sees_bad_halt =
        Array.exists
          (fun (l : Gmr.label) ->
            match l.Gmr.part with
            | Gmr.Cell { cell = { Cell.head = Cell.Halted o; _ }; _ } -> o <> 0
            | Gmr.Cell _ | Gmr.Pyr _ -> false)
          view.View.labels
      in
      structure.Algorithm.ob_decide view && not sees_bad_halt)

let corollary1_decider () =
  let structure = structure_verifier () in
  Randomized.make ~name:"Gmr-corollary1" ~radius:2 (fun rng (view : Gmr.label View.t) ->
      let machine = (View.center_label view).Gmr.machine in
      let fuel =
        Randomized.four_pow_capped ~cap:simulation_cap (Randomized.geometric rng)
      in
      structure.Algorithm.ob_decide view && not (halts_with_nonzero machine ~fuel))

let separation_accepts candidate ?config ~r ~side_exp machine =
  let views =
    Gmr.generator_views ?config ~view_radius:candidate.Algorithm.ob_radius
      ~dedupe:false ~r ~side_exp machine
  in
  List.for_all
    (fun view -> candidate.Algorithm.ob_decide (View.strip_ids view))
    views

(* Fast whole-graph evaluation of the same deciders: the structure
   rules are evaluated once per graph (they do not depend on the
   identifiers or the coins), and the per-node simulation outcome is
   derived from one full run of the machine — "simulating for k steps
   finds a non-zero halt" is monotone in k. Agreement with the honest
   per-view algorithms is part of the test suite. *)
module Fast = struct
  type t = {
    lg : Gmr.label Labelled.t;
    structure : bool array;
    halt_steps : int option;  (** steps after which the halt is visible *)
    output : int;
    bad_halt_within_2 : bool array;
  }

  let dilate g marked =
    let n = Array.length marked in
    let out = Array.copy marked in
    for v = 0 to n - 1 do
      if not out.(v) then
        out.(v) <- Array.exists (fun u -> marked.(u)) (Graph.neighbours g v)
    done;
    out

  let prepare (lg : Gmr.label Labelled.t) =
    let structure = Gmr_check.structure_array lg in
    let machine = (Labelled.label lg 0).Gmr.machine in
    let halt_steps, output =
      match Exec.run ~fuel:simulation_cap machine with
      | Exec.Halted { output; steps } -> (Some steps, output)
      | Exec.Out_of_fuel _ | Exec.Crashed _ -> (None, 0)
    in
    let g = Labelled.graph lg in
    let bad =
      Array.init (Labelled.order lg) (fun v ->
          match (Labelled.label lg v).Gmr.part with
          | Gmr.Cell { cell = { Cell.head = Cell.Halted o; _ }; _ } -> o <> 0
          | Gmr.Cell _ | Gmr.Pyr _ -> false)
    in
    let bad_halt_within_2 = dilate g (dilate g bad) in
    { lg; structure; halt_steps; output; bad_halt_within_2 }

  let finds_bad_halt t ~fuel =
    (* [Exec.run ~fuel] reads the halting action only with [fuel > steps]
       transitions of budget left, matching [halts_with_nonzero]. *)
    match t.halt_steps with
    | Some s -> fuel > s && t.output <> 0
    | None -> false

  let verdict_of t per_node =
    Verdict.of_outputs
      (Array.init (Labelled.order t.lg) (fun v -> t.structure.(v) && per_node v))

  let ld t ~ids =
    verdict_of t (fun v ->
        let fuel = min (Ids.assign ids v) simulation_cap in
        not (finds_bad_halt t ~fuel))

  let fuel_candidate t ~fuel = verdict_of t (fun _ -> not (finds_bad_halt t ~fuel))

  let scan_candidate t = verdict_of t (fun v -> not t.bad_halt_within_2.(v))

  let corollary1 t rng =
    (* Decide-once per geometric level within one run: the outcome is
       a pure function of the level, so repeated draws answer from a
       run-local flat table (domain-confined — no locks, no hashing).
       The coins are still consumed one draw per node, exactly like
       the uncached decider: coins themselves are never memoised (the
       PR-4 contract), only the deterministic function of the draw is.
       The reuse reports into the run-scoped memo tallies like the
       restriction scanner's trie — flushed in bulk after the verdict,
       because this loop runs millions of times per experiment. *)
    let max_level = 62 in
    let outcomes = Bytes.make (max_level + 1) '\000' in
    let hits = ref 0 and misses = ref 0 in
    let decide_level level =
      let fuel = Randomized.four_pow_capped ~cap:simulation_cap level in
      not (finds_bad_halt t ~fuel)
    in
    let verdict =
      verdict_of t (fun _ ->
          let level = Randomized.geometric rng in
          if level <= max_level then
            match Bytes.unsafe_get outcomes level with
            | '\001' ->
                incr hits;
                true
            | '\002' ->
                incr hits;
                false
            | _ ->
                incr misses;
                let ok = decide_level level in
                Bytes.unsafe_set outcomes level (if ok then '\001' else '\002');
                ok
          else begin
            (* Levels past 62 are beyond the fuel cap's resolution and
               astronomically unlikely; just compute. *)
            incr misses;
            decide_level level
          end)
    in
    Memo.note_hits !hits;
    Memo.note_misses !misses;
    Memo.note_distincts !misses;
    verdict
end

let property ~r ~config =
  Property.make ~name:(Printf.sprintf "P={G(M,%d) : M outputs 0}" r) (fun (lg : Gmr.label Labelled.t) ->
      Labelled.order lg > 0
      && Gmr_check.global_check ~r ~config lg
      &&
      let machine = (Labelled.label lg 0).Gmr.machine in
      match Exec.run ~fuel:config.Gmr.fuel machine with
      | Exec.Halted { output; _ } -> output = 0
      | Exec.Out_of_fuel _ | Exec.Crashed _ -> false)
