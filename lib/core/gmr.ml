open Locald_graph
open Locald_turing
open Locald_runtime

type part =
  | Cell of { cell : Cell.t; m6x : int; m6y : int }
  | Pyr of Quadtree.label

type label = {
  machine : Machine.t;
  r : int;
  part : part;
}

let equal_label (a : label) b =
  a.r = b.r && a.part = b.part && Machine.equal a.machine b.machine

let pp_label ppf l =
  match l.part with
  | Cell { cell; m6x; m6y } ->
      Format.fprintf ppf "cell(%s @%d,%d r=%d)" (Cell.to_string cell) m6x m6y l.r
  | Pyr q -> Format.fprintf ppf "pyr%a r=%d" Quadtree.pp_label q l.r

let pivot_look l =
  match l.part with
  | Cell { cell = { Cell.sym = 0; head = Cell.Head 0 }; m6x = 0; m6y = 0 } -> true
  | Cell _ | Pyr _ -> false

type provenance =
  | Table_base of int * int
  | Table_pyr of Quadtree.coord3
  | Frag_base of int * int * int
  | Frag_pyr of int * Quadtree.coord3

type config = {
  fragment_side : int;
  fragment_cap : int;
  max_heads_per_row : int;
  all_phases : bool;
  fuel : int;
}

let rec next_pow2 n = if n <= 1 then 1 else 2 * next_pow2 ((n + 1) / 2)

let default_config ~r =
  {
    (* The paper uses side 2^(3r); the minimal side that hosts every
       radius-r window is 2r+1, rounded up to a power of two for the
       fragment pyramids (see DESIGN.md, substitutions). *)
    fragment_side = max 4 (next_pow2 ((2 * r) + 1));
    fragment_cap = 400;
    max_heads_per_row = 1;
    all_phases = false;
    fuel = 64;
  }

type t = {
  config : config;
  machine : Machine.t;
  r : int;
  lg : label Labelled.t;
  provenance : provenance array;
  pivot : int;
  table_side : int;
  steps : int;
  output : int;
  fragments : Fragment.t list;
  truncated : bool;
}

exception Not_admissible of string

let log2_exact n =
  let rec go k p = if p = n then k else if p > n then -1 else go (k + 1) (2 * p) in
  let k = go 0 1 in
  if k < 0 then invalid_arg (Printf.sprintf "Gmr: %d is not a power of two" n);
  k

(* The fragment collection actually glued: real-table windows, the
   fake-halt fragments, and a capped syntactic enumeration; fragments
   exhibiting a state-0 head are removed (pivot uniqueness). *)
let collection ~config machine table_cells =
  let w = config.fragment_side and h = config.fragment_side in
  let windows = Fragment.of_cells_windows machine table_cells ~w ~h in
  let fakes = Fragment.fake_halts machine ~w ~h in
  let enum =
    Fragment.enumerate ~max_heads_per_row:config.max_heads_per_row
      ~cap:config.fragment_cap machine ~w ~h
  in
  let all =
    windows @ fakes @ enum.Fragment.fragments
    |> List.filter (fun f -> not (Fragment.contains_start_state f))
    |> List.sort_uniq Fragment.compare
  in
  (all, enum.Fragment.truncated)

(* Anchor phases: a fragment with its own height-[hf] pyramid can only
   impersonate windows whose anchor is a multiple of its side; the
   label residues it can exhibit are the anchor multiples modulo
   [6 * side]. *)
let phases ~config =
  if not config.all_phases then [ (0, 0) ]
  else begin
    let side = config.fragment_side in
    let axis = List.init 6 (fun k -> k * side) in
    List.concat_map (fun ax -> List.map (fun ay -> (ax, ay)) axis) axis
  end

let frag_label ~machine ~r ~anchor:(ax, ay) ~cells (c : Quadtree.coord3) =
  if c.Quadtree.z = 0 then
    {
      machine;
      r;
      part =
        Cell
          {
            cell = cells.(c.Quadtree.y).(c.Quadtree.x);
            m6x = (ax + c.Quadtree.x) mod 6;
            m6y = (ay + c.Quadtree.y) mod 6;
          };
    }
  else
    let shift v = v lsr c.Quadtree.z in
    {
      machine;
      r;
      part =
        Pyr
          {
            Quadtree.m6x = (shift ax + c.Quadtree.x) mod 6;
            m6y = (shift ay + c.Quadtree.y) mod 6;
            z3 = c.Quadtree.z mod 3;
          };
    }

(* Assemble the labelled graph from the (possibly truncated) table
   cells and the fragment collection. *)
let assemble ~machine ~r ~config table_cells fragments =
  let side = Array.length table_cells in
  let h = log2_exact side in
  let hf = log2_exact config.fragment_side in
  let table_order = Quadtree.order ~h in
  let frag_order = Quadtree.order ~h:hf in
  let table_graph = Quadtree.build ~h in
  let frag_graph = Quadtree.build ~h:hf in
  let frag_edges = Graph.edges frag_graph in
  let phase_list = phases ~config in
  let instances =
    List.concat_map (fun f -> List.map (fun ph -> (f, ph)) phase_list) fragments
  in
  let n = table_order + (List.length instances * frag_order) in
  let labels = Array.make n { machine; r; part = Pyr { Quadtree.m6x = 0; m6y = 0; z3 = 0 } } in
  let provenance = Array.make n (Table_base (0, 0)) in
  (* Table part. *)
  for i = 0 to table_order - 1 do
    let c = Quadtree.coord_of_index ~h i in
    if c.Quadtree.z = 0 then begin
      labels.(i) <-
        {
          machine;
          r;
          part =
            Cell
              {
                cell = table_cells.(c.Quadtree.y).(c.Quadtree.x);
                m6x = c.Quadtree.x mod 6;
                m6y = c.Quadtree.y mod 6;
              };
        };
      provenance.(i) <- Table_base (c.Quadtree.x, c.Quadtree.y)
    end
    else begin
      labels.(i) <- { machine; r; part = Pyr (Quadtree.label_of_coord c) };
      provenance.(i) <- Table_pyr c
    end
  done;
  let edges = ref (Graph.edges table_graph) in
  let pivot = Quadtree.index ~h { Quadtree.x = 0; y = 0; z = 0 } in
  (* Fragments. *)
  List.iteri
    (fun idx (f, anchor) ->
      let offset = table_order + (idx * frag_order) in
      for i = 0 to frag_order - 1 do
        let c = Quadtree.coord_of_index ~h:hf i in
        labels.(offset + i) <-
          frag_label ~machine ~r ~anchor ~cells:f.Fragment.cells c;
        provenance.(offset + i) <-
          (if c.Quadtree.z = 0 then Frag_base (idx, c.Quadtree.x, c.Quadtree.y)
           else Frag_pyr (idx, c))
      done;
      List.iter (fun (u, v) -> edges := (offset + u, offset + v) :: !edges) frag_edges;
      (* Glue the non-natural border cells to the pivot. *)
      List.iter
        (fun (row, col) ->
          let base =
            offset + Quadtree.index ~h:hf { Quadtree.x = col; y = row; z = 0 }
          in
          edges := (pivot, base) :: !edges)
        (Fragment.non_natural_cells machine f))
    instances;
  let g = Graph.of_edges ~n !edges in
  (Labelled.make g labels, provenance, pivot)

let build ?config ~r machine =
  let config = match config with Some c -> c | None -> default_config ~r in
  if Machine.reenters_start machine then
    raise
      (Not_admissible
         (Printf.sprintf "machine %s re-enters state 0" machine.Machine.name));
  match Table.of_machine ~fuel:config.fuel machine with
  | Error o -> Error o
  | Ok table ->
      let table = Table.pad_to_power_of_two table in
      let table =
        (* A pyramid needs side >= fragment side to host the fragment
           views; also keep at least 4 for a non-degenerate pyramid. *)
        Table.pad_to table
          (max table.Table.side (max 4 config.fragment_side))
      in
      let fragments, truncated = collection ~config machine table.Table.cells in
      let lg, provenance, pivot =
        assemble ~machine ~r ~config table.Table.cells fragments
      in
      Ok
        {
          config;
          machine;
          r;
          lg;
          provenance;
          pivot;
          table_side = table.Table.side;
          steps = table.Table.steps;
          output = table.Table.output;
          fragments;
          truncated;
        }

let order t = Labelled.order t.lg
let size t = Graph.size (Labelled.graph t.lg)

(* Deduplicate views up to rooted isomorphism, bucketing by signature.
   Exact isomorphism is only attempted on small views; the huge views
   around the pivot (one per glued border cell) are deduplicated by
   signature and size alone — backtracking over thousands of
   near-symmetric nodes is not worth the certainty there, and keeping
   a spurious duplicate is harmless for every consumer of these
   lists. *)
let iso_dedupe_threshold = 400

(* Canonical keys are computed for all views in parallel; the bucketing
   itself stays sequential in input order so class representatives come
   out identical at any job count. The bucket key reproduces the
   historical [(signature, order, size)] triple exactly ([Canon]'s
   fingerprint is [Iso.view_signature] by construction). *)
let keyed_views views =
  let canon = Canon.create ~equal:equal_label () in
  let views = Array.of_list views in
  let keys = Pool.map (Canon.key canon) views in
  (canon, Array.map2 (fun view key -> (view, key)) views keys)

let bucket_key key view =
  (Canon.fingerprint key, View.order view, Graph.size view.View.graph)

let dedupe_views views =
  let canon, keyed = keyed_views views in
  let classes = Hashtbl.create 256 in
  Array.iter
    (fun (view, key) ->
      let s = bucket_key key view in
      let bucket =
        match Hashtbl.find_opt classes s with
        | Some b -> b
        | None ->
            let b = ref [] in
            Hashtbl.replace classes s b;
            b
      in
      (* Members of a bucket agree on fingerprint, order and size, so
         [~exact_threshold] reproduces the historical big-view regime:
         above the threshold any bucket member counts as a duplicate. *)
      let duplicate =
        List.exists
          (fun (_, k) ->
            Canon.equivalent ~exact_threshold:iso_dedupe_threshold canon key k)
          !bucket
      in
      if not duplicate then bucket := (view, key) :: !bucket)
    keyed;
  Hashtbl.fold (fun _ b acc -> List.map fst !b @ acc) classes []

let views_covered views ~by =
  let canon, keyed_by = keyed_views by in
  let buckets = Hashtbl.create 256 in
  Array.iter
    (fun (view, key) ->
      let s = bucket_key key view in
      let bucket =
        match Hashtbl.find_opt buckets s with
        | Some b -> b
        | None ->
            let b = ref [] in
            Hashtbl.replace buckets s b;
            b
      in
      bucket := key :: !bucket)
    keyed_by;
  let _, keyed = keyed_views views in
  let flags =
    Pool.map
      (fun (view, key) ->
        match Hashtbl.find_opt buckets (bucket_key key view) with
        | None -> false
        | Some b ->
            List.exists
              (fun k ->
                Canon.equivalent ~exact_threshold:iso_dedupe_threshold canon key
                  k)
              !b)
      keyed
  in
  let covered = Array.fold_left (fun acc ok -> if ok then acc + 1 else acc) 0 flags in
  let total = Array.length flags in
  (covered = total, covered, total)

let views_of_lg lg ~radius =
  Pool.map
    (fun v -> View.extract lg ~center:v ~radius)
    (Pool.init_in_order (Labelled.order lg) Fun.id)
  |> Array.to_list

let all_views ?radius ?(dedupe = true) t =
  let radius = Option.value radius ~default:t.r in
  let views = views_of_lg t.lg ~radius in
  if dedupe then dedupe_views views else views

let generator_views ?config ?view_radius ?(dedupe = true) ~r ~side_exp machine =
  let config = match config with Some c -> c | None -> default_config ~r in
  let radius = Option.value view_radius ~default:r in
  let side = 1 lsl side_exp in
  match build ~config ~r machine with
  | Ok t when t.table_side <= side ->
      (* The machine demonstrably halts within the window: output the
         views of the real construction. *)
      all_views ~radius ~dedupe t
  | Ok _ | Error _ ->
      (* Truncated mode: lay out the first [side] rows of the (possibly
         infinite) execution and exclude views touching the truncation
         artefacts. *)
      let configs, _ = Exec.trace ~fuel:(side - 1) machine in
      let cells =
        Array.init side (fun i ->
            let c = List.nth configs (min i (List.length configs - 1)) in
            Array.init side (fun j ->
                let sym = Exec.tape_cell c j in
                let head =
                  if i < List.length configs && j = c.Exec.head then
                    Cell.Head c.Exec.state
                  else Cell.No_head
                in
                { Cell.sym; head }))
      in
      let fragments, _ = collection ~config machine cells in
      let lg, provenance, _pivot = assemble ~machine ~r ~config cells fragments in
      let suspect v =
        match provenance.(v) with
        | Table_base (x, y) -> y = side - 1 || x = side - 1
        | Table_pyr c -> c.Quadtree.z > radius
        | Frag_base _ | Frag_pyr _ -> false
      in
      let views =
        Pool.map
          (fun v ->
            let view, ball = View.extract_mapped lg ~center:v ~radius in
            if Array.exists suspect ball then None else Some view)
          (Pool.init_in_order (Labelled.order lg) Fun.id)
        |> Array.to_list
        |> List.filter_map Fun.id
      in
      if dedupe then dedupe_views views else views
