(** Plain-text rendering of the experiment records (shared by the CLI
    and the benchmark harness). *)

val print_rule : unit -> unit
val print_table1 : Experiments.cell_result list -> unit
val print_fig1 : Experiments.fig1_row list -> unit
val print_fig2 : Experiments.fig2_row list -> unit
val print_fig3 : Experiments.fig3_row list -> unit
val print_corollary1 : Experiments.corollary1_row list -> unit
val print_warmups : Experiments.warmup_row list -> unit
val print_p3 : Experiments.p3_row list -> unit
val print_fuel_diagonal : Experiments.diagonal_row list -> unit
val print_hereditary : Experiments.hereditary_row list -> unit
val print_oi : Experiments.oi_row list -> unit
val print_construction : Experiments.construction_row list -> unit
val print_faults : Experiments.fault_row list -> unit

val print_certify : Certify.row list -> unit
(** Per-subject verdicts with witnesses and flags, then a Table-1-shaped
    grid summarising oblivious vs id-dependent counts per cell. Prints
    no timings: the output is byte-identical across runs and job
    counts (asserted by CI). *)

type timing = {
  t_experiment : string;
  t_wall : float;           (** seconds *)
  t_jobs : int;             (** pool size the experiment ran at *)
  t_speedup : float option; (** wall at jobs=1 over this wall, when measured *)
}

val print_timings : timing list -> unit
