(** The bundled-decider certification registry backing
    [locald certify].

    Every decider the repo ships is registered here with its {e
    declared} classification — Id-oblivious or Id-dependent — and a
    small instance set; {!run} pushes each through
    {!Locald_analysis.Analysis.certify} and checks the verdict against
    the declaration. The headline content mirrors Table 1:

    - the Section 2 [P'-verifier] and the Section 3 Id-oblivious
      candidates certify {e oblivious} (their traces contain no input
      identifier read);
    - the Section 2 [P-decider], the Theorem 2 [Gmr-LD-decider] and the
      (notB, notC) blaming decider each produce a concrete id-read
      witness, cross-checked by an exhaustive output-variance search on
      a purpose-built small instance;
    - the Id-oblivious simulation [A*] certifies oblivious {e
      non-trivially}: it is fed id-carrying views and its trace is full
      of identifier reads — all with synthetic provenance (the
      assignments it manufactures itself), none from the input.

    For the Id-dependent subjects the confirm instances are tuned so
    the exhaustive search hits variance within the first few
    lexicographic assignments (see the implementation comments); the
    searches stay well under a millisecond despite factorial spaces. *)

open Locald_graph
open Locald_local
open Locald_runtime
open Locald_analysis

type claim = Claims_oblivious | Claims_id_dependent

type subject =
  | Subject : {
      s_cell : string;  (** Table 1 cell the subject belongs to *)
      s_claim : claim;
      s_alg : ('a, bool) Algorithm.t;
      s_instances : (string * 'a Labelled.t) list;
      s_confirm : Analysis.confirm_method option;
      s_confirm_on : (string * 'a Labelled.t) option;
    }
      -> subject

type row = {
  c_name : string;
  c_radius : int;
  c_cell : string;
  c_claim : claim;
  c_report : Analysis.report;
  c_ok : bool;
      (** verdict matches the declaration; for Id-dependent subjects
          with a confirm method, the variance search must also succeed *)
}

val claim_name : claim -> string

val subjects : ?quick:bool -> unit -> subject list
(** The registry. [quick] prunes to one subject per verdict kind. *)

val certify_subject : ?pool:Pool.t -> ?plan:Faults.plan -> subject -> row

val run : ?quick:bool -> ?pool:Pool.t -> unit -> row list
(** Certify every registered subject (instance sets are built
    sequentially; each certification fans out on the pool). Output is
    byte-identical at any job count. *)

val all_ok : row list -> bool
