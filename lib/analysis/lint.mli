(** Fast source-level codebase checks backing [locald lint].

    These are deliberately {e lexical} (line-based token heuristics, no
    type information): they run in milliseconds over the whole tree and
    catch the specific idioms this repo bans, at the price of being
    incomplete in general. The rules:

    - {!Poly_compare} — polymorphic structural [=]/[<>]/[Hashtbl.hash]
      applied to a [Graph.t]/[View.t]/[Labelled.t] payload projection
      ([....labels], [....graph], [....ids]). Structural equality on
      these types is representation equality, not isomorphism, and
      [Hashtbl.hash] on them is not isomorphism-invariant; use
      [Graph.equal], [Iso.views_isomorphic], [Iso.view_signature] or a
      [Canon] key instead.
    - {!Naked_ids_access} — direct [.ids] record-field access on a view
      outside [lib/graph] and [lib/analysis]. Field reads bypass the
      access monitor, so a single stray projection would void the
      obliviousness certificates produced by {!Analysis.certify}; go
      through [View.ids]/[View.id]/[View.center_id].
    - {!Self_init} — [Random.self_init]: nondeterministic seeding has
      no place in a repo whose outputs must be byte-identical across
      runs and job counts.
    - {!Decorated_key} — a decide-once memo table constructed with the
      polymorphic primitives as key functions ([Memo.create
      ~hash:Hashtbl.hash ...], [~equal:( = )]) outside [lib/runtime].
      The memo's hash contract on decorated keys must stay mediated —
      [Memo.hash_node_ids]/[equal_node_ids], [View.fingerprint]/
      [equal_repr], [Canon] keys; [Memo.structural_hash]/
      [structural_equal] for label components.

    Comment text and string-literal contents are masked out before the
    rules run — a banned token in a doc comment or a help string is
    prose, not a use. Comment nesting and backslash-continued strings
    are tracked across lines. A line containing the marker
    [locald-lint: allow] is exempt from all rules. *)

type rule = Poly_compare | Naked_ids_access | Self_init | Decorated_key

type finding = {
  f_file : string;    (** as given to the scanner *)
  f_line : int;       (** 1-based *)
  f_rule : rule;
  f_excerpt : string; (** the offending line, trimmed *)
}

val rule_name : rule -> string
val rule_help : rule -> string

val scan_line : ?allow_decorated:bool -> allow_ids:bool -> string -> rule list
(** Rules violated by one source line (masked as if it opened at
    top-level: no enclosing comment or string). [allow_ids] disables
    {!Naked_ids_access} (true under [lib/graph]/[lib/analysis], where
    the representation is the module's own business);
    [allow_decorated] (default [false]) disables {!Decorated_key}
    (true under [lib/runtime], which owns the key functions). Exposed
    for unit tests. *)

val scan_string :
  ?file:string -> ?allow_decorated:bool -> allow_ids:bool -> string ->
  finding list
(** Scan a whole source text (split on newlines). *)

val scan_file : string -> finding list
(** Scan one [.ml]/[.mli] file; [allow_ids] is derived from the path. *)

val scan_tree : roots:string list -> finding list
(** Recursively scan every [.ml] and [.mli] under the roots (skipping
    [_build], [.git] and [_opam]), in sorted path order. *)

val pp_finding : Format.formatter -> finding -> unit
(** [file:line: [rule] excerpt] — one line, editor-clickable. *)

(** {1 Shared infrastructure}

    The path policies, tree walk and allow marker are also the law for
    the AST engine ({!Ast_lint}), which must agree with the lexical
    scanner about where representation access is a module's own
    business and which files are sources. *)

val ids_allowed_for : string -> bool
(** [.ids] access is the module's own business under [lib/graph] and
    [lib/analysis]. *)

val decorated_allowed_for : string -> bool
(** Raw key functions are allowed under [lib/runtime], which owns the
    mediated key contract. *)

val allow_marker : string
(** A raw source line containing this marker is exempt from all rules
    (lexical and AST). *)

val read_file : string -> string

val source_files : roots:string list -> string list
(** Every [.ml]/[.mli] under the roots (skipping [_build], [.git],
    [_opam]), in sorted path order — the file set both engines scan. *)
