(** The obliviousness certifier: run an algorithm over every view of a
    set of covered instances under the {!Trace} provenance monitor and
    aggregate the per-node access traces into a certificate.

    The verdict lattice:
    - {!Certified_oblivious} — no input-identifier read occurred on any
      covered view. Because [locald lint] makes identifier reads
      accessor-mediated (no naked [.ids] field access outside
      [lib/graph]/[lib/analysis]), this is a sound certificate that the
      outputs on the covered views are invariant under re-assignment of
      the identifiers: the decision never looked at them.
    - {!Id_dependent} — a concrete witness: the view (instance and
      node) and the recorded access path of the first input-identifier
      read, optionally cross-checked against
      {!Locald_local.Oblivious.find_variance_exhaustive} /
      [find_variance_sampled] for semantic variance.
    - {!Inconclusive} — the coverage bound was hit (view budget
      exhausted, or nodes degraded by a fault plan), so neither claim
      is certified.

    Orthogonally to the verdict, the certifier flags {e radius
    violations} (a per-node access strictly deeper than the declared
    radius — only observable when certifying with [slack > 0], which
    extracts views beyond the declared horizon) and {e nondeterminism}
    (two runs of the decision on the same view with differing traces
    or outputs).

    Certification fans out per view on the {!Locald_runtime.Pool};
    verdicts, witnesses and flags are identical at any job count
    (first-in-node-order semantics, as everywhere in this repo). *)

open Locald_graph
open Locald_local
open Locald_runtime

type confirmation = {
  cf_instance : string;          (** instance the variance search ran on *)
  cf_method : string;            (** e.g. ["exhaustive<8"], ["sampled 40x"] *)
  cf_variance : Oblivious.witness option;
      (** a node whose output differs under two assignments, if found *)
}

type witness = {
  w_instance : string;
  w_node : int;                  (** node of the instance whose decision read an id *)
  w_access : View.access;        (** the first input-id read: view-local node, depth, value *)
  w_trace : Trace.t;             (** the decision's full access trace *)
  w_confirmation : confirmation option;
}

type flag =
  | Radius_violation of {
      rv_instance : string;
      rv_node : int;
      rv_depth : int;            (** deepest per-node access observed *)
      rv_declared : int;         (** the algorithm's declared radius *)
    }
  | Nondeterminism of { nd_instance : string; nd_node : int }

type verdict =
  | Certified_oblivious
  | Id_dependent of witness
  | Inconclusive of { covered : int; total : int; why : string }

type report = {
  rep_algorithm : string;
  rep_radius : int;
  rep_verdict : verdict;
  rep_views : int;               (** views actually traced *)
  rep_total : int;               (** candidate views over all instances *)
  rep_degraded : int;            (** views excluded by the fault plan *)
  rep_distinct_views : int;      (** distinct decorated balls actually
                                     decided — the orbit count the
                                     probe memo collapsed the coverage
                                     to ([= rep_views] with the memo
                                     off) *)
  rep_events : int;              (** total trace events over traced views *)
  rep_max_depth : int;           (** deepest per-node access over all traces *)
  rep_flags : flag list;
}

type confirm_method =
  | Confirm_exhaustive of int
      (** bound for {!Oblivious.find_variance_exhaustive} *)
  | Confirm_sampled of { regime : Ids.regime; trials : int; seed : int }

val certify :
  ?pool:Pool.t ->
  ?budget:int ->
  ?slack:int ->
  ?plan:Faults.plan ->
  ?confirm:confirm_method ->
  ?confirm_on:string * 'a Labelled.t ->
  ?memo:Memo.mode ->
  ('a, bool) Algorithm.t ->
  instances:(string * 'a Labelled.t) list ->
  report
(** [certify alg ~instances] traces [alg] on every node's view of every
    instance (with the sequential assignment [0 .. n-1] attached, so
    id reads are observable) and aggregates the verdict.

    [memo] (default [Off]) routes probes through a probe-once table
    keyed by the exact decorated view: equal balls are traced once and
    the payload shared (transparent for pure decides — the verdict,
    flags and aggregates are unchanged). Off by default because within
    a single instance every decorated ball is distinct (probe ids are
    global node numbers), so the table only helps when the instance
    list overlaps or repeats. [Order_type] does not coarsen this table
    — a trace is specific to the concrete id decoration — so any mode
    other than [Off] behaves as exact.

    [budget] (default [20_000]) caps the number of traced views; hitting
    it yields {!Inconclusive}. [slack] (default [0]) extracts views at
    [radius + slack], enabling radius-violation detection. [plan] runs
    each instance through {!Fault_runner} first and excludes nodes that
    answered [Unknown] from the coverage (degraded coverage is reported
    as {!Inconclusive}, never as a false certificate). [confirm]
    cross-checks an {!Id_dependent} verdict by searching for semantic
    output variance on [confirm_on] (default: the witness instance). *)

val certified : report -> bool
val id_dependent : report -> bool

val confirmed : report -> bool option
(** [Some true] when an {!Id_dependent} witness was semantically
    confirmed by the variance cross-check, [Some false] when the
    cross-check ran and found no variance, [None] when no cross-check
    applies (not id-dependent, or no [confirm] method given). *)

val verdict_name : verdict -> string
val pp_flag : Format.formatter -> flag -> unit
val pp_verdict : Format.formatter -> verdict -> unit
val pp_report : Format.formatter -> report -> unit
