module Json = Locald_runtime.Telemetry.Json

type engine = Ast | Lexical

type finding = {
  a_file : string;
  a_line : int;
  a_col : int;
  a_rule : Ast_rules.rule;
  a_excerpt : string;
  a_engine : engine;
}

type config = {
  c_allow_ids : bool;
  c_allow_decorated : bool;
  c_allow_clock : bool;
  c_rules : Ast_rules.rule list;
}

(* ------------------------------------------------------------------ *)
(* Path policy                                                         *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

let norm_path p = String.map (fun c -> if c = '\\' then '/' else c) p

let under_test path =
  let p = norm_path path in
  p = "test" || String.starts_with ~prefix:"test/" p || contains p "/test/"

let clock_owner path =
  String.ends_with ~suffix:"lib/runtime/timing.ml" (norm_path path)

let config_for ?(rules = Ast_rules.all) ?(test_allow = []) path =
  let rules =
    if under_test path then
      List.filter (fun r -> not (List.mem r test_allow)) rules
    else rules
  in
  {
    c_allow_ids = Lint.ids_allowed_for path;
    c_allow_decorated = Lint.decorated_allowed_for path;
    c_allow_clock = clock_owner path;
    c_rules = rules;
  }

(* ------------------------------------------------------------------ *)
(* Rule targets                                                        *)
(* ------------------------------------------------------------------ *)

(* Canonical paths are component lists, never dotted strings — both so
   resolution is structural and so this file cannot trip the lexical
   scanner over its own rule tables. *)

let random_globals =
  [
    "int"; "bool"; "float"; "bits"; "bits32"; "bits64"; "full_int"; "int32";
    "int64"; "nativeint"; "char";
  ]

let clock_paths =
  [ [ "Sys"; "time" ]; [ "Unix"; "gettimeofday" ]; [ "Unix"; "time" ] ]

let digest_sinks =
  [
    [ "Digest"; "string" ];
    [ "Digest"; "bytes" ];
    [ "Digest"; "substring" ];
    [ "Shard"; "result_digest" ];
    [ "Checkpoint"; "append" ];
  ]

let hashtbl_iterators = [ [ "Hashtbl"; "fold" ]; [ "Hashtbl"; "iter" ] ]

let spawners =
  [
    [ "Pool"; "map" ];
    [ "Pool"; "map_list" ];
    [ "Pool"; "map_reduce" ];
    [ "Domain"; "spawn" ];
  ]

(* Constructors whose result is shared mutable state when bound at
   module toplevel. Atomic.make / Mutex.create / Domain.DLS are
   mediators and deliberately absent. *)
let mutable_ctors =
  [
    [ "ref" ];
    [ "Hashtbl"; "create" ];
    [ "Queue"; "create" ];
    [ "Stack"; "create" ];
    [ "Buffer"; "create" ];
    [ "Array"; "make" ];
    [ "Array"; "init" ];
    [ "Array"; "create_float" ];
    [ "Bytes"; "create" ];
    [ "Bytes"; "make" ];
  ]

let writer_openers = [ [ "Checkpoint"; "create" ]; [ "Checkpoint"; "resume" ] ]

(* ------------------------------------------------------------------ *)
(* Analysis context                                                    *)
(* ------------------------------------------------------------------ *)

type ctx = {
  file : string;
  conf : config;
  lines : string array;
  mutable scope : Ast_scope.t;
  mutable mutables : string list;
      (* module-toplevel mutable bindings of this file *)
  mutable out : finding list;
}

let enabled ctx r =
  List.mem r ctx.conf.c_rules
  &&
  match (r : Ast_rules.rule) with
  | Naked_ids_access -> not ctx.conf.c_allow_ids
  | Decorated_key -> not ctx.conf.c_allow_decorated
  | Nondet_clock -> not ctx.conf.c_allow_clock
  | _ -> true

let raw_line ctx line =
  if line >= 1 && line <= Array.length ctx.lines then ctx.lines.(line - 1)
  else ""

let report ctx rule (loc : Location.t) =
  let line = loc.loc_start.pos_lnum in
  let col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol in
  if enabled ctx rule && not (contains (raw_line ctx line) Lint.allow_marker)
  then
    ctx.out <-
      {
        a_file = ctx.file;
        a_line = line;
        a_col = col;
        a_rule = rule;
        a_excerpt = String.trim (raw_line ctx line);
        a_engine = Ast;
      }
      :: ctx.out

(* ------------------------------------------------------------------ *)
(* Deep sub-expression queries                                         *)
(* ------------------------------------------------------------------ *)

(* All identifier occurrences anywhere under an expression. Used by
   rules that ask whether a subtree mentions a target path; candidate
   resolution uses the scope at the query site — inner opens in the
   subtree only widen what a later full visit sees, so the
   over-approximation stays one-sided. *)
let deep_idents e =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it ex ->
          (match ex.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident l -> acc := l.Location.txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.expr it ex);
    }
  in
  it.expr it e;
  List.rev !acc

let mentions sc e targets =
  List.exists
    (fun lid -> List.exists (fun t -> Ast_scope.matches sc lid t) targets)
    (deep_idents e)

let exception_case (c : Parsetree.case) =
  match c.pc_lhs.ppat_desc with Ppat_exception _ -> true | _ -> false

(* Is any part of [body] under an exception guard: a [Fun.protect], a
   [try], or a [match] with an [exception] case? Coarse by design —
   the rule warns about a shape, the guard search errs to silence. *)
let guarded sc body =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it ex ->
          (match ex.Parsetree.pexp_desc with
          | Pexp_try _ -> found := true
          | Pexp_match (_, cases) when List.exists exception_case cases ->
              found := true
          | Pexp_ident l when Ast_scope.matches sc l.txt [ "Fun"; "protect" ]
            ->
              found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr it ex);
    }
  in
  it.expr it body;
  !found

(* Free occurrences of toplevel-mutable names inside a function
   literal: names rebound anywhere inside the literal don't count, and
   a [Mutex.protect] application prunes its whole subtree (the state
   is mediated there). One report per name, at its first occurrence. *)
let closure_captures sc mutables fn =
  let bound = ref [] and caps = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.Parsetree.ppat_desc with
          | Ppat_var { txt; _ } -> bound := txt :: !bound
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
      expr =
        (fun it ex ->
          match ex.Parsetree.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident l; _ }, _)
            when Ast_scope.matches sc l.txt [ "Mutex"; "protect" ] ->
              ()
          | Pexp_ident { txt = Longident.Lident n; _ }
            when List.mem n mutables ->
              caps := (n, ex.pexp_loc) :: !caps
          | _ -> Ast_iterator.default_iterator.expr it ex);
    }
  in
  it.expr it fn;
  List.rev !caps
  |> List.filter (fun (n, _) -> not (List.mem n !bound))
  |> List.fold_left
       (fun acc (n, loc) ->
         if List.mem_assoc n acc then acc else (n, loc) :: acc)
       []
  |> List.rev |> List.map snd

let rec function_literal (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_constraint (e', _) -> function_literal e'
  | _ -> false

let last_component lid =
  match lid with
  | Longident.Lident s | Longident.Ldot (_, s) -> Some s
  | Longident.Lapply _ -> None

(* Payload projections, per rule. Structural [=] on an [ids] array is
   representation equality and that is the intended notion, so the
   comparison rule covers only [graph]/[labels] (same as the lexical
   rule); [Hashtbl.hash] is not isomorphism-invariant on any of the
   three. *)
let compared_projection (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_field (_, { txt; _ }) -> (
      match last_component txt with
      | Some ("labels" | "graph") -> true
      | _ -> false)
  | _ -> false

let hashed_projection (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_field (_, { txt; _ }) -> (
      match last_component txt with
      | Some ("labels" | "graph" | "ids") -> true
      | _ -> false)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Pass 1: module-toplevel mutable state                               *)
(* ------------------------------------------------------------------ *)

let rec unconstrained (e : Parsetree.expression) =
  match e.pexp_desc with Pexp_constraint (e', _) -> unconstrained e' | _ -> e

let ctor_path (e : Parsetree.expression) =
  match (unconstrained e).pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident l; _ }, _) -> (
      match Ast_scope.flatten l.txt with
      | Some p -> Some (Ast_scope.canonical p)
      | None -> None)
  | _ -> None

let collect_mutables str =
  let ctors = ref [] and records = ref [] and set_targets = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      structure_item =
        (fun it si ->
          (match si.Parsetree.pstr_desc with
          | Pstr_value (_, vbs) ->
              List.iter
                (fun (vb : Parsetree.value_binding) ->
                  match vb.pvb_pat.ppat_desc with
                  | Ppat_var { txt; _ } -> (
                      match ctor_path vb.pvb_expr with
                      | Some p when List.mem p mutable_ctors ->
                          ctors := txt :: !ctors
                      | _ -> (
                          match (unconstrained vb.pvb_expr).pexp_desc with
                          | Pexp_record _ -> records := txt :: !records
                          | _ -> ()))
                  | _ -> ())
                vbs
          | _ -> ());
          Ast_iterator.default_iterator.structure_item it si);
      expr =
        (fun it ex ->
          (match ex.Parsetree.pexp_desc with
          | Pexp_setfield
              ({ pexp_desc = Pexp_ident { txt = Longident.Lident n; _ }; _ },
               _, _) ->
              set_targets := n :: !set_targets
          | _ -> ());
          Ast_iterator.default_iterator.expr it ex);
    }
  in
  it.structure it str;
  !ctors @ List.filter (fun n -> List.mem n !set_targets) !records

(* ------------------------------------------------------------------ *)
(* Rule checks at a node                                               *)
(* ------------------------------------------------------------------ *)

let ident_rules ctx lid loc =
  let sc = ctx.scope in
  if Ast_scope.matches sc lid [ "Random"; "self_init" ] then
    report ctx Self_init loc;
  if
    List.exists (fun op -> Ast_scope.matches sc lid [ "Random"; op ])
      random_globals
  then report ctx Nondet_random loc;
  if List.exists (fun p -> Ast_scope.matches sc lid p) clock_paths then
    report ctx Nondet_clock loc

let apply_rules ctx (e : Parsetree.expression) f args =
  let sc = ctx.scope in
  let fid target =
    match f.Parsetree.pexp_desc with
    | Pexp_ident l -> Ast_scope.matches sc l.txt target
    | _ -> false
  in
  let positional =
    List.filter_map
      (function Asttypes.Nolabel, a -> Some a | _ -> None)
      args
  in
  if (fid [ "=" ] || fid [ "<>" ]) && List.exists compared_projection positional
  then report ctx Poly_compare e.pexp_loc;
  if
    fid [ "Hashtbl"; "hash" ]
    && (match positional with a :: _ -> hashed_projection a | [] -> false)
  then report ctx Poly_compare e.pexp_loc;
  if fid [ "Memo"; "create" ] then begin
    (* The identifier an argument evaluates to, looking through
       constraints and local opens — [~hash:(let open Hashtbl in
       hash)] denotes the banned path just as surely. *)
    let rec ident_under sc (ex : Parsetree.expression) =
      match ex.pexp_desc with
      | Pexp_ident l -> Some (sc, l.txt)
      | Pexp_constraint (ex', _) -> ident_under sc ex'
      | Pexp_open
          ({ popen_expr = { pmod_desc = Pmod_ident lid; _ }; _ }, ex') ->
          let sc =
            List.fold_left Ast_scope.open_module sc
              (Ast_scope.resolve sc lid.txt)
          in
          ident_under sc ex'
      | _ -> None
    in
    let is_ident ex targets =
      match ident_under sc ex with
      | Some (sc', lid) ->
          List.exists (fun t -> Ast_scope.matches sc' lid t) targets
      | None -> false
    in
    if
      List.exists
        (function
          | Asttypes.Labelled "hash", ex ->
              is_ident ex [ [ "Hashtbl"; "hash" ] ]
          | Asttypes.Labelled "equal", ex ->
              is_ident ex [ [ "=" ]; [ "compare" ] ]
          | _ -> false)
        args
    then report ctx Decorated_key e.pexp_loc
  end;
  if
    List.exists fid digest_sinks
    && List.exists (fun (_, a) -> mentions sc a hashtbl_iterators) args
  then report ctx Hashtbl_order e.pexp_loc;
  if List.exists fid spawners && ctx.mutables <> [] then
    List.iter
      (fun (_, a) ->
        if function_literal a then
          List.iter
            (fun loc -> report ctx Domain_race loc)
            (closure_captures sc ctx.mutables a))
      args

let let_rules ctx vbs body =
  let sc = ctx.scope in
  let opens_writer (vb : Parsetree.value_binding) =
    mentions sc vb.pvb_expr writer_openers
  in
  match List.find_opt opens_writer vbs with
  | Some vb ->
      if
        mentions sc body [ [ "Checkpoint"; "close" ] ]
        && not (guarded sc body)
      then report ctx Checkpoint_guard vb.pvb_loc
  | None -> ()

let check_expr ctx (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident l -> ident_rules ctx l.txt e.pexp_loc
  | Pexp_field (_, lid) -> (
      match last_component lid.txt with
      | Some "ids" -> report ctx Naked_ids_access lid.loc
      | _ -> ())
  | Pexp_apply (f, args) -> apply_rules ctx e f args
  | Pexp_let (_, vbs, body) -> let_rules ctx vbs body
  | _ -> ()

let pat_rules ctx (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_record (fields, _) ->
      List.iter
        (fun ((lid : _ Location.loc), _) ->
          match last_component lid.txt with
          | Some "ids" -> report ctx Naked_ids_access lid.loc
          | _ -> ())
        fields
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* The scope-threading walker                                          *)
(* ------------------------------------------------------------------ *)

let make_iterator ctx =
  let super = Ast_iterator.default_iterator in
  let with_scope f =
    let saved = ctx.scope in
    f ();
    ctx.scope <- saved
  in
  let bind_vbs vbs =
    List.iter
      (fun (vb : Parsetree.value_binding) ->
        ctx.scope <- Ast_scope.bind_pattern ctx.scope vb.pvb_pat)
      vbs
  in
  let do_open lid =
    (* Open every candidate reading of the module path (an open through
       an alias opens the alias's target). *)
    List.iter
      (fun p -> ctx.scope <- Ast_scope.open_module ctx.scope p)
      (Ast_scope.resolve ctx.scope lid)
  in
  let case (it : Ast_iterator.iterator) (c : Parsetree.case) =
    with_scope (fun () ->
        it.pat it c.pc_lhs;
        ctx.scope <- Ast_scope.bind_pattern ctx.scope c.pc_lhs;
        Option.iter (it.expr it) c.pc_guard;
        it.expr it c.pc_rhs)
  in
  let expr (it : Ast_iterator.iterator) (e : Parsetree.expression) =
    check_expr ctx e;
    match e.pexp_desc with
    | Pexp_let (rf, vbs, body) ->
        with_scope (fun () ->
            if rf = Asttypes.Recursive then bind_vbs vbs;
            List.iter
              (fun (vb : Parsetree.value_binding) ->
                it.pat it vb.pvb_pat;
                it.expr it vb.pvb_expr)
              vbs;
            if rf = Asttypes.Nonrecursive then bind_vbs vbs;
            it.expr it body)
    | Pexp_fun (_, default, pat, body) ->
        Option.iter (it.expr it) default;
        with_scope (fun () ->
            it.pat it pat;
            ctx.scope <- Ast_scope.bind_pattern ctx.scope pat;
            it.expr it body)
    | Pexp_function cases -> List.iter (case it) cases
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        it.expr it scrut;
        List.iter (case it) cases
    | Pexp_open
        ({ popen_expr = { pmod_desc = Pmod_ident lid; _ }; _ }, body) ->
        with_scope (fun () ->
            do_open lid.txt;
            it.expr it body)
    | Pexp_letmodule ({ txt = name; _ }, me, body) ->
        it.module_expr it me;
        with_scope (fun () ->
            (match name with
            | Some name ->
                let alias =
                  match me.pmod_desc with
                  | Pmod_ident l -> Ast_scope.flatten l.txt
                  | _ -> None
                in
                ctx.scope <- Ast_scope.bind_module ctx.scope ~name ~alias
            | None -> ());
            it.expr it body)
    | _ -> super.expr it e
  in
  let pat (it : Ast_iterator.iterator) p =
    pat_rules ctx p;
    super.pat it p
  in
  let structure_item (it : Ast_iterator.iterator)
      (si : Parsetree.structure_item) =
    match si.pstr_desc with
    | Pstr_open { popen_expr = { pmod_desc = Pmod_ident lid; _ }; _ } ->
        do_open lid.txt
    | Pstr_module mb ->
        (match mb.pmb_expr.pmod_desc with
        | Pmod_ident _ -> ()
        | _ ->
            let saved = ctx.scope in
            it.module_expr it mb.pmb_expr;
            ctx.scope <- saved);
        (match mb.pmb_name.txt with
        | Some name ->
            let alias =
              match mb.pmb_expr.pmod_desc with
              | Pmod_ident l -> Ast_scope.flatten l.txt
              | _ -> None
            in
            ctx.scope <- Ast_scope.bind_module ctx.scope ~name ~alias
        | None -> ())
    | Pstr_value (rf, vbs) ->
        if rf = Asttypes.Recursive then bind_vbs vbs;
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            it.pat it vb.pvb_pat;
            it.expr it vb.pvb_expr)
          vbs;
        if rf = Asttypes.Nonrecursive then bind_vbs vbs
    | _ -> super.structure_item it si
  in
  { super with expr; pat; structure_item; case }

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let of_lexical (f : Lint.finding) =
  {
    a_file = f.f_file;
    a_line = f.f_line;
    a_col = 0;
    a_rule = Ast_rules.of_lexical f.f_rule;
    a_excerpt = f.f_excerpt;
    a_engine = Lexical;
  }

let lexical_fallback ~config ~file text =
  Lint.scan_string ~file ~allow_decorated:config.c_allow_decorated
    ~allow_ids:config.c_allow_ids text
  |> List.map of_lexical
  |> List.filter (fun f -> List.mem f.a_rule config.c_rules)

let sort_findings fs =
  List.sort
    (fun a b ->
      match compare a.a_file b.a_file with
      | 0 -> (
          match compare a.a_line b.a_line with
          | 0 -> (
              match compare a.a_col b.a_col with
              | 0 -> compare a.a_rule b.a_rule
              | c -> c)
          | c -> c)
      | c -> c)
    fs

let parse_with parser ~file text =
  let lexbuf = Lexing.from_string text in
  Location.init lexbuf file;
  parser lexbuf

let scan_string ?(file = "<string>") ~config text =
  if Filename.check_suffix file ".mli" then
    (* Interfaces carry no expressions; parsing is validation, and the
       lexical rules still cover files the parser rejects. *)
    match parse_with Parse.interface ~file text with
    | _ -> []
    | exception _ -> lexical_fallback ~config ~file text
  else
    match parse_with Parse.implementation ~file text with
    | str ->
        let ctx =
          {
            file;
            conf = config;
            lines = Array.of_list (String.split_on_char '\n' text);
            scope = Ast_scope.initial;
            mutables = collect_mutables str;
            out = [];
          }
        in
        let it = make_iterator ctx in
        it.structure it str;
        sort_findings ctx.out
    | exception _ -> lexical_fallback ~config ~file text

let scan_file ?rules ?test_allow path =
  let config = config_for ?rules ?test_allow path in
  scan_string ~file:path ~config (Lint.read_file path)

let scan_tree ?rules ?test_allow roots =
  List.concat_map (scan_file ?rules ?test_allow) (Lint.source_files ~roots)

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d: [%s] %s" f.a_file f.a_line
    (Ast_rules.name f.a_rule) f.a_excerpt

(* ------------------------------------------------------------------ *)
(* Machine-readable output                                             *)
(* ------------------------------------------------------------------ *)

let finding_json f =
  Json.Obj
    [
      ("file", Json.String f.a_file);
      ("line", Json.Int f.a_line);
      ("col", Json.Int f.a_col);
      ("rule", Json.String (Ast_rules.name f.a_rule));
      ( "severity",
        Json.String (Ast_rules.severity_name (Ast_rules.severity f.a_rule)) );
      ( "engine",
        Json.String (match f.a_engine with Ast -> "ast" | Lexical -> "lexical")
      );
      ("excerpt", Json.String f.a_excerpt);
      ("help", Json.String (Ast_rules.help f.a_rule));
    ]

let sarif findings =
  let level r = Ast_rules.severity_name (Ast_rules.severity r) in
  let rules =
    List.map
      (fun r ->
        Json.Obj
          [
            ("id", Json.String (Ast_rules.name r));
            ("shortDescription", Json.Obj [ ("text", Json.String (Ast_rules.help r)) ]);
            ("defaultConfiguration", Json.Obj [ ("level", Json.String (level r)) ]);
          ])
      Ast_rules.all
  in
  let result f =
    Json.Obj
      [
        ("ruleId", Json.String (Ast_rules.name f.a_rule));
        ("level", Json.String (level f.a_rule));
        ( "message",
          Json.Obj
            [
              ( "text",
                Json.String
                  (Printf.sprintf "[%s] %s" (Ast_rules.name f.a_rule)
                     f.a_excerpt) );
            ] );
        ( "locations",
          Json.List
            [
              Json.Obj
                [
                  ( "physicalLocation",
                    Json.Obj
                      [
                        ( "artifactLocation",
                          Json.Obj [ ("uri", Json.String f.a_file) ] );
                        ( "region",
                          Json.Obj
                            [
                              ("startLine", Json.Int f.a_line);
                              ("startColumn", Json.Int (f.a_col + 1));
                            ] );
                      ] );
                ];
            ] );
      ]
  in
  Json.Obj
    [
      ("version", Json.String "2.1.0");
      ("$schema", Json.String "https://json.schemastore.org/sarif-2.1.0.json");
      ( "runs",
        Json.List
          [
            Json.Obj
              [
                ( "tool",
                  Json.Obj
                    [
                      ( "driver",
                        Json.Obj
                          [
                            ("name", Json.String "locald-analyze");
                            ("rules", Json.List rules);
                          ] );
                    ] );
                ("results", Json.List (List.map result findings));
              ];
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Baseline                                                            *)
(* ------------------------------------------------------------------ *)

module Baseline = struct
  type entry = { b_file : string; b_rule : string; b_excerpt : string }

  let of_json line j =
    let str k =
      match Json.member k j with
      | Some (Json.String s) -> s
      | _ ->
          failwith
            (Printf.sprintf "baseline line %d: missing string field %S" line k)
    in
    { b_file = str "file"; b_rule = str "rule"; b_excerpt = str "excerpt" }

  let load path =
    Lint.read_file path |> String.split_on_char '\n'
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
    |> List.map (fun (i, l) ->
           match Json.of_string l with
           | j -> of_json i j
           | exception Json.Parse_error msg ->
               failwith (Printf.sprintf "baseline line %d: %s" i msg))

  let matched e f =
    e.b_file = f.a_file
    && e.b_rule = Ast_rules.name f.a_rule
    && e.b_excerpt = f.a_excerpt

  let subtract entries findings =
    List.filter (fun f -> not (List.exists (fun e -> matched e f) entries))
      findings

  let entry_json f =
    Json.Obj
      [
        ("file", Json.String f.a_file);
        ("rule", Json.String (Ast_rules.name f.a_rule));
        ("excerpt", Json.String f.a_excerpt);
      ]

  let write path findings =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc
          "# locald analyze baseline: accepted findings, one JSON object per \
           line.\n";
        output_string oc
          "# Matching is by (file, rule, excerpt); line drift does not \
           invalidate entries.\n";
        List.iter
          (fun f -> output_string oc (Json.to_string (entry_json f) ^ "\n"))
          findings)
end
