open Locald_graph
open Locald_local
open Locald_runtime

type confirmation = {
  cf_instance : string;
  cf_method : string;
  cf_variance : Oblivious.witness option;
}

type witness = {
  w_instance : string;
  w_node : int;
  w_access : View.access;
  w_trace : Trace.t;
  w_confirmation : confirmation option;
}

type flag =
  | Radius_violation of {
      rv_instance : string;
      rv_node : int;
      rv_depth : int;
      rv_declared : int;
    }
  | Nondeterminism of { nd_instance : string; nd_node : int }

type verdict =
  | Certified_oblivious
  | Id_dependent of witness
  | Inconclusive of { covered : int; total : int; why : string }

type report = {
  rep_algorithm : string;
  rep_radius : int;
  rep_verdict : verdict;
  rep_views : int;
  rep_total : int;
  rep_degraded : int;
  rep_distinct_views : int;
  rep_events : int;
  rep_max_depth : int;
  rep_flags : flag list;
}

type confirm_method =
  | Confirm_exhaustive of int
  | Confirm_sampled of { regime : Ids.regime; trials : int; seed : int }

(* What tracing one view yields. Probes are produced by a [Pool.map]
   (slot [i] holds view [i]'s probe regardless of job count) and folded
   sequentially, so every aggregate below is deterministic. *)
type probe = {
  p_instance : string;
  p_node : int;
  p_first_input : View.access option;
  p_trace : Trace.t;
  p_nondet : bool;
}

let tag_no_ids name f x =
  try f x
  with View.No_ids msg -> raise (View.No_ids (name ^ ": " ^ msg))

(* Views actually traced (post-budget, post-fault-degradation) and
   provenance flags raised — the certifier's cost and signal volumes. *)
let c_probes = Telemetry.Counter.make "certify.probes"
let c_flags = Telemetry.Counter.make "certify.flags"

let certify ?pool ?(budget = 20_000) ?(slack = 0) ?plan ?confirm ?confirm_on
    ?memo (alg : ('a, bool) Algorithm.t) ~instances =
  if budget < 1 then invalid_arg "Analysis.certify: budget must be positive";
  if slack < 0 then invalid_arg "Analysis.certify: negative slack";
  Telemetry.span "analysis.certify" @@ fun () ->
  let horizon = alg.Algorithm.radius + slack in
  (* Probe-once memo: two nodes (possibly across instances) with equal
     decorated views — structure, labels and the concrete id decoration
     — trace identically for a pure decide, so the probe payload is
     keyed by the view and computed once per distinct decorated ball.
     Only exact keys are sound here: the trace of an id-reading decide
     can differ across decorations of the same order type, so
     [Order_type] deliberately does not coarsen this table. Off by
     default: within one instance every decorated ball is distinct (the
     probe ids are the global node numbers restricted to the ball), so
     the table only pays for itself when the instance list overlaps or
     repeats — the caller knows, we cannot. *)
  let table =
    match match memo with Some m -> m | None -> Memo.Off with
    | Memo.Off -> None
    | Memo.Exact_ids | Memo.Order_type ->
        Some
          (Memo.create
             ~hash:(View.fingerprint Memo.structural_hash)
             ~equal:(View.equal_repr Memo.structural_equal)
             ())
  in
  (* Degraded nodes first: a fault plan that leaves a node [Unknown]
     removes it from the coverage — we refuse to certify what we could
     not observe. *)
  let prepared =
    List.map
      (fun (iname, lg) ->
        let n = Labelled.order lg in
        let degraded =
          match plan with
          | None -> Array.make n false
          | Some plan ->
              Fault_runner.run_outputs ~plan alg lg ~ids:(Ids.sequential n)
              |> Array.map (fun o -> not (Fault_runner.decided o))
        in
        (iname, lg, degraded))
      instances
  in
  let total =
    List.fold_left (fun acc (_, lg, _) -> acc + Labelled.order lg) 0 prepared
  in
  let degraded_total =
    List.fold_left
      (fun acc (_, _, d) -> acc + Array.fold_left (fun a b -> if b then a + 1 else a) 0 d)
      0 prepared
  in
  (* Work items in (instance, node) order, capped by the budget. *)
  let items = ref [] and traced = ref 0 and budget_hit = ref false in
  List.iter
    (fun (iname, lg, degraded) ->
      let n = Labelled.order lg in
      let ids_arr = Array.init n Fun.id in
      for v = 0 to n - 1 do
        if not degraded.(v) then
          if !traced >= budget then budget_hit := true
          else begin
            incr traced;
            items := (iname, lg, ids_arr, v) :: !items
          end
      done)
    prepared;
  let items = Array.of_list (List.rev !items) in
  let decide = tag_no_ids alg.Algorithm.name alg.Algorithm.decide in
  let probe (iname, lg, ids_arr, v) =
    Telemetry.Counter.incr c_probes;
    let view = View.extract ~ids:ids_arr lg ~center:v ~radius:horizon in
    let payload () =
      (* The extracted view owns a fresh restricted id array: that array
         — and nothing else — carries the input assignment, so input
         provenance is physical equality with it. Anything the algorithm
         manufactures ([View.reassign_ids]) is a different array and
         classifies as synthetic. *)
      let input_arr =
        match view.View.ids with Some a -> a | None -> assert false
      in
      let input_ids a = a == input_arr in
      let (out1, t1), (out2, t2) = Trace.run_twice ~input_ids decide view in
      ( Trace.first_input_id_read t1,
        t1,
        out1 <> out2 || not (Trace.equal t1 t2) )
    in
    let first_input, trace, nondet =
      match table with
      | None -> payload ()
      | Some tbl -> Memo.find_or_compute tbl view payload
    in
    {
      p_instance = iname;
      p_node = v;
      p_first_input = first_input;
      p_trace = trace;
      p_nondet = nondet;
    }
  in
  let probes = Pool.map ?pool probe items in
  (* Sequential aggregation, first-in-node-order semantics. *)
  let flags = ref [] in
  Array.iter
    (fun p ->
      if p.p_trace.Trace.max_depth > alg.Algorithm.radius then
        flags :=
          Radius_violation
            {
              rv_instance = p.p_instance;
              rv_node = p.p_node;
              rv_depth = p.p_trace.Trace.max_depth;
              rv_declared = alg.Algorithm.radius;
            }
          :: !flags;
      if p.p_nondet then
        flags :=
          Nondeterminism { nd_instance = p.p_instance; nd_node = p.p_node }
          :: !flags)
    probes;
  Telemetry.Counter.add c_flags (List.length !flags);
  let first_reader =
    Array.fold_left
      (fun acc p ->
        match acc with
        | Some _ -> acc
        | None -> (
            match p.p_first_input with Some _ -> Some p | None -> None))
      None probes
  in
  let covered = Array.length probes in
  let verdict =
    match first_reader with
    | Some p ->
        let access = Option.get p.p_first_input in
        let confirmation =
          match confirm with
          | None -> None
          | Some m ->
              let cname, clg =
                match confirm_on with
                | Some c -> c
                | None -> (p.p_instance, List.assoc p.p_instance instances)
              in
              let cf_method, cf_variance =
                match m with
                | Confirm_exhaustive bound ->
                    ( Printf.sprintf "exhaustive<%d" bound,
                      Oblivious.find_variance_exhaustive ~bound alg clg )
                | Confirm_sampled { regime; trials; seed } ->
                    ( Printf.sprintf "sampled %dx" trials,
                      Oblivious.find_variance_sampled
                        ~rng:(Random.State.make [| seed |])
                        ~trials ~regime alg clg )
              in
              Some { cf_instance = cname; cf_method; cf_variance }
        in
        Id_dependent
          {
            w_instance = p.p_instance;
            w_node = p.p_node;
            w_access = access;
            w_trace = p.p_trace;
            w_confirmation = confirmation;
          }
    | None ->
        if !budget_hit then
          Inconclusive { covered; total; why = "view budget exhausted" }
        else if degraded_total > 0 then
          Inconclusive
            {
              covered;
              total;
              why =
                Printf.sprintf "%d node(s) degraded by the fault plan"
                  degraded_total;
            }
        else Certified_oblivious
  in
  {
    rep_algorithm = alg.Algorithm.name;
    rep_radius = alg.Algorithm.radius;
    rep_verdict = verdict;
    rep_views = covered;
    rep_total = total;
    rep_degraded = degraded_total;
    rep_distinct_views =
      (match table with
      | None -> covered
      | Some tbl -> (Memo.stats tbl).Memo.distinct);
    rep_events =
      Array.fold_left (fun acc p -> acc + Trace.total_events p.p_trace) 0 probes;
    rep_max_depth =
      Array.fold_left
        (fun acc p -> max acc p.p_trace.Trace.max_depth)
        (-1) probes;
    rep_flags = List.rev !flags;
  }

let certified r =
  match r.rep_verdict with Certified_oblivious -> true | _ -> false

let id_dependent r =
  match r.rep_verdict with Id_dependent _ -> true | _ -> false

let confirmed r =
  match r.rep_verdict with
  | Id_dependent { w_confirmation = Some c; _ } ->
      Some (Option.is_some c.cf_variance)
  | _ -> None

let verdict_name = function
  | Certified_oblivious -> "certified-oblivious"
  | Id_dependent _ -> "id-dependent"
  | Inconclusive _ -> "inconclusive"

let pp_flag ppf = function
  | Radius_violation { rv_instance; rv_node; rv_depth; rv_declared } ->
      Format.fprintf ppf
        "radius violation: %s node %d accessed depth %d beyond declared \
         radius %d"
        rv_instance rv_node rv_depth rv_declared
  | Nondeterminism { nd_instance; nd_node } ->
      Format.fprintf ppf "nondeterminism: %s node %d differs across two runs"
        nd_instance nd_node

let pp_confirmation ppf c =
  match c.cf_variance with
  | Some (w : Oblivious.witness) ->
      Format.fprintf ppf "; variance confirmed on %s at node %d (%s)"
        c.cf_instance w.Oblivious.node c.cf_method
  | None ->
      Format.fprintf ppf "; variance not found on %s (%s)" c.cf_instance
        c.cf_method

let pp_verdict ppf = function
  | Certified_oblivious -> Format.pp_print_string ppf "certified Id-oblivious"
  | Id_dependent w ->
      Format.fprintf ppf "Id-dependent: %s node %d, %a%a" w.w_instance w.w_node
        Trace.pp_access w.w_access
        (Format.pp_print_option pp_confirmation)
        w.w_confirmation
  | Inconclusive { covered; total; why } ->
      Format.fprintf ppf "inconclusive (%d/%d views traced; %s)" covered total
        why

let pp_report ppf r =
  Format.fprintf ppf "@[<v 2>%s (radius %d): %a@ views %d/%d%t; events %d; max depth %d"
    r.rep_algorithm r.rep_radius pp_verdict r.rep_verdict r.rep_views
    r.rep_total
    (fun ppf ->
      if r.rep_degraded > 0 then
        Format.fprintf ppf " (%d degraded)" r.rep_degraded)
    r.rep_events r.rep_max_depth;
  List.iter (fun f -> Format.fprintf ppf "@ %a" pp_flag f) r.rep_flags;
  Format.fprintf ppf "@]"
