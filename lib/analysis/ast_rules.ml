type rule =
  | Poly_compare
  | Naked_ids_access
  | Self_init
  | Decorated_key
  | Domain_race
  | Nondet_random
  | Nondet_clock
  | Hashtbl_order
  | Checkpoint_guard

type severity = Error | Warning

let all =
  [
    Poly_compare; Naked_ids_access; Self_init; Decorated_key; Domain_race;
    Nondet_random; Nondet_clock; Hashtbl_order; Checkpoint_guard;
  ]

let name = function
  | Poly_compare -> "poly-compare"
  | Naked_ids_access -> "naked-ids-access"
  | Self_init -> "self-init"
  | Decorated_key -> "decorated-key"
  | Domain_race -> "domain-race"
  | Nondet_random -> "nondet-random"
  | Nondet_clock -> "nondet-clock"
  | Hashtbl_order -> "hashtbl-order"
  | Checkpoint_guard -> "checkpoint-guard"

let of_name s = List.find_opt (fun r -> name r = s) all

let severity = function
  | Hashtbl_order | Checkpoint_guard -> Warning
  | Poly_compare | Naked_ids_access | Self_init | Decorated_key | Domain_race
  | Nondet_random | Nondet_clock ->
      Error

let severity_name = function Error -> "error" | Warning -> "warning"

let help = function
  | Poly_compare | Naked_ids_access | Self_init | Decorated_key as r ->
      (* The ported rules keep the lexical help text — same contract,
         sturdier detection. *)
      Lint.rule_help
        (match r with
        | Poly_compare -> Lint.Poly_compare
        | Naked_ids_access -> Lint.Naked_ids_access
        | Self_init -> Lint.Self_init
        | _ -> Lint.Decorated_key)
  | Domain_race ->
      "module-toplevel mutable state captured in a closure passed to \
       Pool.map/Domain.spawn; mediate with Atomic, Mutex.protect or \
       Domain-local state, or thread the state through the fan-out"
  | Nondet_random ->
      "global-state Random operation; thread an explicit seeded \
       Random.State instead"
  | Nondet_clock ->
      "raw wall-clock read; use Timing.now (monotonic durations) or \
       Timing.wall (calendar stamps) from lib/runtime/timing.ml"
  | Hashtbl_order ->
      "Hashtbl iteration feeding a digest or checkpoint record leaks \
       unspecified table order into a pinned result; fold into a \
       sorted list first"
  | Checkpoint_guard ->
      "work between Checkpoint open and close is not exception-safe; \
       wrap it in Fun.protect ~finally:(fun () -> Checkpoint.close w)"

let lexical = function
  | Poly_compare -> Some Lint.Poly_compare
  | Naked_ids_access -> Some Lint.Naked_ids_access
  | Self_init -> Some Lint.Self_init
  | Decorated_key -> Some Lint.Decorated_key
  | Domain_race | Nondet_random | Nondet_clock | Hashtbl_order
  | Checkpoint_guard ->
      None

let of_lexical = function
  | Lint.Poly_compare -> Poly_compare
  | Lint.Naked_ids_access -> Naked_ids_access
  | Lint.Self_init -> Self_init
  | Lint.Decorated_key -> Decorated_key
