type t = {
  opens : string list list;
      (* canonical paths of opened modules, innermost first *)
  modules : (string * string list option) list;
      (* module aliases; [None] marks a local definition that shadows *)
  values : string list;  (* value names shadowed by local bindings *)
}

let initial = { opens = []; modules = []; values = [] }

let is_library_wrapper m =
  String.length m > 7 && String.sub m 0 7 = "Locald_"

let rec canonical = function
  | "Stdlib" :: rest -> canonical rest
  | m :: rest when is_library_wrapper m -> canonical rest
  | path -> path

let open_module t path = { t with opens = canonical path :: t.opens }

let bind_module t ~name ~alias =
  let alias = Option.map canonical alias in
  { t with modules = (name, alias) :: t.modules }

let bind_value t name = { t with values = name :: t.values }

let rec pattern_vars acc (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Ppat_var { txt; _ } -> txt :: acc
  | Ppat_alias (q, { txt; _ }) -> pattern_vars (txt :: acc) q
  | Ppat_tuple ps | Ppat_array ps ->
      List.fold_left pattern_vars acc ps
  | Ppat_construct (_, Some (_, q))
  | Ppat_variant (_, Some q)
  | Ppat_constraint (q, _)
  | Ppat_lazy q
  | Ppat_exception q
  | Ppat_open (_, q) ->
      pattern_vars acc q
  | Ppat_record (fields, _) ->
      List.fold_left (fun acc (_, q) -> pattern_vars acc q) acc fields
  | Ppat_or (a, b) -> pattern_vars (pattern_vars acc a) b
  | _ -> acc

let bind_pattern t p =
  { t with values = pattern_vars [] p @ t.values }

(* Longident.flatten raises on applicative paths (F(X).t); the rules
   never target those, so treat them as unresolvable. *)
let flatten lid =
  let rec go acc = function
    | Longident.Lident s -> Some (s :: acc)
    | Longident.Ldot (p, s) -> go (s :: acc) p
    | Longident.Lapply _ -> None
  in
  go [] lid

let resolve t lid =
  match flatten lid with
  | None | Some [] -> []
  | Some [ x ] ->
      if List.mem x t.values then []
      else [ x ] :: List.map (fun p -> p @ [ x ]) t.opens
  | Some (m :: rest as comps) -> (
      match List.assoc_opt m t.modules with
      | Some None -> []  (* a local module shadows the canonical one *)
      | Some (Some p) -> [ canonical (p @ rest) ]
      | None ->
          (* As written, plus the reading through each open in scope
             (open Locald_runtime; Memo.create). *)
          canonical comps
          :: List.map (fun p -> canonical (p @ comps)) t.opens)

let matches t lid target =
  List.exists (fun c -> c = target) (resolve t lid)
