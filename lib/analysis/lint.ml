type rule = Poly_compare | Naked_ids_access | Self_init | Decorated_key

type finding = {
  f_file : string;
  f_line : int;
  f_rule : rule;
  f_excerpt : string;
}

let rule_name = function
  | Poly_compare -> "poly-compare"
  | Naked_ids_access -> "naked-ids-access"
  | Self_init -> "self-init"
  | Decorated_key -> "decorated-key"

let rule_help = function
  | Poly_compare ->
      "structural =/<>/Hashtbl.hash on a Graph.t/View.t/Labelled.t payload; \
       use Graph.equal, Iso.views_isomorphic, Iso.view_signature or a Canon \
       key"
  | Naked_ids_access ->
      ".ids field access bypasses the access monitor; use \
       View.ids/View.id/View.center_id"
  | Self_init ->
      "nondeterministic RNG seeding; thread an explicit Random.State instead"
  | Decorated_key ->
      "raw Hashtbl.hash / polymorphic equality as a decide-once memo key \
       function outside lib/runtime; use Memo.hash_node_ids/equal_node_ids, \
       View.fingerprint/equal_repr or a Canon key (Memo.structural_hash / \
       structural_equal for label components)"

(* The banned tokens are assembled by concatenation so that this file
   does not flag itself when the tree scan reaches lib/analysis. *)
let self_init_token = "Random." ^ "self_init"
let hash_token = "Hashtbl." ^ "hash"
let allow_marker = "locald-lint:" ^ " allow"

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(* Substring search: index of the first occurrence of [sub] in [line]
   at or after [from], or -1. *)
let find_sub line sub from =
  let n = String.length line and m = String.length sub in
  if m = 0 then from
  else begin
    let res = ref (-1) and i = ref from in
    while !res < 0 && !i + m <= n do
      if String.sub line !i m = sub then res := !i else incr i
    done;
    !res
  end

let contains line sub = find_sub line sub 0 >= 0

(* ------------------------------------------------------------------ *)
(* Comment and string masking                                          *)
(* ------------------------------------------------------------------ *)

(* Lexer state carried across lines: OCaml comments nest, and string
   literals span lines via backslash-newline continuations. *)
type lex_state = { depth : int; in_str : bool }

let initial_state = { depth = 0; in_str = false }

(* Blank out comment text and string-literal contents so the rules see
   only code: a banned token inside a doc comment or a help string is
   prose, not a use. A string literal inside a comment still delimits
   (a close-comment sequence inside it does not end the comment), so
   both states are tracked together. *)
let mask_code st line =
  let n = String.length line in
  let buf = Bytes.of_string line in
  let blank i = Bytes.set buf i ' ' in
  let d = ref st.depth and in_str = ref st.in_str in
  let i = ref 0 in
  while !i < n do
    let c = line.[!i] in
    if !in_str then begin
      blank !i;
      if c = '\\' && !i + 1 < n then begin
        blank (!i + 1);
        i := !i + 2
      end
      else begin
        if c = '"' then in_str := false;
        incr i
      end
    end
    else if
      c = '"'
      && not (!i > 0 && line.[!i - 1] = '\'' && !i + 1 < n && line.[!i + 1] = '\'')
    then begin
      (* Opening quote (but not the char literal '"'). *)
      if !d > 0 then blank !i;
      in_str := true;
      incr i
    end
    else if c = '(' && !i + 1 < n && line.[!i + 1] = '*' then begin
      blank !i;
      blank (!i + 1);
      incr d;
      i := !i + 2
    end
    else if !d > 0 && c = '*' && !i + 1 < n && line.[!i + 1] = ')' then begin
      blank !i;
      blank (!i + 1);
      decr d;
      i := !i + 2
    end
    else begin
      if !d > 0 then blank !i;
      incr i
    end
  done;
  (Bytes.to_string buf, { depth = !d; in_str = !in_str })

(* Parse the dotted identifier path starting at [i]; returns the
   position after it and the list of components (empty if none). *)
let dotted_path line i =
  let n = String.length line in
  let comps = ref [] and j = ref i in
  let continue = ref true in
  while !continue do
    let start = !j in
    while !j < n && is_ident_char line.[!j] do
      incr j
    done;
    if !j > start then begin
      comps := String.sub line start (!j - start) :: !comps;
      if !j < n && line.[!j] = '.' && !j + 1 < n && is_ident_char line.[!j + 1]
      then incr j
      else continue := false
    end
    else continue := false
  done;
  (!j, List.rev !comps)

let last = function [] -> None | l -> Some (List.nth l (List.length l - 1))

let payload_field = function
  | Some ("labels" | "graph" | "ids") -> true
  | Some _ | None -> false

(* Hashtbl.hash applied (possibly through parentheses) to a projection
   of a structural payload: `Hashtbl.hash view.View.labels`,
   `Hashtbl.hash (g.Labelled.graph)`. Passing Hashtbl.hash as a hash
   function for *labels* (`Iso.view_signature Hashtbl.hash v`) is
   fine and does not match: the argument path has no payload field. *)
let poly_hash_at line i =
  let n = String.length line in
  let j = ref (i + String.length hash_token) in
  while !j < n && (line.[!j] = ' ' || line.[!j] = '(') do
    incr j
  done;
  let _, comps = dotted_path line !j in
  List.length comps >= 2 && payload_field (last comps)

let rec any_occurrence line token from pred =
  match find_sub line token from with
  | -1 -> false
  | i -> pred i || any_occurrence line token (i + 1) pred

(* `....graph = ` / `....labels <> `: structural comparison of a payload
   projection. Record-literal bindings (`{ g = view.View.graph; ... }`)
   put the projection on the *right* of the `=` and do not match. *)
let poly_compare_at line i =
  (* [i] points at the '.' of ".graph"/".labels"; find the end of the
     field, require a word boundary, skip spaces, require =/<> (but not
     == or =>). *)
  let n = String.length line in
  let j = ref (i + 1) in
  while !j < n && is_ident_char line.[!j] do
    incr j
  done;
  let k = ref !j in
  while !k < n && line.[!k] = ' ' do
    incr k
  done;
  if !k >= n then false
  else if line.[!k] = '=' then not (!k + 1 < n && (line.[!k + 1] = '=' || line.[!k + 1] = '>'))
  else !k + 1 < n && line.[!k] = '<' && line.[!k + 1] = '>'

let poly_compare_hit line =
  let n = String.length line in
  let check field =
    let token = "." ^ field in
    any_occurrence line token 0 (fun i ->
        let after = i + String.length token in
        (after >= n || not (is_ident_char line.[after]))
        && poly_compare_at line i)
  in
  check "graph" || check "labels"

(* A `.ids` projection: walk back over the dotted path; it is a field
   access (not the accessor `View.ids view` or a qualified
   `Locald_graph.View.ids`) when the path's head component is a
   lowercase value or a closing parenthesis. *)
let naked_ids_at line i =
  let after = i + 4 in
  let n = String.length line in
  (after >= n || not (is_ident_char line.[after]))
  &&
  (* walk back to the start of the dotted path *)
  let j = ref i in
  let continue = ref true in
  while !continue && !j > 0 do
    let c = line.[!j - 1] in
    if is_ident_char c || c = '.' then decr j else continue := false
  done;
  if !j = i then (* bare ".ids" after e.g. ')' *)
    i > 0 && line.[i - 1] = ')'
  else
    let head_end = ref !j in
    while !head_end < i && line.[!head_end] <> '.' do
      incr head_end
    done;
    !head_end > !j
    &&
    let c = line.[!j] in
    c >= 'a' && c <= 'z' || c = '_'

let naked_ids_hit line =
  any_occurrence line (".ids") 0 (fun i -> naked_ids_at line i)

(* ------------------------------------------------------------------ *)
(* Decorated-key rule                                                  *)
(* ------------------------------------------------------------------ *)

(* A memo table over decorated keys constructed with the polymorphic
   primitives as key functions: `Memo.create ~hash:Hashtbl.hash ...` or
   `~equal:( = )`. The memo's hash contract must stay mediated by
   lib/runtime (Memo.hash_node_ids, View.fingerprint, Canon keys);
   passing Hashtbl.hash as a *label* hash to a mediator
   (`~hash:(View.fingerprint Memo.structural_hash)`) has a non-Hashtbl
   path head and does not match. *)
let memo_create_token = "Memo." ^ "create"

let skip_open line i =
  let n = String.length line in
  let j = ref i in
  while !j < n && (line.[!j] = ' ' || line.[!j] = '(') do
    incr j
  done;
  !j

let direct_poly_hash_arg line i =
  let j = skip_open line i in
  match dotted_path line j with
  | _, [ "Hashtbl"; "hash" ] | _, [ "Stdlib"; "Hashtbl"; "hash" ] -> true
  | _ -> false

let direct_poly_equal_arg line i =
  let j = skip_open line i in
  let n = String.length line in
  if j < n && line.[j] = '=' then true
  else
    match dotted_path line j with
    | _, [ "compare" ] | _, [ "Stdlib"; "compare" ] -> true
    | _ -> false

let decorated_key_hit line =
  contains line memo_create_token
  && (any_occurrence line "~hash:" 0 (fun i ->
          direct_poly_hash_arg line (i + String.length "~hash:"))
     || any_occurrence line "~equal:" 0 (fun i ->
            direct_poly_equal_arg line (i + String.length "~equal:")))

(* Rule matching on a line already stripped of comments and string
   contents. The allow marker is checked on the RAW line — it lives in
   a comment by design. *)
let rules_on ~allow_ids ~allow_decorated masked =
  let hits = ref [] in
  if contains masked self_init_token then hits := Self_init :: !hits;
  if
    any_occurrence masked hash_token 0 (fun i -> poly_hash_at masked i)
    || poly_compare_hit masked
  then hits := Poly_compare :: !hits;
  if (not allow_ids) && naked_ids_hit masked then
    hits := Naked_ids_access :: !hits;
  if (not allow_decorated) && decorated_key_hit masked then
    hits := Decorated_key :: !hits;
  List.rev !hits

let scan_line ?(allow_decorated = false) ~allow_ids line =
  if contains line allow_marker then []
  else
    let masked, _ = mask_code initial_state line in
    rules_on ~allow_ids ~allow_decorated masked

let scan_string ?(file = "<string>") ?(allow_decorated = false) ~allow_ids text =
  let findings = ref [] in
  let state = ref initial_state in
  List.iteri
    (fun i line ->
      let masked, state' = mask_code !state line in
      state := state';
      if not (contains line allow_marker) then
        List.iter
          (fun rule ->
            findings :=
              { f_file = file; f_line = i + 1; f_rule = rule; f_excerpt = String.trim line }
              :: !findings)
          (rules_on ~allow_ids ~allow_decorated masked))
    (String.split_on_char '\n' text);
  List.rev !findings

let ids_allowed_for path =
  (* Normalise separators defensively; the repo is built on one OS but
     paths can arrive with either. *)
  let norm = String.map (fun c -> if c = '\\' then '/' else c) path in
  let has sub = find_sub norm sub 0 >= 0 in
  has "lib/graph" || has "lib/analysis"

let decorated_allowed_for path =
  let norm = String.map (fun c -> if c = '\\' then '/' else c) path in
  find_sub norm "lib/runtime" 0 >= 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan_file path =
  scan_string ~file:path
    ~allow_decorated:(decorated_allowed_for path)
    ~allow_ids:(ids_allowed_for path) (read_file path)

let source_file path =
  Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"

let skip_dir name =
  name = "_build" || name = ".git" || name = "_opam" || name = "node_modules"

let rec collect acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if skip_dir entry then acc
           else collect acc (Filename.concat path entry))
         acc
  else if source_file path then path :: acc
  else acc

let source_files ~roots = List.fold_left collect [] roots |> List.rev
let scan_tree ~roots = List.concat_map scan_file (source_files ~roots)

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d: [%s] %s" f.f_file f.f_line (rule_name f.f_rule)
    f.f_excerpt
