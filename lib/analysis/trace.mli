(** Access traces: what a local algorithm actually read of its view.

    [run] executes one decision under an installed {!Locald_graph.View}
    monitor and returns the recorded event stream together with
    aggregate counts. The trace distinguishes {e input} identifier
    reads (the id array carries the run's input assignment — the reads
    that make an algorithm Id-dependent) from {e synthetic} ones (ids
    the algorithm manufactured itself, e.g. the simulation [A*]
    re-assigning ids before re-running its base decider). This
    provenance split is what lets [A*] certify as Id-oblivious even
    though its inner decider reads identifiers on every call. *)

open Locald_graph

type t = {
  events : View.access list;  (** in emission order *)
  input_id_reads : int;       (** single-id reads with input provenance *)
  input_bulk_reads : int;     (** whole-array reads with input provenance *)
  synthetic_id_reads : int;   (** id reads (single or bulk) of synthetic arrays *)
  label_reads : int;
  structure_reads : int;
  max_depth : int;            (** deepest per-node access; [-1] if none *)
}

val run : input_ids:(int array -> bool) -> ('v -> 'o) -> 'v -> 'o * t
(** [run ~input_ids f v] evaluates [f v] under a monitor whose
    provenance classifier is [input_ids], and returns the result with
    the trace. Exceptions from [f] propagate (the monitor is
    uninstalled first). *)

val run_twice :
  input_ids:(int array -> bool) -> ('v -> 'o) -> 'v -> ('o * t) * ('o * t)
(** [run_twice ~input_ids f v] is [run] applied twice — the
    nondeterminism double-run of certification — under a single
    installed monitor, so the monitor's per-view distance memo is
    computed once. Each run gets its own event stream. *)

val reads_input_ids : t -> bool
(** Did the decision read the input assignment at all? *)

val first_input_id_read : t -> View.access option
(** The earliest event witnessing an input identifier read. *)

val total_events : t -> int

val equal : t -> t -> bool
(** Structural equality of event streams — two runs of a
    deterministic decision on the same view must compare equal. *)

val pp_access : Format.formatter -> View.access -> unit
val pp : Format.formatter -> t -> unit
