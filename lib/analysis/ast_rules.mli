(** The rule families of the AST analysis engine ([locald analyze]).

    The first four are AST ports of the lexical {!Lint} rules — same
    names, same semantics, but grounded in the Parsetree: string and
    comment masking become unnecessary (constants are constants), and
    resolution is scope-aware ({!Ast_scope}) instead of substring
    matching. The remaining families are only expressible with an AST:

    - {!Domain_race} — module-toplevel mutable state (a [ref],
      [Hashtbl.create], [Queue]/[Buffer]/[Stack], an [Array.make], or
      a record later mutated with [<-]) captured inside a function
      literal passed to [Pool.map]/[Pool.map_list]/[Pool.map_reduce]/
      [Domain.spawn] without a [Mutex.protect] mediator. Such captures
      race across domains and void the byte-identical-at-any-[--jobs]
      contract. [Atomic.make]/[Mutex.create]/[Domain.DLS] bindings are
      mediators, not findings.
    - {!Nondet_random} — the global-state [Random] operations
      ([Random.int], [bool], [float], [bits], [full_int], ...): their
      hidden state makes results depend on call order. Thread an
      explicit seeded [Random.State] (never flagged) instead.
    - {!Nondet_clock} — [Sys.time]/[Unix.gettimeofday]/[Unix.time]
      outside [lib/runtime/timing.ml]: wall-clock reads are
      nondeterministic inputs; go through [Timing.now]/[Timing.wall],
      which centralise the monotonic-vs-calendar distinction.
    - {!Hashtbl_order} — a [Hashtbl.fold]/[Hashtbl.iter] application
      inside an argument of a digest or checkpoint sink
      ([Digest.string]/[bytes]/[substring], [Shard.result_digest],
      [Checkpoint.append]): hash-table iteration order is
      unspecified, so the folded value leaks it into a pinned digest.
    - {!Checkpoint_guard} — a [let w = Checkpoint.create/resume ... in
      body] whose body reaches [Checkpoint.close] with no [Fun.protect],
      [try], or exception-matching [match] guarding the work between:
      an exception mid-body leaks the writer and loses its tail. *)

type rule =
  | Poly_compare
  | Naked_ids_access
  | Self_init
  | Decorated_key
  | Domain_race
  | Nondet_random
  | Nondet_clock
  | Hashtbl_order
  | Checkpoint_guard

type severity = Error | Warning

val all : rule list

val name : rule -> string
(** Kebab-case rule id, e.g. ["domain-race"]. The four ported rules
    keep their lexical names. *)

val of_name : string -> rule option

val severity : rule -> severity
(** [Hashtbl_order] and [Checkpoint_guard] are [Warning] (they flag a
    structural risk, not a certain defect); every other rule is
    [Error]. Both severities fail the [analyze] gate; severity is
    reporting metadata (text/JSON/SARIF level). *)

val severity_name : severity -> string

val help : rule -> string
(** One-line rationale and the mediated alternative. *)

val lexical : rule -> Lint.rule option
(** The lexical counterpart for the ported rules — how fallback
    findings from {!Lint} map into this rule space, and what the
    superset property quantifies over. *)

val of_lexical : Lint.rule -> rule
