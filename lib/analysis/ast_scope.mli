(** Open/alias-aware name resolution for the AST analysis engine.

    The Parsetree carries names {e as written}; a rule that matches the
    literal path ["Hashtbl.hash"] would miss [let open Hashtbl in hash]
    and falsely fire on a locally shadowed [Random]. This module keeps
    the small amount of scope the rules need — opened modules, module
    aliases, and value bindings that shadow bare names — and resolves a
    {!Longident.t} to the set of {e canonical} dotted paths it could
    denote.

    Resolution is an over-approximation by design (we have no module
    signatures, so [open Hashtbl] makes {e every} bare name a candidate
    member of [Hashtbl]); rules only ever ask whether a specific banned
    path is among the candidates, so the over-approximation errs
    towards reporting. Shadowing errs the other way: a value or module
    binding of the same name removes the canonical reading entirely.

    Canonical paths are normalised: a leading [Stdlib] is dropped
    ([Stdlib.Hashtbl.hash] = [Hashtbl.hash]), as is any leading
    [Locald_*] library wrapper ([Locald_runtime.Memo.create] =
    [Memo.create]). *)

type t

val initial : t
(** File scope: nothing opened, nothing shadowed. *)

val open_module : t -> string list -> t
(** [open_module t path] records [open P] — bare names and qualified
    heads gain [P.]-prefixed candidates. Innermost opens win no
    priority; all are candidates. *)

val bind_module : t -> name:string -> alias:string list option -> t
(** [bind_module t ~name ~alias] records [module N = P]
    ([alias = Some p], making [N.x] resolve through [p]) or a local
    module definition [module N = struct .. end] ([alias = None],
    which {e shadows} any canonical module named [N]). *)

val bind_value : t -> string -> t
(** Shadow a bare value name: [resolve] no longer offers canonical
    readings for it. *)

val bind_pattern : t -> Parsetree.pattern -> t
(** {!bind_value} every variable the pattern binds. *)

val resolve : t -> Longident.t -> string list list
(** All canonical candidate paths for an identifier as written, each
    as its component list. Empty when the name is locally shadowed (or
    is an applicative path, which the rules never target). *)

val matches : t -> Longident.t -> string list -> bool
(** [matches t lid target]: could [lid] denote canonical path
    [target]? *)

val canonical : string list -> string list
(** The normalisation applied to every candidate (drop leading
    [Stdlib] and [Locald_*] components). Exposed for tests. *)

val flatten : Longident.t -> string list option
(** Components of a dotted identifier as written; [None] for
    applicative paths ([F(X).t]), which no rule targets. *)
