open Locald_graph

type t = {
  events : View.access list;
  input_id_reads : int;
  input_bulk_reads : int;
  synthetic_id_reads : int;
  label_reads : int;
  structure_reads : int;
  max_depth : int;
}

let of_events events =
  let input_id_reads = ref 0
  and input_bulk_reads = ref 0
  and synthetic_id_reads = ref 0
  and label_reads = ref 0
  and structure_reads = ref 0
  and max_depth = ref (-1) in
  let depth d = if d > !max_depth then max_depth := d in
  List.iter
    (fun (ev : View.access) ->
      match ev with
      | View.Id_read { depth = d; input; _ } ->
          if input then incr input_id_reads else incr synthetic_id_reads;
          depth d
      | View.Ids_read { input } ->
          if input then incr input_bulk_reads else incr synthetic_id_reads
      | View.Label_read { depth = d; _ } ->
          incr label_reads;
          depth d
      | View.Structure_read { node; depth = d } ->
          incr structure_reads;
          (match node with Some _ -> depth d | None -> ()))
    events;
  {
    events;
    input_id_reads = !input_id_reads;
    input_bulk_reads = !input_bulk_reads;
    synthetic_id_reads = !synthetic_id_reads;
    label_reads = !label_reads;
    structure_reads = !structure_reads;
    max_depth = !max_depth;
  }

let run ~input_ids f v =
  let acc = ref [] in
  let mon = { View.input_ids; emit = (fun ev -> acc := ev :: !acc) } in
  let out = View.with_monitor mon (fun () -> f v) in
  (out, of_events (List.rev !acc))

(* Two runs under ONE installed monitor, each with its own event
   accumulator. Equivalent to two [run] calls, but the monitor's
   distance memo (the per-view BFS) is shared between the runs —
   certification's nondeterminism double-run costs one BFS, not two. *)
let run_twice ~input_ids f v =
  let acc1 = ref [] and acc2 = ref [] in
  let current = ref acc1 in
  let mon =
    { View.input_ids; emit = (fun ev -> !current := ev :: !(!current)) }
  in
  View.with_monitor mon (fun () ->
      let out1 = f v in
      current := acc2;
      let out2 = f v in
      ((out1, of_events (List.rev !acc1)), (out2, of_events (List.rev !acc2))))

let reads_input_ids t = t.input_id_reads > 0 || t.input_bulk_reads > 0

let first_input_id_read t =
  List.find_opt
    (fun (ev : View.access) ->
      match ev with
      | View.Id_read { input; _ } | View.Ids_read { input } -> input
      | View.Label_read _ | View.Structure_read _ -> false)
    t.events

let total_events t = List.length t.events

let equal a b = a.events = b.events

let pp_access ppf (ev : View.access) =
  match ev with
  | View.Id_read { node; depth; id; input } ->
      Format.fprintf ppf "id-read(node %d, depth %d, id %d, %s)" node depth id
        (if input then "input" else "synthetic")
  | View.Ids_read { input } ->
      Format.fprintf ppf "ids-read(all, %s)"
        (if input then "input" else "synthetic")
  | View.Label_read { node; depth } ->
      Format.fprintf ppf "label-read(node %d, depth %d)" node depth
  | View.Structure_read { node = None; depth = _ } ->
      Format.fprintf ppf "structure-read(whole view)"
  | View.Structure_read { node = Some v; depth } ->
      Format.fprintf ppf "structure-read(node %d, depth %d)" v depth

let pp ppf t =
  Format.fprintf ppf
    "@[<v 2>trace: %d events (id %d input / %d synthetic / %d bulk; label %d; \
     structure %d; max depth %d)"
    (total_events t) t.input_id_reads t.synthetic_id_reads t.input_bulk_reads
    t.label_reads t.structure_reads t.max_depth;
  List.iter (fun ev -> Format.fprintf ppf "@ %a" pp_access ev) t.events;
  Format.fprintf ppf "@]"
