(** The AST-grounded static analysis engine behind [locald analyze].

    Where {!Lint} matches token shapes on masked lines, this engine
    parses each source with the compiler's own parser
    ([Parse.implementation]/[Parse.interface]), walks the Parsetree
    with [Ast_iterator], and resolves identifiers through an
    open/alias-aware scope ({!Ast_scope}). Rules therefore fire on
    what a name {e denotes}, not on what it looks like: [let open
    Hashtbl in hash] is caught, a locally shadowed [Random] is not,
    and string/comment masking is unnecessary because literals are
    constants in the tree.

    Pipeline per file: read → parse → scope-threaded visit → rule
    checks at expression/pattern nodes → findings sorted by position.
    A file that fails to parse degrades to the lexical {!Lint} scanner
    (findings tagged {!Lexical}), so the gate never goes blind on a
    broken tree. The rule set is {!Ast_rules.all}; path policies
    ([lib/graph]/[lib/analysis] own their representation,
    [lib/runtime] owns key functions, [lib/runtime/timing.ml] owns the
    clocks) and the allow marker are shared with {!Lint}. *)

type engine = Ast | Lexical

type finding = {
  a_file : string;
  a_line : int;  (** 1-based *)
  a_col : int;  (** 0-based, editor convention *)
  a_rule : Ast_rules.rule;
  a_excerpt : string;  (** the offending line, trimmed *)
  a_engine : engine;  (** {!Lexical} only for parse-failure fallback *)
}

type config = {
  c_allow_ids : bool;  (** disable {!Ast_rules.Naked_ids_access} *)
  c_allow_decorated : bool;  (** disable {!Ast_rules.Decorated_key} *)
  c_allow_clock : bool;  (** disable {!Ast_rules.Nondet_clock} *)
  c_rules : Ast_rules.rule list;  (** rules to run *)
}

val config_for :
  ?rules:Ast_rules.rule list ->
  ?test_allow:Ast_rules.rule list ->
  string ->
  config
(** The policy for a path: [c_allow_ids] from {!Lint.ids_allowed_for},
    [c_allow_decorated] from {!Lint.decorated_allowed_for},
    [c_allow_clock] iff the path is [lib/runtime/timing.ml]. [rules]
    (default {!Ast_rules.all}) selects the families to run;
    [test_allow] (default none) lists rules additionally permitted for
    paths under [test/] — the knob for deliberately-hostile test
    fixtures. *)

val under_test : string -> bool
(** Is the path inside a [test] directory? (What [test_allow] and the
    CLI [--allow-test] knob key on.) *)

val scan_string : ?file:string -> config:config -> string -> finding list
(** Analyse one source text. [.mli] files (by [file] suffix) are
    parsed as interfaces — they contain no expressions, so parsing is
    validation. On a parse failure the text is rescanned with the
    lexical {!Lint} rules and findings come back tagged {!Lexical}. *)

val scan_file :
  ?rules:Ast_rules.rule list ->
  ?test_allow:Ast_rules.rule list ->
  string ->
  finding list

val scan_tree :
  ?rules:Ast_rules.rule list ->
  ?test_allow:Ast_rules.rule list ->
  string list ->
  finding list
(** Analyse every source under the given roots
    ({!Lint.source_files}), in sorted path order. *)

val pp_finding : Format.formatter -> finding -> unit
(** Same [file:line: [rule] excerpt] shape as {!Lint.pp_finding} —
    editor-clickable, one line. *)

val of_lexical : Lint.finding -> finding
(** Lift a lexical finding into this finding space (engine
    {!Lexical}, column 0) — how [locald lint --json] shares one
    output shape with [analyze]. *)

(** {1 Machine-readable output} *)

val finding_json : finding -> Locald_runtime.Telemetry.Json.t
(** [{"file", "line", "col", "rule", "severity", "engine", "excerpt",
    "help"}] — one object per finding, emitted one per line by the
    CLI's [--json]. *)

val sarif : finding list -> Locald_runtime.Telemetry.Json.t
(** A minimal SARIF 2.1.0 log (one run, driver [locald-analyze], rule
    metadata from {!Ast_rules}) for code-scanning upload. *)

(** {1 Baseline}

    A committed ledger of accepted findings: [analyze --baseline FILE]
    subtracts them from the report so the gate only fails on {e new}
    findings. Entries are line-drift tolerant — a finding matches on
    [(file, rule, excerpt)], not on the line number. *)

module Baseline : sig
  type entry = { b_file : string; b_rule : string; b_excerpt : string }

  val load : string -> entry list
  (** Parse a JSONL baseline file ([{"file", "rule", "excerpt"}] per
      line; blank lines and [#] comment lines skipped). Raises
      [Failure] with a one-line diagnostic on malformed input. *)

  val subtract : entry list -> finding list -> finding list
  (** Remove findings matched by baseline entries. Each entry absorbs
      any number of identical findings (whole-line duplicates of an
      accepted idiom stay accepted). *)

  val write : string -> finding list -> unit
  (** Serialise findings as baseline entries, one per line, with a
      header comment — the [--write-baseline] implementation. *)
end
