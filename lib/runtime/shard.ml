(* Deterministic sharding over rank spaces: strided chunk partition,
   checkpointed per-shard folds, and an exact merge.

   Invariants the whole layer leans on:

   - Chunk [c] covers ranks [c*chunk, min total ((c+1)*chunk)) and
     belongs to shard [c mod shards]. Pure arithmetic — any process
     can compute any shard's chunk list without communicating.
   - A shard folds its chunks in increasing chunk order, so its digest
     chain (and therefore its checkpoint's valid prefix) is a function
     of the workload alone, not of scheduling.
   - Merging is exact, not statistical: counts add, the first-failure
     rank is a minimum over global ranks, and the merged digest is the
     bench formula over the merged counts — byte-identical to an
     unsharded run's. *)

module Json = Telemetry.Json

type plan = { p_total : int; p_chunk : int; p_shards : int }

let invalid fmt = Format.kasprintf invalid_arg fmt

let plan ~total ?(chunk = 512) ~shards () =
  if total < 0 then invalid "Shard.plan: negative total %d" total;
  if chunk <= 0 then invalid "Shard.plan: non-positive chunk size %d" chunk;
  if shards <= 0 then invalid "Shard.plan: non-positive shard count %d" shards;
  { p_total = total; p_chunk = chunk; p_shards = shards }

let chunk_count p = (p.p_total + p.p_chunk - 1) / p.p_chunk

let range p c =
  if c < 0 || c >= chunk_count p then
    invalid "Shard.range: chunk %d outside [0,%d)" c (chunk_count p);
  (c * p.p_chunk, min p.p_total ((c + 1) * p.p_chunk))

let owner p c =
  if c < 0 || c >= chunk_count p then
    invalid "Shard.owner: chunk %d outside [0,%d)" c (chunk_count p);
  c mod p.p_shards

let chunks_of p ~index =
  if index < 0 || index >= p.p_shards then
    invalid "Shard.chunks_of: shard %d outside [0,%d)" index p.p_shards;
  let rec go c acc =
    if c >= chunk_count p then List.rev acc else go (c + p.p_shards) (c :: acc)
  in
  go index []

let ranks_of p ~index =
  List.fold_left
    (fun acc c ->
      let lo, hi = range p c in
      acc + hi - lo)
    0 (chunks_of p ~index)

(* ------------------------------------------------------------------ *)
(* Chunk results and digests                                           *)
(* ------------------------------------------------------------------ *)

type chunk_result = { r_correct : int; r_wrong : int; r_fail : int option }

let digest_init = Digest.to_hex (Digest.string Checkpoint.schema)

let digest_fold prev ~chunk r =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%s|%d|%d|%d|%s" prev chunk r.r_correct r.r_wrong
          (match r.r_fail with None -> "-" | Some rk -> string_of_int rk)))

(* The bench's [digest_of (correct, wrong, assignments)], verbatim —
   the whole point is that a merged sweep pins against the committed
   BENCH_quick.json entry. *)
let result_digest ~correct ~wrong ~assignments =
  Digest.to_hex (Digest.string (Marshal.to_string (correct, wrong, assignments) []))

(* ------------------------------------------------------------------ *)
(* Per-shard execution                                                 *)
(* ------------------------------------------------------------------ *)

type summary = {
  s_workload : string;
  s_index : int;
  s_of : int;
  s_total : int;
  s_chunk : int;
  s_chunks : int;
  s_correct : int;
  s_wrong : int;
  s_fail : int option;
  s_digest : string;
}

let summary_json s =
  Json.Obj
    [
      ("schema", Json.String Checkpoint.schema);
      ("workload", Json.String s.s_workload);
      ("index", Json.Int s.s_index);
      ("of", Json.Int s.s_of);
      ("total", Json.Int s.s_total);
      ("chunk", Json.Int s.s_chunk);
      ("chunks", Json.Int s.s_chunks);
      ("correct", Json.Int s.s_correct);
      ("wrong", Json.Int s.s_wrong);
      ("fail", match s.s_fail with None -> Json.Null | Some r -> Json.Int r);
      ("digest", Json.String s.s_digest);
    ]

let summary_of_json j =
  let int k = match Json.member k j with Some (Json.Int i) -> Some i | _ -> None in
  let str k =
    match Json.member k j with Some (Json.String s) -> Some s | _ -> None
  in
  match
    ( str "schema",
      str "workload",
      int "index",
      int "of",
      int "total",
      int "chunk",
      int "chunks",
      int "correct",
      int "wrong",
      str "digest" )
  with
  | ( Some schema,
      Some workload,
      Some index,
      Some of_,
      Some total,
      Some chunk,
      Some chunks,
      Some correct,
      Some wrong,
      Some digest )
    when schema = Checkpoint.schema ->
      Some
        {
          s_workload = workload;
          s_index = index;
          s_of = of_;
          s_total = total;
          s_chunk = chunk;
          s_chunks = chunks;
          s_correct = correct;
          s_wrong = wrong;
          s_fail =
            (match Json.member "fail" j with
            | Some (Json.Int r) -> Some r
            | _ -> None);
          s_digest = digest;
        }
  | _ -> None

let read_summaries ~dir ~shards =
  List.filter_map
    (fun index ->
      match Checkpoint.read_done ~dir ~index with
      | None -> None
      | Some j -> (
          match summary_of_json j with
          | Some s -> Some (index, s)
          | None -> None))
    (List.init shards Fun.id)

let run ?checkpoint ?(resume = false) ?(fsync_every = 1) ~workload ~plan:p
    ~index ~eval () =
  let chunks = chunks_of p ~index in
  let header =
    {
      Checkpoint.h_workload = workload;
      h_index = index;
      h_of = p.p_shards;
      h_total = p.p_total;
      h_chunk = p.p_chunk;
    }
  in
  let writer, restored =
    match checkpoint with
    | None -> (None, [])
    | Some dir ->
        if resume then
          let w, cs = Checkpoint.resume ~fsync_every ~dir header in
          (Some (dir, w), cs)
        else (Some (dir, Checkpoint.create ~fsync_every ~dir header), [])
  in
  (* Validate the restored prefix: records must follow this shard's
     chunk sequence with the right ranges and an intact digest chain.
     The first inconsistency ends the trusted prefix — everything
     after it is recomputed, never guessed. *)
  let valid_prefix =
    let rec go acc digest expect (restored : Checkpoint.chunk list) =
      match (expect, restored) with
      | _, [] | [], _ :: _ -> List.rev acc
      | e :: etl, r :: rtl ->
          let lo, hi = range p e in
          let res =
            { r_correct = r.Checkpoint.c_correct;
              r_wrong = r.c_wrong;
              r_fail = r.c_fail }
          in
          let d = digest_fold digest ~chunk:e res in
          if r.c_chunk = e && r.c_lo = lo && r.c_hi = hi && r.c_digest = d
          then go ((e, res, d) :: acc) d etl rtl
          else List.rev acc
    in
    go [] digest_init chunks restored
  in
  Telemetry.event "shard.start"
    [
      ("workload", Json.String workload);
      ("index", Json.Int index);
      ("of", Json.Int p.p_shards);
      ("chunks", Json.Int (List.length chunks));
      ("restored", Json.Int (List.length valid_prefix));
    ];
  let correct = ref 0
  and wrong = ref 0
  and fail = ref None
  and digest = ref digest_init in
  let fold res d =
    correct := !correct + res.r_correct;
    wrong := !wrong + res.r_wrong;
    (* Chunks arrive in increasing rank order, so the first recorded
       failure is the shard's minimal failing rank. *)
    if !fail = None then fail := res.r_fail;
    digest := d
  in
  List.iter (fun (_, res, d) -> fold res d) valid_prefix;
  let evaluated = ref 0 in
  let skip = List.length valid_prefix in
  (* The writer must be closed on every exit path: an exception from
     [eval] mid-loop would otherwise leak the descriptor and drop the
     buffered tail of the very records a crashed shard needs for
     [--resume]. *)
  Fun.protect
    ~finally:(fun () -> Option.iter (fun (_, w) -> Checkpoint.close w) writer)
    (fun () ->
      List.iteri
        (fun i c ->
          if i >= skip then begin
            let lo, hi = range p c in
            let res = eval ~lo ~hi in
            let d = digest_fold !digest ~chunk:c res in
            Option.iter
              (fun (_, w) ->
                Checkpoint.append w
                  {
                    Checkpoint.c_chunk = c;
                    c_lo = lo;
                    c_hi = hi;
                    c_correct = res.r_correct;
                    c_wrong = res.r_wrong;
                    c_fail = res.r_fail;
                    c_digest = d;
                  };
                Telemetry.event "shard.ckpt"
                  [
                    ("chunk", Json.Int c); ("lo", Json.Int lo);
                    ("hi", Json.Int hi);
                  ])
              writer;
            incr evaluated;
            fold res d
          end)
        chunks);
  let summary =
    {
      s_workload = workload;
      s_index = index;
      s_of = p.p_shards;
      s_total = p.p_total;
      s_chunk = p.p_chunk;
      s_chunks = List.length chunks;
      s_correct = !correct;
      s_wrong = !wrong;
      s_fail = !fail;
      s_digest = !digest;
    }
  in
  Option.iter
    (fun (dir, _) ->
      Checkpoint.mark_done ~dir ~index (summary_json summary))
    writer;
  (summary, !evaluated)

(* ------------------------------------------------------------------ *)
(* Merge                                                               *)
(* ------------------------------------------------------------------ *)

type merged =
  | Complete of {
      m_correct : int;
      m_wrong : int;
      m_assignments : int;
      m_fail : int option;
      m_digest : string;
    }
  | Incomplete of {
      mi_missing : int list;
      mi_correct : int;
      mi_wrong : int;
      mi_covered : int;
      mi_assignments : int;
    }

let merge ~workload ~plan:p ~summaries =
  let err fmt = Format.kasprintf Result.error fmt in
  let slot = Array.make p.p_shards None in
  let rec place = function
    | [] -> Ok ()
    | (index, s) :: tl ->
        if index < 0 || index >= p.p_shards then
          err "summary for shard %d outside [0,%d)" index p.p_shards
        else if s.s_index <> index then
          err "summary at slot %d claims index %d" index s.s_index
        else if s.s_workload <> workload then
          err "shard %d ran workload %s, expected %s" index s.s_workload
            workload
        else if
          s.s_of <> p.p_shards || s.s_total <> p.p_total
          || s.s_chunk <> p.p_chunk
        then
          err
            "shard %d geometry (of=%d total=%d chunk=%d) disagrees with the \
             plan (of=%d total=%d chunk=%d)"
            index s.s_of s.s_total s.s_chunk p.p_shards p.p_total p.p_chunk
        else if s.s_chunks <> List.length (chunks_of p ~index) then
          err "shard %d reports %d chunks, expected %d" index s.s_chunks
            (List.length (chunks_of p ~index))
        else begin
          match slot.(index) with
          | Some prev when prev <> s ->
              err "conflicting summaries for shard %d" index
          | _ ->
              slot.(index) <- Some s;
              place tl
        end
  in
  Result.bind (place summaries) @@ fun () ->
  let missing = ref [] and correct = ref 0 and wrong = ref 0 in
  let covered = ref 0 in
  let fail = ref None in
  Array.iteri
    (fun index -> function
      | None -> missing := index :: !missing
      | Some s ->
          correct := !correct + s.s_correct;
          wrong := !wrong + s.s_wrong;
          covered := !covered + ranks_of p ~index;
          (match s.s_fail with
          | Some r when (match !fail with None -> true | Some m -> r < m) ->
              fail := Some r
          | _ -> ()))
    slot;
  match List.rev !missing with
  | [] ->
      if !correct + !wrong <> p.p_total then
        err "merged tallies (%d + %d) do not cover the %d assignments"
          !correct !wrong p.p_total
      else
        Ok
          (Complete
             {
               m_correct = !correct;
               m_wrong = !wrong;
               m_assignments = p.p_total;
               m_fail = !fail;
               m_digest =
                 result_digest ~correct:!correct ~wrong:!wrong
                   ~assignments:p.p_total;
             })
  | missing ->
      Ok
        (Incomplete
           {
             mi_missing = missing;
             mi_correct = !correct;
             mi_wrong = !wrong;
             mi_covered = !covered;
             mi_assignments = p.p_total;
           })

(* ------------------------------------------------------------------ *)
(* Supervision policy                                                  *)
(* ------------------------------------------------------------------ *)

let backoff ~seed ~index ~attempt =
  let base = 0.25 *. (2. ** float_of_int (max 0 (min attempt 5))) in
  let capped = Float.min base 8.0 in
  (* Deterministic jitter: reproducible from the sweep seed, distinct
     across shards and attempts so simultaneous crashers fan out. *)
  let h = Hashtbl.hash (seed, index, attempt) in
  capped +. (float_of_int (h land 0xFFFF) /. 65536.0 *. 0.25 *. capped)

module Exit = struct
  let ok = 0
  let incomplete = 2
  let mismatch = 3
  let usage = 124
end
