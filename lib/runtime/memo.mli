(** Decide-once memoisation: sharded concurrent tables keyed by
    decorated-ball keys.

    The locality correspondence (Section 1.2) makes a node's output a
    function of its decorated ball — structure, labels and the id
    restriction. Exhaustive quantification over global assignments
    therefore repeats the same decides massively; these tables collapse
    the repetition to one decide per {e distinct} key.

    {b Transparency contract}: for pure compute functions,
    [find_or_compute] is observationally identical to computing every
    time — results are byte-identical with the memo on or off and at
    any [--jobs]. Hit/miss counters may race under parallel fan-out
    (two domains can both miss on a fresh key); the count of distinct
    stored keys is deterministic.

    Keys are hashed and compared exclusively through the caller-supplied
    functions — never with the polymorphic primitives. Outside
    [lib/runtime], constructing memo tables over decorated keys with
    [Hashtbl.hash] or structural compare is flagged by the
    [decorated-key] lint rule. *)

(** How id decorations are canonicalised into memo keys. *)
type mode =
  | Off  (** no memoisation: every decide recomputes *)
  | Exact_ids
      (** keys carry the exact restricted ids — safe for {e every}
          decider (the default) *)
  | Order_type
      (** ids are replaced by their order type
          ({!Locald_graph.Iso.order_type}): [1<5<9] and [2<3<7] share a
          key. Sound only for order-invariant deciders — opt in
          explicitly. *)

val mode_to_string : mode -> string

val mode_of_string : string -> mode option
(** Accepts ["off"], ["exact"]/["exact-ids"], ["order"]/["order-type"]. *)

val default_mode : unit -> mode
(** The session default: the last {!set_default_mode} (the CLI's
    [--memo]), else [LOCALD_MEMO], else [Exact_ids]. Stored in an
    [Atomic.t], so reading it from one domain while another calls
    {!set_default_mode} is safe — but long-lived services should
    thread per-request modes explicitly instead of mutating this. *)

val set_default_mode : mode -> unit

val env_problems : unit -> string list
(** Human-readable complaints about the memo environment — currently
    an unrecognised [LOCALD_MEMO] (the empty string counts as unset).
    Module initialisation warns about these on stderr once and then
    falls back to [Exact_ids]; the serve daemon refuses to start
    instead, because a silently coerced mode misreports what a pinned
    run measured. *)

(** {1 Tables} *)

type ('k, 'v) t

type stats = {
  hits : int;      (** lookups answered from the table *)
  misses : int;    (** lookups that computed *)
  distinct : int;  (** distinct keys stored (deterministic) *)
}

val create :
  ?shards:int ->
  ?capacity:int ->
  hash:('k -> int) -> equal:('k -> 'k -> bool) -> unit ->
  ('k, 'v) t
(** [shards] (rounded up to a power of two, default 16) mutex-guarded
    shards; [hash] must respect [equal].

    [capacity] bounds the number of live entries (split evenly across
    shards, at least 2 per shard). When a shard fills, the {e older
    half} of its entries (by insertion stamp) is dropped in one sweep —
    amortised O(1) per store, and the right recency proxy for
    enumeration workloads that revisit keys in waves. Omitting
    [capacity] keeps the table unbounded (the one-shot CLI behaviour);
    the serve daemon always bounds its cross-request tables. Eviction
    never breaks the transparency contract — a dropped key simply
    recomputes, and [distinct] then counts stores rather than unique
    keys. *)

val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** Return the cached value for an [equal] key, else compute, store and
    return it. The compute function runs outside the shard lock (two
    domains may compute the same fresh key concurrently; the first
    store wins and the table never holds duplicate keys). *)

val stats : ('k, 'v) t -> stats

val size : ('k, 'v) t -> int
(** Live entries, summed over shards without taking their locks — a
    monitoring snapshot, which with a [capacity] never exceeds it. *)

val evictions : ('k, 'v) t -> int
(** Entries dropped by capacity eviction over this table's lifetime. *)

val no_stats : stats
val add_stats : stats -> stats -> stats

(** {1 Run-scoped counters}

    Aggregated over every table into the ambient telemetry run — what
    [locald --stats] and the bench JSON report.
    [Telemetry.new_run ()] starts an independent tally (the bench
    harness does this between workloads). *)

val run_stats : unit -> stats

val note_hit : unit -> unit
val note_miss : unit -> unit
val note_distinct : unit -> unit
(** Bump the run-scoped counters directly — for decide-once caches
    implemented outside this module (the read-adaptive restriction
    scanner) that report into the same tallies. *)

val note_hits : int -> unit
val note_misses : int -> unit
val note_distincts : int -> unit
(** Bulk variants of the above, for caches on hot verdict loops that
    tally locally and flush once per run. *)

(** {1 Label-component hashing}

    The designated way to hash / compare the {e label} components of a
    decorated key outside [lib/runtime]. These are the structural
    primitives, re-exported so that every use is mediated by this
    module (and by [View.fingerprint] / [View.equal_repr] for the view
    part) — raw [Hashtbl.hash] or polymorphic compare on decorated keys
    elsewhere is flagged by the [decorated-key] lint rule. *)

val structural_hash : 'a -> int
val structural_equal : 'a -> 'a -> bool

(** {1 The standard decide-once key}

    A node index plus the id restriction of its ball. *)

val hash_node_ids : int * int array -> int
val equal_node_ids : int * int array -> int * int array -> bool

val create_node_ids :
  ?shards:int -> ?capacity:int -> unit -> (int * int array, 'v) t
