(* Crash-safe per-shard checkpoints: an append-only JSONL file per
   shard plus an atomically-renamed completion marker.

   Crash model: the process can die at any instruction (the sweep
   supervisor SIGKILLs overrunning shards). Consequences handled here:

   - A torn final line (the write was cut mid-record): [load] stops at
     the first unparseable line; [resume] truncates the file back to
     the valid prefix so appended records never follow garbage.
   - Lost tail (records written but not yet fsync'd): bounded by
     [fsync_every] appends; those chunks are simply recomputed.
   - A crash between "all chunks recorded" and "marker renamed": the
     marker is missing, so the shard reads as incomplete and a resume
     replays nothing but the final summary. The rename itself is
     atomic, so a reader never sees a half-written summary.

   Writers register a flush-and-sync hook with [Telemetry.on_shutdown]
   so SIGINT/SIGTERM persist the tail before the process re-delivers
   the signal to itself. *)

module Json = Telemetry.Json

let schema = "locald-ckpt/1"

type header = {
  h_workload : string;
  h_index : int;
  h_of : int;
  h_total : int;
  h_chunk : int;
}

type chunk = {
  c_chunk : int;
  c_lo : int;
  c_hi : int;
  c_correct : int;
  c_wrong : int;
  c_fail : int option;
  c_digest : string;
}

let file_path ~dir ~index = Filename.concat dir (Printf.sprintf "shard-%d.jsonl" index)

let done_path ~dir ~index =
  Filename.concat dir (Printf.sprintf "shard-%d.done.json" index)

(* ------------------------------------------------------------------ *)
(* Record encoding                                                     *)
(* ------------------------------------------------------------------ *)

let header_json h =
  Json.Obj
    [
      ("ev", Json.String "ckpt-header");
      ("schema", Json.String schema);
      ("workload", Json.String h.h_workload);
      ("index", Json.Int h.h_index);
      ("of", Json.Int h.h_of);
      ("total", Json.Int h.h_total);
      ("chunk", Json.Int h.h_chunk);
    ]

let chunk_json c =
  Json.Obj
    [
      ("ev", Json.String "chunk");
      ("i", Json.Int c.c_chunk);
      ("lo", Json.Int c.c_lo);
      ("hi", Json.Int c.c_hi);
      ("correct", Json.Int c.c_correct);
      ("wrong", Json.Int c.c_wrong);
      ("fail", match c.c_fail with None -> Json.Null | Some r -> Json.Int r);
      ("digest", Json.String c.c_digest);
    ]

let int_member k j =
  match Json.member k j with Some (Json.Int i) -> Some i | _ -> None

let string_member k j =
  match Json.member k j with Some (Json.String s) -> Some s | _ -> None

let header_of_json j =
  match
    ( string_member "ev" j,
      string_member "schema" j,
      string_member "workload" j,
      int_member "index" j,
      int_member "of" j,
      int_member "total" j,
      int_member "chunk" j )
  with
  | Some "ckpt-header", Some s, Some w, Some i, Some o, Some t, Some c
    when s = schema ->
      Some { h_workload = w; h_index = i; h_of = o; h_total = t; h_chunk = c }
  | _ -> None

let chunk_of_json j =
  match
    ( string_member "ev" j,
      int_member "i" j,
      int_member "lo" j,
      int_member "hi" j,
      int_member "correct" j,
      int_member "wrong" j,
      string_member "digest" j )
  with
  | Some "chunk", Some i, Some lo, Some hi, Some correct, Some wrong,
    Some digest ->
      let fail =
        match Json.member "fail" j with
        | Some (Json.Int r) -> Some r
        | _ -> None
      in
      Some
        {
          c_chunk = i;
          c_lo = lo;
          c_hi = hi;
          c_correct = correct;
          c_wrong = wrong;
          c_fail = fail;
          c_digest = digest;
        }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Reading: the valid prefix                                           *)
(* ------------------------------------------------------------------ *)

(* Parse the file line by line, tracking the byte offset just past the
   last line that parsed as a record. A torn tail — a cut line, or any
   later corruption — fails [Json.of_string] or the field extraction
   and ends the prefix. A final line without its newline can still
   parse (the write completed, only the newline was cut); it is kept,
   and resume's truncate-then-append restores the newline discipline
   because [load_prefix] reports the offset past its last byte. *)
let load_prefix path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let result =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let parse_line line =
              match Json.of_string line with
              | j -> Some j
              | exception Json.Parse_error _ -> None
            in
            match input_line ic with
            | exception End_of_file -> None
            | first -> (
                match Option.bind (parse_line first) header_of_json with
                | None -> None
                | Some h ->
                    let chunks = ref [] in
                    let valid = ref (pos_in ic) in
                    (try
                       let continue = ref true in
                       while !continue do
                         match input_line ic with
                         | exception End_of_file -> continue := false
                         | line -> (
                             match Option.bind (parse_line line) chunk_of_json with
                             | Some c ->
                                 chunks := c :: !chunks;
                                 valid := pos_in ic
                             | None -> continue := false)
                       done
                     with Sys_error _ -> ());
                    Some (h, List.rev !chunks, !valid)))
      in
      result

let load ~dir ~index =
  Option.map
    (fun (h, cs, _) -> (h, cs))
    (load_prefix (file_path ~dir ~index))

(* ------------------------------------------------------------------ *)
(* Writers                                                             *)
(* ------------------------------------------------------------------ *)

type writer = {
  w_fd : Unix.file_descr;
  w_path : string;
  w_oc : out_channel;
  w_fsync_every : int;
  mutable w_since_sync : int;
  mutable w_closed : bool;
  w_lock : Mutex.t;
}

(* Registry of open writers, so the signal-time shutdown hook (and the
   bench guard) can see them. The hook is registered once. *)
let writers : writer list ref = ref []

let writers_lock = Mutex.create ()

let register w =
  Mutex.lock writers_lock;
  writers := w :: !writers;
  Mutex.unlock writers_lock

let unregister w =
  Mutex.lock writers_lock;
  writers := List.filter (fun x -> x != w) !writers;
  Mutex.unlock writers_lock

let active_writers () =
  Mutex.lock writers_lock;
  let n = List.length !writers in
  Mutex.unlock writers_lock;
  n

(* Oldest-opened first, so refusal messages read in open order. *)
let active_writer_paths () =
  Mutex.lock writers_lock;
  let ps = List.rev_map (fun w -> w.w_path) !writers in
  Mutex.unlock writers_lock;
  ps

let sync w =
  flush w.w_oc;
  (try Unix.fsync w.w_fd with Unix.Unix_error _ -> ());
  w.w_since_sync <- 0

let flush_all () =
  Mutex.lock writers_lock;
  let ws = !writers in
  Mutex.unlock writers_lock;
  List.iter
    (fun w ->
      Mutex.lock w.w_lock;
      if not w.w_closed then (try sync w with Sys_error _ -> ());
      Mutex.unlock w.w_lock)
    ws

let hook_registered = Atomic.make false

let ensure_hook () =
  if not (Atomic.exchange hook_registered true) then
    Telemetry.on_shutdown flush_all

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let writer_of_fd ~fsync_every ~path fd =
  {
    w_fd = fd;
    w_path = path;
    w_oc = Unix.out_channel_of_descr fd;
    w_fsync_every = max 1 fsync_every;
    w_since_sync = 0;
    w_closed = false;
    w_lock = Mutex.create ();
  }

let output_record w j =
  output_string w.w_oc (Json.to_string j);
  output_char w.w_oc '\n';
  flush w.w_oc;
  w.w_since_sync <- w.w_since_sync + 1;
  if w.w_since_sync >= w.w_fsync_every then sync w

let create ?(fsync_every = 1) ~dir header =
  mkdir_p dir;
  ensure_hook ();
  (* A fresh attempt invalidates any previous completion claim. *)
  (try Sys.remove (done_path ~dir ~index:header.h_index)
   with Sys_error _ -> ());
  let path = file_path ~dir ~index:header.h_index in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let w = writer_of_fd ~fsync_every ~path fd in
  output_record w (header_json header);
  sync w;
  register w;
  w

let resume ?(fsync_every = 1) ~dir header =
  let path = file_path ~dir ~index:header.h_index in
  match load_prefix path with
  | Some (h, chunks, valid_bytes) when h = header ->
      mkdir_p dir;
      ensure_hook ();
      (try Sys.remove (done_path ~dir ~index:header.h_index)
       with Sys_error _ -> ());
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      (* Drop the torn tail before appending: the file must never hold
         garbage in its middle. *)
      Unix.ftruncate fd valid_bytes;
      ignore (Unix.lseek fd 0 Unix.SEEK_END);
      let w = writer_of_fd ~fsync_every ~path fd in
      register w;
      (w, chunks)
  | _ ->
      (* Missing, unreadable, or written under a different geometry:
         a resume of nothing is a fresh start. *)
      (create ~fsync_every ~dir header, [])

let append w c =
  Mutex.lock w.w_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.w_lock)
    (fun () ->
      if w.w_closed then invalid_arg "Checkpoint.append: writer is closed";
      output_record w (chunk_json c))

let close w =
  Mutex.lock w.w_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.w_lock)
    (fun () ->
      if not w.w_closed then begin
        sync w;
        close_out_noerr w.w_oc;
        w.w_closed <- true
      end);
  unregister w

(* ------------------------------------------------------------------ *)
(* Completion markers                                                  *)
(* ------------------------------------------------------------------ *)

let mark_done ~dir ~index summary =
  mkdir_p dir;
  let final = done_path ~dir ~index in
  let tmp = Filename.concat dir (Printf.sprintf ".shard-%d.done.tmp" index) in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let oc = Unix.out_channel_of_descr fd in
  output_string oc (Json.to_string summary);
  output_char oc '\n';
  flush oc;
  (try Unix.fsync fd with Unix.Unix_error _ -> ());
  close_out_noerr oc;
  (* The atomic step: a reader sees the old state or the whole new
     summary, never a prefix. *)
  Unix.rename tmp final

let read_done ~dir ~index =
  match open_in_bin (done_path ~dir ~index) with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match input_line ic with
          | exception End_of_file -> None
          | line -> (
              match Json.of_string line with
              | j -> Some j
              | exception Json.Parse_error _ -> None))
