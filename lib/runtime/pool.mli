(** A fixed-size [Domain]-based worker pool with a deterministic
    fan-out contract.

    [map] distributes work over a chunked index queue but writes result
    [i] into slot [i], so its output is byte-identical at any job
    count; parallelism changes only who computes each slot. Callers
    with stateful inputs (RNG streams, id draws) must split them {e per
    work item} sequentially before fanning out — see {!split_seeds} —
    never per worker.

    Work functions passed to [map] must be thread-safe: they run
    concurrently on several domains (the repo's deciders are pure view
    functions, which qualifies). A [map] issued from inside a pool
    worker runs on the exact sequential path, so nesting cannot
    deadlock. *)

type t

val create : jobs:int -> t
(** [jobs - 1] worker domains plus the calling domain; [jobs] is
    clamped to [1 .. 64]. [jobs = 1] spawns nothing and every [map]
    takes the exact sequential path ([Array.map]). *)

val jobs : t -> int

val shutdown : t -> unit
(** Join the worker domains. The pool must not be used afterwards. *)

(** {1 The default pool}

    Shared, lazily created, sized by (in priority order) the last
    {!set_default_jobs} call — the CLI's [--jobs] — the [LOCALD_JOBS]
    environment variable, and [Domain.recommended_domain_count].
    However it is sized, the default pool never exceeds
    [Domain.recommended_domain_count]: oversubscribing domains made
    [--jobs 4] slower than [--jobs 1] on small machines, and the
    determinism contract means capping can only change wall time. *)

val default : unit -> t
val default_jobs : unit -> int

val set_default_jobs : int -> unit
(** Resize the default pool (shutting down the previous one). The size
    is capped at [Domain.recommended_domain_count]. *)

(** {1 Deterministic fan-out} *)

exception Lost_task of { index : int; total : int }
(** A fan-out completed with no result {e and} no exception in slot
    [index] of [total] — a worker was lost mid-run (e.g. killed under a
    fault plan). Registered with a [Printexc] printer so an escaping
    instance names the lost task instead of printing a bare
    constructor. *)

val require_all : 'a option array -> 'a array
(** The completion check of {!map}: unwrap every slot, raising
    {!Lost_task} with the first missing index. Exposed so the
    lost-worker diagnosis is unit-testable; ordinary callers never need
    it. *)

val map : ?pool:t -> ('a -> 'b) -> 'a array -> 'b array
(** Ordered parallel map. If any application of [f] raises, the first
    exception (in claim order) is re-raised on the caller after the
    fan-out drains, and the pool remains usable; a slot left empty with
    no recorded exception raises {!Lost_task}. Fan-outs smaller than
    [LOCALD_SEQ_THRESHOLD] items (default 32) take the exact sequential
    path — below that the domain wake-up costs more than the work, and
    by the determinism contract the results are identical.

    Telemetry: every call counts into [pool.maps]; when telemetry is
    active the whole fan-out runs under a [pool.map] span and each
    participant's busy time under a [pool.worker] span on its own
    domain; submitted tasks, caller steals and peak queue depth are
    recorded as [pool.tasks], [pool.steals] and
    [pool.queue_depth.max]. *)

val map_list : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list

val map_reduce :
  ?pool:t -> f:('a -> 'b) -> combine:('acc -> 'b -> 'acc) -> init:'acc ->
  'a array -> 'acc
(** [map] then a {e sequential} left fold, so the result does not
    depend on [combine] being associative or commutative. *)

(** {1 Sequential splitting helpers} *)

val init_in_order : int -> (int -> 'a) -> 'a array
(** Like [Array.init] but with a guaranteed ascending evaluation order
    — the building block for drawing per-item state before a fan-out. *)

val split_seeds : Random.State.t -> int -> int array
(** [n] seeds drawn sequentially from [rng]: the per-work-item seed
    split that keeps randomised experiments byte-identical at any
    [--jobs]. *)
