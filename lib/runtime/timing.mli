(** Timing: monotonic durations, calendar timestamps. *)

val wall : unit -> float
(** Seconds since the epoch ([Unix.gettimeofday]) — a {e calendar}
    timestamp for report headers and log stamps. Subject to NTP steps;
    never use differences of [wall] as durations. *)

val now : unit -> float
(** Monotonic seconds since an arbitrary origin (CLOCK_MONOTONIC):
    immune to clock steps, meaningful only as a difference between two
    calls in the same process. *)

val duration_since : float -> float
(** [duration_since t0] is [now () -. t0] clamped at 0, for [t0]
    obtained from {!now}. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] is [(f (), monotonic seconds it took)]; the duration is
    never negative. *)
