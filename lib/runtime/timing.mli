(** Wall-clock timing (monotonic enough for experiment reporting). *)

val wall : unit -> float
(** Seconds since the epoch, sub-millisecond resolution. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] is [(f (), wall-clock seconds it took)]. *)
