(** Structured telemetry: spans, per-run metrics, JSONL event sink.

    Cost model, from cheapest to most detailed:

    - {b Counters} are always collected (an atomic increment behind an
      epoch check) — they back [locald --stats] and the bench JSON.
    - {b Metrics} ({!set_metrics}) additionally record gauges and
      span-duration histograms — what [locald metrics] prints.
    - {b Tracing} ({!open_sink}) additionally writes a JSONL record per
      span and event.

    With neither metrics nor tracing enabled, {!span} is the identity
    behind one branch — no clock read, no allocation — so enabling the
    library in a build costs untraced runs nothing, and result digests
    are byte-identical with telemetry on or off (it only observes).

    Metric state is scoped to an ambient {e run}; {!new_run} opens a
    fresh scope (the bench harness calls it between workloads so each
    entry reports independent counts). *)

(** Minimal JSON: a typed emitter with proper string escaping, and a
    strict parser for round-trip tests and trace validation. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact, single-line, valid JSON. Strings are escaped per RFC
      8259; non-finite floats (no JSON syntax) degrade to [null];
      integral floats print with a trailing [.0] so they re-parse as
      [Float]. *)

  val escape_string : string -> string
  (** The quoted, escaped form of a string alone. *)

  val output : out_channel -> t -> unit

  exception Parse_error of string

  val default_max_depth : int
  (** The default nesting bound of {!of_string}: 512. *)

  val of_string : ?max_depth:int -> string -> t
  (** Strict parse of one JSON value; raises {!Parse_error} on anything
      else (including trailing input). [of_string (to_string v) = v]
      for values without non-finite floats.

      [max_depth] (default {!default_max_depth}) bounds container
      nesting: input nested deeper raises {!Parse_error} instead of
      recursing — a frame of brackets from a hostile socket peer must
      produce a clean parse error, never a stack overflow. The length
      of the input is bounded by the caller (the wire protocol's
      [max_frame]); this parser only has to stay shallow. *)

  val member : string -> t -> t option
  (** [member k (Obj fields)] is the first binding of [k], if any. *)
end

(** {1 Run scoping} *)

val new_run : unit -> unit
(** Install a fresh metric scope: all counters, gauges and histograms
    restart from zero. Handles made before the call transparently
    re-resolve into the new scope. *)

(** Monotonic counters, always collected. [make] registers the handle;
    increments after the first touch are an epoch check plus an atomic
    increment. Counts may under-report by a handful under domain races
    around {!new_run} — same contract as the memo tables' totals. *)
module Counter : sig
  type t

  val make : string -> t

  val incr : t -> unit

  val add : t -> int -> unit

  val get : t -> int
  (** Value accumulated in the {e current} run. *)

  val name : t -> string
end

(** Gauges: last-value / max / accumulating float cells, keyed by name
    in the current run. Updated under the run lock — keep them off
    per-item hot paths. *)
module Gauge : sig
  type t

  val make : string -> t

  val set : t -> float -> unit

  val add : t -> float -> unit

  val max_to : t -> float -> unit
  (** Raise the gauge to [v] if [v] is larger. *)

  val get : t -> float
end

(** {1 Switches} *)

val set_metrics : bool -> unit
(** Enable gauge and span-histogram collection (independent of the
    sink). *)

val metrics_enabled : unit -> bool

val open_sink : string -> unit
(** Start tracing to [path] (truncates). Writes a [run-start] header
    line; a [run-end] line is appended by {!close_sink}, which is also
    registered [at_exit]. Replaces any previous sink. *)

val close_sink : unit -> unit

val tracing : unit -> bool

val sink_path : unit -> string option

(** {1 Shutdown}

    [at_exit] does not run when the process dies to a signal, so an
    interrupted [--trace] run would lose buffered events and an
    interrupted shard its open checkpoint tail. *)

val on_shutdown : (unit -> unit) -> unit
(** Register a hook run (exceptions swallowed) by the installed signal
    handlers before the process re-delivers the fatal signal to
    itself. {!Checkpoint} registers its open-writer flush here. *)

val run_shutdown_hooks : unit -> unit
(** Run the registered hooks now (what the handlers call; exposed for
    tests). *)

val install_signal_handlers : unit -> unit
(** Install SIGINT/SIGTERM handlers that run the shutdown hooks, close
    the trace sink, then restore the default disposition and
    re-deliver the signal — the process still dies by the signal
    (parents observe the 128+n convention), with nothing buffered
    lost. Idempotent. *)

val active : unit -> bool
(** Tracing or metrics enabled — whether {!span} instruments. *)

val schema : string
(** The trace schema tag written in the [run-start] record. *)

(** {1 Spans and events} *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] and, when {!active}, records its monotonic
    duration: into the [span.<name>] histogram, and as a JSONL record
    [{"ev":"span","name":..,"t_s":..,"dur_s":..,"depth":..,"domain":..}]
    when tracing. Spans nest through a Domain-local stack: [depth] and
    [parent] describe the opening domain's stack, and [domain] carries
    the domain id so multi-domain traces reassemble into lanes. An
    exception from [f] closes the span with ["ok": false] and
    re-raises. When not {!active}: exactly [f ()]. *)

val event : string -> (string * Json.t) list -> unit
(** Write one JSONL event record (name plus caller fields) when
    tracing; otherwise nothing. *)

(** {1 Snapshots} *)

val metrics_json : unit -> Json.t
(** The current run's counters, gauges and histogram summaries, keys
    sorted. *)

val pp_metrics : Format.formatter -> unit -> unit
(** Human-readable rendering of {!metrics_json}. *)
