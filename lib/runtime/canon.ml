(* Canonical keys for rooted labelled views, with a memo table.

   A key packages (a) the iso-invariant refinement fingerprint — the
   same value as [Iso.view_signature], pinned by a test — and (b),
   whenever the 1-WL refinement of the view is discrete (every vertex
   its own colour), an exact canonical form: vertices renumbered in
   colour order, centre rank, labels in rank order, sorted rank-space
   edge list. Two views with discrete refinements are isomorphic iff
   their forms are equal, so the expensive backtracking test reduces to
   a linear comparison; when either refinement is not discrete,
   [equivalent] falls back transparently to [Iso.views_isomorphic] —
   cache and canonicalisation can never change an answer, only the
   route to it.

   The memo table keys computed keys by a structural digest of the raw
   view (collisions resolved by [View.equal_repr]), so repeated
   canonicalisation of equal extractions — the common case in coverage
   enumeration, where the same candidate views recur across cone
   levels — becomes a hash lookup. All entry points are thread-safe:
   the table is mutex-guarded and the counters are atomics, because
   keys are typically computed under [Pool.map]. *)

open Locald_graph

type stats = { hits : int; misses : int; exact : int; fallback : int }

let no_stats = { hits = 0; misses = 0; exact = 0; fallback = 0 }

let add_stats a b =
  {
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    exact = a.exact + b.exact;
    fallback = a.fallback + b.fallback;
  }

(* Run-scoped counters, mirrored from every table's per-instance
   counters: what [locald --stats] and the bench JSON report without
   having to thread table handles out of the decision layers. They live
   in the ambient telemetry run, so [Telemetry.new_run] restarts the
   tally. *)
let g_hits = Telemetry.Counter.make "canon.hits"
let g_misses = Telemetry.Counter.make "canon.misses"
let g_exact = Telemetry.Counter.make "canon.exact"
let g_fallback = Telemetry.Counter.make "canon.fallback"

let run_stats () =
  {
    hits = Telemetry.Counter.get g_hits;
    misses = Telemetry.Counter.get g_misses;
    exact = Telemetry.Counter.get g_exact;
    fallback = Telemetry.Counter.get g_fallback;
  }

type 'a form = {
  f_center : int;
  f_labels : 'a array;
  f_edges : (int * int) list;
}

type 'a key = {
  k_fingerprint : int;
  k_order : int;
  k_size : int;
  k_form : 'a form option;
  k_view : 'a View.t;
}

type 'a t = {
  label_hash : 'a -> int;
  label_equal : 'a -> 'a -> bool;
  use_cache : bool;
  memo : (int, ('a View.t * 'a key) list ref) Hashtbl.t;
  lock : Mutex.t;
  s_hits : int Atomic.t;
  s_misses : int Atomic.t;
  s_exact : int Atomic.t;
  s_fallback : int Atomic.t;
}

let create ?(cache = true) ?(hash = Hashtbl.hash) ~equal () =
  {
    label_hash = hash;
    label_equal = equal;
    use_cache = cache;
    memo = Hashtbl.create 256;
    lock = Mutex.create ();
    s_hits = Atomic.make 0;
    s_misses = Atomic.make 0;
    s_exact = Atomic.make 0;
    s_fallback = Atomic.make 0;
  }

let stats t =
  {
    hits = Atomic.get t.s_hits;
    misses = Atomic.get t.s_misses;
    exact = Atomic.get t.s_exact;
    fallback = Atomic.get t.s_fallback;
  }

let fingerprint k = k.k_fingerprint
let view k = k.k_view
let exact k = k.k_form <> None

(* Structural (not iso-invariant) digest of a view, for the memo
   buckets only. *)
let raw_digest t (v : 'a View.t) =
  let g = v.View.graph in
  let h = ref (Hashtbl.hash (v.View.center, Graph.order g, Graph.size g)) in
  let mix x = h := (!h * 131) + x in
  Array.iter (fun x -> mix (t.label_hash x)) v.View.labels;
  for u = 0 to Graph.order g - 1 do
    mix (u * 8191);
    Array.iter mix (Graph.neighbours g u)
  done;
  !h land max_int

let compute t (view : 'a View.t) =
  let g = view.View.graph in
  let n = Graph.order g in
  let d = View.dist_from_center view in
  let init =
    Array.mapi (fun i x -> Hashtbl.hash (t.label_hash x, d.(i))) view.View.labels
  in
  let final = Iso.refine_colors g init in
  let multiset = Array.copy final in
  Array.sort compare multiset;
  (* Same formula as [Iso.view_signature] (pinned by a test), so code
     that buckets by signature keeps its exact bucket boundaries. *)
  let fp =
    Hashtbl.hash (final.(view.View.center), Array.to_list multiset, Graph.size g)
  in
  let discrete =
    let rec distinct i = i >= n - 1 || (multiset.(i) <> multiset.(i + 1) && distinct (i + 1)) in
    distinct 0
  in
  let form =
    if not discrete then None
    else begin
      let order = Array.init n Fun.id in
      Array.sort (fun a b -> compare final.(a) final.(b)) order;
      let rank = Array.make n 0 in
      Array.iteri (fun i v -> rank.(v) <- i) order;
      let edges =
        List.map
          (fun (u, v) ->
            let a = rank.(u) and b = rank.(v) in
            if a < b then (a, b) else (b, a))
          (Graph.edges g)
        |> List.sort compare
      in
      Some
        {
          f_center = rank.(view.View.center);
          f_labels = Array.map (fun v -> view.View.labels.(v)) order;
          f_edges = edges;
        }
    end
  in
  {
    k_fingerprint = fp;
    k_order = n;
    k_size = Graph.size g;
    k_form = form;
    k_view = view;
  }

let key t view =
  if not t.use_cache then compute t view
  else begin
    let dg = raw_digest t view in
    Mutex.lock t.lock;
    let found =
      match Hashtbl.find_opt t.memo dg with
      | None -> None
      | Some b ->
          List.find_opt (fun (w, _) -> View.equal_repr t.label_equal view w) !b
    in
    Mutex.unlock t.lock;
    match found with
    | Some (_, k) ->
        Atomic.incr t.s_hits;
        Telemetry.Counter.incr g_hits;
        k
    | None ->
        Atomic.incr t.s_misses;
        Telemetry.Counter.incr g_misses;
        let k = compute t view in
        Mutex.lock t.lock;
        (match Hashtbl.find_opt t.memo dg with
        | Some b -> b := (view, k) :: !b
        | None -> Hashtbl.replace t.memo dg (ref [ (view, k) ]));
        Mutex.unlock t.lock;
        k
  end

let forms_equal t fa fb =
  fa.f_center = fb.f_center
  && Array.length fa.f_labels = Array.length fb.f_labels
  && fa.f_edges = fb.f_edges
  &&
  let n = Array.length fa.f_labels in
  let rec labels i =
    i >= n || (t.label_equal fa.f_labels.(i) fb.f_labels.(i) && labels (i + 1))
  in
  labels 0

let equivalent ?(exact_threshold = max_int) t ka kb =
  ka.k_fingerprint = kb.k_fingerprint
  && ka.k_order = kb.k_order
  && ka.k_size = kb.k_size
  &&
  if ka.k_order > exact_threshold then
    (* Caller-sanctioned signature-only regime for oversized views
       (mirrors the historical dedupe threshold in [Gmr]). *)
    true
  else
    match (ka.k_form, kb.k_form) with
    | Some fa, Some fb ->
        Atomic.incr t.s_exact;
        Telemetry.Counter.incr g_exact;
        forms_equal t fa fb
    | _ ->
        Atomic.incr t.s_fallback;
        Telemetry.Counter.incr g_fallback;
        Iso.views_isomorphic t.label_equal ka.k_view kb.k_view

let isomorphic t a b = equivalent t (key t a) (key t b)

(* Derived canoniser over decorated views: labels paired with an int
   decoration (the id restriction folded in via [View.mapi_labels]).
   Keys of the derived table are iso-invariants of the *decorated* view,
   so grouping by them quotients id-restrictions by decorated-view
   orbit — the unit the ball-local enumeration of [Orbit] reports in. *)
let decorated t =
  {
    label_hash = (fun (x, d) -> Hashtbl.hash (t.label_hash x, d));
    label_equal = (fun (a, da) (b, db) -> da = db && t.label_equal a b);
    use_cache = t.use_cache;
    memo = Hashtbl.create 256;
    lock = Mutex.create ();
    s_hits = Atomic.make 0;
    s_misses = Atomic.make 0;
    s_exact = Atomic.make 0;
    s_fallback = Atomic.make 0;
  }
