(* A fixed-size Domain-based worker pool with deterministic fan-out.

   Determinism contract: [map] writes result [i] from input [i] into
   slot [i] of a pre-sized array, so the output is the same value (and
   in the same order) at any job count — parallelism only changes who
   computes each slot, never what is computed. Anything stateful (an
   RNG stream, an id sequence) must therefore be split *per work item*
   by the caller, before the fan-out; {!split_seeds} and
   {!init_in_order} are the two helpers for doing that sequentially.

   Work distribution is a chunked index queue (an atomic cursor over
   [0 .. n-1] claimed in blocks), so there is no per-item locking. The
   caller participates as a worker and, while waiting for stragglers,
   steals queued tasks — a nested [map] issued from inside a worker
   falls back to the exact sequential path (a Domain-local flag), so
   the pool can never deadlock on itself. *)

let max_jobs = 64

let clamp_jobs j = if j < 1 then 1 else min j max_jobs

(* Effective size for the *default* pool: requesting more domains than
   the machine has cores oversubscribes the scheduler and made --jobs 4
   *slower* than --jobs 1 on small boxes, so the shared pool silently
   caps at [Domain.recommended_domain_count]. Explicit [create ~jobs] is
   left unclamped — tests deliberately exercise more domains than
   cores. *)
let effective_jobs j = min (clamp_jobs j) (max 1 (Domain.recommended_domain_count ()))

let env_jobs () =
  match Sys.getenv_opt "LOCALD_JOBS" with
  | Some s -> Option.map effective_jobs (int_of_string_opt (String.trim s))
  | None -> None

let recommended_jobs () =
  match env_jobs () with
  | Some j -> j
  | None -> effective_jobs (Domain.recommended_domain_count ())

(* Fan-outs below this many items run on the exact sequential path:
   domain wake-up and completion signalling cost more than the work.
   Env-overridable escape hatch for machines where the break-even
   differs. *)
let seq_threshold =
  match Sys.getenv_opt "LOCALD_SEQ_THRESHOLD" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some t when t >= 0 -> t
      | _ -> 32)
  | None -> 32

exception Lost_task of { index : int; total : int }

let () =
  Printexc.register_printer (function
    | Lost_task { index; total } ->
        Some
          (Printf.sprintf
             "Locald_runtime.Pool.Lost_task: fan-out finished without a \
              result for task %d of %d (worker lost mid-run?)"
             index total)
    | _ -> None)

(* The completion check of [map]: every slot of the fan-out must have
   been filled. A missing slot means a worker vanished without either
   a result or an exception — name the task instead of dying on a bare
   assertion, so a run killed under a fault plan reports *which* work
   item was lost. *)
let require_all results =
  let total = Array.length results in
  Array.mapi
    (fun index -> function
      | Some y -> y
      | None -> raise (Lost_task { index; total }))
    results

(* Telemetry: fan-out shape and queue pressure. Counters are always-on
   (atomic bumps); the queue-depth gauge is only touched when telemetry
   is active because it takes the metric lock. *)
let c_maps = Telemetry.Counter.make "pool.maps"
let c_tasks = Telemetry.Counter.make "pool.tasks"
let c_steals = Telemetry.Counter.make "pool.steals"
let g_queue_depth = Telemetry.Gauge.make "pool.queue_depth.max"

type t = {
  jobs : int;
  lock : Mutex.t;
  work_ready : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable live : bool;
  mutable workers : unit Domain.t list;
}

(* Set while a domain is executing pool work: nested [map]s go
   sequential instead of re-entering the queue. *)
let inside_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let worker_main pool () =
  Domain.DLS.set inside_worker true;
  let rec loop () =
    Mutex.lock pool.lock;
    while Queue.is_empty pool.queue && pool.live do
      Condition.wait pool.work_ready pool.lock
    done;
    if Queue.is_empty pool.queue then Mutex.unlock pool.lock
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.lock;
      task ();
      loop ()
    end
  in
  loop ()

let create ~jobs =
  let jobs = clamp_jobs jobs in
  let pool =
    {
      jobs;
      lock = Mutex.create ();
      work_ready = Condition.create ();
      queue = Queue.create ();
      live = true;
      workers = [];
    }
  in
  if jobs > 1 then
    pool.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (worker_main pool));
  pool

let jobs pool = pool.jobs

let shutdown pool =
  Mutex.lock pool.lock;
  pool.live <- false;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.lock;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let submit pool task =
  Mutex.lock pool.lock;
  Queue.push task pool.queue;
  let depth = Queue.length pool.queue in
  Condition.signal pool.work_ready;
  Mutex.unlock pool.lock;
  Telemetry.Counter.incr c_tasks;
  if Telemetry.active () then
    Telemetry.Gauge.max_to g_queue_depth (float_of_int depth)

let try_steal pool =
  Mutex.lock pool.lock;
  let task = if Queue.is_empty pool.queue then None else Some (Queue.pop pool.queue) in
  Mutex.unlock pool.lock;
  if task <> None then Telemetry.Counter.incr c_steals;
  task

(* ------------------------------------------------------------------ *)
(* The global default pool (sized by --jobs / LOCALD_JOBS)             *)
(* ------------------------------------------------------------------ *)

let default_size = ref (recommended_jobs ())
let default_pool : t option ref = ref None
let default_lock = Mutex.create ()

let default () =
  Mutex.lock default_lock;
  let pool =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create ~jobs:!default_size in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_lock;
  pool

let default_jobs () = !default_size

let set_default_jobs j =
  let j = effective_jobs j in
  Mutex.lock default_lock;
  let old = !default_pool in
  default_pool := None;
  default_size := j;
  Mutex.unlock default_lock;
  Option.iter shutdown old

(* ------------------------------------------------------------------ *)
(* Deterministic fan-out                                               *)
(* ------------------------------------------------------------------ *)

let map ?pool f xs =
  let pool = match pool with Some p -> p | None -> default () in
  let n = Array.length xs in
  Telemetry.Counter.incr c_maps;
  if pool.jobs = 1 || n <= 1 || n < seq_threshold || Domain.DLS.get inside_worker
  then Telemetry.span "pool.map" (fun () -> Array.map f xs)
  else Telemetry.span "pool.map" @@ fun () -> begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let failed = Atomic.make None in
    let chunk = max 1 (n / (pool.jobs * 8)) in
    let body () =
      let continue = ref true in
      while !continue do
        let lo = Atomic.fetch_and_add cursor chunk in
        if lo >= n || Atomic.get failed <> None then continue := false
        else begin
          let hi = min n (lo + chunk) in
          let i = ref lo in
          while !i < hi && Atomic.get failed = None do
            (match f xs.(!i) with
            | y -> results.(!i) <- Some y
            | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                ignore (Atomic.compare_and_set failed None (Some (e, bt))));
            incr i
          done
        end
      done
    in
    let participants = min pool.jobs (1 + ((n - 1) / chunk)) in
    let pending = Atomic.make (participants - 1) in
    let done_lock = Mutex.create () in
    let done_cond = Condition.create () in
    for _ = 2 to participants do
      submit pool (fun () ->
          (* Per-worker busy time: the span runs on the worker domain,
             so its record lands in that domain's lane of the trace. *)
          Telemetry.span "pool.worker" body;
          Mutex.lock done_lock;
          Atomic.decr pending;
          Condition.signal done_cond;
          Mutex.unlock done_lock)
    done;
    Telemetry.span "pool.worker" body;
    (* Help drain the queue while stragglers finish — a queued sibling
       task may be stuck behind other work, and stealing it here is
       what makes the wait deadlock-free — then block on the
       completion signal rather than spinning (spinning starves the
       actual workers when domains outnumber cores). *)
    let rec wait () =
      if Atomic.get pending > 0 then begin
        (match try_steal pool with
        | Some task -> task ()
        | None ->
            Mutex.lock done_lock;
            if Atomic.get pending > 0 then Condition.wait done_cond done_lock;
            Mutex.unlock done_lock);
        wait ()
      end
    in
    wait ();
    match Atomic.get failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> require_all results
  end

let map_list ?pool f xs = Array.to_list (map ?pool f (Array.of_list xs))

let map_reduce ?pool ~f ~combine ~init xs =
  Array.fold_left combine init (map ?pool f xs)

(* ------------------------------------------------------------------ *)
(* Sequential splitting helpers                                        *)
(* ------------------------------------------------------------------ *)

let init_in_order n f =
  let rec go i acc = if i >= n then List.rev acc else go (i + 1) (f i :: acc) in
  Array.of_list (go 0 [])

let split_seeds rng n = init_in_order n (fun _ -> Random.State.bits rng)
