(* Wire protocol of the locald decision service: length-prefixed JSON
   frames carrying typed request/response messages.

   A frame is a 4-byte big-endian payload length followed by exactly
   that many bytes of JSON (one value, no trailing bytes — the same
   strictness as [Telemetry.Json.of_string]). Two failure levels are
   distinguished, because they demand different recoveries:

   - {e Corrupt}: the framing itself is broken (a length prefix past
     [max_frame]). Nothing after it can be trusted — the byte stream
     has lost synchronisation — so the connection must close after an
     error response.
   - {e Garbage}: a well-framed payload that does not parse (including
     over-deep nesting, which [Json.of_string]'s depth bound turns
     into a clean [Parse_error] instead of a stack overflow). Framing
     is intact, so the server answers with an error response and keeps
     the connection.

   The typed layer speaks in strings for backend and memo mode: this
   module sits in [lib/runtime], below [lib/local], so it cannot name
   [Backend.t] — and the wire shouldn't either. [Locald_core.Service]
   owns the string -> config interpretation (and its rejections). *)

module Json = Telemetry.Json

let max_frame_default = 1 lsl 20

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

exception Frame_error of string

let encode_frame json =
  let payload = Json.to_string json in
  let len = String.length payload in
  if len > 0xFFFFFFFF then raise (Frame_error "frame payload too large");
  let b = Bytes.create (4 + len) in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.blit_string payload 0 b 4 len;
  b

type frame = Frame of Json.t | Garbage of string | Corrupt of string

type decoder = {
  max_frame : int;
  (* Unconsumed bytes. Appending re-allocates, which is fine at the
     request sizes this protocol carries; what matters is that [feed]
     never blocks and [next] never reads. *)
  mutable pending : string;
  (* Sticky: once the framing desynchronises every further [next]
     reports it, so the owner reliably closes the connection. *)
  mutable corrupt : string option;
}

let decoder ?(max_frame = max_frame_default) () =
  { max_frame; pending = ""; corrupt = None }

let feed d b off len = d.pending <- d.pending ^ Bytes.sub_string b off len

let frame_len d =
  (* Unsigned read: a length prefix above 2^31 must compare as huge,
     not negative. *)
  let b = Bytes.of_string (String.sub d.pending 0 4) in
  Int32.to_int (Bytes.get_int32_be b 0) land 0xFFFFFFFF

let next d =
  match d.corrupt with
  | Some msg -> Some (Corrupt msg)
  | None ->
      if String.length d.pending < 4 then None
      else
        let len = frame_len d in
        if len > d.max_frame then begin
          let msg =
            Printf.sprintf "frame length %d exceeds limit %d" len d.max_frame
          in
          d.corrupt <- Some msg;
          Some (Corrupt msg)
        end
        else if String.length d.pending < 4 + len then None
        else begin
          let payload = String.sub d.pending 4 len in
          d.pending <-
            String.sub d.pending (4 + len)
              (String.length d.pending - 4 - len);
          match Json.of_string payload with
          | v -> Some (Frame v)
          | exception Json.Parse_error msg -> Some (Garbage msg)
        end

(* ------------------------------------------------------------------ *)
(* Blocking helpers (clients, tests)                                   *)
(* ------------------------------------------------------------------ *)

let rec write_all fd b off len =
  if len > 0 then begin
    let n = Unix.write fd b off len in
    write_all fd b (off + n) (len - n)
  end

let write_frame fd json =
  let b = encode_frame json in
  write_all fd b 0 (Bytes.length b)

(* [Some bytes], or [None] on EOF before the first byte; EOF once a
   read has started is a truncation and raises. *)
let read_exact fd n =
  let b = Bytes.create n in
  let rec go off =
    if off >= n then Some b
    else
      match Unix.read fd b off (n - off) with
      | 0 ->
          if off = 0 then None
          else raise (Frame_error "connection closed inside a frame")
      | k -> go (off + k)
  in
  if n = 0 then Some b else go 0

let read_frame ?(max_frame = max_frame_default) fd =
  match read_exact fd 4 with
  | None -> None
  | Some hdr ->
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) land 0xFFFFFFFF in
      if len > max_frame then
        raise
          (Frame_error
             (Printf.sprintf "frame length %d exceeds limit %d" len max_frame));
      (match read_exact fd len with
      | None -> raise (Frame_error "connection closed inside a frame")
      | Some payload -> Some (Json.of_string (Bytes.to_string payload)))

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e -> Unix.close fd; raise e);
  fd

let connect_tcp ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e -> Unix.close fd; raise e);
  fd

(* ------------------------------------------------------------------ *)
(* Typed messages                                                      *)
(* ------------------------------------------------------------------ *)

type op = Decide | Certify | Metrics | Ping | Shutdown

let op_to_string = function
  | Decide -> "decide"
  | Certify -> "certify"
  | Metrics -> "metrics"
  | Ping -> "ping"
  | Shutdown -> "shutdown"

let op_of_string = function
  | "decide" -> Some Decide
  | "certify" -> Some Certify
  | "metrics" -> Some Metrics
  | "ping" -> Some Ping
  | "shutdown" -> Some Shutdown
  | _ -> None

type config = {
  c_backend : string option;
  c_sched_seed : int option;
  c_fifo : bool option;
  c_memo : string option;
  c_jobs : int option;
}

let no_config =
  {
    c_backend = None;
    c_sched_seed = None;
    c_fifo = None;
    c_memo = None;
    c_jobs = None;
  }

type request = {
  r_id : int;
  r_op : op;
  r_workload : string option;
  r_lo : int option;
  r_hi : int option;
  r_config : config;
}

let request ?workload ?lo ?hi ?(config = no_config) ~id op =
  { r_id = id; r_op = op; r_workload = workload; r_lo = lo; r_hi = hi;
    r_config = config }

(* Canonical field order — requests built programmatically round-trip
   byte-identically, which the qcheck battery relies on. *)
let request_to_json r =
  let opt name f = function None -> [] | Some v -> [ (name, f v) ] in
  Json.Obj
    (List.concat
       [
         [ ("id", Json.Int r.r_id); ("op", Json.String (op_to_string r.r_op)) ];
         opt "workload" (fun s -> Json.String s) r.r_workload;
         opt "lo" (fun i -> Json.Int i) r.r_lo;
         opt "hi" (fun i -> Json.Int i) r.r_hi;
         opt "backend" (fun s -> Json.String s) r.r_config.c_backend;
         opt "sched_seed" (fun i -> Json.Int i) r.r_config.c_sched_seed;
         opt "fifo" (fun b -> Json.Bool b) r.r_config.c_fifo;
         opt "memo" (fun s -> Json.String s) r.r_config.c_memo;
         opt "jobs" (fun i -> Json.Int i) r.r_config.c_jobs;
       ])

(* Lenient on unknown fields (forward compatibility), strict on the
   types of known ones — a request with ["lo": "7"] is rejected, not
   coerced, mirroring the env-variable policy. *)
let request_of_json json =
  let ( let* ) = Result.bind in
  match json with
  | Json.Obj _ ->
      let str name =
        match Json.member name json with
        | None -> Ok None
        | Some (Json.String s) -> Ok (Some s)
        | Some _ -> Error (Printf.sprintf "field %S must be a string" name)
      in
      let int name =
        match Json.member name json with
        | None -> Ok None
        | Some (Json.Int i) -> Ok (Some i)
        | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)
      in
      let bool name =
        match Json.member name json with
        | None -> Ok None
        | Some (Json.Bool b) -> Ok (Some b)
        | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)
      in
      let* id =
        match Json.member "id" json with
        | Some (Json.Int i) when i >= 0 -> Ok i
        | Some _ -> Error "field \"id\" must be a non-negative integer"
        | None -> Error "missing field \"id\""
      in
      let* op =
        match Json.member "op" json with
        | Some (Json.String s) -> (
            match op_of_string s with
            | Some op -> Ok op
            | None -> Error (Printf.sprintf "unknown op %S" s))
        | Some _ -> Error "field \"op\" must be a string"
        | None -> Error "missing field \"op\""
      in
      let* workload = str "workload" in
      let* lo = int "lo" in
      let* hi = int "hi" in
      let* backend = str "backend" in
      let* sched_seed = int "sched_seed" in
      let* fifo = bool "fifo" in
      let* memo = str "memo" in
      let* jobs = int "jobs" in
      Ok
        {
          r_id = id;
          r_op = op;
          r_workload = workload;
          r_lo = lo;
          r_hi = hi;
          r_config =
            {
              c_backend = backend;
              c_sched_seed = sched_seed;
              c_fifo = fifo;
              c_memo = memo;
              c_jobs = jobs;
            };
        }
  | _ -> Error "request must be a JSON object"

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let response ~id ~op result =
  Json.Obj
    [
      ("id", Json.Int id);
      ("ok", Json.Bool true);
      ("op", Json.String (op_to_string op));
      ("result", result);
    ]

let error_response ?id msg =
  Json.Obj
    [
      ("id", match id with Some i -> Json.Int i | None -> Json.Null);
      ("ok", Json.Bool false);
      ("error", Json.String msg);
    ]

let busy_response ?id ~inflight () =
  Json.Obj
    [
      ("id", match id with Some i -> Json.Int i | None -> Json.Null);
      ("ok", Json.Bool false);
      ("busy", Json.Bool true);
      ("inflight", Json.Int inflight);
    ]

(* The id a reply should echo, when the frame got far enough to carry
   one — busy and malformed replies use this so clients can correlate
   them without a full parse. *)
let request_id json =
  match Json.member "id" json with Some (Json.Int i) -> Some i | _ -> None

type response_view = {
  v_id : int option;
  v_ok : bool;
  v_busy : bool;
  v_error : string option;
  v_result : Json.t option;
}

let response_view json =
  {
    v_id = (match Json.member "id" json with
           | Some (Json.Int i) -> Some i
           | _ -> None);
    v_ok = (match Json.member "ok" json with
           | Some (Json.Bool b) -> b
           | _ -> false);
    v_busy = (match Json.member "busy" json with
             | Some (Json.Bool b) -> b
             | _ -> false);
    v_error = (match Json.member "error" json with
              | Some (Json.String s) -> Some s
              | _ -> None);
    v_result = Json.member "result" json;
  }
