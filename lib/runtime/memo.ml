(* Decide-once memoisation: a sharded concurrent table for the
   enumeration kernel.

   The table maps decoration keys (a node index plus the id restriction
   of the ball, canonicalised per the {!mode}) to decide outputs, so
   quantifying over n! global assignments performs work proportional to
   the number of *distinct* decorated balls actually seen. Shards are
   selected by key hash; each shard is a mutex plus an association
   bucket table keyed by the caller's hash (collisions resolved by the
   caller's equality — the polymorphic primitives are never applied to
   keys, which is also what the [decorated-key] lint rule enforces
   outside this library).

   Semantic transparency contract: [find_or_compute t k f] returns a
   value [f ()] returned on some call with an [equal]-equal key. For
   pure [f] (all the repo's deciders on a fixed view) the result is
   indistinguishable from calling [f] every time — digests are
   byte-identical with the memo on or off, at any job count. Hit/miss
   totals may race under parallel fan-out (two domains can miss on the
   same key); the number of distinct keys stored is deterministic. *)

type mode = Off | Exact_ids | Order_type

let mode_to_string = function
  | Off -> "off"
  | Exact_ids -> "exact"
  | Order_type -> "order"

let mode_of_string = function
  | "off" -> Some Off
  | "exact" | "exact-ids" -> Some Exact_ids
  | "order" | "order-type" -> Some Order_type
  | _ -> None

(* An unrecognised LOCALD_MEMO used to coerce silently to the default
   mode; a typo'd mode is harmless for digests (every mode is
   transparent) but lies about what was measured, so it is reported.
   The empty string counts as unset — the conventional way to disable a
   variable without unsetting it. *)
let env_problems () =
  match Sys.getenv_opt "LOCALD_MEMO" with
  | Some s when String.trim s <> "" -> (
      match mode_of_string (String.trim (String.lowercase_ascii s)) with
      | Some _ -> []
      | None ->
          [
            Printf.sprintf
              "invalid LOCALD_MEMO=%S (expected off | exact | order)" s;
          ])
  | _ -> []

(* The session default: LOCALD_MEMO, then exact-ids (the safe default —
   order-type canonicalisation assumes order-invariance of the decider
   and must be requested explicitly). *)
let initial_mode () =
  List.iter
    (fun p -> Printf.eprintf "locald: warning: %s\n%!" p)
    (env_problems ());
  match Sys.getenv_opt "LOCALD_MEMO" with
  | Some s -> (
      match mode_of_string (String.trim (String.lowercase_ascii s)) with
      | Some m -> m
      | None -> Exact_ids)
  | None -> Exact_ids

(* An [Atomic.t], not a [ref]: the serve daemon reads the session
   default from its event-loop thread while nothing forbids another
   domain from calling [set_default_mode]; per-request modes are
   threaded explicitly (see {!Locald_core.Service}) and never pass
   through here. *)
let default = Atomic.make (initial_mode ())

let default_mode () = Atomic.get default

let set_default_mode m = Atomic.set default m

type stats = { hits : int; misses : int; distinct : int }

let no_stats = { hits = 0; misses = 0; distinct = 0 }

let add_stats a b =
  {
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    distinct = a.distinct + b.distinct;
  }

(* Run-scoped counters, aggregated over every table: what
   [locald --stats] and the bench JSON report. They live in the ambient
   telemetry run, so [Telemetry.new_run] gives each bench workload an
   independent tally instead of a cumulative one. *)
let c_hits = Telemetry.Counter.make "memo.hits"
let c_misses = Telemetry.Counter.make "memo.misses"
let c_distinct = Telemetry.Counter.make "memo.distinct"
let c_evictions = Telemetry.Counter.make "memo.evictions"

let run_stats () =
  {
    hits = Telemetry.Counter.get c_hits;
    misses = Telemetry.Counter.get c_misses;
    distinct = Telemetry.Counter.get c_distinct;
  }

(* For decide-once caches that live outside this module's tables (the
   read-adaptive scanner in [Locald_local.Runner]) but report into the
   same run-scoped tallies. *)
let note_hit () = Telemetry.Counter.incr c_hits
let note_miss () = Telemetry.Counter.incr c_misses
let note_distinct () = Telemetry.Counter.incr c_distinct

(* Bulk variants: per-draw atomic increments are measurable on caches
   sitting inside million-iteration verdict loops (Fast.corollary1),
   so those tally locally and flush once per run. *)
let note_hits n = Telemetry.Counter.add c_hits n
let note_misses n = Telemetry.Counter.add c_misses n
let note_distincts n = Telemetry.Counter.add c_distinct n

type ('k, 'v) shard = {
  lock : Mutex.t;
  (* hash -> (key, value, insertion stamp) bucket; the int key is the
     caller's hash, the stamp orders entries for eviction *)
  table : (int, ('k * 'v * int) list ref) Hashtbl.t;
  mutable tick : int;  (* stamps handed out so far, under [lock] *)
  mutable count : int; (* live entries, under [lock] *)
}

type ('k, 'v) t = {
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
  mask : int;
  (* Per-shard entry bound; [max_int] when the table is unbounded. *)
  cap : int;
  shards : ('k, 'v) shard array;
  s_hits : int Atomic.t;
  s_misses : int Atomic.t;
  s_distinct : int Atomic.t;
  s_evictions : int Atomic.t;
}

let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (acc * 2)

let create ?(shards = 16) ?capacity ~hash ~equal () =
  let count = pow2_at_least (max 1 shards) 1 in
  let cap =
    match capacity with
    | None -> max_int
    (* Never below 2 per shard, or eviction would thrash the very entry
       that was just stored. *)
    | Some c -> max 2 (max 1 c / count)
  in
  {
    hash;
    equal;
    mask = count - 1;
    cap;
    shards =
      Array.init count (fun _ ->
          { lock = Mutex.create (); table = Hashtbl.create 64;
            tick = 0; count = 0 });
    s_hits = Atomic.make 0;
    s_misses = Atomic.make 0;
    s_distinct = Atomic.make 0;
    s_evictions = Atomic.make 0;
  }

let stats t =
  {
    hits = Atomic.get t.s_hits;
    misses = Atomic.get t.s_misses;
    distinct = Atomic.get t.s_distinct;
  }

let evictions t = Atomic.get t.s_evictions

(* A snapshot, not a fence: shard counts are read without their locks,
   so a concurrent store can be missed — fine for the monitoring and
   test uses this serves. *)
let size t = Array.fold_left (fun acc s -> acc + s.count) 0 t.shards

let bucket_find equal key bucket =
  let rec go = function
    | [] -> None
    | (k, v, _) :: rest -> if equal key k then Some v else go rest
  in
  go bucket

(* Drop the older half of a full shard, by insertion stamp. Must run
   under the shard lock. Halving (rather than evicting one) keeps the
   amortised cost O(1) per store: a full scan every cap/2 insertions.
   Recency here is insertion order, not access order — cheaper than
   LRU stamping on every hit, and the enumeration workloads revisit
   keys in waves for which insertion order is the right proxy. *)
let evict_older_half t shard =
  let cutoff = shard.tick - max 1 (t.cap / 2) in
  let dropped = ref 0 in
  Hashtbl.filter_map_inplace
    (fun _ bucket ->
      let kept = List.filter (fun (_, _, stamp) -> stamp > cutoff) !bucket in
      match kept with
      | [] ->
          dropped := !dropped + List.length !bucket;
          None
      | _ ->
          dropped := !dropped + (List.length !bucket - List.length kept);
          bucket := kept;
          Some bucket)
    shard.table;
  shard.count <- shard.count - !dropped;
  Atomic.fetch_and_add t.s_evictions !dropped |> ignore;
  Telemetry.Counter.add c_evictions !dropped

let store_under_lock t shard h key v =
  shard.tick <- shard.tick + 1;
  let entry = (key, v, shard.tick) in
  (match Hashtbl.find_opt shard.table h with
  | Some b -> b := entry :: !b
  | None -> Hashtbl.replace shard.table h (ref [ entry ]));
  shard.count <- shard.count + 1;
  Atomic.incr t.s_distinct;
  Telemetry.Counter.incr c_distinct;
  if shard.count > t.cap then evict_older_half t shard

let find_or_compute t key compute =
  let h = t.hash key land max_int in
  let shard = t.shards.(h land t.mask) in
  Mutex.lock shard.lock;
  let found =
    match Hashtbl.find_opt shard.table h with
    | None -> None
    | Some b -> bucket_find t.equal key !b
  in
  Mutex.unlock shard.lock;
  match found with
  | Some v ->
      Atomic.incr t.s_hits;
      Telemetry.Counter.incr c_hits;
      v
  | None ->
      Atomic.incr t.s_misses;
      Telemetry.Counter.incr c_misses;
      (* The compute is the span-worthy part of a memoised lookup: one
         per distinct work item actually performed. *)
      let v = Telemetry.span "memo.compute" compute in
      Mutex.lock shard.lock;
      (* Re-check under the lock: a sibling domain may have stored the
         key while we were computing. Keep the first stored binding so
         the table never holds duplicates — [distinct] counts stored
         bindings and is therefore deterministic for an unbounded
         table (with a capacity, an evicted key can be re-stored, so
         [distinct] counts stores). *)
      (match Hashtbl.find_opt shard.table h with
      | Some b when Option.is_some (bucket_find t.equal key !b) -> ()
      | _ -> store_under_lock t shard h key v);
      Mutex.unlock shard.lock;
      v

(* ------------------------------------------------------------------ *)
(* Decoration-key helpers                                              *)
(* ------------------------------------------------------------------ *)

(* The structural primitives, re-exported: label components of
   decorated keys outside lib/runtime hash and compare through these
   (mediated by View.fingerprint / View.equal_repr for the view part)
   rather than through raw Hashtbl.hash / polymorphic compare, which
   the decorated-key lint rule flags. *)
let structural_hash x = Hashtbl.hash x
let structural_equal a b = a = b

(* The standard key shape for decide-once memoisation: a node index
   plus the id restriction to its ball. *)

let mix_int h x = ((h * 131) + x) land max_int

let hash_node_ids (node, (ids : int array)) =
  let h = ref (mix_int 0x2545f491 node) in
  Array.iter (fun x -> h := mix_int !h x) ids;
  !h

let equal_node_ids (na, (a : int array)) (nb, (b : int array)) =
  na = nb
  && Array.length a = Array.length b
  &&
  let rec go i = i < 0 || (a.(i) = b.(i) && go (i - 1)) in
  go (Array.length a - 1)

let create_node_ids ?shards ?capacity () =
  create ?shards ?capacity ~hash:hash_node_ids ~equal:equal_node_ids ()
