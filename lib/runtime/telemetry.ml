(* Structured telemetry for the runtime: spans, per-run metrics and a
   JSONL event sink.

   Three independent switches, so the cost model is explicit:

   - {b Counters} are always on. They replace the old process-global
     memo/canon/orbit atomics, so every reader of [locald --stats] and
     the bench JSON keeps working; an increment is one atomic
     read-modify-write plus an epoch check.
   - {b Metrics} ([set_metrics true]) additionally record gauges and
     span-duration histograms — what [locald metrics] prints.
   - {b Tracing} ([open_sink path]) additionally writes one JSONL line
     per span and event to the sink.

   When neither metrics nor tracing is enabled, [span name f] is
   [f ()] behind a single branch — no clock read, no allocation — so
   digests and wall times of untraced runs are unchanged.

   {b Per-run scoping.} All metric state lives in an ambient [run]
   record; [new_run ()] installs a fresh one. Handles ([Counter.make])
   cache the run's cell and re-resolve when the run epoch moves, so the
   hot path after the first touch is branch + atomic increment. Two
   domains racing a re-resolution both land on the same new cell; a
   straggler incrementing a just-retired run's cell loses one count to
   the old run — same benign raciness the old global counters had.

   {b Spans across domains.} The span stack is Domain-local: a span
   opened inside a [Pool] worker nests under whatever that worker is
   running, not under the caller's stack, and the emitted record
   carries the domain id so a trace viewer can reassemble lanes. *)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let buf_escape b s =
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | '\b' -> Buffer.add_string b "\\b"
        | '\012' -> Buffer.add_string b "\\f"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"'

  (* Round-trippable float syntax: integral values print with a ".0"
     (so they re-parse as floats, not ints), everything else with 17
     significant digits (exact for doubles). Non-finite values have no
     JSON syntax and degrade to null. *)
  let buf_float b f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string b (Printf.sprintf "%.1f" f)
    else Buffer.add_string b (Printf.sprintf "%.17g" f)

  let rec buf_add b = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> if Float.is_finite f then buf_float b f else Buffer.add_string b "null"
    | String s -> buf_escape b s
    | List xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string b ", ";
            buf_add b x)
          xs;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string b ", ";
            buf_escape b k;
            Buffer.add_string b ": ";
            buf_add b v)
          fields;
        Buffer.add_char b '}'

  let to_string v =
    let b = Buffer.create 128 in
    buf_add b v;
    Buffer.contents b

  let escape_string s =
    let b = Buffer.create (String.length s + 2) in
    buf_escape b s;
    Buffer.contents b

  let output oc v = output_string oc (to_string v)

  exception Parse_error of string

  let default_max_depth = 512

  (* A small strict recursive-descent parser — enough to round-trip the
     emitter's output and validate trace files in tests (CI uses jq).
     Numbers with '.', 'e' or 'E' parse as [Float], others as [Int]
     (falling back to [Float] on overflow). [\uXXXX] escapes decode to
     UTF-8, pairing surrogates. Container nesting is bounded by
     [max_depth]: recursion depth tracks input nesting one-to-one, so
     without the bound a hostile frame of [2^20] brackets overflows the
     stack of whatever long-lived process (the serve daemon) parses it.
     Over-deep input fails with the same clean [Parse_error] as any
     other malformed frame. *)
  let of_string ?(max_depth = default_max_depth) s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      let m = String.length word in
      if !pos + m <= n && String.sub s !pos m = word then begin
        pos := !pos + m;
        v
      end
      else fail ("expected " ^ word)
    in
    let add_utf8 b u =
      if u < 0x80 then Buffer.add_char b (Char.chr u)
      else if u < 0x800 then begin
        Buffer.add_char b (Char.chr (0xC0 lor (u lsr 6)));
        Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
      end
      else if u < 0x10000 then begin
        Buffer.add_char b (Char.chr (0xE0 lor (u lsr 12)));
        Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
      end
      else begin
        Buffer.add_char b (Char.chr (0xF0 lor (u lsr 18)));
        Buffer.add_char b (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
      end
    in
    let hex4 () =
      if !pos + 4 > n then fail "truncated \\u escape";
      let v = int_of_string ("0x" ^ String.sub s !pos 4) in
      pos := !pos + 4;
      v
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            if !pos >= n then fail "truncated escape";
            let c = s.[!pos] in
            incr pos;
            (match c with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                let u = hex4 () in
                if u >= 0xD800 && u <= 0xDBFF && !pos + 2 <= n
                   && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo >= 0xDC00 && lo <= 0xDFFF then
                    add_utf8 b (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
                  else begin
                    add_utf8 b 0xFFFD;
                    add_utf8 b 0xFFFD
                  end
                end
                else if u >= 0xD800 && u <= 0xDFFF then add_utf8 b 0xFFFD
                else add_utf8 b u
            | _ -> fail "bad escape");
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let number_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && number_char s.[!pos] do
        incr pos
      done;
      let lexeme = String.sub s start (!pos - start) in
      let floaty =
        String.exists (function '.' | 'e' | 'E' -> true | _ -> false) lexeme
      in
      if floaty then
        match float_of_string_opt lexeme with
        | Some f -> Float f
        | None -> fail "bad number"
      else
        match int_of_string_opt lexeme with
        | Some i -> Int i
        | None -> (
            match float_of_string_opt lexeme with
            | Some f -> Float f
            | None -> fail "bad number")
    in
    let rec parse_value depth =
      if depth > max_depth then
        fail (Printf.sprintf "nesting deeper than %d" max_depth);
      skip_ws ();
      match peek () with
      | Some '"' -> String (parse_string ())
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else begin
            let fields = ref [] in
            let rec members () =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value (depth + 1) in
              fields := (k, v) :: !fields;
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  members ()
              | Some '}' -> incr pos
              | _ -> fail "expected ',' or '}'"
            in
            members ();
            Obj (List.rev !fields)
          end
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            List []
          end
          else begin
            let items = ref [] in
            let rec elements () =
              let v = parse_value (depth + 1) in
              items := v :: !items;
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  elements ()
              | Some ']' -> incr pos
              | _ -> fail "expected ',' or ']'"
            in
            elements ();
            List (List.rev !items)
          end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
      | None -> fail "unexpected end of input"
    in
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

(* Log2 buckets over seconds: bucket [i] holds durations in
   [2^(i-40), 2^(i-39)) — from sub-nanosecond up to ~2.3 days. Mutated
   only under the owning run's lock. *)
let hist_buckets = 64

let hist_origin = 40

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_counts : int array;
}

let fresh_hist () =
  {
    h_count = 0;
    h_sum = 0.;
    h_min = infinity;
    h_max = neg_infinity;
    h_counts = Array.make hist_buckets 0;
  }

let hist_bucket d =
  if d <= 0. then 0
  else
    let b = hist_origin + int_of_float (Float.floor (Float.log2 d)) in
    if b < 0 then 0 else if b >= hist_buckets then hist_buckets - 1 else b

let hist_observe h d =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. d;
  if d < h.h_min then h.h_min <- d;
  if d > h.h_max then h.h_max <- d;
  let b = hist_bucket d in
  h.h_counts.(b) <- h.h_counts.(b) + 1

(* ------------------------------------------------------------------ *)
(* Runs: the per-run metric scope                                      *)
(* ------------------------------------------------------------------ *)

type run = {
  r_lock : Mutex.t;
  r_counters : (string, int Atomic.t) Hashtbl.t;
  r_gauges : (string, float ref) Hashtbl.t;
  r_hists : (string, hist) Hashtbl.t;
  r_start : float;  (* monotonic origin for relative event timestamps *)
}

let fresh_run () =
  {
    r_lock = Mutex.create ();
    r_counters = Hashtbl.create 32;
    r_gauges = Hashtbl.create 16;
    r_hists = Hashtbl.create 16;
    r_start = Timing.now ();
  }

(* The epoch invalidates cached handles; bump it strictly after the new
   run is installed so a handle that sees the new epoch resolves
   against the new run. *)
let run_epoch = Atomic.make 1

let current_run = Atomic.make (fresh_run ())

let new_run () =
  Atomic.set current_run (fresh_run ());
  Atomic.incr run_epoch

let counter_cell run name =
  Mutex.lock run.r_lock;
  let cell =
    match Hashtbl.find_opt run.r_counters name with
    | Some c -> c
    | None ->
        let c = Atomic.make 0 in
        Hashtbl.replace run.r_counters name c;
        c
  in
  Mutex.unlock run.r_lock;
  cell

module Counter = struct
  type t = { name : string; mutable cell : int Atomic.t; mutable epoch : int }

  let resolve c =
    let e = Atomic.get run_epoch in
    if c.epoch <> e then begin
      (* Benign race: concurrent resolvers write the same cell; field
         writes are plain because a stale cell only misattributes a
         handful of counts to the retired run. *)
      c.cell <- counter_cell (Atomic.get current_run) c.name;
      c.epoch <- e
    end;
    c.cell

  let make name =
    let c = { name; cell = Atomic.make 0; epoch = 0 } in
    ignore (resolve c);
    c

  let incr c = Atomic.incr (resolve c)

  let add c n = if n <> 0 then ignore (Atomic.fetch_and_add (resolve c) n)

  let get c = Atomic.get (resolve c)

  let name c = c.name
end

module Gauge = struct
  type t = string  (* resolved against the current run on every call *)

  let make name = name

  let with_cell name f =
    let run = Atomic.get current_run in
    Mutex.lock run.r_lock;
    let cell =
      match Hashtbl.find_opt run.r_gauges name with
      | Some g -> g
      | None ->
          let g = ref 0. in
          Hashtbl.replace run.r_gauges name g;
          g
    in
    let r = f cell in
    Mutex.unlock run.r_lock;
    r

  let set name v = with_cell name (fun g -> g := v)

  let add name v = with_cell name (fun g -> g := !g +. v)

  let max_to name v = with_cell name (fun g -> if v > !g then g := v)

  let get name = with_cell name (fun g -> !g)
end

let observe_hist name d =
  let run = Atomic.get current_run in
  Mutex.lock run.r_lock;
  let h =
    match Hashtbl.find_opt run.r_hists name with
    | Some h -> h
    | None ->
        let h = fresh_hist () in
        Hashtbl.replace run.r_hists name h;
        h
  in
  hist_observe h d;
  Mutex.unlock run.r_lock

(* ------------------------------------------------------------------ *)
(* Switches                                                            *)
(* ------------------------------------------------------------------ *)

let metrics_on = Atomic.make false

let set_metrics b = Atomic.set metrics_on b

let metrics_enabled () = Atomic.get metrics_on

type sink = { s_oc : out_channel; s_lock : Mutex.t; s_path : string }

let sink : sink option Atomic.t = Atomic.make None

let tracing () = Atomic.get sink <> None

let active () = Atomic.get metrics_on || Atomic.get sink <> None

let emit_line j =
  match Atomic.get sink with
  | None -> ()
  | Some s ->
      let line = Json.to_string j in
      Mutex.lock s.s_lock;
      output_string s.s_oc line;
      output_char s.s_oc '\n';
      Mutex.unlock s.s_lock

let schema = "locald-trace/1"

let close_sink () =
  match Atomic.exchange sink None with
  | None -> ()
  | Some s ->
      Mutex.lock s.s_lock;
      (try
         output_string s.s_oc
           (Json.to_string (Json.Obj [ ("ev", Json.String "run-end") ]));
         output_char s.s_oc '\n';
         close_out s.s_oc
       with Sys_error _ -> ());
      Mutex.unlock s.s_lock

let at_exit_registered = Atomic.make false

let open_sink path =
  close_sink ();
  let oc = open_out path in
  Atomic.set sink (Some { s_oc = oc; s_lock = Mutex.create (); s_path = path });
  if not (Atomic.exchange at_exit_registered true) then at_exit close_sink;
  emit_line
    (Json.Obj
       [
         ("ev", Json.String "run-start");
         ("schema", Json.String schema);
         ("unix_time", Json.Float (Timing.wall ()));
       ])

let sink_path () = Option.map (fun s -> s.s_path) (Atomic.get sink)

(* ------------------------------------------------------------------ *)
(* Shutdown: signal-safe flushing                                      *)
(* ------------------------------------------------------------------ *)

(* [at_exit] does not run when the process dies to SIGINT/SIGTERM, so
   an interrupted [--trace] run used to lose its buffered tail and an
   interrupted shard its open checkpoint writer. Writers register
   flush hooks here; [install_signal_handlers] turns the two
   termination signals into "run the hooks, close the sink, then die
   by the signal's default disposition" — the parent still observes
   death-by-signal (the sweep supervisor classifies on exactly that),
   but nothing buffered is lost. *)

let shutdown_hooks : (unit -> unit) list ref = ref []

let shutdown_lock = Mutex.create ()

let on_shutdown f =
  Mutex.lock shutdown_lock;
  shutdown_hooks := f :: !shutdown_hooks;
  Mutex.unlock shutdown_lock

let run_shutdown_hooks () =
  Mutex.lock shutdown_lock;
  let hooks = !shutdown_hooks in
  Mutex.unlock shutdown_lock;
  List.iter (fun f -> try f () with _ -> ()) hooks

let handlers_installed = Atomic.make false

let install_signal_handlers () =
  if not (Atomic.exchange handlers_installed true) then
    List.iter
      (fun signo ->
        try
          Sys.set_signal signo
            (Sys.Signal_handle
               (fun s ->
                 run_shutdown_hooks ();
                 close_sink ();
                 (* Restore the default disposition and re-deliver, so
                    the exit status reports death by this signal. *)
                 Sys.set_signal s Sys.Signal_default;
                 Unix.kill (Unix.getpid ()) s))
        with Invalid_argument _ | Sys_error _ -> ())
      [ Sys.sigint; Sys.sigterm ]

(* ------------------------------------------------------------------ *)
(* Spans and events                                                    *)
(* ------------------------------------------------------------------ *)

let span_stack : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let domain_id () = (Domain.self () :> int)

let rel_time t = Float.max 0. (t -. (Atomic.get current_run).r_start)

let emit_span ~name ~parent ~depth ~t0 ~dur ~ok =
  let fields =
    [
      ("ev", Json.String "span");
      ("name", Json.String name);
      ("t_s", Json.Float (rel_time t0));
      ("dur_s", Json.Float dur);
      ("depth", Json.Int depth);
      ("domain", Json.Int (domain_id ()));
    ]
  in
  let fields =
    match parent with
    | None -> fields
    | Some p -> fields @ [ ("parent", Json.String p) ]
  in
  let fields = if ok then fields else fields @ [ ("ok", Json.Bool false) ] in
  emit_line (Json.Obj fields)

let span name f =
  if not (active ()) then f ()
  else begin
    let st = Domain.DLS.get span_stack in
    let parent = match !st with [] -> None | p :: _ -> Some p in
    let depth = List.length !st in
    st := name :: !st;
    let t0 = Timing.now () in
    let finish ok =
      let dur = Timing.duration_since t0 in
      (st := match !st with _ :: tl -> tl | [] -> []);
      observe_hist ("span." ^ name) dur;
      if tracing () then emit_span ~name ~parent ~depth ~t0 ~dur ~ok
    in
    match f () with
    | r ->
        finish true;
        r
    | exception e ->
        finish false;
        raise e
  end

let event name fields =
  if tracing () then
    emit_line
      (Json.Obj
         ([
            ("ev", Json.String "event");
            ("name", Json.String name);
            ("t_s", Json.Float (rel_time (Timing.now ())));
            ("domain", Json.Int (domain_id ()));
          ]
         @ fields))

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let hist_json h =
  Json.Obj
    [
      ("count", Json.Int h.h_count);
      ("sum_s", Json.Float h.h_sum);
      ("min_s", Json.Float (if h.h_count = 0 then 0. else h.h_min));
      ("max_s", Json.Float (if h.h_count = 0 then 0. else h.h_max));
      ( "mean_s",
        Json.Float (if h.h_count = 0 then 0. else h.h_sum /. float_of_int h.h_count)
      );
    ]

let metrics_json () =
  let run = Atomic.get current_run in
  Mutex.lock run.r_lock;
  let counters =
    sorted_bindings run.r_counters
    |> List.map (fun (k, v) -> (k, Json.Int (Atomic.get v)))
  in
  let gauges =
    sorted_bindings run.r_gauges
    |> List.map (fun (k, v) -> (k, Json.Float !v))
  in
  let hists =
    sorted_bindings run.r_hists |> List.map (fun (k, h) -> (k, hist_json h))
  in
  Mutex.unlock run.r_lock;
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj hists);
    ]

let pp_metrics ppf () =
  let pad = 44 in
  let line kind name rest =
    Format.fprintf ppf "%-8s %-*s %s@." kind pad name rest
  in
  match metrics_json () with
  | Json.Obj [ ("counters", Json.Obj cs); ("gauges", Json.Obj gs);
               ("histograms", Json.Obj hs) ] ->
      List.iter
        (fun (k, v) ->
          match v with
          | Json.Int i -> line "counter" k (string_of_int i)
          | _ -> ())
        cs;
      List.iter
        (fun (k, v) ->
          match v with
          | Json.Float f -> line "gauge" k (Printf.sprintf "%g" f)
          | _ -> ())
        gs;
      List.iter
        (fun (k, v) ->
          match
            ( Json.member "count" v,
              Json.member "sum_s" v,
              Json.member "min_s" v,
              Json.member "max_s" v )
          with
          | Some (Json.Int c), Some (Json.Float s), Some (Json.Float mn),
            Some (Json.Float mx) ->
              line "hist" k
                (Printf.sprintf "count=%d sum=%.6fs min=%.6fs max=%.6fs" c s mn
                   mx)
          | _ -> ())
        hs
  | _ -> ()
