(** The generic frame server under [locald serve]: a single-threaded
    select loop multiplexing listeners and connections, batching
    pipelined frames, bounding the inflight queue, and draining
    gracefully.

    Request semantics are injected as {!handlers} — this module owns
    sockets, framing, backpressure and shutdown; [Locald_core.Service]
    owns what a request {e means}. Requests execute sequentially in
    arrival order (each one fans out over the domain Pool internally),
    which is what makes concurrent clients' responses byte-identical
    to one-shot runs: no request can observe another in flight.

    Telemetry: the loop bumps the run-scoped [serve.requests],
    [serve.busy], [serve.malformed] and [serve.connections] counters
    and wraps each execution in a [serve.request] span, so a metrics
    request (or the load generator) sees latency histograms for free. *)

type reply =
  | Reply of Proto.Json.t
  | Final of Proto.Json.t
      (** send, then begin the drain — how a shutdown request stops
          the daemon from inside *)

type handlers = {
  on_request : Proto.Json.t -> reply;
      (** one complete, well-formed frame; must not raise *)
  on_busy : inflight:int -> Proto.Json.t -> Proto.Json.t;
      (** the reply for a frame refused by the inflight bound *)
  on_malformed : string -> Proto.Json.t;
      (** the reply for a [Garbage]/[Corrupt] frame (the daemon keeps
          the connection for the former, closes it for the latter) *)
}

type stats = {
  served : int;      (** requests executed *)
  busy : int;        (** frames refused by the inflight bound *)
  malformed : int;   (** garbage or corrupt frames *)
  connections : int; (** connections accepted *)
}

val listener_unix : string -> Unix.file_descr
(** Bind and listen on a Unix-domain socket path, unlinking any stale
    socket file first. *)

val listener_tcp : ?host:string -> port:int -> unit -> Unix.file_descr
(** Bind and listen on [host:port] ([host] defaults to loopback), with
    [SO_REUSEADDR]. *)

val run :
  ?max_inflight:int ->
  ?max_frame:int ->
  ?throttle_ms:float ->
  ?drain:bool Atomic.t ->
  ?poll_interval:float ->
  listeners:Unix.file_descr list ->
  handlers:handlers ->
  unit ->
  stats
(** Serve until drained. [max_inflight] (default 64) bounds the
    request queue — frames past it are answered via [on_busy]
    immediately. [max_frame] is the per-connection
    {!Proto.decoder} bound. [throttle_ms] is a test hook stalling
    each execution so backpressure becomes deterministic.

    [drain] is the graceful-shutdown switch: when it becomes true
    (from a signal handler, another thread, or a [Final] reply), the
    loop closes its listeners, reads out whatever frames peers already
    sent, executes everything queued, flushes every response, closes
    the connections and returns. In-flight requests are never dropped.
    [poll_interval] (default 0.05 s) bounds how long the loop sleeps
    in select between drain-flag checks; SIGPIPE is ignored
    process-wide (a vanished peer surfaces as [EPIPE] and closes that
    connection only).

    Listeners are owned by the loop from this call on: they are closed
    by the drain. The caller removes Unix socket {e paths}. *)
