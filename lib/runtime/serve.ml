(* The generic frame server under `locald serve`: a single-threaded
   select loop multiplexing listeners and connections, with the actual
   request semantics injected as handlers (so this module stays in
   [lib/runtime], below the workload registry that interprets
   requests).

   Concurrency model: connections are multiplexed, requests are
   executed {e sequentially} in arrival order — each request then
   fans out across the domain Pool internally. That is the shape the
   determinism story needs: two clients interleaving requests get
   responses that are byte-identical to one-shot runs because nothing
   about another in-flight request can influence an execution; the
   parallelism lives inside the engine, not between requests.

   Batching: each loop iteration drains every readable connection
   completely, queueing all complete frames, then executes the queue
   in FIFO order. Pipelined requests therefore share one select
   round-trip, and the inflight bound applies to the queue — frames
   arriving past it are answered [busy] immediately rather than
   buffered without bound.

   Shutdown: the [drain] atomic (set by the daemon's SIGTERM/SIGINT
   handlers, or by a [Final] reply to a shutdown request) switches the
   loop into drain mode — listeners close, already-buffered frames are
   still read and executed, every queued response is flushed, and only
   then does [run] return. In-flight work is never dropped, unlike the
   flush-and-redeliver signal handlers of the batch CLI. *)

type reply = Reply of Proto.Json.t | Final of Proto.Json.t

type handlers = {
  on_request : Proto.Json.t -> reply;
  on_busy : inflight:int -> Proto.Json.t -> Proto.Json.t;
  on_malformed : string -> Proto.Json.t;
}

type stats = {
  served : int;
  busy : int;
  malformed : int;
  connections : int;
}

let c_requests = Telemetry.Counter.make "serve.requests"
let c_busy = Telemetry.Counter.make "serve.busy"
let c_malformed = Telemetry.Counter.make "serve.malformed"
let c_connections = Telemetry.Counter.make "serve.connections"

let listener_unix path =
  (* A stale socket file from a previous daemon would make bind fail;
     removing it is safe because a live daemon holds the listening fd,
     not the name. *)
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd 64
   with e ->
     Unix.close fd;
     raise e);
  fd

let listener_tcp ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen fd 64
   with e ->
     Unix.close fd;
     raise e);
  fd

type conn = {
  fd : Unix.file_descr;
  dec : Proto.decoder;
  out : Bytes.t Queue.t;
  mutable out_off : int;
  mutable eof : bool;     (* stop reading: peer closed or reset *)
  mutable closing : bool; (* close once [out] drains: corrupt framing *)
}

let run ?(max_inflight = 64) ?max_frame ?throttle_ms
    ?(drain = Atomic.make false) ?(poll_interval = 0.05) ~listeners ~handlers
    () =
  (* A peer that disappears mid-write must surface as EPIPE on the
     write call, not kill the daemon. Process-global and deliberately
     not restored: any process hosting this loop wants it. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let served = ref 0
  and busy = ref 0
  and malformed = ref 0
  and connections = ref 0 in
  let conns : conn list ref = ref [] in
  let queue : (conn * Proto.Json.t) Queue.t = Queue.create () in
  let chunk = Bytes.create 65536 in
  let draining = ref false in
  let listeners_open = ref listeners in
  let enqueue_out c json = Queue.add (Proto.encode_frame json) c.out in
  let conn_queued c =
    Queue.fold (fun acc (c', _) -> acc || c' == c) false queue
  in
  let close_conn c =
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    conns := List.filter (fun c' -> c' != c) !conns
  in
  let handle_frame c = function
    | Proto.Frame json ->
        if Queue.length queue >= max_inflight then begin
          incr busy;
          Telemetry.Counter.incr c_busy;
          enqueue_out c (handlers.on_busy ~inflight:(Queue.length queue) json)
        end
        else Queue.add (c, json) queue
    | Proto.Garbage msg ->
        incr malformed;
        Telemetry.Counter.incr c_malformed;
        enqueue_out c (handlers.on_malformed msg)
    | Proto.Corrupt msg ->
        incr malformed;
        Telemetry.Counter.incr c_malformed;
        enqueue_out c (handlers.on_malformed msg);
        c.closing <- true
  in
  let handle_readable c =
    match Unix.read c.fd chunk 0 (Bytes.length chunk) with
    | 0 -> c.eof <- true
    | n ->
        Proto.feed c.dec chunk 0 n;
        let rec go () =
          if not c.closing then
            match Proto.next c.dec with
            | Some f ->
                handle_frame c f;
                go ()
            | None -> ()
        in
        go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        Queue.clear c.out;
        c.eof <- true;
        c.closing <- true
  in
  let handle_writable c =
    match Queue.peek_opt c.out with
    | None -> ()
    | Some b -> (
        match Unix.write c.fd b c.out_off (Bytes.length b - c.out_off) with
        | n ->
            c.out_off <- c.out_off + n;
            if c.out_off >= Bytes.length b then begin
              ignore (Queue.pop c.out);
              c.out_off <- 0
            end
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
            Queue.clear c.out;
            c.eof <- true;
            c.closing <- true)
  in
  let do_accept lfd =
    match Unix.accept lfd with
    | fd, _ ->
        incr connections;
        Telemetry.Counter.incr c_connections;
        conns :=
          {
            fd;
            dec = Proto.decoder ?max_frame ();
            out = Queue.create ();
            out_off = 0;
            eof = false;
            closing = false;
          }
          :: !conns
    | exception Unix.Unix_error _ -> ()
  in
  let running = ref true in
  while !running do
    if Atomic.get drain && not !draining then begin
      draining := true;
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        !listeners_open;
      listeners_open := []
    end;
    let read_fds =
      !listeners_open
      @ List.filter_map
          (fun c -> if c.closing || c.eof then None else Some c.fd)
          !conns
    in
    let write_fds =
      List.filter_map
        (fun c -> if Queue.is_empty c.out then None else Some c.fd)
        !conns
    in
    (* Drain mode polls fast: the loop only has to pick up what is
       already buffered in the kernel and flush what it owes. *)
    let timeout = if !draining then 0.01 else poll_interval in
    let r, w, _ =
      try Unix.select read_fds write_fds [] timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter (fun lfd -> if List.mem lfd r then do_accept lfd) !listeners_open;
    List.iter (fun c -> if List.mem c.fd r then handle_readable c) !conns;
    (* Execute the whole batch before the next read sweep. *)
    while not (Queue.is_empty queue) do
      let c, json = Queue.pop queue in
      (* Test hook: an artificial per-request stall, so the busy-path
         tests can deterministically pile frames up behind a slow
         execution. *)
      (match throttle_ms with
      | Some ms -> Unix.sleepf (ms /. 1000.)
      | None -> ());
      incr served;
      Telemetry.Counter.incr c_requests;
      match Telemetry.span "serve.request" (fun () -> handlers.on_request json)
      with
      | Reply j -> enqueue_out c j
      | Final j ->
          enqueue_out c j;
          Atomic.set drain true
    done;
    List.iter (fun c -> if List.mem c.fd w then handle_writable c) !conns;
    List.iter
      (fun c ->
        if (c.closing || c.eof) && Queue.is_empty c.out && not (conn_queued c)
        then close_conn c)
      !conns;
    if
      !draining && r = [] && w = []
      && Queue.is_empty queue
      && List.for_all (fun c -> Queue.is_empty c.out) !conns
    then running := false
  done;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !conns;
  conns := [];
  {
    served = !served;
    busy = !busy;
    malformed = !malformed;
    connections = !connections;
  }
