(** Ball-local assignment quotient for exhaustive enumeration.

    By the locality correspondence, a node's output under a global id
    assignment depends only on the assignment's restriction to the
    node's ball. Exhaustive quantification can therefore scan, per node
    [v], the [perm ~bound ~k:(ball size)] distinct injective
    restrictions instead of the [perm ~bound ~k:n] global assignments —
    and since (for [bound >= n]) every injective restriction extends to
    a global assignment, nothing is lost: a per-node violation
    reconstructs to a concrete global witness with {!extend}.

    This module is policy-free: it enumerates, counts and reconstructs;
    the decision layers ([Locald_decision.Decider],
    [Locald_local.Oblivious]) own the soundness conditions under which
    the quotient replaces the naive loop. *)

open Locald_graph

val perm : bound:int -> k:int -> int
(** Falling factorial [bound * (bound-1) * ... * (bound-k+1)] — the
    number of injective k-tuples over [{0..bound-1}]; [0] when
    [k > bound]. Unchecked native-int arithmetic: callers bound their
    inputs (the exhaustive paths already enumerate streams of this
    length, so overflow is beyond reach in practice). *)

val choose : bound:int -> k:int -> int
(** Binomial coefficient; the size of each order-type class. *)

val injections : bound:int -> k:int -> int array Seq.t
(** All injective k-tuples over [{0..bound-1}] in lexicographic order —
    the restriction-stream counterpart of
    [Locald_local.Ids.enumerate_injections], and in the same order, so
    the two streams agree on which violation is "first". Arrays are
    fresh. *)

val unrank : bound:int -> k:int -> int -> int array
(** [unrank ~bound ~k rank] is the [rank]-th tuple of {!injections}'s
    lexicographic order, computed directly by falling-factorial index
    arithmetic (no enumeration) — the partition primitive of the
    sharded exhaustive runs: rank ranges split the stream without any
    shard depending on another's traversal.
    @raise Invalid_argument unless [0 <= rank < perm ~bound ~k]. *)

val injections_from : bound:int -> k:int -> start:int -> int array Seq.t
(** The suffix of {!injections} beginning at rank [start]: the tuples
    of ranks [start, start+1, ..., perm ~bound ~k - 1] in order, each
    freshly allocated. [injections_from ~start:0] enumerates the same
    tuples in the same order as [injections]. The sequence is
    persistent. @raise Invalid_argument unless
    [0 <= start <= perm ~bound ~k]. *)

val for_all_injections : bound:int -> k:int -> (int array -> bool) -> bool
(** [for_all_injections ~bound ~k f] applies [f] to every injective
    k-tuple over [{0..bound-1}] in the same lexicographic order as
    {!injections}, stopping at (and returning) the first [false];
    vacuously [true] when [k > bound]. Unlike {!injections} the
    callback receives a {e scratch} array overwritten between calls —
    allocation-free, for the hot quotient scans; copy it to retain a
    tuple. *)

val order_representatives : k:int -> int array Seq.t
(** One representative per order type: the permutations of [{0..k-1}]
    (each order-type class over a larger [bound] contains
    [choose ~bound ~k] value-sets and is represented by its rank
    pattern). Sound as a quotient only for order-invariant deciders —
    see [Locald_runtime.Memo.Order_type]. *)

val extend : n:int -> bound:int -> back:int array -> int array -> int array
(** [extend ~n ~bound ~back r] is the global assignment over [n] nodes
    that restricts to [r] on the ball [back] (view-local index [i] maps
    to global node [back.(i)], which receives id [r.(i)]) and gives
    every remaining node the smallest unused ids in ascending node
    order — a fixed completion, so reconstructed witnesses are
    deterministic. Requires [bound >= n].
    @raise Invalid_argument on a non-injective or out-of-range [r]. *)

val distinct_classes :
  ('a * int) Canon.t -> 'a View.t -> int array Seq.t -> int
(** [distinct_classes dc view decos] is the number of decorated-view
    orbits among the id-decorations [decos] of [view]: each decoration
    is folded into the labels ({!Locald_graph.View.mapi_labels}) and
    grouped by the derived canoniser's keys (fingerprint buckets,
    collisions resolved by [Canon.equivalent]). Reporting and
    property-test grade — the hot quotient scans count classes
    arithmetically. *)

(** {1 Run-scoped scan accounting}

    The quotient paths record how many restriction classes each scan
    enumerated, into the ambient telemetry run (counter
    [orbit.scanned]); bench rows surface the total as [orbit_classes]
    and [Telemetry.new_run] starts a fresh tally. *)

val scanned : unit -> int
val add_scanned : int -> unit
