(** Crash-safe per-shard checkpoint files for the sharded exhaustive
    runs.

    One shard writes one append-only JSONL file,
    [DIR/shard-<i>.jsonl]: a schema-tagged header line followed by one
    record per completed chunk (rank range, tallies, the running
    verdict digest). The file is flushed on every append and fsync'd
    every [fsync_every] appends, so a crash — SIGKILL included — loses
    at most the records since the last sync plus possibly a torn final
    line. {!load} tolerates the torn tail by dropping everything from
    the first unparseable line onward; {!resume} additionally
    truncates the file back to that valid prefix before appending, so
    a resumed file never carries garbage in its middle.

    Completion is a separate, atomically-renamed marker
    ([DIR/shard-<i>.done.json]): a reader that sees the marker sees
    the complete summary, and a merge never confuses a crashed shard
    with a finished one. Checkpoint files always live on their own
    file descriptors under [DIR] — they cannot interleave with the
    bench JSON writer or the telemetry sink.

    Open writers register with {!Locald_runtime.Telemetry.on_shutdown}
    so SIGINT/SIGTERM flush and sync the tail before the process dies
    (see {!Telemetry.install_signal_handlers}). *)

val schema : string
(** ["locald-ckpt/1"], written in every header line. *)

type header = {
  h_workload : string;  (** registry name of the sharded workload *)
  h_index : int;        (** this shard's index, [0 <= h_index < h_of] *)
  h_of : int;           (** shard count of the run *)
  h_total : int;        (** total ranks in the partitioned space *)
  h_chunk : int;        (** chunk size the ranks are grouped by *)
}

type chunk = {
  c_chunk : int;          (** chunk index in the global chunking *)
  c_lo : int;             (** first rank of the chunk *)
  c_hi : int;             (** one past the last rank *)
  c_correct : int;
  c_wrong : int;
  c_fail : int option;    (** global rank of the chunk's first wrong
                              assignment, if any *)
  c_digest : string;      (** running digest after folding this chunk *)
}

val file_path : dir:string -> index:int -> string
(** [DIR/shard-<i>.jsonl]. *)

val done_path : dir:string -> index:int -> string
(** [DIR/shard-<i>.done.json]. *)

type writer

val create : ?fsync_every:int -> dir:string -> header -> writer
(** Open a fresh checkpoint file (truncating any previous one, and
    removing a stale completion marker), write the header line, and
    register the writer for signal-time flushing. [dir] is created if
    missing. [fsync_every] (default 1: every append) is the number of
    appends between [fsync] calls. *)

val resume : ?fsync_every:int -> dir:string -> header -> writer * chunk list
(** Reopen an existing checkpoint: parse its valid prefix, truncate
    the torn tail off the file, and return the writer positioned for
    appending together with the chunks already recorded. When the file
    is missing, unreadable, or its header disagrees with [header]
    (different workload, shard geometry, total or chunk size), the
    checkpoint is discarded and this is exactly {!create}. *)

val append : writer -> chunk -> unit
(** Append one chunk record (one line), flush, and fsync per the
    writer's interval. *)

val close : writer -> unit
(** Final fsync and close; unregisters the writer. Idempotent. *)

val load : dir:string -> index:int -> (header * chunk list) option
(** Read a checkpoint file's valid prefix without touching it: [None]
    if the file is missing or its header line is unreadable; otherwise
    the header and every chunk record before the first unparseable
    line. *)

val mark_done : dir:string -> index:int -> Telemetry.Json.t -> unit
(** Write the shard's completion summary atomically: the JSON goes to
    a temporary file in [dir], is fsync'd, and is [rename]d over
    {!done_path} — readers see either no marker or the whole summary,
    never a torn one. *)

val read_done : dir:string -> index:int -> Telemetry.Json.t option
(** The completion summary, if the shard finished. *)

val active_writers : unit -> int
(** Number of writers currently open in this process — the bench JSON
    writer refuses to run while any checkpoint writer is live, so the
    two can never interleave output. *)

val active_writer_paths : unit -> string list
(** The files those writers hold open, oldest first — what the bench
    refusal names so the operator can see {e which} shard is live. *)

val flush_all : unit -> unit
(** Flush and fsync every open writer (what the shutdown hook runs). *)
