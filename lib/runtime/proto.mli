(** Wire protocol of the locald decision service.

    Length-prefixed JSON framing (4-byte big-endian payload length,
    then one strict {!Telemetry.Json} value) plus the typed
    request/response messages the daemon and its clients exchange.
    Backend and memo mode travel as strings: this module sits below
    [lib/local] and cannot (and should not) name [Backend.t] — the
    interpretation, including rejection of unknown names, belongs to
    [Locald_core.Service].

    Framing failures are two-tier. A length prefix past [max_frame] is
    {e Corrupt}: stream synchronisation is lost and the connection must
    close. A well-framed payload that fails to parse — including
    nesting past the JSON parser's depth bound — is {e Garbage}: the
    peer gets an error response and the connection survives. *)

module Json = Telemetry.Json

val max_frame_default : int
(** 1 MiB. *)

(** {1 Framing} *)

exception Frame_error of string
(** Raised by the {e blocking} helpers on framing violations
    (oversized frames, EOF inside a frame). The incremental decoder
    never raises — it reports {!Corrupt} / {!Garbage} values. *)

val encode_frame : Json.t -> bytes
(** The wire form of one message: length prefix + serialised JSON. *)

type frame =
  | Frame of Json.t  (** a well-formed message *)
  | Garbage of string
      (** well-framed, unparseable payload — answer with an error and
          keep the connection *)
  | Corrupt of string
      (** broken framing — answer with an error and close; sticky, so
          every later [next] repeats it *)

type decoder
(** An incremental per-connection frame decoder: feed it whatever the
    socket yields, pull complete frames out. Single-owner state. *)

val decoder : ?max_frame:int -> unit -> decoder

val feed : decoder -> bytes -> int -> int -> unit
(** [feed d b off len] appends [len] bytes of [b] at [off]. Never
    blocks, never parses. *)

val next : decoder -> frame option
(** The next complete frame, if one is buffered. *)

(** {1 Blocking helpers}

    For clients, the load generator and tests — one frame per call on
    a blocking fd. *)

val write_frame : Unix.file_descr -> Json.t -> unit

val read_frame : ?max_frame:int -> Unix.file_descr -> Json.t option
(** [None] on clean EOF (before any byte of a frame).
    @raise Frame_error on truncation or an oversized frame.
    @raise Telemetry.Json.Parse_error on an unparseable payload. *)

val connect_unix : string -> Unix.file_descr

val connect_tcp : ?host:string -> port:int -> unit -> Unix.file_descr
(** [host] defaults to ["127.0.0.1"]. *)

(** {1 Typed messages} *)

type op = Decide | Certify | Metrics | Ping | Shutdown

val op_to_string : op -> string
val op_of_string : string -> op option

type config = {
  c_backend : string option;  (** ["sync"] or ["async"] *)
  c_sched_seed : int option;  (** async scheduler seed *)
  c_fifo : bool option;       (** async FIFO delivery *)
  c_memo : string option;     (** ["off"], ["exact"] or ["order"] *)
  c_jobs : int option;        (** pool width for this request *)
}
(** Per-request configuration — every field optional, defaults are the
    daemon's startup configuration. *)

val no_config : config

type request = {
  r_id : int;  (** echoed verbatim in the response *)
  r_op : op;
  r_workload : string option;  (** a {!Locald_core.Sweeps} name *)
  r_lo : int option;  (** rank range, defaulting to the full space *)
  r_hi : int option;
  r_config : config;
}

val request :
  ?workload:string ->
  ?lo:int -> ?hi:int -> ?config:config -> id:int -> op -> request

val request_to_json : request -> Json.t
(** Canonical field order; round-trips byte-identically through
    {!request_of_json}. *)

val request_of_json : Json.t -> (request, string) result
(** Strict on the types of known fields (a string where an integer
    belongs is an error, never a coercion — the same policy as the
    environment-variable validation), lenient on unknown fields. *)

(** {1 Responses} *)

val response : id:int -> op:op -> Json.t -> Json.t
(** [{"id", "ok": true, "op", "result"}]. *)

val error_response : ?id:int -> string -> Json.t
(** [{"id" (or null), "ok": false, "error"}]. *)

val busy_response : ?id:int -> inflight:int -> unit -> Json.t
(** [{"id" (or null), "ok": false, "busy": true, "inflight"}] — the
    backpressure reply when the daemon's inflight queue is full. *)

val request_id : Json.t -> int option
(** Best-effort id extraction from an arbitrary frame, so busy and
    error replies correlate even when the request is otherwise
    invalid. *)

type response_view = {
  v_id : int option;
  v_ok : bool;
  v_busy : bool;
  v_error : string option;
  v_result : Json.t option;
}

val response_view : Json.t -> response_view
(** A lenient reading of any response object — what clients switch
    on. *)
