(** Deterministic sharding of exhaustive rank spaces, with crash-safe
    checkpointing and an exact merge.

    The exhaustive workloads address their search space by {e rank}
    (the lexicographic index of an id assignment — see
    {!Locald_runtime.Orbit.unrank}); ranks are grouped into fixed-size
    chunks, and chunk [c] belongs to shard [c mod shards]. The
    partition is pure index arithmetic: no shard's work depends on any
    other shard's traversal order, so shards can run in separate OS
    processes (or, later, on separate machines — nothing here assumes
    a shared address space).

    Each shard folds its chunks in increasing chunk order into running
    tallies and a digest chain, optionally checkpointing every chunk
    through {!Checkpoint}. {!merge} then folds the per-shard summaries
    into {e exactly} the unsharded result: counts add, the
    first-failure rank is the minimum over shards (ranks are global),
    and the merged digest is computed by the same formula the bench
    pins use — so [shard]+[merge] reproduces the unsharded exhaustive
    digest byte-identically, for any shard count, resumed or not.

    A merge over missing shards reports {!merged.Incomplete} rather
    than fabricating a total — the same three-valued discipline as the
    fault layer's degraded verdicts. *)

type plan = private { p_total : int; p_chunk : int; p_shards : int }

val plan : total:int -> ?chunk:int -> shards:int -> unit -> plan
(** [chunk] defaults to 512 ranks. @raise Invalid_argument on a
    negative total, a non-positive chunk size or shard count. *)

val chunk_count : plan -> int
(** [ceil (total / chunk)]. *)

val range : plan -> int -> int * int
(** [range plan c] is chunk [c]'s rank interval [\[lo, hi)]. *)

val owner : plan -> int -> int
(** The shard owning chunk [c]: [c mod shards] — strided, so shard
    loads stay balanced even when per-rank cost drifts across the
    space. *)

val chunks_of : plan -> index:int -> int list
(** The chunks shard [index] owns, in increasing order (its processing
    order). *)

val ranks_of : plan -> index:int -> int
(** Total ranks shard [index] covers. *)

(** {1 Chunk results and digests} *)

type chunk_result = {
  r_correct : int;
  r_wrong : int;
  r_fail : int option;  (** global rank of the first wrong assignment *)
}

val digest_init : string

val digest_fold : string -> chunk:int -> chunk_result -> string
(** The shard-local digest chain: hashes the previous digest, the
    chunk index and the tallies. Recomputed on resume to validate a
    restored checkpoint prefix — a record whose counts were corrupted
    (but still parse) breaks the chain and is recomputed instead of
    trusted. *)

val result_digest : correct:int -> wrong:int -> assignments:int -> string
(** The merged-result digest: the same
    [Digest.to_hex (Digest.string (Marshal.to_string (correct, wrong,
    assignments) []))] formula the bench workloads pin in
    BENCH_quick.json, so a sweep's merged digest is directly
    comparable against the committed pin. *)

(** {1 Per-shard execution} *)

type summary = {
  s_workload : string;
  s_index : int;
  s_of : int;
  s_total : int;
  s_chunk : int;
  s_chunks : int;        (** chunks this shard owns *)
  s_correct : int;
  s_wrong : int;
  s_fail : int option;   (** minimal failing rank in this shard *)
  s_digest : string;     (** final digest-chain value *)
}

val run :
  ?checkpoint:string ->
  ?resume:bool ->
  ?fsync_every:int ->
  workload:string ->
  plan:plan ->
  index:int ->
  eval:(lo:int -> hi:int -> chunk_result) ->
  unit ->
  summary * int
(** Execute shard [index]: fold its chunks in increasing order,
    calling [eval] on each rank range. With [checkpoint:dir], every
    completed chunk is appended to [dir/shard-<index>.jsonl] and a
    completion marker is renamed into place at the end; with [resume]
    additionally, the valid checkpoint prefix (chunk sequence {e and}
    digest chain verified) is restored instead of recomputed. Returns
    the summary and the number of chunks actually evaluated (restored
    chunks excluded) — an uninterrupted resume of a finished shard
    evaluates zero. Emits [shard.start] / [shard.ckpt] telemetry
    events when tracing. *)

(** {1 Merge} *)

type merged =
  | Complete of {
      m_correct : int;
      m_wrong : int;
      m_assignments : int;
      m_fail : int option;
      m_digest : string;
    }
  | Incomplete of {
      mi_missing : int list;  (** shard indices with no summary (sorted) *)
      mi_correct : int;
      mi_wrong : int;
      mi_covered : int;       (** ranks the present shards cover *)
      mi_assignments : int;   (** the full total, for context *)
    }

val merge :
  workload:string ->
  plan:plan ->
  summaries:(int * summary) list ->
  (merged, string) result
(** Fold per-shard summaries. [Error] reports inconsistent inputs — a
    summary from a different workload, geometry, or index — which a
    caller must treat as a verdict mismatch, never average away.
    Missing shards yield [Incomplete] with honest partial tallies. *)

val summary_json : summary -> Telemetry.Json.t

val summary_of_json : Telemetry.Json.t -> summary option

val read_summaries : dir:string -> shards:int -> (int * summary) list
(** The completion summaries present in a checkpoint directory
    (shards without a done marker are simply absent). *)

(** {1 Supervision policy} *)

val backoff : seed:int -> index:int -> attempt:int -> float
(** Retry delay in seconds for shard [index]'s [attempt]-th retry
    (0-based): capped exponential — [0.25 * 2^attempt], at most 8s —
    plus deterministic jitter (a seeded hash of
    [(seed, index, attempt)], up to 25% of the base), so a sweep's
    retry schedule is reproducible from its seed while simultaneous
    crashers still fan out. *)

(** Process exit codes shared by the [locald] subcommands and the
    sweep supervisor's shard-exit classification (documented in the
    README): *)
module Exit : sig
  val ok : int
  (** 0 — complete, verdicts as declared. *)

  val incomplete : int
  (** 2 — degraded or incomplete: fault-degraded runs, missing shards,
      retries exhausted. *)

  val mismatch : int
  (** 3 — verdict mismatch: a certification contradicting a declared
      classification, lint findings, a merged digest differing from
      the expected one, or inconsistent shard summaries. *)

  val usage : int
  (** 124 — usage error (cmdliner's own CLI-error code). *)
end
