(* Ball-local assignment quotient for exhaustive enumeration.

   Quantifying a decider over every injective global id assignment from
   [{0..bound-1}] touches [perm ~bound ~k:n] assignments, but the
   locality correspondence says node [v]'s output depends only on the
   restriction of the assignment to its radius-[t] ball. Per node there
   are just [perm ~bound ~k:(ball size)] distinct restrictions — and
   when [bound >= n] every injective restriction extends to a global
   assignment ([extend]), so scanning restrictions per node loses no
   witnesses. This module provides the enumeration, the counting
   arithmetic, the witness reconstruction, and the orbit-class grouping
   (via decorated canonical keys) that the quotient paths in
   [Locald_decision.Decider] and [Locald_local.Oblivious] build on.

   Counter: [scanned] accumulates, per quotient scan, the number of
   restriction classes actually enumerated — the denominator that bench
   rows surface as [orbit_classes] next to wall time. *)

open Locald_graph

let invalid fmt = Format.kasprintf invalid_arg fmt

let perm ~bound ~k =
  if k < 0 then invalid "Orbit.perm: negative k %d" k;
  if bound < 0 then invalid "Orbit.perm: negative bound %d" bound;
  if k > bound then 0
  else begin
    let acc = ref 1 in
    for i = bound - k + 1 to bound do
      acc := !acc * i
    done;
    !acc
  end

let choose ~bound ~k =
  if k < 0 then invalid "Orbit.choose: negative k %d" k;
  if bound < 0 then invalid "Orbit.choose: negative bound %d" bound;
  if k > bound then 0
  else begin
    let k = min k (bound - k) in
    let acc = ref 1 in
    for i = 1 to k do
      acc := !acc * (bound - k + i) / i
    done;
    !acc
  end

(* Injective k-tuples over [{0..bound-1}] in lexicographic order — the
   same order [Ids.enumerate_injections] uses for global assignments, so
   restriction streams and assignment streams agree on "first". *)
let injections ~bound ~k =
  if k < 0 then invalid "Orbit.injections: negative k %d" k;
  if bound < 0 then invalid "Orbit.injections: negative bound %d" bound;
  let rec go prefix len : int array Seq.t =
    if len = k then Seq.return (Array.of_list (List.rev prefix))
    else
      Seq.concat_map
        (fun c ->
          if List.mem c prefix then Seq.empty else go (c :: prefix) (len + 1))
        (Seq.init bound Fun.id)
  in
  go [] 0

(* Unranking in the falling-factorial number system: position [i] of
   the tuple has [perm ~bound:(bound-i-1) ~k:(k-i-1)] completions per
   candidate value, so the lexicographic rank decomposes digit by digit
   into indices of the ascending list of unused values. This is the
   index arithmetic the sharded exhaustive runs partition on: any chunk
   [lo, hi) of ranks enumerates independently of every other chunk. *)
let unrank ~bound ~k rank =
  let total = perm ~bound ~k in
  if rank < 0 || rank >= total then
    invalid "Orbit.unrank: rank %d outside [0,%d)" rank total;
  (* [avail.(0 .. live-1)] are the unused values, ascending. *)
  let avail = Array.init bound Fun.id in
  let live = ref bound in
  let r = ref rank in
  let out = Array.make k 0 in
  for i = 0 to k - 1 do
    let block = perm ~bound:(bound - i - 1) ~k:(k - i - 1) in
    let j = !r / block in
    r := !r mod block;
    out.(i) <- avail.(j);
    for m = j to !live - 2 do
      avail.(m) <- avail.(m + 1)
    done;
    decr live
  done;
  out

let injections_from ~bound ~k ~start =
  let total = perm ~bound ~k in
  if start < 0 || start > total then
    invalid "Orbit.injections_from: start %d outside [0,%d]" start total;
  (* Each element is unranked independently, so the sequence is
     persistent (re-forcing a node cannot observe sibling state) and
     any suffix is as cheap to start as the whole stream. *)
  let rec from rank () =
    if rank >= total then Seq.Nil
    else Seq.Cons (unrank ~bound ~k rank, from (rank + 1))
  in
  from start

(* One representative per order type: the rank patterns themselves,
   i.e. the permutations of [{0..k-1}]. Every injective restriction
   with ranks [p] shares its order type with representative [p], and
   each order-type class contains exactly [choose ~bound ~k] sets of
   values, each realised once. *)
let order_representatives ~k = injections ~bound:k ~k

(* Allocation-free variant for the hot quotient scans: same tuples in
   the same lexicographic order, but the callback receives a single
   scratch array that is overwritten between calls (copy to retain),
   and enumeration stops at the first [false]. A million restrictions
   through the [Seq] version costs a list, an array and a closure chain
   per tuple; this costs nothing per tuple. *)
let for_all_injections ~bound ~k f =
  if k < 0 then invalid "Orbit.for_all_injections: negative k %d" k;
  if bound < 0 then invalid "Orbit.for_all_injections: negative bound %d" bound;
  if k > bound then true
  else begin
    let r = Array.make k 0 in
    let used = Array.make bound false in
    let rec go i =
      if i = k then f r
      else begin
        let ok = ref true in
        let c = ref 0 in
        while !ok && !c < bound do
          if not used.(!c) then begin
            used.(!c) <- true;
            r.(i) <- !c;
            if not (go (i + 1)) then ok := false;
            used.(!c) <- false
          end;
          incr c
        done;
        !ok
      end
    in
    go 0
  end

let extend ~n ~bound ~back r =
  if bound < n then
    invalid "Orbit.extend: bound %d < %d nodes (no global assignment)" bound n;
  let k = Array.length back in
  if Array.length r <> k then
    invalid "Orbit.extend: restriction length %d for a %d-node ball"
      (Array.length r) k;
  let used = Array.make bound false in
  let ids = Array.make n (-1) in
  Array.iteri
    (fun i v ->
      let x = r.(i) in
      if x < 0 || x >= bound then
        invalid "Orbit.extend: id %d outside [0,%d)" x bound;
      if used.(x) then invalid "Orbit.extend: duplicate id %d" x;
      used.(x) <- true;
      ids.(v) <- x)
    back;
  (* Remaining nodes take the smallest unused ids in ascending node
     order: a fixed, deterministic completion (any completion yields the
     same outputs inside the ball; determinism keeps witness digests
     stable). *)
  let next = ref 0 in
  for v = 0 to n - 1 do
    if ids.(v) < 0 then begin
      while used.(!next) do
        incr next
      done;
      used.(!next) <- true;
      ids.(v) <- !next
    end
  done;
  ids

(* ------------------------------------------------------------------ *)
(* Orbit-class grouping via decorated canonical keys                    *)
(* ------------------------------------------------------------------ *)

(* Group id-restriction decorations of one view by decorated-view orbit:
   fold each decoration into the labels, canonicalise with the derived
   (decorated) canoniser, and bucket by fingerprint with
   [Canon.equivalent] resolving collisions. Intended for reporting and
   property tests — the hot quotient scans count classes arithmetically
   instead of canonising every restriction. *)
let distinct_classes dc view decos =
  let buckets : (int, ('a * int) Canon.key list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let classes = ref 0 in
  Seq.iter
    (fun (deco : int array) ->
      let dv = View.mapi_labels (fun i x -> (x, deco.(i))) view in
      let key = Canon.key dc dv in
      let fp = Canon.fingerprint key in
      let bucket =
        match Hashtbl.find_opt buckets fp with
        | Some b -> b
        | None ->
            let b = ref [] in
            Hashtbl.replace buckets fp b;
            b
      in
      if not (List.exists (fun k -> Canon.equivalent dc k key) !bucket) then begin
        bucket := key :: !bucket;
        incr classes
      end)
    decos;
  !classes

(* ------------------------------------------------------------------ *)
(* Run-scoped scan accounting                                           *)
(* ------------------------------------------------------------------ *)

let c_scanned = Telemetry.Counter.make "orbit.scanned"

let scanned () = Telemetry.Counter.get c_scanned

let add_scanned n = Telemetry.Counter.add c_scanned n
