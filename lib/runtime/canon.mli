(** Canonical keys for rooted labelled views, memoised.

    Coverage enumeration asks the same question millions of times: are
    these two stripped views isomorphic as rooted labelled graphs?
    [key] canonicalises a view once — refinement fingerprint (equal to
    {!Locald_graph.Iso.view_signature} by construction, pinned by a
    test) plus, when the refinement is discrete, an exact canonical
    form — after which {!equivalent} is a linear comparison instead of
    a backtracking search, and repeated canonicalisations of equal
    extractions are hash lookups in the memo table.

    Transparent-fallback contract: whenever the canonical route cannot
    decide exactly (non-discrete refinement), [equivalent] falls back
    to {!Locald_graph.Iso.views_isomorphic}; with the cache on or off
    the answers are identical (property-tested). [hash] must respect
    [equal] (equal labels hash equally), the same contract as
    [Iso.view_signature]. All entry points are thread-safe. *)

open Locald_graph

type 'a t

type 'a key

type stats = {
  hits : int;      (** memo hits *)
  misses : int;    (** canonicalisations actually performed *)
  exact : int;     (** equivalence decided by canonical-form equality *)
  fallback : int;  (** equivalence decided by the backtracking search *)
}

val create :
  ?cache:bool -> ?hash:('a -> int) -> equal:('a -> 'a -> bool) -> unit -> 'a t
(** [cache:false] disables the memo table (every [key] recanonicalises)
    without changing any answer — the toggle used by the agreement
    tests. [hash] defaults to [Hashtbl.hash]. *)

val key : 'a t -> 'a View.t -> 'a key

val fingerprint : 'a key -> int
(** Iso-invariant: equal for isomorphic views; equal to
    [Iso.view_signature hash view]. *)

val view : 'a key -> 'a View.t

val exact : 'a key -> bool
(** Did canonicalisation produce an exact form (discrete refinement)? *)

val equivalent : ?exact_threshold:int -> 'a t -> 'a key -> 'a key -> bool
(** Rooted-isomorphism test via the keys: fingerprint filter, then
    canonical-form equality when both keys are exact, else the
    backtracking fallback. Views larger than [exact_threshold] are
    compared by fingerprint, order and size alone — the historical
    big-view dedupe regime of [Gmr] (which can keep spurious
    duplicates but never lose a class). *)

val isomorphic : 'a t -> 'a View.t -> 'a View.t -> bool
(** [equivalent] over freshly computed keys; agrees with
    [Iso.views_isomorphic equal] whenever [exact_threshold] is not in
    play. *)

val stats : 'a t -> stats

val no_stats : stats
val add_stats : stats -> stats -> stats

val run_stats : unit -> stats
(** Totals over every table, scoped to the ambient telemetry run
    (counters [canon.*]) — what [locald --stats] and the bench JSON
    surface. [Telemetry.new_run] restarts the tally. *)

val decorated : 'a t -> ('a * int) t
(** A fresh canoniser over views whose labels carry an [int] decoration
    (e.g. the ball-restricted id assignment folded into the labels with
    {!Locald_graph.View.mapi_labels}). Label hash and equality are
    derived from [t]'s, the cache toggle is inherited, and the memo
    table is fresh. Keys of the derived canoniser are iso-invariants of
    the {e decorated} view: grouping id-restrictions by them quotients
    the per-node enumeration by decorated-view orbit. *)
