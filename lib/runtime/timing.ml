(* Timing for the experiment drivers, the bench harness and the
   telemetry spans (CPU time would hide the whole point of the pool).

   Durations are measured on the monotonic clock: the wall clock
   ([Unix.gettimeofday]) is subject to NTP steps, which can yield
   negative or wildly wrong intervals and poison the bench --check
   regression gate. OCaml 5.1's [Unix] does not expose [clock_gettime],
   so [now] goes through the bechamel monotonic-clock stub (a thin
   [@@noalloc] binding to CLOCK_MONOTONIC) that the bench harness
   already links. *)

(* Calendar timestamp — only where a real date/time is wanted (log
   headers, report stamps). Never subtract two of these. *)
let wall () = Unix.gettimeofday ()

(* Monotonic seconds since an arbitrary origin: meaningful only as a
   difference between two calls. *)
let now () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

(* Defensive clamp: the monotonic clock cannot go backwards, but keep
   every reported duration non-negative even if a platform stub
   misbehaves. *)
let duration_since t0 = Float.max 0. (now () -. t0)

let time f =
  let t0 = now () in
  let r = f () in
  (r, duration_since t0)
