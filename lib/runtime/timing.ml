(* Wall-clock helpers for the experiment drivers and the bench
   harness (CPU time would hide the whole point of the pool). *)

let wall () = Unix.gettimeofday ()

let time f =
  let t0 = wall () in
  let r = f () in
  (r, wall () -. t0)
