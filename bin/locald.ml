(* The locald command-line interface: regenerate the paper's results
   table and figures from the library. *)

open Cmdliner
open Locald_core
open Locald_runtime

open Locald_core.Report

let quick_flag =
  Arg.(value & flag & info [ "quick" ] ~doc:"Smaller parameter sets (faster).")

(* Global reproducibility knob: every randomised experiment derives its
   random state from this one seed. *)
let seed_opt =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Seed for the experiment's random state (reproducible runs).")

(* Global parallelism knob: sizes the shared worker pool the experiment
   hot paths fan out on. Every experiment is byte-identical at any
   value — parallelism only changes who computes each slot. *)
let jobs_opt =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel experiment stages (default: \
           $(b,LOCALD_JOBS), else the recommended domain count). Results \
           do not depend on this value.")

let apply_jobs jobs = Option.iter Pool.set_default_jobs jobs

(* Decide-once memoisation knob: results are identical at any mode that
   is sound for the decider (exact always is); only the work differs. *)
let memo_opt =
  let mode_conv =
    let parse s =
      match Memo.mode_of_string (String.lowercase_ascii (String.trim s)) with
      | Some m -> Ok m
      | None -> Error (`Msg "memo mode must be off | exact | order")
    in
    Arg.conv (parse, fun ppf m -> Fmt.string ppf (Memo.mode_to_string m))
  in
  Arg.(
    value
    & opt (some mode_conv) None
    & info [ "memo" ] ~docv:"MODE"
        ~doc:
          "Decide-once memoisation: $(b,off), $(b,exact) (the safe \
           default — keys carry the exact ball-restricted ids), or \
           $(b,order) (order-type keys; sound only for order-invariant \
           deciders). Defaults to $(b,LOCALD_MEMO), else exact.")

let apply_memo memo = Option.iter Memo.set_default_mode memo

let stats_flag =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "After the run, print decide-once cache traffic, \
           canonicalisation statistics and the number of quotient \
           restrictions scanned.")

(* Tracing knob: a JSONL sink recording spans, events and injected
   faults. Observation only — results and digests are identical with or
   without it (property-tested). *)
let trace_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a JSONL event trace (spans, runtime events, injected \
           faults) to $(docv). Purely observational: results are \
           byte-identical with tracing on or off.")

let apply_trace trace = Option.iter Telemetry.open_sink trace

(* Simulator backend knob: direct synchronous view extraction, or the
   asynchronous message-passing engine under a seeded adversarial
   scheduler. Results are byte-identical either way (pinned by the
   cross-backend battery); only the execution model differs. *)
let backend_opt =
  let backend_conv =
    let parse s =
      match Locald_local.Backend.of_string s with
      | Some b -> Ok b
      | None -> Error (`Msg "backend must be sync | async")
    in
    Arg.conv (parse, Locald_local.Backend.pp)
  in
  Arg.(
    value
    & opt (some backend_conv) None
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Simulator backend: $(b,sync) (direct view extraction) or \
           $(b,async) (message passing under a seeded adversarial \
           scheduler). Results are byte-identical either way. Defaults \
           to $(b,LOCALD_BACKEND), else sync.")

let sched_seed_opt =
  Arg.(
    value
    & opt (some int) None
    & info [ "sched-seed" ] ~docv:"SEED"
        ~doc:
          "Adversarial scheduler seed for the async backend (implies \
           $(b,--backend async); default $(b,LOCALD_SCHED_SEED), else \
           0). Results do not depend on this value.")

let fifo_flag =
  Arg.(
    value & flag
    & info [ "fifo" ]
        ~doc:
          "Per-link FIFO delivery for the async backend (implies \
           $(b,--backend async)): the adversary interleaves across \
           links but preserves each link's send order.")

let apply_backend backend sched_seed fifo =
  let open Locald_local in
  let config =
    let base =
      match Backend.default () with
      | Backend.Async c -> c
      | Backend.Sync -> Async_runner.default_config
    in
    let base =
      match sched_seed with
      | Some sched_seed -> { base with Async_runner.sched_seed }
      | None -> base
    in
    if fifo then { base with Async_runner.fifo = true } else base
  in
  match backend with
  | Some Backend.Sync -> Backend.set_default Backend.Sync
  | Some (Backend.Async _) -> Backend.set_default (Backend.Async config)
  | None ->
      (* --sched-seed / --fifo alone opt into the async backend; with
         nothing given the ambient (env) default stands. *)
      if sched_seed <> None || fifo then
        Backend.set_default (Backend.Async config)

let print_runtime_stats () =
  let m = Memo.run_stats () in
  let c = Canon.run_stats () in
  Printf.printf
    "memo (%s): %d hits, %d misses, %d distinct keys; %d orbit \
     restrictions scanned\n"
    (Memo.mode_to_string (Memo.default_mode ()))
    m.Memo.hits m.Memo.misses m.Memo.distinct (Orbit.scanned ());
  Printf.printf
    "canon: %d hits, %d misses, %d exact, %d fallback\n"
    c.Canon.hits c.Canon.misses c.Canon.exact c.Canon.fallback

let maybe_stats stats = if stats then print_runtime_stats ()

let run_cmd name doc print driver =
  let run quick seed jobs memo stats trace backend sched_seed fifo =
    apply_jobs jobs;
    apply_memo memo;
    apply_trace trace;
    apply_backend backend sched_seed fifo;
    let rows, wall = Timing.time (fun () -> driver ~quick ?seed ()) in
    print rows;
    Report.print_timings
      [
        {
          Report.t_experiment = name;
          t_wall = wall;
          t_jobs = Pool.default_jobs ();
          t_speedup = None;
        };
      ];
    maybe_stats stats
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const run $ quick_flag $ seed_opt $ jobs_opt $ memo_opt $ stats_flag
      $ trace_opt $ backend_opt $ sched_seed_opt $ fifo_flag)

let table1_cmd =
  run_cmd "table1" "Regenerate the Section 1.1 results table." print_table1
    (fun ~quick ?seed () -> Experiments.table1 ~quick ?seed ())

let fig1_cmd =
  run_cmd "fig1" "Regenerate Figure 1 (layered trees and view coverage)."
    print_fig1
    (fun ~quick ?seed:_ () -> Experiments.fig1 ~quick ())

let fig2_cmd =
  run_cmd "fig2" "Regenerate Figure 2 (the G(M,r) construction)." print_fig2
    (fun ~quick ?seed:_ () -> Experiments.fig2 ~quick ())

let fig3_cmd =
  run_cmd "fig3" "Regenerate Figure 3 (the pyramid)." print_fig3
    (fun ~quick ?seed:_ () -> Experiments.fig3 ~quick ())

let corollary1_cmd =
  run_cmd "corollary1" "Regenerate the Corollary 1 experiment."
    print_corollary1
    (fun ~quick ?seed () -> Experiments.corollary1 ~quick ?seed ())

let p3_cmd =
  run_cmd "p3" "Measure the neighbourhood generator's (P3) coverage." print_p3
    (fun ~quick ?seed:_ () -> Experiments.p3 ~quick ())

let diagonal_cmd =
  run_cmd "diagonal" "Run the fuel diagonalisation against Id-oblivious candidates."
    print_fuel_diagonal
    (fun ~quick ?seed:_ () -> Experiments.fuel_diagonal ~quick ())

let construction_cmd =
  run_cmd "construction" "Run the constructive-side experiments (CV, Luby, gossip)."
    print_construction
    (fun ~quick ?seed () -> Experiments.construction ~quick ?seed ())

let oi_cmd =
  run_cmd "oi" "Show that order-invariant algorithms also fail under (B)."
    print_oi
    (fun ~quick ?seed () -> Experiments.order_invariance ~quick ?seed ())

let hereditary_cmd =
  run_cmd "hereditary" "Check hereditariness of the witness properties."
    print_hereditary
    (fun ~quick ?seed () -> Experiments.hereditary ~quick ?seed ())

let warmups_cmd =
  run_cmd "warmups" "Run the warm-up promise-problem experiments."
    print_warmups
    (fun ~quick ?seed () -> Experiments.warmups ~quick ?seed ())

let faults_cmd =
  let run quick seed jobs trace drop crashes fuel retries runs =
    apply_jobs jobs;
    apply_trace trace;
    (* Plan validation raises Invalid_argument; turn it into a usage
       error instead of an "internal error" backtrace. *)
    match
      Experiments.faults ~quick ?seed ?drop ?crashes ?fuel ?retries ?runs ()
    with
    | rows -> print_faults rows
    | exception Invalid_argument msg ->
        prerr_endline ("locald: " ^ msg);
        exit Shard.Exit.usage
  in
  let drop =
    Arg.(
      value
      & opt (some float) None
      & info [ "drop" ] ~docv:"P"
          ~doc:"Per-message loss probability in [0, 1].")
  in
  let crashes =
    Arg.(
      value
      & opt (some int) None
      & info [ "crashes" ] ~docv:"K"
          ~doc:"Number of crash-stop node failures to inject.")
  in
  let fuel =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"F"
          ~doc:"Per-node fuel budget for the decide step.")
  in
  let retries =
    Arg.(
      value
      & opt (some int) None
      & info [ "retries" ] ~docv:"R"
          ~doc:"Extra re-gossip rounds beyond the horizon's radius+1.")
  in
  let runs =
    Arg.(
      value
      & opt (some int) None
      & info [ "runs" ] ~docv:"N" ~doc:"Faulted runs per scenario.")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Measure decider accuracy and degradation under seeded fault \
          injection (message drops, crash-stop failures, fuel budgets).")
    Term.(
      const run $ quick_flag $ seed_opt $ jobs_opt $ trace_opt $ drop $ crashes
      $ fuel $ retries $ runs)

(* ------------------------------------------------------------------ *)
(* Certification and lint                                              *)
(* ------------------------------------------------------------------ *)

let certify_cmd =
  (* No timing output here, deliberately: CI asserts the certification
     run is byte-identical at --jobs 1 and --jobs 4. *)
  let run _all quick jobs memo stats trace =
    apply_jobs jobs;
    apply_memo memo;
    apply_trace trace;
    let rows = Locald_core.Certify.run ~quick () in
    Report.print_certify rows;
    maybe_stats stats;
    (* Exit 3 (verdict mismatch), per the README's exit-code
       convention shared with [merge --expect-digest]. *)
    if not (Locald_core.Certify.all_ok rows) then exit Shard.Exit.mismatch
  in
  let all_flag =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Certify every registered decider (the default; present for \
             symmetry with the other subcommands).")
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Certify the bundled deciders as Id-oblivious or Id-dependent by \
          access-trace provenance analysis; non-zero exit on any verdict \
          that contradicts a decider's declared classification.")
    Term.(
      const run $ all_flag $ quick_flag $ jobs_opt $ memo_opt $ stats_flag
      $ trace_opt)

(* Both scanners cover the whole tree by default: library, bench and
   CLI code plus the tests (test-only idioms go through --allow-test,
   not through a blind spot). *)
let default_scan_roots = [ "lib"; "bench"; "bin"; "test" ]

let scan_roots_arg cmd roots =
  let roots = if roots = [] then default_scan_roots else roots in
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  if missing <> [] then begin
    prerr_endline
      ("locald " ^ cmd ^ ": no such path: " ^ String.concat ", " missing);
    exit Shard.Exit.usage
  end;
  roots

(* Parse --rule / --allow-test rule names, failing with the usage exit
   code (and the known-rule list) on a typo. *)
let parse_rule_names cmd names =
  List.map
    (fun n ->
      match Locald_analysis.Ast_rules.of_name n with
      | Some r -> r
      | None ->
          prerr_endline
            (Printf.sprintf "locald %s: unknown rule %S (known: %s)" cmd n
               (String.concat ", "
                  (List.map Locald_analysis.Ast_rules.name
                     Locald_analysis.Ast_rules.all)));
          exit Shard.Exit.usage)
    names

let allow_test_opt =
  Arg.(
    value & opt_all string []
    & info [ "allow-test" ] ~docv:"RULE"
        ~doc:
          "Permit rule $(docv) in files under test/ (repeatable) — the \
           knob for deliberately-hostile test fixtures. Findings \
           elsewhere are unaffected.")

let findings_json_flag =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit findings as JSON objects, one per line (file, line, col, \
           rule, severity, engine, excerpt, help).")

let lint_cmd =
  let run roots json allow_test =
    let roots = scan_roots_arg "lint" roots in
    let test_allow = parse_rule_names "lint" allow_test in
    let findings =
      Locald_analysis.Lint.scan_tree ~roots
      |> List.filter (fun (f : Locald_analysis.Lint.finding) ->
             not
               (Locald_analysis.Ast_lint.under_test f.f_file
               && List.mem
                    (Locald_analysis.Ast_rules.of_lexical f.f_rule)
                    test_allow))
    in
    if json then
      List.iter
        (fun f ->
          print_endline
            (Telemetry.Json.to_string
               (Locald_analysis.Ast_lint.finding_json
                  (Locald_analysis.Ast_lint.of_lexical f))))
        findings
    else
      List.iter
        (fun f ->
          print_endline
            (Format.asprintf "%a" Locald_analysis.Lint.pp_finding f))
        findings;
    match findings with
    | [] ->
        if not json then
          Printf.printf "lint: clean (%s)\n" (String.concat " " roots)
    | fs ->
        if not json then Printf.printf "lint: %d finding(s)\n" (List.length fs);
        exit Shard.Exit.mismatch
  in
  let roots =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:"Files or directories to scan (default: lib bench bin test).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Fast lexical source checks: polymorphic compare/hash on graph \
          structures, naked .ids field access outside lib/graph and \
          lib/analysis, Random.self_init, raw polymorphic key functions \
          on decide-once memo tables outside lib/runtime. Non-zero exit \
          on findings. Deprecation window: prefer $(b,locald analyze), \
          which grounds the same rules in the parsed AST and adds the \
          race/nondeterminism/exception-safety families; lint remains \
          the fallback for sources the parser rejects.")
    Term.(const run $ roots $ findings_json_flag $ allow_test_opt)

let analyze_cmd =
  let module A = Locald_analysis.Ast_lint in
  let module R = Locald_analysis.Ast_rules in
  let run roots json sarif rule_names allow_test baseline write_baseline =
    let roots = scan_roots_arg "analyze" roots in
    let rules =
      match rule_names with
      | [] -> None
      | l -> Some (parse_rule_names "analyze" l)
    in
    let test_allow = parse_rule_names "analyze" allow_test in
    let findings = A.scan_tree ?rules ~test_allow roots in
    match write_baseline with
    | Some path ->
        A.Baseline.write path findings;
        Printf.printf "analyze: wrote %d baseline entr%s to %s\n"
          (List.length findings)
          (if List.length findings = 1 then "y" else "ies")
          path
    | None -> (
        let entries =
          match baseline with
          | None -> []
          | Some path -> (
              try A.Baseline.load path
              with Failure msg | Sys_error msg ->
                prerr_endline ("locald analyze: bad baseline: " ^ msg);
                exit Shard.Exit.usage)
        in
        let fresh = A.Baseline.subtract entries findings in
        let baselined = List.length findings - List.length fresh in
        if sarif then
          print_endline (Telemetry.Json.to_string (A.sarif fresh))
        else if json then
          List.iter
            (fun f ->
              print_endline (Telemetry.Json.to_string (A.finding_json f)))
            fresh
        else begin
          List.iter
            (fun f -> print_endline (Format.asprintf "%a" A.pp_finding f))
            fresh;
          let suffix =
            if baselined > 0 then Printf.sprintf ", %d baselined" baselined
            else ""
          in
          if fresh = [] then
            Printf.printf "analyze: clean (%s)%s\n" (String.concat " " roots)
              suffix
          else
            Printf.printf "analyze: %d finding(s)%s\n" (List.length fresh)
              suffix
        end;
        (* Unified exit codes: 0 clean, 2 findings, 124 usage. *)
        if fresh <> [] then exit Shard.Exit.incomplete)
  in
  let roots =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:"Files or directories to analyse (default: lib bench bin test).")
  in
  let sarif_flag =
    Arg.(
      value & flag
      & info [ "sarif" ]
          ~doc:"Emit a SARIF 2.1.0 log on stdout (for code-scanning upload).")
  in
  let rule_opt =
    Arg.(
      value & opt_all string []
      & info [ "rule" ] ~docv:"RULE"
          ~doc:"Run only rule $(docv) (repeatable; default: all rules).")
  in
  let baseline_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Subtract the accepted findings in $(docv) (JSONL of \
             file/rule/excerpt; line-drift tolerant) before reporting \
             and gating.")
  in
  let write_baseline_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "write-baseline" ] ~docv:"FILE"
          ~doc:
            "Write every current finding to $(docv) as a baseline and \
             exit 0 (acceptance, not a gate).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "AST-grounded static analysis: parses every .ml/.mli with the \
          compiler's parser and checks scope-resolved rules — the four \
          lint rules plus domain-race captures, nondeterminism sources \
          (global Random, raw clocks, Hashtbl iteration feeding \
          digests) and checkpoint exception-safety. Exit 0 clean, 2 on \
          findings, 124 on usage errors. Files the parser rejects fall \
          back to the lexical lint rules.")
    Term.(
      const run $ roots $ findings_json_flag $ sarif_flag $ rule_opt
      $ allow_test_opt $ baseline_opt $ write_baseline_opt)

(* ------------------------------------------------------------------ *)
(* Inspection subcommands                                              *)
(* ------------------------------------------------------------------ *)

let machine_arg =
  let parse s =
    match s with
    | "walk" -> Ok (`Walk : [ `Walk | `Twofaced | `Zigzag | `Counter ])
    | "twofaced" -> Ok `Twofaced
    | "zigzag" -> Ok `Zigzag
    | "counter" -> Ok `Counter
    | _ -> Error (`Msg "machine must be walk | twofaced | zigzag | counter")
  in
  let print ppf m =
    Fmt.string ppf
      (match m with
      | `Walk -> "walk"
      | `Twofaced -> "twofaced"
      | `Zigzag -> "zigzag"
      | `Counter -> "counter")
  in
  Arg.conv (parse, print)

let machine_of kind ~steps ~output =
  match kind with
  | `Walk -> Locald_turing.Zoo.walk ~steps ~output
  | `Twofaced -> Locald_turing.Zoo.two_faced ~steps ~real:output ~fake:(1 - output)
  | `Zigzag -> Locald_turing.Zoo.zigzag ~half:(max 1 steps) ~output
  | `Counter -> Locald_turing.Zoo.binary_counter ~bits:(max 1 steps)

let gmr_cmd =
  let run kind steps output r cap dot =
    let machine = machine_of kind ~steps ~output in
    let config = { (Gmr.default_config ~r) with Gmr.fragment_cap = cap } in
    match Gmr.build ~config ~r machine with
    | Error _ ->
        prerr_endline "machine did not halt within the configured fuel";
        exit Shard.Exit.incomplete
    | Ok t ->
        Printf.printf
          "G(%s, %d): %d nodes, %d edges; table %dx%d; steps=%d output=%d; \
           %d fragments%s; local rules: %s\n"
          machine.Locald_turing.Machine.name r (Gmr.order t) (Gmr.size t)
          t.Gmr.table_side t.Gmr.table_side t.Gmr.steps t.Gmr.output
          (List.length t.Gmr.fragments)
          (if t.Gmr.truncated then " (enumeration capped)" else "")
          (match Gmr_check.first_violation t.Gmr.lg with
          | None -> "pass"
          | Some (v, reason) -> Printf.sprintf "FAIL at %d (%s)" v reason);
        if dot then
          print_string
            (Locald_graph.Dot.of_labelled ~pp_label:Gmr.pp_label t.Gmr.lg)
  in
  let steps =
    Arg.(value & opt int 3 & info [ "steps" ] ~doc:"Machine size parameter.")
  in
  let output =
    Arg.(value & opt int 0 & info [ "output" ] ~doc:"Machine output (0 or 1).")
  in
  let r = Arg.(value & opt int 1 & info [ "r" ] ~doc:"Locality parameter r.") in
  let cap =
    Arg.(value & opt int 200 & info [ "cap" ] ~doc:"Fragment enumeration cap.")
  in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit the graph in DOT form.") in
  let kind =
    Arg.(
      value
      & opt machine_arg `Twofaced
      & info [ "machine" ] ~doc:"Zoo machine: walk | twofaced | zigzag | counter.")
  in
  Cmd.v
    (Cmd.info "gmr" ~doc:"Build and inspect a G(M,r) instance.")
    Term.(const run $ kind $ steps $ output $ r $ cap $ dot)

let coverage_cmd =
  let run arity r t jobs =
    apply_jobs jobs;
    let regime = Locald_local.Ids.f_linear_plus 1 in
    let p = { Tree_instances.regime; arity; r } in
    let c = Tree_deciders.coverage p ~t in
    Printf.printf
      "coverage (arity=%d, r=%d, t=%d, R(r)=%d): %d/%d view classes of T_r \
       occur in H_r%s\n"
      arity r t (Tree_instances.depth p) c.Tree_deciders.covered
      c.Tree_deciders.total_views
      (match c.Tree_deciders.uncovered_node with
      | None -> ""
      | Some v -> Printf.sprintf " (uncovered witness: node %d)" v)
  in
  let arity = Arg.(value & opt int 1 & info [ "arity" ] ~doc:"Tree arity.") in
  let r = Arg.(value & opt int 4 & info [ "r" ] ~doc:"Cone depth r.") in
  let t = Arg.(value & opt int 1 & info [ "t" ] ~doc:"View radius t.") in
  Cmd.v
    (Cmd.info "coverage"
       ~doc:"Measure Figure 1's view coverage for chosen parameters.")
    Term.(const run $ arity $ r $ t $ jobs_opt)

let all_cmd =
  let run quick seed jobs memo stats trace backend sched_seed fifo speedup =
    apply_jobs jobs;
    apply_memo memo;
    apply_trace trace;
    apply_backend backend sched_seed fifo;
    let timings = ref [] in
    let exp : 'r. string -> ('r -> unit) -> (unit -> 'r) -> unit =
     fun name print driver ->
      let rows, wall = Timing.time driver in
      print rows;
      let t_speedup =
        (* Optional honest baseline: rerun the experiment on a
           single-domain pool and report the ratio. *)
        if speedup && Pool.default_jobs () > 1 then begin
          let jn = Pool.default_jobs () in
          Pool.set_default_jobs 1;
          let _, wall1 = Timing.time driver in
          Pool.set_default_jobs jn;
          Some (wall1 /. wall)
        end
        else None
      in
      timings :=
        {
          Report.t_experiment = name;
          t_wall = wall;
          t_jobs = Pool.default_jobs ();
          t_speedup;
        }
        :: !timings
    in
    exp "table1" print_table1 (fun () -> Experiments.table1 ~quick ?seed ());
    exp "fig1" print_fig1 (fun () -> Experiments.fig1 ~quick ());
    exp "fig2" print_fig2 (fun () -> Experiments.fig2 ~quick ());
    exp "fig3" print_fig3 (fun () -> Experiments.fig3 ~quick ());
    exp "corollary1" print_corollary1 (fun () ->
        Experiments.corollary1 ~quick ?seed ());
    exp "p3" print_p3 (fun () -> Experiments.p3 ~quick ());
    exp "diagonal" print_fuel_diagonal (fun () ->
        Experiments.fuel_diagonal ~quick ());
    exp "construction" print_construction (fun () ->
        Experiments.construction ~quick ?seed ());
    exp "oi" print_oi (fun () -> Experiments.order_invariance ~quick ?seed ());
    exp "hereditary" print_hereditary (fun () ->
        Experiments.hereditary ~quick ?seed ());
    exp "warmups" print_warmups (fun () -> Experiments.warmups ~quick ?seed ());
    exp "faults" print_faults (fun () -> Experiments.faults ~quick ?seed ());
    Report.print_timings (List.rev !timings);
    maybe_stats stats
  in
  let speedup_flag =
    Arg.(
      value & flag
      & info [ "speedup" ]
          ~doc:
            "Also rerun each experiment at --jobs 1 and report the \
             speedup (doubles the runtime).")
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment.")
    Term.(
      const run $ quick_flag $ seed_opt $ jobs_opt $ memo_opt $ stats_flag
      $ trace_opt $ backend_opt $ sched_seed_opt $ fifo_flag $ speedup_flag)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let metrics_cmd =
  let experiments : (string * (quick:bool -> seed:int option -> unit)) list =
    [
      ( "table1",
        fun ~quick ~seed -> print_table1 (Experiments.table1 ~quick ?seed ()) );
      ("fig1", fun ~quick ~seed:_ -> print_fig1 (Experiments.fig1 ~quick ()));
      ( "corollary1",
        fun ~quick ~seed ->
          print_corollary1 (Experiments.corollary1 ~quick ?seed ()) );
      ( "certify",
        fun ~quick ~seed:_ ->
          Report.print_certify (Locald_core.Certify.run ~quick ()) );
      ( "faults",
        fun ~quick ~seed -> print_faults (Experiments.faults ~quick ?seed ()) );
    ]
  in
  let run name quick seed jobs memo trace backend sched_seed fifo =
    match List.assoc_opt name experiments with
    | None ->
        prerr_endline
          ("locald metrics: unknown experiment " ^ name ^ " (try: "
          ^ String.concat " | " (List.map fst experiments)
          ^ ")");
        exit Shard.Exit.usage
    | Some driver ->
        apply_jobs jobs;
        apply_memo memo;
        apply_trace trace;
        apply_backend backend sched_seed fifo;
        Telemetry.set_metrics true;
        Telemetry.new_run ();
        driver ~quick ~seed;
        print_endline "";
        print_endline "runtime metrics (this run):";
        Format.printf "%a@." Telemetry.pp_metrics ()
  in
  let experiment_arg =
    Arg.(
      value & pos 0 string "table1"
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "Experiment to run under metric collection: table1 | fig1 | \
             corollary1 | certify | faults (default table1).")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run one experiment with gauge and span-histogram collection \
          enabled and print the run's metrics (counters, gauges, span \
          timings). Combine with $(b,--trace) for the full event log.")
    Term.(
      const run $ experiment_arg $ quick_flag $ seed_opt $ jobs_opt $ memo_opt
      $ trace_opt $ backend_opt $ sched_seed_opt $ fifo_flag)

(* ------------------------------------------------------------------ *)
(* Sharded exhaustive runs                                             *)
(* ------------------------------------------------------------------ *)

let usage_error fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("locald: " ^ msg);
      exit Shard.Exit.usage)
    fmt

let workload_opt =
  Arg.(
    value
    & opt string Sweeps.default_name
    & info [ "workload" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf "Sharded workload: %s."
             (String.concat " | " Sweeps.names)))

let lookup_workload name =
  match Sweeps.find name with
  | Some w -> w
  | None ->
      usage_error "unknown workload %s (try: %s)" name
        (String.concat " | " Sweeps.names)

let chunk_opt =
  Arg.(
    value
    & opt (some int) None
    & info [ "chunk" ] ~docv:"RANKS"
        ~doc:
          "Checkpoint chunk size in assignment ranks (default: the \
           workload's own). Must match across the shards of one run.")

let fsync_opt =
  Arg.(
    value & opt int 1
    & info [ "fsync-every" ] ~docv:"N"
        ~doc:
          "Checkpoint appends between fsync calls (default 1: sync \
           every chunk). Larger values trade crash-window for speed.")

let throttle_opt =
  Arg.(
    value & opt float 0.
    & info [ "throttle-ms" ] ~docv:"MS"
        ~doc:
          "Testing aid: hold each chunk for at least $(docv) \
           milliseconds, so kill/resume tests have time to interrupt a \
           run mid-shard. Results are unaffected.")

let plan_of ~w ~chunk ~shards =
  let g = w.Sweeps.w_geometry () in
  let chunk = Option.value chunk ~default:w.Sweeps.w_chunk in
  match Shard.plan ~total:g.Sweeps.g_total ~chunk ~shards () with
  | p -> p
  | exception Invalid_argument msg -> usage_error "%s" msg

let shard_cmd =
  let run workload index shards checkpoint resume chunk fsync_every throttle
      jobs memo stats trace backend sched_seed fifo =
    apply_jobs jobs;
    apply_memo memo;
    apply_trace trace;
    apply_backend backend sched_seed fifo;
    let w = lookup_workload workload in
    if shards <= 0 then usage_error "--of must be positive";
    if index < 0 || index >= shards then
      usage_error "--index %d outside [0, %d)" index shards;
    let plan = plan_of ~w ~chunk ~shards in
    let eval0 = w.Sweeps.w_eval () in
    let eval ~lo ~hi =
      if throttle > 0. then Unix.sleepf (throttle /. 1000.);
      eval0 ~lo ~hi
    in
    let (s, evaluated), wall =
      Timing.time (fun () ->
          Shard.run ?checkpoint ~resume ~fsync_every ~workload:w.Sweeps.w_name
            ~plan ~index ~eval ())
    in
    Printf.printf
      "shard %d/%d (%s): %d chunks (%d evaluated, %d restored), %d correct, \
       %d wrong, digest %s  [%.2fs]\n"
      s.Shard.s_index s.Shard.s_of w.Sweeps.w_name s.Shard.s_chunks evaluated
      (s.Shard.s_chunks - evaluated)
      s.Shard.s_correct s.Shard.s_wrong s.Shard.s_digest wall;
    maybe_stats stats
  in
  let index =
    Arg.(
      required
      & opt (some int) None
      & info [ "index" ] ~docv:"I" ~doc:"This shard's index, 0-based.")
  in
  let shards =
    Arg.(
      required
      & opt (some int) None
      & info [ "of" ] ~docv:"N" ~doc:"Total shard count of the run.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"DIR"
          ~doc:
            "Write crash-safe chunk checkpoints and the completion \
             marker under $(docv) (one JSONL file per shard).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Restore the checkpoint's valid prefix (chunk sequence and \
             digest chain verified) instead of recomputing it. Without \
             a matching checkpoint this is a fresh run.")
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "Evaluate one shard of an exhaustive workload: the chunks of \
          assignment ranks owned by $(b,--index) under a deterministic \
          $(b,--of)-way partition, checkpointing each completed chunk.")
    Term.(
      const run $ workload_opt $ index $ shards $ checkpoint $ resume
      $ chunk_opt $ fsync_opt $ throttle_opt $ jobs_opt $ memo_opt $ stats_flag
      $ trace_opt $ backend_opt $ sched_seed_opt $ fifo_flag)

(* Merge reporting shared by [merge] and [sweep]: print the folded
   result, return the process exit code per the README convention. *)
let report_merged ~json ~expect_digest merged =
  match merged with
  | Shard.Complete { m_correct; m_wrong; m_assignments; m_fail; m_digest } ->
      if json then
        print_endline
          (Telemetry.Json.to_string
             (Telemetry.Json.Obj
                [
                  ("status", Telemetry.Json.String "complete");
                  ("assignments", Telemetry.Json.Int m_assignments);
                  ("correct", Telemetry.Json.Int m_correct);
                  ("wrong", Telemetry.Json.Int m_wrong);
                  ( "first_failure",
                    match m_fail with
                    | None -> Telemetry.Json.Null
                    | Some r -> Telemetry.Json.Int r );
                  ("digest", Telemetry.Json.String m_digest);
                ]))
      else
        Printf.printf "merged: %d assignments, %d correct, %d wrong%s\ndigest %s\n"
          m_assignments m_correct m_wrong
          (match m_fail with
          | None -> ""
          | Some r -> Printf.sprintf " (first failure at rank %d)" r)
          m_digest;
      (match expect_digest with
      | Some d when d <> m_digest ->
          Printf.eprintf
            "locald: merged digest %s does not match expected %s\n" m_digest d;
          Shard.Exit.mismatch
      | _ -> Shard.Exit.ok)
  | Shard.Incomplete { mi_missing; mi_correct; mi_wrong; mi_covered; mi_assignments }
    ->
      let missing = String.concat ", " (List.map string_of_int mi_missing) in
      if json then
        print_endline
          (Telemetry.Json.to_string
             (Telemetry.Json.Obj
                [
                  ("status", Telemetry.Json.String "incomplete");
                  ( "missing_shards",
                    Telemetry.Json.List
                      (List.map (fun i -> Telemetry.Json.Int i) mi_missing) );
                  ("covered", Telemetry.Json.Int mi_covered);
                  ("assignments", Telemetry.Json.Int mi_assignments);
                  ("correct", Telemetry.Json.Int mi_correct);
                  ("wrong", Telemetry.Json.Int mi_wrong);
                ]))
      else
        Printf.printf
          "incomplete: missing shards [%s]; %d/%d ranks covered (%d correct, \
           %d wrong) — no digest for a partial result\n"
          missing mi_covered mi_assignments mi_correct mi_wrong;
      Shard.Exit.incomplete

(* Checkpoint-directory discovery for [merge]: the run's geometry is
   read back from whatever the directory holds (a completion summary
   preferably, else a checkpoint header), so merging needs no flags
   beyond the directory. *)
let scan_shard_indices dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      Array.to_list entries
      |> List.filter_map (fun e ->
             try
               Scanf.sscanf e "shard-%d.%s%!" (fun i rest ->
                   if rest = "jsonl" || rest = "done.json" then Some i
                   else None)
             with Scanf.Scan_failure _ | End_of_file | Failure _ -> None)
      |> List.sort_uniq compare

let discover_geometry ~dir indices =
  let from_done i =
    Option.bind (Checkpoint.read_done ~dir ~index:i) (fun j ->
        Option.map
          (fun s ->
            (s.Shard.s_workload, s.Shard.s_of, s.Shard.s_total, s.Shard.s_chunk))
          (Shard.summary_of_json j))
  in
  let from_header i =
    Option.map
      (fun (h, _) ->
        Checkpoint.(h.h_workload, h.h_of, h.h_total, h.h_chunk))
      (Checkpoint.load ~dir ~index:i)
  in
  let rec first f = function
    | [] -> None
    | i :: tl -> ( match f i with Some x -> Some x | None -> first f tl)
  in
  match first from_done indices with
  | Some g -> Some g
  | None -> first from_header indices

let json_flag =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Print the merged result as one JSON object.")

let expect_digest_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "expect-digest" ] ~docv:"HEX"
        ~doc:
          "Fail (exit 3) unless the merged digest equals $(docv) — how \
           CI compares a sweep against the committed bench pin.")

let merge_cmd =
  let run dir json expect_digest =
    let indices = scan_shard_indices dir in
    if indices = [] then usage_error "no checkpoint data under %s" dir;
    match discover_geometry ~dir indices with
    | None -> usage_error "no readable checkpoint header under %s" dir
    | Some (wname, shards, total, chunk) ->
        let plan =
          match Shard.plan ~total ~chunk ~shards () with
          | p -> p
          | exception Invalid_argument msg -> usage_error "%s" msg
        in
        let summaries = Shard.read_summaries ~dir ~shards in
        (match Shard.merge ~workload:wname ~plan ~summaries with
        | Error msg ->
            prerr_endline ("locald merge: " ^ msg);
            exit Shard.Exit.mismatch
        | Ok merged -> exit (report_merged ~json ~expect_digest merged))
  in
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Checkpoint directory of a sharded run.")
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:
         "Fold the per-shard summaries in a checkpoint directory into \
          the exact unsharded result. Missing shards yield an honest \
          $(b,incomplete) report and exit 2, never a fabricated total.")
    Term.(const run $ dir $ json_flag $ expect_digest_opt)

(* OCaml's Sys signal numbers are internal (negative); name the ones a
   supervisor actually sees. *)
let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigint then "SIGINT"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigabrt then "SIGABRT"
  else Printf.sprintf "signal %d" s

let describe_status = function
  | Unix.WEXITED c -> Printf.sprintf "exit %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "killed by %s" (signal_name s)
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by %s" (signal_name s)

let sweep_cmd =
  let run workload shards procs dir chunk fsync_every timeout max_retries
      retry_seed throttle expect_digest json jobs memo trace backend sched_seed
      fifo =
    apply_jobs jobs;
    apply_memo memo;
    apply_trace trace;
    apply_backend backend sched_seed fifo;
    let w = lookup_workload workload in
    if shards <= 0 then usage_error "--of must be positive";
    if procs <= 0 then usage_error "--procs must be positive";
    if max_retries < 0 then usage_error "--max-retries must be >= 0";
    let plan = plan_of ~w ~chunk ~shards in
    let child_argv i =
      let base =
        [
          Sys.executable_name; "shard";
          "--workload"; w.Sweeps.w_name;
          "--index"; string_of_int i;
          "--of"; string_of_int shards;
          "--checkpoint"; dir;
          "--resume";
          "--chunk"; string_of_int plan.Shard.p_chunk;
          "--fsync-every"; string_of_int fsync_every;
        ]
      in
      let base =
        if throttle > 0. then
          base @ [ "--throttle-ms"; Printf.sprintf "%g" throttle ]
        else base
      in
      let base =
        match jobs with
        | Some j -> base @ [ "--jobs"; string_of_int j ]
        | None -> base
      in
      (* Forward the backend selection: shard children must evaluate
         under the same engine the supervisor was asked for. *)
      let base =
        match backend with
        | Some b -> base @ [ "--backend"; Locald_local.Backend.to_string b ]
        | None -> base
      in
      let base =
        match sched_seed with
        | Some s -> base @ [ "--sched-seed"; string_of_int s ]
        | None -> base
      in
      let base = if fifo then base @ [ "--fifo" ] else base in
      Array.of_list base
    in
    let spawn i =
      let argv = child_argv i in
      Unix.create_process argv.(0) argv Unix.stdin Unix.stdout Unix.stderr
    in
    (* Deadlines are durations, not calendar stamps: the monotonic
       clock is immune to NTP steps mid-sweep. *)
    let now () = Timing.now () in
    let deadline_from t =
      match timeout with None -> infinity | Some s -> t +. s
    in
    (* Supervisor state: shards queue through [pending] (ready to
       start), [delayed] (waiting out a backoff), [running] (live
       child), and end in done or [failed]. Every requeue resumes from
       the checkpoint, so a retried shard repeats only the chunks the
       crash lost. *)
    let pending = Queue.create () in
    for i = 0 to shards - 1 do
      Queue.add (i, 0) pending
    done;
    let delayed = ref [] in
    let running = Hashtbl.create 8 in
    let failed = ref [] in
    let finished = ref 0 in
    while !finished + List.length !failed < shards do
      let t = now () in
      let ready, later = List.partition (fun (at, _, _) -> at <= t) !delayed in
      delayed := later;
      List.iter (fun (_, i, a) -> Queue.add (i, a) pending) ready;
      while Hashtbl.length running < procs && not (Queue.is_empty pending) do
        let i, attempt = Queue.pop pending in
        let pid = spawn i in
        Telemetry.event "sweep.spawn"
          [
            ("shard", Telemetry.Json.Int i);
            ("attempt", Telemetry.Json.Int attempt);
            ("pid", Telemetry.Json.Int pid);
          ];
        Printf.printf "sweep: shard %d started (pid %d%s)\n%!" i pid
          (if attempt > 0 then Printf.sprintf ", retry %d" attempt else "");
        Hashtbl.replace running pid (i, attempt, deadline_from (now ()))
      done;
      let timed_out = ref [] in
      Hashtbl.iter
        (fun pid (i, attempt, deadline) ->
          if now () > deadline then timed_out := (pid, i, attempt) :: !timed_out)
        running;
      List.iter
        (fun (pid, i, attempt) ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          Printf.printf "sweep: shard %d (pid %d) exceeded --timeout; killed\n%!"
            i pid;
          (* Stop re-killing while we wait to reap it. *)
          Hashtbl.replace running pid (i, attempt, infinity))
        !timed_out;
      let reaped = ref [] in
      Hashtbl.iter
        (fun pid _ ->
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ -> ()
          | _, status -> reaped := (pid, status) :: !reaped
          | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
              reaped := (pid, Unix.WEXITED 127) :: !reaped)
        running;
      List.iter
        (fun (pid, status) ->
          let i, attempt, _ = Hashtbl.find running pid in
          Hashtbl.remove running pid;
          Telemetry.event "shard.exit"
            [
              ("shard", Telemetry.Json.Int i);
              ("attempt", Telemetry.Json.Int attempt);
              ("status", Telemetry.Json.String (describe_status status));
            ];
          let ok =
            status = Unix.WEXITED 0 && Checkpoint.read_done ~dir ~index:i <> None
          in
          if ok then begin
            incr finished;
            Printf.printf "sweep: shard %d finished (%d/%d)\n%!" i !finished
              shards
          end
          else if attempt >= max_retries then begin
            failed := i :: !failed;
            Printf.printf
              "sweep: shard %d failed (%s); %d retries exhausted\n%!" i
              (describe_status status) max_retries
          end
          else begin
            let delay = Shard.backoff ~seed:retry_seed ~index:i ~attempt in
            Telemetry.event "shard.retry"
              [
                ("shard", Telemetry.Json.Int i);
                ("attempt", Telemetry.Json.Int attempt);
                ("delay_s", Telemetry.Json.Float delay);
              ];
            Printf.printf
              "sweep: shard %d died (%s); retrying in %.2fs (retry %d/%d)\n%!"
              i (describe_status status) delay (attempt + 1) max_retries;
            delayed := (now () +. delay, i, attempt + 1) :: !delayed
          end)
        !reaped;
      if !reaped = [] then Unix.sleepf 0.05
    done;
    let summaries = Shard.read_summaries ~dir ~shards in
    match Shard.merge ~workload:w.Sweeps.w_name ~plan ~summaries with
    | Error msg ->
        prerr_endline ("locald sweep: inconsistent summaries: " ^ msg);
        exit Shard.Exit.mismatch
    | Ok merged ->
        if !failed <> [] then
          Printf.printf "sweep: failed shards after retries: [%s]\n"
            (String.concat ", "
               (List.map string_of_int (List.sort compare !failed)));
        exit (report_merged ~json ~expect_digest merged)
  in
  let procs =
    Arg.(
      value & opt int 2
      & info [ "procs" ] ~docv:"K"
          ~doc:"Shard subprocesses to keep running at once (default 2).")
  in
  let shards =
    Arg.(
      required
      & opt (some int) None
      & info [ "of" ] ~docv:"N" ~doc:"Shard count to partition the run into.")
  in
  let dir =
    Arg.(
      value & opt string "locald-ckpt"
      & info [ "checkpoint" ] ~docv:"DIR"
          ~doc:
            "Checkpoint directory shared by the shard subprocesses \
             (default $(b,locald-ckpt)). A directory left by an \
             interrupted sweep of the same run is resumed, not redone.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:
            "Kill (SIGKILL) any shard running longer than $(docv) \
             seconds; it is retried like a crash, resuming from its \
             checkpoint.")
  in
  let max_retries =
    Arg.(
      value & opt int 2
      & info [ "max-retries" ] ~docv:"R"
          ~doc:
            "Retries per shard before it is abandoned and the sweep \
             reports incomplete (default 2).")
  in
  let retry_seed =
    Arg.(
      value & opt int 0
      & info [ "retry-seed" ] ~docv:"SEED"
          ~doc:
            "Seed of the deterministic backoff jitter — the retry \
             schedule is reproducible from it.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Supervise a full sharded run: fork $(b,--of) shard \
          subprocesses ($(b,--procs) at a time), retry crashed or \
          timed-out shards with capped exponential backoff (resuming \
          their checkpoints), and merge. Exit 0 on a complete merge, 2 \
          if shards are missing after retries, 3 on a digest or \
          consistency mismatch.")
    Term.(
      const run $ workload_opt $ shards $ procs $ dir $ chunk_opt $ fsync_opt
      $ timeout $ max_retries $ retry_seed $ throttle_opt $ expect_digest_opt
      $ json_flag $ jobs_opt $ memo_opt $ trace_opt $ backend_opt
      $ sched_seed_opt $ fifo_flag)

(* ------------------------------------------------------------------ *)
(* The decision service                                                *)
(* ------------------------------------------------------------------ *)

let socket_opt =
  Arg.(
    value & opt string "locald.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path (default $(b,locald.sock)).")

let tcp_port_opt =
  Arg.(
    value
    & opt (some int) None
    & info [ "tcp-port" ] ~docv:"PORT"
        ~doc:"Also (serve) or instead (client) speak TCP on loopback \
              $(docv).")

let serve_cmd =
  let run socket tcp_port max_inflight max_engines memo_capacity jobs memo
      trace backend sched_seed fifo =
    (* Where the one-shot CLI warns and falls back on a typo'd
       environment, the daemon refuses to start: a silently coerced
       backend would corrupt every pinned digest it serves. *)
    (match Service.env_problems () with
    | [] -> ()
    | problems ->
        List.iter (fun p -> prerr_endline ("locald serve: " ^ p)) problems;
        exit Shard.Exit.usage);
    if max_inflight < 1 then usage_error "--max-inflight must be positive";
    if max_engines < 1 then usage_error "--max-engines must be positive";
    if memo_capacity < 1 then usage_error "--memo-capacity must be positive";
    apply_jobs jobs;
    apply_memo memo;
    apply_trace trace;
    apply_backend backend sched_seed fifo;
    (* Metrics on: the serve.request span then feeds the latency
       histograms a metrics request reports. *)
    Telemetry.set_metrics true;
    (* Replace the batch CLI's flush-and-redeliver handlers (installed
       in main below): re-delivery kills in-flight connections, which
       is precisely wrong for a daemon. Here the signal only flips the
       drain flag; the loop finishes what it owes and returns, and the
       normal exit path flushes the trace sink. *)
    let drain = Atomic.make false in
    let graceful = Sys.Signal_handle (fun _ -> Atomic.set drain true) in
    Sys.set_signal Sys.sigterm graceful;
    Sys.set_signal Sys.sigint graceful;
    let svc = Service.create ~max_engines ~memo_capacity () in
    let listeners =
      Serve.listener_unix socket
      ::
      (match tcp_port with
      | Some port -> [ Serve.listener_tcp ~port () ]
      | None -> [])
    in
    Printf.printf "serve: listening on %s%s (inflight <= %d, engines <= %d)\n%!"
      socket
      (match tcp_port with
      | Some port -> Printf.sprintf " and 127.0.0.1:%d" port
      | None -> "")
      max_inflight max_engines;
    let stats =
      Serve.run ~max_inflight ~drain ~listeners
        ~handlers:(Service.handlers svc) ()
    in
    (try Sys.remove socket with Sys_error _ -> ());
    Printf.printf
      "serve: drained — %d requests (%d busy, %d malformed) over %d \
       connections\n%!"
      stats.Serve.served stats.Serve.busy stats.Serve.malformed
      stats.Serve.connections;
    exit Shard.Exit.ok
  in
  let max_inflight =
    Arg.(
      value & opt int 64
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Bound on queued requests (default 64): frames arriving \
             past it are answered $(b,busy) immediately instead of \
             buffered without bound.")
  in
  let max_engines =
    Arg.(
      value & opt int Service.default_max_engines
      & info [ "max-engines" ] ~docv:"N"
          ~doc:
            "Bound on cached engines — (workload, backend, memo) \
             prepared-view/memo structures kept warm across requests \
             (default 8, LRU eviction).")
  in
  let memo_capacity =
    Arg.(
      value & opt int Service.default_memo_capacity
      & info [ "memo-capacity" ] ~docv:"N"
          ~doc:
            "Bound on each engine's decide-once memo entries (default \
             65536); overflowing drops the older half. Transparent to \
             results.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived decision service: accept decide / certify / \
          metrics / shutdown requests as length-prefixed JSON frames \
          over a Unix-domain (and optionally TCP) socket. Engines and \
          their decide-once memo tables persist across requests; \
          per-request backend/seed/memo/jobs override the startup \
          defaults without touching them. SIGTERM/SIGINT (or a \
          shutdown request) drain: in-flight requests are answered, \
          then the daemon exits 0.")
    Term.(
      const run $ socket_opt $ tcp_port_opt $ max_inflight $ max_engines
      $ memo_capacity $ jobs_opt $ memo_opt $ trace_opt $ backend_opt
      $ sched_seed_opt $ fifo_flag)

let client_cmd =
  let run op socket tcp_port workload lo hi backend sched_seed fifo memo jobs
      id =
    let config =
      {
        Proto.c_backend =
          Option.map Locald_local.Backend.to_string backend;
        c_sched_seed = sched_seed;
        c_fifo = (if fifo then Some true else None);
        c_memo = Option.map Memo.mode_to_string memo;
        c_jobs = jobs;
      }
    in
    let req = Proto.request ?workload ?lo ?hi ~config ~id op in
    let fd =
      match tcp_port with
      | Some port -> Proto.connect_tcp ~port ()
      | None -> Proto.connect_unix socket
    in
    Proto.write_frame fd (Proto.request_to_json req);
    match Proto.read_frame fd with
    | None ->
        prerr_endline "locald client: connection closed without a response";
        exit Shard.Exit.incomplete
    | Some json ->
        print_endline (Telemetry.Json.to_string json);
        let v = Proto.response_view json in
        if v.Proto.v_ok then exit Shard.Exit.ok
        else if v.Proto.v_busy then exit Shard.Exit.incomplete
        else exit Shard.Exit.mismatch
  in
  let op =
    let ops =
      [
        ("decide", Proto.Decide); ("certify", Proto.Certify);
        ("metrics", Proto.Metrics); ("ping", Proto.Ping);
        ("shutdown", Proto.Shutdown);
      ]
    in
    Arg.(
      required
      & pos 0 (some (enum ops)) None
      & info [] ~docv:"OP"
          ~doc:"One of $(b,decide), $(b,certify), $(b,metrics), \
                $(b,ping), $(b,shutdown).")
  in
  let workload =
    Arg.(
      value
      & opt (some string) None
      & info [ "workload" ] ~docv:"NAME"
          ~doc:"Sweep workload for $(b,decide) (default \
                $(b,exhaustive-decider)).")
  in
  let lo =
    Arg.(
      value
      & opt (some int) None
      & info [ "lo" ] ~docv:"RANK" ~doc:"Range start (default 0).")
  in
  let hi =
    Arg.(
      value
      & opt (some int) None
      & info [ "hi" ] ~docv:"RANK"
          ~doc:"Range end, exclusive (default: the whole rank space).")
  in
  let id =
    Arg.(
      value & opt int 0
      & info [ "id" ] ~docv:"N" ~doc:"Request id echoed in the response.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "One request against a running $(b,locald serve): send a \
          frame, print the JSON response. Exit 0 on an ok response, 2 \
          on busy, 3 on an error response. $(b,--backend) / \
          $(b,--sched-seed) / $(b,--fifo) / $(b,--memo) / $(b,--jobs) \
          travel as per-request configuration.")
    Term.(
      const run $ op $ socket_opt $ tcp_port_opt $ workload $ lo $ hi
      $ backend_opt $ sched_seed_opt $ fifo_flag $ memo_opt $ jobs_opt $ id)

let main =
  let doc =
    "Reproduction of `What can be decided locally without identifiers?' \
     (Fraigniaud, G\xC3\xB6\xC3\xB6s, Korman, Suomela; PODC 2013)"
  in
  Cmd.group
    (Cmd.info "locald" ~version:"1.0.0" ~doc)
    [
      table1_cmd; fig1_cmd; fig2_cmd; fig3_cmd; corollary1_cmd; p3_cmd;
      diagonal_cmd; oi_cmd; hereditary_cmd; construction_cmd; warmups_cmd;
      faults_cmd; certify_cmd; lint_cmd; analyze_cmd; gmr_cmd; coverage_cmd;
      metrics_cmd;
      shard_cmd; merge_cmd; sweep_cmd; serve_cmd; client_cmd; all_cmd;
    ]

let () =
  (* SIGINT/SIGTERM flush the trace sink and any open checkpoint
     writers before the process dies by the signal — an interrupted
     shard loses nothing past its last chunk. *)
  Telemetry.install_signal_handlers ();
  exit (Cmd.eval main)
