(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper (the same
   records as the [locald] CLI — one experiment per paper artefact:
   T1, F1, F2, F3, C1, W2/W3) and prints them.

   Part 2 runs bechamel micro-benchmarks over the library's hot paths:
   view extraction, rooted isomorphism, Turing-machine execution,
   table and fragment construction, the structure rules and the
   deciders — one [Test.make] per operation. *)

open Bechamel
open Toolkit
open Locald_graph
open Locald_turing
open Locald_local
open Locald_core

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's tables and figures                              *)
(* ------------------------------------------------------------------ *)

let regenerate_paper_artefacts () =
  print_endline "=================================================================";
  print_endline " PART 1: regenerated paper artefacts";
  print_endline "=================================================================";
  Report.print_table1 (Experiments.table1 ());
  Report.print_fig1 (Experiments.fig1 ());
  Report.print_fig2 (Experiments.fig2 ());
  Report.print_fig3 (Experiments.fig3 ());
  Report.print_corollary1 (Experiments.corollary1 ());
  Report.print_p3 (Experiments.p3 ());
  Report.print_fuel_diagonal (Experiments.fuel_diagonal ());
  Report.print_construction (Experiments.construction ());
  Report.print_oi (Experiments.order_invariance ());
  Report.print_hereditary (Experiments.hereditary ());
  Report.print_warmups (Experiments.warmups ());
  (* quick: the full fault sweep is minutes-long and belongs to the CLI *)
  Report.print_faults (Experiments.faults ~quick:true ())

(* ------------------------------------------------------------------ *)
(* Part 2: micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let regime = Ids.f_linear_plus 1

(* Pre-built inputs shared by the benchmarks (construction cost is
   measured separately). *)
let tree_params = { Tree_instances.regime; arity = 2; r = 1 }
let big_tree = lazy (Tree_instances.big_tree tree_params)

let gmr_config = { (Gmr.default_config ~r:1) with Gmr.fragment_cap = 100 }

let gmr_instance =
  lazy
    (match
       Gmr.build ~config:gmr_config ~r:1 (Zoo.two_faced ~steps:3 ~real:0 ~fake:1)
     with
    | Ok t -> t
    | Error _ -> assert false)

let gmr_fast = lazy (Gmr_deciders.Fast.prepare (Lazy.force gmr_instance).Gmr.lg)

let bench_view_extraction =
  Test.make ~name:"view-extraction (T_r, radius 2)"
    (Staged.stage (fun () ->
         let lg = Lazy.force big_tree in
         ignore (View.extract lg ~center:17 ~radius:2)))

let bench_rooted_iso =
  let lg = lazy (Labelled.init (Gen.grid 5 5) (fun v -> v mod 3)) in
  Test.make ~name:"rooted isomorphism (5x5 grid views)"
    (Staged.stage (fun () ->
         let lg = Lazy.force lg in
         let a = View.extract lg ~center:12 ~radius:2 in
         let b = View.extract lg ~center:12 ~radius:2 in
         ignore (Iso.views_isomorphic ( = ) a b)))

let bench_view_signature =
  Test.make ~name:"view signature (T_r, radius 2)"
    (Staged.stage (fun () ->
         let lg = Lazy.force big_tree in
         let v = View.extract lg ~center:17 ~radius:2 in
         ignore (Iso.view_signature Hashtbl.hash v)))

let bench_tm_execution =
  let counter = Zoo.binary_counter ~bits:3 in
  Test.make ~name:"TM execution (counter, 3 bits)"
    (Staged.stage (fun () -> ignore (Exec.run ~fuel:1000 counter)))

let bench_table_construction =
  let m = Zoo.zigzag ~half:3 ~output:0 in
  Test.make ~name:"execution-table construction"
    (Staged.stage (fun () -> ignore (Table.of_machine ~fuel:64 m)))

let bench_fragment_enumeration =
  let m = Zoo.walk ~steps:2 ~output:0 in
  Test.make ~name:"fragment enumeration (3x3, cap 200)"
    (Staged.stage (fun () -> ignore (Fragment.enumerate m ~w:3 ~h:3 ~cap:200)))

let bench_gmr_build =
  Test.make ~name:"G(M,r) assembly (cap 100)"
    (Staged.stage (fun () ->
         ignore (Gmr.build ~config:gmr_config ~r:1 (Zoo.walk ~steps:2 ~output:0))))

let bench_structure_rules =
  Test.make ~name:"structure rules, whole graph"
    (Staged.stage (fun () ->
         ignore (Gmr_check.structure_array (Lazy.force gmr_instance).Gmr.lg)))

let bench_fast_ld =
  let rng = Random.State.make [| 21 |] in
  Test.make ~name:"LD decider (fast path, one assignment)"
    (Staged.stage (fun () ->
         let t = Lazy.force gmr_instance in
         let ids = Ids.shuffled rng (Gmr.order t) in
         ignore (Gmr_deciders.Fast.ld (Lazy.force gmr_fast) ~ids)))

let bench_tree_verifier =
  Test.make ~name:"P' verifier on T_r"
    (Staged.stage (fun () ->
         ignore
           (Locald_decision.Decider.decide_oblivious
              (Tree_deciders.pprime_verifier tree_params)
              (Lazy.force big_tree))))

let bench_coverage =
  let p1 = { Tree_instances.regime; arity = 1; r = 4 } in
  Test.make ~name:"view coverage (arity 1, r=4, t=1)"
    (Staged.stage (fun () -> ignore (Tree_deciders.coverage p1 ~t:1)))

let bench_a_star =
  let alg = Tree_deciders.p_decider tree_params in
  let simulated =
    Locald_decision.Simulation.a_star
      ~budget:
        (Locald_decision.Simulation.Sampled { bound = 12; trials = 16; seed = 5 })
      alg
  in
  let instance = lazy (Tree_instances.small_instance tree_params ~apex:(1, 1)) in
  Test.make ~name:"A* simulation (sampled, one instance)"
    (Staged.stage (fun () ->
         ignore
           (Locald_decision.Decider.decide_oblivious simulated
              (Lazy.force instance))))

let bench_gossip_engine =
  let lg = lazy (Labelled.init (Gen.grid 6 6) (fun v -> v mod 4)) in
  let alg =
    Algorithm.make ~name:"fingerprint" ~radius:2 (fun view ->
        Iso.view_signature Hashtbl.hash view)
  in
  let rng = Random.State.make [| 22 |] in
  Test.make ~name:"message-passing engine (6x6 grid, t=2)"
    (Staged.stage (fun () ->
         let lg = Lazy.force lg in
         let ids = Ids.shuffled rng (Labelled.order lg) in
         ignore (Runner.run_message_passing alg lg ~ids)))

(* The fault-injected engine on the same instance as the fault-free
   benchmark above: the empty plan measures the pure bookkeeping
   overhead, the lossy plan the cost of re-gossip plus coin flips. *)
let bench_fault_engine_empty =
  let lg = lazy (Labelled.init (Gen.grid 6 6) (fun v -> v mod 4)) in
  let alg =
    Algorithm.make ~name:"fingerprint" ~radius:2 (fun view ->
        Iso.view_signature Hashtbl.hash view)
  in
  let rng = Random.State.make [| 22 |] in
  Test.make ~name:"fault engine, empty plan (6x6 grid, t=2)"
    (Staged.stage (fun () ->
         let lg = Lazy.force lg in
         let ids = Ids.shuffled rng (Labelled.order lg) in
         ignore (Fault_runner.run ~plan:Faults.empty alg lg ~ids)))

let bench_fault_engine_lossy =
  let lg = lazy (Labelled.init (Gen.grid 6 6) (fun v -> v mod 4)) in
  let alg =
    Algorithm.make ~name:"fingerprint" ~radius:2 (fun view ->
        Iso.view_signature Hashtbl.hash view)
  in
  let rng = Random.State.make [| 22 |] in
  let plan = Faults.make ~seed:7 ~drop:0.1 ~retries:1 () in
  Test.make ~name:"fault engine, drop 0.1 + 1 retry (6x6)"
    (Staged.stage (fun () ->
         let lg = Lazy.force lg in
         let ids = Ids.shuffled rng (Labelled.order lg) in
         ignore (Fault_runner.run ~plan alg lg ~ids)))

(* The asynchronous engine on the same instance as the gossip
   benchmark: heap mode measures the adversarial scheduler's cost,
   FIFO mode the per-link queue discipline. *)
let bench_async_engine =
  let lg = lazy (Labelled.init (Gen.grid 6 6) (fun v -> v mod 4)) in
  let alg =
    Algorithm.make ~name:"fingerprint" ~radius:2 (fun view ->
        Iso.view_signature Hashtbl.hash view)
  in
  let rng = Random.State.make [| 22 |] in
  Test.make ~name:"async engine, heap scheduler (6x6, t=2)"
    (Staged.stage (fun () ->
         let lg = Lazy.force lg in
         let ids = Ids.shuffled rng (Labelled.order lg) in
         ignore
           (Async_runner.run
              ~config:{ Async_runner.sched_seed = 7; fifo = false }
              alg lg ~ids)))

let bench_async_engine_fifo =
  let lg = lazy (Labelled.init (Gen.grid 6 6) (fun v -> v mod 4)) in
  let alg =
    Algorithm.make ~name:"fingerprint" ~radius:2 (fun view ->
        Iso.view_signature Hashtbl.hash view)
  in
  let rng = Random.State.make [| 22 |] in
  Test.make ~name:"async engine, per-link FIFO (6x6, t=2)"
    (Staged.stage (fun () ->
         let lg = Lazy.force lg in
         let ids = Ids.shuffled rng (Labelled.order lg) in
         ignore
           (Async_runner.run
              ~config:{ Async_runner.sched_seed = 7; fifo = true }
              alg lg ~ids)))

let bench_fault_coins =
  let plan = Faults.make ~seed:7 ~drop:0.1 () in
  Test.make ~name:"fault coins (1000 drop draws)"
    (Staged.stage (fun () ->
         for i = 0 to 999 do
           ignore (Faults.drops plan ~round:1 ~src:i ~dst:(i + 1))
         done))

let tests =
  [
    bench_view_extraction;
    bench_rooted_iso;
    bench_view_signature;
    bench_tm_execution;
    bench_table_construction;
    bench_fragment_enumeration;
    bench_gmr_build;
    bench_structure_rules;
    bench_fast_ld;
    bench_tree_verifier;
    bench_coverage;
    bench_a_star;
    bench_gossip_engine;
    bench_async_engine;
    bench_async_engine_fifo;
    bench_fault_engine_empty;
    bench_fault_engine_lossy;
    bench_fault_coins;
  ]

let run_benchmarks () =
  print_endline "";
  print_endline "=================================================================";
  print_endline " PART 2: micro-benchmarks (bechamel, monotonic clock)";
  print_endline "=================================================================";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  Printf.printf "%-44s %16s %10s\n" "benchmark" "time/run" "r^2";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols Instance.monotonic_clock raw in
          let time_ns =
            match Analyze.OLS.estimates est with
            | Some [ e ] -> e
            | Some _ | None -> nan
          in
          let r2 = Option.value ~default:nan (Analyze.OLS.r_square est) in
          let pretty t =
            if t >= 1e9 then Printf.sprintf "%.3f s" (t /. 1e9)
            else if t >= 1e6 then Printf.sprintf "%.3f ms" (t /. 1e6)
            else if t >= 1e3 then Printf.sprintf "%.3f us" (t /. 1e3)
            else Printf.sprintf "%.1f ns" t
          in
          Printf.printf "%-44s %16s %10.4f\n%!" name (pretty time_ns) r2)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Part 3: ablations                                                   *)
(* ------------------------------------------------------------------ *)

(* Monotonic: ablation timings must not jump with NTP/calendar steps. *)
let timed f = Locald_runtime.Timing.time f

let ablation_fragment_cap () =
  print_endline "";
  print_endline "ablation A1: fragment-collection cap (G(twofaced3, 1))";
  Printf.printf "%8s %10s %8s %9s %9s %8s\n" "cap" "fragments" "nodes"
    "edges" "build(s)" "rules";
  List.iter
    (fun cap ->
      let config = { (Gmr.default_config ~r:1) with Gmr.fragment_cap = cap } in
      match
        timed (fun () ->
            Gmr.build ~config ~r:1 (Zoo.two_faced ~steps:3 ~real:0 ~fake:1))
      with
      | Ok t, dt ->
          Printf.printf "%8d %10d %8d %9d %9.3f %8s\n" cap
            (List.length t.Gmr.fragments)
            (Gmr.order t) (Gmr.size t) dt
            (if Gmr_check.structure_ok t then "pass" else "FAIL")
      | Error _, _ -> Printf.printf "%8d (did not build)\n" cap)
    [ 25; 50; 100; 200; 400 ]

let ablation_phases () =
  print_endline "";
  print_endline "ablation A2: aligned anchor phases of the fragments";
  Printf.printf "%10s %10s %8s %9s %8s\n" "phases" "fragments" "nodes" "edges" "rules";
  List.iter
    (fun all_phases ->
      let config =
        { (Gmr.default_config ~r:1) with
          Gmr.fragment_cap = 50;
          all_phases;
        }
      in
      match Gmr.build ~config ~r:1 (Zoo.two_faced ~steps:3 ~real:0 ~fake:1) with
      | Ok t ->
          Printf.printf "%10s %10d %8d %9d %8s\n"
            (if all_phases then "all (36)" else "origin")
            (List.length t.Gmr.fragments)
            (Gmr.order t) (Gmr.size t)
            (if Gmr_check.structure_ok t then "pass" else "FAIL")
      | Error _ -> ())
    [ false; true ]

let ablation_coverage_scaling () =
  print_endline "";
  print_endline "ablation A3: coverage experiment scaling (arity 1, t = 1)";
  Printf.printf "%6s %8s %10s %12s %10s\n" "r" "R(r)" "|T_r|" "classes" "time(s)";
  List.iter
    (fun r ->
      let p = { Tree_instances.regime; arity = 1; r } in
      let c, dt = timed (fun () -> Tree_deciders.coverage p ~t:1) in
      Printf.printf "%6d %8d %10d %7d/%-6d %8.3f\n" r (Tree_instances.depth p)
        (Bound.tree_size ~arity:1 ~depth:(Tree_instances.depth p))
        c.Tree_deciders.covered c.Tree_deciders.total_views dt)
    [ 2; 4; 8; 16; 32 ]

let ablation_scale () =
  print_endline "";
  print_endline
    "ablation A4: Section 2 at scale (arity 2, r = 3, f(n) = n: |T_3| = 262143)";
  let regime = Ids.f_identity in
  let p = { Tree_instances.regime; arity = 2; r = 3 } in
  let tr, t_build = timed (fun () -> Tree_instances.big_tree p) in
  Printf.printf "  build T_3 (%d nodes): %.2fs\n" (Labelled.order tr) t_build;
  let verdict, t_verify =
    timed (fun () ->
        Locald_decision.Decider.decide_oblivious
          (Tree_deciders.pprime_verifier p) tr)
  in
  Printf.printf "  P' verifier over every node: %.2fs (accepts: %b)\n" t_verify
    (Locald_decision.Verdict.accepts verdict);
  let rng = Random.State.make [| 5 |] in
  let ids = Ids.sample rng regime ~n:(Labelled.order tr) in
  let v2, t_decide =
    timed (fun () ->
        Locald_decision.Decider.decide (Tree_deciders.p_decider p) tr ~ids)
  in
  Printf.printf "  P decider, one assignment: %.2fs (rejects T_3: %b)\n" t_decide
    (Locald_decision.Verdict.rejects v2)

let run_ablations () =
  print_endline "";
  print_endline "=================================================================";
  print_endline " PART 3: ablations (design choices called out in DESIGN.md)";
  print_endline "=================================================================";
  ablation_fragment_cap ();
  ablation_phases ();
  ablation_coverage_scaling ();
  ablation_scale ()

(* ------------------------------------------------------------------ *)
(* Part 4: the machine-readable quick bench (BENCH_quick.json)         *)
(* ------------------------------------------------------------------ *)

(* Each workload runs at --jobs 1 and --jobs 4 and reports wall-clock,
   problem size and a digest of the full result; equal digests across
   job counts are the pool's determinism contract, checked here on
   every bench run. *)

let digest_of x = Digest.to_hex (Digest.string (Marshal.to_string x []))

(* Certification workloads report the trace-event count as their
   problem size: wall-clock per traced event is the figure of merit
   for the provenance monitor. *)
let certify_summary (report : Locald_analysis.Analysis.report) =
  let open Locald_analysis.Analysis in
  ( report.rep_events,
    digest_of
      ( verdict_name report.rep_verdict,
        report.rep_views,
        report.rep_events,
        report.rep_max_depth ) )

let quick_workloads =
  [
    ( "f1-coverage",
      fun () ->
        let p = { Tree_instances.regime; arity = 2; r = 2 } in
        let c = Tree_deciders.coverage p ~t:2 in
        ( Locald_core.Bound.tree_size ~arity:2 ~depth:(Tree_instances.depth p),
          digest_of
            ( c.Tree_deciders.covered,
              c.Tree_deciders.total_views,
              c.Tree_deciders.uncovered_node ) ) );
    ( "exhaustive-decider",
      fun () ->
        let p = { Tree_instances.regime; arity = 2; r = 2 } in
        let lg = Tree_instances.small_instance p ~apex:(0, 1) in
        let n = Labelled.order lg in
        let e =
          Locald_decision.Decider.evaluate_exhaustive ~bound:n
            (Tree_deciders.p_decider p) ~expected:true ~instance:"H+" lg
        in
        ( e.Locald_decision.Decider.assignments,
          digest_of
            ( e.Locald_decision.Decider.correct,
              e.Locald_decision.Decider.wrong,
              e.Locald_decision.Decider.assignments ) ) );
    ( "p3-coverage",
      fun () ->
        let rows = Experiments.p3 ~quick:true () in
        ( List.fold_left
            (fun acc (r : Experiments.p3_row) ->
              acc + r.Experiments.g_classes + r.Experiments.b_classes)
            0 rows,
          digest_of rows ) );
    ( "corollary1",
      fun () ->
        let rows = Experiments.corollary1 () in
        ( List.fold_left
            (fun acc (r : Experiments.corollary1_row) ->
              max acc r.Experiments.n)
            0 rows,
          digest_of rows ) );
    ( "certify-tree",
      fun () ->
        certify_summary
          (Locald_analysis.Analysis.certify
             (Tree_deciders.p_decider tree_params)
             ~instances:[ ("T_r", Lazy.force big_tree) ]) );
    ( "certify-gmr",
      fun () ->
        let t = Lazy.force gmr_instance in
        certify_summary
          (Locald_analysis.Analysis.certify
             (Gmr_deciders.ld_decider ())
             ~instances:[ ("G(M,1)", t.Gmr.lg) ]) );
  ]

(* ------------------------------------------------------------------ *)
(* Part 5: the scale tier (BENCH_scale.json)                           *)
(* ------------------------------------------------------------------ *)

(* Same contract as the quick tier, one to two orders of magnitude up:
   deeper trees (regime constant 5 instead of 1), a 45x assignment
   space, G(M,r) instances built from longer machines, and a certify
   sweep over six instances at once. Each workload additionally runs
   under both engine backends — the async rows pin the adversarial
   scheduler to the same digests as the synchronous simulator. *)

let scale_regime = Ids.f_linear_plus 5

let scale_gmr_machines =
  [
    ("two_faced-s3", Zoo.two_faced ~steps:3 ~real:0 ~fake:1);
    ("two_faced-s4", Zoo.two_faced ~steps:4 ~real:0 ~fake:1);
    ("two_faced-s5", Zoo.two_faced ~steps:5 ~real:0 ~fake:1);
    ("walk-s20", Zoo.walk ~steps:20 ~output:0);
    ("walk-s50", Zoo.walk ~steps:50 ~output:0);
    ("zigzag-h10", Zoo.zigzag ~half:10 ~output:0);
  ]

let scale_gmr_instances =
  lazy
    (List.map
       (fun (name, m) ->
         match
           Gmr.build
             ~config:{ (Gmr.default_config ~r:1) with Gmr.fragment_cap = 100 }
             ~r:1 m
         with
         | Ok t -> (name, t.Gmr.lg)
         | Error _ -> assert false)
       scale_gmr_machines)

let scale_workloads =
  [
    ( "f1-coverage-scale",
      fun () ->
        let p = { Tree_instances.regime = scale_regime; arity = 2; r = 2 } in
        let c = Tree_deciders.coverage p ~t:3 in
        ( Locald_core.Bound.tree_size ~arity:2 ~depth:(Tree_instances.depth p),
          digest_of
            ( c.Tree_deciders.covered,
              c.Tree_deciders.total_views,
              c.Tree_deciders.uncovered_node ) ) );
    ( "exhaustive-decider-scale",
      fun () ->
        (* Same H+ instance as the quick tier, quantified over every
           injective assignment into [0..9] instead of [0..7]: 45x the
           assignment space over the identical decider, and — through
           [Runner.prepare] — sensitive to the ambient backend. *)
        let p = { Tree_instances.regime; arity = 2; r = 2 } in
        let lg = Tree_instances.small_instance p ~apex:(0, 1) in
        let e =
          Locald_decision.Decider.evaluate_exhaustive ~bound:10
            (Tree_deciders.p_decider p) ~expected:true ~instance:"H+" lg
        in
        ( e.Locald_decision.Decider.assignments,
          digest_of
            ( e.Locald_decision.Decider.correct,
              e.Locald_decision.Decider.wrong,
              e.Locald_decision.Decider.assignments ) ) );
    ( "corollary1-scale",
      fun () ->
        (* The Corollary 1 Monte-Carlo estimate on a G(M,1) an order of
           magnitude past the paper tables: two_faced with 5 steps at
           fragment cap 4400. Per-run coin streams are seeded before
           the fan-out, so the digest is independent of --jobs. *)
        let t =
          match
            Gmr.build
              ~config:
                { (Gmr.default_config ~r:1) with Gmr.fragment_cap = 4400 }
              ~r:1
              (Zoo.two_faced ~steps:5 ~real:0 ~fake:1)
          with
          | Ok t -> t
          | Error _ -> assert false
        in
        let fast = Gmr_deciders.Fast.prepare t.Gmr.lg in
        let rng = Random.State.make [| 11 |] in
        let runs = 100 in
        let seeds = Locald_runtime.Pool.split_seeds rng runs in
        let outcomes =
          Locald_runtime.Pool.map
            (fun s ->
              let run_rng = Random.State.make [| s |] in
              Locald_decision.Verdict.accepts
                (Gmr_deciders.Fast.corollary1 fast run_rng))
            seeds
        in
        let successes =
          Array.fold_left (fun acc ok -> if ok then acc + 1 else acc) 0 outcomes
        in
        (Gmr.order t, digest_of (successes, runs, Gmr.order t)) );
    ( "certify-gmr-scale",
      fun () ->
        (* One provenance sweep over six instances — 35k traced views,
           12x the quick tier's event volume. The ld decider's
           simulation memo answers the second (nondeterminism-check)
           run of every view from the table. *)
        certify_summary
          (Locald_analysis.Analysis.certify ~budget:50_000
             (Gmr_deciders.ld_decider ())
             ~instances:(Lazy.force scale_gmr_instances)) );
  ]

type quick_entry = {
  qe_id : string;
  qe_jobs : int;
  qe_backend : Locald_local.Backend.t option;
      (* None on quick rows (ambient default); scale rows carry the
         explicit backend dimension *)
  qe_wall : float;
  qe_n : int;
  qe_digest : string;
  qe_hits : int;
  qe_misses : int;
  qe_orbit_classes : int;  (* distinct decorated-ball classes decided *)
}

let backend_suffix = function
  | None | Some Locald_local.Backend.Sync -> ""
  | Some (Locald_local.Backend.Async _) -> "+async"

let entry_key e =
  Printf.sprintf "%s@j%d%s" e.qe_id e.qe_jobs (backend_suffix e.qe_backend)

let collect_entries ~backends workloads =
  let job_counts = [ 1; 4 ] in
  List.concat_map
    (fun (id, work) ->
      let runs =
        List.concat_map
          (fun jobs ->
            List.map
              (fun backend ->
                Locald_runtime.Pool.set_default_jobs jobs;
                (* Per-row cache accounting: a fresh telemetry run scopes
                   every counter to this workload, so back-to-back rows
                   report independent (not cumulative) counts. *)
                Locald_runtime.Telemetry.new_run ();
                let run_work () =
                  match backend with
                  | None -> work ()
                  | Some b -> Locald_local.Backend.with_default b work
                in
                let (n, digest), wall = Locald_runtime.Timing.time run_work in
                let ms = Locald_runtime.Memo.run_stats () in
                let e =
                  {
                    qe_id = id;
                    qe_jobs = jobs;
                    qe_backend = backend;
                    qe_wall = wall;
                    qe_n = n;
                    qe_digest = digest;
                    qe_hits = ms.Locald_runtime.Memo.hits;
                    qe_misses = ms.Locald_runtime.Memo.misses;
                    qe_orbit_classes = ms.Locald_runtime.Memo.distinct;
                  }
                in
                Printf.printf "%-32s jobs=%d%s n=%-8d %8.3fs  %s\n%!" id jobs
                  (backend_suffix backend) n wall digest;
                e)
              backends)
          job_counts
      in
      (* Every row of a workload — across job counts AND backends —
         must produce the same digest: the pool's determinism contract
         and the async backend's pin to the synchronous simulator. *)
      (match runs with
      | first :: rest ->
          List.iter
            (fun e ->
              if e.qe_digest <> first.qe_digest then
                Printf.printf
                  "  WARNING: %s digest differs from %s — determinism \
                   contract violated\n"
                  (entry_key e) (entry_key first))
            rest
      | [] -> ());
      runs)
    workloads

let scale_backends =
  [
    Some Locald_local.Backend.Sync;
    Some (Locald_local.Backend.Async { Async_runner.sched_seed = 7; fifo = false });
  ]

let collect_quick_entries () = collect_entries ~backends:[ None ] quick_workloads

(* The bench JSON writer and a live checkpoint writer must never
   interleave output: a shard checkpoint flushes mid-line-accurate
   JSONL on its own fd, and a bench write racing it in the same
   process could only happen through a harness bug — refuse loudly
   rather than corrupt either stream. *)
let refuse_if_checkpointing () =
  match Locald_runtime.Checkpoint.active_writer_paths () with
  | [] -> ()
  | paths ->
      Printf.eprintf
        "bench: refusing to write bench JSON while %d checkpoint writer(s) \
         are open in this process:\n"
        (List.length paths);
      List.iter (Printf.eprintf "bench:   open writer: %s\n") paths;
      exit Locald_runtime.Shard.Exit.usage

let write_entries path entries =
  (* One entry per line (the layout [parse_pins] reads back), each line
     emitted through the telemetry JSON module so hostile workload ids
     — quotes, backslashes — stay valid JSON. Wall times are rounded to
     the microsecond the old %.6f writer printed at. *)
  let entry_json e =
    Locald_runtime.Telemetry.Json.(
      Obj
        ([
           ("wall_s", Float (Float.round (e.qe_wall *. 1e6) /. 1e6));
           ("jobs", Int e.qe_jobs);
         ]
        @ (match e.qe_backend with
          | None -> []
          | Some Locald_local.Backend.Sync -> [ ("backend", String "sync") ]
          | Some (Locald_local.Backend.Async _) ->
              [ ("backend", String "async") ])
        @ [
            ("n", Int e.qe_n);
            ("hits", Int e.qe_hits);
            ("misses", Int e.qe_misses);
            ("orbit_classes", Int e.qe_orbit_classes);
            ("result_digest", String e.qe_digest);
          ]))
  in
  let oc = open_out path in
  output_string oc "{\n";
  List.iteri
    (fun i e ->
      Printf.fprintf oc "  %s: %s%s\n"
        (Locald_runtime.Telemetry.Json.escape_string (entry_key e))
        (Locald_runtime.Telemetry.Json.to_string (entry_json e))
        (if i = List.length entries - 1 then "" else ","))
    entries;
  output_string oc "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

let run_quick_bench path =
  refuse_if_checkpointing ();
  print_endline "";
  print_endline "=================================================================";
  print_endline " PART 4: quick bench (machine-readable)";
  print_endline "=================================================================";
  let entries = collect_quick_entries () in
  Locald_runtime.Pool.set_default_jobs 1;
  write_entries path entries

let filter_workloads only workloads =
  match only with
  | [] -> workloads
  | only ->
      List.iter
        (fun id ->
          if not (List.mem_assoc id workloads) then begin
            Printf.eprintf "bench: --only %s names no workload in this tier\n"
              id;
            exit Locald_runtime.Shard.Exit.usage
          end)
        only;
      List.filter (fun (id, _) -> List.mem id only) workloads

let run_scale_bench ~only path =
  refuse_if_checkpointing ();
  print_endline "";
  print_endline "=================================================================";
  print_endline " PART 5: scale bench (machine-readable)";
  print_endline "=================================================================";
  let entries =
    collect_entries ~backends:scale_backends (filter_workloads only scale_workloads)
  in
  Locald_runtime.Pool.set_default_jobs 1;
  write_entries path entries

(* ------------------------------------------------------------------ *)
(* --check: CI smoke gate against the committed pins                   *)
(* ------------------------------------------------------------------ *)

(* Minimal parser for the writer's own one-entry-per-line format:
   pulls the key, wall_s and result_digest out of each entry line. *)
let parse_pins path =
  let find_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i =
      if i + m > n then None
      else if String.sub s i m = sub then Some (i + m)
      else go (i + 1)
    in
    go 0
  in
  let quoted_at s i =
    match String.index_from_opt s i '"' with
    | None -> None
    | Some a -> (
        match String.index_from_opt s (a + 1) '"' with
        | None -> None
        | Some b -> Some (String.sub s (a + 1) (b - a - 1)))
  in
  let number_after s i =
    let n = String.length s in
    let i = ref i in
    while !i < n && s.[!i] = ' ' do
      incr i
    done;
    let j = ref !i in
    while
      !j < n && (match s.[!j] with '0' .. '9' | '.' | '-' | 'e' | '+' -> true | _ -> false)
    do
      incr j
    done;
    float_of_string (String.sub s !i (!j - !i))
  in
  let ic = open_in path in
  let pins = ref [] in
  (try
     while true do
       let line = input_line ic in
       match find_sub line "\"result_digest\":" with
       | None -> ()
       | Some after_digest_key -> (
           match
             ( quoted_at line 0,
               find_sub line "\"wall_s\":",
               quoted_at line after_digest_key )
           with
           | Some key, Some wall_pos, Some digest ->
               pins := (key, (number_after line wall_pos, digest)) :: !pins
           | _ -> ())
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !pins

(* Workloads whose decide-once caches must actually fire: a refactor
   that silently stops threading the memo through these cold paths
   keeps the digests intact but zeroes the hit columns, and this gate
   is what catches it. *)
let hits_gated_quick = [ "f1-coverage"; "corollary1"; "certify-gmr" ]
let hits_gated_scale =
  [ "f1-coverage-scale"; "corollary1-scale"; "certify-gmr-scale" ]

(* Wall-clock regression gates on the tentpole workloads only —
   micro-workloads are too noisy for a CI timing assertion. *)
let wall_gated_quick = [ "exhaustive-decider@j1"; "certify-gmr@j1" ]

let run_check_tier ~tier ~collect ~hits_gated ~wall_gated path =
  let pins = parse_pins path in
  if pins = [] then begin
    Printf.printf "CHECK: no pins parsed from %s\n" path;
    exit 1
  end;
  print_endline "=================================================================";
  Printf.printf " CHECK: %s bench vs pins in %s\n" tier path;
  print_endline "=================================================================";
  let entries = collect () in
  Locald_runtime.Pool.set_default_jobs 1;
  let fail = ref false in
  List.iter
    (fun e ->
      let key = entry_key e in
      (match List.assoc_opt key pins with
      | None ->
          Printf.printf "CHECK FAIL: %s has no pinned entry\n" key;
          fail := true
      | Some (pinned_wall, pinned_digest) ->
          if e.qe_digest <> pinned_digest then begin
            Printf.printf "CHECK FAIL: %s digest %s differs from pinned %s\n"
              key e.qe_digest pinned_digest;
            fail := true
          end;
          (* 2x relative plus a 50ms absolute grace: the relative bound
             is the regression signal, the absolute term keeps
             scheduler jitter on millisecond workloads from tripping
             it. *)
          if
            List.mem key wall_gated
            && e.qe_wall > (2.0 *. pinned_wall) +. 0.05
          then begin
            Printf.printf
              "CHECK FAIL: %s wall %.6fs regressed more than 2x over pinned \
               %.6fs\n"
              key e.qe_wall pinned_wall;
            fail := true
          end);
      if List.mem e.qe_id hits_gated && e.qe_hits <= 0 then begin
        Printf.printf
          "CHECK FAIL: %s reports no memo hits — the decide-once cache no \
           longer fires on this path\n"
          key;
        fail := true
      end)
    entries;
  if !fail then exit 1;
  Printf.printf
    "CHECK: %d entries match their pinned digests%s%s\n" (List.length entries)
    (if wall_gated = [] then ""
     else "; " ^ String.concat ", " wall_gated ^ " within 2x")
    (if hits_gated = [] then "" else "; memo hits nonzero where gated")

let run_check path =
  run_check_tier ~tier:"quick" ~collect:collect_quick_entries
    ~hits_gated:hits_gated_quick ~wall_gated:wall_gated_quick path

let run_check_scale ~only path =
  run_check_tier ~tier:"scale"
    ~collect:(fun () ->
      collect_entries ~backends:scale_backends
        (filter_workloads only scale_workloads))
    ~hits_gated:hits_gated_scale ~wall_gated:[] path

(* ------------------------------------------------------------------ *)
(* Part 6: the serve tier (BENCH_serve.json)                           *)
(* ------------------------------------------------------------------ *)

(* The load generator for a running [locald serve]: two concurrent
   connections, three rounds of a five-request mix with distinct
   per-request backend/seed configs, requests alternating between the
   connections. Every response's result digest feeds one aggregate
   [response_digest] — pinning it pins the daemon's whole
   request-interpretation path (framing, per-request config threading,
   warm engine reuse) to one string, exactly as the quick tier pins the
   library entry points. Latency is measured client-side per
   request. *)

module Proto = Locald_runtime.Proto

let serve_async_config seed =
  { Proto.no_config with Proto.c_backend = Some "async"; c_sched_seed = Some seed }

(* The mix: the tentpole exhaustive workload under the startup default
   and under an explicit async scheduler (distinct configs on the same
   workload — the engine cache must keep both), the ablation-1
   variant, a partial-range seed sweep and the certify sweep. *)
let serve_mix =
  [
    ("exhaustive-decider", None, None, Proto.no_config);
    ("exhaustive-decider", None, None, serve_async_config 7);
    ("exhaustive-decider-a1", None, None, Proto.no_config);
    ("corollary1-curve", Some 0, Some 128, Proto.no_config);
    ("certify-gmr", None, None, Proto.no_config);
  ]

let serve_rounds = 3
let serve_connections = 2

let json_member name = function
  | Locald_runtime.Telemetry.Json.Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let serve_fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "bench --serve: %s\n" msg;
      exit 1)
    fmt

(* One synchronous request on [fd]: returns the response's result
   digest and the client-side wall time. Busy or error responses fail
   the bench loudly — the generator never outruns the inflight bound
   (it waits for each response), so either reply means a daemon bug. *)
let serve_call fd ~id (workload, lo, hi, config) =
  let req = Proto.request ~workload ?lo ?hi ~config ~id Proto.Decide in
  let resp, wall =
    Locald_runtime.Timing.time (fun () ->
        Proto.write_frame fd (Proto.request_to_json req);
        Proto.read_frame fd)
  in
  match resp with
  | None -> serve_fail "daemon closed the connection mid-benchmark"
  | Some json -> (
      let v = Proto.response_view json in
      if not v.Proto.v_ok then
        serve_fail "request %d (%s) answered %s" id workload
          (Locald_runtime.Telemetry.Json.to_string json);
      match Option.bind v.Proto.v_result (json_member "digest") with
      | Some (Locald_runtime.Telemetry.Json.String d) -> (d, wall)
      | _ -> serve_fail "request %d (%s) carries no result digest" id workload)

let serve_metrics_counter fd ~id name =
  Proto.write_frame fd
    (Proto.request_to_json (Proto.request ~id Proto.Metrics));
  match Proto.read_frame fd with
  | None -> serve_fail "daemon closed the connection on a metrics request"
  | Some json -> (
      let v = Proto.response_view json in
      match
        Option.bind v.Proto.v_result (fun r ->
            Option.bind (json_member "counters" r) (json_member name))
      with
      | Some (Locald_runtime.Telemetry.Json.Int n) -> n
      | _ -> serve_fail "metrics response carries no %S counter" name)

type serve_entry = {
  se_digests : string list;  (* per-request result digests, in order *)
  se_wall : float;
  se_requests : int;
  se_mean_ms : float;
  se_max_ms : float;
  se_memo_hits : int;
}

let serve_entry_key = Printf.sprintf "serve-mixed@c%d" serve_connections

let run_serve_load socket =
  let conns =
    Array.init serve_connections (fun _ -> Proto.connect_unix socket)
  in
  let digests = ref [] in
  let latencies = ref [] in
  let id = ref 0 in
  let (), wall =
    Locald_runtime.Timing.time (fun () ->
        for _round = 1 to serve_rounds do
          List.iter
            (fun spec ->
              incr id;
              (* Alternate connections per request: the daemon always
                 has both connections live with interleaved traffic. *)
              let fd = conns.(!id mod serve_connections) in
              let digest, dt = serve_call fd ~id:!id spec in
              digests := digest :: !digests;
              latencies := dt :: !latencies)
            serve_mix
        done)
  in
  let hits = serve_metrics_counter conns.(0) ~id:0 "memo.hits" in
  Array.iter Unix.close conns;
  let lats = List.rev_map (fun s -> s *. 1000.) !latencies in
  let requests = List.length lats in
  {
    se_digests = List.rev !digests;
    se_wall = wall;
    se_requests = requests;
    se_mean_ms = List.fold_left ( +. ) 0. lats /. float_of_int requests;
    se_max_ms = List.fold_left Float.max 0. lats;
    se_memo_hits = hits;
  }

let write_serve_entry path e =
  (* Same one-entry-per-line layout as the other tiers, so
     [parse_pins] reads the pin back. Only [response_digest] is
     pinned; the timing fields are informational. *)
  let json =
    Locald_runtime.Telemetry.Json.(
      Obj
        [
          ("wall_s", Float (Float.round (e.se_wall *. 1e6) /. 1e6));
          ("connections", Int serve_connections);
          ("requests", Int e.se_requests);
          ("rps", Float (Float.round (float_of_int e.se_requests /. e.se_wall) /. 1.));
          ("mean_ms", Float (Float.round (e.se_mean_ms *. 1e3) /. 1e3));
          ("max_ms", Float (Float.round (e.se_max_ms *. 1e3) /. 1e3));
          ("memo_hits", Int e.se_memo_hits);
          ("result_digest", String (digest_of e.se_digests));
        ])
  in
  let oc = open_out path in
  Printf.fprintf oc "{\n  %s: %s\n}\n"
    (Locald_runtime.Telemetry.Json.escape_string serve_entry_key)
    (Locald_runtime.Telemetry.Json.to_string json);
  close_out oc;
  Printf.printf "wrote %s\n" path

let print_serve_entry e =
  Printf.printf
    "%-32s conns=%d requests=%d %8.3fs  %.1f req/s  mean %.2fms  max %.2fms  \
     memo hits %d\n  response digest %s\n%!"
    serve_entry_key serve_connections e.se_requests e.se_wall
    (float_of_int e.se_requests /. e.se_wall)
    e.se_mean_ms e.se_max_ms e.se_memo_hits (digest_of e.se_digests)

let run_serve_bench ~socket path =
  print_endline "=================================================================";
  Printf.printf " PART 6: serve tier (load generator against %s)\n" socket;
  print_endline "=================================================================";
  let e = run_serve_load socket in
  print_serve_entry e;
  write_serve_entry path e

let run_check_serve ~socket path =
  let pins = parse_pins path in
  print_endline "=================================================================";
  Printf.printf " CHECK: serve tier vs pins in %s\n" path;
  print_endline "=================================================================";
  let e = run_serve_load socket in
  print_serve_entry e;
  let fail = ref false in
  (match List.assoc_opt serve_entry_key pins with
  | None ->
      Printf.printf "CHECK FAIL: %s has no pinned entry in %s\n"
        serve_entry_key path;
      fail := true
  | Some (_, pinned_digest) ->
      if digest_of e.se_digests <> pinned_digest then begin
        Printf.printf
          "CHECK FAIL: %s response digest %s differs from pinned %s\n"
          serve_entry_key (digest_of e.se_digests) pinned_digest;
        fail := true
      end);
  (* Cross-tier pin: the mix's first request is the full-range
     exhaustive decider under the daemon's default config — its result
     digest must equal the quick tier's committed one-shot digest.
     That is the acceptance contract in one line: a resident daemon
     answers byte-identically to a cold CLI run. *)
  (match parse_pins "BENCH_quick.json" with
  | exception Sys_error _ ->
      print_endline "CHECK: BENCH_quick.json not found; cross-tier pin skipped"
  | quick_pins -> (
      match
        (List.assoc_opt "exhaustive-decider@j1" quick_pins, e.se_digests)
      with
      | Some (_, quick_digest), first :: _ ->
          if first <> quick_digest then begin
            Printf.printf
              "CHECK FAIL: serve exhaustive-decider digest %s differs from \
               quick-tier pin %s\n"
              first quick_digest;
            fail := true
          end
      | _ ->
          print_endline
            "CHECK: no exhaustive-decider@j1 pin; cross-tier pin skipped"));
  (* The daemon's reason to exist: the repeated mix must hit warm
     memo tables across requests. *)
  if e.se_memo_hits <= 0 then begin
    Printf.printf
      "CHECK FAIL: daemon reports no cross-request memo hits after %d \
       repeated-mix requests\n"
      e.se_requests;
    fail := true
  end;
  if !fail then exit 1;
  Printf.printf
    "CHECK: serve response digest matches its pin; cross-request memo hits = \
     %d\n"
    e.se_memo_hits

(* [--scale]/[--check-scale] accept an optional pin path plus any
   number of [--only WORKLOAD] filters (the CI smoke job runs the cheap
   scale workloads only; pins for filtered-out rows are ignored). *)
let parse_path_and_only ~default rest =
  let rec go path only = function
    | [] -> (Option.value path ~default, List.rev only)
    | "--only" :: w :: rest -> go path (w :: only) rest
    | "--only" :: [] ->
        prerr_endline "bench: --only needs a workload id";
        exit Locald_runtime.Shard.Exit.usage
    | p :: rest -> (
        match path with
        | None -> go (Some p) only rest
        | Some _ ->
            Printf.eprintf "bench: unexpected argument %s\n" p;
            exit Locald_runtime.Shard.Exit.usage)
  in
  go None [] rest

let () =
  match Array.to_list Sys.argv with
  | _ :: "--json" :: rest ->
      (* Quick mode: only the machine-readable bench. *)
      let path = match rest with p :: _ -> p | [] -> "BENCH_quick.json" in
      run_quick_bench path
  | _ :: "--check" :: rest ->
      let path = match rest with p :: _ -> p | [] -> "BENCH_quick.json" in
      run_check path
  | _ :: "--scale" :: rest ->
      let path, only = parse_path_and_only ~default:"BENCH_scale.json" rest in
      run_scale_bench ~only path
  | _ :: "--check-scale" :: rest ->
      let path, only = parse_path_and_only ~default:"BENCH_scale.json" rest in
      run_check_scale ~only path
  | _ :: "--serve" :: socket :: rest ->
      let path = match rest with p :: _ -> p | [] -> "BENCH_serve.json" in
      run_serve_bench ~socket path
  | _ :: "--check-serve" :: socket :: rest ->
      let path = match rest with p :: _ -> p | [] -> "BENCH_serve.json" in
      run_check_serve ~socket path
  | _ :: (("--serve" | "--check-serve") as flag) :: [] ->
      Printf.eprintf "bench: %s needs a daemon socket path\n" flag;
      exit Locald_runtime.Shard.Exit.usage
  | _ ->
      regenerate_paper_artefacts ();
      run_ablations ();
      run_benchmarks ();
      run_quick_bench "BENCH_quick.json"
