(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper (the same
   records as the [locald] CLI — one experiment per paper artefact:
   T1, F1, F2, F3, C1, W2/W3) and prints them.

   Part 2 runs bechamel micro-benchmarks over the library's hot paths:
   view extraction, rooted isomorphism, Turing-machine execution,
   table and fragment construction, the structure rules and the
   deciders — one [Test.make] per operation. *)

open Bechamel
open Toolkit
open Locald_graph
open Locald_turing
open Locald_local
open Locald_core

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's tables and figures                              *)
(* ------------------------------------------------------------------ *)

let regenerate_paper_artefacts () =
  print_endline "=================================================================";
  print_endline " PART 1: regenerated paper artefacts";
  print_endline "=================================================================";
  Report.print_table1 (Experiments.table1 ());
  Report.print_fig1 (Experiments.fig1 ());
  Report.print_fig2 (Experiments.fig2 ());
  Report.print_fig3 (Experiments.fig3 ());
  Report.print_corollary1 (Experiments.corollary1 ());
  Report.print_p3 (Experiments.p3 ());
  Report.print_fuel_diagonal (Experiments.fuel_diagonal ());
  Report.print_construction (Experiments.construction ());
  Report.print_oi (Experiments.order_invariance ());
  Report.print_hereditary (Experiments.hereditary ());
  Report.print_warmups (Experiments.warmups ());
  (* quick: the full fault sweep is minutes-long and belongs to the CLI *)
  Report.print_faults (Experiments.faults ~quick:true ())

(* ------------------------------------------------------------------ *)
(* Part 2: micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let regime = Ids.f_linear_plus 1

(* Pre-built inputs shared by the benchmarks (construction cost is
   measured separately). *)
let tree_params = { Tree_instances.regime; arity = 2; r = 1 }
let big_tree = lazy (Tree_instances.big_tree tree_params)

let gmr_config = { (Gmr.default_config ~r:1) with Gmr.fragment_cap = 100 }

let gmr_instance =
  lazy
    (match
       Gmr.build ~config:gmr_config ~r:1 (Zoo.two_faced ~steps:3 ~real:0 ~fake:1)
     with
    | Ok t -> t
    | Error _ -> assert false)

let gmr_fast = lazy (Gmr_deciders.Fast.prepare (Lazy.force gmr_instance).Gmr.lg)

let bench_view_extraction =
  Test.make ~name:"view-extraction (T_r, radius 2)"
    (Staged.stage (fun () ->
         let lg = Lazy.force big_tree in
         ignore (View.extract lg ~center:17 ~radius:2)))

let bench_rooted_iso =
  let lg = lazy (Labelled.init (Gen.grid 5 5) (fun v -> v mod 3)) in
  Test.make ~name:"rooted isomorphism (5x5 grid views)"
    (Staged.stage (fun () ->
         let lg = Lazy.force lg in
         let a = View.extract lg ~center:12 ~radius:2 in
         let b = View.extract lg ~center:12 ~radius:2 in
         ignore (Iso.views_isomorphic ( = ) a b)))

let bench_view_signature =
  Test.make ~name:"view signature (T_r, radius 2)"
    (Staged.stage (fun () ->
         let lg = Lazy.force big_tree in
         let v = View.extract lg ~center:17 ~radius:2 in
         ignore (Iso.view_signature Hashtbl.hash v)))

let bench_tm_execution =
  let counter = Zoo.binary_counter ~bits:3 in
  Test.make ~name:"TM execution (counter, 3 bits)"
    (Staged.stage (fun () -> ignore (Exec.run ~fuel:1000 counter)))

let bench_table_construction =
  let m = Zoo.zigzag ~half:3 ~output:0 in
  Test.make ~name:"execution-table construction"
    (Staged.stage (fun () -> ignore (Table.of_machine ~fuel:64 m)))

let bench_fragment_enumeration =
  let m = Zoo.walk ~steps:2 ~output:0 in
  Test.make ~name:"fragment enumeration (3x3, cap 200)"
    (Staged.stage (fun () -> ignore (Fragment.enumerate m ~w:3 ~h:3 ~cap:200)))

let bench_gmr_build =
  Test.make ~name:"G(M,r) assembly (cap 100)"
    (Staged.stage (fun () ->
         ignore (Gmr.build ~config:gmr_config ~r:1 (Zoo.walk ~steps:2 ~output:0))))

let bench_structure_rules =
  Test.make ~name:"structure rules, whole graph"
    (Staged.stage (fun () ->
         ignore (Gmr_check.structure_array (Lazy.force gmr_instance).Gmr.lg)))

let bench_fast_ld =
  let rng = Random.State.make [| 21 |] in
  Test.make ~name:"LD decider (fast path, one assignment)"
    (Staged.stage (fun () ->
         let t = Lazy.force gmr_instance in
         let ids = Ids.shuffled rng (Gmr.order t) in
         ignore (Gmr_deciders.Fast.ld (Lazy.force gmr_fast) ~ids)))

let bench_tree_verifier =
  Test.make ~name:"P' verifier on T_r"
    (Staged.stage (fun () ->
         ignore
           (Locald_decision.Decider.decide_oblivious
              (Tree_deciders.pprime_verifier tree_params)
              (Lazy.force big_tree))))

let bench_coverage =
  let p1 = { Tree_instances.regime; arity = 1; r = 4 } in
  Test.make ~name:"view coverage (arity 1, r=4, t=1)"
    (Staged.stage (fun () -> ignore (Tree_deciders.coverage p1 ~t:1)))

let bench_a_star =
  let alg = Tree_deciders.p_decider tree_params in
  let simulated =
    Locald_decision.Simulation.a_star
      ~budget:
        (Locald_decision.Simulation.Sampled { bound = 12; trials = 16; seed = 5 })
      alg
  in
  let instance = lazy (Tree_instances.small_instance tree_params ~apex:(1, 1)) in
  Test.make ~name:"A* simulation (sampled, one instance)"
    (Staged.stage (fun () ->
         ignore
           (Locald_decision.Decider.decide_oblivious simulated
              (Lazy.force instance))))

let bench_gossip_engine =
  let lg = lazy (Labelled.init (Gen.grid 6 6) (fun v -> v mod 4)) in
  let alg =
    Algorithm.make ~name:"fingerprint" ~radius:2 (fun view ->
        Iso.view_signature Hashtbl.hash view)
  in
  let rng = Random.State.make [| 22 |] in
  Test.make ~name:"message-passing engine (6x6 grid, t=2)"
    (Staged.stage (fun () ->
         let lg = Lazy.force lg in
         let ids = Ids.shuffled rng (Labelled.order lg) in
         ignore (Runner.run_message_passing alg lg ~ids)))

(* The fault-injected engine on the same instance as the fault-free
   benchmark above: the empty plan measures the pure bookkeeping
   overhead, the lossy plan the cost of re-gossip plus coin flips. *)
let bench_fault_engine_empty =
  let lg = lazy (Labelled.init (Gen.grid 6 6) (fun v -> v mod 4)) in
  let alg =
    Algorithm.make ~name:"fingerprint" ~radius:2 (fun view ->
        Iso.view_signature Hashtbl.hash view)
  in
  let rng = Random.State.make [| 22 |] in
  Test.make ~name:"fault engine, empty plan (6x6 grid, t=2)"
    (Staged.stage (fun () ->
         let lg = Lazy.force lg in
         let ids = Ids.shuffled rng (Labelled.order lg) in
         ignore (Fault_runner.run ~plan:Faults.empty alg lg ~ids)))

let bench_fault_engine_lossy =
  let lg = lazy (Labelled.init (Gen.grid 6 6) (fun v -> v mod 4)) in
  let alg =
    Algorithm.make ~name:"fingerprint" ~radius:2 (fun view ->
        Iso.view_signature Hashtbl.hash view)
  in
  let rng = Random.State.make [| 22 |] in
  let plan = Faults.make ~seed:7 ~drop:0.1 ~retries:1 () in
  Test.make ~name:"fault engine, drop 0.1 + 1 retry (6x6)"
    (Staged.stage (fun () ->
         let lg = Lazy.force lg in
         let ids = Ids.shuffled rng (Labelled.order lg) in
         ignore (Fault_runner.run ~plan alg lg ~ids)))

(* The asynchronous engine on the same instance as the gossip
   benchmark: heap mode measures the adversarial scheduler's cost,
   FIFO mode the per-link queue discipline. *)
let bench_async_engine =
  let lg = lazy (Labelled.init (Gen.grid 6 6) (fun v -> v mod 4)) in
  let alg =
    Algorithm.make ~name:"fingerprint" ~radius:2 (fun view ->
        Iso.view_signature Hashtbl.hash view)
  in
  let rng = Random.State.make [| 22 |] in
  Test.make ~name:"async engine, heap scheduler (6x6, t=2)"
    (Staged.stage (fun () ->
         let lg = Lazy.force lg in
         let ids = Ids.shuffled rng (Labelled.order lg) in
         ignore
           (Async_runner.run
              ~config:{ Async_runner.sched_seed = 7; fifo = false }
              alg lg ~ids)))

let bench_async_engine_fifo =
  let lg = lazy (Labelled.init (Gen.grid 6 6) (fun v -> v mod 4)) in
  let alg =
    Algorithm.make ~name:"fingerprint" ~radius:2 (fun view ->
        Iso.view_signature Hashtbl.hash view)
  in
  let rng = Random.State.make [| 22 |] in
  Test.make ~name:"async engine, per-link FIFO (6x6, t=2)"
    (Staged.stage (fun () ->
         let lg = Lazy.force lg in
         let ids = Ids.shuffled rng (Labelled.order lg) in
         ignore
           (Async_runner.run
              ~config:{ Async_runner.sched_seed = 7; fifo = true }
              alg lg ~ids)))

let bench_fault_coins =
  let plan = Faults.make ~seed:7 ~drop:0.1 () in
  Test.make ~name:"fault coins (1000 drop draws)"
    (Staged.stage (fun () ->
         for i = 0 to 999 do
           ignore (Faults.drops plan ~round:1 ~src:i ~dst:(i + 1))
         done))

let tests =
  [
    bench_view_extraction;
    bench_rooted_iso;
    bench_view_signature;
    bench_tm_execution;
    bench_table_construction;
    bench_fragment_enumeration;
    bench_gmr_build;
    bench_structure_rules;
    bench_fast_ld;
    bench_tree_verifier;
    bench_coverage;
    bench_a_star;
    bench_gossip_engine;
    bench_async_engine;
    bench_async_engine_fifo;
    bench_fault_engine_empty;
    bench_fault_engine_lossy;
    bench_fault_coins;
  ]

let run_benchmarks () =
  print_endline "";
  print_endline "=================================================================";
  print_endline " PART 2: micro-benchmarks (bechamel, monotonic clock)";
  print_endline "=================================================================";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  Printf.printf "%-44s %16s %10s\n" "benchmark" "time/run" "r^2";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols Instance.monotonic_clock raw in
          let time_ns =
            match Analyze.OLS.estimates est with
            | Some [ e ] -> e
            | Some _ | None -> nan
          in
          let r2 = Option.value ~default:nan (Analyze.OLS.r_square est) in
          let pretty t =
            if t >= 1e9 then Printf.sprintf "%.3f s" (t /. 1e9)
            else if t >= 1e6 then Printf.sprintf "%.3f ms" (t /. 1e6)
            else if t >= 1e3 then Printf.sprintf "%.3f us" (t /. 1e3)
            else Printf.sprintf "%.1f ns" t
          in
          Printf.printf "%-44s %16s %10.4f\n%!" name (pretty time_ns) r2)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Part 3: ablations                                                   *)
(* ------------------------------------------------------------------ *)

(* Monotonic: ablation timings must not jump with NTP/calendar steps. *)
let timed f = Locald_runtime.Timing.time f

let ablation_fragment_cap () =
  print_endline "";
  print_endline "ablation A1: fragment-collection cap (G(twofaced3, 1))";
  Printf.printf "%8s %10s %8s %9s %9s %8s\n" "cap" "fragments" "nodes"
    "edges" "build(s)" "rules";
  List.iter
    (fun cap ->
      let config = { (Gmr.default_config ~r:1) with Gmr.fragment_cap = cap } in
      match
        timed (fun () ->
            Gmr.build ~config ~r:1 (Zoo.two_faced ~steps:3 ~real:0 ~fake:1))
      with
      | Ok t, dt ->
          Printf.printf "%8d %10d %8d %9d %9.3f %8s\n" cap
            (List.length t.Gmr.fragments)
            (Gmr.order t) (Gmr.size t) dt
            (if Gmr_check.structure_ok t then "pass" else "FAIL")
      | Error _, _ -> Printf.printf "%8d (did not build)\n" cap)
    [ 25; 50; 100; 200; 400 ]

let ablation_phases () =
  print_endline "";
  print_endline "ablation A2: aligned anchor phases of the fragments";
  Printf.printf "%10s %10s %8s %9s %8s\n" "phases" "fragments" "nodes" "edges" "rules";
  List.iter
    (fun all_phases ->
      let config =
        { (Gmr.default_config ~r:1) with
          Gmr.fragment_cap = 50;
          all_phases;
        }
      in
      match Gmr.build ~config ~r:1 (Zoo.two_faced ~steps:3 ~real:0 ~fake:1) with
      | Ok t ->
          Printf.printf "%10s %10d %8d %9d %8s\n"
            (if all_phases then "all (36)" else "origin")
            (List.length t.Gmr.fragments)
            (Gmr.order t) (Gmr.size t)
            (if Gmr_check.structure_ok t then "pass" else "FAIL")
      | Error _ -> ())
    [ false; true ]

let ablation_coverage_scaling () =
  print_endline "";
  print_endline "ablation A3: coverage experiment scaling (arity 1, t = 1)";
  Printf.printf "%6s %8s %10s %12s %10s\n" "r" "R(r)" "|T_r|" "classes" "time(s)";
  List.iter
    (fun r ->
      let p = { Tree_instances.regime; arity = 1; r } in
      let c, dt = timed (fun () -> Tree_deciders.coverage p ~t:1) in
      Printf.printf "%6d %8d %10d %7d/%-6d %8.3f\n" r (Tree_instances.depth p)
        (Bound.tree_size ~arity:1 ~depth:(Tree_instances.depth p))
        c.Tree_deciders.covered c.Tree_deciders.total_views dt)
    [ 2; 4; 8; 16; 32 ]

let ablation_scale () =
  print_endline "";
  print_endline
    "ablation A4: Section 2 at scale (arity 2, r = 3, f(n) = n: |T_3| = 262143)";
  let regime = Ids.f_identity in
  let p = { Tree_instances.regime; arity = 2; r = 3 } in
  let tr, t_build = timed (fun () -> Tree_instances.big_tree p) in
  Printf.printf "  build T_3 (%d nodes): %.2fs\n" (Labelled.order tr) t_build;
  let verdict, t_verify =
    timed (fun () ->
        Locald_decision.Decider.decide_oblivious
          (Tree_deciders.pprime_verifier p) tr)
  in
  Printf.printf "  P' verifier over every node: %.2fs (accepts: %b)\n" t_verify
    (Locald_decision.Verdict.accepts verdict);
  let rng = Random.State.make [| 5 |] in
  let ids = Ids.sample rng regime ~n:(Labelled.order tr) in
  let v2, t_decide =
    timed (fun () ->
        Locald_decision.Decider.decide (Tree_deciders.p_decider p) tr ~ids)
  in
  Printf.printf "  P decider, one assignment: %.2fs (rejects T_3: %b)\n" t_decide
    (Locald_decision.Verdict.rejects v2)

let run_ablations () =
  print_endline "";
  print_endline "=================================================================";
  print_endline " PART 3: ablations (design choices called out in DESIGN.md)";
  print_endline "=================================================================";
  ablation_fragment_cap ();
  ablation_phases ();
  ablation_coverage_scaling ();
  ablation_scale ()

(* ------------------------------------------------------------------ *)
(* Part 4: the machine-readable quick bench (BENCH_quick.json)         *)
(* ------------------------------------------------------------------ *)

(* Each workload runs at --jobs 1 and --jobs 4 and reports wall-clock,
   problem size and a digest of the full result; equal digests across
   job counts are the pool's determinism contract, checked here on
   every bench run. *)

let digest_of x = Digest.to_hex (Digest.string (Marshal.to_string x []))

(* Certification workloads report the trace-event count as their
   problem size: wall-clock per traced event is the figure of merit
   for the provenance monitor. *)
let certify_summary (report : Locald_analysis.Analysis.report) =
  let open Locald_analysis.Analysis in
  ( report.rep_events,
    digest_of
      ( verdict_name report.rep_verdict,
        report.rep_views,
        report.rep_events,
        report.rep_max_depth ) )

let quick_workloads =
  [
    ( "f1-coverage",
      fun () ->
        let p = { Tree_instances.regime; arity = 2; r = 2 } in
        let c = Tree_deciders.coverage p ~t:2 in
        ( Locald_core.Bound.tree_size ~arity:2 ~depth:(Tree_instances.depth p),
          digest_of
            ( c.Tree_deciders.covered,
              c.Tree_deciders.total_views,
              c.Tree_deciders.uncovered_node ) ) );
    ( "exhaustive-decider",
      fun () ->
        let p = { Tree_instances.regime; arity = 2; r = 2 } in
        let lg = Tree_instances.small_instance p ~apex:(0, 1) in
        let n = Labelled.order lg in
        let e =
          Locald_decision.Decider.evaluate_exhaustive ~bound:n
            (Tree_deciders.p_decider p) ~expected:true ~instance:"H+" lg
        in
        ( e.Locald_decision.Decider.assignments,
          digest_of
            ( e.Locald_decision.Decider.correct,
              e.Locald_decision.Decider.wrong,
              e.Locald_decision.Decider.assignments ) ) );
    ( "p3-coverage",
      fun () ->
        let rows = Experiments.p3 ~quick:true () in
        ( List.fold_left
            (fun acc (r : Experiments.p3_row) ->
              acc + r.Experiments.g_classes + r.Experiments.b_classes)
            0 rows,
          digest_of rows ) );
    ( "corollary1",
      fun () ->
        let rows = Experiments.corollary1 () in
        ( List.fold_left
            (fun acc (r : Experiments.corollary1_row) ->
              max acc r.Experiments.n)
            0 rows,
          digest_of rows ) );
    ( "certify-tree",
      fun () ->
        certify_summary
          (Locald_analysis.Analysis.certify
             (Tree_deciders.p_decider tree_params)
             ~instances:[ ("T_r", Lazy.force big_tree) ]) );
    ( "certify-gmr",
      fun () ->
        let t = Lazy.force gmr_instance in
        certify_summary
          (Locald_analysis.Analysis.certify
             (Gmr_deciders.ld_decider ())
             ~instances:[ ("G(M,1)", t.Gmr.lg) ]) );
  ]

type quick_entry = {
  qe_id : string;
  qe_jobs : int;
  qe_wall : float;
  qe_n : int;
  qe_digest : string;
  qe_hits : int;
  qe_misses : int;
  qe_orbit_classes : int;  (* distinct decorated-ball classes decided *)
}

let collect_quick_entries () =
  let job_counts = [ 1; 4 ] in
  List.concat_map
    (fun (id, work) ->
      let runs =
        List.map
          (fun jobs ->
            Locald_runtime.Pool.set_default_jobs jobs;
            (* Per-row cache accounting: a fresh telemetry run scopes
               every counter to this workload, so back-to-back rows
               report independent (not cumulative) counts. *)
            Locald_runtime.Telemetry.new_run ();
            let (n, digest), wall = Locald_runtime.Timing.time work in
            let ms = Locald_runtime.Memo.run_stats () in
            Printf.printf "%-24s jobs=%d n=%-8d %8.3fs  %s\n%!" id jobs n
              wall digest;
            {
              qe_id = id;
              qe_jobs = jobs;
              qe_wall = wall;
              qe_n = n;
              qe_digest = digest;
              qe_hits = ms.Locald_runtime.Memo.hits;
              qe_misses = ms.Locald_runtime.Memo.misses;
              qe_orbit_classes = ms.Locald_runtime.Memo.distinct;
            })
          job_counts
      in
      (match runs with
      | first :: rest ->
          List.iter
            (fun e ->
              if e.qe_digest <> first.qe_digest then
                Printf.printf
                  "  WARNING: %s digest differs at jobs=%d — determinism \
                   contract violated\n"
                  id e.qe_jobs)
            rest
      | [] -> ());
      runs)
    quick_workloads

(* The bench JSON writer and a live checkpoint writer must never
   interleave output: a shard checkpoint flushes mid-line-accurate
   JSONL on its own fd, and a bench write racing it in the same
   process could only happen through a harness bug — refuse loudly
   rather than corrupt either stream. *)
let refuse_if_checkpointing () =
  let open_writers = Locald_runtime.Checkpoint.active_writers () in
  if open_writers > 0 then begin
    Printf.eprintf
      "bench: refusing to write bench JSON while %d checkpoint writer(s) are \
       open in this process\n"
      open_writers;
    exit Locald_runtime.Shard.Exit.usage
  end

let run_quick_bench path =
  refuse_if_checkpointing ();
  print_endline "";
  print_endline "=================================================================";
  print_endline " PART 4: quick bench (machine-readable)";
  print_endline "=================================================================";
  let entries = collect_quick_entries () in
  Locald_runtime.Pool.set_default_jobs 1;
  (* One entry per line (the layout [parse_pins] reads back), each line
     emitted through the telemetry JSON module so hostile workload ids
     — quotes, backslashes — stay valid JSON. Wall times are rounded to
     the microsecond the old %.6f writer printed at. *)
  let entry_json e =
    Locald_runtime.Telemetry.Json.(
      Obj
        [
          ("wall_s", Float (Float.round (e.qe_wall *. 1e6) /. 1e6));
          ("jobs", Int e.qe_jobs);
          ("n", Int e.qe_n);
          ("hits", Int e.qe_hits);
          ("misses", Int e.qe_misses);
          ("orbit_classes", Int e.qe_orbit_classes);
          ("result_digest", String e.qe_digest);
        ])
  in
  let oc = open_out path in
  output_string oc "{\n";
  List.iteri
    (fun i e ->
      Printf.fprintf oc "  %s: %s%s\n"
        (Locald_runtime.Telemetry.Json.escape_string
           (Printf.sprintf "%s@j%d" e.qe_id e.qe_jobs))
        (Locald_runtime.Telemetry.Json.to_string (entry_json e))
        (if i = List.length entries - 1 then "" else ","))
    entries;
  output_string oc "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* --check: CI smoke gate against the committed pins                   *)
(* ------------------------------------------------------------------ *)

(* Minimal parser for the writer's own one-entry-per-line format:
   pulls the key, wall_s and result_digest out of each entry line. *)
let parse_pins path =
  let find_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i =
      if i + m > n then None
      else if String.sub s i m = sub then Some (i + m)
      else go (i + 1)
    in
    go 0
  in
  let quoted_at s i =
    match String.index_from_opt s i '"' with
    | None -> None
    | Some a -> (
        match String.index_from_opt s (a + 1) '"' with
        | None -> None
        | Some b -> Some (String.sub s (a + 1) (b - a - 1)))
  in
  let number_after s i =
    let n = String.length s in
    let i = ref i in
    while !i < n && s.[!i] = ' ' do
      incr i
    done;
    let j = ref !i in
    while
      !j < n && (match s.[!j] with '0' .. '9' | '.' | '-' | 'e' | '+' -> true | _ -> false)
    do
      incr j
    done;
    float_of_string (String.sub s !i (!j - !i))
  in
  let ic = open_in path in
  let pins = ref [] in
  (try
     while true do
       let line = input_line ic in
       match find_sub line "\"result_digest\":" with
       | None -> ()
       | Some after_digest_key -> (
           match
             ( quoted_at line 0,
               find_sub line "\"wall_s\":",
               quoted_at line after_digest_key )
           with
           | Some key, Some wall_pos, Some digest ->
               pins := (key, (number_after line wall_pos, digest)) :: !pins
           | _ -> ())
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !pins

let run_check path =
  let pins = parse_pins path in
  if pins = [] then begin
    Printf.printf "CHECK: no pins parsed from %s\n" path;
    exit 1
  end;
  print_endline "=================================================================";
  Printf.printf " CHECK: quick bench vs pins in %s\n" path;
  print_endline "=================================================================";
  let entries = collect_quick_entries () in
  Locald_runtime.Pool.set_default_jobs 1;
  let fail = ref false in
  List.iter
    (fun e ->
      let key = Printf.sprintf "%s@j%d" e.qe_id e.qe_jobs in
      match List.assoc_opt key pins with
      | None ->
          Printf.printf "CHECK FAIL: %s has no pinned entry\n" key;
          fail := true
      | Some (pinned_wall, pinned_digest) ->
          if e.qe_digest <> pinned_digest then begin
            Printf.printf "CHECK FAIL: %s digest %s differs from pinned %s\n"
              key e.qe_digest pinned_digest;
            fail := true
          end;
          (* Wall-clock regression gate on the tentpole workload only —
             micro-workloads are too noisy for a CI timing assertion. *)
          if key = "exhaustive-decider@j1" && e.qe_wall > 2.0 *. pinned_wall
          then begin
            Printf.printf
              "CHECK FAIL: %s wall %.6fs regressed more than 2x over pinned \
               %.6fs\n"
              key e.qe_wall pinned_wall;
            fail := true
          end)
    entries;
  if !fail then exit 1;
  Printf.printf
    "CHECK: %d entries match their pinned digests; exhaustive-decider@j1 \
     within 2x\n"
    (List.length entries)

let () =
  match Array.to_list Sys.argv with
  | _ :: "--json" :: rest ->
      (* Quick mode: only the machine-readable bench. *)
      let path = match rest with p :: _ -> p | [] -> "BENCH_quick.json" in
      run_quick_bench path
  | _ :: "--check" :: rest ->
      let path = match rest with p :: _ -> p | [] -> "BENCH_quick.json" in
      run_check path
  | _ ->
      regenerate_paper_artefacts ();
      run_ablations ();
      run_benchmarks ();
      run_quick_bench "BENCH_quick.json"
