(* Section 3: the computability separation.

   P = { G(M, r) : M outputs 0 }. Each instance glues the machine's
   pyramidal execution table to the collection of all syntactically
   possible table fragments, so local exploration reveals nothing an
   algorithm could not compute itself. With identifiers, some node's
   identifier exceeds the run time and that node simply simulates M to
   the end (Theorem 2). Without identifiers, deciding P would separate
   the computably inseparable languages L0 and L1 — every concrete
   Id-oblivious candidate is defeated by a concrete machine.

   Run with: dune exec examples/halting_separation.exe *)

open Locald_core
open Locald_turing
open Locald_local
open Locald_decision

let build m =
  match Gmr.build ~r:1 m with
  | Ok t -> t
  | Error _ -> failwith "machine did not halt within fuel"

let () =
  Format.printf "== Section 3: G(M,r) and the halting separation ==@.";
  (* Two machines with the same behaviour shape: both walk 3 cells and
     halt; one outputs 0 (yes-instance), one outputs 1 (no-instance).
     Each also carries a never-fired halting branch with the opposite
     output, so the fragment collection of each contains windows
     showing both outcomes. *)
  let m_yes = Zoo.two_faced ~steps:3 ~real:0 ~fake:1 in
  let m_no = Zoo.two_faced ~steps:3 ~real:1 ~fake:0 in
  let g_yes = build m_yes and g_no = build m_no in
  Format.printf "G(M0,1): %d nodes, %d edges, table %dx%d, %d fragments@."
    (Gmr.order g_yes) (Gmr.size g_yes) g_yes.Gmr.table_side g_yes.Gmr.table_side
    (List.length g_yes.Gmr.fragments);
  Format.printf "local structure rules hold on both instances: %b / %b@."
    (Gmr_check.structure_ok g_yes) (Gmr_check.structure_ok g_no);

  (* Theorem 2: the LD decider (fast whole-graph evaluation; the
     per-view algorithm is identical and tested to agree). *)
  let rng = Random.State.make [| 3 |] in
  let fast_yes = Gmr_deciders.Fast.prepare g_yes.Gmr.lg in
  let fast_no = Gmr_deciders.Fast.prepare g_no.Gmr.lg in
  let eval expected name fast n =
    let ok = ref 0 and assignments = 20 in
    for _ = 1 to assignments do
      let ids = Ids.sample rng Ids.Unbounded ~n in
      if Verdict.accepts (Gmr_deciders.Fast.ld fast ~ids) = expected then incr ok
    done;
    Format.printf "  %-22s expect=%-4s %d/%d assignments correct@." name
      (if expected then "yes" else "no")
      !ok assignments
  in
  Format.printf "@.[P in LD] simulate M for Id(v) steps:@.";
  eval true "G(M outputs 0)" fast_yes (Gmr.order g_yes);
  eval false "G(M outputs 1)" fast_no (Gmr.order g_no);

  (* The obfuscation: natural oblivious candidates fail. *)
  Format.printf "@.[P not in LD*] natural Id-oblivious candidates:@.";
  Format.printf
    "  'reject on seeing halt!=0' on the YES instance: %a  (fooled by fake-halt fragments)@."
    Verdict.pp
    (Gmr_deciders.Fast.scan_candidate fast_yes);
  Format.printf
    "  'simulate 2 steps' on the NO instance (M runs 3): %a  (out of fuel, accepts)@."
    Verdict.pp
    (Gmr_deciders.Fast.fuel_candidate fast_no ~fuel:2);

  (* The separation algorithm R of Theorem 2: total on divergers. *)
  Format.printf "@.[Theorem 2] separation algorithm R over B(N, t):@.";
  let candidate = Gmr_deciders.candidate_fuel ~fuel:8 in
  List.iter
    (fun (m : Machine.t) ->
      let accepted =
        Gmr_deciders.separation_accepts candidate ~r:1 ~side_exp:4 m
      in
      let truth =
        match Exec.run ~fuel:1000 m with
        | Exec.Halted { output; _ } -> Printf.sprintf "outputs %d" output
        | Exec.Out_of_fuel _ -> "diverges (>1000 steps)"
        | Exec.Crashed _ -> "crashes"
      in
      Format.printf "  R(%-16s) = %-6b   [machine %s]@." m.Machine.name accepted
        truth)
    [
      Zoo.two_faced ~steps:3 ~real:0 ~fake:1;
      Zoo.two_faced ~steps:3 ~real:1 ~fake:0;
      Zoo.walk ~steps:12 ~output:1;
      Zoo.diverge_bounce;
    ];
  Format.printf
    "  R halts on every machine; a correct Id-oblivious decider would make@.";
  Format.printf
    "  it separate L0 from L1 — impossible. The fuel-8 candidate is duly@.";
  Format.printf "  wrong on walk12.1 above: it cannot see past its fuel.@."
