(* Corollary 1: randomness substitutes for identifiers.

   An Id-oblivious algorithm cannot learn n, but each node can toss
   coins until the first head (l_v tosses) and set n_v := 4^(l_v);
   with probability 1 - (1 - 1/sqrt n)^n = 1 - o(1) some node gets
   n_v >= n, enough fuel to finish simulating M. The property P of
   Section 3 thus admits an Id-oblivious (1, 1-o(1))-decider.

   Run with: dune exec examples/randomized_decider_demo.exe *)

open Locald_core
open Locald_turing
open Locald_decision

let () =
  Format.printf "== Corollary 1: the randomised Id-oblivious decider ==@.";
  let rng = Random.State.make [| 4 |] in
  let decider = Gmr_deciders.corollary1_decider () in
  let runs = 40 in
  List.iter
    (fun (m, expected) ->
      match Gmr.build ~r:1 m with
      | Error _ -> ()
      | Ok t ->
          let est =
            Randomized_decider.estimate ~rng ~runs ~oblivious:true decider
              ~ids:None ~expected ~instance:m.Machine.name t.Gmr.lg
          in
          let n = Gmr.order t in
          let bound =
            1.0 -. ((1.0 -. (1.0 /. sqrt (float_of_int n))) ** float_of_int n)
          in
          Format.printf "  %a   (paper bound for no-instances: >= %.4f)@."
            Randomized_decider.pp est bound)
    [
      (Zoo.two_faced ~steps:2 ~real:0 ~fake:1, true);
      (Zoo.two_faced ~steps:2 ~real:1 ~fake:0, false);
      (Zoo.walk ~steps:4 ~output:1, false);
    ];
  Format.printf
    "@.Yes-instances are always accepted (one-sided error); no-instances are@.";
  Format.printf
    "rejected whenever some node draws enough fuel — w.h.p. as n grows.@."
