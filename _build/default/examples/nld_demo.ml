(* Nondeterministic local decision (NLD, Section 1.3 context).

   Where identifiers separate LD* from LD, nondeterminism removes the
   distinction (NLD* = NLD, Fraigniaud-Halldorsson-Korman). The
   executable face of that world: a prover labels the nodes of a
   yes-instance with certificates and an Id-oblivious radius-1
   verifier accepts, while no certificate assignment can make it
   accept a no-instance.

   Bipartiteness is the textbook case: it is not locally decidable at
   all — long even and odd cycles have pairwise isomorphic views, with
   or without identifiers — yet a 2-colouring certificate settles it
   at radius 1.

   Run with: dune exec examples/nld_demo.exe *)

open Locald_graph
open Locald_decision

let () =
  Format.printf "== NLD: certificates where identifiers cannot help ==@.";
  let scheme = Nondeterministic.bipartite_scheme in

  (* Completeness: the prover certifies bipartite instances. *)
  List.iter
    (fun (name, g) ->
      Format.printf "  %-24s proved and verified: %a@." name Verdict.pp
        (Nondeterministic.accepts_proved scheme (Labelled.const g ())))
    [
      ("C10 (even cycle)", Gen.cycle 10);
      ("4x3 grid", Gen.grid 4 3);
      ("complete binary tree", Gen.complete_binary_tree 3);
    ];

  (* Soundness: odd cycles admit no certificate at all. *)
  let c5 = Labelled.const (Gen.cycle 5) () in
  Format.printf "  %-24s every certificate rejected: %b@." "C5 (odd cycle)"
    (Nondeterministic.refuted ~candidates:[ 0; 1 ]
       scheme.Nondeterministic.verifier c5);
  let rng = Random.State.make [| 6 |] in
  let c11 = Labelled.const (Gen.cycle 11) () in
  Format.printf "  %-24s 500 sampled certificates rejected: %b@."
    "C11 (odd cycle)"
    (Nondeterministic.refuted_sampled ~rng ~trials:500 ~candidates:[ 0; 1 ]
       scheme.Nondeterministic.verifier c11);

  (* Why no decider exists: even and odd long cycles are locally
     indistinguishable. *)
  let even = Labelled.const (Gen.cycle 10) () in
  let odd = Labelled.const (Gen.cycle 11) () in
  let all_views_isomorphic =
    List.for_all
      (fun t ->
        Iso.views_isomorphic ( = )
          (View.extract even ~center:0 ~radius:t)
          (View.extract odd ~center:0 ~radius:t))
      [ 0; 1; 2; 3 ]
  in
  Format.printf
    "@.C10 and C11 views isomorphic at every horizon up to 3: %b@."
    all_views_isomorphic;
  Format.printf
    "No local decider — oblivious or not — separates them; the certificate does.@."
