(* A tour of the models of Section 1.3 on two folklore construction
   tasks: orienting the edges of a 1-regular graph (equivalently,
   2-colouring it). The tasks are trivial in LOCAL (compare
   identifiers) and in PO (the orientation is given), impossible for
   Id-oblivious algorithms (both endpoints are symmetric), and the OI
   model sits in between: relative order suffices.

   Run with: dune exec examples/models_tour.exe *)

open Locald_graph
open Locald_local

let matching = Labelled.const (Gen.matching 4) ()

(* LOCAL: colour = "my id is smaller than my neighbour's". *)
let local_two_colouring =
  Algorithm.make ~name:"2col-by-id" ~radius:1 (fun view ->
      let ids = match view.View.ids with Some ids -> ids | None -> [||] in
      let c = view.View.center in
      match Graph.neighbours view.View.graph c with
      | [| u |] -> if ids.(c) < ids.(u) then 0 else 1
      | _ -> 0)

(* OI: the same algorithm is order-invariant — it only compares. *)
let oi_two_colouring =
  Models.order_invariant ~name:"2col-by-rank" ~radius:1 (fun view ->
      let ids = match view.View.ids with Some ids -> ids | None -> [||] in
      let c = view.View.center in
      match Graph.neighbours view.View.graph c with
      | [| u |] -> if ids.(c) < ids.(u) then 0 else 1
      | _ -> 0)

(* PO: orient by the given edge orientation. *)
let po_two_colouring =
  {
    Models.po_name = "2col-by-orientation";
    po_decide =
      (fun pov ->
        match pov.Models.incident with
        | [ e ] -> if e.Models.outward then 0 else 1
        | _ -> 0);
  }

let proper colours lg =
  let g = Labelled.graph lg in
  Graph.fold_vertices
    (fun v acc ->
      acc
      && Array.for_all (fun u -> colours.(u) <> colours.(v)) (Graph.neighbours g v))
    g true

let () =
  Format.printf "== Section 1.3 models: 2-colouring a 1-regular graph ==@.";
  let rng = Random.State.make [| 5 |] in
  let n = Labelled.order matching in

  (* LOCAL succeeds under every assignment we try. *)
  let ok = ref true in
  for _ = 1 to 50 do
    let ids = Ids.shuffled rng n in
    if not (proper (Runner.run local_two_colouring matching ~ids) matching) then
      ok := false
  done;
  Format.printf "LOCAL (compare ids):        solves it (50/50 runs): %b@." !ok;

  (* OI succeeds too, and is genuinely order-invariant. *)
  let ok = ref true in
  for _ = 1 to 50 do
    let ids = Ids.shuffled rng n in
    if not (proper (Runner.run oi_two_colouring matching ~ids) matching) then
      ok := false
  done;
  let invariant =
    Models.find_order_variance ~rng ~trials:50 oi_two_colouring matching = None
  in
  Format.printf "OI (compare ranks):         solves it: %b, order-invariant: %b@."
    !ok invariant;

  (* PO succeeds given the orientation. *)
  let oriented = List.init 4 (fun i -> (2 * i, (2 * i) + 1)) in
  let po_out = Models.run_po po_two_colouring matching ~oriented in
  Format.printf "PO (follow orientation):    solves it: %b@." (proper po_out matching);

  (* Id-oblivious: impossible — any oblivious algorithm gives both
     endpoints of an edge the same output. We exhibit the failure of
     every candidate in a small hypothesis class: constant outputs. *)
  let oblivious_fails =
    List.for_all
      (fun c ->
        let out = Array.make n c in
        not (proper out matching))
      [ 0; 1 ]
  in
  Format.printf
    "Id-oblivious:               every candidate fails: %b  (endpoints of an edge@."
    oblivious_fails;
  Format.printf
    "                            have isomorphic views, hence equal outputs)@.";
  let symmetric =
    let v = View.extract matching ~center:0 ~radius:1 in
    let u = View.extract matching ~center:1 ~radius:1 in
    Iso.views_isomorphic ( = ) v u
  in
  Format.printf "                            views of both endpoints isomorphic: %b@."
    symmetric
