(* Quickstart: define a labelled-graph property, write a radius-1
   local decider for it, and run it in the LOCAL model — directly and
   through the synchronous message-passing engine.

   Run with: dune exec examples/quickstart.exe *)

open Locald_graph
open Locald_local
open Locald_decision

(* The property: the node labels form a proper 3-colouring. *)
let property = Property.proper_colouring ~k:3

(* The decider: each node checks its own colour against its
   neighbours' — a radius-1, Id-oblivious local algorithm. *)
let decider =
  Algorithm.make_oblivious ~name:"3col-check" ~radius:1 (fun view ->
      let c = View.center_label view in
      c >= 0 && c < 3
      && Array.for_all
           (fun u -> view.View.labels.(u) <> c)
           (Graph.neighbours view.View.graph view.View.center))

let show name lg =
  let verdict = Decider.decide_oblivious decider lg in
  Format.printf "%-28s -> %a (membership: %b)@." name Verdict.pp verdict
    (property.Property.mem lg)

let () =
  Format.printf "== Quickstart: local decision of proper 3-colouring ==@.";
  (* A correctly coloured 9-cycle. *)
  let good = Labelled.init (Gen.cycle 9) (fun v -> v mod 3) in
  show "9-cycle, colours v mod 3" good;
  (* A 10-cycle coloured the same way has a clash at the seam. *)
  let bad = Labelled.init (Gen.cycle 10) (fun v -> v mod 3) in
  show "10-cycle, colours v mod 3" bad;
  (* The same algorithm as a full (identifier-carrying) algorithm: the
     two engines must agree. *)
  let alg = Algorithm.of_oblivious decider in
  let rng = Random.State.make [| 42 |] in
  let ids = Ids.shuffled rng (Labelled.order good) in
  let direct = Runner.run alg good ~ids in
  let gossip = Runner.run_message_passing alg good ~ids in
  Format.printf "direct engine = message-passing engine: %b@." (direct = gossip);
  (* Membership is isomorphism-invariant, as every property must be. *)
  Format.printf "property is isomorphism-invariant on these instances: %b@."
    (Property.check_invariance ~rng ~trials:20 property good
    && Property.check_invariance ~rng ~trials:20 property bad)
