(* The two lives of an identifier (Section 1.3).

   Construction algorithms use identifiers as symmetry breakers:
   Cole-Vishkin colour reduction turns any distinct identifiers into a
   3-colouring of a directed cycle in O(log* B) + 3 rounds, and could
   not care less about their magnitude. The paper's decision
   separations use identifiers the other way — as magnitude oracles
   leaking n under (B). This example shows the construction side.

   Run with: dune exec examples/symmetry_breaking.exe *)

open Locald_graph
open Locald_local

let () =
  Format.printf "== Cole-Vishkin: identifiers as symmetry breakers ==@.";
  let rng = Random.State.make [| 8 |] in
  Format.printf "%8s %10s %18s %14s@." "n" "3-coloured" "CV iterations" "total rounds";
  List.iter
    (fun n ->
      let ids = Ids.shuffled rng n in
      let cols, outcome, stable = Symmetry.run_on_cycle ~n ~ids () in
      Format.printf "%8d %10b %18d %14d@." n
        (Symmetry.is_proper_colouring (Gen.cycle n) cols ~k:3)
        stable outcome.Protocol.rounds_used)
    [ 4; 16; 64; 256; 1024 ];

  Format.printf
    "@.The iteration count is log*-flat: growing n 256-fold barely moves it.@.";

  (* Magnitude independence: shift every identifier by a million. *)
  let n = 100 in
  let base = Ids.shuffled rng n in
  let shifted = Ids.offset base 1_000_000 in
  let cols_base, _, _ = Symmetry.run_on_cycle ~n ~ids:base () in
  let cols_shifted, _, _ = Symmetry.run_on_cycle ~cv_rounds:16 ~n ~ids:shifted () in
  Format.printf
    "@.With ids shifted by 10^6: still properly coloured: %b (magnitude is@."
    (Symmetry.is_proper_colouring (Gen.cycle n) cols_shifted ~k:3);
  Format.printf
    "irrelevant to construction — while the paper's Section 2 decider is all@.";
  Format.printf "about magnitude). Base run also coloured: %b.@."
    (Symmetry.is_proper_colouring (Gen.cycle n) cols_base ~k:3);

  (* And without identifiers the whole enterprise is impossible: both
     endpoints of an edge look identical. *)
  let matching = Labelled.const (Gen.matching 2) () in
  let u = View.extract matching ~center:0 ~radius:1 in
  let v = View.extract matching ~center:1 ~radius:1 in
  Format.printf
    "@.Id-oblivious contrast: the endpoints of an edge have isomorphic views@.";
  Format.printf "(%b), so no oblivious algorithm 2-colours even one edge.@."
    (Iso.views_isomorphic ( = ) u v)
