examples/halting_separation.mli:
