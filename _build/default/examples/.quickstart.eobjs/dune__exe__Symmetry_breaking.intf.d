examples/symmetry_breaking.mli:
