examples/halting_separation.ml: Exec Format Gmr Gmr_check Gmr_deciders Ids List Locald_core Locald_decision Locald_local Locald_turing Machine Printf Random Verdict Zoo
