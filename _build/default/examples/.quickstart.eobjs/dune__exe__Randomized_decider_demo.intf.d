examples/randomized_decider_demo.mli:
