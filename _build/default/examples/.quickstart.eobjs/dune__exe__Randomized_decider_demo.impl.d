examples/randomized_decider_demo.ml: Format Gmr Gmr_deciders List Locald_core Locald_decision Locald_turing Machine Random Randomized_decider Zoo
