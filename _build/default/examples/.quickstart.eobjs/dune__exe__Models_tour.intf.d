examples/models_tour.mli:
