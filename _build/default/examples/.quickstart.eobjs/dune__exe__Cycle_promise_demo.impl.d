examples/cycle_promise_demo.ml: Cycle_promise Decider Format Ids List Locald_core Locald_decision Locald_local Random
