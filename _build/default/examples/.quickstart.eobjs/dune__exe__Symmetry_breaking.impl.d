examples/symmetry_breaking.ml: Format Gen Ids Iso Labelled List Locald_graph Locald_local Protocol Random Symmetry View
