examples/nld_demo.mli:
