examples/nld_demo.ml: Format Gen Iso Labelled List Locald_decision Locald_graph Nondeterministic Random Verdict View
