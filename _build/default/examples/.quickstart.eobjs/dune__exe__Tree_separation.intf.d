examples/tree_separation.mli:
