examples/quickstart.mli:
