examples/models_tour.ml: Algorithm Array Format Gen Graph Ids Iso Labelled List Locald_graph Locald_local Models Random Runner View
