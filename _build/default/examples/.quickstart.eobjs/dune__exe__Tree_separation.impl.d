examples/tree_separation.ml: Decider Format Ids List Locald_core Locald_decision Locald_graph Locald_local Printf Random Tree_deciders Tree_instances Verdict
