examples/cycle_promise_demo.mli:
