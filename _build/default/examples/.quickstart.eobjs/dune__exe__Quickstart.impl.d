examples/quickstart.ml: Algorithm Array Decider Format Gen Graph Ids Labelled Locald_decision Locald_graph Locald_local Property Random Runner Verdict View
