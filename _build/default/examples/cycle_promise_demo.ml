(* Section 2 warm-up: bounded identifiers leak the network size.

   Under assumption (B) every identifier is below f(n). On an r-cycle
   all identifiers are therefore < f(r), while a larger cycle must,
   by pigeonhole, contain an identifier >= f(r). A radius-0 decider
   exploits the leak; an Id-oblivious algorithm sees identical views
   on both cycles and cannot.

   Run with: dune exec examples/cycle_promise_demo.exe *)

open Locald_core
open Locald_local
open Locald_decision

let () =
  let regime = Ids.f_linear_plus 1 in
  let rng = Random.State.make [| 1 |] in
  Format.printf "== Section 2 warm-up: the cycle promise problem ==@.";
  List.iter
    (fun r ->
      let yes = Cycle_promise.yes_instance ~r in
      let no = Cycle_promise.no_instance ~regime ~r in
      let decider = Cycle_promise.ld_decider ~regime in
      let eval expected name lg =
        let e =
          Decider.evaluate ~rng ~regime ~assignments:80 decider ~expected
            ~instance:name lg
        in
        Format.printf "  %a@." Decider.pp_evaluation e
      in
      Format.printf "r = %d (yes: %d-cycle, no: %d-cycle)@." r
        (Cycle_promise.small_length ~r)
        (Cycle_promise.large_length ~regime ~r);
      eval true "r-cycle (yes)" yes;
      eval false "large cycle (no)" no;
      Format.printf
        "  oblivious blind spot: all radius-1 views mutually isomorphic: %b@."
        (Cycle_promise.views_mutually_covered ~regime ~r ~t:1))
    [ 4; 8; 16; 32 ];
  Format.printf
    "@.An Id-oblivious decider must answer identically on both cycles —@.";
  Format.printf
    "accepting the yes-instance forces it to accept the no-instance.@."
