(* Section 2, promise-free: the layered-tree property P (Figure 1).

   P consists of the "small" instances H+ (a depth-r layered-tree cone
   plus a pivot seeing its whole border); P' also contains the "large"
   layered trees T_r of depth R(r) = f(|H+| + 1).

   - P' is decidable without identifiers (structure checking);
   - P is decidable with identifiers (reject anyone with Id >= R(r));
   - P is NOT decidable without identifiers: every local view of T_r
     already occurs inside some small instance.

   Run with: dune exec examples/tree_separation.exe *)

open Locald_core
open Locald_local
open Locald_decision
module Ti = Tree_instances

let () =
  let regime = Ids.f_linear_plus 1 in
  let p = { Ti.regime; arity = 2; r = 1 } in
  let rng = Random.State.make [| 2 |] in
  Format.printf "== Section 2: the layered-tree separation ==@.";
  Format.printf "parameters: arity 2, r = %d, f(n) = n+1, R(r) = %d@." p.Ti.r
    (Ti.depth p);
  let tr = Ti.big_tree p in
  Format.printf "T_r has %d nodes; H_r contains %d small instances@."
    (Locald_graph.Labelled.order tr)
    (List.length (Ti.apexes p));

  (* 1. P' in LD*: the Id-oblivious verifier. *)
  let verifier = Tree_deciders.pprime_verifier p in
  Format.printf "@.[P' in LD*] Id-oblivious structure verifier:@.";
  Format.printf "  accepts T_r:                 %a@." Verdict.pp
    (Decider.decide_oblivious verifier tr);
  let apex = (1, 2) in
  Format.printf "  accepts H+ at apex (1,2):    %a@." Verdict.pp
    (Decider.decide_oblivious verifier (Ti.small_instance p ~apex));
  Format.printf "  rejects cone without pivot:  %a@." Verdict.pp
    (Decider.decide_oblivious verifier (Ti.cone_without_pivot p ~apex));
  Format.printf "  rejects doubled pivot:       %a@." Verdict.pp
    (Decider.decide_oblivious verifier (Ti.two_pivots p ~apex));
  Format.printf "  rejects truncated tree:      %a@." Verdict.pp
    (Decider.decide_oblivious verifier (Ti.truncated_tree p ~keep_depth:3));

  (* 2. P in LD: identifiers reject the large instance. *)
  let decider = Tree_deciders.p_decider p in
  Format.printf "@.[P in LD] decider with identifiers (threshold R(r) = %d):@."
    (Ti.depth p);
  let eval expected name lg =
    let e =
      Decider.evaluate ~rng ~regime ~assignments:60 decider ~expected
        ~instance:name lg
    in
    Format.printf "  %a@." Decider.pp_evaluation e
  in
  eval false "T_r (no-instance)" tr;
  eval true "H+ (yes-instance)" (Ti.small_instance p ~apex);

  (* 3. P not in LD*: view coverage. *)
  Format.printf "@.[P not in LD*] view coverage of T_r by H_r:@.";
  let c0 = Tree_deciders.coverage p ~t:0 in
  Format.printf "  arity 2, t = 0: %d/%d view classes covered@."
    c0.Tree_deciders.covered c0.Tree_deciders.total_views;
  let p1 = { Ti.regime; arity = 1; r = 6 } in
  let c1 = Tree_deciders.coverage p1 ~t:1 in
  Format.printf "  arity 1 (linear-size variant), r = 6, t = 1: %d/%d covered@."
    c1.Tree_deciders.covered c1.Tree_deciders.total_views;
  let cbad = Tree_deciders.coverage { p1 with Ti.r = 3 } ~t:1 in
  Format.printf "  arity 1, r = 3 < 2t+2: %d/%d covered (gap: r must dwarf t)@."
    cbad.Tree_deciders.covered cbad.Tree_deciders.total_views;

  (* 4. The generic simulation A* fails for every budget. *)
  Format.printf "@.[why (B) kills the simulation] budgeted A* on P:@.";
  let rr = Ti.depth p in
  let describe = function
    | Tree_deciders.Rejects_small (x, y) ->
        Printf.sprintf "rejects the yes-instance H+ at apex (%d,%d)" x y
    | Tree_deciders.Accepts_large -> "accepts the no-instance T_r"
    | Tree_deciders.No_failure_found -> "no failure found"
  in
  Format.printf "  search budget %d (> R): %s@." (2 * rr)
    (describe (Tree_deciders.budgeted_a_star p ~budget:(2 * rr) ~trials:64));
  Format.printf "  search budget %d (<= R): %s@." rr
    (describe (Tree_deciders.budgeted_a_star p ~budget:rr ~trials:64))
