test/test_local.mli:
