test/test_views.ml: Alcotest Array Gen Graph Labelled List Locald_graph QCheck2 QCheck_alcotest Random View
