test/test_decision.mli:
