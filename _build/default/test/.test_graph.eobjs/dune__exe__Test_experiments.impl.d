test/test_experiments.ml: Alcotest Experiments List Locald_core Printf Report
