test/test_iso.ml: Alcotest Array Fun Gen Graph Hashtbl Iso Labelled List Locald_graph QCheck2 QCheck_alcotest Random View
