test/test_structured_graphs.ml: Alcotest Array Fmt Fun Graph Grid Labelled Layered_tree List Locald_graph Printf Quadtree String
