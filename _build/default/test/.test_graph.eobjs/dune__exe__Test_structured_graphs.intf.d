test/test_structured_graphs.mli:
