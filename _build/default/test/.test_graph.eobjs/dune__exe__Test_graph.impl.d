test/test_graph.ml: Alcotest Array Dot Format Fun Gen Graph Labelled List Locald_graph Printf QCheck2 QCheck_alcotest Random Spanning_tree String View
