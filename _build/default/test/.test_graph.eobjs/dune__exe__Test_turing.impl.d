test/test_turing.ml: Alcotest Array Cell Exec List Locald_turing Machine Option Printf Rules Table Zoo
