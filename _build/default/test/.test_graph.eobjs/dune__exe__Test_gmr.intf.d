test/test_gmr.mli:
