test/test_tree_separation.mli:
