test/test_fragments.ml: Alcotest Array Cell Fragment Lazy List Locald_turing QCheck2 QCheck_alcotest Rules Table Zoo
