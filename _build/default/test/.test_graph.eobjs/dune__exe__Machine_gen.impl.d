test/machine_gen.ml: Array Exec Locald_turing Machine Printf QCheck2
