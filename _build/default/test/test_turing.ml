(* Tests for the Turing-machine substrate: machines, execution,
   tables and local rules. *)

open Locald_turing

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let steps_of m ~fuel =
  match Exec.run ~fuel m with
  | Exec.Halted { steps; _ } -> Some steps
  | Exec.Out_of_fuel _ | Exec.Crashed _ -> None

let output_of m ~fuel =
  match Exec.run ~fuel m with
  | Exec.Halted { output; _ } -> Some output
  | Exec.Out_of_fuel _ | Exec.Crashed _ -> None

(* ------------------------------------------------------------------ *)
(* Machines                                                            *)
(* ------------------------------------------------------------------ *)

let test_machine_validation () =
  let raised f = try ignore (f ()); false with Machine.Invalid_machine _ -> true in
  check bool "bad state target" true
    (raised (fun () ->
         Machine.make ~name:"bad" ~num_states:1 ~num_symbols:1 (fun _ _ ->
             Machine.Step { next = 5; write = 0; move = Machine.Right })));
  check bool "bad write" true
    (raised (fun () ->
         Machine.make ~name:"bad" ~num_states:1 ~num_symbols:1 (fun _ _ ->
             Machine.Step { next = 0; write = 9; move = Machine.Right })));
  check bool "bad output" true
    (raised (fun () ->
         Machine.make ~name:"bad" ~num_states:1 ~num_symbols:1 (fun _ _ ->
             Machine.Halt 3)))

let test_machine_introspection () =
  let m = Zoo.zigzag ~half:2 ~output:0 in
  check bool "has right movers" true (Machine.right_movers m <> []);
  check bool "has left movers" true (Machine.left_movers m <> []);
  check (Alcotest.list int) "halt outputs" [ 0 ] (Machine.halt_outputs m);
  let tf = Zoo.two_faced ~steps:2 ~real:0 ~fake:1 in
  check (Alcotest.list int) "two-faced has both outputs" [ 0; 1 ]
    (Machine.halt_outputs tf);
  check bool "encode is stable" true (Machine.encode m = Machine.encode m);
  check bool "equal to itself" true (Machine.equal m m);
  check bool "distinct machines differ" false (Machine.equal m tf)

let test_encode_decode_roundtrip () =
  List.iter
    (fun m ->
      match Machine.decode (Machine.encode m) with
      | Error e -> Alcotest.fail e
      | Ok m' ->
          check bool (m.Machine.name ^ " round-trips") true (Machine.equal m m');
          check bool "name preserved" true (m'.Machine.name = m.Machine.name))
    (Zoo.all ());
  (match Machine.decode "garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage should not decode")

let test_zoo_no_start_reentry () =
  List.iter
    (fun m ->
      check bool
        (Printf.sprintf "%s never re-enters state 0" m.Machine.name)
        false (Machine.reenters_start m))
    (Zoo.all ())

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let test_exec_outcomes () =
  check (Alcotest.option int) "halt_now steps" (Some 0)
    (steps_of (Zoo.halt_now 1) ~fuel:10);
  check (Alcotest.option int) "halt_now output" (Some 1)
    (output_of (Zoo.halt_now 1) ~fuel:10);
  check (Alcotest.option int) "walk k steps" (Some 5)
    (steps_of (Zoo.walk ~steps:5 ~output:0) ~fuel:100);
  check (Alcotest.option int) "zigzag steps" (Some 5)
    (steps_of (Zoo.zigzag ~half:3 ~output:1) ~fuel:100);
  check (Alcotest.option int) "diverger out of fuel" None
    (steps_of Zoo.diverge_right ~fuel:100);
  check (Alcotest.option int) "bouncing diverger" None
    (steps_of Zoo.diverge_bounce ~fuel:100);
  check (Alcotest.option int) "counter diverges" None
    (steps_of Zoo.counter_diverge ~fuel:2000)

let test_exec_two_faced_matches_walk () =
  (* On the blank tape the fake branch never fires. *)
  let a = Zoo.two_faced ~steps:4 ~real:1 ~fake:0 in
  check (Alcotest.option int) "steps" (Some 4) (steps_of a ~fuel:50);
  check (Alcotest.option int) "output is the real one" (Some 1) (output_of a ~fuel:50)

let test_exec_binary_counter () =
  let m = Zoo.binary_counter ~bits:2 in
  check (Alcotest.option int) "counter halts with 0" (Some 0) (output_of m ~fuel:5000);
  (* More bits, more steps. *)
  let s2 = Option.get (steps_of (Zoo.binary_counter ~bits:2) ~fuel:5000) in
  let s3 = Option.get (steps_of (Zoo.binary_counter ~bits:3) ~fuel:5000) in
  check bool "counting time grows" true (s3 > s2)

let test_exec_fuel_semantics () =
  let m = Zoo.walk ~steps:3 ~output:0 in
  (* Reading the halting action needs fuel > steps. *)
  check (Alcotest.option int) "fuel = steps: not yet halted" None
    (output_of m ~fuel:3);
  check (Alcotest.option int) "fuel = steps + 1: halted" (Some 0)
    (output_of m ~fuel:4)

let test_crash_detected () =
  (* A machine stepping left from cell 0 crashes (and is reported, not
     silently clamped). *)
  let lefty =
    Machine.make ~name:"lefty" ~num_states:2 ~num_symbols:1 (fun _ _ ->
        Machine.Step { next = 1; write = 0; move = Machine.Left })
  in
  (match Exec.run ~fuel:10 lefty with
  | Exec.Crashed { steps } -> check int "crashes immediately" 0 steps
  | Exec.Halted _ | Exec.Out_of_fuel _ -> Alcotest.fail "expected crash");
  match Table.of_machine ~fuel:10 lefty with
  | Error (Exec.Crashed _) -> ()
  | Error _ | Ok _ -> Alcotest.fail "table construction should report the crash"

let test_trace_shape () =
  let m = Zoo.walk ~steps:3 ~output:0 in
  let configs, outcome = Exec.trace ~fuel:10 m in
  check int "trace length = steps + 1" 4 (List.length configs);
  (match outcome with
  | Exec.Halted { steps; output } ->
      check int "steps" 3 steps;
      check int "output" 0 output
  | _ -> Alcotest.fail "expected halt");
  check int "head walked right" 3 (Exec.max_head_excursion configs)

(* ------------------------------------------------------------------ *)
(* Tables                                                              *)
(* ------------------------------------------------------------------ *)

let table_of m =
  match Table.of_machine ~fuel:200 m with
  | Ok t -> t
  | Error _ -> Alcotest.fail "machine should halt"

let test_table_shape () =
  let t = table_of (Zoo.walk ~steps:3 ~output:1) in
  check int "side = steps + 2" 5 t.Table.side;
  check int "output" 1 t.Table.output;
  (* Top-left cell is the pivot: blank with the state-0 head. *)
  check bool "pivot cell" true
    (Cell.equal (Table.cell t ~row:0 ~col:0) { Cell.sym = 0; head = Cell.Head 0 });
  (* The bottom row contains the halting marker. *)
  check (Alcotest.option int) "halted output in bottom row" (Some 1)
    (Table.halted_output t.Table.cells)

let test_table_validates () =
  List.iter
    (fun m ->
      let t = table_of m in
      check (Alcotest.list Alcotest.reject)
        (Printf.sprintf "%s table valid" m.Machine.name)
        []
        (List.map (fun (_ : Table.check_error) -> ()) (Table.validate m t.Table.cells)))
    [
      Zoo.halt_now 0;
      Zoo.walk ~steps:4 ~output:0;
      Zoo.zigzag ~half:2 ~output:1;
      Zoo.binary_counter ~bits:2;
      Zoo.two_faced ~steps:3 ~real:0 ~fake:1;
    ]

let test_table_padding_stays_valid () =
  let m = Zoo.zigzag ~half:2 ~output:0 in
  let t = Table.pad_to_power_of_two (table_of m) in
  check int "padded side" 8 t.Table.side;
  check bool "padded table still valid" true (Table.validate m t.Table.cells = []);
  let t16 = Table.pad_to t 16 in
  check bool "further padding valid" true (Table.validate m t16.Table.cells = [])

let test_table_validate_catches_corruption () =
  let m = Zoo.walk ~steps:3 ~output:0 in
  let t = table_of m in
  let corrupt f =
    let cells = Array.map Array.copy t.Table.cells in
    f cells;
    Table.validate m cells <> []
  in
  check bool "flipped symbol detected" true
    (corrupt (fun c -> c.(2).(3) <- { (c.(2).(3)) with Cell.sym = 1 }));
  check bool "wrong output marker detected" true
    (corrupt (fun c ->
         Array.iteri
           (fun j cell ->
             match cell.Cell.head with
             | Cell.Halted _ -> c.(t.Table.side - 1).(j) <- { cell with Cell.head = Cell.Halted 1 }
             | _ -> ())
           c.(t.Table.side - 1)));
  check bool "bad initial row detected" true
    (corrupt (fun c -> c.(0).(1) <- { Cell.sym = 1; head = Cell.No_head }));
  check bool "teleporting head detected" true
    (corrupt (fun c -> c.(1).(3) <- { (c.(1).(3)) with Cell.head = Cell.Head 1 }))

let test_window () =
  let m = Zoo.walk ~steps:3 ~output:0 in
  let t = table_of m in
  let w = Table.window t ~row:0 ~col:0 ~w:2 ~h:2 in
  check bool "window top-left is pivot" true
    (Cell.equal w.(0).(0) { Cell.sym = 0; head = Cell.Head 0 });
  (* Overhanging the right edge pads with blanks. *)
  let w = Table.window t ~row:0 ~col:(t.Table.side - 1) ~w:3 ~h:2 in
  check bool "overhang blank" true (Cell.equal w.(0).(2) Cell.blank)

(* ------------------------------------------------------------------ *)
(* Local rules                                                         *)
(* ------------------------------------------------------------------ *)

let test_successor_matches_execution () =
  (* Row-by-row propagation of the real table reproduces the table. *)
  List.iter
    (fun m ->
      let t = table_of m in
      for i = 0 to t.Table.side - 2 do
        match Rules.row_successor m t.Table.cells.(i) with
        | None -> Alcotest.fail "collision in a genuine table"
        | Some next ->
            check bool
              (Printf.sprintf "%s row %d" m.Machine.name i)
              true
              (next = t.Table.cells.(i + 1))
      done)
    [ Zoo.walk ~steps:4 ~output:0; Zoo.zigzag ~half:3 ~output:1; Zoo.binary_counter ~bits:2 ]

let test_collision_detected () =
  (* Two heads converging on the same cell have no successor. *)
  let m = Zoo.zigzag ~half:2 ~output:0 in
  (* State 0 moves right; state 2 moves left (the return leg). *)
  let row =
    [|
      { Cell.sym = 0; head = Cell.Head 0 };
      Cell.blank;
      { Cell.sym = 1; head = Cell.Head 2 };
    |]
  in
  check bool "collision" true (Rules.row_successor m row = None)

let test_check_grid_real_table () =
  let m = Zoo.zigzag ~half:2 ~output:1 in
  let t = table_of m in
  check bool "sealed check passes" true
    (Rules.check_grid m ~entries_allowed:false t.Table.cells = []);
  check bool "entries-allowed also passes" true
    (Rules.check_grid m ~entries_allowed:true t.Table.cells = [])

let test_entries_allowed_at_boundary () =
  (* A head enters from the left of a 2-wide window: rejected sealed,
     accepted as a fragment. *)
  let m = Zoo.walk ~steps:3 ~output:0 in
  let mover = List.hd (Machine.right_movers m) in
  let grid =
    [|
      [| Cell.blank; Cell.blank |];
      [| { Cell.sym = 0; head = Cell.Head mover }; Cell.blank |];
    |]
  in
  check bool "sealed rejects" true
    (Rules.check_grid m ~entries_allowed:false grid <> []);
  check bool "fragment semantics accepts" true
    (Rules.check_grid m ~entries_allowed:true grid = [])

let test_natural_borders_of_real_table () =
  let m = Zoo.walk ~steps:2 ~output:0 in
  let t = table_of m in
  check bool "left natural" true (Rules.left_border_natural m t.Table.cells);
  check bool "right natural" true (Rules.right_border_natural m t.Table.cells);
  check bool "bottom natural (halted)" true
    (Rules.bottom_border_natural t.Table.cells);
  (* Cut the table above the halt: bottom has a live head. *)
  let truncated = Array.sub t.Table.cells 0 2 in
  check bool "live bottom not natural" false (Rules.bottom_border_natural truncated)

let () =
  Alcotest.run "turing"
    [
      ( "machines",
        [
          Alcotest.test_case "validation" `Quick test_machine_validation;
          Alcotest.test_case "introspection" `Quick test_machine_introspection;
          Alcotest.test_case "encode/decode round-trip" `Quick
            test_encode_decode_roundtrip;
          Alcotest.test_case "zoo: no state-0 re-entry" `Quick test_zoo_no_start_reentry;
        ] );
      ( "execution",
        [
          Alcotest.test_case "outcomes" `Quick test_exec_outcomes;
          Alcotest.test_case "two-faced runs its real branch" `Quick
            test_exec_two_faced_matches_walk;
          Alcotest.test_case "binary counter" `Quick test_exec_binary_counter;
          Alcotest.test_case "fuel semantics" `Quick test_exec_fuel_semantics;
          Alcotest.test_case "trace shape" `Quick test_trace_shape;
          Alcotest.test_case "left-edge crash" `Quick test_crash_detected;
        ] );
      ( "tables",
        [
          Alcotest.test_case "shape" `Quick test_table_shape;
          Alcotest.test_case "validation accepts genuine" `Quick test_table_validates;
          Alcotest.test_case "padding stays valid" `Quick test_table_padding_stays_valid;
          Alcotest.test_case "corruption detected" `Quick
            test_table_validate_catches_corruption;
          Alcotest.test_case "windows" `Quick test_window;
        ] );
      ( "rules",
        [
          Alcotest.test_case "successor matches execution" `Quick
            test_successor_matches_execution;
          Alcotest.test_case "collisions detected" `Quick test_collision_detected;
          Alcotest.test_case "check_grid on real tables" `Quick test_check_grid_real_table;
          Alcotest.test_case "boundary entries" `Quick test_entries_allowed_at_boundary;
          Alcotest.test_case "natural borders" `Quick test_natural_borders_of_real_table;
        ] );
    ]
