(* A qcheck generator of random admissible Turing machines, used by the
   randomised integration tests: any machine that halts (within fuel,
   without falling off the left end) must flow through the whole
   Section 3 pipeline — table, fragments, G(M,r), local rules,
   deciders. *)

open Locald_turing

let action_gen ~num_states ~num_symbols =
  QCheck2.Gen.(
    let* choice = int_bound 9 in
    if choice < 2 then
      (* Halting actions are made reasonably likely so that a useful
         fraction of machines halt. *)
      let* o = int_bound 1 in
      return (Machine.Halt o)
    else
      (* State 0 is never a target: admissibility (pivot uniqueness). *)
      let* next = int_range (min 1 (num_states - 1)) (num_states - 1) in
      let* write = int_bound (num_symbols - 1) in
      let* move =
        map (fun b -> if b then Machine.Right else Machine.Left) bool
      in
      return (Machine.Step { next; write; move }))

let machine_gen =
  QCheck2.Gen.(
    let* num_states = int_range 2 4 in
    let* num_symbols = int_range 1 3 in
    let* table =
      array_size
        (return (num_states * num_symbols))
        (action_gen ~num_states ~num_symbols)
    in
    let* id = int_bound 9999 in
    return
      (Machine.make
         ~name:(Printf.sprintf "rand%04d" id)
         ~num_states ~num_symbols
         (fun q s -> table.((q * num_symbols) + s))))

type behaviour =
  | Halts of { output : int; steps : int }
  | Diverges_within of int  (** did not halt within the fuel *)
  | Crashes

let behaviour ~fuel m =
  match Exec.run ~fuel m with
  | Exec.Halted { output; steps } -> Halts { output; steps }
  | Exec.Out_of_fuel _ -> Diverges_within fuel
  | Exec.Crashed _ -> Crashes
