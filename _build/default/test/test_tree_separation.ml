(* Tests for the Section 2 construction: instances, classification,
   the P' verifier, the P decider, view coverage and the failure of
   the budgeted simulation. *)

open Locald_graph
open Locald_local
open Locald_decision
open Locald_core
module Ti = Tree_instances
module Td = Tree_deciders

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let regime = Ids.f_linear_plus 1
let p2 = { Ti.regime; arity = 2; r = 1 }
let rng () = Random.State.make [| 0x5ec2 |]

let kind =
  Alcotest.testable
    (fun ppf -> function
      | Ti.Small -> Fmt.string ppf "Small"
      | Ti.Large -> Fmt.string ppf "Large"
      | Ti.Neither -> Fmt.string ppf "Neither")
    ( = )

(* ------------------------------------------------------------------ *)
(* Bounds                                                              *)
(* ------------------------------------------------------------------ *)

let test_bounds () =
  check int "tree size depth 3" 15 (Bound.tree_size ~arity:2 ~depth:3);
  check int "small max size r=1" 4 (Bound.small_max_size ~arity:2 ~r:1);
  (* f(n) = n+1, so R(1) = f(5) = 6. *)
  check int "R(1)" 6 (Bound.big_r ~regime ~arity:2 ~r:1);
  check bool "pigeonhole r=1" true (Bound.pigeonhole_holds ~regime ~arity:2 ~r:1);
  check bool "pigeonhole r=2" true (Bound.pigeonhole_holds ~regime ~arity:2 ~r:2);
  check bool "pigeonhole arity 1" true (Bound.pigeonhole_holds ~regime ~arity:1 ~r:5);
  check bool "pigeonhole under oracle f" true
    (Bound.pigeonhole_holds ~regime:(Ids.f_oracle ~seed:1) ~arity:2 ~r:1)

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

let test_classify_large () = check kind "T_r" Ti.Large (Ti.classify p2 (Ti.big_tree p2))

let test_classify_all_smalls () =
  List.iter
    (fun apex ->
      check kind
        (Printf.sprintf "H+ at (%d,%d)" (fst apex) (snd apex))
        Ti.Small
        (Ti.classify p2 (Ti.small_instance p2 ~apex)))
    (Ti.apexes p2)

let test_classify_counterfeits () =
  let apex = (0, 1) in
  check kind "cone without pivot" Ti.Neither
    (Ti.classify p2 (Ti.cone_without_pivot p2 ~apex));
  check kind "two pivots" Ti.Neither (Ti.classify p2 (Ti.two_pivots p2 ~apex));
  (* At r = 1 every cone node is a border node, so the interior-pivot
     counterfeit needs r = 2 (apex (0,0): node (0,1) is interior). *)
  let p2r2 = { p2 with Ti.r = 2 } in
  check kind "pivot on interior" Ti.Neither
    (Ti.classify p2r2 (Ti.pivot_on_interior p2r2 ~apex:(0, 0)));
  check kind "truncated tree" Ti.Neither
    (Ti.classify p2 (Ti.truncated_tree p2 ~keep_depth:2));
  check kind "wrong r" Ti.Neither
    (Ti.classify { p2 with Ti.r = 2 } (Ti.big_tree p2))

let test_membership_predicates () =
  let apex = (1, 2) in
  check bool "H+ in P" true (Ti.in_p p2 (Ti.small_instance p2 ~apex));
  check bool "T_r not in P" false (Ti.in_p p2 (Ti.big_tree p2));
  check bool "T_r in P'" true (Ti.in_p' p2 (Ti.big_tree p2));
  check bool "counterfeit in neither" false
    (Ti.in_p' p2 (Ti.cone_without_pivot p2 ~apex))

let test_membership_iso_invariant () =
  (* Membership is invariant under node renumbering, as a labelled
     graph property must be. *)
  let rng = rng () in
  let h = Ti.small_instance p2 ~apex:(1, 1) in
  let n = Labelled.order h in
  for _ = 1 to 10 do
    let perm = Ids.to_array (Ids.shuffled rng n) in
    check bool "membership invariant" true (Ti.in_p p2 (Labelled.relabel_nodes h perm))
  done

(* ------------------------------------------------------------------ *)
(* The P' verifier (the LD-star algorithm)                             *)
(* ------------------------------------------------------------------ *)

let verifier = Td.pprime_verifier p2

let test_verifier_accepts () =
  check bool "accepts T_r" true
    (Verdict.accepts (Decider.decide_oblivious verifier (Ti.big_tree p2)));
  List.iter
    (fun apex ->
      check bool "accepts H+" true
        (Verdict.accepts (Decider.decide_oblivious verifier (Ti.small_instance p2 ~apex))))
    (Ti.apexes p2)

let test_verifier_rejects_counterfeits () =
  let apex = (1, 1) in
  (* The interior-pivot counterfeit needs a cone with an interior. *)
  let p2r2 = { p2 with Ti.r = 2 } in
  check bool "pivot on interior rejected" true
    (Verdict.rejects
       (Decider.decide_oblivious (Td.pprime_verifier p2r2)
          (Ti.pivot_on_interior p2r2 ~apex:(0, 0))));
  List.iter
    (fun (name, lg) ->
      check bool name true (Verdict.rejects (Decider.decide_oblivious verifier lg)))
    [
      ("cone without pivot", Ti.cone_without_pivot p2 ~apex);
      ("two pivots", Ti.two_pivots p2 ~apex);

      ("truncated tree", Ti.truncated_tree p2 ~keep_depth:3);
    ]

let test_verifier_is_genuinely_oblivious () =
  (* By construction it never reads ids; check the lifted version
     shows no variance. *)
  let rng = rng () in
  let lifted = Locald_local.Algorithm.of_oblivious verifier in
  check bool "no id variance" true
    (Oblivious.find_variance_sampled ~rng ~trials:20 ~regime lifted
       (Ti.small_instance p2 ~apex:(0, 1))
    = None)

(* ------------------------------------------------------------------ *)
(* The P decider (LD)                                                  *)
(* ------------------------------------------------------------------ *)

let test_p_decider_exhaustively_on_tiny () =
  (* r = 0: the small instances are a single tree node plus a pivot.
     Exhaust every bounded assignment. *)
  let p0 = { p2 with Ti.r = 0 } in
  let decider = Td.p_decider p0 in
  let rr = Ti.depth p0 in
  List.iter
    (fun apex ->
      let h = Ti.small_instance p0 ~apex in
      let e =
        Decider.evaluate_exhaustive ~bound:rr decider ~expected:true
          ~instance:"H+" h
      in
      check bool "exhaustively correct on H+" true (Decider.all_correct e))
    (List.filteri (fun i _ -> i mod 3 = 0) (Ti.apexes p0))

let test_p_decider_random () =
  let rng = rng () in
  let decider = Td.p_decider p2 in
  let eval expected lg =
    Decider.all_correct
      (Decider.evaluate ~rng ~regime ~assignments:40 decider ~expected ~instance:"" lg)
  in
  check bool "rejects T_r under every sampled assignment" true
    (eval false (Ti.big_tree p2));
  check bool "accepts H+ under every sampled assignment" true
    (eval true (Ti.small_instance p2 ~apex:(2, 2)));
  check bool "rejects counterfeits" true
    (eval false (Ti.two_pivots p2 ~apex:(0, 1)))

(* ------------------------------------------------------------------ *)
(* Coverage and the budgeted A*                                        *)
(* ------------------------------------------------------------------ *)

let test_coverage_full_when_predicted () =
  (* Full coverage holds whenever r >= 2t: a border node's pivot edge
     is invisible until the pivot itself enters the ball. *)
  let c = Td.coverage p2 ~t:0 in
  check int "arity 2, t=0 full" c.Td.total_views c.Td.covered;
  let p1 = { Ti.regime; arity = 1; r = 2 } in
  let c = Td.coverage p1 ~t:1 in
  check int "arity 1, r=2t exactly, t=1 full" c.Td.total_views c.Td.covered;
  let p1 = { Ti.regime; arity = 1; r = 4 } in
  let c = Td.coverage p1 ~t:2 in
  check int "arity 1, r=2t exactly, t=2 full" c.Td.total_views c.Td.covered;
  let p1 = { Ti.regime; arity = 1; r = 6 } in
  let c = Td.coverage p1 ~t:2 in
  check int "arity 1, r=6, t=2 full" c.Td.total_views c.Td.covered

let test_coverage_gaps_when_r_small () =
  let p1 = { Ti.regime; arity = 1; r = 1 } in
  let c = Td.coverage p1 ~t:1 in
  check bool "gaps for r < 2t (r=1, t=1)" true (c.Td.covered < c.Td.total_views);
  check bool "witness node reported" true (c.Td.uncovered_node <> None);
  let p1 = { Ti.regime; arity = 1; r = 3 } in
  let c = Td.coverage p1 ~t:2 in
  check bool "gaps for r < 2t (r=3, t=2)" true (c.Td.covered < c.Td.total_views)

let test_budgeted_a_star_two_failures () =
  let rr = Ti.depth p2 in
  (match Td.budgeted_a_star p2 ~budget:(2 * rr) ~trials:64 with
  | Td.Rejects_small _ -> ()
  | Td.Accepts_large | Td.No_failure_found ->
      Alcotest.fail "big budget should reject a small instance");
  match Td.budgeted_a_star p2 ~budget:rr ~trials:64 with
  | Td.Accepts_large -> ()
  | Td.Rejects_small _ | Td.No_failure_found ->
      Alcotest.fail "small budget should accept T_r"

(* ------------------------------------------------------------------ *)
(* Cross-layer integration                                             *)
(* ------------------------------------------------------------------ *)

let test_decider_through_message_passing () =
  (* The Section 2 decider run through the real gossip engine agrees
     with direct view evaluation — the construction is an honest local
     algorithm. *)
  let rng = rng () in
  let decider = Td.p_decider p2 in
  List.iter
    (fun lg ->
      let ids = Ids.sample rng regime ~n:(Labelled.order lg) in
      check bool "engines agree on the separation instance" true
        (Locald_local.Runner.run decider lg ~ids
        = Locald_local.Runner.run_message_passing decider lg ~ids))
    [ Ti.small_instance p2 ~apex:(1, 1); Ti.cone_without_pivot p2 ~apex:(1, 1) ]

let test_p_decider_id_dependence_certified () =
  (* Exhaustively: the decider's outputs genuinely depend on the
     identifier assignment (Theorem 1 needs them to). r = 0 keeps the
     instance tiny; the witness flips a node across the R(r)
     threshold. *)
  let p0 = { Ti.regime; arity = 1; r = 0 } in
  let tr = Ti.big_tree p0 in
  let decider = Td.p_decider p0 in
  check bool "instance small enough to exhaust" true (Labelled.order tr <= 6);
  check bool "id dependence witnessed exhaustively" true
    (Option.is_some
       (Oblivious.find_variance_exhaustive
          ~bound:(Ti.depth p0 + 2)
          decider tr))

let test_cycle_promise_under_oracle_regime () =
  let rng = rng () in
  let oracle = Ids.f_oracle ~seed:11 in
  let r = 6 in
  let decider = Cycle_promise.ld_decider ~regime:oracle in
  let eval expected lg =
    Decider.all_correct
      (Decider.evaluate ~rng ~regime:oracle ~assignments:40 decider ~expected
         ~instance:"" lg)
  in
  check bool "oracle-f decider correct" true
    (eval true (Cycle_promise.yes_instance ~r)
    && eval false (Cycle_promise.no_instance ~regime:oracle ~r))

(* ------------------------------------------------------------------ *)
(* The cycle warm-up                                                   *)
(* ------------------------------------------------------------------ *)

let test_cycle_promise () =
  let rng = rng () in
  let r = 5 in
  let decider = Cycle_promise.ld_decider ~regime in
  let yes = Cycle_promise.yes_instance ~r in
  let no = Cycle_promise.no_instance ~regime ~r in
  let prom = Cycle_promise.promise ~regime in
  check bool "yes in promise" true (prom.Promise.promise yes);
  check bool "no in promise" true (prom.Promise.promise no);
  check bool "membership" true (prom.Promise.mem yes && not (prom.Promise.mem no));
  let eval expected lg =
    Decider.all_correct
      (Decider.evaluate ~rng ~regime ~assignments:60 decider ~expected ~instance:"" lg)
  in
  check bool "decider correct" true (eval true yes && eval false no);
  check bool "views covered at t=1" true
    (Cycle_promise.views_mutually_covered ~regime ~r ~t:1);
  check bool "views distinguishable at huge t" false
    (Cycle_promise.views_mutually_covered ~regime ~r ~t:r)

let () =
  Alcotest.run "tree-separation"
    [
      ("bounds", [ Alcotest.test_case "R(r) and pigeonhole" `Quick test_bounds ]);
      ( "classification",
        [
          Alcotest.test_case "T_r is Large" `Quick test_classify_large;
          Alcotest.test_case "every H+ is Small" `Quick test_classify_all_smalls;
          Alcotest.test_case "counterfeits are Neither" `Quick test_classify_counterfeits;
          Alcotest.test_case "membership predicates" `Quick test_membership_predicates;
          Alcotest.test_case "membership iso-invariant" `Quick test_membership_iso_invariant;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "accepts P'" `Quick test_verifier_accepts;
          Alcotest.test_case "rejects counterfeits" `Quick test_verifier_rejects_counterfeits;
          Alcotest.test_case "oblivious" `Quick test_verifier_is_genuinely_oblivious;
        ] );
      ( "decider",
        [
          Alcotest.test_case "exhaustive on tiny instances" `Quick
            test_p_decider_exhaustively_on_tiny;
          Alcotest.test_case "random assignments" `Quick test_p_decider_random;
        ] );
      ( "impossibility",
        [
          Alcotest.test_case "coverage full when predicted" `Quick
            test_coverage_full_when_predicted;
          Alcotest.test_case "coverage gaps when r < 2t+2" `Quick
            test_coverage_gaps_when_r_small;
          Alcotest.test_case "budgeted A* fails both ways" `Quick
            test_budgeted_a_star_two_failures;
        ] );
      ( "integration",
        [
          Alcotest.test_case "decider through the gossip engine" `Quick
            test_decider_through_message_passing;
          Alcotest.test_case "id dependence certified" `Quick
            test_p_decider_id_dependence_certified;
          Alcotest.test_case "oracle regime" `Quick
            test_cycle_promise_under_oracle_regime;
        ] );
      ("warm-up", [ Alcotest.test_case "cycle promise" `Quick test_cycle_promise ]);
    ]
