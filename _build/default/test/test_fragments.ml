(* Tests for the fragment collection C(M, r): enumeration
   completeness, natural borders, the Border property and the
   connectivity fix. *)

open Locald_turing

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let walk2 = Zoo.walk ~steps:2 ~output:0
let zig = Zoo.zigzag ~half:2 ~output:1

let table_of m =
  match Table.of_machine ~fuel:100 m with
  | Ok t -> Table.pad_to_power_of_two t
  | Error _ -> Alcotest.fail "machine should halt"

(* ------------------------------------------------------------------ *)
(* Consistency and windows                                             *)
(* ------------------------------------------------------------------ *)

let test_windows_are_consistent () =
  List.iter
    (fun m ->
      let t = table_of m in
      let windows = Fragment.of_windows m t ~w:3 ~h:3 in
      check bool "some windows" true (windows <> []);
      List.iter
        (fun f ->
          check bool "window consistent" true (Fragment.is_consistent m f))
        windows)
    [ walk2; zig; Zoo.binary_counter ~bits:2 ]

let test_enumerate_small () =
  let e = Fragment.enumerate walk2 ~w:2 ~h:2 ~cap:100_000 in
  check bool "not truncated" false e.Fragment.truncated;
  check bool "non-empty" true (e.Fragment.fragments <> []);
  List.iter
    (fun f -> check bool "enumerated fragment consistent" true (Fragment.is_consistent walk2 f))
    e.Fragment.fragments

let test_enumerate_covers_windows () =
  (* Every single-head window of the real table occurs in the full
     syntactic enumeration (start-state windows excluded by design —
     they certify the pivot). *)
  List.iter
    (fun m ->
      let t = table_of m in
      let e = Fragment.enumerate ~include_start_state:true m ~w:3 ~h:3 ~cap:1_000_000 in
      check bool "enumeration complete" false e.Fragment.truncated;
      let windows = Fragment.of_windows m t ~w:3 ~h:3 in
      List.iter
        (fun w ->
          check bool "window found in enumeration" true
            (List.exists (Fragment.equal w) e.Fragment.fragments))
        windows)
    [ walk2; zig ]

let test_enumerate_excludes_start_state_by_default () =
  let e = Fragment.enumerate walk2 ~w:2 ~h:2 ~cap:1_000_000 in
  List.iter
    (fun f ->
      check bool "no start-state head" false (Fragment.contains_start_state f))
    e.Fragment.fragments

let test_cap_truncates () =
  let e = Fragment.enumerate zig ~w:3 ~h:3 ~cap:10 in
  check bool "truncated flag" true e.Fragment.truncated;
  check bool "capped count" true (List.length e.Fragment.fragments <= 3 * 10)

(* ------------------------------------------------------------------ *)
(* Fake halts                                                          *)
(* ------------------------------------------------------------------ *)

let test_fake_halts () =
  let fakes = Fragment.fake_halts walk2 ~w:3 ~h:3 in
  check bool "non-empty" true (fakes <> []);
  let shows o f =
    Array.exists
      (Array.exists (fun (c : Cell.t) -> c.Cell.head = Cell.Halted o))
      f.Fragment.cells
  in
  check bool "output-0 window present" true (List.exists (shows 0) fakes);
  check bool "output-1 window present" true (List.exists (shows 1) fakes);
  List.iter
    (fun f -> check bool "fake consistent" true (Fragment.is_consistent walk2 f))
    fakes

(* ------------------------------------------------------------------ *)
(* Natural borders                                                     *)
(* ------------------------------------------------------------------ *)

let all_blank w h = Array.make_matrix h w Cell.blank

let test_natural_sides_blank () =
  (* A blank fragment: everything except the top is natural. *)
  let f = { Fragment.cells = all_blank 3 3; forced = [] } in
  let naturals = Fragment.natural_sides walk2 f in
  check bool "left natural" true (List.mem Fragment.Left naturals);
  check bool "right natural" true (List.mem Fragment.Right naturals);
  check bool "bottom natural" true (List.mem Fragment.Bottom naturals);
  check bool "top never natural" false (List.mem Fragment.Top naturals);
  (* Non-natural border = the top row only. *)
  check
    (Alcotest.list (Alcotest.pair int int))
    "non-natural cells" [ (0, 0); (0, 1); (0, 2) ]
    (Fragment.non_natural_cells walk2 f)

let test_live_bottom_not_natural () =
  let cells = all_blank 3 3 in
  cells.(2).(1) <- { Cell.sym = 0; head = Cell.Head 1 };
  let f = { Fragment.cells; forced = [] } in
  check bool "bottom not natural" false
    (List.mem Fragment.Bottom (Fragment.natural_sides walk2 f))

let test_connectivity_fix () =
  (* Live head in the bottom row of an otherwise blank fragment: the
     non-natural borders are exactly top and bottom — disconnected —
     so the fix emits two side-forced variants. *)
  let cells = all_blank 3 3 in
  cells.(2).(1) <- { Cell.sym = 0; head = Cell.Head 1 };
  let f = { Fragment.cells; forced = [] } in
  check bool "borders disconnected" false (Fragment.border_connected walk2 f);
  let fixed = Fragment.connectivity_fix walk2 f in
  check int "two variants" 2 (List.length fixed);
  List.iter
    (fun f' ->
      check bool "variant connected" true (Fragment.border_connected walk2 f'))
    fixed

let test_forced_sides_count_as_non_natural () =
  let f = { Fragment.cells = all_blank 3 3; forced = [ Fragment.Left ] } in
  check bool "forced left not natural" false
    (List.mem Fragment.Left (Fragment.natural_sides walk2 f));
  check bool "left column glued" true
    (List.mem (1, 0) (Fragment.non_natural_cells walk2 f))

let test_multi_head_enumeration () =
  (* Two heads far apart are locally consistent and enumerable. *)
  let e = Fragment.enumerate ~max_heads_per_row:2 walk2 ~w:4 ~h:2 ~cap:200_000 in
  let has_two_heads f =
    Array.exists
      (fun row ->
        Array.to_list row
        |> List.filter (fun (c : Cell.t) -> Cell.has_any_head c)
        |> List.length >= 2)
      f.Fragment.cells
  in
  check bool "multi-head fragments exist" true
    (List.exists has_two_heads e.Fragment.fragments);
  List.iter
    (fun f -> check bool "still consistent" true (Fragment.is_consistent walk2 f))
    e.Fragment.fragments

let test_reconstruct_rejects_inconsistency () =
  (* A forged left column that the rules cannot explain. *)
  let top = [| Cell.blank; Cell.blank; Cell.blank |] in
  let forged_left =
    [| Cell.blank; { Cell.sym = 1; head = Cell.No_head }; Cell.blank |]
  in
  check bool "inconsistent borders rejected" true
    (Rules.reconstruct walk2 ~top ~left:(Some forged_left) ~right:None ~height:3
    = None)

(* ------------------------------------------------------------------ *)
(* The Border property                                                 *)
(* ------------------------------------------------------------------ *)

let test_border_property () =
  (* Reconstruction from the non-natural borders is exact, for every
     enumerated fragment of a machine with both movers. *)
  let e = Fragment.enumerate zig ~w:3 ~h:3 ~cap:4000 in
  check bool "have fragments" true (List.length e.Fragment.fragments > 50);
  List.iter
    (fun f ->
      check bool "reconstructible" true (Fragment.reconstructible zig f))
    e.Fragment.fragments

let test_border_property_windows () =
  List.iter
    (fun m ->
      let t = table_of m in
      List.iter
        (fun f -> check bool "window reconstructible" true (Fragment.reconstructible m f))
        (Fragment.of_windows m t ~w:4 ~h:4))
    [ walk2; zig ]

(* ------------------------------------------------------------------ *)
(* qcheck: enumerated fragments survive a round trip                   *)
(* ------------------------------------------------------------------ *)

let fragments_of_zig = lazy (Fragment.enumerate zig ~w:3 ~h:3 ~cap:2000).Fragment.fragments

let prop_consistent_and_connected =
  QCheck2.Test.make ~name:"enumerated fragments: consistent, connected borders"
    ~count:100
    QCheck2.Gen.(int_bound 10_000)
    (fun i ->
      let fragments = Lazy.force fragments_of_zig in
      let f = List.nth fragments (i mod List.length fragments) in
      Fragment.is_consistent zig f && Fragment.border_connected zig f)

let () =
  Alcotest.run "fragments"
    [
      ( "consistency",
        [
          Alcotest.test_case "real windows consistent" `Quick test_windows_are_consistent;
          Alcotest.test_case "small enumeration" `Quick test_enumerate_small;
          Alcotest.test_case "enumeration covers real windows" `Quick
            test_enumerate_covers_windows;
          Alcotest.test_case "start state excluded" `Quick
            test_enumerate_excludes_start_state_by_default;
          Alcotest.test_case "cap truncates" `Quick test_cap_truncates;
          Alcotest.test_case "fake halts" `Quick test_fake_halts;
          Alcotest.test_case "multiple heads" `Quick test_multi_head_enumeration;
          Alcotest.test_case "reconstruct rejects forgery" `Quick
            test_reconstruct_rejects_inconsistency;
        ] );
      ( "borders",
        [
          Alcotest.test_case "blank fragment" `Quick test_natural_sides_blank;
          Alcotest.test_case "live bottom" `Quick test_live_bottom_not_natural;
          Alcotest.test_case "connectivity fix" `Quick test_connectivity_fix;
          Alcotest.test_case "forced sides" `Quick test_forced_sides_count_as_non_natural;
          Alcotest.test_case "Border property (enumerated)" `Quick test_border_property;
          Alcotest.test_case "Border property (windows)" `Quick test_border_property_windows;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_consistent_and_connected ] );
    ]
