(* Tests for graph / labelled / rooted-view isomorphism. *)

open Locald_graph

let check = Alcotest.check
let bool = Alcotest.bool

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let random_perm rng n = shuffle rng (Array.init n Fun.id)

(* ------------------------------------------------------------------ *)
(* Graph isomorphism                                                   *)
(* ------------------------------------------------------------------ *)

let test_iso_reflexive () =
  List.iter
    (fun g -> check bool "g ~ g" true (Iso.graphs_isomorphic g g))
    [ Gen.cycle 7; Gen.grid 3 4; Gen.complete_binary_tree 3 ]

let test_iso_relabelled () =
  let rng = Random.State.make [| 1 |] in
  List.iter
    (fun g ->
      let h = Graph.relabel g (random_perm rng (Graph.order g)) in
      check bool "g ~ relabel g" true (Iso.graphs_isomorphic g h);
      match Iso.find_graph_isomorphism g h with
      | None -> Alcotest.fail "no mapping returned"
      | Some p ->
          List.iter
            (fun (u, v) ->
              check bool "mapping preserves edges" true
                (Graph.mem_edge h p.(u) p.(v)))
            (Graph.edges g))
    [ Gen.cycle 8; Gen.grid 3 3; Gen.star 6; Gen.complete_binary_tree 3 ]

let test_iso_negative () =
  check bool "path vs cycle" false
    (Iso.graphs_isomorphic (Gen.path 6) (Gen.cycle 6));
  check bool "different sizes" false
    (Iso.graphs_isomorphic (Gen.cycle 6) (Gen.cycle 7));
  (* Same degree sequence, different structure: two triangles vs C6. *)
  let two_triangles = Graph.disjoint_union (Gen.cycle 3) (Gen.cycle 3) in
  check bool "2xC3 vs C6" false (Iso.graphs_isomorphic two_triangles (Gen.cycle 6));
  check bool "4x4 grid vs 4x4 torus" false
    (Iso.graphs_isomorphic (Gen.grid 4 4) (Gen.torus 4 4))

let test_refine_colors_invariant () =
  (* Colour refinement distinguishes a path's endpoints from its
     middle. *)
  let g = Gen.path 5 in
  let colors = Iso.refine_colors g (Array.make 5 0) in
  check bool "endpoints share colour" true (colors.(0) = colors.(4));
  check bool "middle differs from ends" true (colors.(0) <> colors.(2))

(* ------------------------------------------------------------------ *)
(* Labelled isomorphism                                                *)
(* ------------------------------------------------------------------ *)

let test_labelled_iso () =
  let lg = Labelled.init (Gen.cycle 6) (fun v -> v mod 2) in
  let rng = Random.State.make [| 2 |] in
  let perm = random_perm rng 6 in
  let lh = Labelled.relabel_nodes lg perm in
  check bool "labelled iso after relabel" true
    (Iso.labelled_isomorphic ( = ) lg lh);
  let bad = Labelled.mapi (fun v x -> if v = 0 then 1 - x else x) lg in
  check bool "label flip breaks iso" false (Iso.labelled_isomorphic ( = ) lg bad)

let test_labelled_iso_respects_labels () =
  (* Same graph, same label multiset, different label placement. *)
  let g = Gen.path 4 in
  let a = Labelled.make g [| 0; 1; 0; 1 |] in
  let b = Labelled.make g [| 0; 1; 1; 0 |] in
  check bool "placement matters" false (Iso.labelled_isomorphic ( = ) a b);
  (* But the reversal of a path is an isomorphism. *)
  let c = Labelled.make g [| 1; 0; 1; 0 |] in
  check bool "reversal works" true (Iso.labelled_isomorphic ( = ) a c)

(* ------------------------------------------------------------------ *)
(* Rooted views                                                        *)
(* ------------------------------------------------------------------ *)

let test_views_rooted () =
  let lg = Labelled.const (Gen.path 5) () in
  let end_view = View.extract lg ~center:0 ~radius:1 in
  let mid_view = View.extract lg ~center:2 ~radius:1 in
  let other_end = View.extract lg ~center:4 ~radius:1 in
  check bool "two ends isomorphic" true
    (Iso.views_isomorphic ( = ) end_view other_end);
  check bool "end vs middle differ (rooting!)" false
    (Iso.views_isomorphic ( = ) end_view mid_view)

let test_views_ignore_ids () =
  let lg = Labelled.const (Gen.cycle 5) 7 in
  let va = View.extract ~ids:[| 10; 20; 30; 40; 50 |] lg ~center:0 ~radius:1 in
  let vb = View.extract ~ids:[| 5; 4; 3; 2; 1 |] lg ~center:0 ~radius:1 in
  check bool "ids are ignored by view isomorphism" true
    (Iso.views_isomorphic ( = ) va vb)

let test_view_signature_invariance () =
  let rng = Random.State.make [| 3 |] in
  let lg = Labelled.init (Gen.grid 3 4) (fun v -> v mod 3) in
  for v = 0 to Labelled.order lg - 1 do
    let perm = random_perm rng (Labelled.order lg) in
    let lh = Labelled.relabel_nodes lg perm in
    let view_g = View.extract lg ~center:v ~radius:2 in
    let view_h = View.extract lh ~center:perm.(v) ~radius:2 in
    check Alcotest.int "signature invariant under relabelling"
      (Iso.view_signature Hashtbl.hash view_g)
      (Iso.view_signature Hashtbl.hash view_h)
  done

(* ------------------------------------------------------------------ *)
(* qcheck properties                                                   *)
(* ------------------------------------------------------------------ *)

let arbitrary_labelled =
  QCheck2.Gen.(
    let* n = int_range 3 16 in
    let* seed = int_bound 1_000_000 in
    let rng = Random.State.make [| seed |] in
    let g = Gen.random_connected rng ~n ~p:0.2 in
    let labels = Array.init n (fun _ -> Random.State.int rng 3) in
    return (Labelled.make g labels, seed))

let prop_relabel_iso =
  QCheck2.Test.make ~name:"random relabelling preserves labelled iso" ~count:50
    arbitrary_labelled (fun (lg, seed) ->
      let rng = Random.State.make [| seed + 1 |] in
      let perm = random_perm rng (Labelled.order lg) in
      Iso.labelled_isomorphic ( = ) lg (Labelled.relabel_nodes lg perm))

let prop_views_iso_symmetric =
  QCheck2.Test.make ~name:"view iso is symmetric" ~count:40 arbitrary_labelled
    (fun (lg, _) ->
      let va = View.extract lg ~center:0 ~radius:2 in
      let vb = View.extract lg ~center:(Labelled.order lg - 1) ~radius:2 in
      Iso.views_isomorphic ( = ) va vb = Iso.views_isomorphic ( = ) vb va)

let prop_signature_respects_iso =
  QCheck2.Test.make ~name:"isomorphic views share a signature" ~count:40
    arbitrary_labelled (fun (lg, seed) ->
      let rng = Random.State.make [| seed + 2 |] in
      let perm = random_perm rng (Labelled.order lg) in
      let lh = Labelled.relabel_nodes lg perm in
      let v = Random.State.int rng (Labelled.order lg) in
      Iso.view_signature Hashtbl.hash (View.extract lg ~center:v ~radius:1)
      = Iso.view_signature Hashtbl.hash
          (View.extract lh ~center:perm.(v) ~radius:1))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_relabel_iso; prop_views_iso_symmetric; prop_signature_respects_iso ]

let () =
  Alcotest.run "iso"
    [
      ( "graphs",
        [
          Alcotest.test_case "reflexive" `Quick test_iso_reflexive;
          Alcotest.test_case "relabelled" `Quick test_iso_relabelled;
          Alcotest.test_case "negative cases" `Quick test_iso_negative;
          Alcotest.test_case "colour refinement" `Quick test_refine_colors_invariant;
        ] );
      ( "labelled",
        [
          Alcotest.test_case "relabelled labelled graphs" `Quick test_labelled_iso;
          Alcotest.test_case "labels constrain the mapping" `Quick
            test_labelled_iso_respects_labels;
        ] );
      ( "views",
        [
          Alcotest.test_case "rooting matters" `Quick test_views_rooted;
          Alcotest.test_case "ids ignored" `Quick test_views_ignore_ids;
          Alcotest.test_case "signature invariance" `Quick test_view_signature_invariance;
        ] );
      ("properties", qcheck_cases);
    ]
