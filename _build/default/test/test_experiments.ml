(* End-to-end tests: the experiment drivers must regenerate the
   paper's results table and figures (in quick mode). *)

open Locald_core

let check = Alcotest.check
let bool = Alcotest.bool

let test_table1 () =
  let rows = Experiments.table1 ~quick:true () in
  check Alcotest.int "four cells" 4 (List.length rows);
  List.iter
    (fun (c : Experiments.cell_result) ->
      List.iter
        (fun (name, ok) ->
          check bool (Printf.sprintf "%s: %s" c.cell name) true ok)
        c.evidence)
    rows;
  (* The relations match the paper's table. *)
  let rel cell =
    (List.find (fun c -> c.Experiments.cell = cell) rows).Experiments.relation
  in
  check Alcotest.string "(B,C)" "LD* <> LD" (rel "(B, C)");
  check Alcotest.string "(B,notC)" "LD* <> LD" (rel "(B, notC)");
  check Alcotest.string "(notB,C)" "LD* <> LD" (rel "(notB, C)");
  check Alcotest.string "(notB,notC)" "LD* = LD" (rel "(notB, notC)")

let test_fig1 () =
  let rows = Experiments.fig1 ~quick:true () in
  check bool "has rows" true (rows <> []);
  List.iter
    (fun (x : Experiments.fig1_row) ->
      let full = x.covered = x.total in
      check bool
        (Printf.sprintf "arity=%d r=%d t=%d coverage matches prediction" x.arity
           x.r x.t)
        x.expected_full full)
    rows

let test_fig2 () =
  let rows = Experiments.fig2 ~quick:true () in
  check bool "has rows" true (rows <> []);
  List.iter
    (fun (x : Experiments.fig2_row) ->
      check bool (x.machine ^ " rules pass") true x.rules_ok;
      check bool (x.machine ^ " has fake windows") true (x.fake_windows > 0);
      check bool (x.machine ^ " node count sane") true (x.nodes > x.table_side * x.table_side))
    rows

let test_fig3 () =
  let rows = Experiments.fig3 ~quick:true () in
  List.iter
    (fun (x : Experiments.fig3_row) ->
      check bool "genuine pyramid passes" true x.genuine_ok;
      check bool "torus rejected" true x.torus_rejected;
      check bool "overhead < 2" true (x.pyramid_overhead < 2.0);
      check bool "pyramid shortens the diameter for big grids" true
        (x.h <= 1 || x.pyramid_diameter <= x.grid_diameter))
    rows

let test_corollary1 () =
  let rows = Experiments.corollary1 ~quick:true () in
  List.iter
    (fun (x : Experiments.corollary1_row) ->
      check bool
        (Printf.sprintf "%s success rate high" x.machine)
        true (x.success >= 0.9))
    rows

let test_p3 () =
  let rows = Experiments.p3 ~quick:true () in
  check bool "has rows" true (rows <> []);
  List.iter
    (fun (x : Experiments.p3_row) ->
      if x.halts_in_window then begin
        check Alcotest.int (x.machine ^ ": B covers G") x.g_classes x.g_covered_by_b;
        check Alcotest.int (x.machine ^ ": G covers B") x.b_classes x.b_covered_by_g
      end)
    rows

let test_fuel_diagonal () =
  let rows = Experiments.fuel_diagonal ~quick:true () in
  check bool "has rows" true (rows <> []);
  List.iter
    (fun (x : Experiments.diagonal_row) ->
      check bool (Printf.sprintf "fuel %d fooled" x.fuel) true x.fooled;
      check bool (Printf.sprintf "fuel %d honest within fuel" x.fuel) true
        x.honest_on_fast)
    rows

let test_construction () =
  List.iter
    (fun (x : Experiments.construction_row) ->
      check bool (Printf.sprintf "%s n=%d" x.task x.n) true x.ok)
    (Experiments.construction ~quick:true ())

let test_order_invariance () =
  List.iter
    (fun (x : Experiments.oi_row) -> check bool x.check true x.ok)
    (Experiments.order_invariance ~quick:true ())

let test_hereditary () =
  List.iter
    (fun (x : Experiments.hereditary_row) ->
      check bool
        (x.property_name ^ " on " ^ x.instance)
        x.expected_hereditary x.hereditary_looking)
    (Experiments.hereditary ~quick:true ())

let test_warmups () =
  let rows = Experiments.warmups ~quick:true () in
  check bool "has rows" true (rows <> []);
  List.iter
    (fun (x : Experiments.warmup_row) ->
      check bool (x.problem ^ " / " ^ x.setting ^ ": " ^ x.check) true x.ok)
    rows

let test_report_printers () =
  (* The renderers must handle every row shape without raising. *)
  Report.print_table1 (Experiments.table1 ~quick:true ());
  Report.print_fig1 (Experiments.fig1 ~quick:true ());
  Report.print_fig2 (Experiments.fig2 ~quick:true ());
  Report.print_fig3 (Experiments.fig3 ~quick:true ());
  Report.print_corollary1 (Experiments.corollary1 ~quick:true ());
  Report.print_p3 (Experiments.p3 ~quick:true ());
  Report.print_fuel_diagonal (Experiments.fuel_diagonal ~quick:true ());
  Report.print_warmups (Experiments.warmups ~quick:true ());
  (* Empty inputs too. *)
  Report.print_table1 [];
  Report.print_fig1 [];
  Report.print_fig2 [];
  Report.print_fig3 [];
  Report.print_corollary1 [];
  Report.print_p3 [];
  Report.print_fuel_diagonal [];
  Report.print_warmups [];
  check bool "printers total" true true

let () =
  Alcotest.run "experiments"
    [
      ( "paper-artefacts",
        [
          Alcotest.test_case "T1 results table" `Slow test_table1;
          Alcotest.test_case "F1 coverage" `Slow test_fig1;
          Alcotest.test_case "F2 construction" `Slow test_fig2;
          Alcotest.test_case "F3 pyramid" `Quick test_fig3;
          Alcotest.test_case "C1 randomised decider" `Slow test_corollary1;
          Alcotest.test_case "P3 generator coverage" `Slow test_p3;
          Alcotest.test_case "D fuel diagonalisation" `Slow test_fuel_diagonal;
          Alcotest.test_case "H hereditariness" `Slow test_hereditary;
          Alcotest.test_case "OI order invariance" `Slow test_order_invariance;
          Alcotest.test_case "K construction" `Slow test_construction;
          Alcotest.test_case "W2/W3 warm-ups" `Slow test_warmups;
          Alcotest.test_case "report printers" `Slow test_report_printers;
        ] );
    ]
