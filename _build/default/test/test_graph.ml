(* Unit and property tests for the graph substrate. *)

open Locald_graph

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* A deterministic rng for generator tests. *)
let rng () = Random.State.make [| 0xbeef |]

(* ------------------------------------------------------------------ *)
(* Construction and accessors                                          *)
(* ------------------------------------------------------------------ *)

let test_of_edges_basic () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (1, 0) ] in
  check int "order" 4 (Graph.order g);
  check int "size (duplicate edge merged)" 3 (Graph.size g);
  check bool "mem 0-1" true (Graph.mem_edge g 0 1);
  check bool "mem 1-0 (symmetric)" true (Graph.mem_edge g 1 0);
  check bool "no 0-2" false (Graph.mem_edge g 0 2);
  check int "degree 1" 2 (Graph.degree g 1)

let test_of_edges_rejects_self_loop () =
  Alcotest.check_raises "self-loop" (Graph.Invalid_graph "self-loop at vertex 2")
    (fun () -> ignore (Graph.of_edges ~n:3 [ (2, 2) ]))

let test_of_edges_rejects_out_of_range () =
  let raised =
    try
      ignore (Graph.of_edges ~n:3 [ (0, 5) ]);
      false
    with Graph.Invalid_graph _ -> true
  in
  check bool "out of range rejected" true raised

let test_of_adjacency_symmetrises () =
  (* A one-sided adjacency list is symmetrised on input. *)
  let g = Graph.of_adjacency [| [| 1 |]; [||]; [| 1 |] |] in
  check bool "0-1" true (Graph.mem_edge g 0 1);
  check bool "1-2" true (Graph.mem_edge g 1 2);
  check int "m" 2 (Graph.size g)

let test_empty () =
  let g = Graph.empty 5 in
  check int "order" 5 (Graph.order g);
  check int "size" 0 (Graph.size g);
  check bool "connected (no)" false (Graph.is_connected g);
  check bool "empty graph on 0 is connected" true (Graph.is_connected (Graph.empty 0))

let test_edges_sorted () =
  let g = Graph.of_edges ~n:4 [ (3, 2); (1, 0); (2, 0) ] in
  check (Alcotest.list (Alcotest.pair int int)) "edges normalised"
    [ (0, 1); (0, 2); (2, 3) ] (Graph.edges g)

(* ------------------------------------------------------------------ *)
(* Distances and balls                                                 *)
(* ------------------------------------------------------------------ *)

let test_bfs_on_path () =
  let g = Gen.path 5 in
  let d = Graph.bfs_distances g 0 in
  check (Alcotest.array int) "distances" [| 0; 1; 2; 3; 4 |] d;
  check int "dist" 3 (Graph.dist g 1 4);
  check int "eccentricity of middle" 2 (Graph.eccentricity g 2);
  check int "diameter" 4 (Graph.diameter g)

let test_ball_matches_bfs () =
  (* On every generated graph, [ball g v t] = vertices at bfs distance
     <= t. *)
  let cases =
    [ Gen.cycle 9; Gen.grid 4 5; Gen.complete_binary_tree 3; Gen.star 7 ]
  in
  List.iter
    (fun g ->
      let n = Graph.order g in
      for v = 0 to n - 1 do
        for t = 0 to 3 do
          let d = Graph.bfs_distances g v in
          let expected =
            List.filter (fun u -> d.(u) <= t) (Graph.vertices g)
          in
          check (Alcotest.list int)
            (Printf.sprintf "ball v=%d t=%d" v t)
            expected
            (Array.to_list (Graph.ball g v t))
        done
      done)
    cases

let test_disconnected_distances () =
  let g = Graph.of_edges ~n:4 [ (0, 1) ] in
  check int "unreachable" max_int (Graph.dist g 0 3);
  check int "components" 3 (List.length (Graph.components g));
  let raised = try ignore (Graph.diameter g); false with Graph.Invalid_graph _ -> true in
  check bool "diameter raises when disconnected" true raised

(* ------------------------------------------------------------------ *)
(* Transformations                                                     *)
(* ------------------------------------------------------------------ *)

let test_induced () =
  let g = Gen.cycle 6 in
  let h, back = Graph.induced g [| 5; 0; 1 |] in
  check (Alcotest.array int) "back map sorted" [| 0; 1; 5 |] back;
  check int "order" 3 (Graph.order h);
  (* Edges 0-1 and 0-5 survive; 1-5 is not an edge of the cycle. *)
  check int "size" 2 (Graph.size h);
  check bool "0-1 present" true (Graph.mem_edge h 0 1)

let test_induced_rejects_duplicates () =
  let g = Gen.cycle 4 in
  let raised =
    try ignore (Graph.induced g [| 0; 0 |]); false
    with Graph.Invalid_graph _ -> true
  in
  check bool "duplicates rejected" true raised

let test_disjoint_union () =
  let g = Graph.disjoint_union (Gen.path 2) (Gen.cycle 3) in
  check int "order" 5 (Graph.order g);
  check int "size" 4 (Graph.size g);
  check bool "shifted edge" true (Graph.mem_edge g 2 3);
  check bool "no cross edge" false (Graph.mem_edge g 1 2)

let test_relabel_preserves_structure () =
  let g = Gen.grid 3 3 in
  let perm = [| 4; 2; 7; 0; 8; 1; 3; 6; 5 |] in
  let h = Graph.relabel g perm in
  check int "size preserved" (Graph.size g) (Graph.size h);
  List.iter
    (fun (u, v) ->
      check bool "edge image present" true (Graph.mem_edge h perm.(u) perm.(v)))
    (Graph.edges g)

let test_add_vertices_edges () =
  let g = Graph.add_vertices (Gen.path 3) 2 in
  check int "order" 5 (Graph.order g);
  let g = Graph.add_edges g [ (3, 4); (2, 3) ] in
  check bool "new edge" true (Graph.mem_edge g 3 4);
  check int "size" 4 (Graph.size g)

(* ------------------------------------------------------------------ *)
(* Predicates and generators                                           *)
(* ------------------------------------------------------------------ *)

let test_shape_predicates () =
  check bool "cycle is cycle" true (Graph.is_cycle (Gen.cycle 5));
  check bool "path is not cycle" false (Graph.is_cycle (Gen.path 5));
  check bool "path is path" true (Graph.is_path_graph (Gen.path 5));
  check bool "cycle is not path" false (Graph.is_path_graph (Gen.cycle 5));
  check bool "matching is 1-regular" true (Graph.is_regular (Gen.matching 3) 1);
  check bool "cycle is 2-regular" true (Graph.is_regular (Gen.cycle 7) 2)

let test_generators_shapes () =
  check int "complete size" 10 (Graph.size (Gen.complete 5));
  let t = Gen.complete_binary_tree 3 in
  check int "tree order" 15 (Graph.order t);
  check int "tree size" 14 (Graph.size t);
  check bool "tree connected" true (Graph.is_connected t);
  let g = Gen.grid 4 3 in
  check int "grid order" 12 (Graph.order g);
  check int "grid size" ((3 * 3) + (4 * 2)) (Graph.size g);
  let torus = Gen.torus 4 4 in
  check bool "torus 4-regular" true (Graph.is_regular torus 4);
  check int "star size" 6 (Graph.size (Gen.star 7))

let test_dot_export () =
  let g = Gen.path 3 in
  let dot = Dot.of_graph g in
  check bool "mentions nodes" true
    (String.length dot > 0
    && String.index_opt dot '{' <> None
    && String.index_opt dot '}' <> None);
  let lg = Labelled.init g (fun v -> v) in
  let dot = Dot.of_labelled ~pp_label:Format.pp_print_int lg in
  check bool "labelled export non-empty" true (String.length dot > 20);
  let view = View.extract ~ids:[| 5; 6; 7 |] lg ~center:1 ~radius:1 in
  let dot = Dot.of_view ~pp_label:Format.pp_print_int view in
  check bool "view export highlights the centre" true
    (let rec contains i =
       i + 12 <= String.length dot
       && (String.sub dot i 12 = "doublecircle" || contains (i + 1))
     in
     contains 0)

let test_random_generators () =
  let rng = rng () in
  let t = Gen.random_tree rng 20 in
  check int "tree edges" 19 (Graph.size t);
  check bool "tree connected" true (Graph.is_connected t);
  let g = Gen.random_connected rng ~n:15 ~p:0.05 in
  check bool "random connected" true (Graph.is_connected g);
  let dense = Gen.random_graph rng ~n:10 ~p:1.0 in
  check int "p=1 gives complete" 45 (Graph.size dense)

(* ------------------------------------------------------------------ *)
(* Spanning trees                                                      *)
(* ------------------------------------------------------------------ *)

let test_spanning_tree_basics () =
  let g = Gen.grid 3 3 in
  let t = Spanning_tree.bfs g ~root:4 in
  check bool "valid" true (Spanning_tree.validate g t);
  check bool "root is root" true (Spanning_tree.is_root t 4);
  check int "root distance" 0 (Spanning_tree.dist t 4);
  check int "corner distance" 2 (Spanning_tree.dist t 0);
  check int "tree edge count" 8 (List.length (Spanning_tree.tree_edges t));
  let sizes = Spanning_tree.subtree_sizes t in
  check int "root subtree = n" 9 sizes.(4);
  (* Children partition: subtree sizes of children sum to n - 1. *)
  let child_sum =
    List.fold_left (fun acc c -> acc + sizes.(c)) 0 (Spanning_tree.children t 4)
  in
  check int "children cover the rest" 8 child_sum

let test_spanning_tree_disconnected () =
  let g = Graph.of_edges ~n:4 [ (0, 1) ] in
  let raised =
    try ignore (Spanning_tree.bfs g ~root:0); false
    with Graph.Invalid_graph _ -> true
  in
  check bool "disconnected rejected" true raised

(* ------------------------------------------------------------------ *)
(* qcheck properties                                                   *)
(* ------------------------------------------------------------------ *)

let arbitrary_graph =
  QCheck2.Gen.(
    let* n = int_range 1 24 in
    let* seed = int_bound 1_000_000 in
    let rng = Random.State.make [| seed |] in
    return (Gen.random_connected rng ~n ~p:0.15))

let prop_ball_monotone =
  QCheck2.Test.make ~name:"balls grow with the radius" ~count:60 arbitrary_graph
    (fun g ->
      let v = 0 in
      let rec go t prev =
        if t > 4 then true
        else
          let b = Array.to_list (Graph.ball g v t) in
          List.for_all (fun u -> List.mem u b) prev && go (t + 1) b
      in
      go 0 [])

let prop_degree_sum =
  QCheck2.Test.make ~name:"sum of degrees = 2m" ~count:60 arbitrary_graph
    (fun g ->
      let sum = Graph.fold_vertices (fun v acc -> acc + Graph.degree g v) g 0 in
      sum = 2 * Graph.size g)

let prop_relabel_involution =
  QCheck2.Test.make ~name:"relabel by a permutation and back is identity"
    ~count:60 arbitrary_graph (fun g ->
      let n = Graph.order g in
      let rng = Random.State.make [| Graph.size g; n |] in
      let perm = Array.init n Fun.id in
      for i = n - 1 downto 1 do
        let j = Random.State.int rng (i + 1) in
        let tmp = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- tmp
      done;
      let inverse = Array.make n 0 in
      Array.iteri (fun i x -> inverse.(x) <- i) perm;
      Graph.equal g (Graph.relabel (Graph.relabel g perm) inverse))

let prop_induced_sub_adjacency =
  QCheck2.Test.make ~name:"induced subgraph preserves adjacency" ~count:60
    arbitrary_graph (fun g ->
      let n = Graph.order g in
      let k = max 1 (n / 2) in
      let subset = Array.init k (fun i -> i * (n / k)) in
      let subset = Array.of_list (List.sort_uniq compare (Array.to_list subset)) in
      let h, back = Graph.induced g subset in
      let ok = ref true in
      for i = 0 to Graph.order h - 1 do
        for j = 0 to Graph.order h - 1 do
          if i <> j && Graph.mem_edge h i j <> Graph.mem_edge g back.(i) back.(j)
          then ok := false
        done
      done;
      !ok)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_ball_monotone; prop_degree_sum; prop_relabel_involution;
      prop_induced_sub_adjacency ]

let () =
  Alcotest.run "graph"
    [
      ( "construction",
        [
          Alcotest.test_case "of_edges basics" `Quick test_of_edges_basic;
          Alcotest.test_case "self-loop rejected" `Quick test_of_edges_rejects_self_loop;
          Alcotest.test_case "out-of-range rejected" `Quick test_of_edges_rejects_out_of_range;
          Alcotest.test_case "of_adjacency symmetrises" `Quick test_of_adjacency_symmetrises;
          Alcotest.test_case "empty graphs" `Quick test_empty;
          Alcotest.test_case "edges normalised" `Quick test_edges_sorted;
        ] );
      ( "distances",
        [
          Alcotest.test_case "bfs on a path" `Quick test_bfs_on_path;
          Alcotest.test_case "ball = bfs restriction" `Quick test_ball_matches_bfs;
          Alcotest.test_case "disconnected graphs" `Quick test_disconnected_distances;
        ] );
      ( "transformations",
        [
          Alcotest.test_case "induced subgraph" `Quick test_induced;
          Alcotest.test_case "induced rejects duplicates" `Quick test_induced_rejects_duplicates;
          Alcotest.test_case "disjoint union" `Quick test_disjoint_union;
          Alcotest.test_case "relabel preserves structure" `Quick test_relabel_preserves_structure;
          Alcotest.test_case "add vertices and edges" `Quick test_add_vertices_edges;
        ] );
      ( "predicates and generators",
        [
          Alcotest.test_case "shape predicates" `Quick test_shape_predicates;
          Alcotest.test_case "generator shapes" `Quick test_generators_shapes;
          Alcotest.test_case "random generators" `Quick test_random_generators;
          Alcotest.test_case "dot export" `Quick test_dot_export;
        ] );
      ( "spanning-trees",
        [
          Alcotest.test_case "bfs tree" `Quick test_spanning_tree_basics;
          Alcotest.test_case "disconnected" `Quick test_spanning_tree_disconnected;
        ] );
      ("properties", qcheck_cases);
    ]
