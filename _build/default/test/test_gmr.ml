(* Tests for the Section 3 construction G(M, r): assembly, the local
   rules (soundness on genuine instances, rejection of counterfeits),
   the deciders and their fast paths, the neighbourhood generator and
   the randomised decider. *)

open Locald_graph
open Locald_turing
open Locald_local
open Locald_decision
open Locald_core

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* A small configuration keeps the tests fast. *)
let small_config =
  { (Gmr.default_config ~r:1) with Gmr.fragment_cap = 40 }

let build ?(config = small_config) m =
  match Gmr.build ~config ~r:1 m with
  | Ok t -> t
  | Error _ -> Alcotest.fail "machine should halt within fuel"

let m_yes = Zoo.two_faced ~steps:2 ~real:0 ~fake:1
let m_no = Zoo.two_faced ~steps:2 ~real:1 ~fake:0

let g_yes = lazy (build m_yes)
let g_no = lazy (build m_no)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let test_build_shape () =
  let t = Lazy.force g_yes in
  check int "table side is a power of two" 4 t.Gmr.table_side;
  check int "steps" 2 t.Gmr.steps;
  check int "output" 0 t.Gmr.output;
  check bool "has fragments" true (t.Gmr.fragments <> []);
  check bool "connected" true (Graph.is_connected (Labelled.graph t.Gmr.lg));
  (* The pivot is a table cell holding the state-0 head. *)
  check bool "pivot looks like the pivot" true
    (Gmr.pivot_look (Labelled.label t.Gmr.lg t.Gmr.pivot))

let test_build_rejects_divergers () =
  match Gmr.build ~config:small_config ~r:1 Zoo.diverge_right with
  | Error (Exec.Out_of_fuel _) -> ()
  | Error _ -> Alcotest.fail "expected out-of-fuel"
  | Ok _ -> Alcotest.fail "diverger should not build"

let test_build_rejects_inadmissible () =
  let reentrant =
    Machine.make ~name:"reentrant" ~num_states:1 ~num_symbols:1 (fun _ _ ->
        Machine.Step { next = 0; write = 0; move = Machine.Right })
  in
  let raised =
    try ignore (Gmr.build ~config:small_config ~r:1 reentrant); false
    with Gmr.Not_admissible _ -> true
  in
  check bool "state-0 re-entry rejected" true raised

let test_no_start_state_in_fragments () =
  let t = Lazy.force g_yes in
  List.iter
    (fun f ->
      check bool "no start-state cell glued" false (Fragment.contains_start_state f))
    t.Gmr.fragments

let test_fake_halt_fragments_glued () =
  (* The yes-instance's collection shows halts with output 1 even
     though the machine outputs 0: the Section 3 obfuscation. *)
  let t = Lazy.force g_yes in
  let shows_output o f =
    Array.exists
      (Array.exists (fun (c : Cell.t) -> c.Cell.head = Cell.Halted o))
      f.Fragment.cells
  in
  check bool "output-1 windows glued into the yes-instance" true
    (List.exists (shows_output 1) t.Gmr.fragments);
  check bool "output-0 windows present too" true
    (List.exists (shows_output 0) t.Gmr.fragments)

(* ------------------------------------------------------------------ *)
(* Local rules                                                         *)
(* ------------------------------------------------------------------ *)

let test_rules_pass_on_genuine () =
  List.iter
    (fun m ->
      let t = build m in
      match Gmr_check.first_violation t.Gmr.lg with
      | None -> ()
      | Some (v, reason) -> Alcotest.failf "%s: node %d: %s" m.Machine.name v reason)
    [ m_yes; m_no; Zoo.walk ~steps:2 ~output:0; Zoo.zigzag ~half:2 ~output:1 ]

let test_rules_pass_with_all_phases () =
  let config = { small_config with Gmr.all_phases = true; fragment_cap = 10 } in
  let t = build ~config m_yes in
  check bool "all-phase instance passes" true
    (Gmr_check.first_violation t.Gmr.lg = None)

let drop_edge lg (u, v) =
  let g = Labelled.graph lg in
  let edges = List.filter (fun e -> e <> (min u v, max u v)) (Graph.edges g) in
  Labelled.make (Graph.of_edges ~n:(Graph.order g) edges) (Labelled.labels lg)

let test_rules_catch_corruptions () =
  let t = Lazy.force g_yes in
  let lg = t.Gmr.lg in
  (* 1. Flip a table symbol in the middle of the run. *)
  let flipped =
    Labelled.mapi
      (fun v l ->
        if v <> t.Gmr.pivot then
          match (t.Gmr.provenance.(v), l.Gmr.part) with
          | Gmr.Table_base (1, 1), Gmr.Cell c ->
              { l with Gmr.part = Gmr.Cell { c with cell = { c.cell with Cell.sym = 1 - c.cell.Cell.sym } } }
          | _ -> l
        else l)
      lg
  in
  check bool "flipped symbol caught" true (Gmr_check.first_violation flipped <> None);
  (* 2. Remove a pyramid edge. *)
  let apex_child =
    (* The table pyramid's top node and one of its children. *)
    let n = ref (-1) in
    Array.iteri
      (fun v -> function
        | Gmr.Table_pyr c when c.Quadtree.z = 1 && !n < 0 ->
            ignore c;
            n := v
        | _ -> ())
      t.Gmr.provenance;
    !n
  in
  let parent =
    match Graph.neighbours (Labelled.graph lg) apex_child |> Array.to_list
          |> List.filter (fun u ->
                 match t.Gmr.provenance.(u) with
                 | Gmr.Table_pyr c -> c.Quadtree.z = 2
                 | _ -> false)
    with
    | p :: _ -> p
    | [] -> Alcotest.fail "no pyramid parent found"
  in
  let cut = drop_edge lg (apex_child, parent) in
  check bool "missing pyramid edge caught" true (Gmr_check.first_violation cut <> None);
  (* 3. Wrong halting output in the table (delta says 0). *)
  let lied =
    Labelled.map
      (fun l ->
        match l.Gmr.part with
        | Gmr.Cell ({ cell = { Cell.head = Cell.Halted 0; _ } as cell; _ } as c) ->
            { l with Gmr.part = Gmr.Cell { c with cell = { cell with Cell.head = Cell.Halted 1 } } }
        | _ -> l)
      lg
  in
  check bool "forged output caught" true (Gmr_check.first_violation lied <> None)

let test_rules_catch_detached_pivot_edges () =
  (* Remove all gluing edges of one fragment with a non-blank top row:
     its top cells become unglued non-blank top cells. *)
  let t = Lazy.force g_yes in
  let lg = t.Gmr.lg in
  let g = Labelled.graph lg in
  (* Find a glued fragment base cell with non-blank content adjacent
     to the pivot. *)
  let target =
    Graph.neighbours g t.Gmr.pivot |> Array.to_list
    |> List.find_opt (fun u ->
           match (t.Gmr.provenance.(u), (Labelled.label lg u).Gmr.part) with
           | Gmr.Frag_base (_, _, 0), Gmr.Cell { cell; _ } ->
               not (Cell.equal cell Cell.blank)
           | _ -> false)
  in
  match target with
  | None -> () (* no suitable fragment in this small collection *)
  | Some u ->
      let cut = drop_edge lg (t.Gmr.pivot, u) in
      check bool "unglued non-blank top cell caught" true
        (Gmr_check.first_violation cut <> None)

let test_structure_array_agrees_with_per_node () =
  let t = Lazy.force g_yes in
  let fast = Gmr_check.structure_array t.Gmr.lg in
  let n = Labelled.order t.Gmr.lg in
  (* Check a sample of nodes (the full loop is the same code path). *)
  let rec go v =
    if v >= n then ()
    else begin
      check bool "agreement" fast.(v) (Gmr_check.violations_in t.Gmr.lg v = []);
      go (v + 97)
    end
  in
  go 0

let test_view_rules_agree_with_global () =
  (* The honest radius-2 view evaluation agrees with the whole-graph
     pass. *)
  let t = Lazy.force g_yes in
  let fast = Gmr_check.structure_array t.Gmr.lg in
  let rec go v =
    if v >= Labelled.order t.Gmr.lg then ()
    else begin
      let view = View.extract t.Gmr.lg ~center:v ~radius:2 in
      check bool
        (Printf.sprintf "node %d" v)
        fast.(v)
        (Gmr_check.violations_view view = []);
      go (v + 131)
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Deciders                                                            *)
(* ------------------------------------------------------------------ *)

let test_fast_matches_algorithm () =
  let t = Lazy.force g_no in
  let fast = Gmr_deciders.Fast.prepare t.Gmr.lg in
  let n = Gmr.order t in
  let rng = Random.State.make [| 9 |] in
  let ids = Ids.shuffled rng n in
  let slow = Decider.decide (Gmr_deciders.ld_decider ()) t.Gmr.lg ~ids in
  let quick = Gmr_deciders.Fast.ld fast ~ids in
  check bool "LD verdicts equal" true (slow = quick);
  let slow_scan = Decider.decide_oblivious (Gmr_deciders.candidate_scan ()) t.Gmr.lg in
  check bool "scan accepts/rejects alike" (Verdict.accepts slow_scan)
    (Verdict.accepts (Gmr_deciders.Fast.scan_candidate fast));
  let slow_fuel =
    Decider.decide_oblivious (Gmr_deciders.candidate_fuel ~fuel:1) t.Gmr.lg
  in
  check bool "fuel candidates agree" (Verdict.accepts slow_fuel)
    (Verdict.accepts (Gmr_deciders.Fast.fuel_candidate fast ~fuel:1))

let test_ld_decider_correct () =
  let rng = Random.State.make [| 10 |] in
  let fy = Gmr_deciders.Fast.prepare (Lazy.force g_yes).Gmr.lg in
  let fn = Gmr_deciders.Fast.prepare (Lazy.force g_no).Gmr.lg in
  for _ = 1 to 10 do
    let ids_y = Ids.sample rng Ids.Unbounded ~n:(Gmr.order (Lazy.force g_yes)) in
    let ids_n = Ids.sample rng Ids.Unbounded ~n:(Gmr.order (Lazy.force g_no)) in
    check bool "accepts yes-instance" true
      (Verdict.accepts (Gmr_deciders.Fast.ld fy ~ids:ids_y));
    check bool "rejects no-instance" true
      (Verdict.rejects (Gmr_deciders.Fast.ld fn ~ids:ids_n))
  done

let test_candidates_fooled () =
  let fy = Gmr_deciders.Fast.prepare (Lazy.force g_yes).Gmr.lg in
  let fn = Gmr_deciders.Fast.prepare (Lazy.force g_no).Gmr.lg in
  (* Scanning for bad halts rejects the YES instance (fake windows). *)
  check bool "scan rejects yes" true
    (Verdict.rejects (Gmr_deciders.Fast.scan_candidate fy));
  (* Fuel 1 < 2 steps: accepts the NO instance. *)
  check bool "short fuel accepts no" true
    (Verdict.accepts (Gmr_deciders.Fast.fuel_candidate fn ~fuel:1));
  (* Generous fuel does reject the no-instance (and correctly accepts
     the yes-instance): the candidate only fails on machines that
     outrun it — which always exist. *)
  check bool "long fuel rejects no" true
    (Verdict.rejects (Gmr_deciders.Fast.fuel_candidate fn ~fuel:50));
  check bool "long fuel accepts yes" true
    (Verdict.accepts (Gmr_deciders.Fast.fuel_candidate fy ~fuel:50))

let test_separation_algorithm () =
  let candidate = Gmr_deciders.candidate_fuel ~fuel:6 in
  let accepts m =
    Gmr_deciders.separation_accepts candidate ~config:small_config ~r:1
      ~side_exp:3 m
  in
  check bool "R accepts the 0-machine" true (accepts m_yes);
  check bool "R rejects the 1-machine" false (accepts m_no);
  (* R is total on divergers. *)
  check bool "R halts on a diverger" true
    (let (_ : bool) = accepts Zoo.diverge_bounce in
     true);
  (* The fooling machine: halts with 1 beyond the candidate's fuel. *)
  check bool "R fooled by a slow machine" true
    (accepts (Zoo.two_faced ~steps:7 ~real:1 ~fake:0))

let test_generator_views_nonempty_and_halting () =
  let views =
    Gmr.generator_views ~config:small_config ~r:1 ~side_exp:3 Zoo.diverge_bounce
  in
  check bool "views for a diverger" true (views <> []);
  let views_halting =
    Gmr.generator_views ~config:small_config ~r:1 ~side_exp:3 m_yes
  in
  check bool "views for a halting machine" true (views_halting <> [])

let test_p3_coverage () =
  (* Every radius-1 view of G(M, 1) that the generator should know
     about appears in B(M, 1) (up to iso), when M halts within the
     window. *)
  let t = Lazy.force g_yes in
  let b_views = Gmr.generator_views ~config:small_config ~r:1 ~side_exp:3 m_yes in
  let g_views = Gmr.all_views t in
  let fwd, _, _ = Gmr.views_covered g_views ~by:b_views in
  let bwd, _, _ = Gmr.views_covered b_views ~by:g_views in
  check bool "B(N,r) = views of G(N,r) when N halts in the window" true (fwd && bwd)

(* ------------------------------------------------------------------ *)
(* Membership property and the randomised decider                      *)
(* ------------------------------------------------------------------ *)

let test_r2_construction () =
  (* r = 2: side-8 fragments with height-3 pyramids. *)
  let config = { (Gmr.default_config ~r:2) with Gmr.fragment_cap = 30 } in
  check int "fragment side scales" 8 config.Gmr.fragment_side;
  match Gmr.build ~config ~r:2 (Zoo.two_faced ~steps:2 ~real:0 ~fake:1) with
  | Error _ -> Alcotest.fail "r=2 build failed"
  | Ok t ->
      check bool "rules pass at r=2" true (Gmr_check.first_violation t.Gmr.lg = None);
      let fast = Gmr_deciders.Fast.prepare t.Gmr.lg in
      let rng = Random.State.make [| 77 |] in
      let ids = Ids.shuffled rng (Gmr.order t) in
      check bool "LD decider accepts at r=2" true
        (Verdict.accepts (Gmr_deciders.Fast.ld fast ~ids))

let test_all_phases_views_richer () =
  (* Anchor phases multiply the fragment instances and hence the view
     classes available to impersonate interior windows. *)
  let base = { small_config with Gmr.fragment_cap = 10 } in
  let phased = { base with Gmr.all_phases = true } in
  let t_base = build ~config:base m_yes in
  let t_phased = build ~config:phased m_yes in
  check bool "phased instance larger" true (Gmr.order t_phased > Gmr.order t_base);
  check bool "phased instance passes the rules" true
    (Gmr_check.first_violation t_phased.Gmr.lg = None)

let test_generator_agrees_for_fast_machine () =
  (* A machine halting well inside the window: B(N,r) takes the exact
     branch and returns precisely the views of G(N,r). *)
  let m = Zoo.walk ~steps:2 ~output:0 in
  let t = build m in
  let b = Gmr.generator_views ~config:small_config ~r:1 ~side_exp:4 m in
  let g = Gmr.all_views t in
  check int "same number of classes" (List.length g) (List.length b)

let test_property_membership () =
  let property = Gmr_deciders.property ~r:1 ~config:small_config in
  check bool "yes-instance in P" true (property.Property.mem (Lazy.force g_yes).Gmr.lg);
  check bool "no-instance not in P" false (property.Property.mem (Lazy.force g_no).Gmr.lg)

let test_corollary1_rates () =
  let rng = Random.State.make [| 11 |] in
  let fy = Gmr_deciders.Fast.prepare (Lazy.force g_yes).Gmr.lg in
  let fn = Gmr_deciders.Fast.prepare (Lazy.force g_no).Gmr.lg in
  (* One-sided: yes-instances always accepted. *)
  for _ = 1 to 30 do
    check bool "yes always accepted" true
      (Verdict.accepts (Gmr_deciders.Fast.corollary1 fy rng))
  done;
  (* No-instances rejected with good probability: here the machine
     halts in 2 steps, so any node with l_v >= 1 suffices (fuel 4 > 2)
     — rejection is essentially certain over thousands of nodes. *)
  let rejected = ref 0 in
  for _ = 1 to 30 do
    if Verdict.rejects (Gmr_deciders.Fast.corollary1 fn rng) then incr rejected
  done;
  check bool "no-instances rejected w.h.p." true (!rejected >= 29)

(* ------------------------------------------------------------------ *)
(* The Section 3 warm-up promise problem                               *)
(* ------------------------------------------------------------------ *)

let test_tm_promise () =
  let fuel = 64 in
  let promise = Tm_promise.promise ~fuel in
  let diverger = Tm_promise.instance ~machine:Zoo.diverge_bounce ~n:5 in
  let halter = Tm_promise.instance ~machine:(Zoo.walk ~steps:4 ~output:0) ~n:6 in
  check bool "diverger satisfies the promise" true
    (promise.Locald_decision.Promise.promise diverger);
  check bool "big-enough cycle satisfies the promise" true
    (promise.Locald_decision.Promise.promise halter);
  check bool "short cycle violates the promise" false
    (promise.Locald_decision.Promise.promise
       (Tm_promise.instance ~machine:(Zoo.walk ~steps:10 ~output:0) ~n:4));
  check bool "membership = divergence" true
    (promise.Locald_decision.Promise.mem diverger
    && not (promise.Locald_decision.Promise.mem halter));
  (* The LD decider: correct on both under sampled assignments. *)
  let rng = Random.State.make [| 13 |] in
  let decider = Tm_promise.ld_decider () in
  let eval expected lg =
    Decider.all_correct
      (Decider.evaluate ~rng ~regime:Ids.Unbounded ~assignments:25 decider
         ~expected ~instance:"" lg)
  in
  check bool "accepts the diverger" true (eval true diverger);
  check bool "rejects the halter" true (eval false halter);
  (* The oblivious candidate is fooled by a machine beyond its fuel. *)
  let fooling = Tm_promise.fooling_machine ~fuel:8 in
  let lg = Tm_promise.instance ~machine:fooling ~n:12 in
  check bool "candidate accepts a halting instance" true
    (Verdict.accepts
       (Decider.decide_oblivious (Tm_promise.oblivious_candidate ~fuel:8) lg))

(* ------------------------------------------------------------------ *)
(* Random machines through the whole pipeline                          *)
(* ------------------------------------------------------------------ *)

let tiny_config =
  { small_config with Gmr.fragment_cap = 25; fuel = 20 }

let prop_random_machines_full_pipeline =
  QCheck2.Test.make ~name:"random halting machines build valid instances"
    ~count:60 Machine_gen.machine_gen (fun m ->
      match Machine_gen.behaviour ~fuel:20 m with
      | Machine_gen.Crashes | Machine_gen.Diverges_within _ ->
          (* Only halting machines yield instances; divergers must
             still be rejected cleanly by the builder. *)
          (match Gmr.build ~config:tiny_config ~r:1 m with
          | Error _ -> true
          | Ok _ -> false)
      | Machine_gen.Halts { output; steps } -> (
          match Gmr.build ~config:tiny_config ~r:1 m with
          | Error _ -> false
          | Ok t ->
              t.Gmr.output = output && t.Gmr.steps = steps
              && Gmr_check.first_violation t.Gmr.lg = None))

let prop_random_machines_ld_correct =
  QCheck2.Test.make ~name:"LD decider correct on random halting machines"
    ~count:40 Machine_gen.machine_gen (fun m ->
      match Machine_gen.behaviour ~fuel:20 m with
      | Machine_gen.Crashes | Machine_gen.Diverges_within _ -> true
      | Machine_gen.Halts { output; _ } -> (
          match Gmr.build ~config:tiny_config ~r:1 m with
          | Error _ -> false
          | Ok t ->
              let fast = Gmr_deciders.Fast.prepare t.Gmr.lg in
              let rng = Random.State.make [| Hashtbl.hash m.Machine.name |] in
              let ids = Ids.shuffled rng (Gmr.order t) in
              Verdict.accepts (Gmr_deciders.Fast.ld fast ~ids) = (output = 0)))

let prop_random_machines_window_rules =
  QCheck2.Test.make ~name:"random machines: tables satisfy their own rules"
    ~count:60 Machine_gen.machine_gen (fun m ->
      match Machine_gen.behaviour ~fuel:24 m with
      | Machine_gen.Crashes | Machine_gen.Diverges_within _ -> true
      | Machine_gen.Halts _ -> (
          match Table.of_machine ~fuel:24 m with
          | Error _ -> false
          | Ok table ->
              let padded = Table.pad_to_power_of_two table in
              Table.validate m padded.Table.cells = []
              && List.for_all
                   (Fragment.reconstructible m)
                   (Fragment.of_windows m padded ~w:3 ~h:3)))

let qcheck_pipeline =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_random_machines_full_pipeline;
      prop_random_machines_ld_correct;
      prop_random_machines_window_rules;
    ]

let () =
  Alcotest.run "gmr"
    [
      ( "construction",
        [
          Alcotest.test_case "shape" `Quick test_build_shape;
          Alcotest.test_case "divergers rejected" `Quick test_build_rejects_divergers;
          Alcotest.test_case "inadmissible machines rejected" `Quick
            test_build_rejects_inadmissible;
          Alcotest.test_case "no start state in fragments" `Quick
            test_no_start_state_in_fragments;
          Alcotest.test_case "fake-halt fragments glued" `Quick
            test_fake_halt_fragments_glued;
        ] );
      ( "local-rules",
        [
          Alcotest.test_case "pass on genuine instances" `Quick test_rules_pass_on_genuine;
          Alcotest.test_case "pass with all phases" `Quick test_rules_pass_with_all_phases;
          Alcotest.test_case "catch corruptions" `Quick test_rules_catch_corruptions;
          Alcotest.test_case "catch unglued fragments" `Quick
            test_rules_catch_detached_pivot_edges;
          Alcotest.test_case "fast pass = per-node pass" `Quick
            test_structure_array_agrees_with_per_node;
          Alcotest.test_case "view rules = global rules" `Quick
            test_view_rules_agree_with_global;
        ] );
      ( "deciders",
        [
          Alcotest.test_case "fast = honest algorithms" `Quick test_fast_matches_algorithm;
          Alcotest.test_case "LD decider correct" `Quick test_ld_decider_correct;
          Alcotest.test_case "candidates fooled" `Quick test_candidates_fooled;
          Alcotest.test_case "separation algorithm R" `Quick test_separation_algorithm;
          Alcotest.test_case "generator totality" `Quick
            test_generator_views_nonempty_and_halting;
          Alcotest.test_case "(P3) coverage" `Quick test_p3_coverage;
          Alcotest.test_case "r = 2 construction" `Quick test_r2_construction;
          Alcotest.test_case "anchor phases" `Quick test_all_phases_views_richer;
          Alcotest.test_case "exact generator branch" `Quick
            test_generator_agrees_for_fast_machine;
        ] );
      ( "property-and-randomness",
        [
          Alcotest.test_case "membership" `Quick test_property_membership;
          Alcotest.test_case "Corollary 1 rates" `Quick test_corollary1_rates;
        ] );
      ("tm-promise", [ Alcotest.test_case "warm-up problem" `Quick test_tm_promise ]);
      ("random-machines", qcheck_pipeline);
    ]
