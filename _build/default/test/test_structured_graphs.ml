(* Tests for the structured graphs of the constructions: oriented
   grids, layered trees (Figure 1) and pyramids (Figure 3). *)

open Locald_graph

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Grid orientation labels                                             *)
(* ------------------------------------------------------------------ *)

let test_mod3_steps () =
  let l = Grid.mod3 { Grid.x = 4; y = 7 } in
  check (Alcotest.pair int int) "mod3" (1, 1) l;
  check (Alcotest.pair int int) "step right" (2, 1) (Grid.step_mod3 l Grid.Right);
  check (Alcotest.pair int int) "step up" (1, 0) (Grid.step_mod3 l Grid.Up);
  check
    (Alcotest.option (Alcotest.of_pp (fun ppf (_ : Grid.dir) -> Fmt.string ppf "dir")))
    "dir between" (Some Grid.Right)
    (Grid.dir_between (1, 1) (2, 1));
  check bool "no dir between equal labels" true (Grid.dir_between (1, 1) (1, 1) = None)

let grid_mod3_of w v = Grid.mod3 (Grid.coord_of_index ~w v)

let test_grid_locally_oriented () =
  let w = 5 and h = 4 in
  let g = Grid.graph ~w ~h in
  let mod3_of = grid_mod3_of w in
  for v = 0 to Graph.order g - 1 do
    check bool "oriented" true (Grid.locally_oriented ~mod3_of g v)
  done;
  (* Neighbour lookup agrees with coordinates. *)
  let v = Grid.index ~w { Grid.x = 2; y = 1 } in
  check (Alcotest.option int) "right neighbour"
    (Some (Grid.index ~w { Grid.x = 3; y = 1 }))
    (Grid.neighbour_in_dir ~mod3_of g v Grid.Right);
  check (Alcotest.option int) "up neighbour"
    (Some (Grid.index ~w { Grid.x = 2; y = 0 }))
    (Grid.neighbour_in_dir ~mod3_of g v Grid.Up)

let test_grid_orientation_catches_corruption () =
  (* Swap two labels: some node sees two neighbours in one direction
     or an unclassifiable neighbour. *)
  let w = 5 and h = 4 in
  let g = Grid.graph ~w ~h in
  let corrupted v =
    if v = 7 then grid_mod3_of w 8 else grid_mod3_of w v
  in
  let all_ok = ref true in
  for v = 0 to Graph.order g - 1 do
    if not (Grid.locally_oriented ~mod3_of:corrupted g v) then all_ok := false
  done;
  check bool "corruption detected" false !all_ok

(* ------------------------------------------------------------------ *)
(* Layered trees                                                       *)
(* ------------------------------------------------------------------ *)

let test_layered_tree_shape () =
  let lt = Layered_tree.make ~arity:2 ~r:0 ~depth:3 in
  let g = Labelled.graph lt in
  check int "order" 15 (Graph.order g);
  (* Edges: 14 tree edges + level paths of lengths 1, 3, 7. *)
  check int "size" (14 + 1 + 3 + 7) (Graph.size g);
  (* Root's label and neighbours. *)
  check bool "root label" true (Labelled.label lt 0 = { Layered_tree.r = 0; x = 0; y = 0 });
  check int "root degree (two children)" 2 (Graph.degree g 0);
  (* A middle node of level 2 has: parent, 2 children, 2 level
     neighbours. *)
  let v = Layered_tree.node_index ~arity:2 ~x:1 ~y:2 in
  check int "middle degree" 5 (Graph.degree g v)

let test_layered_tree_arity_one_is_path () =
  let lt = Layered_tree.make ~arity:1 ~r:0 ~depth:6 in
  check bool "arity 1 = path" true (Graph.is_path_graph (Labelled.graph lt))

let test_layered_tree_inspect_genuine () =
  let depth = 4 in
  let lt = Layered_tree.make ~arity:2 ~r:0 ~depth in
  let label_of v = Some (Labelled.label lt v) in
  for v = 0 to Labelled.order lt - 1 do
    match Layered_tree.inspect ~arity:2 ~depth ~label_of (Labelled.graph lt) v with
    | None -> Alcotest.fail "node lost its label"
    | Some c ->
        check bool
          (Printf.sprintf "node %d interior-ok" v)
          true
          (Layered_tree.is_interior_ok c)
  done

let test_layered_tree_inspect_detects_missing_edge () =
  let depth = 3 in
  let lt = Layered_tree.make ~arity:2 ~r:0 ~depth in
  let g = Labelled.graph lt in
  (* Remove one level-path edge. *)
  let e = (Layered_tree.node_index ~arity:2 ~x:0 ~y:2, Layered_tree.node_index ~arity:2 ~x:1 ~y:2) in
  let edges = List.filter (fun (u, v) -> (u, v) <> e) (Graph.edges g) in
  let g' = Graph.of_edges ~n:(Graph.order g) edges in
  let label_of v = Some (Labelled.label lt v) in
  let some_bad = ref false in
  for v = 0 to Graph.order g' - 1 do
    match Layered_tree.inspect ~arity:2 ~depth ~label_of g' v with
    | None -> ()
    | Some c -> if not (Layered_tree.is_interior_ok c) then some_bad := true
  done;
  check bool "missing edge detected" true !some_bad

let test_cone_and_border () =
  let arity = 2 and depth = 4 and r = 2 in
  let apex = (1, 1) in
  let cone = Layered_tree.cone ~arity ~apex ~r in
  (* |cone| = 1 + 2 + 4. *)
  check int "cone size" 7 (Array.length cone);
  let border = Layered_tree.cone_border ~arity ~depth ~apex ~r in
  (* Everything except fully-interior nodes is on the border here. *)
  check bool "border non-empty" true (Array.length border > 0);
  check bool "border inside cone" true
    (Array.for_all (fun b -> Array.exists (fun c -> c = b) cone) border);
  (* The apex has a parent outside: it is a border node. *)
  let apex_index = Layered_tree.node_index ~arity ~x:1 ~y:1 in
  check bool "apex is border" true (Array.exists (fun b -> b = apex_index) border)

let test_top_cone_border () =
  (* The cone at the root: only the bottom row has outside
     neighbours. *)
  let arity = 2 and depth = 4 and r = 2 in
  let border = Layered_tree.cone_border ~arity ~depth ~apex:(0, 0) ~r in
  let bottom_row = Layered_tree.level_width ~arity r in
  check int "border = bottom row" bottom_row (Array.length border)

let test_apexes_count () =
  (* Apex count = sum of level widths for y0 <= depth - r. *)
  let apexes = Layered_tree.apexes ~arity:2 ~depth:4 ~r:2 in
  check int "apexes" (1 + 2 + 4) (List.length apexes)

(* ------------------------------------------------------------------ *)
(* Quadtrees (pyramids)                                                *)
(* ------------------------------------------------------------------ *)

let test_quadtree_shape () =
  let h = 3 in
  let g = Quadtree.build ~h in
  check int "order" (64 + 16 + 4 + 1) (Graph.order g);
  (* Apex is the last node; degree 4 (its children), no siblings. *)
  let apex = Graph.order g - 1 in
  check int "apex degree" 4 (Graph.degree g apex);
  (* Base corner: 2 grid nbrs + 1 parent. *)
  check int "corner degree" 3 (Graph.degree g 0);
  (* coord round trip. *)
  for i = 0 to Graph.order g - 1 do
    check int "index round-trip" i (Quadtree.index ~h (Quadtree.coord_of_index ~h i))
  done

(* Base-grid nodes classify as [Bottom]; upper levels as [Upper]. *)
let classify_by_coord ~h v =
  let c = Quadtree.coord_of_index ~h v in
  let l = Quadtree.label_of_coord c in
  if c.Quadtree.z = 0 then Quadtree.Bottom (l.Quadtree.m6x, l.Quadtree.m6y)
  else Quadtree.Upper l

let test_quadtree_inspect_genuine () =
  List.iter
    (fun h ->
      let lg = Quadtree.labelled ~h () in
      let g = Labelled.graph lg in
      let classify = classify_by_coord ~h in
      for v = 0 to Graph.order g - 1 do
        let errs = Quadtree.inspect ~classify g v in
        if errs <> [] then
          Alcotest.failf "h=%d node %d: %s" h v (String.concat "; " errs)
      done)
    [ 1; 2; 3; 4 ]

let test_quadtree_rejects_torus () =
  let h = 2 in
  let side = Quadtree.side ~h in
  let torus = Locald_graph.Gen.torus side side in
  let labels =
    Array.init (side * side) (fun v ->
        Quadtree.label_of_coord { Quadtree.x = v mod side; y = v / side; z = 0 })
  in
  let classify v = Quadtree.Bottom (labels.(v).Quadtree.m6x, labels.(v).Quadtree.m6y) in
  let some_bad = ref false in
  for v = 0 to (side * side) - 1 do
    if Quadtree.inspect ~classify torus v <> [] then some_bad := true
  done;
  check bool "torus rejected" true !some_bad

let test_quadtree_rejects_missing_level () =
  (* Drop the apex: its children keep grid neighbours but lose their
     parent. *)
  let h = 2 in
  let g = Quadtree.build ~h in
  let n = Graph.order g in
  let keep = Array.init (n - 1) Fun.id in
  let g', _ = Graph.induced g keep in
  let classify = classify_by_coord ~h in
  let some_bad = ref false in
  for v = 0 to Graph.order g' - 1 do
    if Quadtree.inspect ~classify g' v <> [] then some_bad := true
  done;
  check bool "truncated pyramid rejected" true !some_bad

let test_quadtree_parent_of () =
  let h = 2 in
  let lg = Quadtree.labelled ~h () in
  let g = Labelled.graph lg in
  let classify v = Quadtree.Upper (Labelled.label lg v) in
  let base = Quadtree.index ~h { Quadtree.x = 3; y = 2; z = 0 } in
  let expected = Quadtree.index ~h { Quadtree.x = 1; y = 1; z = 1 } in
  check (Alcotest.option int) "parent" (Some expected)
    (Quadtree.parent_of ~classify g base)

let () =
  Alcotest.run "structured-graphs"
    [
      ( "grid",
        [
          Alcotest.test_case "mod3 steps" `Quick test_mod3_steps;
          Alcotest.test_case "genuine grid oriented" `Quick test_grid_locally_oriented;
          Alcotest.test_case "corruption caught" `Quick
            test_grid_orientation_catches_corruption;
        ] );
      ( "layered-tree",
        [
          Alcotest.test_case "shape" `Quick test_layered_tree_shape;
          Alcotest.test_case "arity 1 degenerates to a path" `Quick
            test_layered_tree_arity_one_is_path;
          Alcotest.test_case "inspect accepts genuine" `Quick
            test_layered_tree_inspect_genuine;
          Alcotest.test_case "inspect detects corruption" `Quick
            test_layered_tree_inspect_detects_missing_edge;
          Alcotest.test_case "cones and borders" `Quick test_cone_and_border;
          Alcotest.test_case "top cone border" `Quick test_top_cone_border;
          Alcotest.test_case "apex enumeration" `Quick test_apexes_count;
        ] );
      ( "quadtree",
        [
          Alcotest.test_case "shape" `Quick test_quadtree_shape;
          Alcotest.test_case "inspect accepts genuine" `Quick
            test_quadtree_inspect_genuine;
          Alcotest.test_case "rejects torus" `Quick test_quadtree_rejects_torus;
          Alcotest.test_case "rejects truncation" `Quick
            test_quadtree_rejects_missing_level;
          Alcotest.test_case "parent lookup" `Quick test_quadtree_parent_of;
        ] );
    ]
