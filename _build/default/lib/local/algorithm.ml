open Locald_graph

type ('a, 'o) t = {
  name : string;
  radius : int;
  decide : 'a View.t -> 'o;
}

type ('a, 'o) oblivious = {
  ob_name : string;
  ob_radius : int;
  ob_decide : 'a View.t -> 'o;
}

let make ~name ~radius decide =
  if radius < 0 then invalid_arg "Algorithm.make: negative radius";
  { name; radius; decide }

let make_oblivious ~name ~radius ob_decide =
  if radius < 0 then invalid_arg "Algorithm.make_oblivious: negative radius";
  { ob_name = name; ob_radius = radius; ob_decide }

let of_oblivious ob =
  {
    name = ob.ob_name;
    radius = ob.ob_radius;
    decide = (fun view -> ob.ob_decide (View.strip_ids view));
  }

let map_output f t = { t with decide = (fun view -> f (t.decide view)) }
