open Locald_graph

type witness = {
  node : int;
  ids_a : Ids.t;
  ids_b : Ids.t;
}

let differing_node outputs_a outputs_b =
  let n = Array.length outputs_a in
  let rec go v =
    if v >= n then None
    else if outputs_a.(v) <> outputs_b.(v) then Some v
    else go (v + 1)
  in
  go 0

let find_variance_sampled ~rng ~trials ~regime alg lg =
  let n = Labelled.order lg in
  let reference_ids = Ids.sample rng regime ~n in
  let reference = Runner.run alg lg ~ids:reference_ids in
  let rec go k =
    if k >= trials then None
    else
      let ids = Ids.sample rng regime ~n in
      let outputs = Runner.run alg lg ~ids in
      match differing_node reference outputs with
      | Some node -> Some { node; ids_a = reference_ids; ids_b = ids }
      | None -> go (k + 1)
  in
  go 0

let find_variance_exhaustive ~bound alg lg =
  let n = Labelled.order lg in
  let all = Ids.enumerate_injections ~n ~bound in
  match all () with
  | Seq.Nil -> None
  | Seq.Cons (first, rest) ->
      let reference = Runner.run alg lg ~ids:first in
      let rec scan seq =
        match seq () with
        | Seq.Nil -> None
        | Seq.Cons (ids, rest) -> (
            let outputs = Runner.run alg lg ~ids in
            match differing_node reference outputs with
            | Some node -> Some { node; ids_a = first; ids_b = ids }
            | None -> scan rest)
      in
      scan rest
