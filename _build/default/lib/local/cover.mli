(** Truncated view trees (universal covers) — the classical
    Yamashita-Kameda machinery of anonymous computation.

    The depth-[d] view tree of a node unfolds the graph from that node:
    the root carries the node's label and its children are the
    depth-[d-1] view trees of its neighbours (all of them — walks may
    backtrack). Two nodes with equal view trees receive equal outputs
    from {e any} anonymous algorithm; Id-oblivious algorithms in the
    paper's model are stronger (they see the ball's actual topology,
    which the view tree only covers), so view-tree equality is a
    fortiori an obstruction for them: if all depth-[d] view trees of
    two instances coincide, no oblivious radius-[d] algorithm can
    separate the instances.

    Trees are kept in canonical form (children sorted), so structural
    equality is semantic equality. Sizes grow like [degree^depth]:
    meant for small graphs and depths. *)

open Locald_graph

type 'a t = private Node of 'a * 'a t list
(** Canonical: children sorted (by structure, then label). *)

val label : 'a t -> 'a
val children : 'a t -> 'a t list
val depth : 'a t -> int
val size : 'a t -> int

val view_tree : 'a Labelled.t -> node:int -> depth:int -> 'a t
(** The depth-[d] view tree of a node. *)

val equal : 'a t -> 'a t -> bool

val classes : 'a Labelled.t -> depth:int -> int array
(** Partition the nodes by view-tree equality at the given depth:
    [classes lg ~depth] maps each node to a class index in
    [0 .. k-1]. *)

val count_classes : 'a Labelled.t -> depth:int -> int

val stable_depth : 'a Labelled.t -> int
(** The depth at which the view-tree partition stops refining (classic
    bound: at most [n - 1]; the search stops there). Nodes in the same
    class at this depth are view-equivalent at {e every} depth. *)

val indistinguishable_nodes : 'a Labelled.t -> depth:int -> (int * int) option
(** Two distinct nodes with equal depth-[d] view trees, if any — a
    certified obstruction for anonymous symmetry breaking. *)

val pp :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
