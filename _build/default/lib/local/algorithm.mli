(** Local algorithms: functions of the radius-[t] view (Section 1.2).

    A general local algorithm sees the view {e including} the
    identifiers; an Id-oblivious algorithm is, by construction, a
    function of the identifier-free view, so obliviousness holds by
    typing rather than by promise. [of_oblivious] embeds the latter
    into the former (stripping the identifiers before deciding). *)

open Locald_graph

type ('a, 'o) t = {
  name : string;
  radius : int;
  decide : 'a View.t -> 'o;
}

type ('a, 'o) oblivious = {
  ob_name : string;
  ob_radius : int;
  ob_decide : 'a View.t -> 'o;
      (** Always called on views with [ids = None]. *)
}

val make : name:string -> radius:int -> ('a View.t -> 'o) -> ('a, 'o) t

val make_oblivious :
  name:string -> radius:int -> ('a View.t -> 'o) -> ('a, 'o) oblivious

val of_oblivious : ('a, 'o) oblivious -> ('a, 'o) t
(** Runs the oblivious algorithm in the full model by discarding the
    identifiers from every view. *)

val map_output : ('o -> 'p) -> ('a, 'o) t -> ('a, 'p) t
