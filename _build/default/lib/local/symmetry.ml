open Locald_graph

type state = {
  my_id : int;
  succ_id : int;
  colour : int;
  pred_colour : int option;
  succ_colour : int option;
  round_no : int;
  cv_stable_at : int option;
  done_ : bool;
}

(* Lowest bit position where a and b differ (they are distinct). *)
let lowest_differing_bit a b =
  let x = a lxor b in
  let rec go i = if x land (1 lsl i) <> 0 then i else go (i + 1) in
  go 0

let cv_step ~colour ~succ_colour =
  let i = lowest_differing_bit colour succ_colour in
  (2 * i) + ((colour lsr i) land 1)

let cole_vishkin ~cv_rounds =
  {
    Protocol.proto_name = "cole-vishkin";
    init =
      (fun ~id ~degree ~input ->
        if degree <> 2 then invalid_arg "cole_vishkin: cycles only";
        {
          my_id = id;
          succ_id = input;
          colour = id;
          pred_colour = None;
          succ_colour = None;
          round_no = 0;
          cv_stable_at = None;
          done_ = false;
        });
    emit = (fun s -> (s.my_id, s.colour));
    halted = (fun s -> s.done_);
    round =
      (fun s ~received ->
        (* On a cycle the two messages are the successor's (matched by
           id) and, therefore, the predecessor's. *)
        let succ_colour =
          Array.to_list received
          |> List.find_map (fun (id, c) -> if id = s.succ_id then Some c else None)
        in
        let pred_colour =
          Array.to_list received
          |> List.find_map (fun (id, c) -> if id <> s.succ_id then Some c else None)
        in
        let succ_c = Option.get succ_colour in
        let pred_c = Option.get pred_colour in
        let round_no = s.round_no + 1 in
        if round_no <= cv_rounds then begin
          (* A bit-reduction iteration. *)
          let colour = cv_step ~colour:s.colour ~succ_colour:succ_c in
          let cv_stable_at =
            match s.cv_stable_at with
            | Some _ as x -> x
            | None -> if colour < 6 then Some round_no else None
          in
          { s with colour; cv_stable_at; round_no;
            pred_colour = Some pred_c; succ_colour = Some succ_c }
        end
        else begin
          (* Three scheduled shift-down rounds remove colours 5, 4, 3. *)
          let target = 5 - (round_no - cv_rounds - 1) in
          let colour =
            if s.colour = target then
              let forbidden = [ pred_c; succ_c ] in
              let rec pick c = if List.mem c forbidden then pick (c + 1) else c in
              pick 0
            else s.colour
          in
          let done_ = round_no >= cv_rounds + 3 in
          { s with colour; round_no; done_;
            pred_colour = Some pred_c; succ_colour = Some succ_c }
        end);
  }

let oriented_cycle_input ~n ~ids =
  Labelled.init (Gen.cycle n) (fun v -> Ids.assign ids ((v + 1) mod n))

let colours states = Array.map (fun s -> s.colour) states

let is_proper_colouring g cols ~k =
  Graph.fold_vertices
    (fun v acc ->
      acc && cols.(v) >= 0 && cols.(v) < k
      && Array.for_all (fun u -> cols.(u) <> cols.(v)) (Graph.neighbours g v))
    g true

(* ------------------------------------------------------------------ *)
(* Luby's MIS                                                          *)
(* ------------------------------------------------------------------ *)

type mis_state = {
  mid : int;
  rng_seed : int;
  priority : int;
  status : [ `Active | `In_mis | `Out ];
  mis_rounds : int;
}

let draw ~seed ~id ~round = Hashtbl.hash (seed, id, round, "luby") land max_int

let luby_mis ~seed =
  {
    Protocol.proto_name = "luby-mis";
    init =
      (fun ~id ~degree:_ ~input:_ ->
        {
          mid = id;
          rng_seed = seed;
          priority = draw ~seed ~id ~round:0;
          status = `Active;
          mis_rounds = 0;
        });
    emit =
      (fun s ->
        ( s.mid,
          (match s.status with `Active -> s.priority | `In_mis | `Out -> -1),
          s.status = `In_mis ));
    halted = (fun s -> s.status <> `Active);
    round =
      (fun s ~received ->
        let round = s.mis_rounds + 1 in
        let next_priority = draw ~seed:s.rng_seed ~id:s.mid ~round in
        let neighbour_joined =
          Array.exists (fun (_, _, joined) -> joined) received
        in
        let status =
          if neighbour_joined then `Out
          else if
            (* Strict local maximum among still-active neighbours
               (ties arbitrated by identifiers). *)
            Array.for_all
              (fun (id, p, _) -> p < 0 || (s.priority, s.mid) > (p, id))
              received
          then `In_mis
          else `Active
        in
        { s with status; priority = next_priority; mis_rounds = round });
  }

let run_luby ~seed ~max_rounds g ~ids =
  let lg = Labelled.const g () in
  let states, outcome = Protocol.run ~max_rounds (luby_mis ~seed) lg ~ids in
  (Array.map (fun s -> if s.status = `In_mis then 1 else 0) states, outcome)

let run_on_cycle ?(cv_rounds = 12) ~n ~ids () =
  let lg = oriented_cycle_input ~n ~ids in
  let states, outcome =
    Protocol.run ~max_rounds:(cv_rounds + 4) (cole_vishkin ~cv_rounds) lg ~ids
  in
  let worst_stable =
    Array.fold_left
      (fun acc s -> max acc (Option.value ~default:max_int s.cv_stable_at))
      0 states
  in
  (colours states, outcome, worst_stable)
