(** Stateful synchronous protocols — the constructive side of the
    LOCAL model.

    Where {!Algorithm} captures constant-horizon decision (a function
    of the view), construction algorithms run for many rounds and keep
    state: each round every live node broadcasts a message, receives
    its neighbours' messages (in port order) and updates its state. A
    node that halts keeps rebroadcasting its final message, so
    neighbours can still read its result — the standard convention.

    Section 1.3 of the paper contrasts the two uses of identifiers:
    construction algorithms (e.g. Cole-Vishkin colour reduction,
    {!Symmetry}) use them as {e symmetry breakers} — only distinctness
    and order matter — while the paper's decision separations exploit
    their {e magnitude}. *)

open Locald_graph

type ('i, 's, 'm) t = {
  proto_name : string;
  init : id:int -> degree:int -> input:'i -> 's;
  round : 's -> received:'m array -> 's;
      (** [received.(k)] is the message of the [k]-th neighbour (in
          sorted adjacency order). *)
  emit : 's -> 'm;
  halted : 's -> bool;
}

type outcome = {
  rounds_used : int;
  all_halted : bool;
}

val run :
  max_rounds:int ->
  ('i, 's, 'm) t ->
  'i Labelled.t ->
  ids:Ids.t ->
  's array * outcome
(** Run until every node halts or the round budget is exhausted. *)
