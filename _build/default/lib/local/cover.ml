open Locald_graph

type 'a t = Node of 'a * 'a t list

let label (Node (x, _)) = x
let children (Node (_, cs)) = cs

let rec depth (Node (_, cs)) =
  match cs with [] -> 0 | _ -> 1 + List.fold_left (fun a c -> max a (depth c)) 0 cs

let rec size (Node (_, cs)) = 1 + List.fold_left (fun a c -> a + size c) 0 cs

(* Canonical construction: children sorted by the (already canonical)
   structural order, so polymorphic comparison is semantic. *)
let rec build lg ~node ~depth =
  let x = Labelled.label lg node in
  if depth = 0 then Node (x, [])
  else
    let cs =
      Graph.neighbours (Labelled.graph lg) node
      |> Array.to_list
      |> List.map (fun u -> build lg ~node:u ~depth:(depth - 1))
      |> List.sort Stdlib.compare
    in
    Node (x, cs)

let view_tree lg ~node ~depth =
  if depth < 0 then invalid_arg "Cover.view_tree: negative depth";
  build lg ~node ~depth

let equal a b = Stdlib.compare a b = 0

let classes lg ~depth =
  let n = Labelled.order lg in
  let table = Hashtbl.create (2 * n) in
  let next = ref 0 in
  Array.init n (fun v ->
      let t = view_tree lg ~node:v ~depth in
      match Hashtbl.find_opt table t with
      | Some c -> c
      | None ->
          let c = !next in
          incr next;
          Hashtbl.replace table t c;
          c)

let count_classes lg ~depth =
  let cls = classes lg ~depth in
  Array.fold_left max (-1) cls + 1

let stable_depth lg =
  let n = Labelled.order lg in
  let rec go d prev =
    if d > max 1 (n - 1) then d - 1
    else
      let k = count_classes lg ~depth:d in
      if k = prev then d - 1 else go (d + 1) k
  in
  if n = 0 then 0 else go 1 (count_classes lg ~depth:0)

let indistinguishable_nodes lg ~depth =
  let cls = classes lg ~depth in
  let seen = Hashtbl.create 16 in
  let n = Array.length cls in
  let rec scan v =
    if v >= n then None
    else
      match Hashtbl.find_opt seen cls.(v) with
      | Some u -> Some (u, v)
      | None ->
          Hashtbl.replace seen cls.(v) v;
          scan (v + 1)
  in
  scan 0

let rec pp pp_label ppf (Node (x, cs)) =
  match cs with
  | [] -> Format.fprintf ppf "%a" pp_label x
  | _ ->
      Format.fprintf ppf "@[<hov 2>%a(%a)@]" pp_label x
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           (pp pp_label))
        cs
