open Locald_graph

let check_size lg ids =
  if Ids.size ids <> Labelled.order lg then
    raise
      (Ids.Invalid_ids
         (Printf.sprintf "%d ids for a %d-node graph" (Ids.size ids)
            (Labelled.order lg)))

let run alg lg ~ids =
  check_size lg ids;
  let ids = Ids.to_array ids in
  Array.init (Labelled.order lg) (fun v ->
      alg.Algorithm.decide (View.extract ~ids lg ~center:v ~radius:alg.radius))

let run_oblivious ob lg =
  Array.init (Labelled.order lg) (fun v ->
      ob.Algorithm.ob_decide
        (View.extract lg ~center:v ~radius:ob.Algorithm.ob_radius))

(* Gossip knowledge: every node accumulates (id -> label) bindings and
   id-keyed edges. One extra round is run beyond the horizon so that
   edges between two exactly-distance-t nodes are also learned — the
   "t +- 1" correspondence of Section 1.2. *)
module Knowledge = struct
  type 'a t = {
    nodes : (int, 'a) Hashtbl.t;
    edges : (int * int, unit) Hashtbl.t;
  }

  let create () = { nodes = Hashtbl.create 16; edges = Hashtbl.create 16 }

  let copy k = { nodes = Hashtbl.copy k.nodes; edges = Hashtbl.copy k.edges }

  let add_node k id label = Hashtbl.replace k.nodes id label

  let add_edge k a b =
    let key = if a < b then (a, b) else (b, a) in
    Hashtbl.replace k.edges key ()

  let merge ~into src =
    Hashtbl.iter (fun id label -> Hashtbl.replace into.nodes id label) src.nodes;
    Hashtbl.iter (fun e () -> Hashtbl.replace into.edges e ()) src.edges
end

type stats = {
  rounds : int;
  messages : int;
  payload_items : int;
}

let run_message_passing_general alg lg ~ids =
  check_size lg ids;
  let g = Labelled.graph lg in
  let n = Graph.order g in
  let id = Ids.to_array ids in
  let messages = ref 0 and payload_items = ref 0 in
  let state =
    Array.init n (fun v ->
        let k = Knowledge.create () in
        Knowledge.add_node k id.(v) (Labelled.label lg v);
        k)
  in
  let rounds = alg.Algorithm.radius + 1 in
  for _round = 1 to rounds do
    (* Synchronous round: everyone reads the previous snapshots. *)
    let snapshot = Array.map Knowledge.copy state in
    for v = 0 to n - 1 do
      Array.iter
        (fun u ->
          incr messages;
          payload_items :=
            !payload_items
            + Hashtbl.length snapshot.(u).Knowledge.nodes
            + Hashtbl.length snapshot.(u).Knowledge.edges;
          Knowledge.merge ~into:state.(v) snapshot.(u);
          Knowledge.add_edge state.(v) id.(v) id.(u))
        (Graph.neighbours g v)
    done
  done;
  let outputs = Array.init n (fun v ->
      let k = state.(v) in
      (* Rebuild the known graph, indexing known ids canonically. *)
      let known_ids =
        Hashtbl.fold (fun i _ acc -> i :: acc) k.Knowledge.nodes []
        |> List.sort compare |> Array.of_list
      in
      let index_of = Hashtbl.create (2 * Array.length known_ids) in
      Array.iteri (fun i x -> Hashtbl.replace index_of x i) known_ids;
      let edges =
        Hashtbl.fold
          (fun (a, b) () acc ->
            (Hashtbl.find index_of a, Hashtbl.find index_of b) :: acc)
          k.Knowledge.edges []
      in
      let known_graph = Graph.of_edges ~n:(Array.length known_ids) edges in
      let labels =
        Array.map (fun i -> Hashtbl.find k.Knowledge.nodes i) known_ids
      in
      let known_lg = Labelled.make known_graph labels in
      let center = Hashtbl.find index_of id.(v) in
      let view =
        View.extract ~ids:known_ids known_lg ~center ~radius:alg.Algorithm.radius
      in
      alg.Algorithm.decide view)
  in
  (outputs, { rounds; messages = !messages; payload_items = !payload_items })

let run_message_passing alg lg ~ids = fst (run_message_passing_general alg lg ~ids)

let run_message_passing_stats = run_message_passing_general
