lib/local/symmetry.mli: Graph Ids Labelled Locald_graph Protocol
