lib/local/runner.ml: Algorithm Array Graph Hashtbl Ids Labelled List Locald_graph Printf View
