lib/local/cover.mli: Format Labelled Locald_graph
