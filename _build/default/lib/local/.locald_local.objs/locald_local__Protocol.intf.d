lib/local/protocol.mli: Ids Labelled Locald_graph
