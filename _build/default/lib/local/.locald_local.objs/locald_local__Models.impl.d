lib/local/models.ml: Algorithm Array Format Graph Hashtbl Ids Labelled List Locald_graph Oblivious Random Runner View
