lib/local/randomized.mli: Ids Labelled Locald_graph Random View
