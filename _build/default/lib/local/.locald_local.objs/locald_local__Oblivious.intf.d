lib/local/oblivious.mli: Algorithm Ids Labelled Locald_graph Random
