lib/local/runner.mli: Algorithm Ids Labelled Locald_graph
