lib/local/models.mli: Algorithm Labelled Locald_graph Oblivious Random View
