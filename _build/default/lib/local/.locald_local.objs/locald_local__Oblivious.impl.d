lib/local/oblivious.ml: Array Ids Labelled Locald_graph Runner Seq
