lib/local/cover.ml: Array Format Graph Hashtbl Labelled List Locald_graph Stdlib
