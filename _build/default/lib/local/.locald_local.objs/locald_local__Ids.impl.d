lib/local/ids.ml: Array Format Fun Hashtbl List Printf Random Seq
