lib/local/ids.mli: Format Random Seq
