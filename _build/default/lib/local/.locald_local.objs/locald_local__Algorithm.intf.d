lib/local/algorithm.mli: Locald_graph View
