lib/local/protocol.ml: Array Graph Ids Labelled Locald_graph Printf
