lib/local/algorithm.ml: Locald_graph View
