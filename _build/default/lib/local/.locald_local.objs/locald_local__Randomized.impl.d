lib/local/randomized.ml: Array Ids Labelled Locald_graph Random View
