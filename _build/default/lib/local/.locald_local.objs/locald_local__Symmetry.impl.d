lib/local/symmetry.ml: Array Gen Graph Hashtbl Ids Labelled List Locald_graph Option Protocol
