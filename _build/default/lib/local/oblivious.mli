(** Checking Id-obliviousness empirically.

    An algorithm is Id-oblivious when its node outputs are invariant
    under every reassignment of identifiers. For small instances this
    can be checked exhaustively over a bounded identifier window; in
    general it is sampled. A single witness of variance proves an
    algorithm is *not* oblivious (that is the content of Theorem 1:
    some properties force the outputs to depend on the assignment). *)

open Locald_graph

type witness = {
  node : int;
  ids_a : Ids.t;
  ids_b : Ids.t;
}
(** A node whose output differs under two assignments. *)

val find_variance_sampled :
  rng:Random.State.t ->
  trials:int ->
  regime:Ids.regime ->
  ('a, 'o) Algorithm.t ->
  'a Labelled.t ->
  witness option
(** Sample assignment pairs valid under the regime and look for an
    output that changes. [None] means no variance was observed (the
    algorithm behaved obliviously on this instance). *)

val find_variance_exhaustive :
  bound:int ->
  ('a, 'o) Algorithm.t ->
  'a Labelled.t ->
  witness option
(** Compare the outputs under {e every} injective assignment into
    [0 .. bound-1] against the first one. Exponential; use only on
    small instances. *)
