(** Symmetry breaking with identifiers: Cole-Vishkin colour reduction
    on directed cycles.

    The counterpoint to the paper's decision separations: here
    identifiers are used exactly the way Section 1.3 describes as
    typical — as symmetry breakers whose distinctness is everything
    and whose magnitude is (almost) nothing. Starting from the
    identifiers as colours, each iteration shrinks the palette from
    [b] bits to [O(log b)] bits by comparing with the successor's
    colour bitwise; after [O(log* B)] iterations the palette is below
    6, and three final rounds reduce it to 3. No Id-oblivious
    algorithm can do any of this (it cannot even 2-colour a single
    edge — see the models tour example). *)

open Locald_graph

type state = private {
  my_id : int;
  succ_id : int;
  colour : int;
  pred_colour : int option;
  succ_colour : int option;
  round_no : int;
  cv_stable_at : int option;
      (** first CV iteration after which this node's colour was below
          6 (instrumentation for the log* experiment) *)
  done_ : bool;
}

val cole_vishkin :
  cv_rounds:int -> (int, state, int * int) Protocol.t
(** The protocol. Inputs label each node with the {e identifier of its
    successor} on the cycle (the orientation, which an Id-oblivious
    algorithm could not produce); messages carry [(id, colour)].
    After [cv_rounds] bit-reduction iterations, three scheduled rounds
    eliminate colours 5, 4 and 3. [cv_rounds] must be at least
    [~2 log* B + 2] for identifier bound [B] (the tests use a safe
    margin). *)

val oriented_cycle_input : n:int -> ids:Ids.t -> int Labelled.t
(** The standard oriented cycle instance: node [v]'s successor is
    [(v + 1) mod n]. *)

val colours : state array -> int array

val is_proper_colouring : Graph.t -> int array -> k:int -> bool

val run_on_cycle :
  ?cv_rounds:int -> n:int -> ids:Ids.t -> unit -> int array * Protocol.outcome * int
(** Build the oriented [n]-cycle, run the protocol, return the final
    colours, the outcome and the worst-case CV stabilisation
    iteration (the measured log* quantity). *)

(** {1 Luby's randomised MIS}

    The randomised counterpart: symmetry is broken by private coins
    instead of identifiers (identifiers only arbitrate ties). Each
    round every undecided node draws a priority; strict local maxima
    join the independent set and their neighbours drop out —
    [O(log n)] rounds with high probability. *)

type mis_state = private {
  mid : int;
  rng_seed : int;
  priority : int;
  status : [ `Active | `In_mis | `Out ];
  mis_rounds : int;
}

val luby_mis : seed:int -> (unit, mis_state, int * int * bool) Protocol.t
(** Messages carry [(id, priority, joined)]. *)

val run_luby : seed:int -> max_rounds:int -> Graph.t -> ids:Ids.t ->
  int array * Protocol.outcome
(** Returns the 0/1 membership labelling. *)
