(** The comparison models of Section 1.3: OI (order-invariant
    algorithms) and PO (port numbering and orientation).

    These are not needed for the paper's theorems; they support the
    related-work examples — e.g. that producing an edge orientation or
    2-colouring a 1-regular graph is trivial in LOCAL and PO,
    impossible for an Id-oblivious algorithm, and that OI sits strictly
    between Id-oblivious and LOCAL. *)

open Locald_graph

(** {1 OI: order-invariant algorithms} *)

val order_invariant :
  name:string -> radius:int -> ('a View.t -> 'o) -> ('a, 'o) Algorithm.t
(** Builds an order-invariant algorithm: before deciding, the view's
    identifiers are replaced by their ranks within the view, so the
    output can depend only on the relative order of identifiers. *)

val find_order_variance :
  rng:Random.State.t ->
  trials:int ->
  ('a, 'o) Algorithm.t ->
  'a Labelled.t ->
  Oblivious.witness option
(** Look for two order-isomorphic assignments (one is a monotone
    re-embedding of the other) under which some output differs — a
    witness that the algorithm is not order-invariant. *)

(** {1 PO: port numbering and orientation} *)

type 'a po_edge = {
  port : int;           (** local port of the edge at the centre *)
  remote_port : int;    (** the edge's port at the other endpoint *)
  outward : bool;       (** the edge's orientation leaves the centre *)
  remote_label : 'a;
}

type 'a po_view = {
  center_label : 'a;
  incident : 'a po_edge list;  (** sorted by [port] *)
}

type ('a, 'o) po_algorithm = {
  po_name : string;
  po_decide : 'a po_view -> 'o;
}

val run_po :
  ('a, 'o) po_algorithm ->
  'a Labelled.t ->
  oriented:(int * int) list ->
  'o array
(** Run a radius-1 PO algorithm. Ports are the positions in the
    (sorted) adjacency lists; [oriented] lists each edge once as
    [(tail, head)].
    @raise Graph.Invalid_graph if [oriented] is not exactly an
    orientation of the edge set. *)
