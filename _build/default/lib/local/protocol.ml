open Locald_graph

type ('i, 's, 'm) t = {
  proto_name : string;
  init : id:int -> degree:int -> input:'i -> 's;
  round : 's -> received:'m array -> 's;
  emit : 's -> 'm;
  halted : 's -> bool;
}

type outcome = {
  rounds_used : int;
  all_halted : bool;
}

let run ~max_rounds proto lg ~ids =
  let g = Labelled.graph lg in
  let n = Graph.order g in
  if Ids.size ids <> n then
    raise (Ids.Invalid_ids (Printf.sprintf "%d ids for %d nodes" (Ids.size ids) n));
  let state =
    Array.init n (fun v ->
        proto.init ~id:(Ids.assign ids v) ~degree:(Graph.degree g v)
          ~input:(Labelled.label lg v))
  in
  let everyone_halted () = Array.for_all proto.halted state in
  let rounds = ref 0 in
  while (not (everyone_halted ())) && !rounds < max_rounds do
    incr rounds;
    let outbox = Array.map proto.emit state in
    let next =
      Array.init n (fun v ->
          if proto.halted state.(v) then state.(v)
          else
            let received = Array.map (fun u -> outbox.(u)) (Graph.neighbours g v) in
            proto.round state.(v) ~received)
    in
    Array.blit next 0 state 0 n
  done;
  (state, { rounds_used = !rounds; all_halted = everyone_halted () })
