type symbol = int
type state = int
type move = Left | Right

type action =
  | Step of { next : state; write : symbol; move : move }
  | Halt of int

type t = {
  name : string;
  num_states : int;
  num_symbols : int;
  delta : action array array;
}

exception Invalid_machine of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid_machine s)) fmt

let make ~name ~num_states ~num_symbols f =
  if num_states < 1 then invalid "%s: need at least one state" name;
  if num_symbols < 1 then invalid "%s: need at least one symbol" name;
  let delta =
    Array.init num_states (fun q ->
        Array.init num_symbols (fun s ->
            match f q s with
            | Step { next; write; move } as a ->
                if next < 0 || next >= num_states then
                  invalid "%s: delta(%d,%d) targets bad state %d" name q s next;
                if write < 0 || write >= num_symbols then
                  invalid "%s: delta(%d,%d) writes bad symbol %d" name q s write;
                ignore move;
                a
            | Halt o as a ->
                if o <> 0 && o <> 1 then
                  invalid "%s: delta(%d,%d) halts with output %d not in {0,1}"
                    name q s o;
                a))
  in
  { name; num_states; num_symbols; delta }

let action m q s = m.delta.(q).(s)

let movers m wanted =
  let acc = ref [] in
  Array.iter
    (Array.iter (function
      | Step { next; move; _ } when move = wanted ->
          if not (List.mem next !acc) then acc := next :: !acc
      | Step _ | Halt _ -> ()))
    m.delta;
  List.sort compare !acc

let right_movers m = movers m Right
let left_movers m = movers m Left

let reenters_start m =
  Array.exists
    (Array.exists (function
      | Step { next; _ } -> next = 0
      | Halt _ -> false))
    m.delta

let halt_outputs m =
  let acc = ref [] in
  Array.iter
    (Array.iter (function
      | Halt o -> if not (List.mem o !acc) then acc := o :: !acc
      | Step _ -> ()))
    m.delta;
  List.sort compare !acc

let encode m =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "%s[%d;%d]" m.name m.num_states m.num_symbols);
  Array.iteri
    (fun q row ->
      Array.iteri
        (fun s a ->
          let repr =
            match a with
            | Step { next; write; move } ->
                Printf.sprintf "%d,%d:S%d.%d%c" q s next write
                  (match move with Left -> 'L' | Right -> 'R')
            | Halt o -> Printf.sprintf "%d,%d:H%d" q s o
          in
          Buffer.add_char buf ' ';
          Buffer.add_string buf repr)
        row)
    m.delta;
  Buffer.contents buf

let decode s =
  (* Format: NAME[STATES;SYMBOLS] then one " q,s:ACTION" per pair,
     where ACTION is Sn.wL / Sn.wR / Ho. *)
  try
    let header, rest =
      match String.index_opt s ' ' with
      | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
      | None -> (s, "")
    in
    let bracket = String.index header '[' in
    let semi = String.index header ';' in
    let close = String.index header ']' in
    let name = String.sub header 0 bracket in
    let num_states =
      int_of_string (String.sub header (bracket + 1) (semi - bracket - 1))
    in
    let num_symbols = int_of_string (String.sub header (semi + 1) (close - semi - 1)) in
    let table = Hashtbl.create 16 in
    String.split_on_char ' ' rest
    |> List.filter (fun x -> x <> "")
    |> List.iter (fun entry ->
           match String.split_on_char ':' entry with
           | [ key; action ] ->
               let q, sym =
                 match String.split_on_char ',' key with
                 | [ q; sym ] -> (int_of_string q, int_of_string sym)
                 | _ -> failwith "bad key"
               in
               let parsed =
                 if action.[0] = 'H' then
                   Halt (int_of_string (String.sub action 1 (String.length action - 1)))
                 else begin
                   let dot = String.index action '.' in
                   let next = int_of_string (String.sub action 1 (dot - 1)) in
                   let move_char = action.[String.length action - 1] in
                   let write =
                     int_of_string
                       (String.sub action (dot + 1) (String.length action - dot - 2))
                   in
                   let move =
                     match move_char with
                     | 'L' -> Left
                     | 'R' -> Right
                     | _ -> failwith "bad move"
                   in
                   Step { next; write; move }
                 end
               in
               Hashtbl.replace table (q, sym) parsed
           | _ -> failwith "bad entry");
    Ok
      (make ~name ~num_states ~num_symbols (fun q sym ->
           match Hashtbl.find_opt table (q, sym) with
           | Some a -> a
           | None -> failwith "missing transition"))
  with _ -> Error (Printf.sprintf "unparsable machine encoding: %s" s)

let equal a b =
  a.num_states = b.num_states && a.num_symbols = b.num_symbols && a.delta = b.delta

let pp ppf m = Format.fprintf ppf "%s" (encode m)
