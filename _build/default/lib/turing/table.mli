(** Execution tables: the grid [T] of Section 3.2.

    Row [i] is the configuration before step [i+1]; the machine starts
    on a blank tape with the head on the top-left cell (the pivot
    column). A machine halting after [s] transitions yields rows
    [0 .. s+1], the last row carrying the absorbing [Halted] marker
    with the machine's output. Because [Halted] is absorbing and
    unexplored cells stay blank, a table can be padded to any larger
    square (in particular to a power-of-two side for the pyramid of
    Appendix A) while remaining locally consistent. *)

type t = private {
  machine : Machine.t;
  side : int;                 (** the table is [side * side] *)
  cells : Cell.t array array; (** [cells.(row).(col)], row 0 on top *)
  steps : int;                (** transitions before halting *)
  output : int;               (** the machine's output *)
}

val of_machine : fuel:int -> Machine.t -> (t, Exec.outcome) result
(** Runs the machine and lays out the square table (side
    [steps + 2]). [Error] carries the non-halting outcome. *)

val pad_to : t -> int -> t
(** [pad_to t side] pads with blank columns and repeated halting rows.
    @raise Graph.Invalid_graph if [side] is smaller than the current side. *)

val pad_to_power_of_two : t -> t

val next_power_of_two : int -> int

val cell : t -> row:int -> col:int -> Cell.t

val window : t -> row:int -> col:int -> w:int -> h:int -> Cell.t array array
(** The sub-grid with top-left corner [(row, col)]; cells beyond the
    table are taken as blank (no-head) continuations.
    @raise Graph.Invalid_graph if the window does not fit vertically. *)

(** {1 Validity of candidate tables}

    These checks implement the "full execution table" side of the
    Appendix A verification: the grid is a genuine, complete, halted
    run of the machine. *)

type check_error = { row : int; col : int; reason : string }

val validate : Machine.t -> Cell.t array array -> check_error list
(** Empty iff the grid is a valid complete halted execution table
    (possibly padded): correct initial row, sealed left/right borders,
    local rules everywhere, halted (no live head in the) bottom row,
    and a [Halted] cell present. *)

val halted_output : Cell.t array array -> int option
(** The output carried by a [Halted] cell of the bottom row, if any. *)

val pp : Format.formatter -> t -> unit
