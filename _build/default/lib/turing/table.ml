type t = {
  machine : Machine.t;
  side : int;
  cells : Cell.t array array;
  steps : int;
  output : int;
}

let invalid fmt =
  Format.kasprintf (fun s -> raise (Locald_graph.Graph.Invalid_graph s)) fmt

let row_of_config side (c : Exec.config) =
  Array.init side (fun j ->
      let sym = Exec.tape_cell c j in
      let head = if j = c.head then Cell.Head c.state else Cell.No_head in
      { Cell.sym; head })

let of_machine ~fuel m =
  match Exec.trace ~fuel m with
  | _, (Exec.Out_of_fuel _ as o) | _, (Exec.Crashed _ as o) -> Error o
  | configs, Exec.Halted { output; steps } ->
      let side = steps + 2 in
      let rows = List.map (row_of_config side) configs in
      let last_config = List.nth configs steps in
      let halted_row =
        Array.init side (fun j ->
            let sym = Exec.tape_cell last_config j in
            let head =
              if j = last_config.head then Cell.Halted output else Cell.No_head
            in
            { Cell.sym; head })
      in
      let cells = Array.of_list (rows @ [ halted_row ]) in
      Ok { machine = m; side; cells; steps; output }

let pad_to t side =
  if side < t.side then invalid "table: cannot pad %d down to %d" t.side side;
  if side = t.side then t
  else begin
    let pad_row row =
      Array.init side (fun j -> if j < t.side then row.(j) else Cell.blank)
    in
    let last = pad_row t.cells.(t.side - 1) in
    let cells =
      Array.init side (fun i -> if i < t.side then pad_row t.cells.(i) else last)
    in
    { t with side; cells }
  end

let next_power_of_two n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

let pad_to_power_of_two t = pad_to t (next_power_of_two t.side)

let cell t ~row ~col =
  if row < 0 || row >= t.side || col < 0 || col >= t.side then
    invalid "table: cell (%d,%d) outside %dx%d" row col t.side t.side;
  t.cells.(row).(col)

let window t ~row ~col ~w ~h =
  if row < 0 || col < 0 || row + h > t.side then
    invalid "table: window (%d,%d)+%dx%d does not fit" row col w h;
  Array.init h (fun i ->
      Array.init w (fun j ->
          if col + j < t.side then t.cells.(row + i).(col + j) else Cell.blank))

type check_error = { row : int; col : int; reason : string }

let validate m cells =
  let errors = ref [] in
  let bad row col reason = errors := { row; col; reason } :: !errors in
  let h = Array.length cells in
  if h < 2 then bad 0 0 "table too small"
  else begin
    let w = Array.length cells.(0) in
    Array.iteri
      (fun i row -> if Array.length row <> w then bad i 0 "ragged table")
      cells;
    if !errors = [] then begin
      (* Initial row: head in state 0 on the leftmost cell of a blank tape. *)
      Array.iteri
        (fun j (c : Cell.t) ->
          let expected =
            if j = 0 then { Cell.sym = 0; head = Cell.Head 0 } else Cell.blank
          in
          if not (Cell.equal c expected) then bad 0 j "bad initial row")
        cells.(0);
      (* Local rules with sealed borders. *)
      List.iter
        (fun (v : Rules.violation) -> bad v.row v.col v.reason)
        (Rules.check_grid m ~entries_allowed:false cells);
      (* Halted bottom row. *)
      if not (Rules.bottom_border_natural cells) then
        bad (h - 1) 0 "live head in the bottom row";
      let has_halt =
        Array.exists
          (fun (c : Cell.t) ->
            match c.head with Cell.Halted _ -> true | _ -> false)
          cells.(h - 1)
      in
      if not has_halt then bad (h - 1) 0 "no halting marker in the bottom row"
    end
  end;
  List.rev !errors

let halted_output cells =
  let h = Array.length cells in
  if h = 0 then None
  else
    Array.fold_left
      (fun acc (c : Cell.t) ->
        match (acc, c.head) with
        | Some _, _ -> acc
        | None, Cell.Halted o -> Some o
        | None, _ -> None)
      None
      cells.(h - 1)

let pp ppf t =
  Format.fprintf ppf "@[<v>table of %s (steps=%d, output=%d, side=%d)" t.machine.name
    t.steps t.output t.side;
  Array.iter
    (fun row ->
      Format.fprintf ppf "@ ";
      Array.iter (fun c -> Format.fprintf ppf "%4s" (Cell.to_string c)) row)
    t.cells;
  Format.fprintf ppf "@]"
