(** Cells of an execution table.

    A cell records the tape symbol and whether the head is on it — in a
    live state, or halted with its output. [Halted] is absorbing: once
    the machine halts, subsequent rows repeat unchanged, which is what
    makes padded tables (Appendix A's power-of-two assumption) locally
    consistent. *)

type head = No_head | Head of Machine.state | Halted of int

type t = { sym : Machine.symbol; head : head }

val blank : t
val equal : t -> t -> bool
val compare : t -> t -> int
val has_live_head : t -> bool
val has_any_head : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
