let incoming_from_left m = function
  | None -> None
  | Some (c : Cell.t) -> (
      match c.head with
      | Cell.No_head | Cell.Halted _ -> None
      | Cell.Head p -> (
          match Machine.action m p c.sym with
          | Machine.Step { next; move = Machine.Right; _ } -> Some next
          | Machine.Step _ | Machine.Halt _ -> None))

let incoming_from_right m = function
  | None -> None
  | Some (c : Cell.t) -> (
      match c.head with
      | Cell.No_head | Cell.Halted _ -> None
      | Cell.Head p -> (
          match Machine.action m p c.sym with
          | Machine.Step { next; move = Machine.Left; _ } -> Some next
          | Machine.Step _ | Machine.Halt _ -> None))

let successor m ~left ~here ~right =
  let (stay : Cell.t) =
    match (here : Cell.t).head with
    | Cell.Halted o -> { here with head = Cell.Halted o }
    | Cell.No_head -> { here with head = Cell.No_head }
    | Cell.Head q -> (
        match Machine.action m q here.sym with
        | Machine.Halt o -> { here with head = Cell.Halted o }
        | Machine.Step { write; _ } -> { sym = write; head = Cell.No_head })
  in
  let arrivals =
    List.filter_map Fun.id
      [ incoming_from_left m left; incoming_from_right m right ]
  in
  match (stay.head, arrivals) with
  | _, [] -> Some stay
  | Cell.No_head, [ q ] -> Some { stay with head = Cell.Head q }
  | (Cell.Head _ | Cell.Halted _), _ :: _ -> None (* collision with a staying head *)
  | Cell.No_head, _ :: _ :: _ -> None (* two heads converge *)

let explained_by_entry m ~side ~(expected : Cell.t) ~(actual : Cell.t) =
  let movers =
    match side with `Left -> Machine.right_movers m | `Right -> Machine.left_movers m
  in
  match (expected.head, actual.head) with
  | Cell.No_head, Cell.Head q -> actual.sym = expected.sym && List.mem q movers
  | _, _ -> false

let row_successor m ?left_entry ?right_entry row =
  let w = Array.length row in
  let cell j = if j < 0 || j >= w then None else Some row.(j) in
  let exception Collision in
  try
    let next =
      Array.init w (fun j ->
          match successor m ~left:(cell (j - 1)) ~here:row.(j) ~right:(cell (j + 1)) with
          | None -> raise Collision
          | Some c -> c)
    in
    let enter j q =
      match (next.(j) : Cell.t).head with
      | Cell.No_head -> next.(j) <- { (next.(j)) with head = Cell.Head q }
      | Cell.Head _ | Cell.Halted _ -> raise Collision
    in
    Option.iter (enter 0) left_entry;
    Option.iter (enter (w - 1)) right_entry;
    Some next
  with Collision -> None

type violation = { row : int; col : int; reason : string }

let check_grid m ~entries_allowed cells =
  let h = Array.length cells in
  let violations = ref [] in
  let bad row col reason = violations := { row; col; reason } :: !violations in
  for i = 0 to h - 2 do
    let row = cells.(i) in
    let w = Array.length row in
    if Array.length cells.(i + 1) <> w then bad (i + 1) 0 "ragged grid"
    else
      for j = 0 to w - 1 do
        let cell k = if k < 0 || k >= w then None else Some row.(k) in
        match successor m ~left:(cell (j - 1)) ~here:row.(j) ~right:(cell (j + 1)) with
        | None -> bad i j "head collision"
        | Some expected ->
            let actual = cells.(i + 1).(j) in
            if not (Cell.equal expected actual) then
              if
                entries_allowed && j = 0
                && explained_by_entry m ~side:`Left ~expected ~actual
              then ()
              else if
                entries_allowed && j = w - 1 && w > 1
                && explained_by_entry m ~side:`Right ~expected ~actual
              then ()
              else bad (i + 1) j "cell does not follow from the row above"
      done
  done;
  List.rev !violations

let column side cells =
  Array.map
    (fun (row : Cell.t array) ->
      match side with `Left -> row.(0) | `Right -> row.(Array.length row - 1))
    cells

let border_natural m side cells =
  let h = Array.length cells in
  let col = column side cells in
  (* No exits. *)
  let no_exit =
    Array.for_all
      (fun (c : Cell.t) ->
        match c.head with
        | Cell.No_head | Cell.Halted _ -> true
        | Cell.Head q -> (
            match Machine.action m q c.sym with
            | Machine.Step { move; _ } ->
                (match (side, move) with
                | `Left, Machine.Left | `Right, Machine.Right -> false
                | _ -> true)
            | Machine.Halt _ -> true))
      col
  in
  (* No entries: the sealed successor of the border column matches. *)
  let no_entry =
    let ok = ref true in
    for i = 0 to h - 2 do
      let row = cells.(i) in
      let w = Array.length row in
      let j = match side with `Left -> 0 | `Right -> w - 1 in
      let cell k = if k < 0 || k >= w then None else Some row.(k) in
      (match successor m ~left:(cell (j - 1)) ~here:row.(j) ~right:(cell (j + 1)) with
      | None -> ok := false
      | Some expected ->
          if not (Cell.equal expected cells.(i + 1).(j)) then ok := false)
    done;
    !ok
  in
  no_exit && no_entry

let left_border_natural m cells = border_natural m `Left cells
let right_border_natural m cells = border_natural m `Right cells

let bottom_border_natural cells =
  let h = Array.length cells in
  h > 0 && Array.for_all (fun c -> not (Cell.has_live_head c)) cells.(h - 1)

let reconstruct m ~top ~left ~right ~height =
  let w = Array.length top in
  let get (col : Cell.t array option) i = Option.map (fun c -> c.(i)) col in
  let consistent_border ~side ~expected ~given =
    match given with
    | None -> Some expected
    | Some actual ->
        if Cell.equal expected actual then Some actual
        else if explained_by_entry m ~side ~expected ~actual then Some actual
        else None
  in
  let exception Inconsistent in
  try
    let rows = Array.make height top in
    (* The given border columns must agree with the top row. *)
    (match get left 0 with
    | Some c when not (Cell.equal c top.(0)) -> raise Inconsistent
    | _ -> ());
    (match get right 0 with
    | Some c when not (Cell.equal c top.(w - 1)) -> raise Inconsistent
    | _ -> ());
    for i = 0 to height - 2 do
      let row = rows.(i) in
      let cell k = if k < 0 || k >= w then None else Some row.(k) in
      let next =
        Array.init w (fun j ->
            match
              successor m ~left:(cell (j - 1)) ~here:row.(j) ~right:(cell (j + 1))
            with
            | None -> raise Inconsistent
            | Some c -> c)
      in
      (match consistent_border ~side:`Left ~expected:next.(0) ~given:(get left (i + 1)) with
      | None -> raise Inconsistent
      | Some c -> next.(0) <- c);
      (match
         consistent_border ~side:`Right ~expected:next.(w - 1) ~given:(get right (i + 1))
       with
      | None -> raise Inconsistent
      | Some c -> next.(w - 1) <- c);
      rows.(i + 1) <- next
    done;
    Some rows
  with Inconsistent -> None
