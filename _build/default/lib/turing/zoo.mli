(** A library of concrete Turing machines used by the examples, tests
    and experiments. All machines respect the semi-infinite tape (the
    head never falls off the left end). *)

val halt_now : int -> Machine.t
(** Halts immediately with the given output (0 steps). *)

val walk : steps:int -> output:int -> Machine.t
(** Walks right writing ones for [steps] transitions, then halts. The
    family used to defeat fuel-bounded Id-oblivious candidates: a
    candidate that simulates for [F] steps is fooled by
    [walk ~steps:(F+1)]. *)

val two_faced : steps:int -> real:int -> fake:int -> Machine.t
(** Behaves like [walk ~steps ~output:real] on the blank tape, but its
    transition table also contains a (never fired) [Halt fake] branch.
    Consequently the fragment collection [C] contains windows showing a
    halt with output [fake] — the obfuscation at the heart of the
    Section 3 separation. *)

val zigzag : half:int -> output:int -> Machine.t
(** Walks right [half] cells, walks back, halts; exercises
    left-moving transitions (and hence right-entry fragments). *)

val sweeper : width:int -> sweeps:int -> output:int -> Machine.t
(** Lays out markers at cells 0 and [width], then shuttles between
    them [sweeps] times before halting at the left marker — execution
    tables with long diagonal stripes. Runs for
    [Theta(width * sweeps)] steps. *)

val binary_counter : bits:int -> Machine.t
(** Counts through all [2^bits] values of a binary counter, then halts
    with output 0; a machine with a genuinely two-dimensional
    execution table. Runs for [Theta(2^bits * bits)] steps. *)

val diverge_right : Machine.t
(** Moves right forever. *)

val diverge_bounce : Machine.t
(** Bounces between cells 0 and 1 forever. *)

val counter_diverge : Machine.t
(** Increments a binary counter forever (rich diverging table). *)

val halting : unit -> Machine.t list
(** A representative selection of halting machines. *)

val diverging : unit -> Machine.t list

val all : unit -> Machine.t list
