(** Table fragments and the fragment collection [C(M, r)] (Section 3.2).

    A fragment is a [w * h] cell grid every window of which is
    consistent with the machine's transition function, with heads
    allowed to enter and leave at the boundary. The collection [C]
    contains every syntactically possible fragment; gluing them all to
    the pivot is what prevents an Id-oblivious algorithm from learning
    anything about the execution that it could not compute itself.

    Exact enumeration is exponential in [w]; {!enumerate} therefore
    takes caps and reports truncation, and {!of_windows} provides the
    sub-collection of fragments that actually occur in a given real
    table (enough for the coverage experiments; see DESIGN.md,
    substitutions). *)

type side = Top | Bottom | Left | Right

type t = {
  cells : Cell.t array array;  (** [cells.(row).(col)] *)
  forced : side list;
      (** sides treated as non-natural regardless of content — the
          connectivity fix of Section 3.2 *)
}

val width : t -> int
val height : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool

val is_consistent : Machine.t -> t -> bool
(** All windows satisfy the local rules, boundary entries allowed. *)

val natural_sides : Machine.t -> t -> side list
(** The sides that are natural (Section 3.2), taking [forced] into
    account. The top row is never natural. *)

val non_natural_cells : Machine.t -> t -> (int * int) list
(** Coordinates [(row, col)] of the cells lying on a non-natural
    border; these are the cells glued to the pivot. *)

val border_connected : Machine.t -> t -> bool
(** Do the non-natural border cells induce a connected subgrid? True
    for every fragment produced by {!connectivity_fix}. *)

val connectivity_fix : Machine.t -> t -> t list
(** The fragment itself, or — when exactly the top and bottom rows are
    non-natural — its two side-forced variants. *)

type enumeration = {
  fragments : t list;
  truncated : bool;   (** the cap was hit; the collection is partial *)
  explored : int;     (** candidates examined *)
}

val enumerate :
  ?include_start_state:bool ->
  ?max_heads_per_row:int ->
  ?cap:int ->
  Machine.t ->
  w:int ->
  h:int ->
  enumeration
(** All consistent fragments (after {!connectivity_fix}), deduplicated.
    [max_heads_per_row] bounds the heads placed on the seed (top) row
    (default 1 — every window of a genuine single-head execution obeys
    this); [cap] bounds the number of fragments (default 100_000).
    State-0 heads are excluded unless [include_start_state] is set:
    their absence keeps the pivot cell locally recognisable. *)

val of_windows : Machine.t -> Table.t -> w:int -> h:int -> t list
(** The fragments occurring as [w * h] windows of the given (padded)
    table, deduplicated and connectivity-fixed. *)

val of_cells_windows : Machine.t -> Cell.t array array -> w:int -> h:int -> t list
(** Same, over a raw (possibly truncated, non-halted) cell grid — used
    by the neighbourhood generator [B], which must not presuppose that
    the machine halts. *)

val fake_halts : Machine.t -> w:int -> h:int -> t list
(** Fragments exhibiting an already-halted head with each output in
    [{0, 1}] on each column and symbol: the gluing of these is what
    prevents "grep for a halting cell" from deciding the property. *)

val contains_start_state : t -> bool
(** Some cell carries a state-0 head (such fragments are filtered out
    before gluing: the pivot must stay unique). *)

val reconstructible : Machine.t -> t -> bool
(** The Border property: reconstructing the fragment from its top row
    and non-natural side columns yields the fragment back. *)

val pp : Format.formatter -> t -> unit
