(** Fuelled execution of Turing machines.

    Execution is always bounded by explicit fuel: the library must stay
    total even on diverging machines (property (P3) hinges on the
    neighbourhood generator halting on all inputs). *)

type config = {
  tape : int array;  (** cells [0 .. len-1]; cells beyond are blank *)
  head : int;
  state : Machine.state;
}

val initial : config
(** Blank tape, head on cell 0 (the pivot column), state 0. *)

type step_result =
  | Stepped of config
  | Halted_now of int   (** output *)
  | Fell_off_left
      (** The head tried to move left of cell 0. The zoo machines
          never do this; it is reported rather than silently clamped. *)

val step : Machine.t -> config -> step_result

type outcome =
  | Halted of { output : int; steps : int }
      (** [steps] transitions were applied before the halting action
          was read; the execution table has [steps + 1] rows. *)
  | Out_of_fuel of config
  | Crashed of { steps : int }  (** fell off the left end *)

val run : fuel:int -> Machine.t -> outcome

val trace : fuel:int -> Machine.t -> config list * outcome
(** All configurations visited (starting with {!initial}), paired with
    the outcome. For [Halted { steps; _ }] the list has [steps + 1]
    configurations. *)

val tape_cell : config -> int -> int
(** Tape content at a cell, blank beyond the explored prefix. *)

val max_head_excursion : config list -> int
(** Largest head position over a trace. *)
