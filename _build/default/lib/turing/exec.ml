type config = {
  tape : int array;
  head : int;
  state : Machine.state;
}

let initial = { tape = [||]; head = 0; state = 0 }

let tape_cell c i = if i < Array.length c.tape then c.tape.(i) else 0

type step_result =
  | Stepped of config
  | Halted_now of int
  | Fell_off_left

let write_cell tape i v =
  let tape =
    if i < Array.length tape then Array.copy tape
    else begin
      let t = Array.make (i + 1) 0 in
      Array.blit tape 0 t 0 (Array.length tape);
      t
    end
  in
  tape.(i) <- v;
  tape

let step m c =
  match Machine.action m c.state (tape_cell c c.head) with
  | Machine.Halt o -> Halted_now o
  | Machine.Step { next; write; move } ->
      let head =
        match move with Machine.Left -> c.head - 1 | Machine.Right -> c.head + 1
      in
      if head < 0 then Fell_off_left
      else Stepped { tape = write_cell c.tape c.head write; head; state = next }

type outcome =
  | Halted of { output : int; steps : int }
  | Out_of_fuel of config
  | Crashed of { steps : int }

let trace ~fuel m =
  let rec go c acc steps =
    if steps >= fuel then (List.rev (c :: acc), Out_of_fuel c)
    else
      match step m c with
      | Halted_now output -> (List.rev (c :: acc), Halted { output; steps })
      | Fell_off_left -> (List.rev (c :: acc), Crashed { steps })
      | Stepped c' -> go c' (c :: acc) (steps + 1)
  in
  go initial [] 0

let run ~fuel m = snd (trace ~fuel m)

let max_head_excursion configs =
  List.fold_left (fun acc c -> max acc c.head) 0 configs
