let halt_now output =
  Machine.make ~name:(Printf.sprintf "halt%d" output) ~num_states:1 ~num_symbols:1
    (fun _ _ -> Machine.Halt output)

let walk ~steps ~output =
  if steps < 0 then invalid_arg "Zoo.walk";
  Machine.make
    ~name:(Printf.sprintf "walk%d.%d" steps output)
    ~num_states:(steps + 1) ~num_symbols:2
    (fun q _sym ->
      if q < steps then Machine.Step { next = q + 1; write = 1; move = Machine.Right }
      else Machine.Halt output)

let two_faced ~steps ~real ~fake =
  if steps < 0 then invalid_arg "Zoo.two_faced";
  Machine.make
    ~name:(Printf.sprintf "twofaced%d.%d~%d" steps real fake)
    ~num_states:(steps + 1) ~num_symbols:2
    (fun q sym ->
      if q < steps then
        if sym = 0 then Machine.Step { next = q + 1; write = 1; move = Machine.Right }
        else Machine.Halt fake (* never fired on the blank tape *)
      else Machine.Halt real)

let zigzag ~half ~output =
  if half < 1 then invalid_arg "Zoo.zigzag";
  let k = half in
  Machine.make
    ~name:(Printf.sprintf "zigzag%d.%d" k output)
    ~num_states:(2 * k) ~num_symbols:2
    (fun q sym ->
      if q < k then Machine.Step { next = q + 1; write = 1; move = Machine.Right }
      else if q < (2 * k) - 1 then
        Machine.Step { next = q + 1; write = sym; move = Machine.Left }
      else Machine.Halt output)

(* Symbols: 0 blank, 2 left marker, 3 right marker. States: 0..width
   lay out the markers; then pairs (left_t, right_t) shuttle the head,
   counting round trips in the state index. *)
let sweeper ~width ~sweeps ~output =
  if width < 1 || sweeps < 1 then invalid_arg "Zoo.sweeper";
  let left_state t = width + 1 + (2 * t) in
  let right_state t = width + 2 + (2 * t) in
  Machine.make
    ~name:(Printf.sprintf "sweeper%dx%d.%d" width sweeps output)
    ~num_states:(width + 1 + (2 * sweeps))
    ~num_symbols:4
    (fun q sym ->
      if q = 0 then Machine.Step { next = 1; write = 2; move = Machine.Right }
      else if q < width then Machine.Step { next = q + 1; write = 0; move = Machine.Right }
      else if q = width then
        (* Drop the right marker and start the first leftward sweep. *)
        Machine.Step { next = left_state 0; write = 3; move = Machine.Left }
      else begin
        (* Decode the shuttle states. *)
        let t = (q - width - 1) / 2 in
        let going_left = (q - width - 1) mod 2 = 0 in
        if going_left then
          if sym = 2 then
            if t + 1 >= sweeps then Machine.Halt output
            else Machine.Step { next = right_state t; write = 2; move = Machine.Right }
          else Machine.Step { next = left_state t; write = sym; move = Machine.Left }
        else if sym = 3 then
          if t + 1 >= sweeps then Machine.Halt output (* unreachable; keeps delta total *)
          else Machine.Step { next = left_state (t + 1); write = 3; move = Machine.Left }
        else Machine.Step { next = right_state t; write = sym; move = Machine.Right }
      end)

(* Symbols: 0 blank/zero-bit, 1 one-bit, 2 left marker, 3 right marker.
   States: 0 .. bits+1 lay out the markers; [rewind] returns the head
   to the left marker; [inc] performs binary increment; overflow (the
   carry reaches the right marker) halts with output 0. Unreachable
   (state, symbol) pairs halt with output 1, which also enriches the
   fragment collection with fake-output windows. *)
let counter ~bits ~diverging =
  if bits < 1 then invalid_arg "Zoo.binary_counter";
  let rewind = bits + 2 in
  let inc = bits + 3 in
  Machine.make
    ~name:
      (Printf.sprintf "%s%d" (if diverging then "counter-div" else "counter") bits)
    ~num_states:(bits + 4) ~num_symbols:4
    (fun q sym ->
      if q = 0 then Machine.Step { next = 1; write = 2; move = Machine.Right }
      else if q <= bits then Machine.Step { next = q + 1; write = 0; move = Machine.Right }
      else if q = bits + 1 then
        (* Write the right marker unless diverging (then count on an
           unbounded field of zero bits). *)
        if diverging then Machine.Step { next = rewind; write = 0; move = Machine.Left }
        else Machine.Step { next = rewind; write = 3; move = Machine.Left }
      else if q = rewind then
        match sym with
        | 0 | 1 -> Machine.Step { next = rewind; write = sym; move = Machine.Left }
        | 2 -> Machine.Step { next = inc; write = 2; move = Machine.Right }
        | _ -> Machine.Halt 1
      else (* q = inc *)
        match sym with
        | 0 -> Machine.Step { next = rewind; write = 1; move = Machine.Left }
        | 1 -> Machine.Step { next = inc; write = 0; move = Machine.Right }
        | 3 -> Machine.Halt 0
        | _ -> Machine.Halt 1)

let binary_counter ~bits = counter ~bits ~diverging:false

(* No zoo machine ever re-enters state 0: the Section 3 construction
   relies on "blank cell carrying a state-0 head" being unique to the
   pivot, so state 0 must be initial-only. *)
let diverge_right =
  Machine.make ~name:"diverge-right" ~num_states:2 ~num_symbols:1 (fun _ _ ->
      Machine.Step { next = 1; write = 0; move = Machine.Right })

let diverge_bounce =
  Machine.make ~name:"diverge-bounce" ~num_states:3 ~num_symbols:2 (fun q _ ->
      match q with
      | 0 -> Machine.Step { next = 1; write = 1; move = Machine.Right }
      | 1 -> Machine.Step { next = 2; write = 1; move = Machine.Left }
      | _ -> Machine.Step { next = 1; write = 1; move = Machine.Right })

let counter_diverge = counter ~bits:2 ~diverging:true

let halting () =
  [
    halt_now 0;
    halt_now 1;
    walk ~steps:2 ~output:0;
    walk ~steps:2 ~output:1;
    walk ~steps:5 ~output:0;
    two_faced ~steps:3 ~real:0 ~fake:1;
    two_faced ~steps:3 ~real:1 ~fake:0;
    zigzag ~half:2 ~output:0;
    zigzag ~half:3 ~output:1;
    sweeper ~width:3 ~sweeps:2 ~output:0;
    binary_counter ~bits:2;
  ]

let diverging () = [ diverge_right; diverge_bounce; counter_diverge ]

let all () = halting () @ diverging ()
