type head = No_head | Head of Machine.state | Halted of int

type t = { sym : Machine.symbol; head : head }

let blank = { sym = 0; head = No_head }
let equal (a : t) b = a = b
let compare (a : t) b = compare a b
let has_live_head c = match c.head with Head _ -> true | No_head | Halted _ -> false
let has_any_head c = match c.head with No_head -> false | Head _ | Halted _ -> true

let to_string c =
  match c.head with
  | No_head -> Printf.sprintf "%d" c.sym
  | Head q -> Printf.sprintf "%d@q%d" c.sym q
  | Halted o -> Printf.sprintf "%d!%d" c.sym o

let pp ppf c = Format.pp_print_string ppf (to_string c)
