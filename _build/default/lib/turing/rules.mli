(** The local consistency rules of execution tables (Section 3.2).

    Row [i+1] of an execution table is determined cell-by-cell from row
    [i]: the successor of a cell depends only on the cell itself and
    its left and right neighbours. This is the radius-1 relation that
    makes valid executions locally checkable, and it is the relation
    the fragment collection [C(M,r)] is closed under: a fragment is any
    cell grid all of whose windows satisfy it (with heads allowed to
    enter or leave at the fragment boundary).

    A [None] neighbour means "outside the table — no head can arrive
    from there" (used at the real table's outer columns). *)

val successor :
  Machine.t ->
  left:Cell.t option ->
  here:Cell.t ->
  right:Cell.t option ->
  Cell.t option
(** The unique successor cell, or [None] if the situation is
    inconsistent (two heads colliding on the same cell). *)

val row_successor :
  Machine.t ->
  ?left_entry:Machine.state ->
  ?right_entry:Machine.state ->
  Cell.t array ->
  Cell.t array option
(** Successor of a whole row of width [w]. [left_entry] places an
    incoming head (in the given state) on column [0] — a head arriving
    from outside the fragment; [right_entry] likewise on column
    [w-1]. [None] on any collision. *)

val explained_by_entry :
  Machine.t -> side:[ `Left | `Right ] -> expected:Cell.t -> actual:Cell.t -> bool
(** [actual] differs from the sealed successor [expected] exactly by a
    head entering from outside on the given side. *)

type violation = { row : int; col : int; reason : string }

val check_grid :
  Machine.t -> entries_allowed:bool -> Cell.t array array -> violation list
(** Check every window of the grid ([cells.(row).(col)], row 0 on
    top). With [entries_allowed], a mismatch on a boundary column that
    is explained by a head entering from outside is accepted (fragment
    semantics); without, the table's outer columns must be sealed
    (real-table semantics). *)

(** {1 Natural borders} *)

val left_border_natural : Machine.t -> Cell.t array array -> bool
(** The leftmost column could appear on the leftmost column of a real
    execution table: no head ever moves to, or appears from, its
    left. *)

val right_border_natural : Machine.t -> Cell.t array array -> bool

val bottom_border_natural : Cell.t array array -> bool
(** No live (non-halted) head in the bottom row. *)

(** {1 The Border property} *)

val reconstruct :
  Machine.t ->
  top:Cell.t array ->
  left:Cell.t array option ->
  right:Cell.t array option ->
  height:int ->
  Cell.t array array option
(** Reconstruct a fragment from its non-natural borders: the top row
    (never natural) plus the left/right columns when non-natural
    ([None] = natural, i.e. sealed). Returns [None] on inconsistency.
    This realises the Border property of Section 3.2: the non-natural
    borders determine the fragment uniquely. *)
