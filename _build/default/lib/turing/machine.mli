(** Single-tape Turing machines on a semi-infinite tape.

    The machine starts in state [0] with the head on cell [0] of a
    blank tape (Section 3.2). Halting is an {!action}: reading symbol
    [s] in state [q] either performs a step or halts with an output in
    [{0, 1}] — the two outputs whose languages [L0], [L1] are
    computably inseparable (Lemma 1). *)

type symbol = int (** [0] is the blank. *)

type state = int (** [0] is the start state. *)

type move = Left | Right

type action =
  | Step of { next : state; write : symbol; move : move }
  | Halt of int  (** output, in [{0, 1}] *)

type t = private {
  name : string;
  num_states : int;
  num_symbols : int;
  delta : action array array;  (** [delta.(state).(symbol)] *)
}

exception Invalid_machine of string

val make :
  name:string -> num_states:int -> num_symbols:int ->
  (state -> symbol -> action) -> t
(** Tabulates and validates the transition function.
    @raise Invalid_machine on out-of-range targets or outputs. *)

val action : t -> state -> symbol -> action

val right_movers : t -> state list
(** States that some transition enters while moving right — the only
    states in which a head can appear from the left of a table
    fragment. Used by the fragment enumeration. *)

val left_movers : t -> state list

val reenters_start : t -> bool
(** Some transition targets state 0. The Section 3 construction
    requires machines for which this is false: a state-0 head then
    certifies the pivot cell. *)

val halt_outputs : t -> int list
(** The outputs appearing in the transition table (sorted, distinct). *)

val encode : t -> string
(** A stable textual encoding of the machine; used as the node label
    component "(M, r)" so that equality of machines is label
    equality. *)

val decode : string -> (t, string) result
(** Inverse of {!encode} (round-trips: tested). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
