type side = Top | Bottom | Left | Right

type t = {
  cells : Cell.t array array;
  forced : side list;
}

let width f = if Array.length f.cells = 0 then 0 else Array.length f.cells.(0)
let height f = Array.length f.cells

let compare (a : t) (b : t) = Stdlib.compare a b
let equal a b = compare a b = 0

let is_consistent m f = Rules.check_grid m ~entries_allowed:true f.cells = []

let natural_sides m f =
  let candidates =
    List.concat
      [
        (if Rules.left_border_natural m f.cells then [ Left ] else []);
        (if Rules.right_border_natural m f.cells then [ Right ] else []);
        (if Rules.bottom_border_natural f.cells then [ Bottom ] else []);
      ]
  in
  List.filter (fun s -> not (List.mem s f.forced)) candidates

let non_natural_cells m f =
  let naturals = natural_sides m f in
  let non_natural s = not (List.mem s naturals) in
  let w = width f and h = height f in
  let cells = Hashtbl.create 64 in
  let add r c = Hashtbl.replace cells (r, c) () in
  (* Top is never natural. *)
  for c = 0 to w - 1 do
    add 0 c
  done;
  if non_natural Bottom then
    for c = 0 to w - 1 do
      add (h - 1) c
    done;
  if non_natural Left then
    for r = 0 to h - 1 do
      add r 0
    done;
  if non_natural Right then
    for r = 0 to h - 1 do
      add r (w - 1)
    done;
  Hashtbl.fold (fun rc () acc -> rc :: acc) cells [] |> List.sort Stdlib.compare

let border_connected m f =
  match non_natural_cells m f with
  | [] -> true
  | (r0, c0) :: _ as border ->
      let members = Hashtbl.create 64 in
      List.iter (fun rc -> Hashtbl.replace members rc false) border;
      let rec dfs (r, c) =
        match Hashtbl.find_opt members (r, c) with
        | Some false ->
            Hashtbl.replace members (r, c) true;
            List.iter dfs [ (r + 1, c); (r - 1, c); (r, c + 1); (r, c - 1) ]
        | Some true | None -> ()
      in
      dfs (r0, c0);
      Hashtbl.fold (fun _ visited acc -> acc && visited) members true

let connectivity_fix m f =
  if border_connected m f then [ f ]
  else
    [ { f with forced = Left :: f.forced }; { f with forced = Right :: f.forced } ]

type enumeration = {
  fragments : t list;
  truncated : bool;
  explored : int;
}

(* Seed (top) rows: all symbol assignments with at most [max_heads]
   heads (live states or halting markers), as a lazy sequence so a
   cap can stop the walk early. State-0 heads are excluded unless
   requested: state 0 is initial-only for admissible machines and its
   absence from fragments is what makes the pivot cell locally
   recognisable (Section 3 / Gmr). *)
let seed_rows ?(include_start_state = false) machine ~w ~max_heads =
  let symbols = List.init machine.Machine.num_symbols Fun.id in
  let first_head = if include_start_state then 0 else 1 in
  let heads =
    Cell.No_head
    :: (List.init
          (machine.Machine.num_states - first_head)
          (fun q -> Cell.Head (q + first_head))
       @ [ Cell.Halted 0; Cell.Halted 1 ])
  in
  let rec build j heads_used acc : Cell.t array Seq.t =
    if j = w then Seq.return (Array.of_list (List.rev acc))
    else
      List.to_seq symbols
      |> Seq.concat_map (fun sym ->
             List.to_seq heads
             |> Seq.concat_map (fun head ->
                    let used =
                      if head = Cell.No_head then heads_used else heads_used + 1
                    in
                    if used > max_heads then Seq.empty
                    else build (j + 1) used ({ Cell.sym; head } :: acc)))
  in
  build 0 0 []

let enumerate ?include_start_state ?(max_heads_per_row = 1) ?(cap = 100_000)
    machine ~w ~h =
  (* A head entering on column 0 arrives moving right; one entering on
     column w-1 arrives moving left. *)
  let left_entry_options = None :: List.map Option.some (Machine.right_movers machine) in
  let right_entry_options =
    if w > 1 then None :: List.map Option.some (Machine.left_movers machine)
    else [ None ]
  in
  let explored = ref 0 in
  let truncated = ref false in
  let results = ref [] in
  let count = ref 0 in
  (* Expand a partial fragment (rows built top-down) by one row, trying
     every boundary-entry combination. *)
  let rec expand rows_rev remaining =
    if !count >= cap then truncated := true
    else if remaining = 0 then begin
      let cells = Array.of_list (List.rev rows_rev) in
      results := { cells; forced = [] } :: !results;
      incr count
    end
    else
      let row = List.hd rows_rev in
      List.iter
        (fun left_entry ->
          List.iter
            (fun right_entry ->
              incr explored;
              match
                Rules.row_successor machine ?left_entry ?right_entry row
              with
              | None -> ()
              | Some next -> expand (next :: rows_rev) (remaining - 1))
            right_entry_options)
        left_entry_options
  in
  let seeds = seed_rows ?include_start_state machine ~w ~max_heads:max_heads_per_row in
  Seq.iter
    (fun seed -> if !count < cap then expand [ seed ] (h - 1))
    seeds;
  let fragments =
    !results
    |> List.concat_map (connectivity_fix machine)
    |> List.sort_uniq compare
  in
  { fragments; truncated = !truncated; explored = !explored }

let of_cells_windows machine cells ~w ~h =
  let rows = Array.length cells in
  let cols = if rows = 0 then 0 else Array.length cells.(0) in
  let acc = ref [] in
  for row = 0 to rows - h do
    for col = 0 to cols - 1 do
      (* Windows may overhang the right edge (blank continuation). *)
      let window =
        Array.init h (fun i ->
            Array.init w (fun j ->
                if col + j < cols then cells.(row + i).(col + j) else Cell.blank))
      in
      acc := { cells = window; forced = [] } :: !acc
    done
  done;
  !acc
  |> List.concat_map (connectivity_fix machine)
  |> List.sort_uniq compare

let of_windows machine table ~w ~h = of_cells_windows machine table.Table.cells ~w ~h

let fake_halts machine ~w ~h =
  let outputs = [ 0; 1 ] in
  let fragments = ref [] in
  List.iter
    (fun o ->
      List.iter
        (fun sym ->
          for j = 0 to w - 1 do
            let seed =
              Array.init w (fun c ->
                  if c = j then { Cell.sym; head = Cell.Halted o } else Cell.blank)
            in
            (* Halted is absorbing, so propagation with sealed borders
               always succeeds. *)
            match
              List.init (h - 1) Fun.id
              |> List.fold_left
                   (fun acc _ ->
                     match acc with
                     | None -> None
                     | Some (row :: _ as rows) -> (
                         match Rules.row_successor machine row with
                         | None -> None
                         | Some next -> Some (next :: rows))
                     | Some [] -> None)
                   (Some [ seed ])
            with
            | None -> ()
            | Some rows ->
                fragments :=
                  { cells = Array.of_list (List.rev rows); forced = [] }
                  :: !fragments
          done)
        (List.init machine.Machine.num_symbols Fun.id))
    outputs;
  !fragments
  |> List.concat_map (connectivity_fix machine)
  |> List.sort_uniq compare

let contains_start_state f =
  Array.exists
    (Array.exists (fun (c : Cell.t) ->
         match c.head with Cell.Head 0 -> true | _ -> false))
    f.cells

let reconstructible m f =
  let naturals = natural_sides m f in
  let col side_sel =
    if List.mem side_sel naturals then None
    else
      Some
        (Array.map
           (fun (row : Cell.t array) ->
             match side_sel with
             | Left -> row.(0)
             | Right -> row.(Array.length row - 1)
             | Top | Bottom -> assert false)
           f.cells)
  in
  match
    Rules.reconstruct m ~top:f.cells.(0) ~left:(col Left) ~right:(col Right)
      ~height:(height f)
  with
  | None -> false
  | Some cells -> cells = f.cells

let pp ppf f =
  Format.fprintf ppf "@[<v>fragment %dx%d%s" (width f) (height f)
    (if f.forced = [] then "" else " (forced)");
  Array.iter
    (fun row ->
      Format.fprintf ppf "@ ";
      Array.iter (fun c -> Format.fprintf ppf "%4s" (Cell.to_string c)) row)
    f.cells;
  Format.fprintf ppf "@]"
