lib/turing/rules.mli: Cell Machine
