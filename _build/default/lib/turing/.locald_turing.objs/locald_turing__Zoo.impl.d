lib/turing/zoo.ml: Machine Printf
