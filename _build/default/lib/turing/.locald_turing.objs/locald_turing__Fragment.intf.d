lib/turing/fragment.mli: Cell Format Machine Table
