lib/turing/exec.mli: Machine
