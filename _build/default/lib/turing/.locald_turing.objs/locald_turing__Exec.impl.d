lib/turing/exec.ml: Array List Machine
