lib/turing/fragment.ml: Array Cell Format Fun Hashtbl List Machine Option Rules Seq Stdlib Table
