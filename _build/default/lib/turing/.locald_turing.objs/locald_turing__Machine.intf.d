lib/turing/machine.mli: Format
