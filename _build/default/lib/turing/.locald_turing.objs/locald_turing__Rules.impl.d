lib/turing/rules.ml: Array Cell Fun List Machine Option
