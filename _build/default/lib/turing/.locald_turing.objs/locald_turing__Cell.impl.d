lib/turing/cell.ml: Format Machine Printf
