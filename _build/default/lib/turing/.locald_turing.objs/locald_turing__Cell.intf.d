lib/turing/cell.mli: Format Machine
