lib/turing/machine.ml: Array Buffer Format Hashtbl List Printf String
