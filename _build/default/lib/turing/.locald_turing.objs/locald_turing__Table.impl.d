lib/turing/table.ml: Array Cell Exec Format List Locald_graph Machine Rules
