lib/turing/table.mli: Cell Exec Format Machine
