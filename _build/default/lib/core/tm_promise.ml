open Locald_graph
open Locald_turing
open Locald_local
open Locald_decision

let instance ~machine ~n = Labelled.const (Gen.cycle n) machine

let halts ~fuel machine =
  match Exec.run ~fuel machine with
  | Exec.Halted _ -> true
  | Exec.Out_of_fuel _ | Exec.Crashed _ -> false

let steps_of ~fuel machine =
  match Exec.run ~fuel machine with
  | Exec.Halted { steps; _ } -> Some steps
  | Exec.Out_of_fuel _ | Exec.Crashed _ -> None

let promise ~fuel =
  Promise.make ~name:"tm-cycle-promise"
    ~promise:(fun lg ->
      Graph.is_cycle (Labelled.graph lg)
      && (let m0 = Labelled.label lg 0 in
          Array.for_all (Machine.equal m0) (Labelled.labels lg))
      &&
      let machine = Labelled.label lg 0 in
      match steps_of ~fuel machine with
      | None -> true
      | Some s -> Labelled.order lg >= s)
    ~mem:(fun lg -> not (halts ~fuel (Labelled.label lg 0)))

let ld_decider () =
  Algorithm.make ~name:"tm-promise-LD" ~radius:0 (fun view ->
      let machine = View.center_label view in
      let fuel = min (View.center_id view + 1) Gmr_deciders.simulation_cap in
      not (halts ~fuel machine))

let oblivious_candidate ~fuel =
  Algorithm.make_oblivious
    ~name:(Printf.sprintf "tm-promise-fuel%d" fuel)
    ~radius:0
    (fun view -> not (halts ~fuel (View.center_label view)))

let fooling_machine ~fuel = Zoo.walk ~steps:(fuel + 1) ~output:0
