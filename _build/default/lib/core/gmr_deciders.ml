open Locald_graph
open Locald_turing
open Locald_local
open Locald_decision

let simulation_cap = 100_000

let structure_verifier () =
  Algorithm.make_oblivious ~name:"Gmr-structure" ~radius:2 (fun view ->
      Gmr_check.violations_view view = [])

let halts_with_nonzero machine ~fuel =
  match Exec.run ~fuel machine with
  | Exec.Halted { output; _ } -> output <> 0
  | Exec.Out_of_fuel _ | Exec.Crashed _ -> false

let ld_decider () =
  let structure = structure_verifier () in
  Algorithm.make ~name:"Gmr-LD-decider" ~radius:2 (fun (view : Gmr.label View.t) ->
      let machine = (View.center_label view).Gmr.machine in
      let fuel = min (View.center_id view) simulation_cap in
      structure.Algorithm.ob_decide (View.strip_ids view)
      && not (halts_with_nonzero machine ~fuel))

let candidate_fuel ~fuel =
  let structure = structure_verifier () in
  Algorithm.make_oblivious
    ~name:(Printf.sprintf "Gmr-candidate-fuel%d" fuel)
    ~radius:2
    (fun (view : Gmr.label View.t) ->
      let machine = (View.center_label view).Gmr.machine in
      structure.Algorithm.ob_decide view && not (halts_with_nonzero machine ~fuel))

let candidate_scan () =
  let structure = structure_verifier () in
  Algorithm.make_oblivious ~name:"Gmr-candidate-scan" ~radius:2 (fun view ->
      let sees_bad_halt =
        Array.exists
          (fun (l : Gmr.label) ->
            match l.Gmr.part with
            | Gmr.Cell { cell = { Cell.head = Cell.Halted o; _ }; _ } -> o <> 0
            | Gmr.Cell _ | Gmr.Pyr _ -> false)
          view.View.labels
      in
      structure.Algorithm.ob_decide view && not sees_bad_halt)

let corollary1_decider () =
  let structure = structure_verifier () in
  Randomized.make ~name:"Gmr-corollary1" ~radius:2 (fun rng (view : Gmr.label View.t) ->
      let machine = (View.center_label view).Gmr.machine in
      let fuel =
        Randomized.four_pow_capped ~cap:simulation_cap (Randomized.geometric rng)
      in
      structure.Algorithm.ob_decide view && not (halts_with_nonzero machine ~fuel))

let separation_accepts candidate ?config ~r ~side_exp machine =
  let views =
    Gmr.generator_views ?config ~view_radius:candidate.Algorithm.ob_radius
      ~dedupe:false ~r ~side_exp machine
  in
  List.for_all
    (fun view -> candidate.Algorithm.ob_decide (View.strip_ids view))
    views

(* Fast whole-graph evaluation of the same deciders: the structure
   rules are evaluated once per graph (they do not depend on the
   identifiers or the coins), and the per-node simulation outcome is
   derived from one full run of the machine — "simulating for k steps
   finds a non-zero halt" is monotone in k. Agreement with the honest
   per-view algorithms is part of the test suite. *)
module Fast = struct
  type t = {
    lg : Gmr.label Labelled.t;
    structure : bool array;
    halt_steps : int option;  (** steps after which the halt is visible *)
    output : int;
    bad_halt_within_2 : bool array;
  }

  let dilate g marked =
    let n = Array.length marked in
    let out = Array.copy marked in
    for v = 0 to n - 1 do
      if not out.(v) then
        out.(v) <- Array.exists (fun u -> marked.(u)) (Graph.neighbours g v)
    done;
    out

  let prepare (lg : Gmr.label Labelled.t) =
    let structure = Gmr_check.structure_array lg in
    let machine = (Labelled.label lg 0).Gmr.machine in
    let halt_steps, output =
      match Exec.run ~fuel:simulation_cap machine with
      | Exec.Halted { output; steps } -> (Some steps, output)
      | Exec.Out_of_fuel _ | Exec.Crashed _ -> (None, 0)
    in
    let g = Labelled.graph lg in
    let bad =
      Array.init (Labelled.order lg) (fun v ->
          match (Labelled.label lg v).Gmr.part with
          | Gmr.Cell { cell = { Cell.head = Cell.Halted o; _ }; _ } -> o <> 0
          | Gmr.Cell _ | Gmr.Pyr _ -> false)
    in
    let bad_halt_within_2 = dilate g (dilate g bad) in
    { lg; structure; halt_steps; output; bad_halt_within_2 }

  let finds_bad_halt t ~fuel =
    (* [Exec.run ~fuel] reads the halting action only with [fuel > steps]
       transitions of budget left, matching [halts_with_nonzero]. *)
    match t.halt_steps with
    | Some s -> fuel > s && t.output <> 0
    | None -> false

  let verdict_of t per_node =
    Verdict.of_outputs
      (Array.init (Labelled.order t.lg) (fun v -> t.structure.(v) && per_node v))

  let ld t ~ids =
    verdict_of t (fun v ->
        let fuel = min (Ids.assign ids v) simulation_cap in
        not (finds_bad_halt t ~fuel))

  let fuel_candidate t ~fuel = verdict_of t (fun _ -> not (finds_bad_halt t ~fuel))

  let scan_candidate t = verdict_of t (fun v -> not t.bad_halt_within_2.(v))

  let corollary1 t rng =
    verdict_of t (fun _ ->
        let fuel =
          Randomized.four_pow_capped ~cap:simulation_cap (Randomized.geometric rng)
        in
        not (finds_bad_halt t ~fuel))
end

let property ~r ~config =
  Property.make ~name:(Printf.sprintf "P={G(M,%d) : M outputs 0}" r) (fun (lg : Gmr.label Labelled.t) ->
      Labelled.order lg > 0
      && Gmr_check.global_check ~r ~config lg
      &&
      let machine = (Labelled.label lg 0).Gmr.machine in
      match Exec.run ~fuel:config.Gmr.fuel machine with
      | Exec.Halted { output; _ } -> output = 0
      | Exec.Out_of_fuel _ | Exec.Crashed _ -> false)
