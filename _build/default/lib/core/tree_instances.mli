(** Instances of the Section 2 promise-free property (Figure 1).

    [P] consists of the small instances [H+ in H_r]: a depth-[r]
    layered-tree cone [H <=_r T_r], induced in the large tree, plus a
    pivot node adjacent to exactly the border nodes of [H].
    [P' = P + {T_r}] adds the large instances, the depth-[R(r)]
    layered trees themselves.

    [arity = 2] is the paper's construction; [arity = 1] is the
    linear-size variant used for the horizon-[t >= 1] coverage
    experiments (see DESIGN.md). *)

open Locald_graph
open Locald_local

type label =
  | Tree of Layered_tree.label
  | Pivot of int  (** carries [r] *)

val equal_label : label -> label -> bool
val pp_label : Format.formatter -> label -> unit

type params = {
  regime : Ids.regime;  (** must be bounded; supplies [f] *)
  arity : int;
  r : int;
}

val depth : params -> int
(** [R(r)], via {!Bound.big_r}. *)

val big_tree : params -> label Labelled.t
(** The large instance [T_r]. *)

val apexes : params -> (int * int) list
(** Apex positions of all cones [H <=_r T_r]. *)

val small_instance : params -> apex:int * int -> label Labelled.t
(** [H+]: the cone below the apex, induced in [T_r], plus the pivot.
    The pivot is the last node. *)

val border_coords : params -> apex:int * int -> Layered_tree.label list
(** Coordinates of the cone's border nodes (sorted). *)

(** {1 Membership} *)

type kind = Small | Large | Neither

val classify : params -> label Labelled.t -> kind
(** Exact global classification (the ground-truth membership test for
    the properties [P] ([Small]) and [P'] ([Small] or [Large])). *)

val in_p : params -> label Labelled.t -> bool
val in_p' : params -> label Labelled.t -> bool

(** {1 Counterfeits (negative test instances)} *)

val cone_without_pivot : params -> apex:int * int -> label Labelled.t
val two_pivots : params -> apex:int * int -> label Labelled.t
val pivot_on_interior : params -> apex:int * int -> label Labelled.t
(** Pivot additionally attached to a non-border node (falls back to
    {!small_instance} if the cone has no interior). *)

val truncated_tree : params -> keep_depth:int -> label Labelled.t
(** The top [keep_depth] levels of [T_r] without any pivot — a
    "medium" instance that is neither small nor large. *)
