(** The Section 2 warm-up promise problem: cycles whose constant input
    label [r] promises that the cycle length is either [r] (yes) or
    large (no). Identifiers leak [n] under (B), so a radius-0 decider
    with identifiers separates the two, while all views of both
    instances are pairwise isomorphic for an Id-oblivious algorithm.

    Implementation note (documented deviation): the paper takes the
    large cycle to have exactly [f r] nodes, but [n = f r] only
    guarantees an identifier [>= f r - 1], which a valid [r]-cycle
    assignment can also attain — the threshold test needs a gap. We
    use [n = f r + 1], which guarantees a node with identifier
    [>= f r], impossible on the [r]-cycle. The paper's main
    construction is immune to this off-by-one because the large
    instance there is doubly exponentially bigger. *)

open Locald_graph
open Locald_local
open Locald_decision

val small_length : r:int -> int
val large_length : regime:Ids.regime -> r:int -> int

val yes_instance : r:int -> int Labelled.t
(** The [r]-cycle, every node labelled [r]. Requires [r >= 3]. *)

val no_instance : regime:Ids.regime -> r:int -> int Labelled.t
(** The [large_length]-cycle, every node labelled [r]. *)

val promise : regime:Ids.regime -> int Promise.t

val ld_decider : regime:Ids.regime -> (int, bool) Algorithm.t
(** Radius-0: a node says no iff its own identifier is [>= f r] —
    correct under the promise for every assignment valid under the
    regime. *)

val views_mutually_covered : regime:Ids.regime -> r:int -> t:int -> bool
(** Every radius-[t] identifier-free view of either instance occurs in
    the other (up to rooted isomorphism) — the obstruction that defeats
    every Id-oblivious decider at horizon [t]. Holds whenever
    [r >= 2t + 2]. *)
