(** The Section 3 deciders: [P = { G(M,r) : M outputs 0 }] is in LD
    (Theorem 2) but not in LD*, and becomes Id-obliviously decidable
    with randomness (Corollary 1).

    - {!ld_decider}: structure rules + "simulate [M] for [Id v]
      steps" — the identifier supplies the fuel that the instance
      guarantees is sufficient somewhere ([max Id >= n - 1 >= steps]).
    - {!candidate_fuel} and {!candidate_scan}: the natural Id-oblivious
      attempts, each provably defeated by the construction —
      [candidate_scan] by the fake-halt fragments glued into every
      instance, [candidate_fuel f] by any machine running longer than
      [f].
    - {!separation_accepts}: the separation algorithm [R] of
      Theorem 2's proof — run a candidate on the generator views
      [B(N, t)] and accept iff all accept. Total on every machine.
    - {!corollary1_decider}: the randomised Id-oblivious
      [(1, 1-o(1))]-decider: fuel [4^(l_v)] from private coins. *)

open Locald_turing
open Locald_local
open Locald_decision

val simulation_cap : int
(** Hard cap on simulation fuel (identifiers can be astronomically
    large under (not B); the experiments keep them below this). *)

val structure_verifier : unit -> (Gmr.label, bool) Algorithm.oblivious
(** Radius-2 Id-oblivious verifier of the {!Gmr_check} rules. *)

val ld_decider : unit -> (Gmr.label, bool) Algorithm.t
(** The Theorem 2 LD decider (radius 2, uses identifiers). *)

val candidate_fuel : fuel:int -> (Gmr.label, bool) Algorithm.oblivious
(** Structure rules + bounded simulation with fixed fuel. *)

val candidate_scan : unit -> (Gmr.label, bool) Algorithm.oblivious
(** Structure rules + "say no iff my view shows a halt with non-zero
    output". *)

val corollary1_decider : unit -> (Gmr.label, bool) Randomized.t
(** The Corollary 1 randomised decider ([n_v = 4^(l_v)], capped at
    {!simulation_cap}). *)

val separation_accepts :
  (Gmr.label, bool) Algorithm.oblivious ->
  ?config:Gmr.config ->
  r:int ->
  side_exp:int ->
  Machine.t ->
  bool
(** The algorithm [R]: accept machine [N] iff the candidate accepts
    every view in [B(N, r)]. Halts on every [N]. *)

(** Fast whole-graph evaluation of the same deciders: the structure
    rules are computed once per graph and reused across identifier
    assignments and coin tosses. Pointwise agreement with the honest
    per-view algorithms is part of the test suite. *)
module Fast : sig
  type t

  val prepare : Gmr.label Locald_graph.Labelled.t -> t
  val ld : t -> ids:Ids.t -> Verdict.t
  val fuel_candidate : t -> fuel:int -> Verdict.t
  val scan_candidate : t -> Verdict.t
  val corollary1 : t -> Random.State.t -> Verdict.t
end

val property : r:int -> config:Gmr.config -> Gmr.label Property.t
(** Exact membership predicate for [P] (global, not local): the graph
    is [G(M, r)] for the machine in its labels and [M] outputs 0. *)
