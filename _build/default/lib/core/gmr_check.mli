(** Local decidability of [G(M, r)] — the verification of Appendix A
    made executable.

    {!violations} is the radius-2 rule set each node evaluates:
    pyramid structure (via {!Locald_graph.Quadtree.inspect}), grid
    orientation and parent coherence, execution-window consistency
    (with head entries allowed at fragment borders), gluing-edge and
    pivot rules. It is sound on genuine instances (no violations
    anywhere — tested) and rejects the structural counterfeits the
    paper worries about (tested); like the paper's step 5 it leans on
    the pivot for the checks that are not radius-2 (we additionally
    expose {!global_check}, the exact ground truth used as the
    property's membership predicate).

    The rules are deliberately evaluated through a {!View.t}
    so that algorithms built on them are honest radius-2 local
    algorithms. *)

open Locald_graph

val violations_in : Gmr.label Labelled.t -> int -> string list
(** Rule violations at a node, reading only radius-2 information. *)

val violations_view : Gmr.label View.t -> string list
(** The same rules evaluated at the centre of a radius-2 view. *)

val structure_ok : Gmr.t -> bool
(** No node of the built instance violates any local rule. *)

val structure_array : Gmr.label Labelled.t -> bool array
(** Per-node rule results for the whole graph, computed in one pass
    with shared memoisation — the fast path used by
    {!Gmr_deciders.Fast}. Agrees pointwise with {!violations_in}
    (tested). *)

val first_violation : Gmr.label Labelled.t -> (int * string) option

val global_check : r:int -> config:Gmr.config -> Gmr.label Labelled.t -> bool
(** Exact (non-local) membership: the graph is label-isomorphic to the
    construction [G(M, r)] rebuilt from the machine found in its own
    labels. *)
