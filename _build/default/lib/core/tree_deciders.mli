(** The Section 2 deciders and separation experiments.

    Three results are made executable:
    - [P' ∈ LD*]: {!pprime_verifier} is an Id-oblivious radius-1
      algorithm accepting exactly the small and large instances;
    - [P ∈ LD]: {!p_decider} additionally rejects every large instance
      using the identifier threshold [R(r)];
    - [P ∉ LD*]: {!coverage} shows every radius-[t] view of the large
      instance [T_r] already occurs in some small instance (so any
      Id-oblivious decider accepting all of [H_r] accepts [T_r]), and
      {!budgeted_a_star} shows that the generic simulation [A*] fails
      for {e every} search budget — the executable content of "the
      simulation needs (not B)". *)

open Locald_local

val pprime_verifier :
  Tree_instances.params -> (Tree_instances.label, bool) Algorithm.oblivious
(** Radius-1 Id-oblivious local verifier for [P']. *)

val p_decider : Tree_instances.params -> (Tree_instances.label, bool) Algorithm.t
(** Radius-1 decider for [P] (uses identifiers): the [P'] rules plus
    "my identifier is below [R(r)]". *)

(** {1 Experiments} *)

type coverage = {
  t : int;
  total_views : int;       (** distinct views of [T_r] up to iso *)
  covered : int;           (** found in some small instance *)
  uncovered_node : int option;  (** a witness node of [T_r], if any *)
}

val coverage : Tree_instances.params -> t:int -> coverage
(** For every node of [T_r], search the cones containing it for an
    interior occurrence of its stripped radius-[t] view. Full coverage
    ([covered = total_views]) is the [P ∉ LD*] obstruction. *)

type budget_failure =
  | Rejects_small of (int * int)
      (** the simulation rejects the yes-instance [H+] at this apex *)
  | Accepts_large
      (** the simulation accepts the no-instance [T_r] *)
  | No_failure_found

val budgeted_a_star :
  Tree_instances.params -> budget:int -> trials:int -> budget_failure
(** Run [A* = a_star (p_decider)] with a sampled id-search budget:
    with [budget > R(r)] it wrongly rejects small instances; with
    [budget <= R(r)] it wrongly accepts [T_r]. *)
