open Locald_local

let tree_size ~arity ~depth = Locald_graph.Layered_tree.order ~arity ~depth

let small_max_size ~arity ~r = tree_size ~arity ~depth:r + 1

let bound_f regime =
  match regime with
  | Ids.Unbounded ->
      invalid_arg "Bound.big_r: R(r) only exists under bounded identifiers (B)"
  | Ids.Bounded { f; _ } -> f

let big_r ~regime ~arity ~r =
  let f = bound_f regime in
  f (small_max_size ~arity ~r + 1)

let pigeonhole_holds ~regime ~arity ~r =
  let f = bound_f regime in
  let rr = big_r ~regime ~arity ~r in
  (* (i) ids on small instances stay below R(r): monotone f suffices. *)
  let small_ok = f (small_max_size ~arity ~r) <= rr in
  (* (ii) T_r has order > R(r), so max id >= order - 1 >= R(r). *)
  let big_ok = tree_size ~arity ~depth:rr > rr in
  small_ok && big_ok
