(** The Section 3 construction [G(M, r)] (Figure 2, Appendix A).

    [G(M, r)] consists of:
    - the pyramidal execution table [T^] of the halting machine [M]:
      the square execution table padded to a power-of-two side,
      carrying a layered quadtree;
    - the pyramidal fragment collection [C^]: syntactically possible
      table fragments, each with its own small pyramid, glued to the
      {e pivot} — the top-left table cell, the one where the head
      starts — by their non-natural border cells.

    Every node carries the universal label [(M, r)] plus its part
    (a table/fragment cell with bounded position residues, or a
    pyramid label).

    Scaling substitutions (documented in DESIGN.md): the fragment side
    defaults to 4 rather than the paper's [2^(3r)], the collection [C]
    is assembled from real-table windows, explicit fake-halt fragments
    and a capped syntactic enumeration rather than the full exponential
    enumeration, and anchor phases are optional. The obfuscation
    property that the deciders exercise — fragments showing halts with
    {e both} outputs are glued into every instance — is preserved
    exactly. *)

open Locald_graph
open Locald_turing

type part =
  | Cell of { cell : Cell.t; m6x : int; m6y : int }
  | Pyr of Quadtree.label

type label = {
  machine : Machine.t;
  r : int;
  part : part;
}

val equal_label : label -> label -> bool
val pp_label : Format.formatter -> label -> unit

val pivot_look : label -> bool
(** A blank cell carrying a state-0 head at position residue (0,0) —
    the locally recognisable signature of the pivot. Sound because no
    admissible machine re-enters state 0 ({!Machine.reenters_start})
    and the fragment enumeration excludes state-0 heads. *)

type provenance =
  | Table_base of int * int          (** (x, y) in the padded table *)
  | Table_pyr of Quadtree.coord3
  | Frag_base of int * int * int     (** (fragment, x, y) *)
  | Frag_pyr of int * Quadtree.coord3

type config = {
  fragment_side : int;     (** power of two; the paper uses [2^(3r)] *)
  fragment_cap : int;      (** cap on the syntactic enumeration *)
  max_heads_per_row : int; (** seed-row head bound of the enumeration *)
  all_phases : bool;       (** glue all aligned anchor phases of each fragment *)
  fuel : int;              (** execution fuel *)
}

val default_config : r:int -> config

type t = {
  config : config;
  machine : Machine.t;
  r : int;
  lg : label Labelled.t;
  provenance : provenance array;
  pivot : int;             (** node index of the pivot cell *)
  table_side : int;
  steps : int;
  output : int;
  fragments : Fragment.t list;  (** the glued collection *)
  truncated : bool;        (** the enumeration cap was hit *)
}

exception Not_admissible of string

val build : ?config:config -> r:int -> Machine.t -> (t, Exec.outcome) result
(** Build [G(M, r)]. [Error] if the machine does not halt within the
    fuel.
    @raise Not_admissible if the machine re-enters state 0 (the pivot
    signature would be ambiguous). *)

val order : t -> int
val size : t -> int

(** {1 The neighbourhood generator [B] (property (P3))} *)

val generator_views :
  ?config:config ->
  ?view_radius:int ->
  ?dedupe:bool ->
  r:int ->
  side_exp:int ->
  Machine.t ->
  label View.t list
(** [B(N, r)]: halts on {e every} machine [N]. Runs [N] for at most
    [2^side_exp - 2] steps, lays out the (possibly truncated) table of
    side [2^side_exp] with its pyramid and the glued fragments, and
    returns the radius-[r] views that avoid the truncation artefacts
    (the bottom table row, the rightmost table column and the table
    pyramid above level [r]). Views are deduplicated up to rooted
    isomorphism. *)

val views_covered :
  label View.t list -> by:label View.t list -> bool * int * int
(** [views_covered views ~by] — does every view occur (up to rooted
    isomorphism) in [by]? Returns [(all, covered, total)]. Uses
    signature bucketing; views larger than an internal threshold are
    matched by signature alone (see the dedup note in the
    implementation). This is the (P3) coverage measurement. *)

val all_views : ?radius:int -> ?dedupe:bool -> t -> label View.t list
(** All views of a built [G(M, r)] at the given radius (default [r]),
    deduplicated up to rooted isomorphism (used by the (P3) coverage
    experiment and by the separation algorithm [R], which needs views
    at the horizon of the candidate algorithm it drives). *)
