open Locald_graph
open Locald_local
open Locald_decision

let small_length ~r =
  if r < 3 then invalid_arg "Cycle_promise: r must be >= 3 (cycles)";
  r

let f_of = function
  | Ids.Unbounded -> invalid_arg "Cycle_promise: needs a bounded regime (B)"
  | Ids.Bounded { f; _ } -> f

let large_length ~regime ~r = (f_of regime) r + 1

let labelled_cycle n r = Labelled.const (Gen.cycle n) r

let yes_instance ~r = labelled_cycle (small_length ~r) r

let no_instance ~regime ~r = labelled_cycle (large_length ~regime ~r) r

let read_r lg = Labelled.label lg 0

let promise ~regime =
  Promise.make ~name:"cycle-promise"
    ~promise:(fun lg ->
      let g = Labelled.graph lg in
      Graph.is_cycle g
      && Property.all_equal.Property.mem lg
      &&
      let r = read_r lg in
      r >= 3
      && (Graph.order g = small_length ~r || Graph.order g = large_length ~regime ~r))
    ~mem:(fun lg -> Graph.order (Labelled.graph lg) = read_r lg)

let ld_decider ~regime =
  let f = f_of regime in
  Algorithm.make ~name:"cycle-threshold" ~radius:0 (fun view ->
      let r = View.center_label view in
      View.center_id view < f r)

let views_of lg ~t =
  List.init (Labelled.order lg) (fun v -> View.extract lg ~center:v ~radius:t)

let views_mutually_covered ~regime ~r ~t =
  let a = views_of (yes_instance ~r) ~t in
  let b = views_of (no_instance ~regime ~r) ~t in
  let covered xs ys =
    List.for_all (fun x -> List.exists (Iso.views_isomorphic ( = ) x) ys) xs
  in
  covered a b && covered b a
