(** The Section 3 warm-up promise problem [R]: the instances are
    [n]-cycles whose constant label is a Turing machine [M], with the
    promise that if [M] halts in [s] steps then [n >= s]. Yes-instances
    are diverging machines, no-instances halting ones.

    With identifiers a node simulates [M] for [Id(v) + 1] steps (the
    [+1] covers the extremal packing [Id = 0..n-1]; the paper's
    argument implicitly assumes a witness of size [>= s]); without
    identifiers the problem is the halting problem, and every total
    (computable) candidate is defeated by a machine that outruns its
    fuel. *)

open Locald_graph
open Locald_turing
open Locald_local
open Locald_decision

val instance : machine:Machine.t -> n:int -> Machine.t Labelled.t
(** An [n]-cycle labelled by the machine. *)

val promise : fuel:int -> Machine.t Promise.t
(** The promise and membership, evaluated with bounded fuel (machines
    out-running the fuel are treated as diverging — our executable
    stand-in for the halting problem; see DESIGN.md). *)

val ld_decider : unit -> (Machine.t, bool) Algorithm.t
(** Radius-0 decider using identifiers (fuel capped at
    {!Gmr_deciders.simulation_cap}). *)

val oblivious_candidate : fuel:int -> (Machine.t, bool) Algorithm.oblivious
(** The natural Id-oblivious attempt with fixed fuel. *)

val fooling_machine : fuel:int -> Machine.t
(** A halting machine that outruns the given fuel —
    [oblivious_candidate ~fuel] accepts its (no-)instances. *)
