open Locald_graph
module Lt = Layered_tree

type label =
  | Tree of Lt.label
  | Pivot of int

let equal_label (a : label) b = a = b

let pp_label ppf = function
  | Tree l -> Lt.pp_label ppf l
  | Pivot r -> Format.fprintf ppf "pivot(r=%d)" r

type params = {
  regime : Locald_local.Ids.regime;
  arity : int;
  r : int;
}

let depth p = Bound.big_r ~regime:p.regime ~arity:p.arity ~r:p.r

(* T_r is induced from repeatedly when enumerating the small instances;
   memoise it by its numeric shape (the regime only enters through the
   computed depth). *)
let tree_cache : (int * int * int, label Labelled.t) Hashtbl.t = Hashtbl.create 8

let big_tree p =
  let d = depth p in
  let key = (p.arity, p.r, d) in
  match Hashtbl.find_opt tree_cache key with
  | Some t -> t
  | None ->
      let t = Labelled.map (fun l -> Tree l) (Lt.make ~arity:p.arity ~r:p.r ~depth:d) in
      if Hashtbl.length tree_cache > 32 then Hashtbl.reset tree_cache;
      Hashtbl.replace tree_cache key t;
      t

let apexes p = Lt.apexes ~arity:p.arity ~depth:(depth p) ~r:p.r

(* Coordinates of a big-tree node index, recovered level by level. *)
let coord_of_index ~arity v =
  let rec find_level y =
    if Lt.level_offset ~arity (y + 1) > v then y else find_level (y + 1)
  in
  let y = find_level 0 in
  (v - Lt.level_offset ~arity y, y)

let border_indices p ~apex =
  Lt.cone_border ~arity:p.arity ~depth:(depth p) ~apex ~r:p.r

let border_coords p ~apex =
  border_indices p ~apex
  |> Array.to_list
  |> List.map (fun v ->
         let x, y = coord_of_index ~arity:p.arity v in
         { Lt.r = p.r; x; y })
  |> List.sort compare

let small_instance_gen p ~apex ~pivot_edges =
  let t = big_tree p in
  let members = Lt.cone ~arity:p.arity ~apex ~r:p.r in
  let sub, back = Labelled.induced t members in
  let k = Labelled.order sub in
  (* Map big-tree indices to cone indices. *)
  let local = Hashtbl.create (2 * k) in
  Array.iteri (fun i v -> Hashtbl.replace local v i) back;
  let g = Graph.add_vertices (Labelled.graph sub) 1 in
  let pivot = k in
  let edges =
    List.map (fun v -> (pivot, Hashtbl.find local v)) (pivot_edges ~local)
  in
  let g = Graph.add_edges g edges in
  Labelled.make g (Array.append (Labelled.labels sub) [| Pivot p.r |])

let small_instance p ~apex =
  small_instance_gen p ~apex ~pivot_edges:(fun ~local:_ ->
      Array.to_list (border_indices p ~apex))

let cone_without_pivot p ~apex =
  let t = big_tree p in
  let members = Lt.cone ~arity:p.arity ~apex ~r:p.r in
  fst (Labelled.induced t members)

let two_pivots p ~apex =
  let base = small_instance p ~apex in
  let k = Labelled.order base in
  let first_pivot_neighbours =
    Graph.neighbours (Labelled.graph base) (k - 1) |> Array.to_list
  in
  let g = Graph.add_vertices (Labelled.graph base) 1 in
  let g = Graph.add_edges g (List.map (fun v -> (k, v)) first_pivot_neighbours) in
  Labelled.make g (Array.append (Labelled.labels base) [| Pivot p.r |])

let pivot_on_interior p ~apex =
  let members = Lt.cone ~arity:p.arity ~apex ~r:p.r in
  let border = border_indices p ~apex in
  let is_border = Hashtbl.create 16 in
  Array.iter (fun v -> Hashtbl.replace is_border v ()) border;
  let interior =
    Array.to_list members |> List.filter (fun v -> not (Hashtbl.mem is_border v))
  in
  match interior with
  | [] -> small_instance p ~apex
  | witness :: _ ->
      small_instance_gen p ~apex ~pivot_edges:(fun ~local:_ ->
          witness :: Array.to_list border)

let truncated_tree p ~keep_depth =
  let t = big_tree p in
  let members = ref [] in
  for y = keep_depth downto 0 do
    for x = Lt.level_width ~arity:p.arity y - 1 downto 0 do
      members := Lt.node_index ~arity:p.arity ~x ~y :: !members
    done
  done;
  fst (Labelled.induced t (Array.of_list !members))

type kind = Small | Large | Neither

(* Exact structural classification from coordinates. *)
let classify p lg =
  let g = Labelled.graph lg in
  let n = Labelled.order lg in
  if n = 0 then Neither
  else begin
    let d = depth p in
    let pivots = ref [] in
    let coords = Hashtbl.create (2 * n) in
    let ok = ref true in
    for v = 0 to n - 1 do
      match Labelled.label lg v with
      | Pivot r -> if r = p.r then pivots := v :: !pivots else ok := false
      | Tree { r; x; y } ->
          if r <> p.r || y < 0 || y > d || x < 0 || x >= Lt.level_width ~arity:p.arity y
          then ok := false
          else if Hashtbl.mem coords (x, y) then ok := false
          else Hashtbl.replace coords (x, y) v
    done;
    if not !ok then Neither
    else begin
      let node_at xy = Hashtbl.find_opt coords xy in
      (* Tree-edges expected between present coordinates: induced rules. *)
      let expected_edges () =
        Hashtbl.fold
          (fun (x, y) v acc ->
            let cands =
              (if x + 1 < Lt.level_width ~arity:p.arity y then [ (x + 1, y) ] else [])
              @
              if y + 1 <= d then
                List.init p.arity (fun j -> ((p.arity * x) + j, y + 1))
              else []
            in
            List.fold_left
              (fun acc c ->
                match node_at c with Some u -> (v, u) :: acc | None -> acc)
              acc cands)
          coords []
      in
      let edge_set_matches extra =
        let expected =
          List.map (fun (u, v) -> if u < v then (u, v) else (v, u)) (expected_edges ())
          @ extra
          |> List.sort_uniq compare
        in
        expected = Graph.edges g
      in
      match !pivots with
      | [] ->
          (* Large: full T_r. *)
          if
            Hashtbl.length coords = n
            && n = Bound.tree_size ~arity:p.arity ~depth:d
            && edge_set_matches []
          then Large
          else Neither
      | [ pivot ] ->
          (* Small: a cone plus its pivot. *)
          if Hashtbl.length coords <> n - 1 then Neither
          else begin
            (* Infer the apex from the minimal level present. *)
            let min_y =
              Hashtbl.fold (fun (_, y) _ acc -> min y acc) coords max_int
            in
            let apex_candidates =
              Hashtbl.fold
                (fun (x, y) _ acc -> if y = min_y then (x, y) :: acc else acc)
                coords []
            in
            match apex_candidates with
            | [ apex ] ->
                let y0 = snd apex in
                if y0 + p.r > d then Neither
                else begin
                  let cone = Lt.cone ~arity:p.arity ~apex ~r:p.r in
                  let cone_coords =
                    Array.to_list cone
                    |> List.map (coord_of_index ~arity:p.arity)
                    |> List.sort compare
                  in
                  let present =
                    Hashtbl.fold (fun xy _ acc -> xy :: acc) coords []
                    |> List.sort compare
                  in
                  if cone_coords <> present then Neither
                  else begin
                    let border =
                      border_coords p ~apex
                      |> List.map (fun (l : Lt.label) ->
                             Hashtbl.find coords (l.x, l.y))
                    in
                    let pivot_edges =
                      List.map
                        (fun v -> if pivot < v then (pivot, v) else (v, pivot))
                        border
                      |> List.sort_uniq compare
                    in
                    if edge_set_matches pivot_edges then Small else Neither
                  end
                end
            | _ -> Neither
          end
      | _ -> Neither
    end
  end

let in_p p lg = classify p lg = Small
let in_p' p lg = match classify p lg with Small | Large -> true | Neither -> false
