(** The depth bound [R(r)] of Section 2.

    Under regime [(B)] with bound function [f], the small instances
    [H+ in H_r] have at most [small_max_size] nodes, so all their
    identifiers are below [f small_max_size <= R(r)]; the large
    instance [T_r] (depth [R(r)]) has more than [R(r)] nodes, so some
    identifier reaches [R(r)] by pigeonhole. These two facts are the
    whole Section 2 separation; {!pigeonhole_holds} checks them for
    concrete parameters. *)

open Locald_local

val tree_size : arity:int -> depth:int -> int
(** Nodes of a complete [arity]-ary layered tree of the given depth. *)

val small_max_size : arity:int -> r:int -> int
(** Maximum order of a small instance: a depth-[r] layered tree plus
    its pivot. *)

val big_r : regime:Ids.regime -> arity:int -> r:int -> int
(** [R(r) = f (small_max_size + 1)] — the depth of the large instance
    [T_r].
    @raise Invalid_argument under [Unbounded] (no [R] exists: that is
    why the construction only works under (B)). *)

val pigeonhole_holds : regime:Ids.regime -> arity:int -> r:int -> bool
(** (i) every valid assignment on a small instance stays below [R(r)];
    (ii) every valid assignment on [T_r] reaches [R(r)] somewhere. *)
