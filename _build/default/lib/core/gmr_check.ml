open Locald_graph
open Locald_turing

type ctx = {
  g : Graph.t;
  label : int -> Gmr.label;
  parent_memo : int option option array;
      (** memoised [pyr_parent]: [None] = not computed yet. Shared
          across a whole-graph pass so that the pivot's huge
          neighbourhood is scanned once, not once per neighbour. *)
}

let classify_for_quadtree ctx u =
  match (ctx.label u).Gmr.part with
  | Gmr.Pyr l -> Quadtree.Upper l
  | Gmr.Cell { m6x; m6y; _ } -> Quadtree.Bottom (m6x, m6y)

(* Unique mod-6 direction between two base positions. *)
let dir6_between (ax, ay) (bx, by) =
  let step (a, b) = function
    | Grid.Left -> ((a + 5) mod 6, b)
    | Grid.Right -> ((a + 1) mod 6, b)
    | Grid.Up -> (a, (b + 5) mod 6)
    | Grid.Down -> (a, (b + 1) mod 6)
  in
  match
    List.filter
      (fun d -> step (ax, ay) d = (bx, by))
      [ Grid.Left; Grid.Right; Grid.Up; Grid.Down ]
  with
  | [ d ] -> Some d
  | _ -> None

let cell_m6 (l : Gmr.label) =
  match l.Gmr.part with
  | Gmr.Cell { m6x; m6y; _ } -> Some (m6x, m6y)
  | Gmr.Pyr _ -> None

let cell_content (l : Gmr.label) =
  match l.Gmr.part with
  | Gmr.Cell { cell; _ } -> Some cell
  | Gmr.Pyr _ -> None

(* The unique pyramid parent of a base cell, if any. *)
let pyr_parent ctx v =
  match ctx.parent_memo.(v) with
  | Some cached -> cached
  | None ->
      let parents =
        Array.to_list (Graph.neighbours ctx.g v)
        |> List.filter (fun u ->
               match (ctx.label u).Gmr.part with
               | Gmr.Pyr l -> l.Quadtree.z3 = 1
               | Gmr.Cell _ -> false)
      in
      let result = match parents with [ p ] -> Some p | _ -> None in
      ctx.parent_memo.(v) <- Some result;
      result

(* Grid-sibling test: mod-6 adjacent and parent-coherent per parity. *)
let grid_sibling ctx v w =
  match (cell_m6 (ctx.label v), cell_m6 (ctx.label w)) with
  | Some m6v, Some m6w -> (
      match dir6_between m6v m6w with
      | None -> None
      | Some d -> (
          match (pyr_parent ctx v, pyr_parent ctx w) with
          | Some pv, Some pw ->
              let x, y = m6v in
              let same_expected =
                match d with
                | Grid.Right -> x mod 2 = 0
                | Grid.Left -> x mod 2 = 1
                | Grid.Down -> y mod 2 = 0
                | Grid.Up -> y mod 2 = 1
              in
              let coherent =
                if same_expected then pv = pw
                else pv <> pw && Graph.mem_edge ctx.g pv pw
              in
              if coherent then Some d else None
          | _, _ -> None))
  | _, _ -> None

(* The cell-neighbour of [v] that is a grid sibling in direction [d]. *)
let sibling_in_dir ctx v d =
  let hits =
    Array.to_list (Graph.neighbours ctx.g v)
    |> List.filter (fun w -> grid_sibling ctx v w = Some d)
  in
  match hits with [ w ] -> Some w | _ -> None

(* Mod-6 neighbour for window lookups: pivot-look partners excluded
   (their edge is a gluing edge, not a grid edge). *)
let m6_neighbour_excluding_pivot ctx v d =
  match cell_m6 (ctx.label v) with
  | None -> None
  | Some m6v -> (
      let hits =
        Array.to_list (Graph.neighbours ctx.g v)
        |> List.filter (fun w ->
               (not (Gmr.pivot_look (ctx.label w)))
               &&
               match cell_m6 (ctx.label w) with
               | Some m6w -> dir6_between m6v m6w = Some d
               | None -> false)
      in
      match hits with [ w ] -> Some w | _ -> None)

let glue_partners ctx v =
  (* Cell neighbours that are not grid siblings. *)
  Array.to_list (Graph.neighbours ctx.g v)
  |> List.filter (fun w ->
         Option.is_some (cell_m6 (ctx.label w)) && grid_sibling ctx v w = None)

let border_look ctx v =
  (* Missing some grid direction (by mod-6 adjacency, pivots excluded). *)
  List.exists
    (fun d -> m6_neighbour_excluding_pivot ctx v d = None)
    [ Grid.Left; Grid.Right; Grid.Up; Grid.Down ]

let pyr_rules ctx v =
  Quadtree.inspect ~classify:(classify_for_quadtree ctx) ctx.g v

let cell_rules ctx v =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let own = ctx.label v in
  let machine = own.Gmr.machine in
  let content = Option.get (cell_content own) in
  (* Rule 1: a unique pyramid parent with consistent halved position. *)
  (match pyr_parent ctx v with
  | None -> err "cell %d lacks a unique pyramid parent" v
  | Some p -> (
      match (ctx.label p).Gmr.part with
      | Gmr.Pyr lp ->
          let m6x, m6y = Option.get (cell_m6 own) in
          if lp.Quadtree.m6x mod 3 <> m6x / 2 || lp.Quadtree.m6y mod 3 <> m6y / 2
          then err "pyramid parent of cell %d has inconsistent position" v
      | Gmr.Cell _ -> assert false));
  (* Rule 2: sibling direction uniqueness and gluing-edge shape. *)
  let sibling_dirs =
    Array.to_list (Graph.neighbours ctx.g v)
    |> List.filter_map (fun w -> grid_sibling ctx v w)
  in
  if List.length (List.sort_uniq compare sibling_dirs) <> List.length sibling_dirs
  then err "cell %d has two grid siblings in one direction" v;
  let glued = glue_partners ctx v in
  let own_pivot = Gmr.pivot_look own in
  if own_pivot then begin
    if sibling_in_dir ctx v Grid.Up <> None || sibling_in_dir ctx v Grid.Left <> None
    then err "pivot %d has an Up or Left grid sibling" v;
    List.iter
      (fun w ->
        if Gmr.pivot_look (ctx.label w) then err "pivot %d glued to a pivot" v
        else if not (border_look ctx w) then
          err "pivot %d glued to the non-border cell %d" v w)
      glued
  end
  else begin
    (match glued with
    | [] -> ()
    | [ w ] ->
        if not (Gmr.pivot_look (ctx.label w)) then
          err "gluing edge %d-%d has no pivot endpoint" v w
        else if not (border_look ctx v) then
          err "non-border cell %d is glued to the pivot" v
    | _ -> err "cell %d has several gluing edges" v);
    ()
  end;
  (* Rule 3: execution-window consistency against the row above. *)
  (match sibling_in_dir ctx v Grid.Up with
  | Some up ->
      let up_cell w = Option.get (cell_content (ctx.label w)) in
      let upleft = m6_neighbour_excluding_pivot ctx up Grid.Left in
      let upright = m6_neighbour_excluding_pivot ctx up Grid.Right in
      (match
         Rules.successor machine
           ~left:(Option.map up_cell upleft)
           ~here:(up_cell up)
           ~right:(Option.map up_cell upright)
       with
      | None -> err "head collision above cell %d" v
      | Some expected ->
          if not (Cell.equal expected content) then begin
            let entry_ok =
              (upleft = None
              && Rules.explained_by_entry machine ~side:`Left ~expected
                   ~actual:content)
              || upright = None
                 && Rules.explained_by_entry machine ~side:`Right ~expected
                      ~actual:content
            in
            if not entry_ok then
              err "cell %d does not follow from the row above" v
          end)
  | None ->
      (* Top-row-like cell: if not glued, this must be the genuine
         initial row — blank, headless (or the pivot itself). *)
      if glued = [] && not own_pivot then begin
        if not (Cell.equal content Cell.blank) then
          err "unglued top-row cell %d is not blank" v
      end);
  List.rev !errors

let violations ctx v =
  match (ctx.label v).Gmr.part with
  | Gmr.Pyr _ -> pyr_rules ctx v
  | Gmr.Cell _ -> cell_rules ctx v

let ctx_of lg =
  {
    g = Labelled.graph lg;
    label = Labelled.label lg;
    parent_memo = Array.make (Labelled.order lg) None;
  }

let violations_in lg v = violations (ctx_of lg) v

let violations_view (view : Gmr.label View.t) =
  violations
    {
      g = view.View.graph;
      label = (fun u -> view.View.labels.(u));
      parent_memo = Array.make (View.order view) None;
    }
    view.View.center

let structure_array lg =
  let ctx = ctx_of lg in
  Array.init (Labelled.order lg) (fun v -> violations ctx v = [])

let first_violation lg =
  let ctx = ctx_of lg in
  let n = Labelled.order lg in
  let rec go v =
    if v >= n then None
    else
      match violations ctx v with
      | [] -> go (v + 1)
      | reason :: _ -> Some (v, reason)
  in
  go 0

let structure_ok (t : Gmr.t) = first_violation t.Gmr.lg = None

let global_check ~r ~config (lg : Gmr.label Labelled.t) =
  if Labelled.order lg = 0 then false
  else begin
    let machine = (Labelled.label lg 0).Gmr.machine in
    match Gmr.build ~config ~r machine with
    | Error _ -> false
    | Ok reference ->
        Labelled.order lg = Labelled.order reference.Gmr.lg
        && Iso.labelled_isomorphic Gmr.equal_label lg reference.Gmr.lg
  end
