lib/core/bound.mli: Ids Locald_local
