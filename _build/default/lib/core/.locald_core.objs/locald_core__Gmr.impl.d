lib/core/gmr.ml: Array Cell Exec Format Fragment Fun Graph Hashtbl Iso Labelled List Locald_graph Locald_turing Machine Option Printf Quadtree Table View
