lib/core/tree_deciders.mli: Algorithm Locald_local Tree_instances
