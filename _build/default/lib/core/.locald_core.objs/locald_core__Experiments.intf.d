lib/core/experiments.mli: Ids Locald_local
