lib/core/gmr.mli: Cell Exec Format Fragment Labelled Locald_graph Locald_turing Machine Quadtree View
