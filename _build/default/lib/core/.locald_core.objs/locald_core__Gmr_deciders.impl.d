lib/core/gmr_deciders.ml: Algorithm Array Cell Exec Gmr Gmr_check Graph Ids Labelled List Locald_decision Locald_graph Locald_local Locald_turing Printf Property Randomized Verdict View
