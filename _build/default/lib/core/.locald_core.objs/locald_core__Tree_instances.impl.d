lib/core/tree_instances.ml: Array Bound Format Graph Hashtbl Labelled Layered_tree List Locald_graph Locald_local
