lib/core/bound.ml: Ids Locald_graph Locald_local
