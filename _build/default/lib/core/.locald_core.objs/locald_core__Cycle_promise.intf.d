lib/core/cycle_promise.mli: Algorithm Ids Labelled Locald_decision Locald_graph Locald_local Promise
