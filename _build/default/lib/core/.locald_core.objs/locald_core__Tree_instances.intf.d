lib/core/tree_instances.mli: Format Ids Labelled Layered_tree Locald_graph Locald_local
