lib/core/gmr_deciders.mli: Algorithm Gmr Ids Locald_decision Locald_graph Locald_local Locald_turing Machine Property Random Randomized Verdict
