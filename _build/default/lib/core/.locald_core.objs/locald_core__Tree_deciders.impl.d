lib/core/tree_deciders.ml: Algorithm Array Bound Decider Fun Graph Hashtbl Iso Labelled Layered_tree List Locald_decision Locald_graph Locald_local Option Simulation Tree_instances Verdict View
