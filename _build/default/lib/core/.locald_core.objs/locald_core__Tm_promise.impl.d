lib/core/tm_promise.ml: Algorithm Array Exec Gen Gmr_deciders Graph Labelled Locald_decision Locald_graph Locald_local Locald_turing Machine Printf Promise View Zoo
