lib/core/tm_promise.mli: Algorithm Labelled Locald_decision Locald_graph Locald_local Locald_turing Machine Promise
