lib/core/gmr_check.mli: Gmr Labelled Locald_graph View
