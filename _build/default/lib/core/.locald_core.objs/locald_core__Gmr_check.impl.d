lib/core/gmr_check.ml: Array Cell Format Gmr Graph Grid Iso Labelled List Locald_graph Locald_turing Option Quadtree Rules View
