lib/core/report.ml: Experiments List Printf String
