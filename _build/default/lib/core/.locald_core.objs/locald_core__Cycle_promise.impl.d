lib/core/cycle_promise.ml: Algorithm Gen Graph Ids Iso Labelled List Locald_decision Locald_graph Locald_local Promise Property View
