lib/graph/view.ml: Array Format Graph Hashtbl Labelled Option
