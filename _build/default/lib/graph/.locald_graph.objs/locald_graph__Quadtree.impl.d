lib/graph/quadtree.ml: Array Format Graph Grid Labelled List
