lib/graph/quadtree.mli: Format Graph Labelled
