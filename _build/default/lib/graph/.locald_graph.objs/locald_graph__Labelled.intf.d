lib/graph/labelled.mli: Format Graph
