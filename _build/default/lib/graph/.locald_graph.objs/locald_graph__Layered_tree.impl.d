lib/graph/layered_tree.ml: Array Format Graph Hashtbl Labelled List
