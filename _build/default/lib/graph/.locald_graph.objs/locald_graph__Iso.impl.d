lib/graph/iso.ml: Array Fun Graph Hashtbl Int Labelled List Option Set View
