lib/graph/view.mli: Format Graph Labelled
