lib/graph/gen.ml: Format Graph List Random
