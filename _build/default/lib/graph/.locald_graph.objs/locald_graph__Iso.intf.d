lib/graph/iso.mli: Graph Labelled View
