lib/graph/grid.ml: Array Gen Graph Hashtbl List Option
