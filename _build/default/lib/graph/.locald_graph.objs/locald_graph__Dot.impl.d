lib/graph/dot.ml: Array Buffer Format Graph Labelled List Printf String View
