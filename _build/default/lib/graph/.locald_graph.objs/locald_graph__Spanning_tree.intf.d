lib/graph/spanning_tree.mli: Graph
