lib/graph/labelled.ml: Array Format Graph Printf
