lib/graph/dot.mli: Format Graph Labelled View
