lib/graph/grid.mli: Graph
