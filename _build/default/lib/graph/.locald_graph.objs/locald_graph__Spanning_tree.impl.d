lib/graph/spanning_tree.ml: Array Format Fun Graph List Queue
