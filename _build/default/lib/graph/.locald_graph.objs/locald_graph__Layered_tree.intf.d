lib/graph/layered_tree.mli: Format Graph Labelled
