type coord3 = { x : int; y : int; z : int }
type label = { m6x : int; m6y : int; z3 : int }

let equal_label (a : label) b = a = b

let pp_label ppf { m6x; m6y; z3 } =
  Format.fprintf ppf "(x%%6=%d, y%%6=%d, z%%3=%d)" m6x m6y z3

let invalid fmt = Format.kasprintf (fun s -> raise (Graph.Invalid_graph s)) fmt

let label_of_coord ?(phase = (0, 0)) { x; y; z } =
  let px, py = phase in
  {
    m6x = (((x + px) mod 6) + 6) mod 6;
    m6y = (((y + py) mod 6) + 6) mod 6;
    z3 = z mod 3;
  }

let side ~h = 1 lsl h

let level_side ~h z = 1 lsl (h - z)

let level_order ~h z =
  let s = level_side ~h z in
  s * s

(* Geometric series: sum_{k=0}^{z-1} 4^(h-k) = (4^(h+1) - 4^(h-z+1)) / 3 *)
let level_offset ~h z =
  let rec go k acc = if k >= z then acc else go (k + 1) (acc + level_order ~h k) in
  go 0 0

let order ~h = level_offset ~h (h + 1)

let index ~h { x; y; z } = level_offset ~h z + (y * level_side ~h z) + x

let coord_of_index ~h i =
  let rec find z = if level_offset ~h (z + 1) > i then z else find (z + 1) in
  let z = find 0 in
  let rel = i - level_offset ~h z in
  let s = level_side ~h z in
  { x = rel mod s; y = rel / s; z }

let build ~h =
  if h < 0 then invalid "quadtree: negative height %d" h;
  let n = order ~h in
  let edges = ref [] in
  for z = 0 to h do
    let s = level_side ~h z in
    for y = 0 to s - 1 do
      for x = 0 to s - 1 do
        let v = index ~h { x; y; z } in
        if x + 1 < s then edges := (v, index ~h { x = x + 1; y; z }) :: !edges;
        if y + 1 < s then edges := (v, index ~h { x; y = y + 1; z }) :: !edges;
        if z < h then
          edges := (v, index ~h { x = x / 2; y = y / 2; z = z + 1 }) :: !edges
      done
    done
  done;
  Graph.of_edges ~n !edges

let labelled ?phase ~h () =
  let g = build ~h in
  Labelled.init g (fun v -> label_of_coord ?phase (coord_of_index ~h v))

type classify = Bottom of int * int | Upper of label | Foreign

let own_label classify v =
  match classify v with
  | Bottom (m6x, m6y) -> Some { m6x; m6y; z3 = 0 }
  | Upper l -> Some l
  | Foreign -> None

type edge_kind = Sibling of Grid.dir | Parent | Child

let classify_edge (me : label) (other : label) : edge_kind option =
  if other.z3 = (me.z3 + 1) mod 3 then Some Parent
  else if other.z3 = (me.z3 + 2) mod 3 then Some Child
  else if other.z3 = me.z3 then
    (* Mod-6 adjacency in a unique direction. *)
    let step (a, b) = function
      | Grid.Left -> ((a + 5) mod 6, b)
      | Grid.Right -> ((a + 1) mod 6, b)
      | Grid.Up -> (a, (b + 5) mod 6)
      | Grid.Down -> (a, (b + 1) mod 6)
    in
    let me6 = (me.m6x, me.m6y) and other6 = (other.m6x, other.m6y) in
    let hits =
      List.filter
        (fun d -> step me6 d = other6)
        [ Grid.Left; Grid.Right; Grid.Up; Grid.Down ]
    in
    (match hits with [ d ] -> Some (Sibling d) | _ -> None)
  else None

let parent_of ~classify g v =
  match own_label classify v with
  | None -> None
  | Some me ->
      let parents =
        Array.to_list (Graph.neighbours g v)
        |> List.filter (fun u ->
               match own_label classify u with
               | Some lu -> classify_edge me lu = Some Parent
               | None -> false)
      in
      (match parents with [ p ] -> Some p | _ -> None)

let inspect ~classify g v =
  match own_label classify v with
  | None -> [ "node is not part of the pyramid" ]
  | Some me ->
      let errors = ref [] in
      let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
      let nbrs = Graph.neighbours g v in
      let siblings = ref [] and parents = ref [] and children = ref [] in
      Array.iter
        (fun u ->
          match own_label classify u with
          | None -> () (* foreign edges (e.g. to the pivot) are checked by the caller *)
          | Some lu -> (
              match classify_edge me lu with
              | None -> err "unclassifiable pyramid edge %d-%d" v u
              | Some (Sibling d) -> siblings := (d, u) :: !siblings
              | Some Parent -> parents := u :: !parents
              | Some Child -> children := u :: !children))
        nbrs;
      (* Rule: at most one sibling per direction. *)
      let dirs = List.map fst !siblings in
      if List.length (List.sort_uniq compare dirs) <> List.length dirs then
        err "two siblings in the same direction at %d" v;
      (* Rule: one parent, or apex (no parent and no siblings). *)
      (match !parents with
      | [] ->
          if !siblings <> [] then err "non-apex node %d has no parent" v
      | [ _ ] -> ()
      | _ -> err "node %d has %d parents" v (List.length !parents));
      (* Rule: parent's mod-3 position is the halved own position, and
         parity relates sibling parents. *)
      (match !parents with
      | [ p ] -> (
          match own_label classify p with
          | None -> ()
          | Some lp ->
              if lp.m6x mod 3 <> me.m6x / 2 || lp.m6y mod 3 <> me.m6y / 2 then
                err "parent of %d has inconsistent halved position" v;
              (* Grid-adjacent nodes: equal or adjacent parents per parity. *)
              List.iter
                (fun (d, u) ->
                  match parent_of ~classify g u with
                  | None -> err "sibling %d of %d lacks a unique parent" u v
                  | Some pu ->
                      let same_expected =
                        match d with
                        | Grid.Right -> me.m6x mod 2 = 0
                        | Grid.Left -> me.m6x mod 2 = 1
                        | Grid.Down -> me.m6y mod 2 = 0
                        | Grid.Up -> me.m6y mod 2 = 1
                      in
                      if same_expected then begin
                        if pu <> p then
                          err "siblings %d,%d should share a parent" v u
                      end
                      else if pu = p then
                        err "siblings %d,%d should have distinct parents" v u
                      else if not (Graph.mem_edge g p pu) then
                        err "parents of adjacent %d,%d are not adjacent" v u)
                !siblings)
      | _ -> ());
      (* Rule: children come in oriented 2x2 blocks of four. *)
      let is_bottom = match classify v with Bottom _ -> true | _ -> false in
      (match (!children, is_bottom) with
      | [], true -> ()
      | [], false -> err "upper node %d has no children" v
      | _, true -> err "bottom node %d has children" v
      | cs, false ->
          if List.length cs <> 4 then
            err "node %d has %d children, expected 4" v (List.length cs)
          else begin
            let labelled_children =
              List.filter_map
                (fun c ->
                  match own_label classify c with
                  | Some l -> Some (c, l)
                  | None -> None)
                cs
            in
            let find_parity px py =
              List.filter
                (fun (_, l) -> l.m6x mod 2 = px && l.m6y mod 2 = py)
                labelled_children
            in
            (match (find_parity 0 0, find_parity 1 0, find_parity 0 1, find_parity 1 1) with
            | [ (nw, _) ], [ (ne, _) ], [ (sw, _) ], [ (se, _) ] ->
                if
                  not
                    (Graph.mem_edge g nw ne && Graph.mem_edge g nw sw
                   && Graph.mem_edge g ne se && Graph.mem_edge g sw se)
                then err "children of %d do not form a 2x2 block" v;
                if Graph.mem_edge g nw se || Graph.mem_edge g ne sw then
                  err "children of %d have diagonal edges" v
            | _ -> err "children of %d have wrong parities" v);
            (* Children must agree the node is their parent. *)
            List.iter
              (fun (c, _) ->
                match parent_of ~classify g c with
                | Some p when p = v -> ()
                | _ -> err "child %d does not recognise %d as parent" c v)
              labelled_children
          end);
      List.rev !errors
