(** Labelled graphs [(G, x)]: a graph together with a local input label
    on every node (Section 1.2 of the paper). *)

type 'a t = private {
  graph : Graph.t;
  labels : 'a array;
}
(** Invariant: [Array.length labels = Graph.order graph]. *)

val make : Graph.t -> 'a array -> 'a t
(** @raise Graph.Invalid_graph if the label array length differs from
    the graph order. *)

val const : Graph.t -> 'a -> 'a t
(** Every node gets the same label. *)

val init : Graph.t -> (int -> 'a) -> 'a t

val graph : 'a t -> Graph.t
val label : 'a t -> int -> 'a
val labels : 'a t -> 'a array
val order : 'a t -> int

val map : ('a -> 'b) -> 'a t -> 'b t
val mapi : (int -> 'a -> 'b) -> 'a t -> 'b t

val relabel_nodes : 'a t -> int array -> 'a t
(** [relabel_nodes lg perm] renames node [v] to [perm.(v)], carrying
    labels along; the result is isomorphic to [lg] as a labelled graph. *)

val induced : 'a t -> int array -> 'a t * int array
(** Induced labelled subgraph; see {!Graph.induced}. *)

val disjoint_union : 'a t -> 'a t -> 'a t

val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
(** Representation equality (same numbering); use {!Iso} for
    isomorphism. *)

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
