type label = { r : int; x : int; y : int }

let equal_label (a : label) b = a = b
let pp_label ppf { r; x; y } = Format.fprintf ppf "(r=%d, x=%d, y=%d)" r x y

let invalid fmt = Format.kasprintf (fun s -> raise (Graph.Invalid_graph s)) fmt

let rec power base e = if e = 0 then 1 else base * power base (e - 1)

let level_width ~arity y = power arity y

let level_offset ~arity y =
  if arity = 1 then y
  else (power arity y - 1) / (arity - 1)

let node_index ~arity ~x ~y = level_offset ~arity y + x

let order ~arity ~depth = level_offset ~arity (depth + 1)

let make ~arity ~r ~depth =
  if arity < 1 then invalid "layered tree: arity %d < 1" arity;
  if depth < 0 then invalid "layered tree: negative depth %d" depth;
  let n = order ~arity ~depth in
  let edges = ref [] in
  for y = 0 to depth do
    let width = level_width ~arity y in
    for x = 0 to width - 1 do
      let v = node_index ~arity ~x ~y in
      (* Level path. *)
      if x + 1 < width then edges := (v, node_index ~arity ~x:(x + 1) ~y) :: !edges;
      (* Children. *)
      if y < depth then
        for j = 0 to arity - 1 do
          edges := (v, node_index ~arity ~x:((arity * x) + j) ~y:(y + 1)) :: !edges
        done
    done
  done;
  let g = Graph.of_edges ~n !edges in
  let labels =
    Array.init n (fun v ->
        (* Invert [node_index]: find the level by scanning offsets. *)
        let rec find_level y =
          if level_offset ~arity (y + 1) > v then y else find_level (y + 1)
        in
        let y = find_level 0 in
        { r; x = v - level_offset ~arity y; y })
  in
  Labelled.make g labels

let apexes ~arity ~depth ~r =
  let acc = ref [] in
  for y0 = depth - r downto 0 do
    for x0 = level_width ~arity y0 - 1 downto 0 do
      acc := (x0, y0) :: !acc
    done
  done;
  !acc

let cone ~arity ~apex:(x0, y0) ~r =
  let acc = ref [] in
  for k = r downto 0 do
    let scale = power arity k in
    for x = ((x0 + 1) * scale) - 1 downto x0 * scale do
      acc := node_index ~arity ~x ~y:(y0 + k) :: !acc
    done
  done;
  Array.of_list !acc

(* Expected neighbours of node (x, y) in a depth-[depth] layered tree. *)
let expected_neighbours ~arity ~depth ~r { x; y; _ } =
  let nbrs = ref [] in
  if y > 0 then nbrs := { r; x = x / arity; y = y - 1 } :: !nbrs;
  if y < depth then
    for j = arity - 1 downto 0 do
      nbrs := { r; x = (arity * x) + j; y = y + 1 } :: !nbrs
    done;
  if x > 0 then nbrs := { r; x = x - 1; y } :: !nbrs;
  if x < level_width ~arity y - 1 then nbrs := { r; x = x + 1; y } :: !nbrs;
  !nbrs

let cone_border ~arity ~depth ~apex ~r =
  let members = cone ~arity ~apex ~r in
  let inside = Hashtbl.create (2 * Array.length members) in
  Array.iter (fun v -> Hashtbl.replace inside v ()) members;
  let _, y0 = apex in
  members
  |> Array.to_list
  |> List.filter (fun v ->
         (* Recover the coordinates of v from its index. *)
         let rec find_level y =
           if level_offset ~arity (y + 1) > v then y else find_level (y + 1)
         in
         let y = find_level y0 in
         let x = v - level_offset ~arity y in
         expected_neighbours ~arity ~depth ~r:0 { r = 0; x; y }
         |> List.exists (fun l ->
                not (Hashtbl.mem inside (node_index ~arity ~x:l.x ~y:l.y))))
  |> Array.of_list

type node_check = {
  label_ok : bool;
  missing : label list;
  unexpected_tree : int list;
  foreign : int list;
}

let is_interior_ok c =
  c.label_ok && c.missing = [] && c.unexpected_tree = [] && c.foreign = []

let inspect ~arity ~depth ~label_of g v =
  match label_of v with
  | None -> None
  | Some ({ r; x; y } as lab) ->
      let label_ok = y >= 0 && y <= depth && x >= 0 && x < level_width ~arity y in
      if not label_ok then
        Some { label_ok; missing = []; unexpected_tree = []; foreign = [] }
      else begin
        let expected = expected_neighbours ~arity ~depth ~r lab in
        let nbrs = Graph.neighbours g v in
        let foreign = ref [] in
        let tree_nbr_labels = ref [] in
        let unexpected = ref [] in
        Array.iter
          (fun u ->
            match label_of u with
            | None -> foreign := u :: !foreign
            | Some lu ->
                if List.mem lu expected && not (List.mem lu !tree_nbr_labels) then
                  tree_nbr_labels := lu :: !tree_nbr_labels
                else unexpected := u :: !unexpected)
          nbrs;
        let missing =
          List.filter (fun l -> not (List.mem l !tree_nbr_labels)) expected
        in
        Some
          {
            label_ok;
            missing;
            unexpected_tree = List.rev !unexpected;
            foreign = List.rev !foreign;
          }
      end
