type t = {
  root : int;
  parent : int array;
  dist : int array;
}

let invalid fmt = Format.kasprintf (fun s -> raise (Graph.Invalid_graph s)) fmt

let bfs g ~root =
  let n = Graph.order g in
  if root < 0 || root >= n then invalid "spanning tree: root %d out of range" root;
  let parent = Array.make n (-1) in
  let dist = Array.make n max_int in
  parent.(root) <- root;
  dist.(root) <- 0;
  let queue = Queue.create () in
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun v ->
        if parent.(v) < 0 then begin
          parent.(v) <- u;
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      (Graph.neighbours g u)
  done;
  if Array.exists (fun p -> p < 0) parent then
    invalid "spanning tree: graph is disconnected";
  { root; parent; dist }

let parent t v = t.parent.(v)
let dist t v = t.dist.(v)
let is_root t v = t.root = v

let children t v =
  let acc = ref [] in
  Array.iteri
    (fun u p -> if p = v && u <> t.root then acc := u :: !acc)
    t.parent;
  List.sort compare !acc

let subtree_sizes t =
  let n = Array.length t.parent in
  let sizes = Array.make n 1 in
  (* Process nodes in decreasing distance, adding to parents. *)
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> compare t.dist.(b) t.dist.(a)) order;
  Array.iter
    (fun v -> if v <> t.root then sizes.(t.parent.(v)) <- sizes.(t.parent.(v)) + sizes.(v))
    order;
  sizes

let tree_edges t =
  Array.to_list (Array.mapi (fun v p -> (v, p)) t.parent)
  |> List.filter (fun (v, _) -> v <> t.root)
  |> List.map (fun (v, p) -> if v < p then (v, p) else (p, v))
  |> List.sort_uniq compare

let validate g t =
  let n = Graph.order g in
  Array.length t.parent = n
  && t.root >= 0 && t.root < n
  && t.parent.(t.root) = t.root
  && t.dist.(t.root) = 0
  &&
  let ok = ref true in
  Array.iteri
    (fun v p ->
      if v <> t.root then begin
        if not (Graph.mem_edge g v p) then ok := false;
        if t.dist.(v) <> t.dist.(p) + 1 then ok := false
      end)
    t.parent;
  !ok
