type coord = { x : int; y : int }

let index ~w { x; y } = (y * w) + x
let coord_of_index ~w i = { x = i mod w; y = i / w }
let graph ~w ~h = Gen.grid w h

let mod3 ?(phase = (0, 0)) { x; y } =
  let px, py = phase in
  (((x + px) mod 3 + 3) mod 3, ((y + py) mod 3 + 3) mod 3)

type dir = Left | Right | Up | Down

let opposite = function
  | Left -> Right
  | Right -> Left
  | Up -> Down
  | Down -> Up

let step_mod3 (a, b) = function
  | Left -> ((a + 2) mod 3, b)
  | Right -> ((a + 1) mod 3, b)
  | Up -> (a, (b + 2) mod 3)
  | Down -> (a, (b + 1) mod 3)

let dir_between a b =
  let candidates = [ Left; Right; Up; Down ] in
  match List.filter (fun d -> step_mod3 a d = b) candidates with
  | [ d ] -> Some d
  | _ -> None

let locally_oriented ~mod3_of g v =
  let own = mod3_of v in
  let nbrs = Graph.neighbours g v in
  let dirs = Array.map (fun u -> dir_between own (mod3_of u)) nbrs in
  Array.for_all Option.is_some dirs
  &&
  let seen = Hashtbl.create 4 in
  Array.for_all
    (fun d ->
      match d with
      | None -> false
      | Some d ->
          if Hashtbl.mem seen d then false
          else begin
            Hashtbl.replace seen d ();
            true
          end)
    dirs

let neighbour_in_dir ~mod3_of g v dir =
  let own = mod3_of v in
  let hits =
    Array.to_list (Graph.neighbours g v)
    |> List.filter (fun u -> dir_between own (mod3_of u) = Some dir)
  in
  match hits with [ u ] -> Some u | _ -> None
