(** Layered quadtrees — the "pyramid" of Appendix A (Figure 3).

    [build ~h] is the pyramid over a [2^h * 2^h] grid: levels
    [z = 0 .. h], level [z] being a [2^(h-z)] square grid, and each
    node [(x, y, z)] with [z < h] connected to [(x/2, y/2, z+1)].

    Nodes carry only *bounded* labels: the residues
    [(x mod 6, y mod 6, z mod 3)]. Mod 6 supplies both the mod-3
    orientation of Section 3.2 and the coordinate parity needed to
    check parent/child block alignment; mod-3 level residues let nodes
    tell apart adjacent layers. Absolute coordinates or levels are
    deliberately *not* included: they would leak the machine's running
    time to an Id-oblivious algorithm and destroy property (P3). *)

type coord3 = { x : int; y : int; z : int }

type label = { m6x : int; m6y : int; z3 : int }

val equal_label : label -> label -> bool
val pp_label : Format.formatter -> label -> unit

val label_of_coord : ?phase:int * int -> coord3 -> label
(** [phase] shifts the (x, y) origin, as in {!Grid.mod3}. *)

val side : h:int -> int
(** Grid side [2^h]. *)

val level_order : h:int -> int -> int
(** Number of nodes on level [z]. *)

val level_offset : h:int -> int -> int
(** Index of the first node of level [z]; level 0 (the base grid)
    comes first, in row-major order. *)

val order : h:int -> int
val index : h:int -> coord3 -> int
val coord_of_index : h:int -> int -> coord3

val build : h:int -> Graph.t
(** The pyramid graph (including the base grid's edges). *)

val labelled : ?phase:int * int -> h:int -> unit -> label Labelled.t

(** {1 Local structure rules}

    The radius-2 rules each node checks. A node is classified by the
    caller: base-grid nodes carry their own richer labels (table
    cells) from which a mod-6 position is derived; upper nodes carry
    {!label}s; anything else is foreign (e.g. the pivot of Section 3,
    handled by its own rules). *)

type classify = Bottom of int * int | Upper of label | Foreign

val inspect :
  classify:(int -> classify) -> Graph.t -> int -> string list
(** [inspect ~classify g v] returns the list of violated rules at [v]
    (empty for a structurally consistent node). The rules:
    + every edge is classifiable (sibling / parent / child) from the
      level residues;
    + sibling edges are consistently oriented (one per direction);
    + a node has exactly one parent, or is the apex (no parent, no
      siblings);
    + an upper node has exactly four children forming an oriented
      2x2 block with the correct parities, and is those children's
      unique parent;
    + grid-adjacent nodes have equal or adjacent parents as dictated
      by the coordinate parity;
    + a parent's mod-3 position is the halved child position. *)

val parent_of :
  classify:(int -> classify) -> Graph.t -> int -> int option
(** The unique parent-edge endpoint, if the node has exactly one. *)
