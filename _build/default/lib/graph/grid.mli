(** Square grids with the [(x mod 3, y mod 3)] orientation labelling of
    Section 3.2.

    The execution table of a Turing machine is laid out on such a grid;
    the mod-3 labels let every node identify, purely locally, which of
    its neighbours sit to its left/right/top/bottom, supplying the
    top-to-bottom and left-to-right edge orientations the table rules
    need. *)

type coord = { x : int; y : int }

val index : w:int -> coord -> int
(** Row-major index: [(y * w) + x]. *)

val coord_of_index : w:int -> int -> coord

val graph : w:int -> h:int -> Graph.t
(** The [w * h] grid graph (alias of {!Gen.grid}). *)

val mod3 : ?phase:int * int -> coord -> int * int
(** The orientation label of a cell; [phase] shifts the origin (the
    fragment collection enumerates all 9 phases so that a fragment can
    impersonate any window of the real table). *)

type dir = Left | Right | Up | Down

val opposite : dir -> dir

val step_mod3 : int * int -> dir -> int * int
(** The orientation label expected of the neighbour in the given
    direction. *)

val dir_between : int * int -> int * int -> dir option
(** [dir_between a b] is the direction [d] such that
    [step_mod3 a d = b], if the two labels are mod-3 adjacent in a
    unique direction. Diagonal or equal labels give [None]. *)

val locally_oriented :
  mod3_of:(int -> int * int) -> Graph.t -> int -> bool
(** [locally_oriented ~mod3_of g v] checks the node-local grid
    orientation condition at [v]: every incident edge goes in a
    well-defined direction and no two incident edges go in the same
    direction. This is the radius-1 test each node performs; it does
    not (and cannot) exclude tori — that is the pyramid's job. *)

val neighbour_in_dir :
  mod3_of:(int -> int * int) -> Graph.t -> int -> dir -> int option
(** The unique neighbour in direction [dir], if any. Meaningful only
    at nodes passing {!locally_oriented}. *)
