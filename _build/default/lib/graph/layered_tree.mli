(** Layered trees (Figure 1): a complete [arity]-ary tree of depth [d]
    in which the nodes of each level are additionally connected by a
    path in the natural order. Every node is labelled with its
    coordinates [(x, y)] (position [x] within level [y]) plus the
    construction parameter [r].

    [arity = 2] is the paper's construction. [arity = 1] degenerates
    to a "layered path", which realises the same separation argument
    with instances of linear (rather than doubly-exponential) size; the
    experiment harness uses it to run the full view-coverage
    experiment at horizons [t >= 1] within memory (see DESIGN.md,
    substitutions). *)

type label = { r : int; x : int; y : int }

val equal_label : label -> label -> bool
val pp_label : Format.formatter -> label -> unit

val level_width : arity:int -> int -> int
(** [level_width ~arity y] is the number of nodes on level [y]
    ([arity^y]). *)

val level_offset : arity:int -> int -> int
(** Index of the first node of level [y]. *)

val node_index : arity:int -> x:int -> y:int -> int

val order : arity:int -> depth:int -> int
(** Total number of nodes of the depth-[depth] layered tree. *)

val make : arity:int -> r:int -> depth:int -> label Labelled.t
(** The layered tree [T] of the given depth, labelled with
    coordinates. [T_r] of the paper is [make ~arity:2 ~r ~depth:(R r)].
    @raise Graph.Invalid_graph if [arity < 1] or [depth < 0]. *)

(** {1 Cones: the induced sub-instances H <=_r T} *)

val apexes : arity:int -> depth:int -> r:int -> (int * int) list
(** All apex positions [(x0, y0)] whose depth-[r] descendant cone fits
    inside a depth-[depth] tree ([y0 + r <= depth]). *)

val cone : arity:int -> apex:int * int -> r:int -> int array
(** Vertex indices (in the big tree) of the depth-[r] cone below the
    apex: levels [y0 .. y0 + r], positions
    [x0 * arity^k .. (x0+1) * arity^k - 1] at level [y0 + k]. The
    induced subgraph on a cone is a layered depth-[r] tree. *)

val cone_border : arity:int -> depth:int -> apex:int * int -> r:int -> int array
(** The border nodes of the cone: members with at least one neighbour
    of the depth-[depth] tree outside the cone. *)

(** {1 Local structure checking} *)

type node_check = {
  label_ok : bool;        (** coordinates in range for the tree *)
  missing : label list;   (** expected neighbours absent at this node *)
  unexpected_tree : int list;
      (** tree-labelled neighbours that should not be adjacent *)
  foreign : int list;     (** neighbours carrying no tree label *)
}

val inspect :
  arity:int ->
  depth:int ->
  label_of:(int -> label option) ->
  Graph.t ->
  int ->
  node_check option
(** Radius-1 structural inspection of a node against the layered-tree
    rules for a depth-[depth] tree. Returns [None] when the node
    itself carries no tree label. Interior nodes of a genuine tree
    yield [{ label_ok = true; missing = []; unexpected_tree = [];
    foreign = [] }]; border nodes of a cone report their missing
    neighbours and their pivot edge as [foreign]. *)

val is_interior_ok : node_check -> bool
