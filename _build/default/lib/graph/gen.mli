(** Graph generators used by examples, tests and workloads. *)

val path : int -> Graph.t
(** [path n] is the path on [n >= 1] vertices [0 - 1 - ... - n-1]. *)

val cycle : int -> Graph.t
(** [cycle n] is the cycle on [n >= 3] vertices. *)

val star : int -> Graph.t
(** [star n] has centre [0] and leaves [1 .. n-1]. *)

val complete : int -> Graph.t

val complete_binary_tree : int -> Graph.t
(** [complete_binary_tree d] is the complete binary tree of depth [d]
    ([2^(d+1) - 1] vertices); vertex [(x, y)] at depth [y], position
    [x], has index [2^y - 1 + x]. *)

val grid : int -> int -> Graph.t
(** [grid w h] is the [w * h] square grid; vertex [(x, y)] has index
    [y * w + x]. *)

val torus : int -> int -> Graph.t
(** Like {!grid} with wrap-around edges — locally grid-like but not a
    grid (the counterfeit of Section 3.2). Requires [w, h >= 3]. *)

val matching : int -> Graph.t
(** [matching k] is the 1-regular graph on [2k] vertices (the
    2-colouring example of Section 1.3). *)

val random_graph : Random.State.t -> n:int -> p:float -> Graph.t
(** Erdos-Renyi [G(n, p)]. *)

val random_tree : Random.State.t -> int -> Graph.t
(** Uniform-attachment random tree on [n >= 1] vertices. *)

val random_connected : Random.State.t -> n:int -> p:float -> Graph.t
(** [random_graph] conditioned on connectivity by adding a random
    spanning tree first. *)
