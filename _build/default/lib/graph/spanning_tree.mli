(** Rooted spanning trees (BFS), used by the proof-labelling schemes
    and as a general substrate. *)

type t = private {
  root : int;
  parent : int array;   (** [parent.(root) = root] *)
  dist : int array;     (** hop distance from the root *)
}

val bfs : Graph.t -> root:int -> t
(** @raise Graph.Invalid_graph if the graph is disconnected. *)

val parent : t -> int -> int
val dist : t -> int -> int
val is_root : t -> int -> bool

val children : t -> int -> int list
(** Children of a node in the tree (sorted). *)

val subtree_sizes : t -> int array
(** [sizes.(v)] = number of nodes in [v]'s subtree (the root's is
    [n]). *)

val tree_edges : t -> (int * int) list
(** The [n - 1] tree edges, normalised and sorted. *)

val validate : Graph.t -> t -> bool
(** Parents are neighbours, distances decrease along parents, exactly
    one root. *)
