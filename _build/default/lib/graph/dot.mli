(** Graphviz (DOT) export, for inspecting the constructions. *)

val of_graph : ?name:string -> Graph.t -> string

val of_labelled :
  ?name:string ->
  pp_label:(Format.formatter -> 'a -> unit) ->
  'a Labelled.t ->
  string
(** Node labels become DOT labels. *)

val of_view :
  ?name:string ->
  pp_label:(Format.formatter -> 'a -> unit) ->
  'a View.t ->
  string
(** The centre is highlighted; identifiers (when present) are shown. *)
