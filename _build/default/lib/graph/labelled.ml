type 'a t = {
  graph : Graph.t;
  labels : 'a array;
}

let make graph labels =
  if Array.length labels <> Graph.order graph then
    raise
      (Graph.Invalid_graph
         (Printf.sprintf "labelled graph: %d labels for %d nodes"
            (Array.length labels) (Graph.order graph)));
  { graph; labels }

let const graph x = make graph (Array.make (Graph.order graph) x)
let init graph f = make graph (Array.init (Graph.order graph) f)
let graph lg = lg.graph
let label lg v = lg.labels.(v)
let labels lg = lg.labels
let order lg = Graph.order lg.graph
let map f lg = { lg with labels = Array.map f lg.labels }
let mapi f lg = { lg with labels = Array.mapi f lg.labels }

let relabel_nodes lg perm =
  let g = Graph.relabel lg.graph perm in
  let labels = Array.make (order lg) lg.labels.(0) in
  Array.iteri (fun v image -> labels.(image) <- lg.labels.(v)) perm;
  make g labels

let induced lg vs =
  let g, back = Graph.induced lg.graph vs in
  (make g (Array.map (fun v -> lg.labels.(v)) back), back)

let disjoint_union a b =
  make (Graph.disjoint_union a.graph b.graph) (Array.append a.labels b.labels)

let equal eq a b = Graph.equal a.graph b.graph && Array.for_all2 eq a.labels b.labels

let pp pp_label ppf lg =
  Format.fprintf ppf "@[<v 2>labelled %a" Graph.pp lg.graph;
  Array.iteri (fun v x -> Format.fprintf ppf "@ x(%d)=%a" v pp_label x) lg.labels;
  Format.fprintf ppf "@]"
