let invalid fmt = Format.kasprintf (fun s -> raise (Graph.Invalid_graph s)) fmt

let path n =
  if n < 1 then invalid "path: need n >= 1, got %d" n;
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid "cycle: need n >= 3, got %d" n;
  Graph.of_edges ~n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let star n =
  if n < 1 then invalid "star: need n >= 1, got %d" n;
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let complete_binary_tree d =
  if d < 0 then invalid "complete_binary_tree: negative depth %d" d;
  let n = (1 lsl (d + 1)) - 1 in
  let index x y = (1 lsl y) - 1 + x in
  let edges = ref [] in
  for y = 0 to d - 1 do
    for x = 0 to (1 lsl y) - 1 do
      edges := (index x y, index (2 * x) (y + 1)) :: !edges;
      edges := (index x y, index ((2 * x) + 1) (y + 1)) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let grid w h =
  if w < 1 || h < 1 then invalid "grid: need positive dimensions, got %dx%d" w h;
  let index x y = (y * w) + x in
  let edges = ref [] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if x + 1 < w then edges := (index x y, index (x + 1) y) :: !edges;
      if y + 1 < h then edges := (index x y, index x (y + 1)) :: !edges
    done
  done;
  Graph.of_edges ~n:(w * h) !edges

let torus w h =
  if w < 3 || h < 3 then invalid "torus: need dimensions >= 3, got %dx%d" w h;
  let index x y = (y * w) + x in
  let edges = ref [] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      edges := (index x y, index ((x + 1) mod w) y) :: !edges;
      edges := (index x y, index x ((y + 1) mod h)) :: !edges
    done
  done;
  Graph.of_edges ~n:(w * h) !edges

let matching k =
  if k < 1 then invalid "matching: need k >= 1, got %d" k;
  Graph.of_edges ~n:(2 * k) (List.init k (fun i -> (2 * i, (2 * i) + 1)))

let random_graph rng ~n ~p =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let random_tree rng n =
  if n < 1 then invalid "random_tree: need n >= 1, got %d" n;
  let edges = List.init (n - 1) (fun i -> (i + 1, Random.State.int rng (i + 1))) in
  Graph.of_edges ~n edges

let random_connected rng ~n ~p =
  let g = random_graph rng ~n ~p in
  let tree = random_tree rng n in
  Graph.add_edges g (Graph.edges tree)
