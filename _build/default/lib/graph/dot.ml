let escape s =
  String.concat "\\\"" (String.split_on_char '"' s)

let render ?(name = "G") ~node_attrs g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph \"%s\" {\n" (escape name));
  Graph.iter_vertices
    (fun v -> Buffer.add_string buf (Printf.sprintf "  n%d [%s];\n" v (node_attrs v)))
    g;
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  n%d -- n%d;\n" u v))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_graph ?name g =
  render ?name ~node_attrs:(fun v -> Printf.sprintf "label=\"%d\"" v) g

let of_labelled ?name ~pp_label lg =
  render ?name
    ~node_attrs:(fun v ->
      Printf.sprintf "label=\"%s\""
        (escape (Format.asprintf "%a" pp_label (Labelled.label lg v))))
    (Labelled.graph lg)

let of_view ?name ~pp_label (view : 'a View.t) =
  render ?name
    ~node_attrs:(fun v ->
      let label = Format.asprintf "%a" pp_label view.View.labels.(v) in
      let id_part =
        match view.View.ids with
        | Some ids -> Printf.sprintf " id=%d" ids.(v)
        | None -> ""
      in
      let shape = if v = view.View.center then ", shape=doublecircle" else "" in
      Printf.sprintf "label=\"%s%s\"%s" (escape label) id_part shape)
    view.View.graph
