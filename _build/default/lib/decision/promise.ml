type 'a t = {
  name : string;
  promise : 'a Locald_graph.Labelled.t -> bool;
  mem : 'a Locald_graph.Labelled.t -> bool;
}

let make ~name ~promise ~mem = { name; promise; mem }

let to_property t =
  Property.make ~name:(t.name ^ "-total") (fun lg -> t.promise lg && t.mem lg)
