open Locald_graph
open Locald_local

type budget =
  | Exhaustive of int
  | Sampled of { bound : int; trials : int; seed : int }

let assignments_of_budget budget ~k =
  match budget with
  | Exhaustive bound -> Ids.enumerate_injections ~n:k ~bound
  | Sampled { bound; trials; seed } ->
      let rng = Random.State.make [| seed; k |] in
      Seq.init trials (fun _ -> Ids.random_below rng ~bound k)

let a_star ~budget alg =
  let name =
    Printf.sprintf "%s*[%s]" alg.Algorithm.name
      (match budget with
      | Exhaustive b -> Printf.sprintf "exhaustive<%d" b
      | Sampled { bound; trials; _ } -> Printf.sprintf "sampled %dx<%d" trials bound)
  in
  Algorithm.make_oblivious ~name ~radius:alg.Algorithm.radius (fun view ->
      let k = View.order view in
      let all_yes = ref true in
      let check ids =
        let view' = View.reassign_ids view (Ids.to_array ids) in
        if not (alg.Algorithm.decide view') then all_yes := false
      in
      let rec scan seq =
        if !all_yes then
          match seq () with
          | Seq.Nil -> ()
          | Seq.Cons (ids, rest) ->
              check ids;
              scan rest
      in
      scan (assignments_of_budget budget ~k);
      !all_yes)
