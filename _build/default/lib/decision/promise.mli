(** Promise problems (Section 1.2): only inputs satisfying the promise
    matter; a decider's behaviour outside the promise is unconstrained. *)

open Locald_graph

type 'a t = {
  name : string;
  promise : 'a Labelled.t -> bool;
  mem : 'a Labelled.t -> bool;  (** meaningful only under the promise *)
}

val make :
  name:string ->
  promise:('a Labelled.t -> bool) ->
  mem:('a Labelled.t -> bool) ->
  'a t

val to_property : 'a t -> 'a Property.t
(** The total property "satisfies the promise and is a yes-instance" —
    what a promise-free variant must decide. *)
