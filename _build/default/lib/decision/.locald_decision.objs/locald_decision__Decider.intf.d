lib/decision/decider.mli: Algorithm Format Ids Labelled Locald_graph Locald_local Random Verdict
