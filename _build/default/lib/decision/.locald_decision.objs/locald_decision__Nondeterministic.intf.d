lib/decision/nondeterministic.mli: Labelled Locald_graph Random Verdict View
