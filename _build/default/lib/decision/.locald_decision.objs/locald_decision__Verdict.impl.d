lib/decision/verdict.ml: Array Format List
