lib/decision/property.ml: Array Fun Graph Labelled Locald_graph Printf Random
