lib/decision/verdict.mli: Format
