lib/decision/randomized_decider.mli: Format Ids Labelled Locald_graph Locald_local Random Randomized
