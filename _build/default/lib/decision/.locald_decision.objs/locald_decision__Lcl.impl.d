lib/decision/lcl.ml: Algorithm Array Graph Labelled List Locald_graph Locald_local Printf Property Runner Verdict View
