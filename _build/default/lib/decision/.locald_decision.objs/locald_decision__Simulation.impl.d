lib/decision/simulation.ml: Algorithm Ids Locald_graph Locald_local Printf Random Seq View
