lib/decision/lcl.mli: Algorithm Labelled Locald_graph Locald_local Property View
