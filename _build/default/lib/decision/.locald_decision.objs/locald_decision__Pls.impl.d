lib/decision/pls.ml: Algorithm Array Float Graph Ids Labelled Locald_graph Locald_local Runner Spanning_tree Verdict View
