lib/decision/property.mli: Labelled Locald_graph Random
