lib/decision/nondeterministic.ml: Algorithm Array Graph Labelled List Locald_graph Locald_local Queue Random Runner Seq Verdict View
