lib/decision/decider.ml: Format Ids Locald_graph Locald_local Printf Runner Seq Verdict
