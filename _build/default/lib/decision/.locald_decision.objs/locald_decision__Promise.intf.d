lib/decision/promise.mli: Labelled Locald_graph Property
