lib/decision/randomized_decider.ml: Format Labelled Locald_graph Locald_local Randomized Verdict
