lib/decision/hereditary.ml: Array Graph Hashtbl Int Labelled List Locald_graph Option Property Random Set
