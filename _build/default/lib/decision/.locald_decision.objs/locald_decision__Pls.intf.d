lib/decision/pls.mli: Ids Labelled Locald_graph Locald_local Random Verdict View
