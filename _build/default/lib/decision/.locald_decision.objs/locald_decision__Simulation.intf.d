lib/decision/simulation.mli: Algorithm Ids Locald_local Seq
