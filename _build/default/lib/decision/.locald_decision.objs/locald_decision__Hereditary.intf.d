lib/decision/hereditary.mli: Labelled Locald_graph Property Random
