lib/decision/promise.ml: Locald_graph Property
