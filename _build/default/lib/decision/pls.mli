(** Proof-labelling schemes (Korman-Kutten-Peleg, the paper's refs
    [12,13]) — certificates verified by a radius-1 verifier that {e
    does} see identifiers.

    The contrast with {!Nondeterministic} is the point: NLD*
    certificates must work without identifiers (and the paper notes
    NLD* = NLD), while classical proof-labelling schemes lean on
    identifiers to tie certificates to concrete nodes — e.g. parent
    pointers of a spanning tree are identifiers. *)

open Locald_graph
open Locald_local

type ('a, 'c) scheme = {
  pls_name : string;
  pls_radius : int;
  prover : 'a Labelled.t -> ids:Ids.t -> 'c array;
  verify : ('a * 'c) View.t -> bool;
      (** runs on views carrying identifiers *)
}

val accepts_with :
  ('a, 'c) scheme -> 'a Labelled.t -> ids:Ids.t -> certificates:'c array ->
  Verdict.t

val accepts_proved : ('a, 'c) scheme -> 'a Labelled.t -> ids:Ids.t -> Verdict.t

val refuted_sampled :
  rng:Random.State.t ->
  trials:int ->
  gen_certificate:(Random.State.t -> 'c) ->
  ('a, 'c) scheme ->
  'a Labelled.t ->
  ids:Ids.t ->
  bool
(** No sampled certificate assignment is accepted. *)

val proof_bits : ('c -> int) -> 'c array -> int
(** Maximum certificate size in bits (given a per-certificate size). *)

(** {1 The classic scheme: unique leader via a rooted spanning tree} *)

type leader_cert = {
  root_id : int;   (** identifier of the claimed leader *)
  level : int;     (** hop distance to the leader along the tree *)
  parent_id : int; (** identifier of the tree parent (self at the root) *)
}

val unique_leader : (bool, leader_cert) scheme
(** Inputs label each node with "I am a leader"; the property is
    "exactly one leader" — not locally decidable (a second leader may
    be anywhere), but certifiable with [O(log n)]-bit labels: a BFS
    tree rooted at the leader, encoded with identifiers. Soundness on
    connected instances: zero leaders leave no level-0 node for the
    strictly decreasing levels to reach; two leaders force a root-id
    disagreement along any connecting path. *)

val leader_cert_bits : leader_cert -> int
