(** Acceptance semantics of local decision (Section 1.2): a run accepts
    when {e every} node outputs yes, and rejects when {e at least one}
    node outputs no. *)

type t =
  | Accept
  | Reject of int list  (** the nodes that said no (non-empty, sorted) *)

val of_outputs : bool array -> t
val accepts : t -> bool
val rejects : t -> bool
val pp : Format.formatter -> t -> unit
