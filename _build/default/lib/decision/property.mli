(** Labelled-graph properties as first-class values (Section 1.2).

    A property is a membership predicate on labelled graphs that is
    invariant under isomorphism; {!check_invariance} tests the latter
    on random relabellings. *)

open Locald_graph

type 'a t = {
  name : string;
  mem : 'a Labelled.t -> bool;
}

val make : name:string -> ('a Labelled.t -> bool) -> 'a t

val check_invariance :
  rng:Random.State.t -> trials:int -> 'a t -> 'a Labelled.t -> bool
(** Membership is unchanged under random node renumberings of the
    given instance. *)

(** {1 Stock properties (used in examples and tests)} *)

val proper_colouring : k:int -> int t
(** Labels are colours [0 .. k-1] and neighbouring nodes differ. *)

val maximal_independent_set : int t
(** Nodes labelled 1 form a maximal independent set. *)

val all_equal : int t
(** All labels are equal (a hereditary toy property). *)
