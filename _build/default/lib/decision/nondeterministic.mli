(** Nondeterministic local decision — the class NLD of Fraigniaud,
    Korman and Peleg, referenced in Section 1.3 of the paper: a
    property is in NLD when a prover can label every node of a
    yes-instance with a {e certificate} such that a local verifier
    accepts, while no certificate assignment makes it accept a
    no-instance.

    The paper notes (citing OPODIS 2012) that, unlike LD vs LD*,
    nondeterminism erases the role of identifiers: [NLD* = NLD]. The
    executable content here: a nondeterministic verifier for a
    property together with a prover for its yes-instances, plus
    bounded refutation search on no-instances. *)

open Locald_graph


type ('a, 'c) verifier = {
  nv_name : string;
  nv_radius : int;
  nv_decide : ('a * 'c) View.t -> bool;
      (** Id-oblivious verifier over (input, certificate) labels. *)
}

type ('a, 'c) prover = 'a Labelled.t -> 'c array
(** Produces the certificates for a (claimed) yes-instance. *)

type ('a, 'c) t = {
  verifier : ('a, 'c) verifier;
  prover : ('a, 'c) prover;
}

val make :
  name:string ->
  radius:int ->
  (('a * 'c) View.t -> bool) ->
  prover:('a, 'c) prover ->
  ('a, 'c) t

val accepts_with :
  ('a, 'c) verifier -> 'a Labelled.t -> certificates:'c array -> Verdict.t
(** Run the verifier under a given certificate assignment. *)

val accepts_proved : ('a, 'c) t -> 'a Labelled.t -> Verdict.t
(** Run the verifier under the prover's certificates — must accept on
    yes-instances for the scheme to witness NLD membership. *)

val refuted :
  candidates:'c list ->
  ('a, 'c) verifier ->
  'a Labelled.t ->
  bool
(** Exhaustive soundness check over all certificate assignments drawn
    from the finite candidate set: [true] when {e every} assignment is
    rejected (the instance cannot be certified). Exponential in the
    instance size — use on small no-instances only. *)

val refuted_sampled :
  rng:Random.State.t ->
  trials:int ->
  candidates:'c list ->
  ('a, 'c) verifier ->
  'a Labelled.t ->
  bool
(** Randomised soundness check: no sampled assignment is accepted. *)

(** {1 Stock schemes} *)

val bipartite_scheme : (unit, int) t
(** The textbook NLD* scheme for bipartiteness: the certificate is a
    proper 2-colouring, which exists exactly on bipartite graphs and
    is verified at radius 1. Bipartiteness is not locally decidable
    even with identifiers (a long odd cycle is locally
    indistinguishable from an even one), so this witnesses a property
    in NLD* outside LD — the nondeterministic world where, as the
    paper notes, identifiers provably play no role. *)

val even_cycle_scheme : (unit, int) t
(** The same certificates restricted to cycle inputs: verifies "the
    cycle has even length". *)
