open Locald_graph

type witness = {
  subgraph_nodes : int array;
}

(* Grow a connected chunk of the requested size by BFS from a random
   seed, exploring neighbours in random order. *)
let random_connected_chunk rng g ~size =
  let n = Graph.order g in
  let seed = Random.State.int rng n in
  let chosen = Hashtbl.create 16 in
  Hashtbl.replace chosen seed ();
  let frontier = ref [ seed ] in
  while Hashtbl.length chosen < size && !frontier <> [] do
    let pick = Random.State.int rng (List.length !frontier) in
    let v = List.nth !frontier pick in
    let fresh =
      Array.to_list (Graph.neighbours g v)
      |> List.filter (fun u -> not (Hashtbl.mem chosen u))
    in
    match fresh with
    | [] -> frontier := List.filter (fun u -> u <> v) !frontier
    | u :: _ ->
        Hashtbl.replace chosen u ();
        frontier := u :: !frontier
  done;
  Hashtbl.fold (fun v () acc -> v :: acc) chosen []
  |> List.sort compare |> Array.of_list

(* All connected vertex subsets of a small graph, by growing from each
   seed. *)
let all_connected_subsets g =
  let n = Graph.order g in
  let module S = Set.Make (Int) in
  let seen = Hashtbl.create 256 in
  let results = ref [] in
  let rec grow set =
    let key = S.elements set in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      results := key :: !results;
      S.iter
        (fun v ->
          Array.iter
            (fun u -> if not (S.mem u set) then grow (S.add u set))
            (Graph.neighbours g v))
        set
    end
  in
  for v = 0 to n - 1 do
    grow (S.singleton v)
  done;
  List.map Array.of_list !results

let violates p lg nodes =
  Array.length nodes > 0
  && Array.length nodes < Labelled.order lg
  &&
  let sub, _ = Labelled.induced lg nodes in
  not (p.Property.mem sub)

let connected_induced_counterexample ~rng ~samples p lg =
  if not (p.Property.mem lg) then None
  else begin
    let g = Labelled.graph lg in
    let n = Graph.order g in
    if n = 0 then None
    else if n <= 12 then
      all_connected_subsets g
      |> List.find_opt (violates p lg)
      |> Option.map (fun nodes -> { subgraph_nodes = nodes })
    else begin
      let rec go k =
        if k >= samples then None
        else
          let size = 1 + Random.State.int rng (n - 1) in
          let nodes = random_connected_chunk rng g ~size in
          if violates p lg nodes then Some { subgraph_nodes = nodes }
          else go (k + 1)
      in
      go 0
    end
  end

let looks_hereditary_on ~rng ~samples p instances =
  List.for_all
    (fun lg -> connected_induced_counterexample ~rng ~samples p lg = None)
    instances
