(** Monte-Carlo evaluation of randomised [(p, q)]-deciders
    (Section 3.3): a randomised local algorithm is a [(p, q)]-decider
    for [P] when yes-instances are accepted with probability at least
    [p] and no-instances rejected with probability at least [q]. *)

open Locald_graph
open Locald_local

type estimate = {
  instance : string;
  n : int;
  expected : bool;
  runs : int;
  accepted : int;
}

val accept_rate : estimate -> float

val success_rate : estimate -> float
(** Fraction of runs with the correct verdict (acceptance for
    yes-instances, rejection for no-instances). *)

val estimate :
  rng:Random.State.t ->
  runs:int ->
  oblivious:bool ->
  ('a, bool) Randomized.t ->
  ids:Ids.t option ->
  expected:bool ->
  instance:string ->
  'a Labelled.t ->
  estimate

val pp : Format.formatter -> estimate -> unit
