(** Running local algorithms as deciders, and evaluating their
    correctness over identifier assignments.

    A local algorithm [A] decides a property [P] when, for {e every}
    valid identifier assignment, it accepts every yes-instance and
    rejects every no-instance. Correctness is therefore quantified
    over assignments: [evaluate] samples (or exhausts) assignments
    valid under a regime and tallies the verdicts. *)

open Locald_graph
open Locald_local

val decide : ('a, bool) Algorithm.t -> 'a Labelled.t -> ids:Ids.t -> Verdict.t

val decide_oblivious : ('a, bool) Algorithm.oblivious -> 'a Labelled.t -> Verdict.t

type evaluation = {
  instance : string;
  n : int;
  expected : bool;       (** is the instance in the property? *)
  assignments : int;     (** assignments tried *)
  correct : int;
  wrong : int;
  failure : (Ids.t * Verdict.t) option;  (** an assignment that went wrong *)
}

val evaluate :
  rng:Random.State.t ->
  regime:Ids.regime ->
  assignments:int ->
  ('a, bool) Algorithm.t ->
  expected:bool ->
  instance:string ->
  'a Labelled.t ->
  evaluation
(** Random assignments drawn from the regime. *)

val evaluate_exhaustive :
  bound:int ->
  ('a, bool) Algorithm.t ->
  expected:bool ->
  instance:string ->
  'a Labelled.t ->
  evaluation
(** Every injective assignment into [0 .. bound-1] (small instances
    only). *)

val all_correct : evaluation -> bool

val pp_evaluation : Format.formatter -> evaluation -> unit
