open Locald_local

let decide alg lg ~ids = Verdict.of_outputs (Runner.run alg lg ~ids)

let decide_oblivious ob lg = Verdict.of_outputs (Runner.run_oblivious ob lg)

type evaluation = {
  instance : string;
  n : int;
  expected : bool;
  assignments : int;
  correct : int;
  wrong : int;
  failure : (Ids.t * Verdict.t) option;
}

let tally ~expected ~instance ~n assignments_seq alg lg =
  let correct = ref 0 and wrong = ref 0 and failure = ref None and total = ref 0 in
  Seq.iter
    (fun ids ->
      incr total;
      let verdict = decide alg lg ~ids in
      if Verdict.accepts verdict = expected then incr correct
      else begin
        incr wrong;
        if !failure = None then failure := Some (ids, verdict)
      end)
    assignments_seq;
  {
    instance;
    n;
    expected;
    assignments = !total;
    correct = !correct;
    wrong = !wrong;
    failure = !failure;
  }

let evaluate ~rng ~regime ~assignments alg ~expected ~instance lg =
  let n = Locald_graph.Labelled.order lg in
  let seq =
    Seq.init assignments (fun _ -> Ids.sample rng regime ~n)
  in
  tally ~expected ~instance ~n seq alg lg

let evaluate_exhaustive ~bound alg ~expected ~instance lg =
  let n = Locald_graph.Labelled.order lg in
  tally ~expected ~instance ~n (Ids.enumerate_injections ~n ~bound) alg lg

let all_correct e = e.wrong = 0 && e.assignments > 0

let pp_evaluation ppf e =
  Format.fprintf ppf "%-28s n=%-6d expect=%-6s %d/%d assignments correct%s"
    e.instance e.n
    (if e.expected then "yes" else "no")
    e.correct e.assignments
    (if e.wrong = 0 then "" else Printf.sprintf "  (%d WRONG)" e.wrong)
